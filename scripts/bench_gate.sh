#!/usr/bin/env bash
# CI perf-regression gate for the deterministic benchmarks.
#
# Two layers of checks over the BENCH_<exp>.json files the harness drops
# in the working directory:
#
#   1. Baseline comparison: every metric's p50 virtual latency must stay
#      within TOLERANCE_PCT of the committed bench/baselines/ copy, and
#      throughput must not fall more than TOLERANCE_PCT below it. The
#      simulation is deterministic, so drift means the commit changed
#      the protocol's work — refresh the baseline deliberately (see
#      HACKING.md) if the change is intended.
#
#   2. e16 self-contained ratios: with a non-zero batch window the run
#      must show >= MIN_FORCE_RATIO fewer coordinator-log forces and
#      >= MIN_MSG_RATIO fewer per-commit messages than window 0. This is
#      what makes the gate fire when batching silently stops working
#      (CI proves it by re-running e16 under LOCUS_BREAK_BATCH=1 and
#      asserting this script fails).
#
#   3. e19 self-contained checks: over the lossy network every run must
#      still land all of its commits (exactly-once held), the non-zero
#      drop rows must show faults actually injected AND reply-cache
#      hits absorbing the resulting duplicates, and the lossy rows must
#      cost more messages per commit than the clean row. CI proves the
#      oracle side with the explorer's --break-dedup inversion.
#
#   4. e18 self-contained ratios: dynamic lock placement must actually
#      collapse the hot-key round trips — the placement-on row needs a
#      local-hit ratio >= MIN_LOCAL_HIT (with the off row staying below
#      MAX_STATIC_HIT), at least one migration, and a lock p50 no more
#      than E18_P50_FRACTION of the static row's. CI proves the gate
#      fires by re-running e18 under LOCUS_BREAK_SHARD=1 (the owner
#      keeps granting at its superseded epoch) and asserting this
#      script fails.
#
#   5. e21 self-contained checks: the open-loop ladder must show both
#      sides of the saturation knee on the virtual clock (a sub-knee row
#      where completed == offered, and a saturated row whose sustained
#      rate sits well below its offered rate), nothing may be shed, and
#      the engine's host dispatch rate (events_per_sec_wall, the one
#      machine-dependent number in any BENCH json) must clear the
#      MIN_WALL_EPS floor. CI proves the floor has teeth by re-running
#      e21 under LOCUS_BREAK_LOAD=1 — an O(queue) scan per dispatched
#      event that leaves every virtual metric byte-identical while the
#      wall rate collapses ~25x — and asserting this script fails.
#
#   6. e20 self-contained checks: the health plane must be free on the
#      virtual clock — the health-on row's p50 must sit within
#      TOLERANCE_PCT of the health-off row (the sampler consumes no
#      virtual time, so they are byte-identical in practice) with
#      windows actually closing and zero alarms on the clean loop — and
#      the stranded-coordinator scenario must raise in_doubt_age within
#      MAX_ALARM_WINDOWS window closes of the age-threshold crossing.
#      CI proves the oracle side with the explorer's --break-health
#      inversion.
#
# Usage: scripts/bench_gate.sh [exp ...]   (default: e4 e15 e16 e17 e18 e19 e20 e21)

set -u

TOLERANCE_PCT=${TOLERANCE_PCT:-10}
MIN_FORCE_RATIO=${MIN_FORCE_RATIO:-2.0}
MIN_MSG_RATIO=${MIN_MSG_RATIO:-1.5}
MIN_LOCAL_HIT=${MIN_LOCAL_HIT:-0.6}
MAX_STATIC_HIT=${MAX_STATIC_HIT:-0.2}
E18_P50_FRACTION=${E18_P50_FRACTION:-0.6}
MAX_ALARM_WINDOWS=${MAX_ALARM_WINDOWS:-2}
# Host-dispatch floor for e21 (events per wall second). ~measured/5 on
# the reference machine: generous enough for slow CI runners, far above
# the ~25x collapse LOCUS_BREAK_LOAD=1 inflicts.
MIN_WALL_EPS=${MIN_WALL_EPS:-100000}
BASELINES=${BASELINES:-bench/baselines}
EXPS=("${@:-e4 e15 e16 e17 e18 e19 e20 e21}")
[ $# -eq 0 ] && EXPS=(e4 e15 e16 e17 e18 e19 e20 e21)

fail=0

note() { printf '%s\n' "$*"; }
bad() {
  printf 'GATE FAIL: %s\n' "$*" >&2
  fail=1
}

compare_baseline() {
  local exp=$1 cur=BENCH_$1.json base=$BASELINES/BENCH_$1.json
  if [ ! -f "$cur" ]; then
    bad "$cur missing (did the bench run?)"
    return
  fi
  if [ ! -f "$base" ]; then
    bad "$base missing (commit a baseline for $exp)"
    return
  fi
  local labels
  labels=$(jq -r '.metrics[].label' "$base")
  while IFS= read -r label; do
    local bp50 cp50 bops cops
    bp50=$(jq -r --arg l "$label" '.metrics[] | select(.label == $l) | .p50_virtual_us' "$base")
    cp50=$(jq -r --arg l "$label" '.metrics[] | select(.label == $l) | .p50_virtual_us' "$cur")
    bops=$(jq -r --arg l "$label" '.metrics[] | select(.label == $l) | .ops_per_sec' "$base")
    cops=$(jq -r --arg l "$label" '.metrics[] | select(.label == $l) | .ops_per_sec' "$cur")
    if [ -z "$cp50" ] || [ "$cp50" = "null" ]; then
      bad "$exp: metric '$label' vanished from $cur"
      continue
    fi
    # p50 latency within +/- tolerance of baseline (0 baseline: must stay 0).
    if ! jq -n --argjson b "$bp50" --argjson c "$cp50" --argjson t "$TOLERANCE_PCT" \
        'if $b == 0 then $c == 0 else (($c - $b) | if . < 0 then -. else . end) * 100 <= $t * $b end' \
        | grep -q true; then
      bad "$exp '$label': p50 ${cp50}us vs baseline ${bp50}us (>${TOLERANCE_PCT}% drift)"
    fi
    # Throughput must not regress below tolerance (improvement is fine).
    if ! jq -n --argjson b "$bops" --argjson c "$cops" --argjson t "$TOLERANCE_PCT" \
        '$c * 100 >= $b * (100 - $t)' | grep -q true; then
      bad "$exp '$label': throughput $cops ops/s vs baseline $bops (-${TOLERANCE_PCT}% floor)"
    fi
  done <<<"$labels"
  note "gate: $exp within ${TOLERANCE_PCT}% of baseline"
}

check_e16_ratios() {
  local cur=BENCH_e16.json
  [ -f "$cur" ] || { bad "$cur missing"; return; }
  local f0 m0
  f0=$(jq -r '.metrics[] | select(.window_us == 0) | .coord_forces' "$cur")
  m0=$(jq -r '.metrics[] | select(.window_us == 0) | .msgs_per_commit' "$cur")
  local windows
  windows=$(jq -r '.metrics[] | select(.window_us > 0) | .window_us' "$cur")
  local any_force=1 any_msg=1
  while IFS= read -r w; do
    local fw mw
    fw=$(jq -r --argjson w "$w" '.metrics[] | select(.window_us == $w) | .coord_forces' "$cur")
    mw=$(jq -r --argjson w "$w" '.metrics[] | select(.window_us == $w) | .msgs_per_commit' "$cur")
    if jq -n --argjson b "$f0" --argjson c "$fw" --argjson r "$MIN_FORCE_RATIO" \
        '$c > 0 and $b >= $r * $c' | grep -q true; then
      any_force=0
    fi
    if jq -n --argjson b "$m0" --argjson c "$mw" --argjson r "$MIN_MSG_RATIO" \
        '$c > 0 and $b >= $r * $c' | grep -q true; then
      any_msg=0
    fi
    note "gate: e16 window ${w}us: coord forces $fw (window 0: $f0), msgs/commit $mw (window 0: $m0)"
  done <<<"$windows"
  [ "$any_force" -eq 0 ] ||
    bad "e16: no window achieves >= ${MIN_FORCE_RATIO}x fewer coordinator-log forces than window 0"
  [ "$any_msg" -eq 0 ] ||
    bad "e16: no window achieves >= ${MIN_MSG_RATIO}x fewer per-commit messages than window 0"
}

check_e18_ratios() {
  local cur=BENCH_e18.json
  [ -f "$cur" ] || { bad "$cur missing"; return; }
  local off_hit on_hit off_p50 on_p50 migrations
  off_hit=$(jq -r '.metrics[] | select(.label == "placement off") | .local_hit_ratio' "$cur")
  on_hit=$(jq -r '.metrics[] | select(.label | startswith("placement on")) | .local_hit_ratio' "$cur")
  off_p50=$(jq -r '.metrics[] | select(.label == "placement off") | .p50_virtual_us' "$cur")
  on_p50=$(jq -r '.metrics[] | select(.label | startswith("placement on")) | .p50_virtual_us' "$cur")
  migrations=$(jq -r '.metrics[] | select(.label | startswith("placement on")) | .migrations' "$cur")
  note "gate: e18 local-hit $on_hit (static: $off_hit), lock p50 ${on_p50}us (static: ${off_p50}us), migrations $migrations"
  jq -n --argjson h "$on_hit" --argjson m "$MIN_LOCAL_HIT" '$h >= $m' | grep -q true ||
    bad "e18: placement-on local-hit ratio $on_hit below ${MIN_LOCAL_HIT} floor"
  jq -n --argjson h "$off_hit" --argjson m "$MAX_STATIC_HIT" '$h <= $m' | grep -q true ||
    bad "e18: placement-off local-hit ratio $off_hit above ${MAX_STATIC_HIT} (workload not remote?)"
  jq -n --argjson m "$migrations" '$m >= 1' | grep -q true ||
    bad "e18: no ownership migration happened"
  jq -n --argjson on "$on_p50" --argjson off "$off_p50" --argjson f "$E18_P50_FRACTION" \
      '$on <= $off * $f' | grep -q true ||
    bad "e18: lock p50 ${on_p50}us did not collapse below ${E18_P50_FRACTION}x the static ${off_p50}us"
}

check_e19_ratios() {
  local cur=BENCH_e19.json
  [ -f "$cur" ] || { bad "$cur missing"; return; }
  local clean_commits clean_msgs
  clean_commits=$(jq -r '.metrics[] | select(.label | startswith("clean")) | .commits' "$cur")
  clean_msgs=$(jq -r '.metrics[] | select(.label | startswith("clean")) | .msgs_per_commit' "$cur")
  local labels
  labels=$(jq -r '.metrics[] | select(.label | startswith("drop")) | .label' "$cur")
  while IFS= read -r label; do
    local commits faults hits msgs
    commits=$(jq -r --arg l "$label" '.metrics[] | select(.label == $l) | .commits' "$cur")
    faults=$(jq -r --arg l "$label" '.metrics[] | select(.label == $l) | .drops + .dups' "$cur")
    hits=$(jq -r --arg l "$label" '.metrics[] | select(.label == $l) | .dedup_hits' "$cur")
    msgs=$(jq -r --arg l "$label" '.metrics[] | select(.label == $l) | .msgs_per_commit' "$cur")
    note "gate: e19 '$label': commits $commits (clean: $clean_commits), faults $faults, dedup hits $hits, msgs/commit $msgs (clean: $clean_msgs)"
    jq -n --argjson c "$commits" --argjson b "$clean_commits" '$c == $b' | grep -q true ||
      bad "e19 '$label': $commits commits landed vs $clean_commits clean — loss broke exactly-once or liveness"
    jq -n --argjson f "$faults" '$f >= 1' | grep -q true ||
      bad "e19 '$label': no faults injected (chaos layer not armed?)"
    jq -n --argjson h "$hits" '$h >= 1' | grep -q true ||
      bad "e19 '$label': reply cache never hit — duplicates were re-executed or never produced"
    jq -n --argjson m "$msgs" --argjson b "$clean_msgs" '$m > $b' | grep -q true ||
      bad "e19 '$label': msgs/commit $msgs not above the clean row's $clean_msgs (faults free?)"
  done <<<"$labels"
}

check_e20_health() {
  local cur=BENCH_e20.json
  [ -f "$cur" ] || { bad "$cur missing"; return; }
  local off_p50 on_p50 on_windows off_alarms on_alarms
  off_p50=$(jq -r '.metrics[] | select(.label == "health off") | .p50_virtual_us' "$cur")
  on_p50=$(jq -r '.metrics[] | select(.label | startswith("health on")) | .p50_virtual_us' "$cur")
  on_windows=$(jq -r '.metrics[] | select(.label | startswith("health on")) | .windows' "$cur")
  off_alarms=$(jq -r '.metrics[] | select(.label == "health off") | .alarms' "$cur")
  on_alarms=$(jq -r '.metrics[] | select(.label | startswith("health on")) | .alarms' "$cur")
  note "gate: e20 p50 on ${on_p50}us vs off ${off_p50}us, ${on_windows} windows, alarms off/on $off_alarms/$on_alarms"
  # Observation must be free on the virtual clock (within the tolerance,
  # identical in practice).
  jq -n --argjson b "$off_p50" --argjson c "$on_p50" --argjson t "$TOLERANCE_PCT" \
      'if $b == 0 then $c == 0 else (($c - $b) | if . < 0 then -. else . end) * 100 <= $t * $b end' \
      | grep -q true ||
    bad "e20: health-on p50 ${on_p50}us drifts >${TOLERANCE_PCT}% from health-off ${off_p50}us"
  jq -n --argjson w "$on_windows" '$w >= 1' | grep -q true ||
    bad "e20: health on but no sampler window ever closed"
  jq -n --argjson a "$off_alarms" --argjson b "$on_alarms" '$a == 0 and $b == 0' | grep -q true ||
    bad "e20: watchdog raised alarms on the clean overhead loop (false alarms)"
  # The stranded-coordinator scenario: alarm fired, participants were
  # really blocked, and the raise landed within the window budget.
  local lat alarm_at blocked
  lat=$(jq -r '.metrics[] | select(.label == "in_doubt_age alarm") | .alarm_latency_windows' "$cur")
  alarm_at=$(jq -r '.metrics[] | select(.label == "in_doubt_age alarm") | .alarm_at_us' "$cur")
  blocked=$(jq -r '.metrics[] | select(.label == "in_doubt_age alarm") | .blocked_participants' "$cur")
  note "gate: e20 in_doubt_age alarm latency ${lat} windows (blocked participants: $blocked)"
  jq -n --argjson a "$alarm_at" '$a >= 0' | grep -q true ||
    bad "e20: in_doubt_age alarm never fired on the stranded-coordinator scenario"
  jq -n --argjson b "$blocked" '$b >= 1' | grep -q true ||
    bad "e20: no participant ended blocked in-doubt (scenario lost its teeth)"
  jq -n --argjson l "$lat" --argjson m "$MAX_ALARM_WINDOWS" '$l >= 0 and $l <= $m' | grep -q true ||
    bad "e20: alarm latency ${lat} windows outside [0, ${MAX_ALARM_WINDOWS}]"
}

check_e21_load() {
  local cur=BENCH_e21.json
  [ -f "$cur" ] || { bad "$cur missing"; return; }
  # Virtual side: the ladder must show both sides of the knee, with
  # every arrival either completed or aborted (never silently shed).
  local subknee saturated shed
  subknee=$(jq -r '[.metrics[] | select(.label | startswith("rate"))
                    | select(.completed == .offered)] | length' "$cur")
  saturated=$(jq -r '[.metrics[] | select(.label | startswith("rate"))
                      | select(.ops_per_sec * 2 < .offered_per_sec)] | length' "$cur")
  shed=$(jq -r '[.metrics[] | select(.label | startswith("rate")) | .shed] | add' "$cur")
  note "gate: e21 ladder: $subknee sub-knee row(s), $saturated saturated row(s), $shed shed"
  jq -n --argjson s "$subknee" '$s >= 1' | grep -q true ||
    bad "e21: no ladder row completed everything it was offered (knee below the lowest rate?)"
  jq -n --argjson s "$saturated" '$s >= 1' | grep -q true ||
    bad "e21: no ladder row saturated (sustained < offered/2) — the ladder no longer crosses the knee"
  jq -n --argjson s "$shed" '$s == 0' | grep -q true ||
    bad "e21: $shed arrivals shed on a fault-free ladder"
  # Host side: the engine must dispatch fast enough to be the harness
  # rather than the bottleneck. Machine-dependent, hence only a floor.
  local eps
  eps=$(jq -r '.metrics[] | select(.label == "engine speed") | .events_per_sec_wall' "$cur")
  note "gate: e21 engine dispatch $eps events/s wall (floor: $MIN_WALL_EPS)"
  jq -n --argjson e "$eps" --argjson m "$MIN_WALL_EPS" '$e >= $m' | grep -q true ||
    bad "e21: engine dispatch $eps events/s below the ${MIN_WALL_EPS} floor"
}

for exp in ${EXPS[@]+"${EXPS[@]}"}; do
  # Word-split the default "e4 e15 e16" string form.
  for e in $exp; do
    compare_baseline "$e"
    [ "$e" = e16 ] && check_e16_ratios
    [ "$e" = e18 ] && check_e18_ratios
    [ "$e" = e19 ] && check_e19_ratios
    [ "$e" = e20 ] && check_e20_health
    [ "$e" = e21 ] && check_e21_load
  done
done

if [ "$fail" -ne 0 ]; then
  echo "bench gate: FAILED" >&2
  exit 1
fi
echo "bench gate: OK"
