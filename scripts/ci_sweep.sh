#!/usr/bin/env bash
# One named CI sweep lane = one coherent slice of the explorer matrix.
#
# CI fans these out as a parallel `sweeps` matrix job (one lane per job,
# so a red lane is identifiable from the job list alone), and each lane
# runs verbatim on a laptop:
#
#   scripts/ci_sweep.sh openloop
#
# Every lane pairs its positive sweeps (1SR + liveness must hold) with
# the matching --break-* inversion where one exists (the oracle must
# catch the seeded bug), so a lane going green means both directions
# were exercised.

set -eu

lane=${1:?usage: scripts/ci_sweep.sh <lane>   (lanes: deadlock-check repl paxos shard chaos health openloop)}

x() {
  echo "+ locusctl $*"
  dune exec bin/locusctl.exe -- "$@"
}

# An inversion that *succeeds* means the oracle slept through the seeded
# bug — that fails the lane.
must_fail() {
  if x "$@"; then
    echo "ci_sweep($lane): inverted self-test passed — oracle has no teeth" >&2
    exit 1
  fi
}

case "$lane" in
  deadlock-check)
    x deadlock --sites 3 --cycle 3 --expect-resolved
    x explore --seeds 50
    x explore --seeds 25 --sites 3 --fault-every 5
    must_fail explore --seeds 25 --break-locks
    ;;
  repl)
    x explore --seeds 200 --sites 3 --replicas 2 --fault-every 5
    x explore --seeds 200 --sites 3 --replicas 2 --batch-window 500 --fault-every 5
    must_fail explore --seeds 25 --sites 3 --replicas 2 --break-repl
    x repl-status --sites 3 --replicas 2 --crash-primary
    ;;
  paxos)
    x explore --seeds 200 --sites 3 --fault-every 3 --commit paxos --paxos-f 1
    x explore --seeds 200 --sites 5 --fault-every 3 --commit paxos --paxos-f 2
    must_fail explore --seeds 50 --sites 3 --fault-every 3 --commit paxos --paxos-f 1 --break-paxos
    ;;
  shard)
    x explore --seeds 200 --sites 4 --shards 8 --fault-every 3
    x explore --seeds 200 --sites 5 --shards 8 --fault-every 3 --commit paxos --paxos-f 1
    x explore --seeds 25 --sites 32 --shards 32 --txns 8 --fault-every 5
    must_fail explore --seeds 40 --sites 4 --shards 8 --fault-every 2 --break-shard
    x shard-status --sites 8 --rounds 6
    ;;
  chaos)
    x explore --seeds 200 --sites 3 --fault-every 5 --net-faults drop=0.05,dup=0.05,reorder=4
    x explore --seeds 200 --sites 3 --fault-every 5 --commit paxos --paxos-f 1 --net-faults drop=0.05,dup=0.05,reorder=4
    x explore --seeds 200 --sites 3 --shards 4 --fault-every 5 --net-faults drop=0.05,dup=0.05,reorder=4
    must_fail explore --seeds 200 --sites 3 --fault-every 5 --net-faults drop=0.05,dup=0.05,reorder=4 --break-dedup
    ;;
  health)
    x explore --seeds 200 --sites 3 --health
    x explore --seeds 200 --sites 3 --fault-every 3 --health
    must_fail explore --seeds 50 --sites 3 --fault-every 3 --health --break-health
    ;;
  openloop)
    # Open-loop specs: Poisson arrivals with a mid-makespan flash crowd,
    # Zipfian record popularity, the driver releasing each transaction
    # at its instant. The crash/partition rotation lands mid-load, and
    # --health arms the no-false-alarm + alarm-liveness oracles on every
    # seed. 1SR, no blocked participants, no health violations.
    x explore --seeds 200 --sites 3 --arrival 50 --fault-every 7 --health
    x explore --seeds 200 --sites 3 --arrival 120 --records 8 --fault-every 5
    # The checker must still have teeth under open-loop release.
    must_fail explore --seeds 25 --arrival 50 --break-locks
    ;;
  *)
    echo "ci_sweep: unknown lane '$lane'" >&2
    exit 2
    ;;
esac

echo "ci_sweep: lane '$lane' OK"
