(* E14 — schedule exploration throughput: how many complete
   workload-execute-and-check cycles per second of real CPU time the
   Locus_check harness sustains, across workload sizes and with crash
   injection. Each "schedule" is a full deterministic cluster simulation
   (one seed) plus a serializability check of its recorded history. *)

module Ck = Locus_check

let sweep_rate ~label ~config ~n_seeds ~from =
  let t0 = Sys.time () in
  let r = Ck.Explore.sweep ~config ~seeds:(Ck.Explore.seeds ~n:n_seeds ~from) () in
  let dt = Float.max (Sys.time () -. t0) 1e-9 in
  assert (r.Ck.Explore.failures = []);
  [
    label;
    string_of_int n_seeds;
    string_of_int r.Ck.Explore.events;
    Printf.sprintf "%.0f" (float_of_int n_seeds /. dt);
    Printf.sprintf "%.0f" (float_of_int r.Ck.Explore.events /. dt);
  ]

let e14 () =
  let base = Ck.Explore.default_config in
  let rows =
    [
      sweep_rate ~label:"2 sites, 4 txns x 4 ops" ~config:base ~n_seeds:200
        ~from:0;
      sweep_rate ~label:"3 sites, 8 txns x 4 ops"
        ~config:{ base with Ck.Explore.sites = 3; txns = 8 }
        ~n_seeds:100 ~from:0;
      sweep_rate ~label:"3 sites, 4 txns, fault every 5"
        ~config:{ base with Ck.Explore.sites = 3; fault_every = Some 5 }
        ~n_seeds:100 ~from:0;
      sweep_rate ~label:"3 sites, 2 replicas, fault every 5"
        ~config:
          { base with Ck.Explore.sites = 3; replicas = 2; fault_every = Some 5 }
        ~n_seeds:100 ~from:0;
      sweep_rate ~label:"2 sites, 16 txns x 8 ops"
        ~config:{ base with Ck.Explore.txns = 16; ops = 8; records = 8 }
        ~n_seeds:50 ~from:0;
    ]
  in
  Tables.print_table ~title:"schedule exploration throughput (real CPU time)"
    ~columns:[ "workload"; "seeds"; "events"; "schedules/s"; "events/s" ]
    rows;
  Fmt.pr
    "every sweep: zero unpermitted serializability violations (asserted).@."
