(* E12 — §1's premise: "in order to perform effectively in comparison to
   large centralized systems, such systems rely on achieving considerable
   concurrency of data access and update".

   A fixed workload (16 terminals x 4 record updates) runs against data
   partitioned over 1, 2, 4 and 8 sites. With one site everything funnels
   through one disk and one CPU; with more sites, record-level locking
   lets the work proceed in parallel. *)

open Harness

let terminals = 16
let updates = 4

let makespan ~n_sites =
  let sim = fresh ~n_sites () in
  let out = ref 0 in
  let lats = ref [] in
  run_proc sim ~site:0 (fun env ->
      (* One data file per site/volume; setup closes everything so the
         forked terminals inherit no channels. *)
      List.iter
        (fun v ->
          let c = Api.creat env (Printf.sprintf "/data%d" v) ~vid:v in
          Api.write_string env c (String.make 2048 'i');
          Api.close env c)
        (List.init n_sites Fun.id);
      Engine.sleep 200_000;
      let e = K.engine (Api.cluster env) in
      let t0 = L.Engine.now e in
      let terminal t =
        Api.fork env ~site:(t mod n_sites) ~name:(Printf.sprintf "t%d" t)
          (fun w ->
            let e = K.engine (Api.cluster w) in
            let t_begin = L.Engine.now e in
            let prng = Prng.create ~seed:(500 + t) in
            (* Site-local records (the locality the paper's environment
               assumes), locked in ascending order so the measurement is
               contention, not deadlock retries. *)
            let c = Api.open_file w (Printf.sprintf "/data%d" (t mod n_sites)) in
            let positions =
              List.init updates (fun _ -> 64 * Prng.int prng 32)
              |> List.sort_uniq Int.compare
            in
            Api.begin_trans w;
            List.iter
              (fun pos ->
                Api.seek w c ~pos;
                (match Api.lock w c ~len:64 ~mode:M.Exclusive () with
                | Api.Granted -> ()
                | Api.Conflict _ -> ());
                Api.pwrite w c ~pos (Bytes.make 64 'u'))
              positions;
            ignore (Api.end_trans w);
            lats := (L.Engine.now e - t_begin) :: !lats;
            Api.close w c)
      in
      let pids = List.init terminals terminal in
      List.iter (Api.wait_pid env) pids;
      out := L.Engine.now e - t0);
  (!out, !lats)

let e12 () =
  let base = ref 0 in
  let metrics = ref [] in
  let rows =
    List.map
      (fun n_sites ->
        let m, lats = makespan ~n_sites in
        if n_sites = 1 then base := m;
        metrics :=
          Jsonout.metric
            ~label:(Printf.sprintf "%d sites" n_sites)
            ~span_us:m lats
          :: !metrics;
        [
          Tables.i n_sites;
          Tables.ms m;
          Printf.sprintf "%.0f txn/s"
            (float_of_int terminals /. (float_of_int m /. 1_000_000.));
          Printf.sprintf "%.1fx" (float_of_int !base /. float_of_int m);
        ])
      [ 1; 2; 4; 8 ]
  in
  Tables.print_table
    ~title:
      "E12 / §1: fixed workload (16 txns, 4 record updates each) over a \
       growing cluster"
    ~columns:[ "sites"; "makespan"; "throughput"; "speedup vs 1 site" ]
    rows;
  Jsonout.write ~exp:"e12" (List.rev !metrics);
  Tables.paper
    "an environment of many relatively small machines performs by achieving \
     considerable concurrency of data access and update — hence fine-grain \
     synchronization (§1)"
