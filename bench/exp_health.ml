(* E20 — locus_health: what the live health plane costs and how fast it
   shouts.

   Two questions an operator asks before arming always-on observation:

   1. Overhead. The same remote record-commit loop runs with the health
      plane off and on (100 ms sampler window). The sampler is a
      scheduled closure that reads counters and histogram snapshots —
      it consumes no virtual time — so the measured virtual latencies
      must come out identical; the table and the ±10% gate in
      scripts/bench_gate.sh prove it. (Host-CPU cost exists but is the
      point of the windowed design: a handful of counter reads per
      100 ms window.)

   2. Alarm latency. A coordinator dies between its durable 2PC decision
      and phase 2, stranding the participants in-doubt — the classic
      blocking window. The watchdog may only raise [in_doubt_age] once
      the oldest in-doubt transaction crosses the age threshold; the
      gate requires the alarm within two window closes of that
      crossing. *)

open Harness
module W = Locus_check.Workload
module Obs = Locus_core.Obs
module H = Locus_health

let n_commits = 40
let record_bytes = 100
let window_us = 100_000

type sample = {
  label : string;
  latencies : int list;
  span_us : int;
  windows : int;
  alarms : int;
}

(* The E19 clean-case workload shape: every write, lock and commit
   crosses the wire to the storage site. *)
let run_commits ~health ~label =
  let config = K.Config.default ~n_sites:2 in
  let config =
    if health then K.Config.with_health ~window_us config else config
  in
  let sim = fresh ~config ~n_sites:2 () in
  let lats = ref [] in
  let t_start = ref 0 and t_end = ref 0 in
  ignore
    (Api.spawn_process sim.L.cluster ~site:0 ~name:"writer" (fun env ->
         let e = K.engine (Api.cluster env) in
         let c = Api.creat env "/health" ~vid:1 in
         Api.write_string env c (String.make record_bytes 'i');
         Api.commit_file env c;
         t_start := L.Engine.now e;
         for i = 1 to n_commits do
           Api.pwrite env c ~pos:0
             (Bytes.make record_bytes (Char.chr (64 + (i mod 26))));
           let t0 = L.Engine.now e in
           Api.commit_file env c;
           lats := (L.Engine.now e - t0) :: !lats
         done;
         t_end := L.Engine.now e;
         Api.close env c));
  L.run sim;
  {
    label;
    latencies = List.rev !lats;
    span_us = !t_end - !t_start;
    windows = K.health_windows sim.L.cluster;
    alarms = List.length (K.health_alarms sim.L.cluster);
  }

(* The stranded-coordinator scenario from the checker's alarm-liveness
   oracle, measured: when does the watchdog say in_doubt_age? *)
let run_alarm_scenario () =
  let spec = W.gen ~seed:42 ~sites:3 () in
  let hist, sim =
    W.run
      ~fault:(W.Kill_coordinator { after_decides = 1 })
      ~commit:`Two_phase ~health:window_us ~seed:42 spec
  in
  let cl = sim.L.cluster in
  let threshold =
    (K.config cl).K.Config.health_thresholds.H.Rules.in_doubt_age_us
  in
  (* The fault fires at the first 2PC decide ([after_decides = 1]), so
     the stranded transaction's durable decision is the FIRST
     Commit/Abort in the history; the in-doubt age counts from there.
     (Unaffected transactions keep committing afterwards.) *)
  let kill_at =
    List.fold_left
      (fun acc (r : Obs.record) ->
        match r.Obs.ev with
        | Obs.Commit _ | Obs.Abort _ ->
          (match acc with None -> Some r.Obs.at | some -> some)
        | _ -> acc)
      None
      (Locus_check.History.events hist)
    |> Option.value ~default:0
  in
  let alarm_at =
    List.fold_left
      (fun acc (r : Obs.record) ->
        match r.Obs.ev with
        | Obs.Alarm { name = "in_doubt_age"; _ } ->
          (match acc with None -> Some r.Obs.at | some -> some)
        | _ -> acc)
      None
      (Locus_check.History.events hist)
  in
  let blocked = List.length (W.blocked sim) in
  (kill_at, threshold, alarm_at, blocked)

let e20 () =
  let off = run_commits ~health:false ~label:"health off" in
  let on_ =
    run_commits ~health:true
      ~label:(Printf.sprintf "health on (%d ms window)" (window_us / 1000))
  in
  let kill_at, threshold, alarm_at, blocked = run_alarm_scenario () in
  let crossing_us = kill_at + threshold in
  let alarm_lat_windows =
    match alarm_at with
    | None -> Float.infinity
    | Some at -> float_of_int (at - crossing_us) /. float_of_int window_us
  in
  Tables.print_table
    ~title:
      (Printf.sprintf
         "E20: health plane overhead on remote record commit (%d commits)"
         n_commits)
    ~columns:[ "case"; "p50"; "p99"; "windows closed"; "alarms" ]
    (List.map
       (fun s ->
         [
           s.label;
           Tables.ms (Jsonout.percentile s.latencies 50.);
           Tables.ms (Jsonout.percentile s.latencies 99.);
           string_of_int s.windows;
           string_of_int s.alarms;
         ])
       [ off; on_ ]);
  Tables.print_table
    ~title:"E20: in_doubt_age alarm latency (stranded 2PC coordinator)"
    ~columns:
      [ "decision at"; "age threshold"; "alarm at"; "latency (windows)" ]
    [
      [
        Tables.ms kill_at;
        Tables.ms threshold;
        (match alarm_at with None -> "NEVER" | Some at -> Tables.ms at);
        Printf.sprintf "%.2f" alarm_lat_windows;
      ];
    ];
  Jsonout.write ~exp:"e20"
    [
      Jsonout.metric
        ~extras:
          [
            ("windows", float_of_int off.windows);
            ("alarms", float_of_int off.alarms);
          ]
        ~label:off.label ~span_us:off.span_us off.latencies;
      Jsonout.metric
        ~extras:
          [
            ("windows", float_of_int on_.windows);
            ("alarms", float_of_int on_.alarms);
          ]
        ~label:on_.label ~span_us:on_.span_us on_.latencies;
      Jsonout.single
        ~extras:
          [
            ("decision_at_us", float_of_int kill_at);
            ("threshold_us", float_of_int threshold);
            ( "alarm_at_us",
              match alarm_at with
              | None -> -1.
              | Some at -> float_of_int at );
            ("alarm_latency_windows", alarm_lat_windows);
            ("blocked_participants", float_of_int blocked);
          ]
        ~label:"in_doubt_age alarm"
        ~latency_us:
          (match alarm_at with None -> 0 | Some at -> at - crossing_us)
        ();
    ];
  Tables.paper
    "not in the paper: the health plane is modern operability folded \
     back onto the 1985 design — sampling costs no virtual time (the \
     off/on rows must match), and the watchdog names a stranded 2PC \
     coordinator within two 100 ms windows of the in-doubt age crossing"
