(* E17 — the price of non-blocking atomic commitment.

   The e16 cohort (eight concurrent writers at site 0, each committing an
   update to its own file stored at site 1) run under plain 2PC and under
   Paxos Commit with f = 1 (acceptors at sites 0-2), with and without the
   commit-path batching window. Paxos Commit buys the liveness property
   the checker asserts — a killed coordinator cannot block participants —
   and pays for it in Vote_2a fan-out: every participant's vote travels
   to 2f+1 acceptors and is force-logged there before it counts. The
   batching rows show how much of that fan-out the RPC coalescing window
   absorbs (the votes ride the same hot path as prepares and phase 2).

   Per row the JSON carries commits, total messages, msgs/commit and the
   p50 of the coordinator's decide phase (commit.decide_us), so the gate
   can hold both protocols to their baselines. *)

open Harness

let n_writers = 8
let rec_len = 64
let windows = [ 0; 500 ]

type sample = {
  label : string;
  commits : int;
  msgs : int;
  log_forces : int;
  decide_p50_us : int;
  latencies : int list;
  span_us : int;
}

let run_once ~paxos ~window =
  let sites = 3 in
  let base = K.Config.default ~n_sites:sites in
  let config = if paxos then K.Config.with_paxos ~f:1 base else base in
  let config =
    if window > 0 then K.Config.with_batching ~window_us:window config
    else config
  in
  let sim = fresh ~config ~n_sites:sites () in
  let cl = sim.L.cluster in
  let committed = ref 0 in
  let lats = ref [] in
  let msgs0 = ref 0 and logs0 = ref 0 in
  let t_start = ref 0 and t_end = ref 0 in
  let file i = Printf.sprintf "/pc/w%d" i in
  let e = K.engine cl in
  let wake_at = 5_000_000 in
  let setup_pid =
    Api.spawn_process cl ~site:0 ~name:"setup" (fun env ->
        List.init n_writers Fun.id
        |> List.iter (fun i ->
               let c = Api.creat env (file i) ~vid:1 in
               Api.write_string env c (String.make rec_len 'i');
               Api.commit_file env c;
               Api.close env c))
  in
  let writer i =
    Api.spawn_process cl ~site:0 ~name:(Printf.sprintf "w%d" i) (fun w ->
        Api.wait_pid w setup_pid;
        let c = Api.open_file w (file i) in
        ignore (Api.pread w c ~pos:0 ~len:rec_len);
        Engine.sleep (wake_at - L.Engine.now e);
        let t0 = L.Engine.now e in
        Api.begin_trans w;
        Api.seek w c ~pos:0;
        (match Api.lock w c ~len:rec_len ~mode:M.Exclusive () with
        | Api.Granted -> ()
        | Api.Conflict _ -> ());
        Api.pwrite w c ~pos:0 (Bytes.make rec_len 'u');
        (match Api.end_trans w with
        | K.Committed -> incr committed
        | K.Aborted -> ());
        lats := (L.Engine.now e - t0) :: !lats;
        Api.close w c)
  in
  let pids = List.init n_writers writer in
  ignore
    (Api.spawn_process cl ~site:0 ~name:"monitor" (fun env ->
         Engine.sleep (wake_at - 1_000 - L.Engine.now e);
         msgs0 := L.Stats.get (stats sim) "net.msg";
         let _, _, logs = io_counts sim in
         logs0 := logs;
         t_start := L.Engine.now e;
         List.iter (Api.wait_pid env) pids;
         t_end := L.Engine.now e));
  L.run sim;
  let _, _, logs1 = io_counts sim in
  let decide_p50 =
    match L.Stats.histogram (stats sim) "commit.decide_us" with
    | Some h -> L.Stats.Hist.quantile h 50
    | None -> 0
  in
  {
    label =
      Printf.sprintf "%s window %d"
        (if paxos then "paxos f=1" else "2pc")
        window;
    commits = !committed;
    msgs = L.Stats.get (stats sim) "net.msg" - !msgs0;
    log_forces = logs1 - !logs0;
    decide_p50_us = decide_p50;
    latencies = List.rev !lats;
    span_us = !t_end - !t_start;
  }

let e17 () =
  let samples =
    List.concat_map
      (fun window ->
        [ run_once ~paxos:false ~window; run_once ~paxos:true ~window ])
      windows
  in
  let per_commit v s =
    if s.commits = 0 then 0. else float_of_int v /. float_of_int s.commits
  in
  Tables.print_table
    ~title:
      (Printf.sprintf
         "E17: 2PC vs Paxos Commit f=1 (%d writers, 3 sites)" n_writers)
    ~columns:
      [ "case"; "commits"; "msgs"; "msgs/commit"; "log forces";
        "decide p50"; "commit p50" ]
    (List.map
       (fun s ->
         [
           s.label;
           string_of_int s.commits;
           string_of_int s.msgs;
           Printf.sprintf "%.1f" (per_commit s.msgs s);
           string_of_int s.log_forces;
           Tables.ms s.decide_p50_us;
           Tables.ms (Jsonout.percentile s.latencies 50.);
         ])
       samples);
  let metrics =
    List.map
      (fun s ->
        Jsonout.metric
          ~extras:
            [
              ("commits", float_of_int s.commits);
              ("msgs", float_of_int s.msgs);
              ("msgs_per_commit", per_commit s.msgs s);
              ("log_forces", float_of_int s.log_forces);
              ("decide_p50_us", float_of_int s.decide_p50_us);
            ]
          ~label:s.label ~span_us:s.span_us s.latencies)
      samples
  in
  Jsonout.write ~exp:"e17" metrics;
  Tables.paper
    "not in the paper: Paxos Commit (Gray & Lamport 2004) replaces the \
     paper's blocking 2PC decision; same prepare and phase-2 mechanics, \
     decision learnable from any acceptor quorum"
