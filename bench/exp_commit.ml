(* E4 — Figure 6: record commit performance, local/remote x
        overlap/non-overlap.
   E6 — footnote 11: page-size sensitivity of the differencing commit. *)

open Harness

(* Measure one record commit (the single-file commit mechanism, driven by
   the non-transaction Commit_file path — the paper measures the record
   commit operation itself). [overlap] parks another owner's uncommitted
   record on the same data page first, forcing the Figure 4(b)
   differencing path. *)
let measure_commit ?(page_size = 1024) ?(record_bytes = 100) ?(phases = false)
    ~requester_site ~overlap () =
  let config = { (K.Config.default ~n_sites:2) with K.Config.page_size } in
  let sim = fresh ~config ~n_sites:2 () in
  let otr = if phases then Some (with_otrace sim) else None in
  let out = ref None in
  ignore
    (Api.spawn_process sim.L.cluster ~site:1 ~name:"other" (fun env ->
         let c = Api.creat env "/f" ~vid:1 in
         Api.write_string env c (String.make page_size 'i');
         Api.commit_file env c;
         if overlap then begin
           (* Leave an uncommitted record of another owner on the page. *)
           Api.pwrite env c ~pos:(page_size - 64) (Bytes.make 64 'o')
         end;
         (* Park so the dirty state stays alive while the measurement
            runs; commit our record at the very end. *)
         Engine.sleep 3_000_000;
         Api.close env c));
  ignore
    (Api.spawn_process sim.L.cluster ~site:requester_site ~name:"measured"
       (fun env ->
         Engine.sleep 500_000;
         let c = Api.open_file env "/f" in
         let e = K.engine (Api.cluster env) in
         (* The measured user's record at the start of page 0. *)
         Api.pwrite env c ~pos:0 (Bytes.make record_bytes 'm');
         Engine.sleep 10_000;
         let t0 = L.Engine.now e in
         let cpu0 = cpu_instr_site sim requester_site in
         Api.commit_file env c;
         let latency = L.Engine.now e - t0 in
         let service = cpu_instr_site sim requester_site - cpu0 in
         out := Some (service, latency);
         Api.close env c));
  L.run sim;
  let service, latency = Option.get !out in
  let breakdown =
    match otr with None -> [] | Some o -> phase_breakdown o
  in
  (service, latency, breakdown)

let e4 () =
  let cases =
    [
      ("local, non-overlap", 1, false, "21 ms / 73 ms");
      ("local, overlap", 1, true, "24 ms / 100 ms");
      ("remote, non-overlap", 0, false, "16 ms / 131 ms");
      ("remote, overlap", 0, true, "16 ms / 124 ms");
    ]
  in
  let metrics = ref [] in
  let rows =
    List.map
      (fun (name, site, overlap, paper) ->
        let service, latency, phases =
          measure_commit ~phases:true ~requester_site:site ~overlap ()
        in
        metrics :=
          Jsonout.single ~phases ~label:name ~latency_us:latency () :: !metrics;
        [
          name;
          Printf.sprintf "%s (%d inst)" (Tables.msf (instr_to_ms service)) service;
          Tables.ms latency;
          paper;
        ])
      cases
  in
  Tables.print_table
    ~title:"E4 / Figure 6: measured commit performance (requesting site)"
    ~columns:[ "case"; "service time"; "latency"; "paper svc/lat" ]
    rows;
  Jsonout.write ~exp:"e4" (List.rev !metrics);
  Tables.paper
    "overlap adds a moderate service-time cost locally and ~27 ms of latency \
     (the extra merged-page write); remote commits offload service to the \
     storage site but pay network latency"

let e6 () =
  let rows =
    List.map
      (fun page_size ->
        (* "A substantial portion of the page" is copied (footnote 11):
           the measured record covers ~60% of it. *)
        let record_bytes = page_size * 6 / 10 in
        let s_no, l_no, _ =
          measure_commit ~page_size ~record_bytes ~requester_site:1 ~overlap:false ()
        in
        let s_ov, l_ov, _ =
          measure_commit ~page_size ~record_bytes ~requester_site:1 ~overlap:true ()
        in
        [
          Printf.sprintf "%d B" page_size;
          Tables.msf (instr_to_ms s_no);
          Tables.ms l_no;
          Tables.msf (instr_to_ms s_ov);
          Tables.ms l_ov;
          Tables.msf (instr_to_ms (s_ov - s_no));
        ])
      [ 1024; 4096 ]
  in
  Tables.print_table
    ~title:"E6 / footnote 11: page-size sensitivity of the differencing commit"
    ~columns:
      [ "page size"; "svc (plain)"; "lat (plain)"; "svc (overlap)"; "lat (overlap)";
        "overlap svc delta" ]
    rows;
  Tables.paper
    "1 KiB pages in the measurements; 4 KiB pages would add ~1 ms where a \
     substantial part of the page is copied"
