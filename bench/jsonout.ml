(* Machine-readable experiment results. An experiment that calls [write]
   drops a BENCH_<exp>.json in the working directory with throughput and
   virtual-latency percentiles per measured case, so CI and scripts can
   trend results without scraping the human tables. The JSON is
   hand-formatted: the harness deliberately carries no serialization
   dependency. *)

(* One row of a per-phase commit-latency breakdown, harvested from the
   span collector's bounded histograms (Otrace.phases). *)
type phase = {
  ph_name : string;
  ph_count : int;
  ph_total_us : int;  (** summed virtual time inside the phase *)
  ph_p50_us : int;
}

type metric = {
  label : string;
  ops_per_sec : float;  (** throughput in operations per virtual second *)
  p50_us : int;  (** median virtual latency, microseconds *)
  p99_us : int;
  samples : int;
  phases : phase list;  (** optional per-phase breakdown; often empty *)
  extras : (string * float) list;
      (** experiment-specific scalar fields, emitted verbatim as extra
          JSON keys on the metric object (e.g. ["coord_forces"]) so gate
          scripts can check them with jq; often empty *)
}

let percentile latencies p =
  match List.sort Int.compare latencies with
  | [] -> 0
  | sorted ->
    let n = List.length sorted in
    let rank = int_of_float (Float.round (p *. float_of_int (n - 1) /. 100.)) in
    List.nth sorted (max 0 (min (n - 1) rank))

(* A metric from raw per-operation virtual latencies plus the virtual
   wall time the batch spanned (concurrent operations overlap, so
   throughput comes from the span, not the latency sum). *)
let metric ?(phases = []) ?(extras = []) ~label ~span_us latencies =
  let samples = List.length latencies in
  let ops_per_sec =
    if span_us <= 0 then 0.
    else float_of_int samples /. (float_of_int span_us /. 1_000_000.)
  in
  {
    label;
    ops_per_sec;
    p50_us = percentile latencies 50.;
    p99_us = percentile latencies 99.;
    samples;
    phases;
    extras;
  }

(* A metric from one measured operation (e.g. the single-shot paper
   reproductions): percentiles collapse to the one latency. *)
let single ?(phases = []) ?(extras = []) ~label ~latency_us () =
  {
    label;
    ops_per_sec =
      (if latency_us <= 0 then 0. else 1_000_000. /. float_of_int latency_us);
    p50_us = latency_us;
    p99_us = latency_us;
    samples = 1;
    phases;
    extras;
  }

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write ~exp metrics =
  let file = Printf.sprintf "BENCH_%s.json" exp in
  Out_channel.with_open_text file (fun oc ->
      let pf fmt = Printf.fprintf oc fmt in
      pf "{\n  \"experiment\": \"%s\",\n  \"metrics\": [\n" (escape exp);
      List.iteri
        (fun i m ->
          pf
            "    {\"label\": \"%s\", \"ops_per_sec\": %.2f, \
             \"p50_virtual_us\": %d, \"p99_virtual_us\": %d, \"samples\": %d"
            (escape m.label) m.ops_per_sec m.p50_us m.p99_us m.samples;
          List.iter
            (fun (k, v) -> pf ", \"%s\": %.2f" (escape k) v)
            m.extras;
          (match m.phases with
          | [] -> ()
          | phases ->
            pf ",\n     \"phases\": [\n";
            List.iteri
              (fun j p ->
                pf
                  "       {\"name\": \"%s\", \"count\": %d, \
                   \"total_virtual_us\": %d, \"p50_virtual_us\": %d}%s\n"
                  (escape p.ph_name) p.ph_count p.ph_total_us p.ph_p50_us
                  (if j = List.length phases - 1 then "" else ","))
              phases;
            pf "     ]");
          pf "}%s\n" (if i = List.length metrics - 1 then "" else ","))
        metrics;
      pf "  ]\n}\n");
  Fmt.pr "(wrote %s)@." file
