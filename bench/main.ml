(* The experiment harness: one entry per table/figure of the paper's
   evaluation (see DESIGN.md §5 for the index and EXPERIMENTS.md for the
   recorded outcomes).

     dune exec bench/main.exe            # run everything
     dune exec bench/main.exe -- e3 e4   # selected experiments *)

let experiments =
  [
    ("e1", "Figure 1: lock compatibility matrix", Exp_locks.e1);
    ("e2", "\xc2\xa76.2: locking latency local vs remote (+cache ablation)", Exp_locks.e2);
    ("e3", "Figure 5: transaction I/O overhead (+fn 9, phase-2 ablations)", Exp_io.e3);
    ("e4", "Figure 6: record commit performance", Exp_commit.e4);
    ("e5", "\xc2\xa76: shadow paging vs WAL (analytic + live)", Exp_walcmp.e5);
    ("e6", "fn 11: page-size sensitivity", Exp_commit.e6);
    ("e7", "\xc2\xa77.1: record vs whole-file locking concurrency", Exp_concurrency.e7);
    ("e8", "\xc2\xa74.3-4.4: crash at each 2PC stage", Exp_failure.e8);
    ("e9", "\xc2\xa74.1: migration cost and merge races", Exp_failure.e9);
    ("e10", "\xc2\xa73.1: deadlock detection", Exp_failure.e10);
    ("e12", "\xc2\xa71: concurrency scaling with sites", Exp_scaling.e12);
    ("e13", "\xc2\xa77.1: old nested facility vs BeginTrans/EndTrans", Exp_baseline.e13);
    ("e14", "Locus_check: schedule exploration throughput", Exp_check.e14);
    ("e15", "\xc2\xa75.2: replication read fan-out and commit propagation cost", Exp_repl.e15);
    ("e16", "group commit + RPC batching on the 2PC hot path", Exp_batch.e16);
    ("e17", "2PC vs Paxos Commit: non-blocking atomic commitment", Exp_pcommit.e17);
    ("e18", "locus_shard: dynamic lock placement on a hot-key workload", Exp_shard.e18);
    ("e19", "locus_chaos: record commit over a lossy network", Exp_chaos.e19);
    ("e20", "locus_health: health plane overhead + alarm latency", Exp_health.e20);
    ("e21", "locus_load: offered-load ladder + engine dispatch speed", Exp_load.e21);
    ("micro", "bechamel microbenchmarks", Micro.run);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map (fun (n, _, _) -> n) experiments
  in
  Fmt.pr
    "Locus transactions reproduction - experiment harness@.\
     (virtual 1985 hardware: 0.5 MIPS CPU, 10 Mb Ethernet, ~25 ms disk)@.";
  List.iter
    (fun name ->
      match List.find_opt (fun (n, _, _) -> n = name) experiments with
      | Some (_, desc, f) ->
        Fmt.pr "@.=== %s: %s ===@." (String.uppercase_ascii name) desc;
        f ()
      | None -> Fmt.epr "unknown experiment %S@." name)
    requested;
  Fmt.pr "@.done.@."
