(* E15 — §5.2 primary-copy replication: what replication buys reads and
   costs writes.

   Read fan-out: processes at every site hammer one committed file. With
   replication, a reader whose site hosts a secondary copy is served
   locally (no round trip to the primary); without, every remote reader
   pays the wire both ways. Commit cost: phase-2 propagation to the
   secondaries is synchronous, so each extra copy adds messages to the
   committer's critical path. *)

open Harness

let n_sites = 3
let readers_per_site = 2
let reads_each = 25
let commits = 20

let read_fanout ~factor =
  let config = K.Config.with_replication ~n_sites ~factor in
  let sim = fresh ~config ~n_sites () in
  let cl = sim.L.cluster in
  run_proc sim ~site:1 (fun env ->
      let c = Api.creat env "/hot" ~vid:1 in
      Api.write_string env c (String.make 4096 'd');
      Api.commit_file env c;
      Api.close env c);
  let lats = ref [] in
  let t0 = now sim in
  for r = 0 to (n_sites * readers_per_site) - 1 do
    ignore
      (Api.spawn_process cl ~site:(r mod n_sites)
         ~name:(Printf.sprintf "reader%d" r)
         (fun env ->
           let c = Api.open_file env "/hot" in
           let e = K.engine cl in
           for i = 0 to reads_each - 1 do
             let pos = 512 * ((i + r) mod 8) in
             let t = L.Engine.now e in
             ignore (Api.pread env c ~pos ~len:128);
             lats := (L.Engine.now e - t) :: !lats
           done;
           Api.close env c))
  done;
  L.run sim;
  let span = now sim - t0 in
  let local = L.Stats.get (stats sim) "replica.local_reads" in
  (!lats, span, local)

let commit_cost ~factor =
  let config = K.Config.with_replication ~n_sites ~factor in
  let sim = fresh ~config ~n_sites () in
  let otr = with_otrace sim in
  let lats = ref [] in
  (* Commit at the file's primary site so the measured latency is pure
     commit + propagation, with no client/primary wire in front. *)
  run_proc sim ~site:1 (fun env ->
      let c = Api.creat env "/paid" ~vid:1 in
      let e = K.engine (Api.cluster env) in
      for i = 1 to commits do
        Api.pwrite env c ~pos:(64 * (i mod 8)) (Bytes.make 64 'w');
        let t = L.Engine.now e in
        Api.commit_file env c;
        lats := (L.Engine.now e - t) :: !lats
      done;
      Api.close env c);
  (!lats, phase_breakdown otr)

let e15 () =
  let metrics = ref [] in
  let read_rows =
    List.map
      (fun factor ->
        let lats, span, local = read_fanout ~factor in
        let m =
          Jsonout.metric
            ~label:(Printf.sprintf "reads, %d copies" factor)
            ~span_us:span lats
        in
        metrics := m :: !metrics;
        [
          Tables.i factor;
          Tables.i m.Jsonout.samples;
          Tables.i local;
          Tables.ms m.Jsonout.p50_us;
          Tables.ms m.Jsonout.p99_us;
          Printf.sprintf "%.0f reads/s" m.Jsonout.ops_per_sec;
        ])
      [ 1; 2; 3 ]
  in
  Tables.print_table
    ~title:
      (Printf.sprintf
         "E15 / \xc2\xa75.2: read fan-out, %d readers x %d reads, one hot \
          file, 3 sites"
         (n_sites * readers_per_site) reads_each)
    ~columns:
      [ "copies"; "reads"; "served locally"; "p50"; "p99"; "throughput" ]
    read_rows;
  let commit_rows =
    List.map
      (fun factor ->
        let lats, phases = commit_cost ~factor in
        let span = List.fold_left ( + ) 0 lats in
        let m =
          Jsonout.metric ~phases
            ~label:(Printf.sprintf "commits, %d copies" factor)
            ~span_us:span lats
        in
        metrics := m :: !metrics;
        [
          Tables.i factor;
          Tables.ms m.Jsonout.p50_us;
          Tables.ms m.Jsonout.p99_us;
          Printf.sprintf "%.0f commits/s" m.Jsonout.ops_per_sec;
        ])
      [ 1; 2; 3 ]
  in
  Tables.print_table
    ~title:
      (Printf.sprintf
         "E15 / \xc2\xa75.2: record commit at the primary, %d sequential \
          commits, synchronous propagation"
         commits)
    ~columns:[ "copies"; "p50"; "p99"; "throughput" ]
    commit_rows;
  Jsonout.write ~exp:"e15" (List.rev !metrics);
  Tables.paper
    "\xc2\xa75.2: reads may be served by any reachable copy while all \
     updates flow through the primary update site, which propagates \
     committed versions to the other copies"
