(* E16 — group commit + RPC batching on the 2PC hot path.

   Eight concurrent writer transactions at site 0 each update their own
   replicated file stored at site 1 (factor 2, so phase-2 commit also
   propagates deltas to a secondary). One file per writer keeps the
   filestore's per-file commit gate out of the measurement — the point
   is concurrent independent commits, the workload group commit exists
   for. With the batch window
   at 0 every committing transaction forces the coordinator log and the
   participant's prepare log individually and every prepare / phase-2 /
   replica-delta message travels alone; with a non-zero window
   concurrent forces on the same volume share one platter write and
   same-destination messages coalesce into one [Msg.Batch].

   The JSON row per window carries the raw counters (coordinator-log
   forces, total messages, commits) as extras, so scripts/bench_gate.sh
   can assert the headline ratios: >= 2x fewer coordinator-log forces
   and >= 1.5x fewer per-commit messages than window 0.

   LOCUS_BREAK_BATCH=1 disables all three optimisations at run time
   (Locus_batch.Flags.break_batch) while leaving the windows configured:
   the CI gate runs e16 once with the flag set to prove the ratio check
   actually fires. *)

open Harness

let n_writers = 8
let rec_len = 64
let windows = [ 0; 200; 500; 2000 ]

type sample = {
  window : int;
  commits : int;
  coord_forces : int;  (** log writes on site 0's volume: coordinator log *)
  total_log_forces : int;  (** log writes across every volume *)
  msgs : int;
  latencies : int list;
  span_us : int;
}

let run_once ~window =
  let sites = 3 in
  let base = K.Config.with_replication ~n_sites:sites ~factor:2 in
  let config =
    if window > 0 then K.Config.with_batching ~window_us:window base else base
  in
  let sim = fresh ~config ~n_sites:sites () in
  let cl = sim.L.cluster in
  (* Site 0's copy of volume 0 holds no file data in this layout, so its
     log-write counter isolates the coordinator log. *)
  let coord_vol =
    List.find
      (fun v -> Locus_disk.Volume.vid v = 0)
      (Locus_fs.Filestore.volumes (K.filestore (K.kernel cl 0)))
  in
  let committed = ref 0 in
  let lats = ref [] in
  let msgs0 = ref 0 and coord0 = ref 0 and logs0 = ref 0 in
  let t_start = ref 0 and t_end = ref 0 in
  let file i = Printf.sprintf "/batch/w%d" i in
  let e = K.engine cl in
  (* The writers are independent top-level processes parked until a
     common virtual instant, not children forked in a loop: sequential
     forks would stagger their starts by the fork cost and keep the
     whole cohort spaced wider than any realistic window forever. *)
  let wake_at = 5_000_000 in
  let setup_pid =
    Api.spawn_process cl ~site:0 ~name:"setup" (fun env ->
        List.init n_writers Fun.id
        |> List.iter (fun i ->
               let c = Api.creat env (file i) ~vid:1 in
               Api.write_string env c (String.make rec_len 'i');
               Api.commit_file env c;
               Api.close env c))
  in
  let writer i =
    Api.spawn_process cl ~site:0 ~name:(Printf.sprintf "w%d" i) (fun w ->
        (* Open and warm up before the barrier: path resolution and the
           first read pay serialized disk I/O at the storage site, which
           would otherwise stagger the cohort. The measured transaction
           then runs against a warm cache — the hot path. *)
        Api.wait_pid w setup_pid;
        let c = Api.open_file w (file i) in
        ignore (Api.pread w c ~pos:0 ~len:rec_len);
        Engine.sleep (wake_at - L.Engine.now e);
        let t0 = L.Engine.now e in
        Api.begin_trans w;
        (* The read path is part of the feature under test: batched runs
           take the piggybacked one-round-trip read, the window-0
           baseline the explicit lock-then-read protocol of today. *)
        if window > 0 then ignore (Api.pread_locked w c ~pos:0 ~len:rec_len)
        else begin
          Api.seek w c ~pos:0;
          (match Api.lock w c ~len:rec_len ~mode:M.Shared () with
          | Api.Granted -> ()
          | Api.Conflict _ -> ());
          ignore (Api.pread w c ~pos:0 ~len:rec_len)
        end;
        Api.seek w c ~pos:0;
        (match Api.lock w c ~len:rec_len ~mode:M.Exclusive () with
        | Api.Granted -> ()
        | Api.Conflict _ -> ());
        Api.pwrite w c ~pos:0 (Bytes.make rec_len 'u');
        (match Api.end_trans w with
        | K.Committed -> incr committed
        | K.Aborted -> ());
        lats := (L.Engine.now e - t0) :: !lats;
        Api.close w c)
  in
  let pids = List.init n_writers writer in
  (* Snapshot the counters just before the cohort wakes (setup's replica
     propagation has long drained), and close the span when the last
     writer exits. *)
  ignore
    (Api.spawn_process cl ~site:0 ~name:"monitor" (fun env ->
         Engine.sleep (wake_at - 1_000 - L.Engine.now e);
         msgs0 := L.Stats.get (stats sim) "net.msg";
         coord0 := Locus_disk.Volume.io_log_writes coord_vol;
         let _, _, logs = io_counts sim in
         logs0 := logs;
         t_start := L.Engine.now e;
         List.iter (Api.wait_pid env) pids;
         t_end := L.Engine.now e));
  L.run sim;
  let _, _, logs1 = io_counts sim in
  {
    window;
    commits = !committed;
    coord_forces = Locus_disk.Volume.io_log_writes coord_vol - !coord0;
    total_log_forces = logs1 - !logs0;
    msgs = L.Stats.get (stats sim) "net.msg" - !msgs0;
    latencies = List.rev !lats;
    span_us = !t_end - !t_start;
  }

let e16 () =
  (match Sys.getenv_opt "LOCUS_BREAK_BATCH" with
  | Some ("1" | "true") ->
    Fmt.pr "!! LOCUS_BREAK_BATCH: batching optimisations disabled@.";
    Locus_batch.Flags.break_batch := true
  | Some _ | None -> ());
  Fun.protect ~finally:(fun () -> Locus_batch.Flags.break_batch := false)
  @@ fun () ->
  let samples = List.map (fun window -> run_once ~window) windows in
  let per_commit v s =
    if s.commits = 0 then 0. else float_of_int v /. float_of_int s.commits
  in
  let rows =
    List.map
      (fun s ->
        [
          (if s.window = 0 then "window 0 (off)"
           else Printf.sprintf "window %d us" s.window);
          string_of_int s.commits;
          string_of_int s.coord_forces;
          string_of_int s.total_log_forces;
          string_of_int s.msgs;
          Printf.sprintf "%.1f" (per_commit s.msgs s);
          Tables.ms (Jsonout.percentile s.latencies 50.);
        ])
      samples
  in
  Tables.print_table
    ~title:
      (Printf.sprintf
         "E16: group commit + RPC batching (%d writers, 3 sites, 2 replicas)"
         n_writers)
    ~columns:
      [ "batch window"; "commits"; "coord forces"; "log forces"; "msgs";
        "msgs/commit"; "p50 latency" ]
    rows;
  let metrics =
    List.map
      (fun s ->
        Jsonout.metric
          ~extras:
            [
              ("window_us", float_of_int s.window);
              ("commits", float_of_int s.commits);
              ("coord_forces", float_of_int s.coord_forces);
              ("total_log_forces", float_of_int s.total_log_forces);
              ("msgs", float_of_int s.msgs);
              ("msgs_per_commit", per_commit s.msgs s);
            ]
          ~label:
            (if s.window = 0 then "window 0 (off)"
             else Printf.sprintf "window %d us" s.window)
          ~span_us:s.span_us s.latencies)
      samples
  in
  Jsonout.write ~exp:"e16" metrics;
  Tables.paper
    "not in the paper: batching is a post-hoc optimisation of the \
     reproduction's 2PC hot path; the paper's protocol semantics (forces \
     before replies, commit point at the decision record) are preserved"
