(* Shared plumbing for the experiments. *)

module L = Locus_core.Locus
module Api = L.Api
module K = L.Kernel
module M = L.Mode

let fresh ?config ?costs ?(seed = 42) ~n_sites () = L.make ?config ?costs ~seed ~n_sites ()

(* Run [f] as a single user process and drain the engine. *)
let run_proc sim ~site f =
  ignore (Api.spawn_process sim.L.cluster ~site f);
  L.run sim

let stats sim = L.Engine.stats sim.L.engine
let now sim = L.Engine.now sim.L.engine

(* Total disk I/Os across every volume of the cluster. *)
let io_counts sim =
  let reads = ref 0 and writes = ref 0 and logs = ref 0 in
  List.iter
    (fun k ->
      List.iter
        (fun vol ->
          reads := !reads + Locus_disk.Volume.io_reads vol;
          writes := !writes + Locus_disk.Volume.io_writes vol;
          logs := !logs + Locus_disk.Volume.io_log_writes vol)
        (Locus_fs.Filestore.volumes (K.filestore k)))
    (K.kernels sim.L.cluster);
  (!reads, !writes, !logs)

let reset_io sim =
  List.iter
    (fun k ->
      List.iter Locus_disk.Volume.reset_io_counters
        (Locus_fs.Filestore.volumes (K.filestore k)))
    (K.kernels sim.L.cluster)

(* Install a span collector on a fresh sim; harvest its per-phase
   histograms with [phase_breakdown] after the run. Spans consume no
   virtual time, so measured latencies are identical with or without it. *)
let with_otrace sim =
  let otr = L.Otrace.create (K.engine sim.L.cluster) in
  K.set_otracer sim.L.cluster (Some otr);
  otr

(* The commit-path phases worth a column in BENCH_<exp>.json. *)
let bench_phases =
  [
    "lock.wait"; "coord_log.write"; "2pc.prepare"; "prepare.force";
    "2pc.votes"; "commit.force"; "2pc.phase2"; "phase2.apply";
    "replica.propagate"; "lock.release"; "commit-file"; "replica-commit";
  ]

let phase_breakdown otr =
  List.filter_map
    (fun (name, h) ->
      if List.mem name bench_phases && L.Stats.Hist.count h > 0 then
        Some
          {
            Jsonout.ph_name = name;
            ph_count = L.Stats.Hist.count h;
            ph_total_us = L.Stats.Hist.total h;
            ph_p50_us = L.Stats.Hist.quantile h 50;
          }
      else None)
    (L.Otrace.phases otr)

let cpu_instr sim = L.Stats.get (stats sim) "cpu.instr"

let cpu_instr_site sim s =
  L.Stats.get (stats sim) (Printf.sprintf "cpu.instr.site%d" s)

let instr_to_ms instr =
  float_of_int (instr * Locus_sim.Costs.default.Locus_sim.Costs.instr_ns) /. 1_000_000.
