(* E18 — dynamic lock placement under a hot-key workload.

   32 sites, 8 hot files on one volume, each with a dominant site that
   issues ~80% of that file's lock traffic (the rest is uniform noise —
   a Zipf-flavoured skew with one head key per worker). With static
   placement every acquisition from a dominant site is a cross-site
   round trip to the storage site; with locus_shard's threshold policy
   the lock-manager role migrates to the traffic after a short remote
   streak and the same workload runs against the local lock table.

   The JSON rows carry the local-hit ratio (local grants over all
   grants, measured phase only) and the migration count, so the perf
   gate can assert that placement actually collapses the round trips —
   and LOCUS_BREAK_SHARD=1 runs the same bench with the stand-down
   fault injected, which must drag the ratio back under the gate's
   floor (the inversion that proves the gate has teeth). *)

open Harness
module Policy = Locus_shard.Policy

let n_sites = 32
let n_keys = 8
let rounds = 24
let rec_len = 64
let wake_at = 5_000_000

type sample = {
  label : string;
  grants : int;
  local : int;
  remote : int;
  migrations : int;
  latencies : int list;
  span_us : int;
}

let key i = Printf.sprintf "/sh/k%d" i

let run_once ~policy ~label =
  let config =
    K.Config.with_shards ~shards:n_keys ~policy
      (K.Config.default ~n_sites)
  in
  let sim = fresh ~config ~n_sites () in
  let cl = sim.L.cluster in
  let e = K.engine cl in
  let lats = ref [] in
  let local0 = ref 0 and remote0 = ref 0 in
  let t_start = ref 0 and t_end = ref 0 in
  let setup_pid =
    Api.spawn_process cl ~site:0 ~name:"setup" (fun env ->
        List.init n_keys Fun.id
        |> List.iter (fun i ->
               let c = Api.creat env (key i) ~vid:1 in
               Api.write_string env c (String.make rec_len 'i');
               Api.commit_file env c;
               Api.close env c))
  in
  (* Worker i lives at its key's dominant site: one hop away from the
     storage site, hammering mostly its own key. *)
  let worker i =
    let rng = Prng.create ~seed:(1000 + i) in
    let home_of k =
      match K.lookup cl (key k) with
      | Some fid -> K.shard_default_owner cl fid
      | None -> 0
    in
    Api.spawn_process cl ~site:0 ~name:(Printf.sprintf "sh%d" i) (fun w ->
        Api.wait_pid w setup_pid;
        let dominant = (home_of i + 1 + i) mod n_sites in
        Api.migrate w dominant;
        let chans = Array.init n_keys (fun k -> Api.open_file w (key k)) in
        Engine.sleep (wake_at - L.Engine.now e);
        for _ = 1 to rounds do
          let k =
            if Prng.int rng 10 < 8 then i else Prng.int rng n_keys
          in
          let c = chans.(k) in
          Api.seek w c ~pos:0;
          let t0 = L.Engine.now e in
          (match Api.lock w c ~len:rec_len ~mode:M.Exclusive () with
          | Api.Granted -> ()
          | Api.Conflict _ -> ());
          lats := (L.Engine.now e - t0) :: !lats;
          Api.seek w c ~pos:0;
          Api.unlock w c ~len:rec_len;
          Engine.sleep 2_000
        done;
        Array.iter (fun c -> Api.close w c) chans)
  in
  let pids = List.init n_keys worker in
  ignore
    (Api.spawn_process cl ~site:0 ~name:"monitor" (fun env ->
         Engine.sleep (wake_at - 1_000 - L.Engine.now e);
         local0 := L.Stats.get (stats sim) "shard.local_grants";
         remote0 := L.Stats.get (stats sim) "shard.remote_grants";
         t_start := L.Engine.now e;
         List.iter (Api.wait_pid env) pids;
         t_end := L.Engine.now e));
  L.run sim;
  let local = L.Stats.get (stats sim) "shard.local_grants" - !local0
  and remote = L.Stats.get (stats sim) "shard.remote_grants" - !remote0 in
  {
    label;
    grants = local + remote;
    local;
    remote;
    migrations = L.Stats.get (stats sim) "shard.migrations";
    latencies = List.rev !lats;
    span_us = !t_end - !t_start;
  }

let e18 () =
  let break = Sys.getenv_opt "LOCUS_BREAK_SHARD" = Some "1" in
  Locus_shard.Flags.break_shard := break;
  Fun.protect ~finally:(fun () -> Locus_shard.Flags.break_shard := false)
  @@ fun () ->
  let samples =
    [
      run_once ~policy:Policy.Never ~label:"placement off";
      run_once ~policy:(Policy.Threshold 3)
        ~label:(if break then "placement on (broken)" else "placement on");
    ]
  in
  let ratio s =
    if s.grants = 0 then 0.
    else float_of_int s.local /. float_of_int s.grants
  in
  Tables.print_table
    ~title:
      (Printf.sprintf
         "E18: dynamic lock placement, %d hot keys, %d sites%s" n_keys
         n_sites
         (if break then " [BREAK-SHARD]" else ""))
    ~columns:
      [ "case"; "grants"; "local"; "remote"; "local-hit"; "migrations";
        "lock p50"; "lock p99" ]
    (List.map
       (fun s ->
         [
           s.label;
           string_of_int s.grants;
           string_of_int s.local;
           string_of_int s.remote;
           Printf.sprintf "%.2f" (ratio s);
           string_of_int s.migrations;
           Tables.ms (Jsonout.percentile s.latencies 50.);
           Tables.ms (Jsonout.percentile s.latencies 99.);
         ])
       samples);
  let metrics =
    List.map
      (fun s ->
        Jsonout.metric
          ~extras:
            [
              ("grants", float_of_int s.grants);
              ("local_grants", float_of_int s.local);
              ("remote_grants", float_of_int s.remote);
              ("local_hit_ratio", ratio s);
              ("migrations", float_of_int s.migrations);
            ]
          ~label:s.label ~span_us:s.span_us s.latencies)
      samples
  in
  Jsonout.write ~exp:"e18" metrics;
  Tables.paper
    "not in the paper: §5.2 stops at temporary delegation of lock \
     control; locus_shard makes the placement durable and dynamic — a \
     directory-backed lock-manager role that migrates toward the \
     traffic under an epoch fence"
