(* E19 — the price of a lossy network (locus_chaos).

   The same remote record-commit workload as E4's remote case, run with
   the chaos layer armed at increasing drop rates: every wire leg may be
   dropped or duplicated, and messages reorder within a 2-latency
   window. The table prices what loss costs the commit path — latency
   percentiles stretched by retry timeouts, extra messages from retries
   and duplicates — and proves exactly-once held: every run lands the
   same number of commits, and at non-zero rates the server reply
   caches must show hits (a retried request whose original executed,
   answered without re-running the handler).

   The retry timeout dominates lossy latency, so this experiment runs
   with a 2 s RPC timeout instead of the default 30 s — the knob a real
   deployment would turn first (HACKING.md, chaos knobs). *)

open Harness

let n_commits = 40
let record_bytes = 100
let rpc_timeout_us = 2_000_000

type sample = {
  label : string;
  latencies : int list;
  span_us : int;
  msgs : int;
  retries : int;
  drops : int;
  dups : int;
  dedup_hits : int;
  commits : int;
}

let run_once ~drop ~label =
  let config =
    {
      (K.Config.with_net_faults ~drop ~dup:drop ~reorder:2
         (K.Config.default ~n_sites:2))
      with K.Config.rpc_timeout_us;
    }
  in
  let sim = fresh ~config ~n_sites:2 () in
  let lats = ref [] and commits = ref 0 in
  let t_start = ref 0 and t_end = ref 0 and msg0 = ref 0 in
  ignore
    (Api.spawn_process sim.L.cluster ~site:0 ~name:"writer" (fun env ->
         let e = K.engine (Api.cluster env) in
         (* Remote volume: every write, lock and commit crosses the
            (lossy) wire. *)
         let c = Api.creat env "/chaos" ~vid:1 in
         Api.write_string env c (String.make record_bytes 'i');
         Api.commit_file env c;
         msg0 := L.Stats.get (stats sim) "net.msg";
         t_start := L.Engine.now e;
         for i = 1 to n_commits do
           Api.pwrite env c ~pos:0 (Bytes.make record_bytes (Char.chr (64 + (i mod 26))));
           let t0 = L.Engine.now e in
           Api.commit_file env c;
           lats := (L.Engine.now e - t0) :: !lats;
           incr commits
         done;
         t_end := L.Engine.now e;
         Api.close env c));
  L.run sim;
  {
    label;
    latencies = List.rev !lats;
    span_us = !t_end - !t_start;
    msgs = L.Stats.get (stats sim) "net.msg" - !msg0;
    retries = L.Stats.get (stats sim) "net.retries";
    drops = L.Stats.get (stats sim) "net.drop";
    dups = L.Stats.get (stats sim) "net.dup";
    dedup_hits = L.Stats.get (stats sim) "net.dedup_hits";
    commits = !commits;
  }

let e19 () =
  let samples =
    [
      run_once ~drop:0.0 ~label:"clean (chaos armed, 0%)";
      run_once ~drop:0.01 ~label:"drop 1%";
      run_once ~drop:0.05 ~label:"drop 5%";
    ]
  in
  let per s n = float_of_int n /. float_of_int (max 1 s.commits) in
  Tables.print_table
    ~title:
      (Printf.sprintf
         "E19: remote record commit over a lossy network (%d commits)"
         n_commits)
    ~columns:
      [ "case"; "commits"; "p50"; "p99"; "msgs/commit"; "retries/commit";
        "drop+dup"; "dedup hits" ]
    (List.map
       (fun s ->
         [
           s.label;
           string_of_int s.commits;
           Tables.ms (Jsonout.percentile s.latencies 50.);
           Tables.ms (Jsonout.percentile s.latencies 99.);
           Printf.sprintf "%.1f" (per s s.msgs);
           Printf.sprintf "%.2f" (per s s.retries);
           string_of_int (s.drops + s.dups);
           string_of_int s.dedup_hits;
         ])
       samples);
  Jsonout.write ~exp:"e19"
    (List.map
       (fun s ->
         Jsonout.metric
           ~extras:
             [
               ("commits", float_of_int s.commits);
               ("msgs_per_commit", per s s.msgs);
               ("retries_per_commit", per s s.retries);
               ("drops", float_of_int s.drops);
               ("dups", float_of_int s.dups);
               ("dedup_hits", float_of_int s.dedup_hits);
             ]
           ~label:s.label ~span_us:s.span_us s.latencies)
       samples);
  Tables.paper
    "not in the paper: the kernel protocol is a datagram protocol \
     [Popek81], so loss is its normal case — E19 prices the retry + \
     exactly-once machinery that keeps record commit correct when the \
     wire misbehaves"
