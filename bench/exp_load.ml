(* E21 — locus_load: the offered-load ladder and the engine's own speed.

   Two questions, one experiment:

   1. Where is the saturation knee? An open-loop generator offers the
      same Poisson arrival ladder (6 → 48 txn/s) regardless of how the
      cluster copes. Below the knee completed tracks offered and sojourn
      sits on the no-wait floor (~0.5 virtual seconds of disk time per
      transaction); past it the queues grow without bound and the
      sustained completion rate converges on capacity (~15 txn/s for the
      3-site default mix). Everything on the virtual clock here is
      deterministic and the ±10% baseline gate holds it.

   2. Is the simulator fast enough to be the harness and not the
      bottleneck? The same runs are timed on the host clock and the
      dispatch rate (engine events per wall second) is reported as
      [events_per_sec_wall]. That number is machine-dependent — the gate
      (scripts/bench_gate.sh, MIN_WALL_EPS) only enforces a generous
      floor, and CI proves the gate has teeth by re-running under
      LOCUS_BREAK_LOAD=1, which arms an O(queue-length) scan per
      dispatched event in the engine: virtual results stay byte-identical
      while the wall rate collapses, and the floor must catch it. *)

open Harness
module Ld = Locus_load

let rates = [ 6.; 12.; 24.; 48. ]
let duration_us = 3_000_000
let seed = 42

let run_rate rate =
  let scenario =
    { Ld.Scenario.default with Ld.Scenario.arrival = Ld.Arrival.constant rate }
  in
  let cfg = { Ld.Driver.default_config with Ld.Driver.scenario; duration_us; seed } in
  let wall0 = Unix.gettimeofday () in
  let report, _sim = Ld.Driver.run cfg in
  (report, Unix.gettimeofday () -. wall0)

let e21 () =
  if Sys.getenv_opt "LOCUS_BREAK_LOAD" = Some "1" then begin
    Fmt.pr "!! LOCUS_BREAK_LOAD=1: arming an O(n) scan per dispatched event@.";
    L.Engine.break_load := true
  end;
  let runs = List.map (fun r -> (r, run_rate r)) rates in
  Tables.print_table
    ~title:
      (Printf.sprintf
         "E21: open-loop offered-load ladder (3 sites, %d virtual s per run)"
         (duration_us / 1_000_000))
    ~columns:
      [ "offered/s"; "completed/s"; "done/offered"; "sojourn p50"; "p99"; "aborts" ]
    (List.map
       (fun (_, ((r : Ld.Driver.report), _)) ->
         [
           Printf.sprintf "%.1f" r.Ld.Driver.offered_per_sec;
           Printf.sprintf "%.1f" r.Ld.Driver.completed_per_sec;
           Printf.sprintf "%d/%d" r.Ld.Driver.completed r.Ld.Driver.offered;
           Tables.ms r.Ld.Driver.sojourn_p50_us;
           Tables.ms r.Ld.Driver.sojourn_p99_us;
           string_of_int r.Ld.Driver.aborted;
         ])
       runs);
  let total_events =
    List.fold_left (fun a (_, (r, _)) -> a + r.Ld.Driver.events_fired) 0 runs
  in
  let total_virtual_us =
    List.fold_left (fun a (_, (r, _)) -> a + r.Ld.Driver.virtual_us) 0 runs
  in
  let total_wall = List.fold_left (fun a (_, (_, w)) -> a +. w) 0. runs in
  let wall_eps =
    if total_wall <= 0. then 0. else float_of_int total_events /. total_wall
  in
  Tables.print_table ~title:"E21: engine dispatch speed over the ladder"
    ~columns:[ "events"; "virtual s"; "wall s"; "events/s (wall)" ]
    [
      [
        string_of_int total_events;
        Printf.sprintf "%.1f" (float_of_int total_virtual_us /. 1e6);
        Printf.sprintf "%.3f" total_wall;
        Printf.sprintf "%.0f" wall_eps;
      ];
    ];
  Jsonout.write ~exp:"e21"
    (List.map
       (fun (rate, ((r : Ld.Driver.report), _)) ->
         (* ops_per_sec / p50 are virtual-clock values: deterministic per
            seed, held by the ±10% baseline gate. *)
         {
           (Jsonout.single
              ~extras:
                [
                  ("offered", float_of_int r.Ld.Driver.offered);
                  ("completed", float_of_int r.Ld.Driver.completed);
                  ("aborted", float_of_int r.Ld.Driver.aborted);
                  ("shed", float_of_int r.Ld.Driver.shed);
                  ("offered_per_sec", r.Ld.Driver.offered_per_sec);
                  ("events_fired", float_of_int r.Ld.Driver.events_fired);
                ]
              ~label:(Printf.sprintf "rate %.0f/s" rate)
              ~latency_us:r.Ld.Driver.sojourn_p50_us ())
           with
           Jsonout.ops_per_sec = r.Ld.Driver.completed_per_sec;
           p99_us = r.Ld.Driver.sojourn_p99_us;
           samples = r.Ld.Driver.completed;
         })
       runs
    @ [
        (* The wall rate is host-dependent by nature: it rides as an
           extra (ignored by the baseline diff) and only the MIN_WALL_EPS
           floor gates it. ops_per_sec here is events per VIRTUAL second
           — deterministic, so the baseline comparison still covers the
           event count. *)
        {
          (Jsonout.single
             ~extras:
               [
                 ("events_fired", float_of_int total_events);
                 ("wall_s", total_wall);
                 ("events_per_sec_wall", wall_eps);
                 ( "break_load",
                   if !L.Engine.break_load then 1. else 0. );
               ]
             ~label:"engine speed" ~latency_us:0 ())
          with
          Jsonout.ops_per_sec =
            (if total_virtual_us <= 0 then 0.
             else float_of_int total_events /. (float_of_int total_virtual_us /. 1e6));
          samples = total_events;
        };
      ]);
  Tables.paper
    "not in the paper: the ladder is the modern way to read Figure 6 — \
     the 1985 hardware's ~25 ms disk forces put the 3-site knee near 15 \
     txn/s, and an open-loop generator shows both sides of it; the wall \
     events/s row is the harness watching itself"
