(* Locus_batch: group commit, RPC coalescing, lock-read piggybacking,
   and the unified RPC timeout default. *)

module V = Locus_disk.Volume
module T = Locus_net.Transport
module L = Locus_core.Locus
module Api = L.Api
module K = L.Kernel
module M = Locus_lock.Mode
module Ck = Locus_check

let in_sim f =
  let e = Engine.create () in
  ignore (Engine.spawn e (fun () -> f e));
  Engine.run e

(* {1 Volume-level group commit} *)

let test_group_commit_shares_force () =
  let e = Engine.create () in
  let v = V.create e ~vid:1 () in
  V.set_group_commit v ~site:0 ~window_us:1_000;
  List.iter
    (fun i ->
      ignore
        (Engine.spawn e (fun () ->
             ignore (V.log_append v ~tag:"t" (Printf.sprintf "r%d" i)))))
    [ 0; 1; 2; 3 ];
  Engine.run e;
  Alcotest.(check int) "one shared force" 1 (V.io_log_writes v);
  Alcotest.(check int) "all records installed" 4
    (List.length (V.log_records v));
  let st = Engine.stats e in
  Alcotest.(check int) "one group force" 1 (Stats.get st "log.group_forces");
  Alcotest.(check int) "three forces saved" 3 (Stats.get st "log.forces_saved")

let test_window_zero_is_unbatched () =
  let e = Engine.create () in
  let v = V.create e ~vid:1 () in
  List.iter
    (fun i ->
      ignore
        (Engine.spawn e (fun () ->
             ignore (V.log_append v ~tag:"t" (Printf.sprintf "r%d" i)))))
    [ 0; 1; 2; 3 ];
  Engine.run e;
  Alcotest.(check int) "one force per record" 4 (V.io_log_writes v);
  Alcotest.(check int) "no group forces" 0
    (Stats.get (Engine.stats e) "log.group_forces")

let test_break_batch_degrades_group_commit () =
  Locus_batch.Flags.break_batch := true;
  Fun.protect ~finally:(fun () -> Locus_batch.Flags.break_batch := false)
  @@ fun () ->
  let e = Engine.create () in
  let v = V.create e ~vid:1 () in
  V.set_group_commit v ~site:0 ~window_us:1_000;
  List.iter
    (fun i ->
      ignore
        (Engine.spawn e (fun () ->
             ignore (V.log_append v ~tag:"t" (Printf.sprintf "r%d" i)))))
    [ 0; 1; 2 ];
  Engine.run e;
  Alcotest.(check int) "degraded to one force per record" 3 (V.io_log_writes v)

let test_append_many_is_one_submission () =
  let e = Engine.create () in
  let v = V.create e ~vid:1 () in
  V.set_group_commit v ~site:0 ~window_us:1_000;
  ignore
    (Engine.spawn e (fun () ->
         ignore (V.log_append_many v ~tag:"multi" [ "a"; "b"; "c" ])));
  Engine.run e;
  Alcotest.(check int) "one force for the group" 1 (V.io_log_writes v);
  Alcotest.(check (list string))
    "records in submission order" [ "a"; "b"; "c" ]
    (List.map (fun (_, _, p) -> p) (V.log_records v))

let test_crash_inside_window_is_atomic () =
  let e = Engine.create () in
  let v = V.create e ~vid:1 () in
  V.set_group_commit v ~site:1 ~window_us:50_000;
  (* Submitters run at the volume's site, like the kernel's commit path:
     the crash must take flusher and waiters down together, and nothing
     submitted inside the window may become durable. *)
  List.iter
    (fun i ->
      ignore
        (Engine.spawn ~site:1 e (fun () ->
             ignore (V.log_append v ~tag:"t" (Printf.sprintf "r%d" i)))))
    [ 0; 1; 2 ];
  ignore
    (Engine.spawn e (fun () ->
         Engine.sleep 2_000;
         Engine.kill_site e 1;
         V.reset_group_commit v));
  Engine.run e;
  Alcotest.(check int) "no force happened" 0 (V.io_log_writes v);
  Alcotest.(check int) "no record survived" 0 (List.length (V.log_records v));
  (* The batcher recovers after the crash: the next submission opens a
     fresh window (re-homed to a live site) and flushes normally. *)
  V.set_group_commit v ~site:0 ~window_us:50_000;
  ignore (Engine.spawn e (fun () -> ignore (V.log_append v ~tag:"t" "after")));
  Engine.run e;
  Alcotest.(check int) "post-crash force" 1 (V.io_log_writes v);
  Alcotest.(check (list string))
    "post-crash record" [ "after" ]
    (List.map (fun (_, _, p) -> p) (V.log_records v))

(* {1 Transport RPC coalescing} *)

let batch_codec =
  let wrap reqs = "B," ^ String.concat "," reqs in
  let unwrap resp =
    match String.split_on_char '|' resp with
    | [ _ ] -> None
    | parts -> Some parts
  in
  (wrap, unwrap)

let batch_handler calls ~src:_ req =
  calls := req :: !calls;
  match String.split_on_char ',' req with
  | "B" :: parts -> String.concat "|" (List.map (fun p -> "R" ^ p) parts)
  | _ -> "R" ^ req

let test_rpc_coalescing () =
  let e = Engine.create () in
  let t = T.create e ~n_sites:2 in
  let wrap, unwrap = batch_codec in
  T.set_batch t ~window_us:500 ~wrap ~unwrap ();
  let calls = ref [] in
  T.set_handler t 1 (batch_handler calls);
  let results = Array.make 2 (Error T.No_handler) in
  ignore
    (Engine.spawn ~site:0 e (fun () ->
         results.(0) <- T.rpc_batched t ~src:0 ~dst:1 "a"));
  ignore
    (Engine.spawn ~site:0 e (fun () ->
         results.(1) <- T.rpc_batched t ~src:0 ~dst:1 "b"));
  Engine.run e;
  Alcotest.(check (list string)) "one wire message" [ "B,a,b" ] !calls;
  Alcotest.(check bool) "first reply fanned out" true (results.(0) = Ok "Ra");
  Alcotest.(check bool) "second reply fanned out" true (results.(1) = Ok "Rb");
  let st = Engine.stats e in
  Alcotest.(check int) "one batch" 1 (Stats.get st "rpc.batches");
  Alcotest.(check int) "two members" 2 (Stats.get st "rpc.batched");
  Alcotest.(check int) "saved a round trip" 2 (Stats.get st "net.msg_saved")

let test_rpc_batch_singleton_bypasses_wrap () =
  let e = Engine.create () in
  let t = T.create e ~n_sites:2 in
  let wrap, unwrap = batch_codec in
  T.set_batch t ~window_us:500 ~wrap ~unwrap ();
  let calls = ref [] in
  T.set_handler t 1 (batch_handler calls);
  let result = ref (Error T.No_handler) in
  ignore
    (Engine.spawn ~site:0 e (fun () ->
         result := T.rpc_batched t ~src:0 ~dst:1 "solo"));
  Engine.run e;
  Alcotest.(check (list string)) "sent unwrapped" [ "solo" ] !calls;
  Alcotest.(check bool) "plain reply" true (!result = Ok "Rsolo");
  Alcotest.(check int) "no batch counted" 0
    (Stats.get (Engine.stats e) "rpc.batches")

let test_rpc_batch_local_calls_skip_window () =
  let e = Engine.create () in
  let t = T.create e ~n_sites:2 in
  let wrap, unwrap = batch_codec in
  T.set_batch t ~window_us:500 ~wrap ~unwrap ();
  let calls = ref [] in
  T.set_handler t 1 (batch_handler calls);
  let result = ref (Error T.No_handler) in
  ignore
    (Engine.spawn ~site:1 e (fun () ->
         result := T.rpc_batched t ~src:1 ~dst:1 "local";
         (* A local call never waits out the window. *)
         Alcotest.(check int) "no window delay" 0 (Engine.now e)));
  Engine.run e;
  Alcotest.(check bool) "handled" true (!result = Ok "Rlocal")

(* {1 Timer hygiene under batch windows} *)

let test_batched_run_leaves_no_timers () =
  (* Every RPC arms a 30 s timeout that [Engine.await_timeout] cancels on
     reply. With batch windows inserting extra sleeps on the hot path, a
     leaked or mis-cancelled timer would either strand events in the
     queue or drag the clock out to the timeout horizon when [run]
     drains it. *)
  let spec = Ck.Workload.gen ~seed:11 ~sites:3 ~txns:6 ~ops:3 ~records:4 () in
  let hist, sim = Ck.Workload.run ~replicas:2 ~batch_window:500 ~seed:11 spec in
  let e = sim.L.engine in
  Alcotest.(check int) "event queue drained" 0 (Engine.pending_events e);
  Alcotest.(check bool) "cancelled timers did not advance the clock" true
    (Engine.now e < T.default_rpc_timeout_us);
  Alcotest.(check bool) "history serializable" true
    (Ck.Checker.ok (Ck.Checker.check hist))

let test_crash_inside_batch_window_recovers () =
  (* A site crash while commits are parked in group-commit / RPC windows:
     recovery must resolve every in-flight transaction and the surviving
     history must stay one-copy serializable. *)
  let spec = Ck.Workload.gen ~seed:3 ~sites:3 ~txns:6 ~ops:3 ~records:4 () in
  let fault =
    Ck.Workload.Crash
      { victim = 1; after_decides = 1; restart_delay = 2_000_000 }
  in
  let hist, sim =
    Ck.Workload.run ~fault ~replicas:2 ~batch_window:500 ~seed:3 spec
  in
  Alcotest.(check bool) "serializable despite crash" true
    (Ck.Checker.ok (Ck.Checker.check hist));
  Alcotest.(check (list string)) "no transaction left unresolved" []
    (List.map Txid.to_string (K.active_transactions sim.L.cluster))

(* {1 Lock-read piggybacking} *)

let test_pread_locked_piggybacks () =
  let sim = L.make ~seed:7 ~n_sites:2 () in
  let cl = sim.L.cluster in
  let setup =
    Api.spawn_process cl ~site:0 (fun env ->
        let c = Api.creat env "/pig" ~vid:1 in
        Api.write_string env c "0123456789";
        Api.commit_file env c;
        Api.close env c)
  in
  ignore
    (Api.spawn_process cl ~site:0 (fun env ->
         Api.wait_pid env setup;
         let c = Api.open_file env "/pig" in
         Api.begin_trans env;
         let b = Api.pread_locked env c ~pos:0 ~len:4 in
         Alcotest.(check string) "data" "0123" (Bytes.to_string b);
         (* Second read of a covered range takes the plain path. *)
         let b2 = Api.pread_locked env c ~pos:1 ~len:3 in
         Alcotest.(check string) "covered rescan" "123" (Bytes.to_string b2);
         ignore (Api.end_trans env);
         Api.close env c));
  L.run sim;
  let st = Engine.stats sim.L.engine in
  Alcotest.(check int) "one piggybacked read" 1
    (Stats.get st "lock.piggyback_reads");
  Alcotest.(check int) "storage site granted implicitly" 1
    (Stats.get st "lock.piggyback")

let test_pread_locked_lock_is_retained () =
  let sim = L.make ~seed:8 ~n_sites:2 () in
  let cl = sim.L.cluster in
  let conflict = ref None in
  let setup =
    Api.spawn_process cl ~site:0 (fun env ->
        let c = Api.creat env "/pig2" ~vid:1 in
        Api.write_string env c "0123456789";
        Api.commit_file env c;
        Api.close env c)
  in
  ignore
    (Api.spawn_process cl ~site:0 (fun env ->
         Api.wait_pid env setup;
         let c = Api.open_file env "/pig2" in
         Api.begin_trans env;
         ignore (Api.pread_locked env c ~pos:0 ~len:4);
         (* Hold the transaction open while the rival tries to write. *)
         Engine.sleep 300_000;
         ignore (Api.end_trans env);
         Api.close env c));
  ignore
    (Api.spawn_process cl ~site:1 (fun env ->
         Api.wait_pid env setup;
         Engine.sleep 150_000;
         let c = Api.open_file env "/pig2" in
         Api.begin_trans env;
         Api.seek env c ~pos:0;
         conflict := Some (Api.lock env c ~len:4 ~mode:M.Exclusive ~wait:false ());
         ignore (Api.end_trans env);
         Api.close env c));
  L.run sim;
  (match !conflict with
  | Some (Api.Conflict _) -> ()
  | Some Api.Granted -> Alcotest.fail "exclusive lock granted over piggybacked shared lock"
  | None -> Alcotest.fail "rival never ran")

let test_nontransactional_read_skips_piggyback () =
  let sim = L.make ~seed:9 ~n_sites:2 () in
  let cl = sim.L.cluster in
  let setup =
    Api.spawn_process cl ~site:0 (fun env ->
        let c = Api.creat env "/pig3" ~vid:1 in
        Api.write_string env c "abcdef";
        Api.commit_file env c;
        Api.close env c)
  in
  ignore
    (Api.spawn_process cl ~site:0 (fun env ->
         Api.wait_pid env setup;
         let c = Api.open_file env "/pig3" in
         let b = Api.pread_locked env c ~pos:0 ~len:3 in
         Alcotest.(check string) "plain data" "abc" (Bytes.to_string b);
         Api.close env c));
  L.run sim;
  Alcotest.(check int) "no piggyback outside a transaction" 0
    (Stats.get (Engine.stats sim.L.engine) "lock.piggyback_reads")

(* {1 Configuration} *)

let test_rpc_timeout_single_source_of_truth () =
  Alcotest.(check int) "transport default is 30 s virtual" 30_000_000
    T.default_rpc_timeout_us;
  Alcotest.(check int) "kernel config inherits the transport default"
    T.default_rpc_timeout_us
    (K.Config.default ~n_sites:2).K.Config.rpc_timeout_us

let test_with_batching_sets_both_windows () =
  let cfg = K.Config.with_batching ~window_us:400 (K.Config.default ~n_sites:3) in
  Alcotest.(check int) "group commit window" 400 cfg.K.Config.group_commit_window_us;
  Alcotest.(check int) "rpc batch window" 400 cfg.K.Config.rpc_batch_window_us;
  let off = K.Config.default ~n_sites:3 in
  Alcotest.(check int) "default group window off" 0 off.K.Config.group_commit_window_us;
  Alcotest.(check int) "default rpc window off" 0 off.K.Config.rpc_batch_window_us

let test_batcher_window_reuse () =
  in_sim (fun e ->
      let b = Locus_batch.Batcher.create e ~name:"t" in
      Locus_batch.Batcher.configure b ~site:0 ~window_us:100;
      let flushed = ref [] in
      let flush items = flushed := items :: !flushed in
      Locus_batch.Batcher.submit b ~flush 1;
      Locus_batch.Batcher.submit b ~flush 2;
      Engine.sleep 200;
      (* Window expired: the next submit opens a fresh batch. *)
      Locus_batch.Batcher.submit b ~flush 3;
      Engine.sleep 200;
      Alcotest.(check (list (list int)))
        "two windows, order preserved" [ [ 3 ]; [ 1; 2 ] ] !flushed)

let suite =
  [
    ( "batch",
      [
        Alcotest.test_case "group commit shares one force" `Quick
          test_group_commit_shares_force;
        Alcotest.test_case "window 0 is unbatched" `Quick
          test_window_zero_is_unbatched;
        Alcotest.test_case "break-batch degrades group commit" `Quick
          test_break_batch_degrades_group_commit;
        Alcotest.test_case "append_many is one submission" `Quick
          test_append_many_is_one_submission;
        Alcotest.test_case "crash inside window is atomic" `Quick
          test_crash_inside_window_is_atomic;
        Alcotest.test_case "rpc coalescing" `Quick test_rpc_coalescing;
        Alcotest.test_case "singleton batch bypasses wrap" `Quick
          test_rpc_batch_singleton_bypasses_wrap;
        Alcotest.test_case "local calls skip the window" `Quick
          test_rpc_batch_local_calls_skip_window;
        Alcotest.test_case "batched run leaves no timers" `Quick
          test_batched_run_leaves_no_timers;
        Alcotest.test_case "crash inside batch window recovers" `Quick
          test_crash_inside_batch_window_recovers;
        Alcotest.test_case "pread_locked piggybacks the lock" `Quick
          test_pread_locked_piggybacks;
        Alcotest.test_case "piggybacked lock is retained" `Quick
          test_pread_locked_lock_is_retained;
        Alcotest.test_case "non-transactional read skips piggyback" `Quick
          test_nontransactional_read_skips_piggyback;
        Alcotest.test_case "rpc timeout has one source of truth" `Quick
          test_rpc_timeout_single_source_of_truth;
        Alcotest.test_case "with_batching sets both windows" `Quick
          test_with_batching_sets_both_windows;
        Alcotest.test_case "batcher reopens after the window" `Quick
          test_batcher_window_reuse;
      ] );
  ]
