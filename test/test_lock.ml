(* Mode compatibility (Figure 1) and the lock table. *)

module M = Locus_lock.Mode
module LT = Locus_lock.Lock_table

let fid = File_id.make ~vid:1 ~ino:1
let p1 = Pid.make ~origin:0 ~num:1
let p2 = Pid.make ~origin:0 ~num:2
let tx n = Owner.Transaction (Txid.make ~site:0 ~incarnation:1 ~seq:n)
let proc p = Owner.Process p
let br lo hi = Byte_range.v ~lo ~hi
let owner = Alcotest.testable Owner.pp Owner.equal

(* {1 Figure 1} *)

let test_figure1 () =
  let open M in
  Alcotest.(check bool) "unix/unix" true (access Unix_access Unix_access = `Read_write);
  Alcotest.(check bool) "unix/shared" true (access Unix_access Shared = `Read);
  Alcotest.(check bool) "shared/shared" true (access Shared Shared = `Read);
  Alcotest.(check bool) "unix/excl" true (access Unix_access Exclusive = `None);
  Alcotest.(check bool) "shared/excl" true (access Shared Exclusive = `None);
  Alcotest.(check bool) "excl/excl" true (access Exclusive Exclusive = `None);
  (* The matrix has 9 cells and is symmetric. *)
  Alcotest.(check int) "9 cells" 9
    (List.length (List.concat_map snd figure_1));
  List.iter
    (fun (row, cells) ->
      List.iter (fun (col, v) -> assert (access col row = v)) cells)
    figure_1

let test_compatibility () =
  Alcotest.(check bool) "sh/sh" true (M.compatible M.Shared M.Shared);
  Alcotest.(check bool) "sh/ex" false (M.compatible M.Shared M.Exclusive);
  Alcotest.(check bool) "ex/sh" false (M.compatible M.Exclusive M.Shared)

(* {1 Grants and conflicts} *)

let test_grant_conflict () =
  let t = LT.create fid in
  (match LT.request t ~owner:(tx 1) ~pid:p1 ~mode:M.Exclusive ~range:(br 0 10)
           ~non_transaction:false with
  | `Granted -> ()
  | `Conflict _ -> Alcotest.fail "first grant");
  (match LT.request t ~owner:(tx 2) ~pid:p2 ~mode:M.Shared ~range:(br 5 15)
           ~non_transaction:false with
  | `Conflict [ o ] -> Alcotest.check owner "blocker" (tx 1) o
  | `Conflict _ | `Granted -> Alcotest.fail "expected single blocker");
  (* Disjoint is fine. *)
  match LT.request t ~owner:(tx 2) ~pid:p2 ~mode:M.Exclusive ~range:(br 10 20)
          ~non_transaction:false with
  | `Granted -> ()
  | `Conflict _ -> Alcotest.fail "disjoint grant"

let test_same_owner_compatible () =
  (* All processes of one transaction may lock the same record exclusively
     (§3.1). *)
  let t = LT.create fid in
  ignore (LT.request t ~owner:(tx 1) ~pid:p1 ~mode:M.Exclusive ~range:(br 0 10)
            ~non_transaction:false);
  match LT.request t ~owner:(tx 1) ~pid:p2 ~mode:M.Exclusive ~range:(br 0 10)
          ~non_transaction:false with
  | `Granted -> ()
  | `Conflict _ -> Alcotest.fail "same txn must not self-conflict"

let test_shared_readers () =
  let t = LT.create fid in
  ignore (LT.request t ~owner:(tx 1) ~pid:p1 ~mode:M.Shared ~range:(br 0 10)
            ~non_transaction:false);
  (match LT.request t ~owner:(tx 2) ~pid:p2 ~mode:M.Shared ~range:(br 0 10)
           ~non_transaction:false with
  | `Granted -> ()
  | `Conflict _ -> Alcotest.fail "shared readers coexist");
  Alcotest.(check int) "two locks" 2 (LT.lock_count t)

let test_upgrade_downgrade () =
  let t = LT.create fid in
  ignore (LT.request t ~owner:(tx 1) ~pid:p1 ~mode:M.Shared ~range:(br 0 10)
            ~non_transaction:false);
  (* Upgrade the middle: replaces the owner's coverage there. *)
  ignore (LT.request t ~owner:(tx 1) ~pid:p1 ~mode:M.Exclusive ~range:(br 4 6)
            ~non_transaction:false);
  Alcotest.(check bool) "write covered" true
    (LT.owner_covers t ~owner:(tx 1) ~range:(br 4 6) ~write:true);
  Alcotest.(check bool) "write not covered outside" false
    (LT.owner_covers t ~owner:(tx 1) ~range:(br 0 10) ~write:true);
  Alcotest.(check bool) "read still covered everywhere" true
    (LT.owner_covers t ~owner:(tx 1) ~range:(br 0 10) ~write:false);
  (* A transaction cannot weaken protection it holds (§3.3 rule 1):
     re-locking everything shared leaves the middle exclusive — otherwise
     its uncommitted write there would become readable before commit. *)
  ignore (LT.request t ~owner:(tx 1) ~pid:p1 ~mode:M.Shared ~range:(br 0 10)
            ~non_transaction:false);
  Alcotest.(check bool) "txn downgrade refused" true
    (LT.owner_covers t ~owner:(tx 1) ~range:(br 4 6) ~write:true);
  (* A non-transaction process has no commit point and may downgrade. *)
  let t2 = LT.create fid in
  ignore (LT.request t2 ~owner:(proc p1) ~pid:p1 ~mode:M.Exclusive
            ~range:(br 0 10) ~non_transaction:false);
  ignore (LT.request t2 ~owner:(proc p1) ~pid:p1 ~mode:M.Shared
            ~range:(br 0 10) ~non_transaction:false);
  Alcotest.(check bool) "process downgraded" false
    (LT.owner_covers t2 ~owner:(proc p1) ~range:(br 0 10) ~write:true)

let test_unix_mode_rejected () =
  let t = LT.create fid in
  Alcotest.check_raises "no explicit unix locks"
    (Invalid_argument "Lock_table: Unix access is implicit, not a requestable mode")
    (fun () ->
      ignore
        (LT.request t ~owner:(tx 1) ~pid:p1 ~mode:M.Unix_access ~range:(br 0 1)
           ~non_transaction:false))

(* {1 Retention (2PL)} *)

let test_txn_unlock_retains () =
  let t = LT.create fid in
  ignore (LT.request t ~owner:(tx 1) ~pid:p1 ~mode:M.Exclusive ~range:(br 0 10)
            ~non_transaction:false);
  LT.unlock t ~owner:(tx 1) ~pid:p1 ~range:(br 0 10);
  (* Still blocks others... *)
  (match LT.request t ~owner:(tx 2) ~pid:p2 ~mode:M.Shared ~range:(br 0 5)
           ~non_transaction:false with
  | `Conflict _ -> ()
  | `Granted -> Alcotest.fail "retained lock must still block");
  Alcotest.(check (list (pair int int))) "retained range"
    [ (0, 10) ]
    (List.map (fun r -> (Byte_range.lo r, Byte_range.hi r))
       (LT.retained_ranges t (tx 1)));
  (* ...and can be reacquired by the transaction (another process). *)
  match LT.request t ~owner:(tx 1) ~pid:p2 ~mode:M.Exclusive ~range:(br 0 10)
          ~non_transaction:false with
  | `Granted -> ()
  | `Conflict _ -> Alcotest.fail "reacquire retained"

let test_nontxn_unlock_releases () =
  let t = LT.create fid in
  ignore (LT.request t ~owner:(proc p1) ~pid:p1 ~mode:M.Exclusive ~range:(br 0 10)
            ~non_transaction:false);
  LT.unlock t ~owner:(proc p1) ~pid:p1 ~range:(br 0 10);
  match LT.request t ~owner:(tx 2) ~pid:p2 ~mode:M.Exclusive ~range:(br 0 10)
          ~non_transaction:false with
  | `Granted -> ()
  | `Conflict _ -> Alcotest.fail "non-transaction unlock must release"

let test_non_transaction_lock_mode () =
  (* §3.4: a non-transaction-mode lock held by a transaction is really
     released on unlock. *)
  let t = LT.create fid in
  ignore (LT.request t ~owner:(tx 1) ~pid:p1 ~mode:M.Exclusive ~range:(br 0 10)
            ~non_transaction:true);
  LT.unlock t ~owner:(tx 1) ~pid:p1 ~range:(br 0 10);
  match LT.request t ~owner:(tx 2) ~pid:p2 ~mode:M.Exclusive ~range:(br 0 10)
          ~non_transaction:false with
  | `Granted -> ()
  | `Conflict _ -> Alcotest.fail "non-transaction lock must not be retained"

let test_partial_unlock_splits () =
  let t = LT.create fid in
  ignore (LT.request t ~owner:(proc p1) ~pid:p1 ~mode:M.Exclusive ~range:(br 0 30)
            ~non_transaction:false);
  LT.unlock t ~owner:(proc p1) ~pid:p1 ~range:(br 10 20);
  Alcotest.(check bool) "left kept" true
    (LT.owner_covers t ~owner:(proc p1) ~range:(br 0 10) ~write:true);
  Alcotest.(check bool) "middle gone" false
    (LT.owner_covers t ~owner:(proc p1) ~range:(br 10 20) ~write:true);
  Alcotest.(check bool) "right kept" true
    (LT.owner_covers t ~owner:(proc p1) ~range:(br 20 30) ~write:true)

(* {1 Queueing} *)

let test_queue_grant_on_release () =
  let t = LT.create fid in
  ignore (LT.request t ~owner:(tx 1) ~pid:p1 ~mode:M.Exclusive ~range:(br 0 10)
            ~non_transaction:false);
  let granted = ref false in
  ignore
    (LT.enqueue t ~owner:(tx 2) ~pid:p2 ~mode:M.Exclusive ~range:(br 0 10)
       ~non_transaction:false ~notify:(fun ok -> granted := ok));
  Alcotest.(check bool) "still waiting" false !granted;
  Alcotest.(check int) "one waiter" 1 (LT.waiting t);
  LT.release_owner t (tx 1);
  Alcotest.(check bool) "granted on release" true !granted;
  Alcotest.(check int) "queue drained" 0 (LT.waiting t)

let test_queue_no_overtake_same_range () =
  let t = LT.create fid in
  ignore (LT.request t ~owner:(tx 1) ~pid:p1 ~mode:M.Exclusive ~range:(br 0 10)
            ~non_transaction:false);
  let got = ref [] in
  ignore
    (LT.enqueue t ~owner:(tx 2) ~pid:p2 ~mode:M.Exclusive ~range:(br 0 10)
       ~non_transaction:false ~notify:(fun ok -> if ok then got := 2 :: !got));
  ignore
    (LT.enqueue t ~owner:(tx 3) ~pid:p2 ~mode:M.Shared ~range:(br 0 10)
       ~non_transaction:false ~notify:(fun ok -> if ok then got := 3 :: !got));
  LT.release_owner t (tx 1);
  (* tx2 (exclusive) granted; tx3 must not overtake it even though shared
     would have been compatible with nothing-held. *)
  Alcotest.(check (list int)) "fifo" [ 2 ] !got;
  LT.release_owner t (tx 2);
  Alcotest.(check (list int)) "then tx3" [ 3; 2 ] !got

let test_queue_overtake_disjoint () =
  let t = LT.create fid in
  ignore (LT.request t ~owner:(tx 1) ~pid:p1 ~mode:M.Exclusive ~range:(br 0 10)
            ~non_transaction:false);
  let got = ref [] in
  ignore
    (LT.enqueue t ~owner:(tx 2) ~pid:p2 ~mode:M.Exclusive ~range:(br 0 10)
       ~non_transaction:false ~notify:(fun ok -> if ok then got := 2 :: !got));
  (* Disjoint range: may be granted immediately despite the earlier
     waiter. *)
  ignore
    (LT.enqueue t ~owner:(tx 3) ~pid:p2 ~mode:M.Exclusive ~range:(br 50 60)
       ~non_transaction:false ~notify:(fun ok -> if ok then got := 3 :: !got));
  Alcotest.(check (list int)) "disjoint overtakes" [ 3 ] !got

let test_cancel () =
  let t = LT.create fid in
  ignore (LT.request t ~owner:(tx 1) ~pid:p1 ~mode:M.Exclusive ~range:(br 0 10)
            ~non_transaction:false);
  let notifications = ref [] in
  let w =
    LT.enqueue t ~owner:(tx 2) ~pid:p2 ~mode:M.Exclusive ~range:(br 0 10)
      ~non_transaction:false ~notify:(fun ok -> notifications := ok :: !notifications)
  in
  LT.cancel t w;
  Alcotest.(check (list bool)) "cancel notifies false" [ false ] !notifications;
  LT.release_owner t (tx 1);
  Alcotest.(check (list bool)) "no grant after cancel" [ false ] !notifications

let test_cancel_owner () =
  let t = LT.create fid in
  ignore (LT.request t ~owner:(tx 1) ~pid:p1 ~mode:M.Exclusive ~range:(br 0 10)
            ~non_transaction:false);
  let n2 = ref None and n3 = ref None in
  ignore
    (LT.enqueue t ~owner:(tx 2) ~pid:p2 ~mode:M.Exclusive ~range:(br 0 10)
       ~non_transaction:false ~notify:(fun ok -> n2 := Some ok));
  ignore
    (LT.enqueue t ~owner:(tx 3) ~pid:p2 ~mode:M.Shared ~range:(br 0 10)
       ~non_transaction:false ~notify:(fun ok -> n3 := Some ok));
  LT.cancel_owner t (tx 2);
  Alcotest.(check (option bool)) "tx2 cancelled" (Some false) !n2;
  LT.release_owner t (tx 1);
  Alcotest.(check (option bool)) "tx3 eventually granted" (Some true) !n3

(* {1 Access validation} *)

let test_may_read_write () =
  let t = LT.create fid in
  ignore (LT.request t ~owner:(tx 1) ~pid:p1 ~mode:M.Shared ~range:(br 0 10)
            ~non_transaction:false);
  Alcotest.(check bool) "others may read under shared" true
    (LT.may_read t ~reader:(proc p2) ~range:(br 0 10));
  Alcotest.(check bool) "others may not write under shared" false
    (LT.may_write t ~writer:(proc p2) ~range:(br 5 6));
  Alcotest.(check bool) "disjoint write fine" true
    (LT.may_write t ~writer:(proc p2) ~range:(br 20 30));
  ignore (LT.request t ~owner:(tx 1) ~pid:p1 ~mode:M.Exclusive ~range:(br 0 10)
            ~non_transaction:false);
  Alcotest.(check bool) "no read under exclusive" false
    (LT.may_read t ~reader:(proc p2) ~range:(br 0 10));
  Alcotest.(check bool) "owner itself reads" true
    (LT.may_read t ~reader:(tx 1) ~range:(br 0 10))

let test_waits_for () =
  let t = LT.create fid in
  ignore (LT.request t ~owner:(tx 1) ~pid:p1 ~mode:M.Exclusive ~range:(br 0 10)
            ~non_transaction:false);
  ignore
    (LT.enqueue t ~owner:(tx 2) ~pid:p2 ~mode:M.Exclusive ~range:(br 0 10)
       ~non_transaction:false ~notify:(fun _ -> ()));
  ignore
    (LT.enqueue t ~owner:(tx 3) ~pid:p2 ~mode:M.Exclusive ~range:(br 0 10)
       ~non_transaction:false ~notify:(fun _ -> ()));
  match LT.waits_for t with
  | [ (w2, b2); (w3, b3) ] ->
    Alcotest.check owner "tx2 waits" (tx 2) w2;
    Alcotest.(check (list owner)) "on tx1" [ tx 1 ] b2;
    Alcotest.check owner "tx3 waits" (tx 3) w3;
    (* tx3 waits on the lock holder and on the earlier waiter. *)
    Alcotest.(check (list owner)) "on tx1+tx2" [ tx 1; tx 2 ]
      (List.sort Owner.compare b3)
  | _ -> Alcotest.fail "expected two wait entries"

let test_release_process () =
  let t = LT.create fid in
  ignore (LT.request t ~owner:(proc p1) ~pid:p1 ~mode:M.Exclusive ~range:(br 0 10)
            ~non_transaction:false);
  ignore (LT.request t ~owner:(tx 1) ~pid:p1 ~mode:M.Exclusive ~range:(br 20 30)
            ~non_transaction:false);
  LT.release_process t p1;
  Alcotest.(check bool) "process lock dropped" true
    (LT.may_write t ~writer:(proc p2) ~range:(br 0 10));
  Alcotest.(check bool) "transaction lock survives member exit" false
    (LT.may_write t ~writer:(proc p2) ~range:(br 20 30))

(* {1 Property: the lock table never grants incompatible overlaps} *)

let prop_no_incompatible_grants =
  let arb_op =
    QCheck.(
      quad (int_bound 3 (* owner *)) (int_bound 50 (* lo *))
        (int_range 1 20 (* len *)) bool (* exclusive? *))
  in
  QCheck.Test.make ~name:"granted locks are pairwise compatible" ~count:300
    QCheck.(list arb_op)
    (fun ops ->
      let t = LT.create fid in
      List.iter
        (fun (o, lo, len, excl) ->
          let mode = if excl then M.Exclusive else M.Shared in
          ignore
            (LT.request t ~owner:(tx o) ~pid:p1 ~mode
               ~range:(Byte_range.of_pos_len ~pos:lo ~len)
               ~non_transaction:false))
        ops;
      let locks = LT.locks t in
      List.for_all
        (fun (a : LT.lock) ->
          List.for_all
            (fun (b : LT.lock) ->
              a == b
              || Owner.equal a.LT.owner b.LT.owner
              || (not (Byte_range.overlaps a.LT.range b.LT.range))
              || M.compatible a.LT.mode b.LT.mode)
            locks)
        locks)

let suite =
  [
    ( "lock.mode",
      [
        Alcotest.test_case "figure 1" `Quick test_figure1;
        Alcotest.test_case "compatibility" `Quick test_compatibility;
      ] );
    ( "lock.table",
      [
        Alcotest.test_case "grant/conflict" `Quick test_grant_conflict;
        Alcotest.test_case "same owner" `Quick test_same_owner_compatible;
        Alcotest.test_case "shared readers" `Quick test_shared_readers;
        Alcotest.test_case "upgrade/downgrade" `Quick test_upgrade_downgrade;
        Alcotest.test_case "unix rejected" `Quick test_unix_mode_rejected;
        Alcotest.test_case "txn unlock retains" `Quick test_txn_unlock_retains;
        Alcotest.test_case "non-txn unlock releases" `Quick test_nontxn_unlock_releases;
        Alcotest.test_case "non-transaction lock mode" `Quick
          test_non_transaction_lock_mode;
        Alcotest.test_case "partial unlock" `Quick test_partial_unlock_splits;
        Alcotest.test_case "queue grant" `Quick test_queue_grant_on_release;
        Alcotest.test_case "no overtake" `Quick test_queue_no_overtake_same_range;
        Alcotest.test_case "disjoint overtakes" `Quick test_queue_overtake_disjoint;
        Alcotest.test_case "cancel" `Quick test_cancel;
        Alcotest.test_case "cancel owner" `Quick test_cancel_owner;
        Alcotest.test_case "may read/write" `Quick test_may_read_write;
        Alcotest.test_case "waits_for" `Quick test_waits_for;
        Alcotest.test_case "release process" `Quick test_release_process;
        QCheck_alcotest.to_alcotest prop_no_incompatible_grants;
      ] );
  ]

(* Appended: model-based testing of the lock table against a per-byte
   reference implementation. *)

module Model = struct
  (* byte -> (owner, exclusive?) list; same-owner entries replaced. *)
  type t = (int, (Owner.t * bool) list) Hashtbl.t

  let create () : t = Hashtbl.create 64

  let entries m b = Option.value (Hashtbl.find_opt m b) ~default:[]

  let compatible_at m b ~owner ~excl =
    List.for_all
      (fun (o, e) -> Owner.equal o owner || (not e && not excl))
      (entries m b)

  let request m ~owner ~excl lo hi =
    let ok = ref true in
    for b = lo to hi - 1 do
      if not (compatible_at m b ~owner ~excl) then ok := false
    done;
    if !ok then
      for b = lo to hi - 1 do
        (* Transactions never weaken held protection (§3.3 rule 1). *)
        let held_excl =
          List.exists (fun (o, e) -> Owner.equal o owner && e) (entries m b)
        in
        let excl = excl || (Owner.is_transaction owner && held_excl) in
        Hashtbl.replace m b
          ((owner, excl)
          :: List.filter (fun (o, _) -> not (Owner.equal o owner)) (entries m b))
      done;
    !ok

  (* Non-transaction owner unlock; transactions retain so the model keeps
     their bytes. *)
  let unlock m ~owner lo hi =
    if not (Owner.is_transaction owner) then
      for b = lo to hi - 1 do
        Hashtbl.replace m b
          (List.filter (fun (o, _) -> not (Owner.equal o owner)) (entries m b))
      done

  let release m ~owner =
    Hashtbl.iter
      (fun b es ->
        Hashtbl.replace m b
          (List.filter (fun (o, _) -> not (Owner.equal o owner)) es))
      (Hashtbl.copy m)

  let may_read m ~reader lo hi =
    let ok = ref true in
    for b = lo to hi - 1 do
      if not (List.for_all (fun (o, e) -> Owner.equal o reader || not e) (entries m b))
      then ok := false
    done;
    !ok
end

type model_op =
  | Op_request of int * bool * int * int
  | Op_unlock of int * int * int
  | Op_release of int
  | Op_check_read of int * int * int

let gen_model_op =
  QCheck.Gen.(
    frequency
      [
        (5, map (fun (o, e, lo, len) -> Op_request (o, e, lo mod 40, 1 + (len mod 12)))
             (tup4 (int_bound 5) bool small_nat small_nat));
        (2, map (fun (o, lo, len) -> Op_unlock (o, lo mod 40, 1 + (len mod 12)))
             (tup3 (int_bound 5) small_nat small_nat));
        (1, map (fun o -> Op_release o) (int_bound 5));
        (2, map (fun (o, lo, len) -> Op_check_read (o, lo mod 40, 1 + (len mod 12)))
             (tup3 (int_bound 5) small_nat small_nat));
      ])

let owner_of i =
  (* Mix transactions and plain processes. *)
  if i mod 2 = 0 then tx i else proc (Pid.make ~origin:0 ~num:i)

let prop_lock_table_matches_model =
  QCheck.Test.make ~name:"lock table matches per-byte model" ~count:400
    (QCheck.make QCheck.Gen.(list_size (int_range 1 40) gen_model_op))
    (fun ops ->
      let t = LT.create fid in
      let m = Model.create () in
      List.for_all
        (fun op ->
          match op with
          | Op_request (o, excl, lo, len) ->
            let owner = owner_of o in
            let range = Byte_range.of_pos_len ~pos:lo ~len in
            let mode = if excl then M.Exclusive else M.Shared in
            let real =
              match LT.request t ~owner ~pid:p1 ~mode ~range ~non_transaction:false with
              | `Granted -> true
              | `Conflict _ -> false
            in
            let expected = Model.request m ~owner ~excl lo (lo + len) in
            real = expected
          | Op_unlock (o, lo, len) ->
            let owner = owner_of o in
            LT.unlock t ~owner ~pid:p1 ~range:(Byte_range.of_pos_len ~pos:lo ~len);
            Model.unlock m ~owner lo (lo + len);
            true
          | Op_release o ->
            let owner = owner_of o in
            LT.release_owner t owner;
            Model.release m ~owner;
            true
          | Op_check_read (o, lo, len) ->
            let reader = owner_of o in
            let range = Byte_range.of_pos_len ~pos:lo ~len in
            LT.may_read t ~reader ~range = Model.may_read m ~reader lo (lo + len))
        ops)

let suite =
  suite
  @ [
      ( "lock.model",
        [ QCheck_alcotest.to_alcotest prop_lock_table_matches_model ] );
    ]
