(* locus_load: arrival processes, Zipfian popularity, scenario scripts,
   and open-loop driver determinism. *)

module Ld = Locus_load
module Arrival = Ld.Arrival
module Zipf = Ld.Zipf
module Opmix = Ld.Opmix
module Scenario = Ld.Scenario
module Driver = Ld.Driver

let stream shape ~seed ~until =
  let arr = Arrival.create ~prng:(Prng.create ~seed) shape in
  let rec go acc t =
    let n = Arrival.next_after arr t in
    if n > until then List.rev acc else go (n :: acc) n
  in
  go [] 0

(* Same seed, same stream — and a different seed diverges. *)
let test_poisson_deterministic () =
  let shape = Arrival.constant 100. in
  let a = stream shape ~seed:11 ~until:2_000_000 in
  let b = stream shape ~seed:11 ~until:2_000_000 in
  let c = stream shape ~seed:12 ~until:2_000_000 in
  Alcotest.(check (list int)) "same seed, same instants" a b;
  Alcotest.(check bool) "different seed diverges" true (a <> c);
  Alcotest.(check bool) "instants strictly increase" true
    (List.for_all2 ( < ) (0 :: a) (a @ [ max_int ]))

(* The empirical rate of a homogeneous stream matches the nominal rate
   (law of large numbers; 5% tolerance over a long window). *)
let test_poisson_mean_rate () =
  let rate = 200. in
  let window = 50_000_000 in
  let n = List.length (stream (Arrival.constant rate) ~seed:3 ~until:window) in
  let expected = rate *. float_of_int window /. 1e6 in
  let err = Float.abs (float_of_int n -. expected) /. expected in
  Alcotest.(check bool)
    (Printf.sprintf "empirical %d vs expected %.0f (err %.3f)" n expected err)
    true (err < 0.05)

(* Diurnal modulation integrates out: a full period carries the same
   expected arrivals as the unmodulated base, while the peak half-period
   carries more than the trough half-period. *)
let test_diurnal_integration () =
  let period = 1_000_000 in
  let shape =
    {
      (Arrival.constant 400.) with
      Arrival.diurnal_amplitude = 0.8;
      diurnal_period_us = period;
    }
  in
  let window = 40 * period in
  let n = List.length (stream shape ~seed:5 ~until:window) in
  let expected = 400. *. float_of_int window /. 1e6 in
  let err = Float.abs (float_of_int n -. expected) /. expected in
  Alcotest.(check bool)
    (Printf.sprintf "modulated total %d vs base %.0f (err %.3f)" n expected err)
    true (err < 0.05);
  let instants = stream shape ~seed:5 ~until:window in
  let in_peak =
    List.length (List.filter (fun t -> t mod period < period / 2) instants)
  in
  Alcotest.(check bool) "peak half outdraws trough half" true
    (in_peak > (List.length instants - in_peak))

(* Flash-crowd burst: the rate inside the window is the multiple, and
   the boundaries are sharp (rate function, exactly). *)
let test_flash_boundaries () =
  let shape =
    {
      (Arrival.constant 100.) with
      Arrival.flash_at_us = 1_000_000;
      flash_len_us = 500_000;
      flash_mult = 4.;
    }
  in
  Alcotest.(check (float 0.001)) "before" 100. (Arrival.rate_at shape 999_999);
  Alcotest.(check (float 0.001)) "first us" 400. (Arrival.rate_at shape 1_000_000);
  Alcotest.(check (float 0.001)) "inside" 400. (Arrival.rate_at shape 1_400_000);
  Alcotest.(check (float 0.001)) "after" 100. (Arrival.rate_at shape 1_500_000);
  Alcotest.(check (float 0.001)) "peak" 400. (Arrival.peak_rate shape);
  (* Empirically the burst window holds ~4x the arrivals of an equal
     pre-burst window. *)
  let instants = stream shape ~seed:9 ~until:2_000_000 in
  let count lo hi = List.length (List.filter (fun t -> t >= lo && t < hi) instants) in
  let before = count 500_000 1_000_000 and burst = count 1_000_000 1_500_000 in
  Alcotest.(check bool)
    (Printf.sprintf "burst %d vs before %d" burst before)
    true
    (burst > 2 * before)

(* Zipf: frequency ranks come out in order, and the top-1 share at s=1.0
   over 100 keys is 1/H_100 ≈ 0.192 within tolerance. *)
let test_zipf_ranks () =
  let z = Zipf.create ~s:1.0 ~n:100 () in
  let prng = Prng.create ~seed:21 in
  let counts = Array.make 100 0 in
  let draws = 200_000 in
  for _ = 1 to draws do
    let k = Zipf.sample z prng in
    counts.(k) <- counts.(k) + 1
  done;
  Alcotest.(check bool) "rank order top-3" true
    (counts.(0) > counts.(1) && counts.(1) > counts.(2));
  let h100 = ref 0. in
  for k = 1 to 100 do
    h100 := !h100 +. (1. /. float_of_int k)
  done;
  let expect = 1. /. !h100 in
  let share = float_of_int counts.(0) /. float_of_int draws in
  Alcotest.(check bool)
    (Printf.sprintf "top-1 share %.4f vs 1/H_100 %.4f" share expect)
    true
    (Float.abs (share -. expect) < 0.01);
  (* pmf sums to 1 and matches the CDF construction. *)
  let total = ref 0. in
  for k = 0 to 99 do
    total := !total +. Zipf.pmf z k
  done;
  Alcotest.(check (float 1e-9)) "pmf sums to 1" 1.0 !total

let test_opmix () =
  let prng = Prng.create ~seed:4 in
  let z = Zipf.create ~s:1.0 ~n:16 () in
  let mix = Opmix.make ~read_frac:1.0 ~ops_min:3 ~ops_max:3 () in
  let ops = Opmix.gen_txn mix prng z in
  Alcotest.(check int) "fixed size" 3 (List.length ops);
  Alcotest.(check bool) "all reads at read_frac 1" true
    (List.for_all (function Opmix.Read _ -> true | Opmix.Update _ -> false) ops);
  let mix = Opmix.make ~read_frac:0.0 ~ops_min:2 ~ops_max:5 () in
  let ops = Opmix.gen_txn mix prng z in
  Alcotest.(check bool) "all updates at read_frac 0" true
    (List.for_all (function Opmix.Update _ -> true | Opmix.Read _ -> false) ops)

let test_scenario_parse () =
  let text =
    "# a scenario\n\
     rate 120\n\
     diurnal 0.25 2000000\n\
     flash 1500000 300000 3.5\n\
     keys 96\n\
     zipf 0.8\n\
     remote 0.2\n\
     mix 0.7 2 5\n\
     crash 800000 300000 1\n\
     partition 1600000 200000 2   # mid-flash\n\
     rolling 2500000 150000 250000\n"
  in
  match Scenario.parse text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok sc ->
    Alcotest.(check (float 0.001)) "rate" 120. sc.Scenario.arrival.Arrival.base_per_sec;
    Alcotest.(check (float 0.001)) "amplitude" 0.25
      sc.Scenario.arrival.Arrival.diurnal_amplitude;
    Alcotest.(check int) "flash at" 1_500_000 sc.Scenario.arrival.Arrival.flash_at_us;
    Alcotest.(check int) "keys" 96 sc.Scenario.keys;
    Alcotest.(check (float 0.001)) "zipf" 0.8 sc.Scenario.zipf_s;
    Alcotest.(check (float 0.001)) "remote" 0.2 sc.Scenario.remote_frac;
    Alcotest.(check (float 0.001)) "read frac" 0.7 sc.Scenario.mix.Opmix.read_frac;
    Alcotest.(check int) "three events" 3 (List.length sc.Scenario.events);
    (match Scenario.parse "bogus 1 2\n" with
    | Error e ->
      Alcotest.(check bool) "error names the line" true
        (String.length e > 0 && String.sub e 0 6 = "line 1")
    | Ok _ -> Alcotest.fail "bogus directive accepted")

(* The full driver is deterministic: two runs of the same config produce
   identical reports (this is what the CI byte-determinism diff rests
   on). *)
let test_driver_deterministic () =
  let cfg =
    {
      Driver.default_config with
      Driver.duration_us = 400_000;
      seed = 17;
      scenario =
        { Scenario.default with Scenario.arrival = Arrival.constant 40. };
    }
  in
  let r1, _ = Driver.run cfg in
  let r2, _ = Driver.run cfg in
  Alcotest.(check bool) "identical reports" true (r1 = r2);
  Alcotest.(check bool) "offered nonzero" true (r1.Driver.offered > 0);
  Alcotest.(check int) "conservation" r1.Driver.offered
    (r1.Driver.completed + r1.Driver.aborted + r1.Driver.shed);
  let r3, _ = Driver.run { cfg with Driver.seed = 18 } in
  Alcotest.(check bool) "different seed diverges" true (r1 <> r3)

let suite =
  [
    ( "load",
      [
        Alcotest.test_case "poisson determinism per seed" `Quick test_poisson_deterministic;
        Alcotest.test_case "poisson empirical rate" `Quick test_poisson_mean_rate;
        Alcotest.test_case "diurnal curve integration" `Quick test_diurnal_integration;
        Alcotest.test_case "flash-crowd burst boundaries" `Quick test_flash_boundaries;
        Alcotest.test_case "zipf frequency ranks" `Quick test_zipf_ranks;
        Alcotest.test_case "op mix generation" `Quick test_opmix;
        Alcotest.test_case "scenario script parse" `Quick test_scenario_parse;
        Alcotest.test_case "driver determinism + conservation" `Quick
          test_driver_deterministic;
      ] );
  ]
