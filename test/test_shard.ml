(* locus_shard: dynamic lock/primary placement. The directory's epoch
   CAS, the threshold migration policy, stale-hint forwarding, ownership
   hand-off under a live transaction, crashed-owner re-homing — and the
   epoch-fence oracle, proven live by the --break-shard inversion. *)

module L = Locus_core.Locus
module Api = L.Api
module K = L.Kernel
module Dir = Locus_shard.Directory
module Policy = Locus_shard.Policy
module Mode = Locus_lock.Mode
module Ck = Locus_check.Checker
module Ex = Locus_check.Explore

let fid ~vid ~ino = File_id.make ~vid ~ino

(* {1 The directory} *)

let test_directory_cas () =
  let d = Dir.create ~n_shards:8 ~n_sites:4 in
  Alcotest.(check int) "shard count" 8 (Dir.n_shards d);
  let f = fid ~vid:1 ~ino:7 in
  (* Deterministic hash, in range, and stable across calls. *)
  let s = Dir.shard_of d f in
  Alcotest.(check bool) "shard in range" true (s >= 0 && s < 8);
  Alcotest.(check int) "shard_of is a function" s (Dir.shard_of d f);
  let ds = Dir.site_of d f in
  Alcotest.(check bool) "directory site in range" true (ds >= 0 && ds < 4);
  (* Unclaimed entries answer with the caller's default at epoch 0. *)
  Alcotest.(check (triple int int int)) "unclaimed -> default, epoch 0"
    (2, 0, 2)
    (Dir.lookup d f ~default:2);
  Alcotest.(check (list (triple (pair int int) int int))) "no entries yet" []
    (List.map (fun (f, o, e) -> ((f.File_id.vid, f.File_id.ino), o, e))
       (Dir.entries d));
  (* Epoch CAS: the first claim from epoch 0 wins and advances to 1. *)
  (match Dir.claim d f ~default:2 ~new_owner:3 ~from_epoch:0 ~claimer:2 with
  | Ok e -> Alcotest.(check int) "first claim advances to 1" 1 e
  | Error _ -> Alcotest.fail "first claim must win");
  (* A racing claim still quoting epoch 0 is fenced, and learns the
     truth instead of clobbering it. *)
  (match Dir.claim d f ~default:2 ~new_owner:1 ~from_epoch:0 ~claimer:0 with
  | Ok _ -> Alcotest.fail "stale claim must lose"
  | Error (o, e) ->
      Alcotest.(check (pair int int)) "loser told the current owner" (3, 1)
        (o, e));
  (* Quoting the current epoch wins again. *)
  (match Dir.claim d f ~default:2 ~new_owner:1 ~from_epoch:1 ~claimer:3 with
  | Ok e -> Alcotest.(check int) "fresh claim advances to 2" 2 e
  | Error _ -> Alcotest.fail "fresh claim must win");
  Alcotest.(check (triple int int int))
    "lookup follows (and names the hand-off source)" (1, 2, 3)
    (Dir.lookup d f ~default:2)

let test_policy () =
  Alcotest.(check bool) "default is threshold 3" true
    (Policy.default = Policy.Threshold 3);
  Alcotest.(check bool) "never never migrates" false
    (Policy.decide Policy.Never ~streak:1000);
  Alcotest.(check bool) "below threshold holds" false
    (Policy.decide (Policy.Threshold 3) ~streak:2);
  Alcotest.(check bool) "at threshold migrates" true
    (Policy.decide (Policy.Threshold 3) ~streak:3);
  let parses s = Result.is_ok (Policy.of_string s) in
  Alcotest.(check bool) "parses never" true (parses "never");
  Alcotest.(check bool) "parses threshold:5" true
    (Policy.of_string "threshold:5" = Ok (Policy.Threshold 5));
  Alcotest.(check bool) "parses bare int" true
    (Policy.of_string "4" = Ok (Policy.Threshold 4));
  Alcotest.(check bool) "rejects garbage" false (parses "sometimes");
  Alcotest.(check bool) "rejects zero" false (parses "threshold:0")

(* {1 End-to-end scenarios} *)

let shard_config ?(sites = 4) ?(policy = Policy.Never) () =
  K.Config.with_shards ~shards:8 ~policy (K.Config.default ~n_sites:sites)

let stat sim name = L.Stats.get (L.Engine.stats sim.L.engine) name

let path = "/shard/hot"

(* Lock-manager role follows a remote-acquisition streak past the
   threshold, after which the hot site's acquisitions are local. *)
let test_threshold_migration () =
  let sim =
    L.make ~n_sites:4 ~config:(shard_config ~policy:(Policy.Threshold 3) ()) ()
  in
  let cl = sim.L.cluster in
  let fid = ref None in
  ignore
    (Api.spawn_process cl ~site:0 ~name:"creator" (fun env ->
         let c = Api.creat env path ~vid:1 in
         Api.write_string env c (String.make 64 'x');
         Api.close env c;
         fid := K.lookup cl path;
         let f = Option.get !fid in
         let home = K.shard_default_owner cl f in
         let hot = (home + 1) mod 4 in
         ignore
           (Api.fork env ~site:hot ~name:"hot" (fun env ->
                let c = Api.open_file env path in
                for _ = 1 to 6 do
                  Api.seek env c ~pos:0;
                  ignore (Api.lock env c ~len:16 ~mode:Mode.Exclusive ());
                  Api.seek env c ~pos:0;
                  Api.unlock env c ~len:16;
                  Engine.sleep 10_000
                done;
                Api.close env c))));
  L.run sim;
  let f = Option.get !fid in
  let home = K.shard_default_owner cl f in
  let hot = (home + 1) mod 4 in
  (match K.shard_owner cl f with
  | Some (owner, epoch) ->
      Alcotest.(check int) "role migrated to the hot site" hot owner;
      Alcotest.(check bool) "epoch advanced" true (epoch >= 1)
  | None -> Alcotest.fail "sharding is on");
  Alcotest.(check bool) "a migration happened" true
    (stat sim "shard.migrations" >= 1 && stat sim "shard.installs" >= 1);
  Alcotest.(check bool) "later grants were local to the hot site" true
    (stat sim "shard.local_grants" > 0)

(* A client whose hint still points at the superseded owner is forwarded
   (never wedged, never granted by the stale site). *)
let test_stale_hint_forwarded () =
  let sim = L.make ~n_sites:4 ~config:(shard_config ()) () in
  let cl = sim.L.cluster in
  let granted = ref 0 in
  ignore
    (Api.spawn_process cl ~site:0 ~name:"driver" (fun env ->
         let c = Api.creat env path ~vid:1 in
         Api.write_string env c (String.make 64 'x');
         Api.close env c;
         let f = Option.get (K.lookup cl path) in
         let home = K.shard_default_owner cl f in
         let client = (home + 1) mod 4 and dst = (home + 2) mod 4 in
         let p =
           Api.fork env ~site:client ~name:"client" (fun env ->
               let c = Api.open_file env path in
               (* First acquisition caches a hint for the current owner. *)
               (match Api.lock env c ~len:16 ~mode:Mode.Exclusive () with
               | Api.Granted -> incr granted
               | Api.Conflict _ -> ());
               Api.unlock env c ~len:16;
               Engine.sleep 40_000;
               (* The role has moved behind our back and the hint map
                  points at the superseded owner; the stale hint must
                  bounce us to the new owner, not deny or self-grant. *)
               Api.seek env c ~pos:0;
               (match Api.lock env c ~len:16 ~mode:Mode.Exclusive () with
               | Api.Granted -> incr granted
               | Api.Conflict _ -> ());
               Api.unlock env c ~len:16;
               Api.close env c)
         in
         Engine.sleep 10_000;
         K.force_migrate cl ~src:0 f ~dst;
         (* Migration refreshes the shared hint map; poison it back to
            the superseded owner to model a client that cached the
            authority before the hand-off. *)
         K.note_lock_authority cl f home;
         Api.wait_pid env p));
  L.run sim;
  Alcotest.(check int) "both acquisitions granted" 2 !granted;
  let f = Option.get (K.lookup cl path) in
  let home = K.shard_default_owner cl f in
  (match K.shard_owner cl f with
  | Some (owner, _) ->
      Alcotest.(check int) "role is at the migrated-to site"
        ((home + 2) mod 4) owner
  | None -> Alcotest.fail "sharding is on");
  Alcotest.(check bool) "the stale hint was redirected or forwarded" true
    (stat sim "shard.redirects" + stat sim "shard.forwards" > 0)

(* Ownership migrates under a live transaction: the retained exclusive
   lock rides the transfer envelope and commit's phase 2 releases it at
   the new owner. *)
let test_migration_under_transaction () =
  let sim = L.make ~n_sites:4 ~config:(shard_config ()) () in
  let cl = sim.L.cluster in
  let outcome = ref None in
  ignore
    (Api.spawn_process cl ~site:1 ~name:"txn" (fun env ->
         let c = Api.creat env path ~vid:1 in
         Api.write_string env c (String.make 32 '.');
         Api.close env c;
         let f = Option.get (K.lookup cl path) in
         let c = Api.open_file env path in
         Api.begin_trans env;
         ignore (Api.lock env c ~len:32 ~mode:Mode.Exclusive ());
         Api.pwrite env c ~pos:0 (Bytes.of_string "AAAA");
         (* Hand the lock-manager role to site 2 mid-transaction. *)
         ignore
           (Engine.spawn ~name:"migrate" ~site:1 (K.engine cl) (fun () ->
                K.force_migrate cl ~src:1 f ~dst:2));
         Engine.sleep 50_000;
         Api.pwrite env c ~pos:4 (Bytes.of_string "BBBB");
         outcome := Some (Api.end_trans env);
         Api.close env c));
  L.run sim;
  Alcotest.(check bool) "transaction committed" true
    (!outcome = Some K.Committed);
  let f = Option.get (K.lookup cl path) in
  Alcotest.(check string) "both writes durable" "AAAABBBB"
    (String.sub (K.read_committed_oracle cl f) 0 8);
  (match K.shard_owner cl f with
  | Some (owner, epoch) ->
      Alcotest.(check int) "role moved" 2 owner;
      Alcotest.(check bool) "epoch advanced" true (epoch >= 1)
  | None -> Alcotest.fail "sharding is on");
  Alcotest.(check int) "nobody left in doubt" 0
    (List.length (K.in_doubt_participants cl))

(* A crashed owner's role is re-homed through the directory (epoch CAS)
   by the storage site's EOF path — the role is never stuck at a corpse. *)
let test_owner_crash_rehome () =
  let sim = L.make ~n_sites:4 ~config:(shard_config ()) () in
  let cl = sim.L.cluster in
  let appended = ref false in
  ignore
    (Api.spawn_process cl ~site:0 ~name:"driver" (fun env ->
         let c = Api.creat env path ~vid:1 in
         Api.write_string env c (String.make 16 'x');
         Api.close env c;
         let f = Option.get (K.lookup cl path) in
         let home = K.shard_default_owner cl f in
         (* Pick a destination that is neither the storage site nor the
            fid's directory site, so the directory survives the crash. *)
         let dir = Dir.create ~n_shards:8 ~n_sites:4 in
         let ds = Dir.site_of dir f in
         let dst =
           List.find
             (fun s -> s <> home && s <> ds)
             [ 1; 2; 3; 0 ]
         in
         K.force_migrate cl ~src:0 f ~dst;
         Engine.sleep 10_000;
         K.crash_site cl dst;
         Engine.sleep 10_000;
         (* Atomic EOF-and-lock needs the role at the storage site; with
            the owner dead that means a directory re-home, not a wait. *)
         let c = Api.open_file env path in
         Api.set_append env c true;
         (match Api.lock env c ~len:8 ~mode:Mode.Exclusive () with
         | Api.Granted -> appended := true
         | Api.Conflict _ -> ());
         Api.write_string env c "appended";
         Api.close env c));
  L.run sim;
  Alcotest.(check bool) "EOF lock granted after the owner died" true !appended;
  Alcotest.(check bool) "re-homed through the directory" true
    (stat sim "shard.rehomed" >= 1);
  let f = Option.get (K.lookup cl path) in
  (match K.shard_owner cl f with
  | Some (owner, epoch) ->
      Alcotest.(check int) "role back at the storage site"
        (K.shard_default_owner cl f) owner;
      Alcotest.(check bool) "epoch fenced past the corpse" true (epoch >= 2)
  | None -> Alcotest.fail "sharding is on")

(* {1 Sweeps and the oracle inversion} *)

(* Miniature of the CI lane: Paxos Commit with crash / partition /
   coordinator-kill / forced-migration faults rotating across seeds —
   every history 1SR, every run drains with nobody blocked. *)
let test_sweep_migrate_faults () =
  let cfg =
    {
      Ex.default_config with
      sites = 5;
      shards = 8;
      fault_every = Some 3;
      commit = `Paxos 1;
    }
  in
  List.iter
    (fun seed ->
      let _, _, report, blocked = Ex.run_seed cfg seed in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d serializable" seed)
        true (Ck.ok report);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d live" seed)
        true (blocked = []))
    (Ex.seeds ~n:25 ~from:40)

(* 64 sites, 64-way directory: the scale end of the 32-128 range. *)
let test_large_cluster_smoke () =
  let cfg =
    {
      Ex.default_config with
      sites = 64;
      txns = 8;
      shards = 64;
      fault_every = Some 5;
    }
  in
  List.iter
    (fun seed ->
      let _, _, report, blocked = Ex.run_seed cfg seed in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d serializable at 64 sites" seed)
        true (Ck.ok report);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d live at 64 sites" seed)
        true (blocked = []))
    (Ex.seeds ~n:5 ~from:0)

(* Self-test inversion: an owner that keeps granting at its superseded
   epoch instead of standing down MUST be flagged by the epoch-fence
   oracle as an unpermitted violation — proving the oracle has teeth. *)
let test_break_shard_flags_fenced_grant () =
  Locus_shard.Flags.break_shard := true;
  Fun.protect ~finally:(fun () -> Locus_shard.Flags.break_shard := false)
  @@ fun () ->
  let cfg =
    { Ex.default_config with sites = 4; shards = 8; fault_every = Some 2 }
  in
  let fenced seed =
    let _, _, report, _ = Ex.run_seed cfg seed in
    List.exists
      (fun c ->
        match c.Ck.violation with
        | Ck.Fenced_grant _ ->
            Alcotest.(check bool) "fenced grants are never permitted" false
              c.Ck.permitted;
            true
        | Ck.Dirty_read _ | Ck.Cycle _ | Ck.Stale_read _ | Ck.Dup_apply _ -> false)
      report.Ck.violations
  in
  Alcotest.(check bool)
    "some seed catches the stale owner granting" true
    (List.exists fenced (Ex.seeds ~n:20 ~from:0))

let suite =
  [
    ( "shard",
      [
        Alcotest.test_case "directory epoch CAS" `Quick test_directory_cas;
        Alcotest.test_case "migration policy" `Quick test_policy;
        Alcotest.test_case "threshold migration follows traffic" `Quick
          test_threshold_migration;
        Alcotest.test_case "stale hint forwarded" `Quick
          test_stale_hint_forwarded;
        Alcotest.test_case "migration under a live transaction" `Quick
          test_migration_under_transaction;
        Alcotest.test_case "owner crash re-homes through directory" `Quick
          test_owner_crash_rehome;
        Alcotest.test_case "sweep: migrate faults stay 1SR and live" `Quick
          test_sweep_migrate_faults;
        Alcotest.test_case "64-site smoke" `Quick test_large_cluster_smoke;
        Alcotest.test_case "break-shard flags fenced grant" `Quick
          test_break_shard_flags_fenced_grant;
      ] );
  ]
