(* End-to-end semantics through the full kernel stack: transactions,
   record locking across processes and sites, the §3.3/§3.4 interaction
   rules, append mode, migration, cascade abort, deadlock resolution,
   replication. *)

module L = Locus_core.Locus
module Api = L.Api
module K = L.Kernel
module M = L.Mode

let outcome = Alcotest.testable K.pp_outcome (fun a b -> a = b)

(* Run scenario [f] as a process at [site] on a fresh [n_sites] cluster;
   return the sim after quiescence. *)
let scenario ?config ?(n_sites = 3) ?(site = 0) f =
  L.simulate ?config ~n_sites (fun cl -> ignore (Api.spawn_process cl ~site (f cl)))

let oracle sim path =
  K.read_committed_oracle sim.L.cluster
    (Option.get (K.lookup sim.L.cluster path))

let must_lock env c ~len ~mode =
  match Api.lock env c ~len ~mode () with
  | Api.Granted -> ()
  | Api.Conflict _ -> Alcotest.fail "unexpected lock conflict"

(* {1 Basic transaction semantics} *)

let test_multi_file_multi_site_commit () =
  let sim =
    scenario (fun _cl env ->
        let a = Api.creat env "/a" ~vid:1 in
        let b = Api.creat env "/b" ~vid:2 in
        Api.begin_trans env;
        Api.write_string env a "alpha";
        Api.write_string env b "beta!";
        Alcotest.check outcome "committed" K.Committed (Api.end_trans env))
  in
  Alcotest.(check string) "file a" "alpha" (oracle sim "/a");
  Alcotest.(check string) "file b" "beta!" (oracle sim "/b")

let test_abort_undoes_everything () =
  let sim =
    scenario (fun _cl env ->
        let a = Api.creat env "/a" ~vid:1 in
        let b = Api.creat env "/b" ~vid:2 in
        Api.write_string env a "keep.";
        Api.commit_file env a;
        Api.begin_trans env;
        Api.pwrite env a ~pos:0 (Bytes.of_string "WRECK");
        Api.write_string env b "WRECK";
        Api.abort_trans env;
        ())
  in
  Alcotest.(check string) "a intact" "keep." (oracle sim "/a");
  Alcotest.(check string) "b never grew" "" (oracle sim "/b")

let test_nesting () =
  let sim =
    scenario (fun cl env ->
        let a = Api.creat env "/a" ~vid:1 in
        Api.begin_trans env;
        Api.write_string env a "11111";
        (* Inner pair, e.g. a database subsystem's critical section (§2). *)
        Api.begin_trans env;
        Api.pwrite env a ~pos:5 (Bytes.of_string "22222");
        Alcotest.check outcome "inner end is pairing only" K.Committed
          (Api.end_trans env);
        (* Still uncommitted: the transaction ends at nesting 0 only. *)
        Alcotest.(check string) "nothing durable yet" ""
          (K.read_committed_oracle cl (Option.get (K.lookup cl "/a")));
        Alcotest.(check bool) "still inside" true (Api.in_transaction env);
        Alcotest.check outcome "outer commits" K.Committed (Api.end_trans env);
        Alcotest.(check bool) "outside now" false (Api.in_transaction env))
  in
  Alcotest.(check string) "both writes atomic" "1111122222" (oracle sim "/a");
  Alcotest.(check int) "exactly one transaction" 1
    (L.Stats.get (L.Engine.stats sim.L.engine) "txn.committed")

let test_end_trans_outside_raises () =
  let raised = ref false in
  ignore
    (scenario (fun _cl env ->
         (try ignore (Api.end_trans env)
          with Api.Error _ -> raised := true)));
  Alcotest.(check bool) "raises" true !raised

(* {1 Locking semantics across processes} *)

let test_exclusive_blocks_until_commit () =
  (* 2PL in action: a reader blocks on a writer's retained lock until the
     transaction commits, then sees the committed value. *)
  let seen = ref "" and t_read = ref 0 and t_commit = ref 0 in
  ignore
    (scenario (fun _cl env ->
         let c = Api.creat env "/r" ~vid:1 in
         Api.write_string env c "old!";
         Api.commit_file env c;
         let writer =
           Api.fork env ~name:"writer" (fun w ->
               Api.begin_trans w;
               Api.seek w c ~pos:0;
               must_lock w c ~len:4 ~mode:M.Exclusive;
               Api.pwrite w c ~pos:0 (Bytes.of_string "new!");
               (* Explicit unlock retains (§3.3 rule 1). *)
               Api.seek w c ~pos:0;
               Api.unlock w c ~len:4;
               Engine.sleep 200_000;
               ignore (Api.end_trans w);
               t_commit := Engine.now (K.engine (Api.cluster w)))
         in
         Engine.sleep 50_000;
         (* Reader: non-transaction read must wait out the retained lock. *)
         seen := Bytes.to_string (Api.pread env c ~pos:0 ~len:4);
         t_read := Engine.now (K.engine (Api.cluster env));
         Api.wait_pid env writer));
  Alcotest.(check string) "read committed value" "new!" !seen;
  Alcotest.(check bool) "read happened after commit" true (!t_read >= !t_commit)

let test_conflict_nowait () =
  ignore
    (scenario (fun _cl env ->
         let c = Api.creat env "/r" ~vid:1 in
         Api.write_string env c "x";
         Api.commit_file env c;
         let locked = Engine.Ivar.create () in
         let e = K.engine (Api.cluster env) in
         let holder =
           Api.fork env ~name:"holder" (fun h ->
               Api.begin_trans h;
               Api.seek h c ~pos:0;
               must_lock h c ~len:1 ~mode:M.Exclusive;
               Engine.fill e locked ();
               Engine.sleep 100_000;
               ignore (Api.end_trans h))
         in
         Engine.await locked;
         Api.seek env c ~pos:0;
         (match Api.lock env c ~len:1 ~mode:M.Shared ~wait:false () with
         | Api.Conflict [ Owner.Transaction _ ] -> ()
         | Api.Conflict _ -> Alcotest.fail "expected one transaction blocker"
         | Api.Granted -> Alcotest.fail "expected conflict");
         Api.wait_pid env holder))

let test_shared_readers_concurrent () =
  let sim =
    scenario (fun _cl env ->
        let c = Api.creat env "/r" ~vid:1 in
        Api.write_string env c "data";
        Api.commit_file env c;
        let reader i =
          Api.fork env ~name:(Printf.sprintf "r%d" i) (fun r ->
              Api.begin_trans r;
              Api.seek r c ~pos:0;
              must_lock r c ~len:4 ~mode:M.Shared;
              ignore (Api.pread r c ~pos:0 ~len:4);
              Engine.sleep 50_000;
              ignore (Api.end_trans r))
        in
        let rs = List.init 4 reader in
        List.iter (Api.wait_pid env) rs)
  in
  (* All four readers held the shared lock simultaneously: no waits. *)
  Alcotest.(check int) "no lock waits" 0
    (L.Stats.get (L.Engine.stats sim.L.engine) "lock.waits")

let test_implicit_locking () =
  let sim =
    scenario (fun _cl env ->
        let c = Api.creat env "/r" ~vid:1 in
        Api.begin_trans env;
        (* No explicit lock: the kernel acquires one at access time (§3.1). *)
        Api.write_string env c "implicit";
        ignore (Api.end_trans env))
  in
  Alcotest.(check bool) "implicit lock taken" true
    (L.Stats.get (L.Engine.stats sim.L.engine) "lock.implicit" > 0)

let test_pre_transaction_locks_not_converted () =
  (* §3.4 second mechanism: locks acquired before BeginTrans are not
     transaction locks — unlocking them inside the transaction really
     releases them. *)
  ignore
    (scenario (fun _cl env ->
         let c = Api.creat env "/r" ~vid:1 in
         Api.write_string env c "x";
         Api.commit_file env c;
         Api.seek env c ~pos:0;
         must_lock env c ~len:1 ~mode:M.Exclusive;
         Api.begin_trans env;
         Api.seek env c ~pos:0;
         Api.unlock env c ~len:1;
         (* An independent process (a fork would join the transaction and
            share its locks) can grab it immediately, mid-transaction. *)
         let probe = ref false in
         let p =
           Api.spawn_process (Api.cluster env) ~site:1 ~name:"probe" (fun q ->
               let qc = Api.open_file q "/r" in
               Api.seek q qc ~pos:0;
               (match Api.lock q qc ~len:1 ~mode:M.Exclusive ~wait:false () with
               | Api.Granted -> probe := true
               | Api.Conflict _ -> ());
               Api.close q qc)
         in
         Api.wait_pid env p;
         ignore (Api.end_trans env);
         Alcotest.(check bool) "released mid-transaction" true !probe))

let test_non_transaction_lock_mode () =
  (* §3.4 first mechanism: a non-transaction-mode lock taken inside a
     transaction is not subject to 2PL. *)
  ignore
    (scenario (fun _cl env ->
         let c = Api.creat env "/catalog" ~vid:1 in
         Api.write_string env c "x";
         Api.commit_file env c;
         Api.begin_trans env;
         Api.seek env c ~pos:0;
         (match Api.lock env c ~len:1 ~mode:M.Exclusive ~non_transaction:true () with
         | Api.Granted -> ()
         | Api.Conflict _ -> Alcotest.fail "grant");
         Api.seek env c ~pos:0;
         Api.unlock env c ~len:1;
         let probe = ref false in
         let p =
           Api.spawn_process (Api.cluster env) ~site:1 ~name:"probe" (fun q ->
               let qc = Api.open_file q "/catalog" in
               Api.seek q qc ~pos:0;
               (match Api.lock q qc ~len:1 ~mode:M.Exclusive ~wait:false () with
               | Api.Granted -> probe := true
               | Api.Conflict _ -> ());
               Api.close q qc)
         in
         Api.wait_pid env p;
         ignore (Api.end_trans env);
         Alcotest.(check bool) "catalog lock released early" true !probe))

let test_rule2_dirty_read_commits_with_txn () =
  (* Figure 2 / §3.3 rule 2, in its sharpest form: the transaction only
     READS the dirty record, yet the record commits with it. *)
  let sim =
    scenario (fun _cl env ->
        let c = Api.creat env "/x" ~vid:1 in
        Api.write_string env c "....";
        Api.commit_file env c;
        (* Non-transaction dirty write, unlocked. *)
        Api.pwrite env c ~pos:0 (Bytes.of_string "DIRT");
        let t =
          Api.fork env ~name:"txn" (fun w ->
              Api.begin_trans w;
              Api.seek w c ~pos:0;
              must_lock w c ~len:4 ~mode:M.Shared;
              ignore (Api.pread w c ~pos:0 ~len:4);
              ignore (Api.end_trans w))
        in
        Api.wait_pid env t)
  in
  Alcotest.(check string) "dirty record committed by the reader txn" "DIRT"
    (oracle sim "/x")

let test_append_mode_disjoint_offsets () =
  let offsets = ref [] in
  let sim =
    scenario (fun _cl env ->
        let c = Api.creat env "/log" ~vid:1 in
        Api.close env c;
        let appender i =
          Api.fork env ~name:(Printf.sprintf "app%d" i) (fun a ->
              let lc = Api.open_file a "/log" in
              Api.set_append a lc true;
              Api.begin_trans a;
              (match Api.lock a lc ~len:10 ~mode:M.Exclusive () with
              | Api.Granted -> offsets := Api.pos a lc :: !offsets
              | Api.Conflict _ -> Alcotest.fail "append lock");
              Api.write_string a lc (Printf.sprintf "entry-%04d" i);
              ignore (Api.end_trans a);
              Api.close a lc)
        in
        let pids = List.init 5 appender in
        List.iter (Api.wait_pid env) pids)
  in
  let sorted = List.sort Int.compare !offsets in
  Alcotest.(check (list int)) "five disjoint slots" [ 0; 10; 20; 30; 40 ] sorted;
  Alcotest.(check int) "log size" 50 (String.length (oracle sim "/log"))

(* {1 Processes} *)

let test_remote_members_file_lists_merge () =
  (* Members at three different sites each update a different file; the
     top-level process commits all of them in one 2PC. *)
  let sim =
    scenario ~n_sites:3 (fun _cl env ->
        let a = Api.creat env "/a" ~vid:0 in
        let b = Api.creat env "/b" ~vid:1 in
        let c = Api.creat env "/c" ~vid:2 in
        Api.begin_trans env;
        let work site chan text =
          Api.fork env ~site ~name:"member" (fun m -> Api.write_string m chan text)
        in
        let p1 = work 1 a "from1" in
        let p2 = work 2 b "from2" in
        Api.write_string env c "local";
        Api.wait_pid env p1;
        Api.wait_pid env p2;
        Alcotest.check outcome "committed" K.Committed (Api.end_trans env))
  in
  Alcotest.(check string) "a" "from1" (oracle sim "/a");
  Alcotest.(check string) "b" "from2" (oracle sim "/b");
  Alcotest.(check string) "c" "local" (oracle sim "/c");
  (* Three participant sites prepared. *)
  Alcotest.(check int) "prepares" 3
    (L.Stats.get (L.Engine.stats sim.L.engine) "2pc.prepares")

let test_member_failure_aborts_transaction () =
  let sim =
    scenario (fun _cl env ->
        let a = Api.creat env "/a" ~vid:1 in
        let outcome_ref = ref None in
        let runner =
          Api.fork env ~name:"runner" (fun r ->
              Api.begin_trans r;
              Api.write_string r a "doomed";
              let bad =
                Api.fork r ~site:1 ~name:"bad" (fun b -> Api.fail b "injected")
              in
              Api.wait_pid r bad;
              outcome_ref := Some (Api.end_trans r))
        in
        Api.wait_pid env runner)
  in
  Alcotest.(check string) "nothing committed" "" (oracle sim "/a");
  Alcotest.(check int) "no commits" 0
    (L.Stats.get (L.Engine.stats sim.L.engine) "txn.committed")

let test_migration_race_merge_retry () =
  (* The §4.1 race: a child's file-list merge arrives while the top-level
     process is in transit; the message is bounced and retried. *)
  let sim =
    scenario ~n_sites:3 (fun _cl env ->
        let a = Api.creat env "/a" ~vid:1 in
        Api.begin_trans env;
        Api.write_string env a "top..";
        let member =
          Api.fork env ~site:2 ~name:"member" (fun m ->
              Api.pwrite m a ~pos:5 (Bytes.of_string "child"))
        in
        (* Migrate repeatedly while the member completes. *)
        Api.migrate env 1;
        Api.migrate env 2;
        Api.migrate env 0;
        Api.wait_pid env member;
        Alcotest.check outcome "commits despite the chase" K.Committed
          (Api.end_trans env))
  in
  Alcotest.(check string) "both writes" "top..child" (oracle sim "/a");
  Alcotest.(check int) "migrations" 3
    (L.Stats.get (L.Engine.stats sim.L.engine) "proc.migrations")

let test_deadlock_detected_and_resolved () =
  let outcomes = ref [] in
  let sim =
    scenario ~n_sites:2 (fun _cl env ->
        let a = Api.creat env "/a" ~vid:1 in
        let b = Api.creat env "/b" ~vid:1 in
        Api.write_string env a "A";
        Api.write_string env b "B";
        Api.commit_file env a;
        Api.commit_file env b;
        let cross first second name =
          Api.fork env ~name (fun w ->
              Api.begin_trans w;
              Api.seek w first ~pos:0;
              must_lock w first ~len:1 ~mode:M.Exclusive;
              Engine.sleep 50_000;
              Api.seek w second ~pos:0;
              must_lock w second ~len:1 ~mode:M.Exclusive;
              outcomes := Api.end_trans w :: !outcomes)
        in
        let p1 = cross a b "t1" in
        let p2 = cross b a "t2" in
        Api.wait_pid env p1;
        Api.wait_pid env p2)
  in
  let stats = L.Engine.stats sim.L.engine in
  Alcotest.(check bool) "scan ran" true (L.Stats.get stats "deadlock.scans" > 0);
  Alcotest.(check int) "one victim" 1 (L.Stats.get stats "deadlock.victims");
  (* The survivor commits; the victim's fiber was killed so only one
     outcome is recorded. *)
  Alcotest.(check (list outcome)) "survivor committed" [ K.Committed ] !outcomes

let test_replica_propagation () =
  let config =
    { (K.Config.default ~n_sites:3) with
      K.Config.volumes = [ (0, [ 0 ]); (1, [ 1; 2 ]) ] }
  in
  let sim =
    scenario ~config ~n_sites:3 (fun _cl env ->
        let c = Api.creat env "/repl" ~vid:1 in
        Api.begin_trans env;
        Api.write_string env c "mirrored";
        ignore (Api.end_trans env))
  in
  let cl = sim.L.cluster in
  let fid = Option.get (K.lookup cl "/repl") in
  Alcotest.(check int) "primary is site 1" 1 (K.storage_site cl fid);
  (* The backup replica at site 2 received the committed pages. *)
  let k2 = K.kernel cl 2 in
  let vol2 = Option.get (Locus_fs.Filestore.volume (K.filestore k2) ~vid:1) in
  let inode = Locus_disk.Volume.read_inode_nosim vol2 fid.File_id.ino in
  Alcotest.(check int) "replica size" 8 inode.Locus_disk.Volume.size;
  (* Versions track the primary: create = v1, the commit = v2. *)
  Alcotest.(check int) "replica version" 2 inode.Locus_disk.Volume.version;
  Alcotest.(check bool) "replica apply happened" true
    (L.Stats.get (L.Engine.stats sim.L.engine) "replica.apply" > 0)

let test_close_commits_non_transaction_writes () =
  let sim =
    scenario (fun _cl env ->
        let c = Api.creat env "/plain" ~vid:1 in
        Api.write_string env c "unix!";
        Api.close env c)
  in
  Alcotest.(check string) "durable after close" "unix!" (oracle sim "/plain")

let test_lock_cache_ablation () =
  (* With the requesting-site lock cache disabled, covered accesses pay a
     revalidation message (§5.1 / E2 ablation). *)
  let run lock_cache =
    let config = { (K.Config.default ~n_sites:2) with K.Config.lock_cache } in
    let sim =
      scenario ~config ~n_sites:2 (fun _cl env ->
          let c = Api.creat env "/r" ~vid:1 in
          Api.write_string env c "xxxx";
          Api.commit_file env c;
          Api.begin_trans env;
          Api.seek env c ~pos:0;
          must_lock env c ~len:4 ~mode:M.Exclusive;
          for _ = 1 to 5 do
            ignore (Api.pread env c ~pos:0 ~len:4)
          done;
          ignore (Api.end_trans env))
    in
    L.Stats.get (L.Engine.stats sim.L.engine) "lock.revalidations"
  in
  Alcotest.(check int) "cache on: no revalidation" 0 (run true);
  Alcotest.(check int) "cache off: one per access" 5 (run false)

let suite =
  [
    ( "kernel.transactions",
      [
        Alcotest.test_case "multi-file multi-site commit" `Quick
          test_multi_file_multi_site_commit;
        Alcotest.test_case "abort undoes" `Quick test_abort_undoes_everything;
        Alcotest.test_case "nesting" `Quick test_nesting;
        Alcotest.test_case "end outside" `Quick test_end_trans_outside_raises;
      ] );
    ( "kernel.locking",
      [
        Alcotest.test_case "2PL blocks until commit" `Quick
          test_exclusive_blocks_until_commit;
        Alcotest.test_case "conflict nowait" `Quick test_conflict_nowait;
        Alcotest.test_case "shared readers" `Quick test_shared_readers_concurrent;
        Alcotest.test_case "implicit locking" `Quick test_implicit_locking;
        Alcotest.test_case "pre-txn locks (§3.4)" `Quick
          test_pre_transaction_locks_not_converted;
        Alcotest.test_case "non-transaction locks (§3.4)" `Quick
          test_non_transaction_lock_mode;
        Alcotest.test_case "rule 2 dirty read" `Quick
          test_rule2_dirty_read_commits_with_txn;
        Alcotest.test_case "append mode" `Quick test_append_mode_disjoint_offsets;
        Alcotest.test_case "lock cache ablation" `Quick test_lock_cache_ablation;
      ] );
    ( "kernel.processes",
      [
        Alcotest.test_case "remote members merge" `Quick
          test_remote_members_file_lists_merge;
        Alcotest.test_case "member failure aborts" `Quick
          test_member_failure_aborts_transaction;
        Alcotest.test_case "migration race" `Quick test_migration_race_merge_retry;
        Alcotest.test_case "deadlock resolution" `Quick
          test_deadlock_detected_and_resolved;
        Alcotest.test_case "replica propagation" `Quick test_replica_propagation;
        Alcotest.test_case "close commits" `Quick
          test_close_commits_non_transaction_writes;
      ] );
  ]

let test_prefetch_serves_reads_locally () =
  let run prefetch =
    let config = { (K.Config.default ~n_sites:2) with K.Config.prefetch } in
    let sim =
      scenario ~config ~n_sites:2 (fun _cl env ->
          let c = Api.creat env "/r" ~vid:1 in
          Api.write_string env c (String.make 128 'd');
          Api.commit_file env c;
          Api.begin_trans env;
          Api.seek env c ~pos:0;
          must_lock env c ~len:128 ~mode:M.Exclusive;
          (* Reads inside the locked (prefetched) range. *)
          for g = 0 to 7 do
            let b = Api.pread env c ~pos:(g * 16) ~len:16 in
            assert (Bytes.to_string b = String.make 16 'd')
          done;
          (* Write-through: our own write must be visible in later cached
             reads. *)
          Api.pwrite env c ~pos:32 (Bytes.of_string "WWWW");
          Alcotest.(check string)
            (if prefetch then "cached read sees own write" else "remote read")
            "WWWW"
            (Bytes.to_string (Api.pread env c ~pos:32 ~len:4));
          ignore (Api.end_trans env))
    in
    ( L.Stats.get (L.Engine.stats sim.L.engine) "prefetch.hits",
      L.Stats.get (L.Engine.stats sim.L.engine) "net.msg" )
  in
  let hits_on, msgs_on = run true in
  let hits_off, msgs_off = run false in
  Alcotest.(check bool) "hits with prefetch" true (hits_on >= 8);
  Alcotest.(check int) "no hits without" 0 hits_off;
  Alcotest.(check bool) "fewer messages with prefetch" true (msgs_on < msgs_off)

let test_prefetch_invalidated_on_unlock () =
  let config = { (K.Config.default ~n_sites:2) with K.Config.prefetch = true } in
  ignore
    (scenario ~config ~n_sites:2 (fun _cl env ->
         let c = Api.creat env "/r" ~vid:1 in
         Api.write_string env c (String.make 64 'd');
         Api.commit_file env c;
         Api.seek env c ~pos:0;
         must_lock env c ~len:64 ~mode:M.Exclusive;
         ignore (Api.pread env c ~pos:0 ~len:16);
         Api.seek env c ~pos:0;
         Api.unlock env c ~len:64;
         (* Another process changes the data... *)
         let w =
           Api.spawn_process (Api.cluster env) ~site:1 (fun q ->
               let qc = Api.open_file q "/r" in
               Api.pwrite q qc ~pos:0 (Bytes.of_string "FRESH");
               Api.commit_file q qc;
               Api.close q qc)
         in
         Api.wait_pid env w;
         (* ...and without the lock our stale prefetched copy must not be
            used. *)
         Alcotest.(check string) "fresh data after unlock" "FRESH"
           (Bytes.to_string (Api.pread env c ~pos:0 ~len:5));
         Api.close env c))

let prefetch_tests =
  ( "kernel.prefetch",
    [
      Alcotest.test_case "serves reads locally" `Quick
        test_prefetch_serves_reads_locally;
      Alcotest.test_case "invalidated on unlock" `Quick
        test_prefetch_invalidated_on_unlock;
    ] )

let suite = suite @ [ prefetch_tests ]

(* §5.2 lock-control migration. *)

let delegation_config n_sites =
  { (K.Config.default ~n_sites) with K.Config.lock_delegation = true }

let test_delegation_grants_locally () =
  let config = delegation_config 2 in
  let sim =
    scenario ~config ~n_sites:2 (fun _cl env ->
        let c = Api.creat env "/f" ~vid:1 in
        Api.write_string env c (String.make 512 'x');
        Api.commit_file env c;
        (* A burst of explicit lock/unlock from this remote site. *)
        let e = K.engine (Api.cluster env) in
        let costs = ref [] in
        for g = 0 to 9 do
          Api.seek env c ~pos:(g * 16);
          let t0 = Engine.now e in
          (match Api.lock env c ~len:16 ~mode:M.Exclusive () with
          | Api.Granted -> ()
          | Api.Conflict _ -> Alcotest.fail "grant");
          costs := (Engine.now e - t0) :: !costs;
          Api.seek env c ~pos:(g * 16);
          Api.unlock env c ~len:16
        done;
        let costs = List.rev !costs in
        let early = List.nth costs 0 and late = List.nth costs 9 in
        (* After authority moves here, locking is a local operation. *)
        Alcotest.(check bool) "late locks much cheaper" true (late * 3 < early))
  in
  Alcotest.(check bool) "delegated" true
    (L.Stats.get (L.Engine.stats sim.L.engine) "delegation.out" > 0)

let test_delegation_still_enforces () =
  let config = delegation_config 3 in
  ignore
    (scenario ~config ~n_sites:3 (fun _cl env ->
         let c = Api.creat env "/f" ~vid:1 in
         Api.write_string env c (String.make 64 'x');
         Api.commit_file env c;
         (* Force delegation to this site (site 0). *)
         Api.begin_trans env;
         for _ = 1 to 4 do
           Api.seek env c ~pos:0;
           (match Api.lock env c ~len:16 ~mode:M.Exclusive () with
           | Api.Granted -> ()
           | Api.Conflict _ -> Alcotest.fail "grant")
         done;
         (* A third-site process must still see the conflict, following
            the redirect to the delegate. *)
         let saw = ref None in
         let p =
           Api.spawn_process (Api.cluster env) ~site:2 (fun q ->
               let qc = Api.open_file q "/f" in
               Api.seek q qc ~pos:0;
               (match Api.lock q qc ~len:16 ~mode:M.Shared ~wait:false () with
               | Api.Granted -> saw := Some `Granted
               | Api.Conflict _ -> saw := Some `Conflict);
               Api.close q qc)
         in
         Api.wait_pid env p;
         Alcotest.(check bool) "conflict visible at delegate" true
           (!saw = Some `Conflict);
         ignore (Api.end_trans env)))

let test_delegation_recalled_for_commit () =
  let config = delegation_config 2 in
  let sim =
    scenario ~config ~n_sites:2 (fun _cl env ->
        let c = Api.creat env "/f" ~vid:1 in
        Api.write_string env c (String.make 64 'x');
        Api.commit_file env c;
        Api.begin_trans env;
        for g = 0 to 3 do
          Api.seek env c ~pos:(g * 16);
          match Api.lock env c ~len:16 ~mode:M.Exclusive () with
          | Api.Granted -> ()
          | Api.Conflict _ -> Alcotest.fail "grant"
        done;
        Api.pwrite env c ~pos:0 (Bytes.of_string "DELEGATED-WRITE!");
        match Api.end_trans env with
        | K.Committed -> ()
        | K.Aborted -> Alcotest.fail "commit failed")
  in
  Alcotest.(check string) "committed through recall" "DELEGATED-WRITE!"
    (String.sub (oracle sim "/f") 0 16);
  let st = L.Engine.stats sim.L.engine in
  Alcotest.(check bool) "was delegated" true (L.Stats.get st "delegation.out" > 0);
  Alcotest.(check bool) "was recalled" true (L.Stats.get st "delegation.recalls" > 0);
  (* After commit, the lock is gone: an independent process gets it. *)
  let cl = sim.L.cluster in
  let ok = ref false in
  ignore
    (Api.spawn_process cl ~site:1 (fun q ->
         let qc = Api.open_file q "/f" in
         Api.seek q qc ~pos:0;
         (match Api.lock q qc ~len:16 ~mode:M.Exclusive ~wait:false () with
         | Api.Granted -> ok := true
         | Api.Conflict _ -> ());
         Api.close q qc));
  L.run sim;
  Alcotest.(check bool) "locks released after recall+commit" true !ok

let test_delegation_survives_delegate_crash () =
  let config = delegation_config 2 in
  let sim = L.make ~config ~n_sites:2 () in
  let cl = sim.L.cluster in
  ignore
    (Api.spawn_process cl ~site:0 ~name:"user" (fun env ->
         let c = Api.creat env "/f" ~vid:1 in
         Api.write_string env c (String.make 64 'x');
         Api.commit_file env c;
         for g = 0 to 3 do
           Api.seek env c ~pos:(g * 8);
           (match Api.lock env c ~len:8 ~mode:M.Exclusive () with
           | Api.Granted -> ()
           | Api.Conflict _ -> ())
         done;
         (* Authority now lives at site 0; park. *)
         Engine.sleep 5_000_000));
  ignore
    (Api.spawn_process cl ~site:1 ~name:"chaos" (fun _ ->
         Engine.sleep 1_000_000;
         K.crash_site cl 0;
         Engine.sleep 1_000_000;
         K.restart_site cl 0));
  L.run sim;
  (* After the delegate died, a fresh process can lock at the home site. *)
  let ok = ref false in
  ignore
    (Api.spawn_process cl ~site:1 (fun q ->
         let qc = Api.open_file q "/f" in
         Api.seek q qc ~pos:0;
         (match Api.lock q qc ~len:8 ~mode:M.Exclusive () with
         | Api.Granted -> ok := true
         | Api.Conflict _ -> ());
         Api.close q qc));
  L.run sim;
  Alcotest.(check bool) "home recovers authority after delegate crash" true !ok

let delegation_tests =
  ( "kernel.delegation",
    [
      Alcotest.test_case "grants locally after transfer" `Quick
        test_delegation_grants_locally;
      Alcotest.test_case "still enforces" `Quick test_delegation_still_enforces;
      Alcotest.test_case "recalled for commit" `Quick
        test_delegation_recalled_for_commit;
      Alcotest.test_case "delegate crash" `Quick
        test_delegation_survives_delegate_crash;
    ] )

let suite = suite @ [ delegation_tests ]
