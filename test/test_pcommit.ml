(* Paxos Commit (Gray & Lamport): the acceptor state machine, the quorum
   decision function, and the end-to-end non-blocking property 2PC lacks —
   a coordinator killed between its durable decision and phase 2 must not
   leave participants in doubt forever. *)

module E = Engine
module V = Locus_disk.Volume
module P = Locus_pcommit.Pcommit
module A = Locus_pcommit.Acceptor
module L = Locus_core.Locus
module Api = L.Api
module K = L.Kernel
module LR = Locus_txn.Log_record
module W = Locus_check.Workload

let in_sim f =
  let e = E.create () in
  let result = ref None in
  ignore (E.spawn e (fun () -> result := Some (f e)));
  E.run e;
  Option.get !result

let tx ?(site = 0) seq = Txid.make ~site ~incarnation:1 ~seq

(* {1 The decision function} *)

let test_quorum_and_placement () =
  Alcotest.(check int) "f=0 quorum" 1 (P.quorum ~f:0);
  Alcotest.(check int) "f=1 quorum" 2 (P.quorum ~f:1);
  Alcotest.(check int) "f=2 quorum" 3 (P.quorum ~f:2);
  Alcotest.(check (list int)) "f=1 acceptors from site 1"
    [ 1; 2; 3 ]
    (P.acceptors ~n_sites:4 ~f:1 ~coordinator:1);
  Alcotest.(check (list int)) "wraps around"
    [ 3; 0; 1 ]
    (P.acceptors ~n_sites:4 ~f:1 ~coordinator:3);
  Alcotest.(check bool) "coordinator is always an acceptor" true
    (List.for_all
       (fun c -> List.mem c (P.acceptors ~n_sites:5 ~f:2 ~coordinator:c))
       [ 0; 1; 2; 3; 4 ]);
  (match P.acceptors ~n_sites:2 ~f:1 ~coordinator:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "2 sites cannot host 3 acceptors")

let test_decide () =
  let ps = [ 1; 2 ] in
  (* All instances Prepared at quorum across 2 of 3 acceptors. *)
  Alcotest.(check bool) "unanimous yes commits" true
    (P.decide ~f:1 ~participants:ps
       ~votes:[ [ (1, true); (2, true) ]; [ (1, true); (2, true) ] ]
    = P.Commit);
  (* One instance Aborted at quorum: abort regardless of the other. *)
  Alcotest.(check bool) "one quorum no aborts" true
    (P.decide ~f:1 ~participants:ps
       ~votes:[ [ (1, true); (2, false) ]; [ (1, true); (2, false) ] ]
    = P.Abort);
  (* A yes registered at only one acceptor is not at quorum: undecided,
     and the open instance is reported for closure. *)
  (match
     P.decide ~f:1 ~participants:ps
       ~votes:[ [ (1, true); (2, true) ]; [ (2, true) ] ]
   with
  | P.Undecided open_instances ->
    Alcotest.(check (list int)) "instance 1 open" [ 1 ] open_instances
  | d -> Alcotest.failf "expected undecided, got %a" P.pp_decision d);
  (* Nothing registered anywhere: everything is open. *)
  (match P.decide ~f:1 ~participants:ps ~votes:[ []; [] ] with
  | P.Undecided [ 1; 2 ] -> ()
  | d -> Alcotest.failf "expected both open, got %a" P.pp_decision d);
  (* Closure offered ballot-1 Aborted votes and one stuck at quorum. *)
  Alcotest.(check bool) "closed instance aborts" true
    (P.decide ~f:1 ~participants:ps
       ~votes:[ [ (1, true); (2, false) ]; [ (1, true) ]; [ (2, false) ] ]
    = P.Abort)

(* {1 Acceptor registration, persistence, replay} *)

let with_acceptor f =
  in_sim (fun e ->
      let vol = V.create e ~vid:7 ~page_size:256 () in
      f (A.create vol) vol)

let test_acceptor_first_writer_wins () =
  with_acceptor (fun a _vol ->
      let txid = tx 1 in
      Alcotest.(check bool) "yes sticks" true
        (A.register a ~txid ~participant:1 ~vote:true ~ballot:0
           ~participants:[ 1; 2 ]);
      (* A later ballot-1 Aborted offer for the same instance must lose. *)
      Alcotest.(check bool) "closure offer returns the holder" true
        (A.register a ~txid ~participant:1 ~vote:false ~ballot:1
           ~participants:[ 1; 2 ]);
      Alcotest.(check (option bool)) "registration immutable" (Some true)
        (A.registered a ~txid ~participant:1);
      (* Distinct instances are independent. *)
      Alcotest.(check bool) "no sticks on a free instance" false
        (A.register a ~txid ~participant:2 ~vote:false ~ballot:0
           ~participants:[ 1; 2 ]);
      let participants, votes = A.votes_for a txid in
      Alcotest.(check (list int)) "participant union" [ 1; 2 ] participants;
      Alcotest.(check int) "two instances" 2 (List.length votes))

let test_acceptor_replay () =
  with_acceptor (fun a vol ->
      let txid = tx 2 in
      ignore
        (A.register a ~txid ~participant:1 ~vote:true ~ballot:0
           ~participants:[ 1 ]);
      ignore
        (A.register a ~txid:(tx 3) ~participant:2 ~vote:false ~ballot:0
           ~participants:[ 2 ]);
      A.crash a;
      Alcotest.(check int) "volatile state gone" 0 (A.size a);
      A.recover a;
      Alcotest.(check int) "both registrations replayed" 2 (A.size a);
      Alcotest.(check (option bool)) "value survives" (Some true)
        (A.registered a ~txid ~participant:1);
      (* forget releases the log record: replay after forget finds nothing. *)
      A.forget a txid;
      A.forget a (tx 3);
      A.crash a;
      A.recover a;
      Alcotest.(check int) "forgotten" 0 (A.size a);
      ignore vol)

(* {1 End-to-end: the non-blocking property} *)

let oracle cl path =
  match K.lookup cl path with
  | Some fid -> K.read_committed_oracle cl fid
  | None -> ""

let check_atomic cl =
  let a = oracle cl "/a" and b = oracle cl "/b" in
  match (a, b) with
  | "AAAA", "BBBB" -> `Committed
  | "", "" -> `Aborted
  | _ -> Alcotest.failf "non-atomic state: /a=%S /b=%S" a b

(* The test_recovery scenario, under a configurable commit protocol:
   writes to /a (site 1) and /b (site 2), coordinated from site 0. *)
let run_scenario ~config ~inject =
  let sim = L.make ~n_sites:3 ~config () in
  let cl = sim.L.cluster in
  inject cl;
  let outcome = ref None in
  ignore
    (Api.spawn_process cl ~site:0 ~name:"client" (fun env ->
         let a = Api.creat env "/a" ~vid:1 in
         let b = Api.creat env "/b" ~vid:2 in
         Api.begin_trans env;
         Api.write_string env a "AAAA";
         Api.write_string env b "BBBB";
         outcome := Some (Api.end_trans env)));
  L.run sim;
  (sim, !outcome)

let paxos_config = K.Config.with_paxos ~f:1 (K.Config.default ~n_sites:3)

let kill_coordinator_at_decide cl =
  (K.hooks cl).K.on_decided <-
    (fun _txid status ->
      if status = LR.Committed then
        (* The decision is durable, phase 2 never leaves, and the
           coordinator NEVER comes back. *)
        K.crash_site cl 0)

let test_paxos_happy_path () =
  let sim, outcome = run_scenario ~config:paxos_config ~inject:(fun _ -> ()) in
  Alcotest.(check bool) "client saw commit" true (outcome = Some K.Committed);
  Alcotest.(check bool) "durably committed" true
    (check_atomic sim.L.cluster = `Committed);
  let stats = L.Engine.stats sim.L.engine in
  Alcotest.(check bool) "votes went through the acceptors" true
    (L.Stats.get stats "pcommit.votes_cast" > 0
    && L.Stats.get stats "pcommit.votes_seen" > 0);
  Alcotest.(check (list (pair int reject))) "nobody in doubt" []
    (List.map
       (fun (s, t) -> (s, ignore t))
       (K.in_doubt_participants sim.L.cluster))

let test_2pc_coordinator_kill_blocks () =
  (* Satellite: pin the blocking behaviour Paxos Commit exists to fix.
     Under plain 2PC the same kill leaves every participant in doubt —
     holding locks — until the coordinator site comes back. *)
  let sim, _ =
    run_scenario
      ~config:(K.Config.default ~n_sites:3)
      ~inject:kill_coordinator_at_decide
  in
  let cl = sim.L.cluster in
  Alcotest.(check bool) "participants blocked in-doubt" true
    (K.in_doubt_participants cl <> []);
  Alcotest.(check bool) "in_doubt gauge raised" true
    (L.Stats.get (L.Engine.stats sim.L.engine) "txn.in_doubt" > 0);
  (* Only coordinator recovery can unblock them. *)
  K.restart_site cl 0;
  L.run sim;
  Alcotest.(check bool) "unblocked after coordinator recovery" true
    (K.in_doubt_participants cl = []);
  Alcotest.(check bool) "and consistent" true (check_atomic cl = `Committed)

let test_paxos_coordinator_kill_resolves () =
  (* The same kill under Paxos Commit: participants learn the commit from
     the acceptor quorum (sites 1 and 2 survive) with the coordinator
     permanently dead. *)
  let sim, _ =
    run_scenario ~config:paxos_config ~inject:kill_coordinator_at_decide
  in
  let cl = sim.L.cluster in
  Alcotest.(check bool) "nobody left in doubt" true
    (K.in_doubt_participants cl = []);
  Alcotest.(check bool) "committed without the coordinator" true
    (check_atomic cl = `Committed);
  Alcotest.(check bool) "resolved from the acceptors" true
    (L.Stats.get (L.Engine.stats sim.L.engine) "pcommit.resolved_commit" > 0);
  Alcotest.(check int) "gauge back to zero" 0
    (L.Stats.get (L.Engine.stats sim.L.engine) "txn.in_doubt")

let test_break_paxos_blocks () =
  (* Self-test inversion: acceptors that ack votes without registering
     them make the decision unlearnable, so the same scenario must end
     with blocked participants — proving the liveness oracle has teeth. *)
  Locus_pcommit.Flags.break_paxos := true;
  Fun.protect ~finally:(fun () -> Locus_pcommit.Flags.break_paxos := false)
  @@ fun () ->
  let sim, _ =
    run_scenario ~config:paxos_config ~inject:kill_coordinator_at_decide
  in
  Alcotest.(check bool) "broken acceptors leave participants blocked" true
    (K.in_doubt_participants sim.L.cluster <> [])

let test_query_outcome_retry_during_recovery () =
  (* Regression: a participant whose recovery asks the coordinator for an
     outcome while the coordinator is itself still recovering must get
     R_retry (and retry), not a hard error it would misread as failure.
     Crash both after the decision and reboot them at the same instant so
     the participant's query races the coordinator's own log replay. *)
  let sim, _ =
    run_scenario
      ~config:(K.Config.default ~n_sites:3)
      ~inject:(fun cl ->
        (K.hooks cl).K.on_decided <-
          (fun _txid status ->
            if status = LR.Committed then begin
              K.crash_site cl 2;
              K.crash_site cl 0;
              Engine.schedule ~delay:2_000_000 (K.engine cl) (fun () ->
                  K.restart_site cl 0);
              Engine.schedule ~delay:2_000_000 (K.engine cl) (fun () ->
                  K.restart_site cl 2)
            end))
  in
  let stats = L.Engine.stats sim.L.engine in
  Alcotest.(check bool) "query bounced off the recovering coordinator" true
    (L.Stats.get stats "recovery.outcome_retries" > 0);
  Alcotest.(check bool) "and still converged" true
    (check_atomic sim.L.cluster = `Committed);
  Alcotest.(check bool) "nobody left in doubt" true
    (K.in_doubt_participants sim.L.cluster = [])

let test_acceptor_gc_after_acks () =
  (* Satellite: acceptor state is garbage — and its log records released —
     once every participant acked phase 2, but never before: the
     coordinator-kill test above proves in-doubt resolution still finds
     the registrations when phase 2 was cut short. *)
  let sim, outcome = run_scenario ~config:paxos_config ~inject:(fun _ -> ()) in
  Alcotest.(check bool) "committed" true (outcome = Some K.Committed);
  let stats = L.Engine.stats sim.L.engine in
  Alcotest.(check bool) "forget was broadcast after full acks" true
    (L.Stats.get stats "pcommit.forget_sent" > 0);
  Alcotest.(check bool) "acceptors released the registrations" true
    (L.Stats.get stats "pcommit.forgotten" > 0);
  List.iter
    (fun k ->
      Alcotest.(check int)
        (Printf.sprintf "site %d acceptor empty" (K.site k))
        0
        (A.size (K.acceptor k)))
    (K.kernels sim.L.cluster)

let test_workload_sweep_paxos_liveness () =
  (* A miniature of the CI sweep: coordinator-kill faults across seeds,
     every history 1SR and every run drains with nobody blocked. *)
  let cfg =
    {
      Locus_check.Explore.default_config with
      sites = 3;
      fault_every = Some 3;
      commit = `Paxos 1;
    }
  in
  List.iter
    (fun seed ->
      let _, _, report, blocked = Locus_check.Explore.run_seed cfg seed in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d serializable" seed)
        true
        (Locus_check.Checker.ok report);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d live" seed)
        true (blocked = []))
    (Locus_check.Explore.seeds ~n:25 ~from:40)

let test_workload_2pc_kill_blocks () =
  (* The same fault under 2PC blocks: documents (and pins) the contrast. *)
  let spec = W.gen ~seed:42 ~sites:3 () in
  let _, sim =
    W.run ~fault:(W.Kill_coordinator { after_decides = 1 }) ~commit:`Two_phase
      ~seed:42 spec
  in
  Alcotest.(check bool) "2PC leaves blocked participants" true
    (W.blocked sim <> [])

let suite =
  [
    ( "pcommit",
      [
        Alcotest.test_case "quorum and placement" `Quick
          test_quorum_and_placement;
        Alcotest.test_case "decision function" `Quick test_decide;
        Alcotest.test_case "acceptor first-writer-wins" `Quick
          test_acceptor_first_writer_wins;
        Alcotest.test_case "acceptor crash replay" `Quick test_acceptor_replay;
        Alcotest.test_case "paxos happy path" `Quick test_paxos_happy_path;
        Alcotest.test_case "2pc blocks on coordinator kill" `Quick
          test_2pc_coordinator_kill_blocks;
        Alcotest.test_case "paxos resolves coordinator kill" `Quick
          test_paxos_coordinator_kill_resolves;
        Alcotest.test_case "break-paxos leaves blocked" `Quick
          test_break_paxos_blocks;
        Alcotest.test_case "query outcome retries during recovery" `Quick
          test_query_outcome_retry_during_recovery;
        Alcotest.test_case "acceptor GC after full acks" `Quick
          test_acceptor_gc_after_acks;
        Alcotest.test_case "sweep: paxos liveness" `Quick
          test_workload_sweep_paxos_liveness;
        Alcotest.test_case "sweep: 2pc kill blocks" `Quick
          test_workload_2pc_kill_blocks;
      ] );
  ]
