(* Locus_check: history recorder, serializability checker, schedule
   explorer and workload shrinker. *)

module Ck = Locus_check
module Obs = Locus_core.Obs
module M = Locus_lock.Mode
module L = Locus_core.Locus
module Api = L.Api

let txid n = Txid.make ~site:0 ~incarnation:1 ~seq:n
let p n = Pid.make ~origin:0 ~num:n
let fid = File_id.make ~vid:1 ~ino:7
let br lo hi = Byte_range.v ~lo ~hi
let ev at e = { Obs.at; site = 0; ev = e }
let acc owner pd range = { Obs.owner; pid = pd; fid; range; data = "" }

(* {1 Recorder} *)

let test_recorder_attach () =
  let sim = L.make ~seed:1 ~n_sites:2 () in
  let h = Ck.History.create () in
  Ck.History.attach h sim.L.cluster;
  ignore
    (Api.spawn_process sim.L.cluster ~site:0 (fun env ->
         let c = Api.creat env "/t" ~vid:1 in
         Api.begin_trans env;
         Api.write_string env c "hello";
         ignore (Api.end_trans env);
         Api.close env c));
  L.run sim;
  let evs = Ck.History.events h in
  let has pr = List.exists (fun r -> pr r.Obs.ev) evs in
  Alcotest.(check bool) "nonempty" true (Ck.History.length h > 0);
  Alcotest.(check bool) "begin observed" true
    (has (function Obs.Begin _ -> true | _ -> false));
  Alcotest.(check bool) "write observed" true
    (has (function Obs.Write _ -> true | _ -> false));
  Alcotest.(check bool) "commit observed" true
    (has (function Obs.Commit _ -> true | _ -> false))

(* {1 Checker on live histories} *)

let test_serializable_sweep () =
  let module E = Ck.Explore in
  let r = E.sweep ~seeds:(E.seeds ~n:25 ~from:0) () in
  Alcotest.(check int) "all seeds checked" 25 r.E.checked;
  Alcotest.(check int) "no unpermitted violations" 0 (List.length r.E.failures);
  Alcotest.(check bool) "events observed" true (r.E.events > 0)

let test_crashy_sweep () =
  let module E = Ck.Explore in
  let cfg = { E.default_config with E.sites = 3; fault_every = Some 3 } in
  let r = E.sweep ~config:cfg ~seeds:(E.seeds ~n:12 ~from:40) () in
  Alcotest.(check int) "all seeds checked" 12 r.E.checked;
  Alcotest.(check int) "no unpermitted violations" 0 (List.length r.E.failures)

let test_replicated_sweep () =
  let module E = Ck.Explore in
  let cfg =
    { E.default_config with E.sites = 3; replicas = 2; fault_every = Some 4 }
  in
  let r = E.sweep ~config:cfg ~seeds:(E.seeds ~n:12 ~from:80) () in
  Alcotest.(check int) "all seeds checked" 12 r.E.checked;
  Alcotest.(check int) "no unpermitted violations" 0 (List.length r.E.failures)

(* {1 Checker on fabricated histories} *)

let test_dirty_read_detected () =
  let t1 = txid 1 and t2 = txid 2 in
  let o1 = Owner.Transaction t1 and o2 = Owner.Transaction t2 in
  let h =
    Ck.History.of_events
      [
        ev 0 (Obs.Begin { txid = t1; pid = p 1 });
        ev 1 (Obs.Begin { txid = t2; pid = p 2 });
        ev 2 (Obs.Write (acc o1 (p 1) (br 0 16)));
        ev 3 (Obs.Read (acc o2 (p 2) (br 0 16)));
        ev 4 (Obs.Commit { txid = t1 });
        ev 5 (Obs.Commit { txid = t2 });
      ]
  in
  let r = Ck.Checker.check h in
  Alcotest.(check bool) "not ok" false (Ck.Checker.ok r);
  Alcotest.(check bool) "dirty read reported" true
    (List.exists
       (fun c ->
         match c.Ck.Checker.violation with
         | Ck.Checker.Dirty_read _ -> not c.Ck.Checker.permitted
         | Ck.Checker.Cycle _ | Ck.Checker.Stale_read _
         | Ck.Checker.Fenced_grant _ | Ck.Checker.Dup_apply _ -> false)
       r.Ck.Checker.violations)

let test_cycle_detected () =
  (* Two committed transactions with RW conflicts in both directions:
     no dirty read anywhere, yet not serializable. *)
  let t1 = txid 1 and t2 = txid 2 in
  let o1 = Owner.Transaction t1 and o2 = Owner.Transaction t2 in
  let h =
    Ck.History.of_events
      [
        ev 0 (Obs.Begin { txid = t1; pid = p 1 });
        ev 1 (Obs.Begin { txid = t2; pid = p 2 });
        ev 2 (Obs.Read (acc o1 (p 1) (br 0 16)));
        ev 3 (Obs.Read (acc o2 (p 2) (br 16 32)));
        ev 4 (Obs.Write (acc o2 (p 2) (br 0 16)));
        ev 5 (Obs.Write (acc o1 (p 1) (br 16 32)));
        ev 6 (Obs.Commit { txid = t1 });
        ev 7 (Obs.Commit { txid = t2 });
      ]
  in
  let r = Ck.Checker.check h in
  Alcotest.(check bool) "not ok" false (Ck.Checker.ok r);
  Alcotest.(check bool) "unpermitted cycle reported" true
    (List.exists
       (fun c ->
         match c.Ck.Checker.violation with
         | Ck.Checker.Cycle _ -> not c.Ck.Checker.permitted
         | Ck.Checker.Dirty_read _ | Ck.Checker.Stale_read _
         | Ck.Checker.Fenced_grant _ | Ck.Checker.Dup_apply _ -> false)
       r.Ck.Checker.violations)

let test_non_transaction_lock_permitted () =
  (* §3.4: a write made under a non-transaction lock may be seen by
     others before commit — a violation of serializability the paper
     deliberately permits (directories). The checker must classify it
     as permitted, not flag the run. *)
  let t1 = txid 1 and t2 = txid 2 in
  let o1 = Owner.Transaction t1 and o2 = Owner.Transaction t2 in
  let h =
    Ck.History.of_events
      [
        ev 0 (Obs.Begin { txid = t1; pid = p 1 });
        ev 1 (Obs.Begin { txid = t2; pid = p 2 });
        ev 2
          (Obs.Lock
             {
               owner = o1;
               pid = p 1;
               fid;
               range = br 0 16;
               mode = M.Exclusive;
               non_transaction = true;
             });
        ev 3 (Obs.Write (acc o1 (p 1) (br 0 16)));
        ev 4 (Obs.Read (acc o2 (p 2) (br 0 16)));
        ev 5 (Obs.Commit { txid = t2 });
        ev 6 (Obs.Commit { txid = t1 });
      ]
  in
  let r = Ck.Checker.check h in
  Alcotest.(check bool) "run passes" true (Ck.Checker.ok r);
  Alcotest.(check int) "no unpermitted" 0 (List.length (Ck.Checker.unpermitted r));
  Alcotest.(check bool) "the dirty read is reported as permitted" true
    (List.exists
       (fun c ->
         match c.Ck.Checker.violation with
         | Ck.Checker.Dirty_read _ -> c.Ck.Checker.permitted
         | Ck.Checker.Cycle _ | Ck.Checker.Stale_read _
         | Ck.Checker.Fenced_grant _ | Ck.Checker.Dup_apply _ -> false)
       (Ck.Checker.permitted r))

let test_process_writer_permitted () =
  (* Uncommitted data left visible by a plain process (§3.3): permitted. *)
  let t2 = txid 2 in
  let o1 = Owner.Process (p 1) and o2 = Owner.Transaction t2 in
  let h =
    Ck.History.of_events
      [
        ev 0 (Obs.Begin { txid = t2; pid = p 2 });
        ev 1 (Obs.Write (acc o1 (p 1) (br 0 16)));
        ev 2 (Obs.Read (acc o2 (p 2) (br 0 16)));
        ev 3 (Obs.Commit { txid = t2 });
      ]
  in
  let r = Ck.Checker.check h in
  Alcotest.(check bool) "run passes" true (Ck.Checker.ok r);
  Alcotest.(check int) "permitted dirty read" 1
    (List.length (Ck.Checker.permitted r))

(* {1 Explorer + shrinker self-test} *)

let test_broken_matrix_caught () =
  M.test_break_shared_exclusive := true;
  Fun.protect ~finally:(fun () -> M.test_break_shared_exclusive := false)
  @@ fun () ->
  let module E = Ck.Explore in
  let r = E.sweep ~seeds:(E.seeds ~n:10 ~from:0) () in
  match r.E.failures with
  | [] -> Alcotest.fail "injected Figure-1 bug not caught"
  | f :: _ ->
    let small = E.shrink_failure E.default_config f in
    Alcotest.(check bool) "shrunk to <= 3 transactions" true
      (List.length small.Ck.Workload.txns <= 3);
    let hist, _ = Ck.Workload.run ~seed:f.E.f_seed small in
    Alcotest.(check bool) "shrunk reproducer still fails" false
      (Ck.Checker.ok (Ck.Checker.check hist))

let suite =
  [
    ( "check.recorder",
      [ Alcotest.test_case "captures kernel events" `Quick test_recorder_attach ] );
    ( "check.checker",
      [
        Alcotest.test_case "serializable sweep passes" `Quick test_serializable_sweep;
        Alcotest.test_case "crash-injected sweep passes" `Quick test_crashy_sweep;
        Alcotest.test_case "replicated faulty sweep passes" `Quick
          test_replicated_sweep;
        Alcotest.test_case "dirty read detected" `Quick test_dirty_read_detected;
        Alcotest.test_case "conflict cycle detected" `Quick test_cycle_detected;
        Alcotest.test_case "non-transaction lock permitted (3.4)" `Quick
          test_non_transaction_lock_permitted;
        Alcotest.test_case "process writer permitted" `Quick
          test_process_writer_permitted;
      ] );
    ( "check.explorer",
      [
        Alcotest.test_case "broken lock matrix caught and shrunk" `Quick
          test_broken_matrix_caught;
      ] );
  ]
