(* Engine, Prng, Pqueue, Stats, Costs. *)

module E = Engine

let test_prng_determinism () =
  let a = Prng.create ~seed:7 and b = Prng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_bounds () =
  let p = Prng.create ~seed:99 in
  for _ = 1 to 10_000 do
    let v = Prng.int p 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of range: %d" v
  done;
  for _ = 1 to 1000 do
    let v = Prng.int_in p ~lo:5 ~hi:9 in
    if v < 5 || v > 9 then Alcotest.failf "int_in out of range: %d" v
  done

let test_prng_split () =
  let p = Prng.create ~seed:1 in
  let q = Prng.split p in
  Alcotest.(check bool) "independent" true (Prng.bits64 p <> Prng.bits64 q)

let test_pqueue_order () =
  let q = Pqueue.create () in
  Pqueue.push q ~time:5 ~seq:1 "e";
  Pqueue.push q ~time:1 ~seq:2 "a";
  Pqueue.push q ~time:1 ~seq:3 "b";
  Pqueue.push q ~time:3 ~seq:4 "c";
  let order = ref [] in
  let rec drain () =
    match Pqueue.pop q with
    | Some (_, _, v) ->
      order := v :: !order;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list string)) "time then seq" [ "a"; "b"; "c"; "e" ]
    (List.rev !order)

let prop_pqueue_sorted =
  QCheck.Test.make ~name:"pqueue pops sorted" ~count:300
    QCheck.(list (pair (int_bound 1000) (int_bound 1000)))
    (fun items ->
      let q = Pqueue.create () in
      List.iteri (fun i (t, _) -> Pqueue.push q ~time:t ~seq:i ()) items;
      let rec drain last =
        match Pqueue.pop q with
        | None -> true
        | Some (t, _, ()) -> t >= last && drain t
      in
      drain min_int)

(* 10k interleaved random pushes and pops drain in strict (time, seq)
   order — the tie-break on seq matters, not just the time key. *)
let test_pqueue_interleaved_10k () =
  let prng = Prng.create ~seed:99 in
  let q = Pqueue.create () in
  let popped = ref [] in
  let seq = ref 0 in
  for _ = 1 to 10_000 do
    if Prng.int prng 3 = 0 then (
      match Pqueue.pop q with
      | Some (t, s, ()) -> popped := (t, s) :: !popped
      | None -> ())
    else (
      Pqueue.push q ~time:(Prng.int prng 500) ~seq:!seq ();
      incr seq)
  done;
  let rec drain () =
    match Pqueue.pop q with
    | Some (t, s, ()) ->
      popped := (t, s) :: !popped;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check int) "nothing lost" !seq (List.length !popped);
  (* Each pop batch (between pushes) is locally sorted; the global drain
     at the end must be fully sorted. Check the tail that the final drain
     produced: it is the longest strictly-(time,seq)-sorted prefix of the
     reversed pop log and must cover everything still queued. *)
  let sorted_pairs l =
    let rec go = function
      | (t1, s1) :: ((t2, s2) :: _ as rest) ->
        (t1 < t2 || (t1 = t2 && s1 < s2)) && go rest
      | _ -> true
    in
    go l
  in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (_, s) ->
      Alcotest.(check bool) "no duplicate seq" false (Hashtbl.mem seen s);
      Hashtbl.add seen s ())
    !popped;
  (* The final drain alone is a fully sorted run. *)
  let final_run =
    let rec take acc = function
      | x :: rest when acc = [] || sorted_pairs [ x; List.hd acc ] ->
        take (x :: acc) rest
      | _ -> acc
    in
    take [] !popped
  in
  Alcotest.(check bool) "final drain sorted" true (sorted_pairs final_run)

(* Regression: push into a queue that has grown, fully drained, then
   receives a fresh element. The growth path uses the pushed value as the
   array filler; a stale-slot read here once produced garbage. *)
let test_pqueue_push_after_drain () =
  let q = Pqueue.create () in
  for i = 0 to 63 do
    Pqueue.push q ~time:i ~seq:i (string_of_int i)
  done;
  while Pqueue.pop q <> None do
    ()
  done;
  Alcotest.(check bool) "empty after drain" true (Pqueue.is_empty q);
  Pqueue.push q ~time:7 ~seq:0 "fresh";
  Alcotest.(check int) "length 1" 1 (Pqueue.length q);
  (match Pqueue.pop q with
  | Some (7, 0, "fresh") -> ()
  | Some (t, s, v) -> Alcotest.failf "got (%d,%d,%s)" t s v
  | None -> Alcotest.fail "queue empty");
  (* And immediately grow again from the drained state. *)
  for i = 0 to 127 do
    Pqueue.push q ~time:(127 - i) ~seq:i "r"
  done;
  let rec count last n =
    match Pqueue.pop q with
    | Some (t, _, _) ->
      Alcotest.(check bool) "regrow ordered" true (t >= last);
      count t (n + 1)
    | None -> n
  in
  Alcotest.(check int) "regrow drains all" 128 (count min_int 0)

(* pop_into reuses one slot and agrees with min_time/peek. *)
let test_pqueue_pop_into () =
  let q = Pqueue.create () in
  let slot = Pqueue.make_slot "-" in
  Pqueue.push q ~time:30 ~seq:2 "late";
  Pqueue.push q ~time:10 ~seq:1 "early";
  Alcotest.(check int) "min_time" 10 (Pqueue.min_time q);
  Alcotest.(check bool) "pop_into hit" true (Pqueue.pop_into q slot);
  Alcotest.(check string) "value" "early" slot.Pqueue.s_value;
  Alcotest.(check int) "time" 10 slot.Pqueue.s_time;
  Alcotest.(check int) "seq" 1 slot.Pqueue.s_seq;
  Alcotest.(check bool) "second hit" true (Pqueue.pop_into q slot);
  Alcotest.(check string) "second value" "late" slot.Pqueue.s_value;
  Alcotest.(check bool) "miss on empty" false (Pqueue.pop_into q slot);
  Alcotest.(check string) "slot untouched on miss" "late" slot.Pqueue.s_value

let test_sleep_ordering () =
  let order = ref [] in
  let e =
    E.run_fn (fun t ->
        ignore
          (E.spawn t (fun () ->
               E.sleep 10;
               order := "b" :: !order));
        ignore
          (E.spawn t (fun () ->
               E.sleep 5;
               order := "a" :: !order)))
  in
  Alcotest.(check (list string)) "virtual order" [ "a"; "b" ] (List.rev !order);
  Alcotest.(check int) "clock" 10 (E.now e)

let test_ivar () =
  let got = ref 0 in
  ignore
    (E.run_fn (fun t ->
         let iv = E.Ivar.create () in
         ignore
           (E.spawn t (fun () ->
                let v = E.await iv in
                got := v));
         ignore
           (E.spawn t (fun () ->
                E.sleep 100;
                E.fill t iv 42))));
  Alcotest.(check int) "ivar value" 42 !got

let test_ivar_immediate () =
  let got = ref 0 in
  ignore
    (E.run_fn (fun t ->
         let iv = E.Ivar.create () in
         E.fill t iv 7;
         ignore (E.spawn t (fun () -> got := E.await iv))));
  Alcotest.(check int) "full ivar returns immediately" 7 !got

let test_await_timeout () =
  let r1 = ref None and r2 = ref None and tend = ref 0 in
  let e =
    E.run_fn (fun t ->
        let never = E.Ivar.create () in
        let soon = E.Ivar.create () in
        ignore (E.spawn t (fun () -> r1 := E.await_timeout never ~timeout:50));
        ignore (E.spawn t (fun () -> r2 := E.await_timeout soon ~timeout:5000));
        ignore
          (E.spawn t (fun () ->
               E.sleep 20;
               E.fill t soon "yes")))
  in
  tend := E.now e;
  Alcotest.(check (option unit)) "timed out" None !r1;
  Alcotest.(check (option string)) "delivered" (Some "yes") !r2;
  (* The satisfied await's 5000us timer must not stretch virtual time. *)
  Alcotest.(check int) "clock stops at 50" 50 !tend

let test_kill () =
  let reached = ref false in
  ignore
    (E.run_fn (fun t ->
         let f =
           E.spawn ~site:3 t (fun () ->
               E.sleep 100;
               reached := true)
         in
         ignore f;
         ignore (E.spawn t (fun () -> E.kill_site t 3))));
  Alcotest.(check bool) "killed before resume" false !reached

let test_kill_unwinds () =
  let cleaned = ref false in
  ignore
    (E.run_fn (fun t ->
         let f =
           E.spawn ~site:1 t (fun () ->
               Fun.protect
                 (fun () -> E.sleep 1000)
                 ~finally:(fun () -> cleaned := true))
         in
         ignore f;
         ignore
           (E.spawn t (fun () ->
                E.sleep 10;
                E.kill_site t 1))));
  Alcotest.(check bool) "finally ran on kill" true !cleaned

let test_exception_propagates () =
  Alcotest.check_raises "fiber exception reaches run" (Failure "boom") (fun () ->
      ignore (E.run_fn (fun t -> ignore (E.spawn t (fun () -> failwith "boom")))))

let test_consume_charges () =
  let e =
    E.run_fn (fun t -> ignore (E.spawn t (fun () -> E.consume t ~instr:750)))
  in
  (* 750 instructions at 2 us each = 1.5 ms — the paper's lock cost. *)
  Alcotest.(check int) "1.5ms" 1500 (E.now e);
  Alcotest.(check int) "counter" 750 (Stats.get (E.stats e) "cpu.instr")

let test_run_until () =
  let t = E.create () in
  ignore (E.spawn t (fun () -> E.sleep 1000));
  E.run ~until:300 t;
  Alcotest.(check int) "paused at until" 300 (E.now t);
  E.run t;
  Alcotest.(check int) "completes" 1000 (E.now t)

let test_stats_summary () =
  let s = Stats.create () in
  List.iter (Stats.sample s "lat") [ 5; 1; 9; 3; 7 ];
  match Stats.summary s "lat" with
  | None -> Alcotest.fail "no summary"
  | Some sum ->
    Alcotest.(check int) "n" 5 sum.Stats.Summary.n;
    Alcotest.(check int) "min" 1 sum.Stats.Summary.min;
    Alcotest.(check int) "max" 9 sum.Stats.Summary.max;
    Alcotest.(check int) "p50" 5 sum.Stats.Summary.p50

let test_costs () =
  let c = Costs.default in
  Alcotest.(check int) "750 instr = 1.5ms" 1500 (Costs.instr_us c 750);
  Alcotest.(check bool) "disk io >= latency" true
    (Costs.disk_io_us c ~bytes:1024 >= c.Costs.disk_latency_us);
  Alcotest.(check bool) "copy scales" true
    (Costs.copy_instr c ~bytes:4096 > Costs.copy_instr c ~bytes:1024)

let suite =
  [
    ( "sim.prng",
      [
        Alcotest.test_case "determinism" `Quick test_prng_determinism;
        Alcotest.test_case "bounds" `Quick test_prng_bounds;
        Alcotest.test_case "split" `Quick test_prng_split;
      ] );
    ( "sim.pqueue",
      [
        Alcotest.test_case "order" `Quick test_pqueue_order;
        QCheck_alcotest.to_alcotest prop_pqueue_sorted;
        Alcotest.test_case "interleaved 10k" `Quick test_pqueue_interleaved_10k;
        Alcotest.test_case "push after drain to empty" `Quick
          test_pqueue_push_after_drain;
        Alcotest.test_case "pop_into + min_time" `Quick test_pqueue_pop_into;
      ] );
    ( "sim.engine",
      [
        Alcotest.test_case "sleep ordering" `Quick test_sleep_ordering;
        Alcotest.test_case "ivar" `Quick test_ivar;
        Alcotest.test_case "ivar immediate" `Quick test_ivar_immediate;
        Alcotest.test_case "await timeout" `Quick test_await_timeout;
        Alcotest.test_case "kill" `Quick test_kill;
        Alcotest.test_case "kill unwinds" `Quick test_kill_unwinds;
        Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
        Alcotest.test_case "consume" `Quick test_consume_charges;
        Alcotest.test_case "run until" `Quick test_run_until;
      ] );
    ( "sim.stats",
      [
        Alcotest.test_case "summary" `Quick test_stats_summary;
        Alcotest.test_case "costs" `Quick test_costs;
      ] );
  ]

(* Appended: trace ring. *)

let test_trace_ring () =
  let t = Trace.create ~capacity:4 () in
  Alcotest.(check (list string)) "disabled records nothing"
    []
    (List.map (fun e -> e.Trace.text) (Trace.events t));
  Trace.emit t ~at:1 ~cat:Trace.User ~site:0 "dropped";
  Trace.enable t;
  for i = 1 to 6 do
    Trace.emit t ~at:i ~cat:Trace.User ~site:0 (Printf.sprintf "e%d" i)
  done;
  Alcotest.(check (list string)) "keeps most recent, oldest first"
    [ "e3"; "e4"; "e5"; "e6" ]
    (List.map (fun e -> e.Trace.text) (Trace.events t));
  Trace.clear t;
  Alcotest.(check int) "cleared" 0 (List.length (Trace.events t))

let test_trace_category_filter () =
  let t = Trace.create () in
  Trace.enable ~categories:[ Trace.Lock ] t;
  Trace.emit t ~at:1 ~cat:Trace.Lock ~site:0 "kept";
  Trace.emit t ~at:2 ~cat:Trace.Net ~site:0 "filtered";
  Alcotest.(check (list string)) "filtered" [ "kept" ]
    (List.map (fun e -> e.Trace.text) (Trace.events t));
  Alcotest.(check bool) "enabled query" true (Trace.enabled t Trace.Lock);
  Alcotest.(check bool) "disabled query" false (Trace.enabled t Trace.Net)

let test_trace_from_kernel () =
  let module L = Locus_core.Locus in
  let module Api = L.Api in
  let sim = L.make ~n_sites:2 () in
  Trace.enable (Engine.trace sim.L.engine);
  ignore
    (Api.spawn_process sim.L.cluster ~site:0 (fun env ->
         let c = Api.creat env "/t" ~vid:1 in
         Api.begin_trans env;
         Api.write_string env c "x";
         ignore (Api.end_trans env)));
  L.run sim;
  let events = Trace.events (Engine.trace sim.L.engine) in
  let has cat needle =
    List.exists
      (fun e ->
        e.Trace.cat = cat
        &&
        let rec find i =
          i + String.length needle <= String.length e.Trace.text
          && (String.sub e.Trace.text i (String.length needle) = needle || find (i + 1))
        in
        find 0)
      events
  in
  Alcotest.(check bool) "2pc begin traced" true (has Trace.Txn "2pc begin");
  Alcotest.(check bool) "decide traced" true (has Trace.Txn "2pc decide");
  Alcotest.(check bool) "lock grant traced" true (has Trace.Lock "grant");
  Alcotest.(check bool) "messages traced" true (has Trace.Net "prepare")

let test_emitf_lazy () =
  let t = Trace.create () in
  Trace.enable ~categories:[ Trace.Lock ] t;
  let forced = ref 0 in
  let spy ppf =
    incr forced;
    Fmt.string ppf "x"
  in
  Trace.emitf t ~at:1 ~cat:Trace.Net ~site:0 "spy %t" spy;
  Alcotest.(check int) "disabled category: args never rendered" 0 !forced;
  Trace.emitf t ~at:2 ~cat:Trace.Lock ~site:0 "spy %t" spy;
  Alcotest.(check int) "enabled category renders" 1 !forced;
  Alcotest.(check int) "one event recorded" 1 (List.length (Trace.events t))

(* Appended: nearest-rank quantiles, bounded histograms, ring drop count. *)

let test_stats_quantile_nearest_rank () =
  (* Regression: nearest-rank p50 of [1; 2] is the 1st order statistic (1),
     not the 2nd — rank = ceil(50 * 2 / 100) = 1. *)
  let s = Stats.create () in
  List.iter (Stats.sample s "two") [ 2; 1 ];
  (match Stats.summary s "two" with
  | None -> Alcotest.fail "no summary"
  | Some sum ->
    Alcotest.(check int) "p50 of [1;2]" 1 sum.Stats.Summary.p50;
    Alcotest.(check int) "p99 of [1;2]" 2 sum.Stats.Summary.p99);
  let s2 = Stats.create () in
  for v = 100 downto 1 do
    Stats.sample s2 "hundred" v
  done;
  (match Stats.summary s2 "hundred" with
  | None -> Alcotest.fail "no summary"
  | Some sum ->
    Alcotest.(check int) "p50 of 1..100" 50 sum.Stats.Summary.p50;
    Alcotest.(check int) "p95 of 1..100" 95 sum.Stats.Summary.p95;
    Alcotest.(check int) "p99 of 1..100" 99 sum.Stats.Summary.p99;
    (* p999 of 100 samples: rank ceil(99.9) = 100 -> the maximum. *)
    Alcotest.(check int) "p999 of 1..100" 100 sum.Stats.Summary.p999);
  (* p999 separates from p99 once the population is large enough: of
     1..1000, p99 is the 990th order statistic but p999 is the 999th. *)
  let s3 = Stats.create () in
  for v = 1 to 1000 do
    Stats.sample s3 "thousand" v
  done;
  match Stats.summary s3 "thousand" with
  | None -> Alcotest.fail "no summary"
  | Some sum ->
    Alcotest.(check int) "p99 of 1..1000" 990 sum.Stats.Summary.p99;
    Alcotest.(check int) "p999 of 1..1000" 999 sum.Stats.Summary.p999

(* The histogram-side per-mille quantile and the snapshot/diff algebra the
   health sampler's interval merges are built on. *)

let test_hist_permille_and_snapshots () =
  let h = Stats.Hist.create () in
  for v = 1 to 1000 do
    Stats.Hist.add h v
  done;
  Alcotest.(check bool) "p999 >= p99 (log2 bucket resolution)" true
    (Stats.Hist.quantile_permille h 999 >= Stats.Hist.quantile_permille h 990);
  Alcotest.(check int) "p1000 clamps to the observed max" 1000
    (Stats.Hist.quantile_permille h 1000);
  (* Interval merge: a snapshot diff sees only the recordings between the
     two snapshots, never the lifetime population. *)
  let before = Stats.Hist.snapshot h in
  Stats.Hist.add h 5;
  Stats.Hist.add h 6;
  Stats.Hist.add h 7;
  let window = Stats.Hist.diff (Stats.Hist.snapshot h) before in
  Alcotest.(check int) "window count" 3 (Stats.Hist.snap_count window);
  Alcotest.(check int) "window total" 18 (Stats.Hist.snap_total window);
  Alcotest.(check (float 0.001)) "window mean" 6.0 (Stats.Hist.snap_mean window);
  Alcotest.(check bool) "window p99 reflects the interval, not the 1000s"
    true
    (Stats.Hist.snap_quantile window 99 <= 7);
  (* An empty interval is all zeroes. *)
  let empty = Stats.Hist.diff (Stats.Hist.snapshot h) (Stats.Hist.snapshot h) in
  Alcotest.(check int) "empty interval count" 0 (Stats.Hist.snap_count empty);
  Alcotest.(check int) "empty interval p99" 0 (Stats.Hist.snap_quantile empty 99)

let test_hist_buckets () =
  let h = Stats.Hist.create () in
  List.iter (Stats.Hist.add h) [ 0; 1; 2; 3; 4; 8 ];
  Alcotest.(check int) "count" 6 (Stats.Hist.count h);
  Alcotest.(check int) "total" 18 (Stats.Hist.total h);
  Alcotest.(check int) "min" 0 (Stats.Hist.min_value h);
  Alcotest.(check int) "max" 8 (Stats.Hist.max_value h);
  Alcotest.(check (list (triple int int int)))
    "log2 bucket boundaries"
    [ (0, 1, 1); (1, 2, 1); (2, 4, 2); (4, 8, 1); (8, 16, 1) ]
    (Stats.Hist.buckets h);
  (* rank 3 of 6 lands in the [2,4) bucket; upper inclusive edge is 3 *)
  Alcotest.(check int) "p50" 3 (Stats.Hist.quantile h 50);
  (* top quantile clamps to the observed maximum, not the bucket edge 15 *)
  Alcotest.(check int) "p100 clamps to max" 8 (Stats.Hist.quantile h 100)

let test_hist_named () =
  let s = Stats.create () in
  Alcotest.(check bool) "absent" true (Stats.histogram s "lat" = None);
  Stats.hist s "lat" 7;
  Stats.hist s "lat" 9;
  match Stats.histogram s "lat" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
    Alcotest.(check int) "count" 2 (Stats.Hist.count h);
    Alcotest.(check int) "one name" 1 (List.length (Stats.histograms s))

let test_trace_dropped () =
  let t = Trace.create ~capacity:4 () in
  Trace.enable t;
  Alcotest.(check int) "fresh ring drops nothing" 0 (Trace.dropped t);
  for i = 1 to 6 do
    Trace.emit t ~at:i ~cat:Trace.User ~site:0 (Printf.sprintf "e%d" i)
  done;
  Alcotest.(check int) "still holds capacity" 4 (List.length (Trace.events t));
  Alcotest.(check int) "two oldest dropped" 2 (Trace.dropped t);
  Trace.clear t;
  Alcotest.(check int) "clear resets drop count" 0 (Trace.dropped t)

let suite =
  suite
  @ [
      ( "sim.trace",
        [
          Alcotest.test_case "ring" `Quick test_trace_ring;
          Alcotest.test_case "category filter" `Quick test_trace_category_filter;
          Alcotest.test_case "emitf lazy when disabled" `Quick test_emitf_lazy;
          Alcotest.test_case "kernel integration" `Quick test_trace_from_kernel;
          Alcotest.test_case "dropped counter" `Quick test_trace_dropped;
        ] );
      ( "sim.stats.quantiles",
        [
          Alcotest.test_case "nearest rank" `Quick test_stats_quantile_nearest_rank;
          Alcotest.test_case "hist buckets" `Quick test_hist_buckets;
          Alcotest.test_case "hist permille + snapshots" `Quick
            test_hist_permille_and_snapshots;
          Alcotest.test_case "named hists" `Quick test_hist_named;
        ] );
    ]
