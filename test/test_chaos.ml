(* locus_chaos: the exactly-once reply cache. These drive the wire entry
   point directly with hand-built rid-tagged envelopes, playing a client
   whose retries produce duplicate wire copies — the server must execute
   once and answer every copy. *)

module L = Locus_core.Locus
module K = L.Kernel
module Msg = L.Msg
module T = Locus_net.Transport

let stats sim = Stats.get (L.Engine.stats sim.L.engine)

(* A rid claiming to come from site 0's current incarnation. *)
let rid ~seq ~ack = { Msg.r_site = 0; r_inc = 1; r_seq = seq; r_ack = ack }

let fid_of = function
  | Some (Ok (Msg.R_fid f)) -> f
  | _ -> Alcotest.fail "expected R_fid"

let test_duplicate_answered_from_cache () =
  (* Two wire copies of one logical request: the handler (file creation —
     visibly non-idempotent) runs once; the second copy is answered with
     the cached reply, bit-for-bit. *)
  let sim = L.make ~n_sites:2 () in
  let net = K.transport sim.L.cluster in
  let r1 = ref None and r2 = ref None in
  let env = Msg.envelope ~rid:(rid ~seq:1 ~ack:0) (Msg.Create_file { vid = 1 }) in
  ignore
    (L.Engine.spawn sim.L.engine (fun () ->
         r1 := Some (T.rpc net ~src:0 ~dst:1 env);
         r2 := Some (T.rpc net ~src:0 ~dst:1 env)));
  L.run sim;
  let f1 = fid_of !r1 and f2 = fid_of !r2 in
  Alcotest.(check bool) "same fid, not a second file" true (File_id.equal f1 f2);
  Alcotest.(check int) "one cache hit" 1 (stats sim "net.dedup_hits");
  Alcotest.(check int) "one completed entry cached" 1
    (K.dedup_cached (K.kernel sim.L.cluster 1))

let test_watermark_evicts_and_fences () =
  (* The client's ack watermark rides every rid: seq 2 carrying ack=1
     evicts seq 1's cache entry, and a late wire copy of seq 1 is fenced
     as stale instead of re-executing the (non-idempotent) handler. *)
  let sim = L.make ~n_sites:2 () in
  let net = K.transport sim.L.cluster in
  let late = ref None in
  let env1 = Msg.envelope ~rid:(rid ~seq:1 ~ack:0) (Msg.Create_file { vid = 1 }) in
  let env2 = Msg.envelope ~rid:(rid ~seq:2 ~ack:1) (Msg.Create_file { vid = 1 }) in
  ignore
    (L.Engine.spawn sim.L.engine (fun () ->
         ignore (T.rpc net ~src:0 ~dst:1 env1);
         Alcotest.(check int) "seq 1 cached" 1
           (K.dedup_cached (K.kernel sim.L.cluster 1));
         ignore (T.rpc net ~src:0 ~dst:1 env2);
         Alcotest.(check int) "seq 1 evicted by the ack watermark" 1
           (K.dedup_cached (K.kernel sim.L.cluster 1));
         late := Some (T.rpc net ~src:0 ~dst:1 env1)));
  L.run sim;
  (match !late with
  | Some (Ok (Msg.R_err _)) -> ()
  | _ -> Alcotest.fail "expected the late copy fenced with R_err");
  Alcotest.(check int) "fence counted" 1 (stats sim "net.dedup_stale")

let test_client_crash_clears_cache () =
  (* A crash announcement for the client site purges its reply-cache
     entries and watermark everywhere: the next incarnation is a fresh id
     space, so nothing of the old one can be needed. *)
  let sim = L.make ~n_sites:3 () in
  let cl = sim.L.cluster in
  let net = K.transport cl in
  ignore
    (L.Engine.spawn sim.L.engine (fun () ->
         ignore
           (T.rpc net ~src:2 ~dst:1
              (Msg.envelope ~rid:(rid ~seq:1 ~ack:0) (Msg.Create_file { vid = 1 })))));
  L.run sim;
  Alcotest.(check int) "entry cached" 1 (K.dedup_cached (K.kernel cl 1));
  K.crash_site cl 0;
  Alcotest.(check int) "crash announcement purged it" 0
    (K.dedup_cached (K.kernel cl 1))

let suite =
  [
    ( "chaos.dedup",
      [
        Alcotest.test_case "duplicate answered from cache" `Quick
          test_duplicate_answered_from_cache;
        Alcotest.test_case "ack watermark evicts and fences" `Quick
          test_watermark_evicts_and_fences;
        Alcotest.test_case "client crash clears cache" `Quick
          test_client_crash_clears_cache;
      ] );
  ]
