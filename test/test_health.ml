(* locus_health: the live health plane. Windowed series rings, sampler
   delta/gauge/interval-p99 semantics, edge-triggered watchdog rules, the
   per-site health RPC with its unreachable-site fan-out, the in-doubt
   alarm on a stranded 2PC coordinator kill — and both checker oracles
   (no false alarms on clean seeds, alarm liveness on kill seeds), the
   latter proven live by the --break-health inversion. *)

module L = Locus_core.Locus
module Api = L.Api
module K = L.Kernel
module H = Locus_health
module W = Locus_check.Workload
module Ex = Locus_check.Explore
module Obs = Locus_core.Obs

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

(* {1 Series: the bounded ring} *)

let test_series_ring () =
  let s = H.Series.create ~keep:4 "commits" in
  Alcotest.(check string) "name" "commits" (H.Series.name s);
  Alcotest.(check int) "keep" 4 (H.Series.keep s);
  Alcotest.(check (option int)) "empty last" None
    (Option.map (fun p -> p.H.Series.p_value) (H.Series.last s));
  for i = 1 to 6 do
    H.Series.push s ~start_us:((i - 1) * 100) ~end_us:(i * 100) i
  done;
  (* Six pushed, four retained: the two oldest windows fell off. *)
  Alcotest.(check int) "pushed counts lifetime" 6 (H.Series.pushed s);
  Alcotest.(check (list int)) "ring keeps the newest 4, oldest first"
    [ 3; 4; 5; 6 ]
    (List.map (fun p -> p.H.Series.p_value) (H.Series.points s));
  Alcotest.(check (option (pair int int))) "last = newest window" (Some (500, 6))
    (Option.map (fun p -> (p.H.Series.p_start_us, p.H.Series.p_value))
       (H.Series.last s));
  Alcotest.(check int) "peak over retained" 6 (H.Series.peak s);
  Alcotest.(check int) "total over retained" 18 (H.Series.total s);
  (* One glyph per retained point (UTF-8, 3 bytes each above zero). *)
  Alcotest.(check int) "spark length" 12 (String.length (H.Series.spark s))

(* {1 Sampler: counter deltas, gauge levels, interval p99} *)

let test_sampler_sources () =
  let sp = H.Sampler.create ~keep:8 ~window_us:100 () in
  let counter = ref 10 and gauge = ref 0 in
  let hist = Stats.Hist.create () in
  H.Sampler.register sp "ctr" (H.Sampler.Counter (fun () -> !counter));
  H.Sampler.register sp "lvl" (H.Sampler.Gauge (fun () -> !gauge));
  H.Sampler.register sp "p99"
    (H.Sampler.Hist_p99 (fun () -> Stats.Hist.snapshot hist));
  Alcotest.check_raises "duplicate registration rejected"
    (Invalid_argument "Sampler.register: duplicate series ctr") (fun () ->
      H.Sampler.register sp "ctr" (H.Sampler.Gauge (fun () -> 0)));
  (* Window 1: counter 10 -> 25 (delta 15, baseline primed at register),
     gauge level 7, histogram saw {1000}. *)
  counter := 25;
  gauge := 7;
  Stats.Hist.add hist 1000;
  H.Sampler.tick sp ~now_us:100;
  (* Window 2: counter unchanged (delta 0), gauge dropped to 3, histogram
     saw only {50; 60} in THIS window — the interval p99 must ignore the
     lifetime 1000 from window 1. *)
  gauge := 3;
  Stats.Hist.add hist 50;
  Stats.Hist.add hist 60;
  H.Sampler.tick sp ~now_us:200;
  Alcotest.(check int) "two windows closed" 2 (H.Sampler.windows sp);
  let values name =
    match H.Sampler.find sp name with
    | None -> Alcotest.fail ("missing series " ^ name)
    | Some s -> List.map (fun p -> p.H.Series.p_value) (H.Series.points s)
  in
  Alcotest.(check (list int)) "counter deltas per window" [ 15; 0 ]
    (values "ctr");
  Alcotest.(check (list int)) "gauge levels per window" [ 7; 3 ] (values "lvl");
  (match values "p99" with
  | [ w1; w2 ] ->
      Alcotest.(check bool) "window-1 p99 from its own recordings" true
        (w1 >= 1000);
      Alcotest.(check bool) "window-2 p99 excludes window 1's 1000" true
        (w2 <= 64 && w2 >= 50)
  | vs -> Alcotest.failf "expected 2 p99 points, got %d" (List.length vs));
  Alcotest.(check (option int)) "last_value reads the newest window"
    (Some 3)
    (H.Sampler.last_value sp "lvl");
  (* Series listing is name-sorted for stable operator output. *)
  Alcotest.(check (list string)) "series sorted" [ "ctr"; "lvl"; "p99" ]
    (List.map fst (H.Sampler.series sp))

(* {1 Rules: thresholds, edge triggering, the break inversion} *)

let in_doubt_input ~now age =
  {
    (H.Rules.zero_input ~site:1 ~now_us:now) with
    H.Rules.in_in_doubt = 1;
    in_in_doubt_max_age_us = age;
  }

let test_rules_edge_trigger () =
  let r = H.Rules.create () in
  let th = H.Rules.thresholds r in
  (* Below threshold: silent. *)
  Alcotest.(check int) "young doubt is fine" 0
    (List.length
       (H.Rules.evaluate r
          (in_doubt_input ~now:100 (th.H.Rules.in_doubt_age_us / 2))));
  (* Crossing: exactly one alarm, with the stable rule id. *)
  (match H.Rules.evaluate r (in_doubt_input ~now:200 (th.H.Rules.in_doubt_age_us + 1)) with
  | [ a ] ->
      Alcotest.(check string) "rule id" "in_doubt_age" a.H.Rules.al_name;
      Alcotest.(check int) "raising site" 1 a.H.Rules.al_site;
      Alcotest.(check int) "stamped with window close" 200 a.H.Rules.al_at_us
  | l -> Alcotest.failf "expected 1 alarm, got %d" (List.length l));
  Alcotest.(check (list string)) "condition latched" [ "in_doubt_age" ]
    (H.Rules.active r);
  (* Still firing next window: edge-triggered, no repeat. *)
  Alcotest.(check int) "no alarm spam while latched" 0
    (List.length
       (H.Rules.evaluate r
          (in_doubt_input ~now:300 (th.H.Rules.in_doubt_age_us + 100))));
  (* Cleared: re-armed; crossing again raises again. *)
  Alcotest.(check int) "clear window raises nothing" 0
    (List.length (H.Rules.evaluate r (H.Rules.zero_input ~site:1 ~now_us:400)));
  Alcotest.(check (list string)) "condition unlatched" [] (H.Rules.active r);
  Alcotest.(check int) "re-armed after clearing" 1
    (List.length
       (H.Rules.evaluate r
          (in_doubt_input ~now:500 (th.H.Rules.in_doubt_age_us + 1))))

let test_rules_degraded_streak_and_break () =
  let r = H.Rules.create () in
  let degraded now =
    { (H.Rules.zero_input ~site:0 ~now_us:now) with H.Rules.in_degraded_copies = 1 }
  in
  (* replica_degraded needs [degraded_windows] CONSECUTIVE bad windows —
     a reconciliation blip of two is not an incident. *)
  Alcotest.(check int) "window 1: streak too short" 0
    (List.length (H.Rules.evaluate r (degraded 100)));
  Alcotest.(check int) "window 2: streak too short" 0
    (List.length (H.Rules.evaluate r (degraded 200)));
  Alcotest.(check int) "clean window resets the streak" 0
    (List.length (H.Rules.evaluate r (H.Rules.zero_input ~site:0 ~now_us:300)));
  Alcotest.(check int) "restart window 1" 0
    (List.length (H.Rules.evaluate r (degraded 400)));
  Alcotest.(check int) "restart window 2" 0
    (List.length (H.Rules.evaluate r (degraded 500)));
  (match H.Rules.evaluate r (degraded 600) with
  | [ a ] ->
      Alcotest.(check string) "third consecutive window alarms"
        "replica_degraded" a.H.Rules.al_name
  | l -> Alcotest.failf "expected 1 alarm, got %d" (List.length l));
  (* The CI inversion: with the watchdog muted nothing ever fires. *)
  let r2 = H.Rules.create () in
  H.Flags.break_health := true;
  Fun.protect ~finally:(fun () -> H.Flags.break_health := false) @@ fun () ->
  for w = 1 to 5 do
    Alcotest.(check int) "break-health mutes every rule" 0
      (List.length
         (H.Rules.evaluate r2 (in_doubt_input ~now:(w * 100) 10_000_000)))
  done

(* {1 The health RPC and the monitor fan-out} *)

let test_health_rpc_and_poll () =
  (* Health plane OFF (default config): the RPC must still answer, and a
     crashed site must read as unreachable, not hang the monitor. *)
  let sim = L.make ~n_sites:3 () in
  let cl = sim.L.cluster in
  ignore
    (Api.spawn_process cl ~site:0 ~name:"writer" (fun env ->
         let c = Api.creat env "/h/file" ~vid:1 in
         Api.begin_trans env;
         Api.pwrite env c ~pos:0 (Bytes.of_string "committed bytes");
         ignore (Api.end_trans env);
         Api.close env c));
  L.run sim;
  Alcotest.(check int) "plane unarmed: no windows" 0 (K.health_windows cl);
  Alcotest.(check int) "plane unarmed: no series" 0
    (List.length (K.health_series cl));
  let r = K.health_report (K.kernel cl 1) in
  Alcotest.(check int) "report names its site" 1 r.H.Report.hs_site;
  Alcotest.(check int) "nothing in doubt" 0 r.H.Report.hs_in_doubt;
  Alcotest.(check bool) "the committed write hit the site-1 volume WAL" true
    (r.H.Report.hs_wal_bytes > 0);
  Alcotest.(check int) "reply cache empty on a reliable network" 0
    r.H.Report.hs_dedup_entries;
  Alcotest.(check int) "capacity advertised" K.reply_cache_capacity
    r.H.Report.hs_dedup_capacity;
  (* Poll everyone from site 0 with site 2 dead. *)
  K.crash_site cl 2;
  let polls = ref [] in
  ignore
    (Engine.spawn ~site:0 sim.L.engine (fun () ->
         polls := K.health_poll_all cl ~src:0));
  L.run sim;
  (match !polls with
  | [ H.Report.Healthy h0; H.Report.Healthy h1; H.Report.Unreachable { u_site } ] ->
      Alcotest.(check int) "site 0 local" 0 h0.H.Report.hs_site;
      Alcotest.(check int) "site 1 over RPC" 1 h1.H.Report.hs_site;
      Alcotest.(check int) "dead site reported unreachable" 2 u_site
  | ps -> Alcotest.failf "unexpected poll shape (%d entries)" (List.length ps));
  (* The JSON renderings CI jq-validates. *)
  let json = Fmt.str "%a" H.Report.pp_poll_json (List.nth !polls 1) in
  Alcotest.(check bool) "healthy site serializes reachable:true" true
    (contains ~affix:"\"reachable\": true" json);
  let json = Fmt.str "%a" H.Report.pp_poll_json (List.nth !polls 2) in
  Alcotest.(check bool) "unreachable site serializes reachable:false" true
    (contains ~affix:"\"reachable\": false" json)

(* {1 End-to-end: a stranded coordinator must raise the alarm} *)

let alarm_events hist =
  List.filter_map
    (fun (r : Obs.record) ->
      match r.Obs.ev with
      | Obs.Alarm { name; _ } -> Some (r.Obs.site, name, r.Obs.at)
      | _ -> None)
    (Locus_check.History.events hist)

let test_kill_coordinator_raises_in_doubt_alarm () =
  let window = 100_000 in
  let spec = W.gen ~seed:42 ~sites:3 () in
  let hist, sim =
    W.run
      ~fault:(W.Kill_coordinator { after_decides = 1 })
      ~commit:`Two_phase ~health:window ~seed:42 spec
  in
  let cl = sim.L.cluster in
  Alcotest.(check bool) "participants stranded in-doubt" true
    (W.blocked sim <> []);
  let alarms = alarm_events hist in
  Alcotest.(check bool) "watchdog raised in_doubt_age" true
    (List.exists (fun (_, n, _) -> n = "in_doubt_age") alarms);
  (* The alarm also lands in the cluster-side log and the counter. *)
  Alcotest.(check bool) "alarm in the health log" true
    (List.exists
       (fun (a : H.Rules.alarm) -> a.H.Rules.al_name = "in_doubt_age")
       (K.health_alarms cl));
  Alcotest.(check int) "health.alarm counter bumped" 1
    (Stats.get (L.Engine.stats sim.L.engine) "health.alarm.in_doubt_age");
  (* Alarm latency: the watchdog can only see the incident once the age
     crosses the threshold, and must say so within two window closes. *)
  let threshold =
    (K.config cl).K.Config.health_thresholds.H.Rules.in_doubt_age_us
  in
  let kill_at =
    (* The coordinator died at the first decide; every event it emitted
       precedes the crash, so the last one bounds the kill time. *)
    List.fold_left
      (fun acc (r : Obs.record) ->
        match r.Obs.ev with
        | Obs.Commit _ | Obs.Abort _ -> max acc r.Obs.at
        | _ -> acc)
      0
      (Locus_check.History.events hist)
  in
  let _, _, alarm_at =
    List.find (fun (_, n, _) -> n = "in_doubt_age") alarms
  in
  Alcotest.(check bool)
    (Printf.sprintf "alarm at %d us within 2 windows of crossing (kill <= %d us)"
       alarm_at kill_at)
    true
    (alarm_at <= kill_at + threshold + (2 * window));
  (* The sampler ran and built series. *)
  Alcotest.(check bool) "windows closed" true (K.health_windows cl > 0);
  Alcotest.(check bool) "in_doubt series exists" true
    (List.mem_assoc "in_doubt" (List.map (fun (n, s) -> (n, s)) (K.health_series cl)))

(* {1 The two sweep oracles and the inversion} *)

let health_cfg fault_every =
  { Ex.default_config with Ex.sites = 3; fault_every; health_window = 100_000 }

let test_sweep_clean_no_false_alarms () =
  let r = Ex.sweep ~config:(health_cfg None) ~seeds:(Ex.seeds ~n:25 ~from:40) () in
  Alcotest.(check int) "25 clean seeds checked" 25 r.Ex.checked;
  Alcotest.(check (list int)) "no failures (in particular no false alarms)" []
    (List.map (fun f -> f.Ex.f_seed) r.Ex.failures)

let test_sweep_kill_alarm_liveness () =
  (* Kill-coordinator seeds block under 2PC — the health lane excuses the
     blocking and instead demands the in_doubt_age alarm. *)
  let r =
    Ex.sweep ~config:(health_cfg (Some 3)) ~seeds:(Ex.seeds ~n:25 ~from:40) ()
  in
  Alcotest.(check (list int)) "every blocked seed alarmed" []
    (List.map (fun f -> f.Ex.f_seed) r.Ex.failures)

let test_break_health_fails_liveness_oracle () =
  H.Flags.break_health := true;
  Fun.protect ~finally:(fun () -> H.Flags.break_health := false) @@ fun () ->
  let r =
    Ex.sweep ~config:(health_cfg (Some 3)) ~seeds:(Ex.seeds ~n:25 ~from:40) ()
  in
  Alcotest.(check bool) "muted watchdog caught by the oracle" true
    (r.Ex.failures <> []);
  Alcotest.(check bool) "failure names the alarm-liveness oracle" true
    (List.exists
       (fun f ->
         List.exists
           (fun v -> contains ~affix:"alarm liveness" v)
           f.Ex.f_health)
       r.Ex.failures)

let suite =
  [
    ( "health",
      [
        Alcotest.test_case "series ring bound" `Quick test_series_ring;
        Alcotest.test_case "sampler counter/gauge/interval-p99" `Quick
          test_sampler_sources;
        Alcotest.test_case "rules edge-triggered" `Quick test_rules_edge_trigger;
        Alcotest.test_case "degraded streak + break-health mute" `Quick
          test_rules_degraded_streak_and_break;
        Alcotest.test_case "health RPC + unreachable poll" `Quick
          test_health_rpc_and_poll;
        Alcotest.test_case "coordinator kill raises in_doubt_age" `Quick
          test_kill_coordinator_raises_in_doubt_alarm;
        Alcotest.test_case "sweep: clean seeds raise no alarm" `Quick
          test_sweep_clean_no_false_alarms;
        Alcotest.test_case "sweep: kill seeds must alarm" `Quick
          test_sweep_kill_alarm_liveness;
        Alcotest.test_case "break-health flags muted watchdog" `Quick
          test_break_health_fails_liveness_oracle;
      ] );
  ]
