(* Transport: rpc, latency model, one-way sends, crash, restart,
   partition, incarnation fencing. *)

module E = Engine
module T = Locus_net.Transport

type msg = Echo of int | Slow of int
type resp = Val of int

let with_net ?(n_sites = 3) f =
  let e = E.create () in
  let net = T.create e ~n_sites in
  List.iter
    (fun s ->
      T.set_handler net s (fun ~src:_ m ->
          match m with
          | Echo n -> Val (n + (100 * s))
          | Slow n ->
            E.sleep 50_000;
            Val n))
    (T.sites net);
  f e net;
  E.run e

let test_rpc_roundtrip () =
  let got = ref None and t_done = ref 0 in
  with_net (fun e net ->
      ignore
        (E.spawn e (fun () ->
             got := Some (T.rpc net ~src:0 ~dst:1 (Echo 5));
             t_done := E.now e)));
  (match !got with
  | Some (Ok (Val 105)) -> ()
  | _ -> Alcotest.fail "bad rpc result");
  (* Round trip: two one-way latencies plus CPU at both ends. *)
  let c = Costs.default in
  Alcotest.(check bool) "latency >= 2 one-way" true (!t_done >= 2 * c.Costs.msg_latency_us)

let test_local_rpc_no_wire () =
  let e = E.create () in
  let net = T.create e ~n_sites:2 in
  T.set_handler net 0 (fun ~src:_ (Echo n | Slow n) -> Val n);
  let got = ref None in
  ignore (E.spawn e (fun () -> got := Some (T.rpc net ~src:0 ~dst:0 (Echo 9))));
  E.run e;
  (match !got with Some (Ok (Val 9)) -> () | _ -> Alcotest.fail "local rpc");
  Alcotest.(check int) "no messages counted" 0 (Stats.get (E.stats e) "net.msg")

let test_rpc_counts_messages () =
  let e = E.create () in
  let net = T.create e ~n_sites:2 in
  T.set_handler net 1 (fun ~src:_ (Echo n | Slow n) -> Val n);
  ignore (E.spawn e (fun () -> ignore (T.rpc net ~src:0 ~dst:1 (Echo 1))));
  E.run e;
  Alcotest.(check int) "request + reply" 2 (Stats.get (E.stats e) "net.msg")

let test_no_handler () =
  let e = E.create () in
  let net = T.create e ~n_sites:2 in
  let got = ref None in
  ignore (E.spawn e (fun () -> got := Some (T.rpc net ~src:0 ~dst:0 (Echo 1))));
  E.run e;
  match !got with
  | Some (Error T.No_handler) -> ()
  | _ -> Alcotest.fail "expected No_handler"

let test_crash_drops_messages () =
  let got = ref None in
  with_net (fun e net ->
      ignore (E.spawn e (fun () -> got := Some (T.rpc net ~src:0 ~dst:1 (Slow 3))));
      (* Crash the server mid-service: its handler fiber dies and the
         reply never arrives. *)
      ignore
        (E.spawn e (fun () ->
             E.sleep 20_000;
             T.crash net 1)));
  match !got with
  | Some (Error T.Timeout) -> ()
  | _ -> Alcotest.fail "expected timeout after crash"

let test_crash_watchers () =
  let crashed = ref [] and restarted = ref [] and topo = ref 0 in
  let e = E.create () in
  let net = T.create e ~n_sites:3 in
  T.on_crash net (fun s -> crashed := s :: !crashed);
  T.on_restart net (fun s -> restarted := s :: !restarted);
  T.on_topology_change net (fun () -> incr topo);
  T.crash net 2;
  T.crash net 2 (* idempotent *);
  T.restart net 2;
  Alcotest.(check (list int)) "crashed" [ 2 ] !crashed;
  Alcotest.(check (list int)) "restarted" [ 2 ] !restarted;
  Alcotest.(check int) "topology events" 2 !topo;
  Alcotest.(check bool) "up again" true (T.site_up net 2)

let test_partition () =
  let e = E.create () in
  let net = T.create e ~n_sites:4 in
  T.partition net [ [ 0; 1 ]; [ 2; 3 ] ];
  Alcotest.(check bool) "same group" true (T.reachable net 0 1);
  Alcotest.(check bool) "cross group" false (T.reachable net 1 2);
  Alcotest.(check bool) "self" true (T.reachable net 2 2);
  T.heal net;
  Alcotest.(check bool) "healed" true (T.reachable net 1 2)

let test_partition_blocks_rpc () =
  let got = ref None in
  with_net (fun e net ->
      T.partition net [ [ 0 ]; [ 1; 2 ] ];
      ignore (E.spawn e (fun () -> got := Some (T.rpc net ~src:0 ~dst:1 (Echo 1)))));
  match !got with
  | Some (Error T.Timeout) -> ()
  | _ -> Alcotest.fail "expected timeout across partition"

let test_successive_partitions_disjoint () =
  let e = E.create () in
  let net = T.create e ~n_sites:4 in
  T.partition net [ [ 0; 1 ] ];
  T.partition net [ [ 2; 3 ] ];
  (* Groups from different calls must not merge. *)
  Alcotest.(check bool) "0-1" true (T.reachable net 0 1);
  Alcotest.(check bool) "2-3" true (T.reachable net 2 3);
  Alcotest.(check bool) "1-2 separated" false (T.reachable net 1 2)

let test_incarnation_fencing () =
  (* A message in flight to a site that crashes and instantly reboots must
     not be delivered to the new incarnation. *)
  let served = ref 0 in
  let e = E.create () in
  let net = T.create e ~n_sites:2 in
  T.set_handler net 1 (fun ~src:_ (Echo n | Slow n) ->
      incr served;
      Val n);
  ignore (E.spawn e (fun () -> ignore (T.rpc net ~src:0 ~dst:1 (Echo 1))));
  ignore
    (E.spawn e (fun () ->
         (* Crash + restart while the request is on the wire (the sender
            charges ~1.5 ms of CPU before the wire, one-way is 6.5 ms). *)
         E.sleep 4_000;
         T.crash net 1;
         T.restart net 1));
  E.run e;
  Alcotest.(check int) "stale message dropped" 0 !served

(* {1 rpc_retry} *)

let test_retry_transient_reply () =
  (* The handler answers "busy" (Val 0) twice, then the real value; the
     retry loop must keep going past application-level refusals. *)
  let calls = ref 0 and got = ref None in
  let e = E.create () in
  let net = T.create e ~n_sites:2 in
  T.set_handler net 1 (fun ~src:_ (Echo n | Slow n) ->
      incr calls;
      if !calls <= 2 then Val 0 else Val n);
  ignore
    (E.spawn e (fun () ->
         got :=
           Some
             (T.rpc_retry ~attempts:5 ~backoff_us:1_000
                ~retry_if:(fun (Val v) -> v = 0)
                net ~src:0 ~dst:1 (Echo 9))));
  E.run e;
  (match !got with
  | Some (Ok (Val 9)) -> ()
  | _ -> Alcotest.fail "expected the third reply");
  Alcotest.(check int) "three calls" 3 !calls

let test_retry_exhausts_attempts () =
  let calls = ref 0 and got = ref None in
  let e = E.create () in
  let net = T.create e ~n_sites:2 in
  T.set_handler net 1 (fun ~src:_ (Echo _ | Slow _) ->
      incr calls;
      Val 0);
  ignore
    (E.spawn e (fun () ->
         got :=
           Some
             (T.rpc_retry ~attempts:3 ~backoff_us:1_000
                ~retry_if:(fun (Val v) -> v = 0)
                net ~src:0 ~dst:1 (Echo 9))));
  E.run e;
  (match !got with
  | Some (Ok (Val 0)) -> () (* the last reply is surfaced *)
  | _ -> Alcotest.fail "expected last busy reply");
  Alcotest.(check int) "bounded attempts" 3 !calls

let test_retry_rides_out_crash () =
  (* Server down for the first tries; the backoff outlives the outage, so
     the rpc eventually lands — the §4.2 phase-2 use case. *)
  let got = ref None in
  let e = E.create () in
  let net = T.create e ~n_sites:2 in
  T.set_handler net 1 (fun ~src:_ (Echo n | Slow n) -> Val n);
  T.crash net 1;
  ignore
    (E.spawn e (fun () ->
         got :=
           Some
             (T.rpc_retry ~attempts:8 ~backoff_us:500_000 net ~src:0 ~dst:1
                (Echo 4))));
  ignore
    (E.spawn e (fun () ->
         E.sleep 2_000_000;
         T.restart net 1));
  E.run e;
  match !got with
  | Some (Ok (Val 4)) -> ()
  | r ->
    Alcotest.failf "expected success after restart, got %s"
      (match r with
      | None -> "nothing"
      | Some (Ok (Val v)) -> Printf.sprintf "Val %d" v
      | Some (Error _) -> "transport error")

(* {1 Fault injection (locus_chaos)} *)

let test_faults_drop_and_dup () =
  (* Certainty-rate faults make the injection paths deterministic without
     touching PRNG internals: drop = 1.0 delivers nothing, dup = 1.0
     delivers everything twice. *)
  let served = ref 0 in
  let e = E.create () in
  let net = T.create e ~n_sites:2 in
  T.set_handler net 1 (fun ~src:_ (Echo n | Slow n) ->
      incr served;
      Val n);
  T.set_faults net (Some { T.no_faults with drop = 1.0 });
  T.send net ~src:0 ~dst:1 (Echo 1);
  E.run e;
  Alcotest.(check int) "dropped" 0 !served;
  Alcotest.(check int) "drop counted" 1 (Stats.get (E.stats e) "net.drop");
  T.set_faults net (Some { T.no_faults with dup = 1.0 });
  T.send net ~src:0 ~dst:1 (Echo 2);
  E.run e;
  Alcotest.(check int) "original + duplicate" 2 !served;
  Alcotest.(check int) "dup counted" 1 (Stats.get (E.stats e) "net.dup")

let test_reorder_window () =
  (* With a reorder window armed, a burst of one-way sends must arrive
     complete (reordering never loses anything) but out of order, and the
     overtakes must be counted. *)
  let order = ref [] in
  let e = E.create () in
  let net = T.create e ~n_sites:2 in
  T.set_handler net 1 (fun ~src:_ (Echo n | Slow n) ->
      order := n :: !order;
      Val n);
  T.set_faults net (Some { T.no_faults with reorder = 4 });
  for i = 1 to 16 do
    T.send net ~src:0 ~dst:1 (Echo i)
  done;
  E.run e;
  let got = List.rev !order in
  Alcotest.(check int) "all 16 delivered" 16 (List.length got);
  Alcotest.(check (list int))
    "same multiset" (List.init 16 (fun i -> i + 1))
    (List.sort Int.compare got);
  Alcotest.(check bool) "sequence overtaken" true
    (got <> List.init 16 (fun i -> i + 1));
  Alcotest.(check bool) "reorders counted" true
    (Stats.get (E.stats e) "net.reorder" > 0)

let test_per_link_override () =
  (* A reliable per-link override shields one link from the global fault
     model; the reverse direction keeps losing messages. *)
  let served = ref 0 in
  let e = E.create () in
  let net = T.create e ~n_sites:2 in
  T.set_handler net 0 (fun ~src:_ (Echo n | Slow n) ->
      incr served;
      Val n);
  T.set_handler net 1 (fun ~src:_ (Echo n | Slow n) ->
      incr served;
      Val n);
  T.set_faults net (Some { T.no_faults with drop = 1.0 });
  T.set_link_faults net ~src:0 ~dst:1 (Some T.no_faults);
  T.send net ~src:0 ~dst:1 (Echo 1);
  T.send net ~src:1 ~dst:0 (Echo 2);
  E.run e;
  Alcotest.(check int) "only the shielded link delivered" 1 !served

let test_send_one_way () =
  let served = ref 0 in
  let e = E.create () in
  let net = T.create e ~n_sites:2 in
  T.set_handler net 1 (fun ~src:_ (Echo n | Slow n) ->
      served := !served + n;
      Val n);
  T.send net ~src:0 ~dst:1 (Echo 7);
  E.run e;
  Alcotest.(check int) "delivered" 7 !served

let suite =
  [
    ( "net.transport",
      [
        Alcotest.test_case "rpc roundtrip" `Quick test_rpc_roundtrip;
        Alcotest.test_case "local rpc skips wire" `Quick test_local_rpc_no_wire;
        Alcotest.test_case "message counting" `Quick test_rpc_counts_messages;
        Alcotest.test_case "no handler" `Quick test_no_handler;
        Alcotest.test_case "crash drops messages" `Quick test_crash_drops_messages;
        Alcotest.test_case "crash watchers" `Quick test_crash_watchers;
        Alcotest.test_case "partition" `Quick test_partition;
        Alcotest.test_case "partition blocks rpc" `Quick test_partition_blocks_rpc;
        Alcotest.test_case "successive partitions" `Quick
          test_successive_partitions_disjoint;
        Alcotest.test_case "incarnation fencing" `Quick test_incarnation_fencing;
        Alcotest.test_case "retry past transient reply" `Quick
          test_retry_transient_reply;
        Alcotest.test_case "retry bounded" `Quick test_retry_exhausts_attempts;
        Alcotest.test_case "retry rides out crash" `Quick
          test_retry_rides_out_crash;
        Alcotest.test_case "faults: drop and dup" `Quick test_faults_drop_and_dup;
        Alcotest.test_case "faults: reorder window" `Quick test_reorder_window;
        Alcotest.test_case "faults: per-link override" `Quick
          test_per_link_override;
        Alcotest.test_case "one-way send" `Quick test_send_one_way;
      ] );
  ]
