(* Primary-copy file replication (§5.2): placement, versioned commit
   propagation, secondary reads, failover when the primary is lost,
   degraded-copy write refusal, and partition-heal reconciliation. *)

module L = Locus_core.Locus
module Api = L.Api
module K = L.Kernel
module R = Locus_repl
module T = Locus_net.Transport
module Ck = Locus_check

let stats sim = L.Engine.stats sim.L.engine

let repl_sim ?(seed = 0) ?(n_sites = 3) ?(factor = 2) () =
  let config = K.Config.with_replication ~n_sites ~factor in
  L.make ~seed ~config ~n_sites ()

(* {1 Placement} *)

let test_placement () =
  let vols = R.Placement.volumes ~n_sites:4 ~factor:2 in
  Alcotest.(check int) "one volume per site" 4 (List.length vols);
  List.iter
    (fun (vid, hosts) ->
      Alcotest.(check int) "factor hosts" 2 (List.length hosts);
      Alcotest.(check int) "primary is the home site" vid
        (R.Placement.primary hosts);
      Alcotest.(check (list int))
        "secondary wraps around" [ (vid + 1) mod 4 ]
        (R.Placement.secondaries hosts);
      Alcotest.(check bool) "hosts distinct" true
        (List.length (List.sort_uniq Int.compare hosts) = List.length hosts))
    vols;
  (* factor clamps to the cluster size. *)
  List.iter
    (fun (_, hosts) -> Alcotest.(check int) "clamped" 2 (List.length hosts))
    (R.Placement.volumes ~n_sites:2 ~factor:5)

(* {1 Commit propagation} *)

let test_versions_track_commits () =
  let sim = repl_sim () in
  let cl = sim.L.cluster in
  ignore
    (Api.spawn_process cl ~site:0 ~name:"writer" (fun env ->
         let c = Api.creat env "/seq" ~vid:1 in
         for i = 1 to 3 do
           Api.pwrite env c ~pos:0 (Bytes.of_string (Printf.sprintf "v%d.." i));
           Api.commit_file env c
         done;
         Api.close env c));
  L.run sim;
  (* create = v1, three commits = v4, identical at every host. *)
  let vol = List.find (fun v -> v.K.rv_vid = 1) (K.replica_status cl) in
  Alcotest.(check int) "two hosts" 2 (List.length vol.K.rv_hosts);
  List.iter
    (fun h ->
      Alcotest.(check bool) "fresh" true h.K.rh_fresh;
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "site %d at v4" h.K.rh_site)
        [ (1, 4) ] h.K.rh_versions)
    vol.K.rv_hosts;
  Alcotest.(check bool) "deltas applied" true
    (L.Stats.get (stats sim) "replica.apply" >= 3)

let test_exactly_once_under_faults () =
  (* The locus_chaos acceptance pin: the same three-commit run over a
     lossy network (drops, duplicates, reordering live on every leg) must
     land on exactly version 4 at every host — a lost reply retried after
     the commit executed, or a duplicated wire copy, must not re-commit.
     The fault counters prove the network actually misbehaved, and the
     dedup counters prove the reply cache is what absorbed it. *)
  let config =
    K.Config.with_net_faults ~drop:0.15 ~dup:0.15 ~reorder:2
      (K.Config.with_replication ~n_sites:3 ~factor:2)
  in
  let sim = L.make ~seed:3 ~config ~n_sites:3 () in
  let cl = sim.L.cluster in
  ignore
    (Api.spawn_process cl ~site:0 ~name:"writer" (fun env ->
         let c = Api.creat env "/seq" ~vid:1 in
         for i = 1 to 3 do
           Api.pwrite env c ~pos:0 (Bytes.of_string (Printf.sprintf "v%d.." i));
           Api.commit_file env c
         done;
         Api.close env c));
  L.run sim;
  Alcotest.(check bool) "faults fired" true
    (L.Stats.get (stats sim) "net.drop" + L.Stats.get (stats sim) "net.dup" > 0);
  Alcotest.(check bool) "reply cache absorbed duplicates" true
    (L.Stats.get (stats sim) "net.dedup_hits"
     + L.Stats.get (stats sim) "net.dedup_waits"
     > 0);
  let vol = List.find (fun v -> v.K.rv_vid = 1) (K.replica_status cl) in
  List.iter
    (fun h ->
      Alcotest.(check bool) "fresh" true h.K.rh_fresh;
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "site %d at exactly v4" h.K.rh_site)
        [ (1, 4) ] h.K.rh_versions)
    vol.K.rv_hosts;
  match L.Kernel.lookup cl "/seq" with
  | Some fid ->
    Alcotest.(check string) "last committed bytes" "v3.."
      (K.read_committed_oracle cl fid)
  | None -> Alcotest.fail "file vanished"

let test_secondary_serves_local_read () =
  (* A plain process at the secondary site reads committed data from its
     local copy — no round trip to the primary. *)
  let sim = repl_sim () in
  let cl = sim.L.cluster in
  ignore
    (Api.spawn_process cl ~site:0 ~name:"writer" (fun env ->
         let c = Api.creat env "/near" ~vid:1 in
         Api.write_string env c "read me nearby";
         Api.commit_file env c;
         Api.close env c));
  L.run sim;
  let got = ref "" in
  ignore
    (Api.spawn_process cl ~site:2 ~name:"reader" (fun env ->
         let c = Api.open_file env "/near" in
         got := Bytes.to_string (Api.pread env c ~pos:0 ~len:14);
         Api.close env c));
  L.run sim;
  Alcotest.(check string) "committed bytes" "read me nearby" !got;
  Alcotest.(check bool) "served by the local replica" true
    (L.Stats.get (stats sim) "replica.local_reads" > 0)

(* {1 Failover} *)

let test_read_survives_primary_crash () =
  (* The acceptance scenario: commit at the primary, lose the primary,
     and committed data must still be readable from a secondary. *)
  let sim = repl_sim () in
  let cl = sim.L.cluster in
  ignore
    (Api.spawn_process cl ~site:0 ~name:"writer" (fun env ->
         let c = Api.creat env "/precious" ~vid:1 in
         Api.write_string env c "precious data!";
         Api.commit_file env c;
         Api.close env c));
  L.run sim;
  let fid = Option.get (K.lookup cl "/precious") in
  Alcotest.(check int) "primary is site 1" 1 (K.storage_site cl fid);
  ignore
    (Api.spawn_process cl ~site:0 ~name:"chaos" (fun _ -> K.crash_site cl 1));
  L.run sim;
  Alcotest.(check int) "secondary elected" 2 (K.storage_site cl fid);
  let got = ref "" in
  ignore
    (Api.spawn_process cl ~site:0 ~name:"reader" (fun env ->
         let c = Api.open_file env "/precious" in
         got := Bytes.to_string (Api.pread env c ~pos:0 ~len:14);
         Api.close env c));
  L.run sim;
  Alcotest.(check string) "still readable" "precious data!" !got

let test_degraded_copy_refuses_writes () =
  (* Isolate the primary: the surviving secondary takes over but cannot
     prove it has every committed version, so updates are refused with a
     clear error until reconciliation. Reads still work (flagged). *)
  let sim = repl_sim () in
  let cl = sim.L.cluster in
  ignore
    (Api.spawn_process cl ~site:0 ~name:"writer" (fun env ->
         let c = Api.creat env "/frozen" ~vid:1 in
         Api.write_string env c "stable";
         Api.commit_file env c;
         Api.close env c));
  L.run sim;
  ignore
    (Api.spawn_process cl ~site:0 ~name:"chaos" (fun _ ->
         T.partition (K.transport cl) [ [ 1 ] ]));
  L.run sim;
  Alcotest.(check bool) "takeover copy degraded" false
    (K.replica_fresh cl ~site:2 ~vid:1);
  let refused = ref "" and got = ref "" in
  ignore
    (Api.spawn_process cl ~site:0 ~name:"late-writer" (fun env ->
         let c = Api.open_file env "/frozen" in
         got := Bytes.to_string (Api.pread env c ~pos:0 ~len:6);
         (try Api.pwrite env c ~pos:0 (Bytes.of_string "mutiny")
          with Api.Error e -> refused := e)));
  L.run sim;
  Alcotest.(check string) "read still served" "stable" !got;
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "write refused, reason names the degraded state"
    true
    (contains !refused "degraded")

(* {1 Reconciliation} *)

let test_heal_reconciles_missed_versions () =
  (* The secondary is partitioned away while the primary commits twice;
     after the heal its reconciliation pass pulls the missed versions and
     the copy returns to fresh. *)
  let sim = repl_sim () in
  let cl = sim.L.cluster in
  ignore
    (Api.spawn_process cl ~site:0 ~name:"writer" (fun env ->
         let c = Api.creat env "/catchup" ~vid:1 in
         Api.write_string env c "base";
         Api.commit_file env c;
         (* Cut off the secondary (site 2), keep committing. *)
         T.partition (K.transport cl) [ [ 0; 1 ]; [ 2 ] ];
         Api.pwrite env c ~pos:0 (Bytes.of_string "one.");
         Api.commit_file env c;
         Api.pwrite env c ~pos:0 (Bytes.of_string "two.");
         Api.commit_file env c;
         Api.close env c;
         Engine.sleep 1_000_000;
         T.heal (K.transport cl)));
  L.run sim;
  Alcotest.(check bool) "secondary fresh again" true
    (K.replica_fresh cl ~site:2 ~vid:1);
  Alcotest.(check bool) "missed versions pulled" true
    (L.Stats.get (stats sim) "replica.reconciled" > 0);
  let vol = List.find (fun v -> v.K.rv_vid = 1) (K.replica_status cl) in
  let versions_at s =
    (List.find (fun h -> h.K.rh_site = s) vol.K.rv_hosts).K.rh_versions
  in
  Alcotest.(check (list (pair int int)))
    "versions converged" (versions_at 1) (versions_at 2)

let test_version_gap_triggers_pull () =
  (* One delta is lost (propagation suppressed for a single commit); the
     next delta arrives with a version gap, which the secondary resolves
     by pulling a full snapshot from the primary instead of applying. *)
  let sim = repl_sim () in
  let cl = sim.L.cluster in
  ignore
    (Api.spawn_process cl ~site:0 ~name:"writer" (fun env ->
         let c = Api.creat env "/gap" ~vid:1 in
         Api.write_string env c "AAAA";
         Api.commit_file env c;
         (* v3 never reaches the secondary... *)
         R.Flags.drop_propagation := true;
         Api.pwrite env c ~pos:0 (Bytes.of_string "BBBB");
         Api.commit_file env c;
         R.Flags.drop_propagation := false;
         (* ...so v4's delta exposes the gap. *)
         Api.pwrite env c ~pos:0 (Bytes.of_string "CCCC");
         Api.commit_file env c;
         Api.close env c));
  Fun.protect
    ~finally:(fun () -> R.Flags.drop_propagation := false)
    (fun () -> L.run sim);
  Alcotest.(check bool) "gap detected" true
    (L.Stats.get (stats sim) "replica.gaps" > 0);
  let vol = List.find (fun v -> v.K.rv_vid = 1) (K.replica_status cl) in
  List.iter
    (fun h ->
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "site %d caught up" h.K.rh_site)
        [ (1, 4) ] h.K.rh_versions)
    vol.K.rv_hosts

(* {1 The checker closes the loop} *)

let test_checker_catches_broken_propagation () =
  (* Self-test of the whole pipeline: silently drop commit propagation
     and the one-copy-serializability pass must flag unpermitted stale
     reads somewhere in a small sweep (seed 42 is a known reproducer). *)
  let module E = Ck.Explore in
  let cfg = { E.default_config with E.sites = 3; replicas = 2 } in
  R.Flags.drop_propagation := true;
  let r =
    Fun.protect
      ~finally:(fun () -> R.Flags.drop_propagation := false)
      (fun () -> E.sweep ~config:cfg ~seeds:(E.seeds ~n:10 ~from:42) ())
  in
  Alcotest.(check bool) "stale reads flagged" true (r.E.failures <> []);
  let is_stale = function
    | { Ck.Checker.violation = Ck.Checker.Stale_read _; permitted = false } ->
      true
    | _ -> false
  in
  Alcotest.(check bool) "an unpermitted Stale_read violation" true
    (List.exists
       (fun f ->
         List.exists is_stale f.E.f_report.Ck.Checker.violations)
       r.E.failures)

let suite =
  [
    ( "repl",
      [
        Alcotest.test_case "placement" `Quick test_placement;
        Alcotest.test_case "versions track commits" `Quick
          test_versions_track_commits;
        Alcotest.test_case "exactly-once under faults" `Quick
          test_exactly_once_under_faults;
        Alcotest.test_case "secondary serves local read" `Quick
          test_secondary_serves_local_read;
        Alcotest.test_case "read survives primary crash" `Quick
          test_read_survives_primary_crash;
        Alcotest.test_case "degraded copy refuses writes" `Quick
          test_degraded_copy_refuses_writes;
        Alcotest.test_case "heal reconciles missed versions" `Quick
          test_heal_reconciles_missed_versions;
        Alcotest.test_case "version gap triggers pull" `Quick
          test_version_gap_triggers_pull;
        Alcotest.test_case "checker catches broken propagation" `Quick
          test_checker_catches_broken_propagation;
      ] );
  ]
