(* Causal span tracing: cross-site context propagation, tree completeness,
   determinism, crash/recovery, the lock-contention profile, and the
   abort-reason taxonomy counters. *)

module L = Locus_core.Locus
module Api = L.Api
module K = L.Kernel
module M = L.Mode
module O = L.Otrace

(* The canonical distributed scenario: two volumes replicated across
   sites 1/2, two workers at site 0 contending on the same record so the
   second blocks until phase 2 of the first commit releases the lock.
   Exercises every span kind: lock.wait, prepare, commit.force,
   phase2.apply, replica.propagate, lock.release, rpc, syscall. *)
let run_workload ?(crash = false) ~seed () =
  let sites = 3 in
  let config = K.Config.with_replication ~n_sites:sites ~factor:2 in
  let sim = L.make ~seed ~config ~n_sites:sites () in
  let cl = sim.L.cluster in
  let otr = O.create (K.engine cl) in
  K.set_otracer cl (Some otr);
  ignore
    (Api.spawn_process cl ~site:0 ~name:"setup" (fun env ->
         let mk path vid =
           let c = Api.creat env path ~vid in
           Api.pwrite env c ~pos:0 (Bytes.make 128 '.');
           Api.commit_file env c;
           Api.close env c
         in
         mk "/t/a" 1;
         mk "/t/b" 2;
         let worker i delay =
           Api.fork env ~site:0 ~name:(Printf.sprintf "w%d" i) (fun w ->
               Engine.sleep delay;
               Api.begin_trans w;
               let upd path v =
                 let c = Api.open_file w path in
                 Api.seek w c ~pos:0;
                 (match Api.lock w c ~len:64 ~mode:M.Exclusive () with
                 | Api.Granted -> ()
                 | Api.Conflict _ -> ());
                 Api.pwrite w c ~pos:0
                   (Bytes.of_string (Printf.sprintf "%-64d" v));
                 c
               in
               let ca = upd "/t/a" i in
               let cb = upd "/t/b" (10 * i) in
               Engine.sleep 5_000;
               ignore (Api.end_trans w);
               Api.close w ca;
               Api.close w cb)
         in
         let w1 = worker 1 0 in
         let w2 = worker 2 20_000 in
         Api.wait_pid env w1;
         Api.wait_pid env w2));
  if crash then
    ignore
      (Api.spawn_process cl ~site:0 ~name:"chaos" (fun _ ->
           Engine.sleep 40_000;
           K.crash_site cl 2;
           Engine.sleep 400_000;
           K.restart_site cl 2));
  L.run sim;
  (sim, otr)

let names_of spans = List.map (fun (_, _, n, _, _, _, _) -> n) spans

let check_parents_resolve spans =
  let ids = Hashtbl.create 256 in
  List.iter (fun (id, _, _, _, _, _, _) -> Hashtbl.replace ids id ()) spans;
  List.iter
    (fun (_, parent, name, _, _, _, _) ->
      match parent with
      | Some p when not (Hashtbl.mem ids p) ->
        Alcotest.failf "span %s has unresolved parent %d" name p
      | Some _ | None -> ())
    spans

let test_tree_complete () =
  let _sim, otr = run_workload ~seed:11 () in
  let spans = O.spans otr in
  Alcotest.(check int) "ring did not wrap" 0 (O.dropped otr);
  check_parents_resolve spans;
  let names = names_of spans in
  List.iter
    (fun required ->
      Alcotest.(check bool) (required ^ " present") true (List.mem required names))
    [ "txn"; "sys.end_trans"; "2pc"; "coord_log.write"; "2pc.prepare";
      "prepare"; "prepare.force"; "2pc.votes"; "commit.force"; "2pc.phase2";
      "phase2.apply"; "replica.propagate"; "replica-commit"; "lock.wait";
      "lock.release" ];
  let sites =
    List.sort_uniq Int.compare (List.map (fun (_, _, _, _, s, _, _) -> s) spans)
  in
  Alcotest.(check bool) "spans at >= 2 sites" true (List.length sites >= 2);
  (* every span closed before the end of virtual time, none inverted *)
  List.iter
    (fun (_, _, name, _, _, s, e) ->
      if e < s then Alcotest.failf "span %s ends before it starts" name)
    spans

(* A participant's server-side [prepare] span runs at a storage site but
   must chain — through the envelope ctx and the coordinator's 2PC spans —
   all the way up to the [txn] root opened at the client site. *)
let test_cross_site_ancestry () =
  let _sim, otr = run_workload ~seed:11 () in
  let spans = O.spans otr in
  let by_id = Hashtbl.create 256 in
  List.iter
    (fun ((id, _, _, _, _, _, _) as sp) -> Hashtbl.replace by_id id sp)
    spans;
  let rec root_name (_, parent, name, _, _, _, _) =
    match parent with
    | None -> name
    | Some p -> root_name (Hashtbl.find by_id p)
  in
  let remote name =
    List.filter (fun (_, _, n, _, s, _, _) -> n = name && s <> 0) spans
  in
  let prepares = remote "prepare" in
  Alcotest.(check bool) "remote prepare spans exist" true (prepares <> []);
  List.iter
    (fun sp ->
      Alcotest.(check string) "prepare roots at txn" "txn" (root_name sp))
    prepares;
  (* replica propagation crosses a second hop: primary -> secondary. The
     setup's non-transactional commits also propagate (those root at their
     syscall), so require that at least one apply chains to a txn root. *)
  let applies = remote "replica-commit" in
  Alcotest.(check bool) "replica-commit spans exist" true (applies <> []);
  Alcotest.(check bool) "some replica apply roots at txn" true
    (List.exists (fun sp -> root_name sp = "txn") applies)

let test_deterministic () =
  let _s1, o1 = run_workload ~seed:11 () in
  let _s2, o2 = run_workload ~seed:11 () in
  Alcotest.(check int) "same span count" (O.span_count o1) (O.span_count o2);
  Alcotest.(check bool) "identical span streams" true (O.spans o1 = O.spans o2)

(* Crash a storage site mid-run, restart it: the recovery pass must be
   spanned, and the surviving forest must still have no dangling parents
   (retried work after the crash re-parents cleanly). *)
let test_crash_recovery () =
  let _sim, otr = run_workload ~crash:true ~seed:13 () in
  let spans = O.spans otr in
  check_parents_resolve spans;
  Alcotest.(check bool) "recovery span present" true
    (List.mem "recovery" (names_of spans))

let test_contention_profile () =
  let _sim, otr = run_workload ~seed:11 () in
  match O.contention otr with
  | [] -> Alcotest.fail "no contention recorded despite a forced lock wait"
  | hot :: _ ->
    Alcotest.(check bool) "at least one wait" true (hot.O.wp_waits >= 1);
    Alcotest.(check bool) "wait time accounted" true (hot.O.wp_total_wait_us > 0);
    Alcotest.(check bool) "max <= total" true
      (hot.O.wp_max_wait_us <= hot.O.wp_total_wait_us);
    Alcotest.(check bool) "queue depth seen" true (hot.O.wp_max_queue >= 1);
    Alcotest.(check bool) "blocker named" true (hot.O.wp_blockers <> [])

let test_export_shape () =
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let sim, otr = run_workload ~seed:11 () in
  let render f =
    let buf = Buffer.create 8192 in
    let ppf = Format.formatter_of_buffer buf in
    f ppf;
    Format.pp_print_flush ppf ();
    Buffer.contents buf
  in
  let chrome = render (fun ppf -> O.export_chrome otr ppf) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("chrome json has " ^ needle) true
        (contains chrome needle))
    [ "\"traceEvents\""; "\"ph\": \"X\""; "\"lock.wait\""; "\"otherData\"" ];
  let metrics =
    render (fun ppf -> O.export_metrics otr (L.Engine.stats sim.L.engine) ppf)
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("metrics json has " ^ needle) true
        (contains metrics needle))
    [ "\"phases\""; "\"lock_contention\""; "\"aborts\""; "\"deadlock\"";
      "\"counters\"" ]

(* The abort taxonomy is plain Stats counters — it must tick with no
   collector installed. Two workers lock the same two records in opposite
   orders; the detector's victim aborts with reason [Deadlock]. *)
let test_abort_taxonomy () =
  let sim = L.make ~seed:5 ~n_sites:1 () in
  let cl = sim.L.cluster in
  ignore
    (Api.spawn_process cl ~site:0 ~name:"main" (fun env ->
         let c = Api.creat env "/d" ~vid:0 in
         Api.write_string env c (String.make 128 'i');
         Api.commit_file env c;
         let w i =
           Api.fork env ~name:(Printf.sprintf "w%d" i) (fun w ->
               Api.begin_trans w;
               Api.seek w c ~pos:(i * 64);
               (match Api.lock w c ~len:64 ~mode:M.Exclusive () with
               | Api.Granted -> ()
               | Api.Conflict _ -> ());
               Engine.sleep 30_000;
               Api.seek w c ~pos:(64 * ((i + 1) mod 2));
               (match Api.lock w c ~len:64 ~mode:M.Exclusive () with
               | Api.Granted -> ()
               | Api.Conflict _ -> ());
               ignore (Api.end_trans w))
         in
         let pids = List.init 2 w in
         List.iter (Api.wait_pid env) pids));
  L.run sim;
  let stats = L.Engine.stats sim.L.engine in
  Alcotest.(check bool) "deadlock abort counted" true
    (L.Stats.get stats "txn.abort.deadlock" >= 1);
  Alcotest.(check int) "no crash aborts" 0 (L.Stats.get stats "txn.abort.crash")

(* A tiny ring forces drops; the exporter must still resolve or promote
   every surviving span. *)
let test_ring_bound () =
  let sites = 3 in
  let config = K.Config.with_replication ~n_sites:sites ~factor:2 in
  let sim = L.make ~seed:11 ~config ~n_sites:sites () in
  let cl = sim.L.cluster in
  let otr = O.create ~capacity:16 (K.engine cl) in
  K.set_otracer cl (Some otr);
  ignore
    (Api.spawn_process cl ~site:0 ~name:"p" (fun env ->
         let c = Api.creat env "/r" ~vid:1 in
         for i = 1 to 8 do
           Api.pwrite env c ~pos:0 (Bytes.of_string (Printf.sprintf "%8d" i));
           Api.commit_file env c
         done;
         Api.close env c));
  L.run sim;
  Alcotest.(check int) "ring holds capacity" 16 (O.span_count otr);
  Alcotest.(check bool) "drops counted" true (O.dropped otr > 0);
  (* chrome export promotes orphans: every parent id in the file resolves *)
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  O.export_chrome otr ppf;
  Format.pp_print_flush ppf ();
  Alcotest.(check bool) "export mentions orphans" true
    (Buffer.length buf > 0)

(* Appended: the chrome-export orphan guarantee and the blocker bound. *)

let test_chrome_orphan_promotion () =
  (* A child whose parent fell off the bounded ring MUST be promoted to a
     root by the export — a Perfetto file with dangling parent ids renders
     broken. Build the eviction deterministically: finish the parent
     first, push it out with fillers, then finish the child last. *)
  let sim = L.make ~n_sites:1 () in
  let otr = O.create ~capacity:3 sim.L.engine in
  let p = O.start otr ~site:0 ~cat:"test" "parent" in
  let c = O.start otr ~site:0 ~cat:"test" "child" in
  O.finish otr p;
  (* ring: [parent] — now evict it with three fillers (children of the
     still-open [c], so their parent ids resolve in the final file). *)
  for i = 1 to 3 do
    O.with_span otr ~site:0 ~cat:"test" (Printf.sprintf "filler%d" i)
      (fun () -> ())
  done;
  O.finish otr c;
  (* ring: [filler2; filler3; child]; parent and filler1 were dropped. *)
  Alcotest.(check bool) "spans were dropped" true (O.dropped otr > 0);
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  O.export_chrome otr ppf;
  Format.pp_print_flush ppf ();
  let out = Buffer.contents buf in
  (* Scan the emitted args: collect every "id": N and "parent": N. *)
  let ints_after key =
    let kl = String.length key and n = String.length out in
    let rec go i acc =
      if i + kl >= n then acc
      else if String.sub out i kl = key then begin
        let j = ref (i + kl) in
        let v = ref 0 and seen = ref false in
        while
          !j < n && match out.[!j] with '0' .. '9' -> true | _ -> false
        do
          v := (!v * 10) + (Char.code out.[!j] - Char.code '0');
          seen := true;
          incr j
        done;
        go !j (if !seen then !v :: acc else acc)
      end
      else go (i + 1) acc
    in
    go 0 []
  in
  let ids = ints_after "\"id\": " in
  let parents = ints_after "\"parent\": " in
  Alcotest.(check int) "ring capacity spans exported" 3 (List.length ids);
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "parent %d resolves inside the file" p)
        true (List.mem p ids))
    parents;
  (* The dropped parents' children were promoted and counted. *)
  match ints_after "\"orphaned\": " with
  | [ orphaned ] ->
      Alcotest.(check bool) "promotions counted in otherData" true (orphaned > 0)
  | l -> Alcotest.failf "expected one orphaned field, got %d" (List.length l)

let test_blockers_bounded () =
  let sim = L.make ~n_sites:2 () in
  let otr = O.create sim.L.engine in
  (* 12 distinct blockers against one cell, with distinct weights: the
     map is bounded to 8 entries (approximate top-K with min-eviction),
     the report sorts most-waits-first with name as tie-break, and the
     heavy hitters that never hit the eviction floor keep exact counts. *)
  for round = 1 to 12 do
    for b = 1 to round do
      O.note_wait otr ~fid:"f1:1" ~lo:0 ~wait_us:10 ~queue:1
        ~blockers:[ Printf.sprintf "owner%02d" b ]
    done
  done;
  (match O.contention otr with
  | [ cell ] ->
      let bl = cell.O.wp_blockers in
      Alcotest.(check int) "bounded to 8 entries" 8 (List.length bl);
      let rec descending = function
        | (an, ac) :: ((bn, bc) :: _ as rest) ->
            (ac > bc || (ac = bc && String.compare an bn < 0))
            && descending rest
        | _ -> true
      in
      Alcotest.(check bool) "stable order: waits desc, name tie-break" true
        (descending bl);
      (* owner01..owner07 accumulate fast enough that eviction never
         touches them: their counts are exact. *)
      List.iteri
        (fun i expect ->
          let name = Printf.sprintf "owner%02d" (i + 1) in
          Alcotest.(check (option int)) name (Some expect)
            (List.assoc_opt name bl))
        [ 12; 11; 10; 9; 8; 7; 6 ]
  | cells -> Alcotest.failf "expected 1 cell, got %d" (List.length cells));
  (* Equal counts: deterministic lexicographic order, not insertion luck. *)
  let otr2 = O.create sim.L.engine in
  List.iter
    (fun b -> O.note_wait otr2 ~fid:"f1:2" ~lo:0 ~wait_us:5 ~queue:1 ~blockers:[ b ])
    [ "zeta"; "alpha"; "mid" ];
  match O.contention otr2 with
  | [ cell ] ->
      Alcotest.(check (list (pair string int))) "ties broken by name"
        [ ("alpha", 1); ("mid", 1); ("zeta", 1) ]
        cell.O.wp_blockers
  | cells -> Alcotest.failf "expected 1 cell, got %d" (List.length cells)

let suite =
  [
    ( "otrace",
      [
        Alcotest.test_case "span tree complete" `Quick test_tree_complete;
        Alcotest.test_case "cross-site ancestry" `Quick test_cross_site_ancestry;
        Alcotest.test_case "deterministic" `Quick test_deterministic;
        Alcotest.test_case "crash + recovery" `Quick test_crash_recovery;
        Alcotest.test_case "contention profile" `Quick test_contention_profile;
        Alcotest.test_case "export shape" `Quick test_export_shape;
        Alcotest.test_case "abort taxonomy" `Quick test_abort_taxonomy;
        Alcotest.test_case "bounded ring" `Quick test_ring_bound;
        Alcotest.test_case "chrome export promotes orphans" `Quick
          test_chrome_orphan_promotion;
        Alcotest.test_case "contention blockers bounded to top-8" `Quick
          test_blockers_bounded;
      ] );
  ]
