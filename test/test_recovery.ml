(* Failure and recovery (§4.3-4.4): crashes injected at every stage of
   two-phase commit, partitions, and reboot-time recovery. The invariant
   throughout: a transaction's effects are all-or-nothing, across every
   file at every site, no matter when a site dies. *)

module L = Locus_core.Locus
module Api = L.Api
module K = L.Kernel
module LR = Locus_txn.Log_record

let oracle cl path =
  match K.lookup cl path with
  | Some fid -> K.read_committed_oracle cl fid
  | None -> ""

(* A two-site-data transaction: writes "AAAA" to /a (site 1) and "BBBB" to
   /b (site 2), coordinated from site 0. Returns the outcome seen by the
   client, or None if the client process was killed. *)
let run_2pc_scenario ~inject =
  let sim = L.make ~n_sites:3 () in
  let cl = sim.L.cluster in
  inject cl;
  let outcome = ref None in
  ignore
    (Api.spawn_process cl ~site:0 ~name:"client" (fun env ->
         let a = Api.creat env "/a" ~vid:1 in
         let b = Api.creat env "/b" ~vid:2 in
         Api.begin_trans env;
         Api.write_string env a "AAAA";
         Api.write_string env b "BBBB";
         outcome := Some (Api.end_trans env)));
  L.run sim;
  (sim, !outcome)

let check_atomic cl =
  let a = oracle cl "/a" and b = oracle cl "/b" in
  match (a, b) with
  | "AAAA", "BBBB" -> `Committed
  | "", "" -> `Aborted
  | _ -> Alcotest.failf "non-atomic state: /a=%S /b=%S" a b

(* {1 Crashes at exact protocol points} *)

let test_no_crash_baseline () =
  let sim, outcome = run_2pc_scenario ~inject:(fun _ -> ()) in
  Alcotest.(check bool) "client saw commit" true (outcome = Some K.Committed);
  Alcotest.(check bool) "durably committed" true (check_atomic sim.L.cluster = `Committed)

let test_crash_participant_before_prepare () =
  (* Site 2 dies before the transaction reaches two-phase commit: topology
     change aborts the active transaction (§4.3). *)
  let sim, outcome =
    run_2pc_scenario ~inject:(fun cl ->
        ignore
          (Api.spawn_process cl ~site:0 ~name:"chaos" (fun _ ->
               Engine.sleep 150_000;
               K.crash_site cl 2)))
  in
  ignore outcome;
  Alcotest.(check bool) "atomic" true (check_atomic sim.L.cluster <> `Committed);
  Alcotest.(check string) "site 1 file rolled back" "" (oracle sim.L.cluster "/a")

let test_crash_participant_after_prepare_before_decide () =
  (* A participant votes yes then dies. The coordinator cannot collect all
     votes (or cannot deliver phase 2) — either way, after the participant
     reboots and queries the coordinator, both sites converge. *)
  let sim, _ =
    run_2pc_scenario ~inject:(fun cl ->
        (K.hooks cl).K.on_participant_prepared <-
          (fun site txid _vote ->
            if site = 2 then begin
              (K.hooks cl).K.on_participant_prepared <- (fun _ _ _ -> ());
              ignore txid;
              K.crash_site cl 2;
              Engine.schedule ~delay:2_000_000 (K.engine cl) (fun () ->
                  K.restart_site cl 2)
            end))
  in
  Alcotest.(check bool) "atomic after reboot+recovery" true
    (check_atomic sim.L.cluster <> `Partial);
  (* Whatever the outcome, /a and /b agree. *)
  ignore (check_atomic sim.L.cluster)

let test_crash_coordinator_before_decide () =
  (* The coordinator writes its log, sends prepares, then dies before the
     commit mark. On reboot its recovery pass finds status Unknown and
     aborts; prepared participants learn the outcome by asking. *)
  let sim, _ =
    run_2pc_scenario ~inject:(fun cl ->
        (K.hooks cl).K.on_participant_prepared <-
          (fun site _txid _vote ->
            if site = 2 then begin
              (* Both participants have durable prepare records now (site 1
                 prepared before site 2 in site order... not guaranteed;
                 crash anyway — atomicity must hold regardless). *)
              K.crash_site cl 0;
              Engine.schedule ~delay:3_000_000 (K.engine cl) (fun () ->
                  K.restart_site cl 0)
            end))
  in
  Alcotest.(check bool) "aborted atomically" true
    (check_atomic sim.L.cluster = `Aborted);
  Alcotest.(check bool) "abort replayed at reboot" true
    (L.Stats.get (L.Engine.stats sim.L.engine) "recovery.replayed_abort" > 0)

let test_crash_coordinator_after_decide () =
  (* The commit mark is durable; the coordinator dies before phase 2. Its
     reboot recovery must push the commit out to the participants. *)
  let sim, _ =
    run_2pc_scenario ~inject:(fun cl ->
        (K.hooks cl).K.on_decided <-
          (fun _txid status ->
            if status = LR.Committed then begin
              K.crash_site cl 0;
              Engine.schedule ~delay:3_000_000 (K.engine cl) (fun () ->
                  K.restart_site cl 0)
            end))
  in
  Alcotest.(check bool) "committed everywhere" true
    (check_atomic sim.L.cluster = `Committed);
  Alcotest.(check bool) "commit replayed at reboot" true
    (L.Stats.get (L.Engine.stats sim.L.engine) "recovery.replayed_commit" > 0)

let test_crash_participant_after_decide () =
  (* The participant dies after the commit point, before (or during)
     phase 2. Its reboot recovery finds the prepare record, asks the
     coordinator, and completes the commit from its own log. *)
  let sim, outcome =
    run_2pc_scenario ~inject:(fun cl ->
        (K.hooks cl).K.on_decided <-
          (fun _txid status ->
            if status = LR.Committed then begin
              K.crash_site cl 2;
              Engine.schedule ~delay:3_000_000 (K.engine cl) (fun () ->
                  K.restart_site cl 2)
            end))
  in
  Alcotest.(check bool) "client saw commit" true (outcome = Some K.Committed);
  Alcotest.(check bool) "committed everywhere after reboot" true
    (check_atomic sim.L.cluster = `Committed)

let test_partition_aborts_active () =
  let sim, _ =
    run_2pc_scenario ~inject:(fun cl ->
        ignore
          (Api.spawn_process cl ~site:0 ~name:"chaos" (fun _ ->
               Engine.sleep 150_000;
               Locus_net.Transport.partition (K.transport cl) [ [ 0; 1 ]; [ 2 ] ];
               Engine.sleep 2_000_000;
               Locus_net.Transport.heal (K.transport cl))))
  in
  (* check_atomic itself fails the test on any partial state. *)
  ignore (check_atomic sim.L.cluster)

let test_in_doubt_waits_for_coordinator () =
  (* The participant reboots while the coordinator is down: it must stay
     in doubt (data locked) until the coordinator answers, then commit. *)
  let sim, _ =
    run_2pc_scenario ~inject:(fun cl ->
        (K.hooks cl).K.on_decided <-
          (fun _txid status ->
            if status = LR.Committed then begin
              K.crash_site cl 2;
              K.crash_site cl 0;
              (* Participant reboots first: coordinator still down. *)
              Engine.schedule ~delay:2_000_000 (K.engine cl) (fun () ->
                  K.restart_site cl 2);
              Engine.schedule ~delay:20_000_000 (K.engine cl) (fun () ->
                  K.restart_site cl 0)
            end))
  in
  Alcotest.(check bool) "eventually committed" true
    (check_atomic sim.L.cluster = `Committed)

let test_recovery_releases_locks () =
  (* After recovery completes, the file is usable again by new work. *)
  let sim, _ =
    run_2pc_scenario ~inject:(fun cl ->
        (K.hooks cl).K.on_decided <-
          (fun _txid status ->
            if status = LR.Committed then begin
              K.crash_site cl 2;
              Engine.schedule ~delay:3_000_000 (K.engine cl) (fun () ->
                  K.restart_site cl 2)
            end))
  in
  let cl = sim.L.cluster in
  let ok = ref false in
  ignore
    (Api.spawn_process cl ~site:0 ~name:"late" (fun env ->
         let b = Api.open_file env "/b" in
         Api.begin_trans env;
         Api.seek env b ~pos:0;
         (match Api.lock env b ~len:4 ~mode:L.Mode.Exclusive () with
         | Api.Granted -> ()
         | Api.Conflict _ -> Alcotest.fail "stale lock survived recovery");
         Api.pwrite env b ~pos:0 (Bytes.of_string "bbbb");
         (match Api.end_trans env with
         | K.Committed -> ok := true
         | K.Aborted -> ())));
  L.run sim;
  Alcotest.(check bool) "new transaction ran" true !ok;
  Alcotest.(check string) "new value" "bbbb" (oracle cl "/b")

let test_crashed_client_process () =
  (* The client's own site dies mid-transaction (before 2PC): everything
     rolls back at the storage sites once the topology sweep runs. *)
  let sim = L.make ~n_sites:3 () in
  let cl = sim.L.cluster in
  ignore
    (Api.spawn_process cl ~site:0 ~name:"doomed" (fun env ->
         let a = Api.creat env "/a" ~vid:1 in
         Api.begin_trans env;
         Api.write_string env a "half-";
         Engine.sleep 10_000_000 (* never wakes: site dies *)));
  ignore
    (Api.spawn_process cl ~site:1 ~name:"chaos" (fun _ ->
         Engine.sleep 1_000_000;
         K.crash_site cl 0));
  L.run sim;
  Alcotest.(check string) "rolled back" "" (oracle cl "/a");
  (* The storage site's lock table no longer holds the dead transaction's
     locks. *)
  let k1 = K.kernel cl 1 in
  let fid = Option.get (K.lookup cl "/a") in
  (match K.lock_table k1 fid with
  | Some table ->
    Alcotest.(check int) "no stale locks" 0 (Locus_lock.Lock_table.lock_count table)
  | None -> ());
  Alcotest.(check bool) "storage-site abort ran" true
    (L.Stats.get (L.Engine.stats sim.L.engine) "txn.storage_site_aborts" > 0
    || L.Stats.get (L.Engine.stats sim.L.engine) "txn.topology_aborts" > 0)

let suite =
  [
    ( "recovery.2pc",
      [
        Alcotest.test_case "baseline" `Quick test_no_crash_baseline;
        Alcotest.test_case "participant dies pre-prepare" `Quick
          test_crash_participant_before_prepare;
        Alcotest.test_case "participant dies post-prepare" `Quick
          test_crash_participant_after_prepare_before_decide;
        Alcotest.test_case "coordinator dies pre-decide" `Quick
          test_crash_coordinator_before_decide;
        Alcotest.test_case "coordinator dies post-decide" `Quick
          test_crash_coordinator_after_decide;
        Alcotest.test_case "participant dies post-decide" `Quick
          test_crash_participant_after_decide;
        Alcotest.test_case "partition aborts" `Quick test_partition_aborts_active;
        Alcotest.test_case "in doubt waits" `Quick test_in_doubt_waits_for_coordinator;
        Alcotest.test_case "recovery releases locks" `Quick test_recovery_releases_locks;
        Alcotest.test_case "client site dies" `Quick test_crashed_client_process;
      ] );
  ]

(* Appended: harder failure schedules. *)

let test_double_crash_during_recovery () =
  (* The participant reboots, starts asking for the outcome, and crashes
     AGAIN before it hears back; its second recovery must still converge. *)
  let sim, _ =
    run_2pc_scenario ~inject:(fun cl ->
        (K.hooks cl).K.on_decided <-
          (fun _txid status ->
            if status = LR.Committed then begin
              K.crash_site cl 2;
              K.crash_site cl 0;
              (* Reboot participant first (coordinator down: stays in
                 doubt), crash it again mid-doubt, reboot everything. *)
              Engine.schedule ~delay:2_000_000 (K.engine cl) (fun () ->
                  K.restart_site cl 2);
              Engine.schedule ~delay:6_000_000 (K.engine cl) (fun () ->
                  K.crash_site cl 2);
              Engine.schedule ~delay:9_000_000 (K.engine cl) (fun () ->
                  K.restart_site cl 2);
              Engine.schedule ~delay:14_000_000 (K.engine cl) (fun () ->
                  K.restart_site cl 0)
            end))
  in
  Alcotest.(check bool) "converged to committed" true
    (check_atomic sim.L.cluster = `Committed)

let test_coordinator_crash_loop () =
  (* The coordinator crashes after the mark, reboots, replays phase 2,
     and crashes again right away; the log is retained until processing
     completes, so the second reboot finishes the job. *)
  let crashes = ref 0 in
  let sim, _ =
    run_2pc_scenario ~inject:(fun cl ->
        (K.hooks cl).K.on_decided <-
          (fun _txid status ->
            if status = LR.Committed && !crashes = 0 then begin
              incr crashes;
              K.crash_site cl 0;
              Engine.schedule ~delay:2_000_000 (K.engine cl) (fun () ->
                  K.restart_site cl 0);
              (* Second crash lands during/after the first recovery pass. *)
              Engine.schedule ~delay:2_300_000 (K.engine cl) (fun () ->
                  K.crash_site cl 0);
              Engine.schedule ~delay:5_000_000 (K.engine cl) (fun () ->
                  K.restart_site cl 0)
            end))
  in
  Alcotest.(check bool) "still committed" true
    (check_atomic sim.L.cluster = `Committed)

let test_all_sites_crash_and_reboot () =
  (* Power failure: every site dies after the commit mark; on reboot the
     cluster converges to committed from logs alone. *)
  let sim, _ =
    run_2pc_scenario ~inject:(fun cl ->
        (K.hooks cl).K.on_decided <-
          (fun _txid status ->
            if status = LR.Committed then begin
              K.crash_site cl 0;
              K.crash_site cl 1;
              K.crash_site cl 2;
              Engine.schedule ~delay:2_000_000 (K.engine cl) (fun () ->
                  K.restart_site cl 1);
              Engine.schedule ~delay:2_500_000 (K.engine cl) (fun () ->
                  K.restart_site cl 2);
              Engine.schedule ~delay:3_000_000 (K.engine cl) (fun () ->
                  K.restart_site cl 0)
            end))
  in
  Alcotest.(check bool) "whole-cluster reboot converges" true
    (check_atomic sim.L.cluster = `Committed)

(* {1 Partition (not crash) during an in-flight 2PC} *)

module T = Locus_net.Transport

let test_partition_between_prepare_and_decide () =
  (* The wire between coordinator (site 0) and one participant (site 2)
     breaks right after the participant's yes-vote, and heals later. No
     site loses state — this is purely a connectivity hole in the middle
     of the protocol. Whatever the coordinator decides (commit if it got
     the vote in time, abort via the §4.3 topology sweep otherwise), both
     storage sites must converge to the same outcome after the heal. *)
  let sim, _ =
    run_2pc_scenario ~inject:(fun cl ->
        (K.hooks cl).K.on_participant_prepared <-
          (fun site _txid _vote ->
            if site = 2 then begin
              (K.hooks cl).K.on_participant_prepared <- (fun _ _ _ -> ());
              T.partition (K.transport cl) [ [ 0; 1 ]; [ 2 ] ];
              Engine.schedule ~delay:5_000_000 (K.engine cl) (fun () ->
                  T.heal (K.transport cl))
            end))
  in
  ignore (check_atomic sim.L.cluster)

let test_partition_between_decide_and_phase2 () =
  (* The commit mark is durable at the coordinator, then the participant
     becomes unreachable before phase 2 lands. The phase-2 retry loop
     outlives the partition, so after the heal the participant learns the
     commit without needing a reboot. *)
  let sim, outcome =
    run_2pc_scenario ~inject:(fun cl ->
        (K.hooks cl).K.on_decided <-
          (fun _txid status ->
            if status = LR.Committed then begin
              T.partition (K.transport cl) [ [ 0; 1 ]; [ 2 ] ];
              Engine.schedule ~delay:5_000_000 (K.engine cl) (fun () ->
                  T.heal (K.transport cl))
            end))
  in
  Alcotest.(check bool) "client saw commit" true (outcome = Some K.Committed);
  Alcotest.(check bool) "committed on both sides of the healed partition"
    true
    (check_atomic sim.L.cluster = `Committed)

let suite =
  suite
  @ [
      ( "recovery.hard",
        [
          Alcotest.test_case "double crash during recovery" `Quick
            test_double_crash_during_recovery;
          Alcotest.test_case "coordinator crash loop" `Quick
            test_coordinator_crash_loop;
          Alcotest.test_case "whole-cluster power failure" `Quick
            test_all_sites_crash_and_reboot;
          Alcotest.test_case "partition between prepare and decide" `Quick
            test_partition_between_prepare_and_decide;
          Alcotest.test_case "partition between decide and phase 2" `Quick
            test_partition_between_decide_and_phase2;
        ] );
    ]
