let () =
  Alcotest.run "locus"
    (List.concat [ Test_util.suite; Test_sim.suite; Test_net.suite; Test_disk.suite; Test_lock.suite; Test_fs.suite; Test_deadlock.suite; Test_txn.suite; Test_wal.suite; Test_kernel.suite; Test_recovery.suite; Test_props.suite; Test_regressions.suite; Test_namespace.suite; Test_proc.suite; Test_edge.suite; Test_nested.suite; Test_stress.suite; Test_access_matrix.suite; Test_repl.suite; Test_chaos.suite; Test_check.suite; Test_otrace.suite; Test_batch.suite; Test_pcommit.suite; Test_shard.suite; Test_health.suite; Test_load.suite ])
