(** Per-site process table. *)

type t

val create : site:int -> t
val site : t -> int

val alloc_pid : t -> Pid.t
(** Fresh pid with this site as origin. *)

val insert : t -> Process.t -> unit
(** Register a process at this site (birth or arrival of a migration).
    Raises [Invalid_argument] if the pid is already present. *)

val remove : t -> Pid.t -> unit
val find : t -> Pid.t -> Process.t option
val mem : t -> Pid.t -> bool
val processes : t -> Process.t list

val members_of : t -> Txid.t -> Process.t list
(** Local member processes of the given transaction. *)

val clear : t -> unit
(** Site crash: every local process dies. *)
