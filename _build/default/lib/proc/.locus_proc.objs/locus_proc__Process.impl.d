lib/proc/process.ml: File_id Fmt List Owner Pid Txid
