lib/proc/proc_table.ml: Hashtbl Pid Process Txid
