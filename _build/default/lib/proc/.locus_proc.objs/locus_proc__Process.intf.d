lib/proc/process.mli: File_id Fmt Owner Pid Txid
