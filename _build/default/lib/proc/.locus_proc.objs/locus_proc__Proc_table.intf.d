lib/proc/proc_table.mli: Pid Process Txid
