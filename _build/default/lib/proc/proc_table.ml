type t = {
  site : int;
  table : (Pid.t, Process.t) Hashtbl.t;
  mutable next_num : int;
}

let create ~site = { site; table = Hashtbl.create 32; next_num = 0 }
let site t = t.site

let alloc_pid t =
  t.next_num <- t.next_num + 1;
  Pid.make ~origin:t.site ~num:t.next_num

let insert t p =
  if Hashtbl.mem t.table p.Process.pid then
    invalid_arg "Proc_table.insert: pid already present";
  Hashtbl.replace t.table p.Process.pid p

let remove t pid = Hashtbl.remove t.table pid
let find t pid = Hashtbl.find_opt t.table pid
let mem t pid = Hashtbl.mem t.table pid
let processes t = Hashtbl.fold (fun _ p acc -> p :: acc) t.table []

let members_of t txid =
  Hashtbl.fold
    (fun _ p acc ->
      match p.Process.txid with
      | Some tx when Txid.equal tx txid -> p :: acc
      | Some _ | None -> acc)
    t.table []

let clear t = Hashtbl.reset t.table
