(** Process records.

    A Locus process lives at exactly one site at a time but may migrate;
    its pid never changes. Transaction membership is inherited by children
    (§3.1) along with their open file channels, Unix-style. The
    [In_transit] status is the flag that makes migration atomic with
    respect to arriving file-list merge messages (§4.1): a site that finds
    the target process in transit bounces the message back for retry. *)

type status = Running | In_transit | Exited

type open_file = {
  chan : int;
  fid : File_id.t;
  mutable pos : int;  (** current file pointer (lock requests use it, §3.2) *)
  mutable append : bool;  (** append mode: lock requests are EOF-relative *)
}

type t = {
  pid : Pid.t;
  mutable site : int;  (** current execution site *)
  mutable parent : Pid.t option;
  mutable children : Pid.Set.t;
  mutable txid : Txid.t option;  (** transaction membership, inherited *)
  mutable top_level : bool;  (** the process that issued the outermost BeginTrans *)
  mutable nesting : int;  (** BeginTrans/EndTrans nesting counter (§2) *)
  mutable file_list : File_id.Set.t;
      (** files this process used inside the transaction (§4.1) *)
  mutable channels : open_file list;
  mutable next_chan : int;
  mutable status : status;
}

val create : pid:Pid.t -> site:int -> parent:Pid.t option -> t

val fork_child : t -> pid:Pid.t -> site:int -> t
(** Child inherits transaction membership, open channels (with positions)
    and nothing else; its file-list starts empty and merges back at
    exit. *)

val in_transaction : t -> bool
val owner : t -> Owner.t
(** The synchronization identity: the transaction if inside one, otherwise
    the process itself. *)

val add_channel : t -> File_id.t -> int
(** Open a new channel on a (name-mapped) file; returns the channel
    number. *)

val channel : t -> int -> open_file option
val close_channel : t -> int -> unit
val note_file_use : t -> File_id.t -> unit
val pp : t Fmt.t
