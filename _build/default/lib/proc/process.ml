type status = Running | In_transit | Exited

type open_file = {
  chan : int;
  fid : File_id.t;
  mutable pos : int;
  mutable append : bool;
}

type t = {
  pid : Pid.t;
  mutable site : int;
  mutable parent : Pid.t option;
  mutable children : Pid.Set.t;
  mutable txid : Txid.t option;
  mutable top_level : bool;
  mutable nesting : int;
  mutable file_list : File_id.Set.t;
  mutable channels : open_file list;
  mutable next_chan : int;
  mutable status : status;
}

let create ~pid ~site ~parent =
  {
    pid;
    site;
    parent;
    children = Pid.Set.empty;
    txid = None;
    top_level = false;
    nesting = 0;
    file_list = File_id.Set.empty;
    channels = [];
    next_chan = 0;
    status = Running;
  }

let fork_child t ~pid ~site =
  {
    pid;
    site;
    parent = Some t.pid;
    children = Pid.Set.empty;
    txid = t.txid;
    top_level = false;
    nesting = t.nesting;
    file_list = File_id.Set.empty;
    channels =
      List.map
        (fun c -> { chan = c.chan; fid = c.fid; pos = c.pos; append = c.append })
        t.channels;
    next_chan = t.next_chan;
    status = Running;
  }

let in_transaction t = t.txid <> None

let owner t =
  match t.txid with
  | Some tx -> Owner.Transaction tx
  | None -> Owner.Process t.pid

let add_channel t fid =
  let chan = t.next_chan in
  t.next_chan <- chan + 1;
  t.channels <- { chan; fid; pos = 0; append = false } :: t.channels;
  chan

let channel t chan = List.find_opt (fun c -> c.chan = chan) t.channels
let close_channel t chan = t.channels <- List.filter (fun c -> c.chan <> chan) t.channels
let note_file_use t fid = t.file_list <- File_id.Set.add fid t.file_list

let pp ppf t =
  Fmt.pf ppf "%a@site%d%s%a" Pid.pp t.pid t.site
    (match t.status with Running -> "" | In_transit -> "(transit)" | Exited -> "(exited)")
    Fmt.(option (fun ppf tx -> Fmt.pf ppf " in %a" Txid.pp tx))
    t.txid
