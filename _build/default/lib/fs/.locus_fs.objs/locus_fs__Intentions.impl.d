lib/fs/intentions.ml: File_id Fmt List Marshal Owner String
