lib/fs/filestore.mli: Byte_range Bytes Cache Engine File_id Intentions Owner Volume
