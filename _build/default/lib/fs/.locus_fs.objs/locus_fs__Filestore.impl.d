lib/fs/filestore.ml: Array Byte_range Bytes Cache Costs Engine File_id Fun Hashtbl Int Intentions List Owner Range_set Stats Volume
