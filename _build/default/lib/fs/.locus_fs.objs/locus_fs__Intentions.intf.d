lib/fs/intentions.mli: File_id Fmt Owner
