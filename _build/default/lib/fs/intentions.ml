type page_commit = {
  index : int;
  slot : int;
  base_slot : int;
  ranges : (int * int) list;
  sole : bool;
}

type t = {
  fid : File_id.t;
  owner : Owner.t;
  new_size : int;
  pages : page_commit list;
}

let slots t = List.map (fun p -> p.slot) t.pages
let page_indices t = List.map (fun p -> p.index) t.pages

(* The log payload is a marshalled copy guarded by a magic prefix; a real
   system would use a fixed on-disk record format, but the recovery logic
   exercised here only needs a faithful round-trip. *)
let magic = "ILST1:"

let encode t = magic ^ Marshal.to_string t []

let decode s =
  let mlen = String.length magic in
  if String.length s > mlen && String.sub s 0 mlen = magic then
    try Some (Marshal.from_string s mlen : t) with Failure _ -> None
  else None

let pp_page ppf p =
  Fmt.pf ppf "p%d%s>%d(base %d)%a" p.index
    (if p.sole then "-" else "~")
    p.slot p.base_slot
    Fmt.(list ~sep:(any "") (fun ppf (o, l) -> Fmt.pf ppf "[%d+%d]" o l))
    p.ranges

let pp ppf t =
  Fmt.pf ppf "@[<h>intent %a %a size=%d %a@]" File_id.pp t.fid Owner.pp t.owner
    t.new_size
    Fmt.(list ~sep:(any " ") pp_page)
    t.pages
