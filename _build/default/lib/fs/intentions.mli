(** Intentions lists: the durable description of a prepared single-file
    update (§4).

    At prepare time the storage site flushes the owner's shadow pages to
    disk and builds one of these records; stored in the prepare log it is
    "enough ... to guarantee that the files can be committed when the
    transaction reaches the second phase ... regardless of local failures"
    (§4.2). Applying it (writing the inode) is the single-file commit.

    Whether a page commits by direct pointer swap (Figure 4a) or by
    differencing (Figure 4b) is decided when the intentions list is
    {e applied}, not when it is built: if another owner committed the same
    logical page in between — or had uncommitted bytes on it at prepare
    time — only this owner's [ranges] may be transferred onto the latest
    committed version. Deciding at apply time also makes application
    idempotent, so the duplicate commit messages recovery can send (§4.4)
    are harmless. *)

type page_commit = {
  index : int;  (** logical page number within the file *)
  slot : int;  (** shadow slot holding the flushed page image *)
  base_slot : int;
      (** committed slot the shadow was based on; -1 = page was a hole *)
  ranges : (int * int) list;
      (** page-relative [(offset, length)] ranges owned by this update *)
  sole : bool;
      (** no other owner had uncommitted bytes on the page at prepare *)
}

type t = {
  fid : File_id.t;
  owner : Owner.t;
  new_size : int;  (** owner's file extent; merged with [max] at commit *)
  pages : page_commit list;
}

val slots : t -> int list
(** All shadow page slots named by the intentions list. *)

val page_indices : t -> int list

val encode : t -> string
(** Serialize for the prepare log. *)

val decode : string -> t option
(** Inverse of {!encode}; [None] on corrupt input. *)

val pp : t Fmt.t
