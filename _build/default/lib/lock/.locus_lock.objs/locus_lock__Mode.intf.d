lib/lock/mode.mli: Fmt
