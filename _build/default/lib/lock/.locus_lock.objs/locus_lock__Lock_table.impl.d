lib/lock/lock_table.ml: Byte_range File_id Fmt List Mode Owner Pid Range_set
