lib/lock/mode.ml: Fmt List
