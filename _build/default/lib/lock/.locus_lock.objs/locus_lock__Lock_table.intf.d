lib/lock/lock_table.mli: Byte_range File_id Fmt Mode Owner Pid
