(** Per-site buffer cache of {e committed} page contents.

    Volatile: lost on site crash. Holding recently used clean pages is what
    makes the differencing commit cheap — the paper notes that the old
    version of a page is almost always still buffered when a commit needs
    it (§6.3), so no re-read I/O is charged on a hit. *)

type t

val create : ?capacity_pages:int -> Engine.t -> t
(** [capacity_pages] defaults to 128. *)

val read : t -> Volume.t -> int -> Bytes.t
(** [read t vol page] returns the committed contents of [vol]'s [page],
    from cache if present (no I/O), otherwise via {!Volume.read_page}
    (blocking) and caches the result. The returned bytes are a private
    copy. *)

val put : t -> Volume.t -> int -> Bytes.t -> unit
(** Install fresh committed contents (after a commit wrote the page). *)

val invalidate : t -> Volume.t -> int -> unit
val invalidate_volume : t -> vid:int -> unit
val clear : t -> unit
(** Drop everything — done when the owning site crashes. *)

val hits : t -> int
val misses : t -> int
