type key = int * int (* vid, page *)

type t = {
  engine : Engine.t;
  lru : (key, Bytes.t) Lru.t;
  mutable hits : int;
  mutable misses : int;
}

let create ?(capacity_pages = 128) engine =
  { engine; lru = Lru.create ~capacity:capacity_pages (); hits = 0; misses = 0 }

let read t vol page =
  let key = (Volume.vid vol, page) in
  match Lru.find t.lru key with
  | Some b ->
    t.hits <- t.hits + 1;
    Stats.incr (Engine.stats t.engine) "cache.hit";
    Bytes.copy b
  | None ->
    t.misses <- t.misses + 1;
    Stats.incr (Engine.stats t.engine) "cache.miss";
    let b = Volume.read_page vol page in
    ignore (Lru.put t.lru key (Bytes.copy b));
    b

let put t vol page b = ignore (Lru.put t.lru (Volume.vid vol, page) (Bytes.copy b))
let invalidate t vol page = Lru.remove t.lru (Volume.vid vol, page)
let invalidate_volume t ~vid = Lru.filter_inplace t.lru (fun (v, _) _ -> v <> vid)
let clear t = Lru.clear t.lru
let hits t = t.hits
let misses t = t.misses
