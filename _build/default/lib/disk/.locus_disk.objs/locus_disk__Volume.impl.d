lib/disk/volume.ml: Array Bytes Costs Engine Hashtbl Int List Stats
