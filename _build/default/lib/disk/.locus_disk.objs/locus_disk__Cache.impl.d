lib/disk/cache.ml: Bytes Engine Lru Stats Volume
