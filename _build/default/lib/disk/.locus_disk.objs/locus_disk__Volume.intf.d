lib/disk/volume.mli: Bytes Engine
