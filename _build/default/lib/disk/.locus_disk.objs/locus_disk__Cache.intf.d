lib/disk/cache.mli: Bytes Engine Volume
