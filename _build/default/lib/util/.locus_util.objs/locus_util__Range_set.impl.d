lib/util/range_set.ml: Byte_range Fmt List
