lib/util/byte_range.mli: Fmt
