lib/util/range_set.mli: Byte_range Fmt
