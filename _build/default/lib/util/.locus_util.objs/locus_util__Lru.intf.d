lib/util/lru.mli:
