lib/util/byte_range.ml: Fmt Int List
