(** Sets of byte offsets represented as sorted, disjoint, non-adjacent
    {!Byte_range.t} values.

    Used to track which byte ranges of a page were modified by a given
    transaction (for the page-differencing record commit of Figure 4) and
    which ranges of a file a transaction has retained locks on. *)

type t

val empty : t
val is_empty : t -> bool
val of_range : Byte_range.t -> t
val of_list : Byte_range.t list -> t

val add : Byte_range.t -> t -> t
(** [add r s] unions [r] into [s], coalescing adjacent ranges. *)

val remove : Byte_range.t -> t -> t
(** [remove r s] subtracts [r] from [s], possibly splitting ranges. *)

val mem : int -> t -> bool
val overlaps : Byte_range.t -> t -> bool

val subsumes : t -> Byte_range.t -> bool
(** [subsumes s r] is [true] iff every byte of [r] is covered by [s]. *)

val inter : t -> t -> t
val union : t -> t -> t
val diff : t -> t -> t
val disjoint : t -> t -> bool

val ranges : t -> Byte_range.t list
(** Ascending, disjoint, non-adjacent. *)

val cardinal : t -> int
(** Total number of bytes covered. *)

val fold : (Byte_range.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Byte_range.t -> unit) -> t -> unit
val equal : t -> t -> bool
val pp : t Fmt.t
