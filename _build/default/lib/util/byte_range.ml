type t = { lo : int; hi : int }

let v ~lo ~hi =
  if lo < 0 then invalid_arg "Byte_range.v: negative lo";
  if hi <= lo then invalid_arg "Byte_range.v: empty or inverted range";
  { lo; hi }

let of_pos_len ~pos ~len = v ~lo:pos ~hi:(pos + len)
let lo r = r.lo
let hi r = r.hi
let len r = r.hi - r.lo
let mem b r = r.lo <= b && b < r.hi
let overlaps a b = a.lo < b.hi && b.lo < a.hi
let adjacent_or_overlapping a b = a.lo <= b.hi && b.lo <= a.hi
let subsumes outer inner = outer.lo <= inner.lo && inner.hi <= outer.hi

let inter a b =
  let lo = max a.lo b.lo and hi = min a.hi b.hi in
  if lo < hi then Some { lo; hi } else None

let hull a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

let diff a b =
  let left = if a.lo < b.lo then [ { lo = a.lo; hi = min a.hi b.lo } ] else []
  and right = if b.hi < a.hi then [ { lo = max a.lo b.hi; hi = a.hi } ] else [] in
  List.filter (fun r -> r.lo < r.hi) (left @ right)

let compare a b =
  match Int.compare a.lo b.lo with 0 -> Int.compare a.hi b.hi | c -> c

let equal a b = a.lo = b.lo && a.hi = b.hi
let pp ppf r = Fmt.pf ppf "[%d,%d)" r.lo r.hi
