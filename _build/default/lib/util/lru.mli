(** Bounded LRU map, used for the per-site buffer cache (the paper's
    differencing commit relies on an LRU buffer pool keeping clean page
    copies, §6.3). *)

type ('k, 'v) t

val create : ?capacity:int -> unit -> ('k, 'v) t
(** [capacity] defaults to 64 entries. *)

val capacity : ('k, 'v) t -> int
val length : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** Marks the entry most-recently-used. *)

val peek : ('k, 'v) t -> 'k -> 'v option
(** Does not affect recency. *)

val mem : ('k, 'v) t -> 'k -> bool

val put : ('k, 'v) t -> 'k -> 'v -> ('k * 'v) option
(** Insert or replace. Returns the evicted least-recently-used binding if
    the cache was full. *)

val remove : ('k, 'v) t -> 'k -> unit
val filter_inplace : ('k, 'v) t -> ('k -> 'v -> bool) -> unit
val iter : ('k, 'v) t -> ('k -> 'v -> unit) -> unit
val clear : ('k, 'v) t -> unit
