(* Invariant: ranges are sorted by [lo], pairwise disjoint, and separated by
   at least one byte (adjacent ranges are coalesced on [add]). *)

type t = Byte_range.t list

let empty = []
let is_empty s = s = []
let of_range r = [ r ]
let ranges s = s
let fold f s acc = List.fold_left (fun acc r -> f r acc) acc s
let iter f s = List.iter f s
let cardinal s = List.fold_left (fun n r -> n + Byte_range.len r) 0 s
let equal a b = List.equal Byte_range.equal a b

let add r s =
  (* Walk the sorted list; absorb everything adjacent-or-overlapping into a
     growing hull. *)
  let rec go acc cur = function
    | [] -> List.rev (cur :: acc)
    | x :: rest ->
      if Byte_range.adjacent_or_overlapping cur x then
        go acc (Byte_range.hull cur x) rest
      else if Byte_range.hi cur < Byte_range.lo x then
        List.rev_append acc (cur :: x :: rest)
      else go (x :: acc) cur rest
  in
  go [] r s

let of_list rs = List.fold_left (fun s r -> add r s) empty rs

let remove r s =
  List.concat_map
    (fun x -> if Byte_range.overlaps x r then Byte_range.diff x r else [ x ])
    s

let mem b s = List.exists (Byte_range.mem b) s
let overlaps r s = List.exists (Byte_range.overlaps r) s

let subsumes s r =
  (* Bytes of [r] not covered by any range of [s]. *)
  let uncovered =
    List.fold_left
      (fun missing x ->
        List.concat_map
          (fun m -> if Byte_range.overlaps m x then Byte_range.diff m x else [ m ])
          missing)
      [ r ] s
  in
  uncovered = []

let union a b = List.fold_left (fun s r -> add r s) a b

let inter a b =
  let pieces =
    List.concat_map
      (fun ra -> List.filter_map (fun rb -> Byte_range.inter ra rb) b)
      a
  in
  of_list pieces

let diff a b = List.fold_left (fun s r -> remove r s) a b
let disjoint a b = is_empty (inter a b)
let pp ppf s = Fmt.(list ~sep:(any " ") Byte_range.pp) ppf s
