(** Half-open byte ranges [\[lo, hi)] used for record-level locking and
    record commit bookkeeping.

    A range is never empty: [lo < hi] is an invariant enforced by the
    constructors. The empty case is represented by [option] at the points
    where it can arise (e.g. {!inter}). *)

type t = private { lo : int; hi : int }

val v : lo:int -> hi:int -> t
(** [v ~lo ~hi] is the range [\[lo, hi)]. Raises [Invalid_argument] if
    [lo < 0] or [hi <= lo]. *)

val of_pos_len : pos:int -> len:int -> t
(** [of_pos_len ~pos ~len] is [v ~lo:pos ~hi:(pos + len)]. *)

val lo : t -> int
val hi : t -> int

val len : t -> int
(** [len r] is the number of bytes covered by [r]. *)

val mem : int -> t -> bool
(** [mem b r] is [true] iff byte offset [b] lies inside [r]. *)

val overlaps : t -> t -> bool
(** [overlaps a b] is [true] iff [a] and [b] share at least one byte. *)

val adjacent_or_overlapping : t -> t -> bool
(** Like {!overlaps} but also [true] when the ranges abut exactly. *)

val subsumes : t -> t -> bool
(** [subsumes outer inner] is [true] iff every byte of [inner] is in
    [outer]. *)

val inter : t -> t -> t option
(** [inter a b] is the common sub-range of [a] and [b], if any. *)

val hull : t -> t -> t
(** [hull a b] is the smallest range covering both [a] and [b]. *)

val diff : t -> t -> t list
(** [diff a b] is the portion of [a] not covered by [b]: zero, one or two
    ranges, in ascending order. *)

val compare : t -> t -> int
(** Order by [lo], then by [hi]. *)

val equal : t -> t -> bool
val pp : t Fmt.t
