(* Hash table + recency counter. [find]/[put] bump a logical clock; eviction
   scans for the minimum stamp. Capacities here are tens of entries, so the
   O(n) eviction scan is simpler than a linked list and plenty fast. *)

type ('k, 'v) entry = { value : 'v; mutable stamp : int }

type ('k, 'v) t = {
  capacity : int;
  table : ('k, ('k, 'v) entry) Hashtbl.t;
  mutable clock : int;
}

let create ?(capacity = 64) () =
  if capacity <= 0 then invalid_arg "Lru.create: non-positive capacity";
  { capacity; table = Hashtbl.create capacity; clock = 0 }

let capacity t = t.capacity
let length t = Hashtbl.length t.table

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let find t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some e ->
    e.stamp <- tick t;
    Some e.value

let peek t k = Option.map (fun e -> e.value) (Hashtbl.find_opt t.table k)
let mem t k = Hashtbl.mem t.table k

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, best) when best.stamp <= e.stamp -> acc
        | _ -> Some (k, e))
      t.table None
  in
  match victim with
  | None -> None
  | Some (k, e) ->
    Hashtbl.remove t.table k;
    Some (k, e.value)

let put t k v =
  match Hashtbl.find_opt t.table k with
  | Some e ->
    Hashtbl.replace t.table k { value = v; stamp = tick t };
    ignore e;
    None
  | None ->
    let evicted = if Hashtbl.length t.table >= t.capacity then evict_lru t else None in
    Hashtbl.replace t.table k { value = v; stamp = tick t };
    evicted

let remove t k = Hashtbl.remove t.table k

let filter_inplace t f =
  let doomed =
    Hashtbl.fold (fun k e acc -> if f k e.value then acc else k :: acc) t.table []
  in
  List.iter (Hashtbl.remove t.table) doomed

let iter t f = Hashtbl.iter (fun k e -> f k e.value) t.table
let clear t = Hashtbl.reset t.table
