(** The deadlock-resolution system process (§3.1).

    The kernel only exports its lock state; detection and the choice of
    victims are policies implemented outside it — "a variety of deadlock
    resolution and redo strategies may be implemented". This module
    packages the wait-for-graph scan with the classic victim-selection
    policies. *)

type policy =
  | Youngest_transaction
      (** abort the most recently started transaction: least work lost *)
  | Oldest_transaction
      (** abort the oldest: unblocks the most waiters in long convoys *)
  | Fewest_locks
      (** abort the owner holding the fewest locks across all sites: the
          cheapest rollback *)

val pp_policy : policy Fmt.t

val victims : policy -> Locus_lock.Lock_table.t list -> Owner.t list
(** Build the global wait-for graph from the exported lock state and pick
    one victim per cycle under the given policy. Transactions are always
    preferred over plain processes as victims. Deterministic. *)

val scan_report :
  Locus_lock.Lock_table.t list ->
  [ `No_deadlock | `Deadlocked of Owner.t list list ]
(** Diagnostic form: the list of distinct cycles (victim selection left to
    the caller). *)
