(** Wait-for graphs and cycle detection.

    The Locus kernel does not detect deadlock; it exports lock state so a
    system process can build the wait-for graph and apply conventional
    techniques (§3.1, citing [Coffman 71]). This module is that system
    process's library: build a graph from {!Locus_lock.Lock_table.waits_for}
    exports gathered across sites, find cycles, pick victims. *)

type t

val create : unit -> t
val add_edge : t -> waiter:Owner.t -> blocker:Owner.t -> unit
val add_table : t -> Locus_lock.Lock_table.t -> unit

val of_tables : Locus_lock.Lock_table.t list -> t
(** Union of all edges exported by the given lock tables. *)

val edges : t -> (Owner.t * Owner.t) list
val nodes : t -> Owner.t list

val find_cycle : t -> Owner.t list option
(** Some cycle [o1; o2; ...; on] with [o1] waiting on [o2], ..., [on]
    waiting on [o1]; [None] if the graph is acyclic. Deterministic: the
    same graph always yields the same cycle. *)

val victims : ?prefer:(Owner.t -> Owner.t -> int) -> t -> Owner.t list
(** Minimal set of owners whose removal (abort) breaks every cycle, chosen
    greedily one cycle at a time. [prefer] orders candidates within a
    cycle (greater = preferred victim); the default prefers transactions
    over plain processes and younger transactions over older ones, so the
    least work is lost. *)

val remove : t -> Owner.t -> unit
val pp : t Fmt.t
