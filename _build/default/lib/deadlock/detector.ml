type policy = Youngest_transaction | Oldest_transaction | Fewest_locks

let pp_policy ppf p =
  Fmt.string ppf
    (match p with
    | Youngest_transaction -> "youngest-transaction"
    | Oldest_transaction -> "oldest-transaction"
    | Fewest_locks -> "fewest-locks")

let lock_counts tables =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun table ->
      List.iter
        (fun (l : Locus_lock.Lock_table.lock) ->
          let o = l.Locus_lock.Lock_table.owner in
          Hashtbl.replace counts o
            (1 + Option.value (Hashtbl.find_opt counts o) ~default:0))
        (Locus_lock.Lock_table.locks table))
    tables;
  fun o -> Option.value (Hashtbl.find_opt counts o) ~default:0

(* Return > 0 when [a] is the preferred victim over [b]. Transactions
   always beat plain processes as victims; ties fall back to id order so
   the choice stays deterministic. *)
let prefer policy tables =
  let count = lazy (lock_counts tables) in
  fun a b ->
    match (a, b) with
    | Owner.Transaction x, Owner.Transaction y -> (
      match policy with
      | Youngest_transaction -> Txid.compare x y
      | Oldest_transaction -> Txid.compare y x
      | Fewest_locks -> (
        match Int.compare (Lazy.force count b) (Lazy.force count a) with
        | 0 -> Txid.compare x y
        | c -> c))
    | Owner.Transaction _, Owner.Process _ -> 1
    | Owner.Process _, Owner.Transaction _ -> -1
    | Owner.Process x, Owner.Process y -> Pid.compare x y

let victims policy tables =
  let g = Wfg.of_tables tables in
  Wfg.victims ~prefer:(prefer policy tables) g

let scan_report tables =
  let g = Wfg.of_tables tables in
  let rec collect acc =
    match Wfg.find_cycle g with
    | None -> List.rev acc
    | Some cycle ->
      List.iter (Wfg.remove g) cycle;
      collect (cycle :: acc)
  in
  match collect [] with [] -> `No_deadlock | cycles -> `Deadlocked cycles
