type t = { mutable adj : Owner.Set.t Owner.Map.t }

let create () = { adj = Owner.Map.empty }

let add_node t o =
  if not (Owner.Map.mem o t.adj) then t.adj <- Owner.Map.add o Owner.Set.empty t.adj

let add_edge t ~waiter ~blocker =
  add_node t waiter;
  add_node t blocker;
  t.adj <-
    Owner.Map.update waiter
      (function
        | Some s -> Some (Owner.Set.add blocker s)
        | None -> Some (Owner.Set.singleton blocker))
      t.adj

let add_table t table =
  List.iter
    (fun (waiter, blockers) ->
      List.iter (fun blocker -> add_edge t ~waiter ~blocker) blockers)
    (Locus_lock.Lock_table.waits_for table)

let of_tables tables =
  let t = create () in
  List.iter (add_table t) tables;
  t

let edges t =
  Owner.Map.fold
    (fun waiter blockers acc ->
      Owner.Set.fold (fun blocker acc -> (waiter, blocker) :: acc) blockers acc)
    t.adj []
  |> List.rev

let nodes t = List.map fst (Owner.Map.bindings t.adj)

(* DFS with the classic three colors; traversal order follows the map's
   key order, so results are deterministic. *)
let find_cycle t =
  let state = Hashtbl.create 16 in
  let rec visit path o =
    match Hashtbl.find_opt state o with
    | Some `Done -> None
    | Some `Active ->
      (* Found a back edge: the cycle is the suffix of [path] from [o]. *)
      let rec take = function
        | [] -> []
        | x :: rest -> if Owner.equal x o then [ x ] else x :: take rest
      in
      Some (List.rev (take path))
    | None ->
      Hashtbl.replace state o `Active;
      let succ =
        match Owner.Map.find_opt o t.adj with
        | Some s -> Owner.Set.elements s
        | None -> []
      in
      let rec try_succ = function
        | [] ->
          Hashtbl.replace state o `Done;
          None
        | s :: rest -> (
          match visit (o :: path) s with Some c -> Some c | None -> try_succ rest)
      in
      try_succ succ
  in
  let rec scan = function
    | [] -> None
    | o :: rest -> ( match visit [] o with Some c -> Some c | None -> scan rest)
  in
  scan (nodes t)

let remove t o =
  t.adj <- Owner.Map.remove o t.adj;
  t.adj <- Owner.Map.map (fun s -> Owner.Set.remove o s) t.adj

(* Default victim preference: abort a transaction rather than block a
   plain process, and among transactions the youngest (largest sequence
   number) — it has probably done the least work. *)
let default_prefer a b =
  match (a, b) with
  | Owner.Transaction x, Owner.Transaction y -> Txid.compare x y
  | Owner.Transaction _, Owner.Process _ -> 1
  | Owner.Process _, Owner.Transaction _ -> -1
  | Owner.Process x, Owner.Process y -> Pid.compare x y

let victims ?(prefer = default_prefer) t =
  let g = { adj = t.adj } in
  let rec go acc =
    match find_cycle g with
    | None -> List.rev acc
    | Some cycle ->
      let victim =
        List.fold_left
          (fun best o ->
            match best with
            | None -> Some o
            | Some b -> if prefer o b > 0 then Some o else best)
          None cycle
      in
      let victim = Option.get victim in
      remove g victim;
      go (victim :: acc)
  in
  go []

let pp ppf t =
  List.iter
    (fun (w, b) -> Fmt.pf ppf "%a -> %a@." Owner.pp w Owner.pp b)
    (edges t)
