lib/deadlock/detector.ml: Fmt Hashtbl Int Lazy List Locus_lock Option Owner Pid Txid Wfg
