lib/deadlock/detector.mli: Fmt Locus_lock Owner
