lib/deadlock/wfg.mli: Fmt Locus_lock Owner
