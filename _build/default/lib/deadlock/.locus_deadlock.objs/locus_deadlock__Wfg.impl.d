lib/deadlock/wfg.ml: Fmt Hashtbl List Locus_lock Option Owner Pid Txid
