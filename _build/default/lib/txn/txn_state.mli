(** Volatile registry of active transactions, kept at the site of each
    transaction's top-level process (and migrating with it, §4.1).

    Tracks live member processes and the merged file-list. When the last
    child has exited and the top-level process reaches the transaction
    endpoint, the file-list here is the complete list of files used by the
    whole transaction, ready to drive two-phase commit. *)

type phase = Active | Committing | Aborting | Finished

type txn = {
  txid : Txid.t;
  mutable top_pid : Pid.t;
  mutable live_members : int;  (** member processes still running, incl. top *)
  mutable file_list : (File_id.t * int) list;  (** merged, with storage sites *)
  mutable phase : phase;
}

type t

val create : unit -> t

val start : t -> txid:Txid.t -> top_pid:Pid.t -> txn
val find : t -> Txid.t -> txn option
val find_exn : t -> Txid.t -> txn
val remove : t -> Txid.t -> unit
val active : t -> txn list

val adopt : t -> txn -> unit
(** Install a transaction record that migrated here with its top-level
    process. *)

val release : t -> Txid.t -> txn option
(** Detach the record for shipment during migration. *)

val member_joined : t -> Txid.t -> unit
val member_exited : t -> Txid.t -> unit

val merge_files : txn -> (File_id.t * int) list -> unit
(** Merge a (child's) file-list into the transaction's list (§4.1). *)

val crash : t -> unit
