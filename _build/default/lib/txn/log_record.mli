(** Durable log record formats for the two outer log levels of §4.2.

    The third level — per-file shadow pages — is not a log record: it is
    the flushed pages themselves plus the intentions lists embedded in the
    prepare records. *)

type status = Unknown | Committed | Aborted

val pp_status : status Fmt.t

type coordinator = {
  txid : Txid.t;
  files : (File_id.t * int) list;  (** every file used, with its storage site *)
  status : status;  (** flipping this to [Committed] {e is} the commit point *)
}

type prepare = {
  txid : Txid.t;
  coordinator_site : int;
      (** where to ask for the outcome if this site reboots while in doubt *)
  intentions : Intentions.t list;
      (** one per modified file stored on this record's volume *)
  locked : File_id.t list;
      (** files this transaction had locked here (lock list summary) *)
}

type t = Coordinator of coordinator | Prepare of prepare

val coord_tag : string
val prepare_tag : string
(** Tags used in {!Locus_disk.Volume.log_append} so recovery can scan by
    record kind. *)

val encode : t -> string
val decode : string -> t option
val pp : t Fmt.t
