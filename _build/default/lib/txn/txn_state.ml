type phase = Active | Committing | Aborting | Finished

type txn = {
  txid : Txid.t;
  mutable top_pid : Pid.t;
  mutable live_members : int;
  mutable file_list : (File_id.t * int) list;
  mutable phase : phase;
}

type t = { mutable txns : txn Txid.Map.t }

let create () = { txns = Txid.Map.empty }

let start t ~txid ~top_pid =
  let txn = { txid; top_pid; live_members = 1; file_list = []; phase = Active } in
  t.txns <- Txid.Map.add txid txn t.txns;
  txn

let find t txid = Txid.Map.find_opt txid t.txns

let find_exn t txid =
  match find t txid with
  | Some txn -> txn
  | None -> invalid_arg "Txn_state: unknown transaction"

let remove t txid = t.txns <- Txid.Map.remove txid t.txns
let active t = List.map snd (Txid.Map.bindings t.txns)

let adopt t txn = t.txns <- Txid.Map.add txn.txid txn t.txns

let release t txid =
  let txn = find t txid in
  remove t txid;
  txn

let member_joined t txid =
  match find t txid with
  | Some txn -> txn.live_members <- txn.live_members + 1
  | None -> ()

let member_exited t txid =
  match find t txid with
  | Some txn -> txn.live_members <- max 0 (txn.live_members - 1)
  | None -> ()

let merge_files txn files =
  List.iter
    (fun (fid, site) ->
      if not (List.exists (fun (f, _) -> File_id.equal f fid) txn.file_list) then
        txn.file_list <- (fid, site) :: txn.file_list)
    files

let crash t = t.txns <- Txid.Map.empty
