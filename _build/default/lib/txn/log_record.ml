type status = Unknown | Committed | Aborted

let pp_status ppf = function
  | Unknown -> Fmt.string ppf "unknown"
  | Committed -> Fmt.string ppf "committed"
  | Aborted -> Fmt.string ppf "aborted"

type coordinator = {
  txid : Txid.t;
  files : (File_id.t * int) list;
  status : status;
}

type prepare = {
  txid : Txid.t;
  coordinator_site : int;
  intentions : Intentions.t list;
  locked : File_id.t list;
}

type t = Coordinator of coordinator | Prepare of prepare

let coord_tag = "coord"
let prepare_tag = "prep"
let magic = "TLOG1:"

let encode t = magic ^ Marshal.to_string t []

let decode s =
  let mlen = String.length magic in
  if String.length s > mlen && String.sub s 0 mlen = magic then
    try Some (Marshal.from_string s mlen : t) with Failure _ -> None
  else None

let pp ppf = function
  | Coordinator c ->
    Fmt.pf ppf "@[<h>coord %a %a [%a]@]" Txid.pp c.txid pp_status c.status
      Fmt.(
        list ~sep:(any ", ") (fun ppf (fid, site) ->
            Fmt.pf ppf "%a@%d" File_id.pp fid site))
      c.files
  | Prepare p ->
    Fmt.pf ppf "@[<h>prepare %a coord@%d %d file(s)@]" Txid.pp p.txid
      p.coordinator_site
      (List.length p.intentions)
