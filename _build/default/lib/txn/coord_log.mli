(** The coordinator log (first log level, §4.2).

    One per site, kept on a volume stored at that site. A record is
    written with status [Unknown] before any prepare message goes out;
    overwriting the status to [Committed] is the transaction's commit
    point; the record is retained until phase-2 processing has finished
    everywhere (§4.4), then deleted.

    The volatile [index] map is rebuilt by {!scan} after a crash. *)

type t

val create : Volume.t -> t
val volume : t -> Volume.t

val begin_commit : t -> txid:Txid.t -> files:(File_id.t * int) list -> unit
(** Write the initial [Unknown] record — one log I/O (Figure 5 step 1).
    Must run in a fiber. *)

val decide : t -> txid:Txid.t -> Log_record.status -> unit
(** Overwrite the record's status — the commit (or abort) point, one log
    I/O (Figure 5 step 4). Must run in a fiber. Raises [Invalid_argument]
    if no record for the transaction exists. *)

val finished : t -> txid:Txid.t -> unit
(** Drop the record once all participants acknowledged phase 2 (§4.4). *)

val outcome : t -> Txid.t -> Log_record.status option
(** What this coordinator knows about the transaction: [None] = no record
    (either never coordinated here, or already finished — in-doubt
    participants must abort, the presumed-abort convention). *)

val scan : t -> Log_record.coordinator list
(** All live coordinator records, for the reboot-time recovery pass
    (§4.4). Rebuilds the volatile index as a side effect. Charges one read
    I/O per record. Must run in a fiber. *)

val pending : t -> (Txid.t * Log_record.coordinator) list
(** Volatile view of live records. *)
