type t = {
  vol : Volume.t;
  mutable index : (Txid.t * (int * Log_record.coordinator)) list;  (* volatile *)
}

let create vol = { vol; index = [] }
let volume t = t.vol

let begin_commit t ~txid ~files =
  let record = { Log_record.txid; files; status = Log_record.Unknown } in
  let idx =
    Volume.log_append t.vol ~tag:Log_record.coord_tag
      (Log_record.encode (Log_record.Coordinator record))
  in
  t.index <- (txid, (idx, record)) :: t.index

let find t txid =
  List.find_opt (fun (tx, _) -> Txid.equal tx txid) t.index |> Option.map snd

let decide t ~txid status =
  match find t txid with
  | None -> invalid_arg "Coord_log.decide: unknown transaction"
  | Some (idx, record) ->
    let record = { record with Log_record.status } in
    Volume.log_overwrite t.vol idx ~tag:Log_record.coord_tag
      (Log_record.encode (Log_record.Coordinator record));
    t.index <-
      (txid, (idx, record))
      :: List.filter (fun (tx, _) -> not (Txid.equal tx txid)) t.index

let finished t ~txid =
  match find t txid with
  | None -> ()
  | Some (idx, _) ->
    Volume.log_delete t.vol idx;
    t.index <- List.filter (fun (tx, _) -> not (Txid.equal tx txid)) t.index

let outcome t txid = Option.map (fun (_, r) -> r.Log_record.status) (find t txid)

let scan t =
  t.index <- [];
  let records =
    List.filter_map
      (fun (idx, tag, payload) ->
        if tag <> Log_record.coord_tag then None
        else
          match Log_record.decode payload with
          | Some (Log_record.Coordinator c) -> Some (idx, c)
          | Some (Log_record.Prepare _) | None -> None)
      (Volume.log_records t.vol)
  in
  List.iter
    (fun ((idx : int), (c : Log_record.coordinator)) ->
      (* One read I/O per surviving record examined at reboot. *)
      let (_ : Bytes.t) = Volume.read_page t.vol 0 in
      t.index <- (c.Log_record.txid, (idx, c)) :: t.index)
    records;
  List.map snd records

let pending t = List.map (fun (tx, (_, r)) -> (tx, r)) t.index
