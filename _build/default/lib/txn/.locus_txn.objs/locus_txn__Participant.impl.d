lib/txn/participant.ml: Bytes File_id Filestore Hashtbl Intentions List Log_record Option Owner Txid Volume
