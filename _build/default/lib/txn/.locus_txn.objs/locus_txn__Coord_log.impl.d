lib/txn/coord_log.ml: Bytes List Log_record Option Txid Volume
