lib/txn/coord_log.mli: File_id Log_record Txid Volume
