lib/txn/txn_state.ml: File_id List Pid Txid
