lib/txn/log_record.ml: File_id Fmt Intentions List Marshal String Txid
