lib/txn/log_record.mli: File_id Fmt Intentions Txid
