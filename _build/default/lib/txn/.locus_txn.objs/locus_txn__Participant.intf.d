lib/txn/participant.mli: File_id Filestore Intentions Txid
