lib/txn/txn_state.mli: File_id Pid Txid
