type t = int

let equal = Int.equal
let compare = Int.compare
let pp ppf s = Fmt.pf ppf "site%d" s

module Set = Set.Make (Int)
module Map = Map.Make (Int)
