(** Site (network node) identifiers.

    A Locus network is a set of sites, each running a kernel instance.
    Sites are numbered densely from 0. *)

type t = int

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
