lib/net/transport.mli: Engine Fmt Site
