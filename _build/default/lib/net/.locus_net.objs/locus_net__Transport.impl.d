lib/net/transport.ml: Array Costs Engine Fmt Fun List Printf Site Stats
