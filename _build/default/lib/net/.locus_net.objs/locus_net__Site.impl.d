lib/net/site.ml: Fmt Int Map Set
