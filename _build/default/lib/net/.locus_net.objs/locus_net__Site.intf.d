lib/net/site.mli: Fmt Map Set
