(* Each frame stores its writes as a sorted list of (pos, bytes) extents
   (kept disjoint by merging on write); the base is a growable byte
   image. *)

type frame = { mutable extents : (int * Bytes.t) list (* sorted by pos, disjoint *) }

type t = {
  mutable base : Bytes.t;
  mutable base_size : int;
  mutable frames : frame list;  (* top first *)
}

let create () = { base = Bytes.create 0; base_size = 0; frames = [] }
let depth t = List.length t.frames
let push t = t.frames <- { extents = [] } :: t.frames

(* Merge a write into a frame's extent list, coalescing overlaps. *)
let frame_write frame ~pos data =
  let lo = pos and hi = pos + Bytes.length data in
  (* Collect extents overlapping-or-adjacent to the new write. *)
  let touching, rest =
    List.partition
      (fun (p, b) -> p <= hi && lo <= p + Bytes.length b)
      frame.extents
  in
  let new_lo = List.fold_left (fun acc (p, _) -> min acc p) lo touching in
  let new_hi =
    List.fold_left (fun acc (p, b) -> max acc (p + Bytes.length b)) hi touching
  in
  let merged = Bytes.create (new_hi - new_lo) in
  (* Old extents first, then the new data on top. *)
  List.iter
    (fun (p, b) -> Bytes.blit b 0 merged (p - new_lo) (Bytes.length b))
    touching;
  Bytes.blit data 0 merged (lo - new_lo) (Bytes.length data);
  frame.extents <-
    List.sort (fun (a, _) (b, _) -> Int.compare a b) ((new_lo, merged) :: rest)

let write t ~pos data =
  match t.frames with
  | [] -> invalid_arg "Version_stack.write: no open frame"
  | top :: _ -> if Bytes.length data > 0 then frame_write top ~pos data

let committed t ~pos ~len =
  let out = Bytes.make len '\000' in
  let avail = max 0 (min len (t.base_size - pos)) in
  if avail > 0 then Bytes.blit t.base pos out 0 avail;
  out

let read t ~pos ~len =
  let out = committed t ~pos ~len in
  (* Apply frames bottom (oldest) to top so the newest write wins. *)
  List.iter
    (fun frame ->
      List.iter
        (fun (p, b) ->
          let lo = max pos p and hi = min (pos + len) (p + Bytes.length b) in
          if lo < hi then Bytes.blit b (lo - p) out (lo - pos) (hi - lo))
        frame.extents)
    (List.rev t.frames);
  out

let ensure_base t n =
  if Bytes.length t.base < n then begin
    let bigger = Bytes.make (max n (max 256 (2 * Bytes.length t.base))) '\000' in
    Bytes.blit t.base 0 bigger 0 (Bytes.length t.base);
    t.base <- bigger
  end

let commit_top t =
  match t.frames with
  | [] -> invalid_arg "Version_stack.commit_top: no open frame"
  | [ top ] ->
    (* Outermost frame: merge into the committed base. *)
    List.iter
      (fun (p, b) ->
        ensure_base t (p + Bytes.length b);
        Bytes.blit b 0 t.base p (Bytes.length b);
        t.base_size <- max t.base_size (p + Bytes.length b))
      top.extents;
    t.frames <- []
  | top :: parent :: rest ->
    List.iter (fun (p, b) -> frame_write parent ~pos:p b) top.extents;
    t.frames <- parent :: rest

let abort_top t =
  match t.frames with
  | [] -> invalid_arg "Version_stack.abort_top: no open frame"
  | _ :: rest -> t.frames <- rest

let size t =
  List.fold_left
    (fun acc frame ->
      List.fold_left (fun acc (p, b) -> max acc (p + Bytes.length b)) acc frame.extents)
    t.base_size t.frames

let frame_bytes t =
  List.fold_left
    (fun acc frame ->
      List.fold_left (fun acc (_, b) -> acc + Bytes.length b) acc frame.extents)
    0 t.frames
