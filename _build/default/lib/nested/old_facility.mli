(** A reconstruction of the {e previous} Locus transaction facility
    ([Mueller83], [Moore82]) used as the §7.1 comparison baseline.

    Characteristics the paper criticizes, all reproduced here:

    - {b process-based}: every transaction {e and every subtransaction} is
      run by creating a new heavyweight process (we charge the full
      process-creation cost and spawn a real fiber);
    - {b fully nested}: subtransactions are first-class, implemented with
      per-file version stacks ({!Version_stack}) whose frames must be
      merged on every subcommit;
    - {b whole-file locking}: a transaction's first access to a file takes
      an exclusive lock on the entire file, held to top-level commit;
    - {b single-site}: the 1983 prototype ran centralized; there is no
      distribution, migration, or remote fork here.

    The E13 bench runs identical work through this facility and through
    the paper's BeginTrans/EndTrans facility and compares per-transaction
    cost and nesting overhead. *)

type t
type file
type txn

type outcome = Committed | Aborted

val create : Engine.t -> t
(** Must run where an engine exists; operations must run in fibers. *)

val create_file : t -> string -> file
val lookup : t -> string -> file option

val committed_contents : t -> file -> string
(** Test oracle: the durably committed image. *)

val io_count : t -> int
(** Disk I/Os charged by commits so far. *)

exception Abort_requested

val run_transaction : t -> (txn -> unit) -> outcome
(** Run a top-level transaction: creates a transaction process (fiber +
    full process-creation CPU charge), acquires whole-file locks as files
    are touched, commits on return or rolls back if {!abort} was called
    (or the function raised). Blocks the calling fiber until done. *)

val subtransaction : txn -> (txn -> unit) -> outcome
(** Run a fully-nested subtransaction: another process creation, a version
    frame pushed on every file the transaction has touched, frame merge on
    commit. An aborted subtransaction only discards its own frame. *)

val read : txn -> file -> pos:int -> len:int -> Bytes.t
val write : txn -> file -> pos:int -> Bytes.t -> unit

val abort : txn -> 'a
(** Abort the current (sub)transaction: raises {!Abort_requested}, caught
    by the enclosing {!run_transaction} / {!subtransaction}. *)
