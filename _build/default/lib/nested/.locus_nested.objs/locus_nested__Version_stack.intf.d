lib/nested/version_stack.mli: Bytes
