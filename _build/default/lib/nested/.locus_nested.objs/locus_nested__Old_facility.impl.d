lib/nested/old_facility.ml: Bytes Costs Engine Hashtbl List Stats Version_stack
