lib/nested/old_facility.mli: Bytes Engine
