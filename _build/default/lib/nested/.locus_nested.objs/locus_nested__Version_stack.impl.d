lib/nested/version_stack.ml: Bytes Int List
