type outcome = Committed | Aborted

exception Abort_requested

type file = {
  name : string;
  stack : Version_stack.t;
  mutable locked_by : int option;  (* top-level transaction id *)
  mutable lock_queue : unit Engine.Ivar.t list;
}

type t = {
  engine : Engine.t;
  files : (string, file) Hashtbl.t;
  mutable next_tid : int;
  mutable ios : int;
}

type txn = {
  fac : t;
  tid : int;  (* top-level transaction id (shared by subtransactions) *)
  mutable touched : file list;  (* files with a frame pushed at this level *)
  parent : txn option;
}

let create engine = { engine; files = Hashtbl.create 16; next_tid = 0; ios = 0 }

let create_file t name =
  if Hashtbl.mem t.files name then invalid_arg "Old_facility.create_file: exists";
  let f = { name; stack = Version_stack.create (); locked_by = None; lock_queue = [] } in
  Hashtbl.replace t.files name f;
  f

let lookup t name = Hashtbl.find_opt t.files name

let committed_contents t f =
  ignore t;
  let size = Version_stack.size f.stack in
  Bytes.to_string (Version_stack.committed f.stack ~pos:0 ~len:size)

let io_count t = t.ios

let costs t = Engine.costs t.engine

(* Whole-file exclusive locking, held until top-level commit (§7.1: the
   previous design performed locking at the file level). *)
let rec acquire_file txn f =
  match f.locked_by with
  | Some tid when tid = txn.tid -> ()
  | None -> f.locked_by <- Some txn.tid
  | Some _ ->
    let iv = Engine.Ivar.create () in
    f.lock_queue <- f.lock_queue @ [ iv ];
    Engine.await iv;
    acquire_file txn f

let release_file t f =
  f.locked_by <- None;
  match f.lock_queue with
  | [] -> ()
  | iv :: rest ->
    f.lock_queue <- rest;
    Engine.fill t.engine iv ()

(* Ensure this (sub)transaction level has its own frame on the file. *)
let touch txn f =
  acquire_file txn f;
  if not (List.memq f txn.touched) then begin
    Version_stack.push f.stack;
    txn.touched <- f :: txn.touched
  end

let read txn f ~pos ~len =
  touch txn f;
  Engine.consume txn.fac.engine
    ~instr:((costs txn.fac).Costs.rw_base_instr + Costs.copy_instr (costs txn.fac) ~bytes:len);
  Version_stack.read f.stack ~pos ~len

let write txn f ~pos data =
  touch txn f;
  Engine.consume txn.fac.engine
    ~instr:
      ((costs txn.fac).Costs.rw_base_instr
      + Costs.copy_instr (costs txn.fac) ~bytes:(Bytes.length data));
  Version_stack.write f.stack ~pos data

let abort _txn = raise Abort_requested

(* Frame merge bookkeeping: the paper calls this the expensive part of the
   old design. Charge copy cost for every buffered byte moved. *)
let merge_cost txn =
  List.fold_left
    (fun acc f -> acc + Version_stack.frame_bytes f.stack)
    0 txn.touched

let commit_frames txn =
  Engine.consume txn.fac.engine
    ~instr:
      ((costs txn.fac).Costs.commit_merge_instr * max 1 (List.length txn.touched)
      + Costs.copy_instr (costs txn.fac) ~bytes:(merge_cost txn));
  List.iter (fun f -> Version_stack.commit_top f.stack) txn.touched

let abort_frames txn = List.iter (fun f -> Version_stack.abort_top f.stack) txn.touched

(* Durable commit of a top-level transaction: write the dirty bytes as
   pages plus a commit record. *)
let durable_commit txn =
  let t = txn.fac in
  let dirty = merge_cost txn in
  let pages = max 1 ((dirty + 1023) / 1024) in
  for _ = 1 to pages + 1 (* data pages + commit record *) do
    t.ios <- t.ios + 1;
    Stats.incr (Engine.stats t.engine) "nested.io";
    Engine.sleep (Costs.disk_io_us (Engine.costs t.engine) ~bytes:1024)
  done

(* Run [body] as a new heavyweight transaction process: a real fiber plus
   the full process-creation charge (§7.1: "the creation of a new
   Unix-style heavy-weight process for each transaction was judged too
   expensive"). *)
let in_transaction_process t body =
  Engine.consume t.engine ~instr:(Engine.costs t.engine).Costs.fork_instr;
  Stats.incr (Engine.stats t.engine) "nested.processes";
  let done_iv = Engine.Ivar.create () in
  ignore
    (Engine.spawn ~name:"old-txn-proc" t.engine (fun () ->
         let result = try Ok (body ()) with e -> Error e in
         Engine.fill t.engine done_iv result));
  match Engine.await done_iv with
  | Ok v -> v
  | Error e -> raise e

let run_transaction t body =
  t.next_tid <- t.next_tid + 1;
  let tid = t.next_tid in
  let txn = { fac = t; tid; touched = []; parent = None } in
  let result =
    in_transaction_process t (fun () ->
        match body txn with
        | () -> Committed
        | exception Abort_requested -> Aborted)
  in
  (match result with
  | Committed ->
    (* Merge the outermost frames into the base, then write. *)
    durable_commit txn;
    commit_frames txn
  | Aborted -> abort_frames txn);
  List.iter (release_file t) txn.touched;
  result

let subtransaction parent body =
  let t = parent.fac in
  let txn = { fac = t; tid = parent.tid; touched = []; parent = Some parent } in
  (* The files the enclosing levels touched also need fresh frames so the
     subtransaction's writes can be undone independently. *)
  let rec inherited p =
    match p with
    | None -> []
    | Some p -> p.touched @ inherited p.parent
  in
  List.iter
    (fun f ->
      if not (List.memq f txn.touched) then begin
        Version_stack.push f.stack;
        txn.touched <- f :: txn.touched
      end)
    (inherited (Some parent));
  let result =
    in_transaction_process t (fun () ->
        match body txn with
        | () -> Committed
        | exception Abort_requested -> Aborted)
  in
  (match result with
  | Committed -> commit_frames txn
  | Aborted -> abort_frames txn);
  (* Files first touched at this level stay locked by the top-level
     transaction (2PL); hand them to the parent's bookkeeping. *)
  List.iter
    (fun f ->
      if not (List.memq f parent.touched) then begin
        (* The parent needs its own frame to continue using the file. *)
        Version_stack.push f.stack;
        parent.touched <- f :: parent.touched
      end)
    txn.touched;
  result
