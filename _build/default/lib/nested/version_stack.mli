(** Version stacks — the intra-transaction synchronization mechanism of
    the {e previous} Locus transaction facility ([Mueller83], [Moore82]),
    which the paper's design explicitly abandons (§2, §7.1: "version
    stacks and version trees ... are unnecessary when full-nested
    transactions are avoided").

    Each open file carries a stack of versions, one per live
    (sub)transaction frame. A subtransaction reads through the stack top;
    its writes go to its own frame; committing a subtransaction merges its
    frame into the parent's, aborting discards it. This module implements
    the data structure so the old facility can be reconstructed as a
    baseline and its bookkeeping costs measured (bench E13). *)

type t

val create : unit -> t
(** A file image with no open frames: only the committed base version. *)

val depth : t -> int
(** Number of live frames (the transaction nesting depth). *)

val push : t -> unit
(** Open a frame for a new subtransaction. *)

val read : t -> pos:int -> len:int -> Bytes.t
(** Read through the stack: the topmost frame that wrote each byte wins,
    falling through to the committed base. Zero-filled past EOF. *)

val write : t -> pos:int -> Bytes.t -> unit
(** Write into the top frame. Raises [Invalid_argument] if no frame is
    open. *)

val commit_top : t -> unit
(** Merge the top frame into its parent (or into the committed base when
    it is the outermost frame). *)

val abort_top : t -> unit
(** Discard the top frame. *)

val committed : t -> pos:int -> len:int -> Bytes.t
(** The base version, ignoring all open frames. *)

val size : t -> int
(** Visible size through the whole stack. *)

val frame_bytes : t -> int
(** Total bytes buffered across open frames — the bookkeeping the paper
    calls expensive. *)
