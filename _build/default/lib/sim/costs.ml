type t = {
  instr_ns : int;
  syscall_instr : int;
  lock_request_instr : int;
  lock_cache_instr : int;
  msg_latency_us : int;
  msg_cpu_instr : int;
  disk_latency_us : int;
  disk_per_kib_us : int;
  copy_byte_instr_x16 : int;
  commit_base_instr : int;
  commit_merge_instr : int;
  flush_page_instr : int;
  rw_base_instr : int;
  fork_instr : int;
  migrate_instr : int;
}

let default =
  {
    instr_ns = 2000;
    syscall_instr = 250;
    lock_request_instr = 750;
    lock_cache_instr = 100;
    msg_latency_us = 6500;
    msg_cpu_instr = 750;
    disk_latency_us = 25000;
    disk_per_kib_us = 1000;
    copy_byte_instr_x16 = 8;
    commit_base_instr = 7800;
    commit_merge_instr = 1200;
    flush_page_instr = 1000;
    rw_base_instr = 300;
    fork_instr = 4000;
    migrate_instr = 10000;
  }

let fast_lan =
  {
    default with
    instr_ns = 200;
    msg_latency_us = 650;
    disk_latency_us = 8000;
    disk_per_kib_us = 100;
  }

let instr_us t n = n * t.instr_ns / 1000

let disk_io_us t ~bytes = t.disk_latency_us + (bytes * t.disk_per_kib_us / 1024)

let copy_instr t ~bytes = (bytes + 15) / 16 * t.copy_byte_instr_x16
