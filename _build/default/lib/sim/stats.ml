type t = {
  counters : (string, int ref) Hashtbl.t;
  series : (string, int list ref) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 32; series = Hashtbl.create 32 }

let counter_ref t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t.counters name r;
    r

let incr t name = incr (counter_ref t name)
let add t name n = counter_ref t name := !(counter_ref t name) + n
let get t name = match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0
let reset t name = match Hashtbl.find_opt t.counters name with Some r -> r := 0 | None -> ()

let reset_all t =
  Hashtbl.iter (fun _ r -> r := 0) t.counters;
  Hashtbl.reset t.series

let counters t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let sample t name v =
  match Hashtbl.find_opt t.series name with
  | Some r -> r := v :: !r
  | None -> Hashtbl.add t.series name (ref [ v ])

let samples t name =
  match Hashtbl.find_opt t.series name with Some r -> List.rev !r | None -> []

module Summary = struct
  type t = { n : int; mean : float; min : int; max : int; p50 : int; p95 : int }

  let pp ppf s =
    Fmt.pf ppf "n=%d mean=%.1f min=%d p50=%d p95=%d max=%d" s.n s.mean s.min
      s.p50 s.p95 s.max
end

let summary t name =
  match samples t name with
  | [] -> None
  | xs ->
    let a = Array.of_list xs in
    Array.sort Int.compare a;
    let n = Array.length a in
    let pct p = a.(min (n - 1) (p * n / 100)) in
    let total = Array.fold_left ( + ) 0 a in
    Some
      Summary.
        {
          n;
          mean = float_of_int total /. float_of_int n;
          min = a.(0);
          max = a.(n - 1);
          p50 = pct 50;
          p95 = pct 95;
        }

let pp ppf t =
  List.iter (fun (k, v) -> Fmt.pf ppf "%-40s %d@." k v) (counters t);
  let names = Hashtbl.fold (fun k _ acc -> k :: acc) t.series [] in
  List.iter
    (fun k ->
      match summary t k with
      | Some s -> Fmt.pf ppf "%-40s %a@." k Summary.pp s
      | None -> ())
    (List.sort String.compare names)
