type 'a entry = { time : int; seq : int; value : 'a }

type 'a t = { mutable arr : 'a entry array; mutable size : int }

let create () = { arr = [||]; size = 0 }
let is_empty t = t.size = 0
let length t = t.size

let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let cap = Array.length t.arr in
  if t.size = cap then begin
    let ncap = max 16 (2 * cap) in
    let narr = Array.make ncap t.arr.(0) in
    Array.blit t.arr 0 narr 0 t.size;
    t.arr <- narr
  end

let push t ~time ~seq value =
  let e = { time; seq; value } in
  if Array.length t.arr = 0 then t.arr <- Array.make 16 e else grow t;
  t.arr.(t.size) <- e;
  t.size <- t.size + 1;
  (* Sift up. *)
  let i = ref (t.size - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    less t.arr.(!i) t.arr.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = t.arr.(!i) in
    t.arr.(!i) <- t.arr.(parent);
    t.arr.(parent) <- tmp;
    i := parent
  done

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.arr.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.arr.(0) <- t.arr.(t.size);
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.size && less t.arr.(l) t.arr.(!smallest) then smallest := l;
        if r < t.size && less t.arr.(r) t.arr.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = t.arr.(!i) in
          t.arr.(!i) <- t.arr.(!smallest);
          t.arr.(!smallest) <- tmp;
          i := !smallest
        end
      done
    end;
    Some (top.time, top.seq, top.value)
  end

let peek_time t = if t.size = 0 then None else Some t.arr.(0).time
