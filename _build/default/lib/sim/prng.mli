(** Deterministic pseudo-random number generator (splitmix64).

    Every source of randomness in the simulator goes through an explicit
    [Prng.t] so that a run is a pure function of its seed. *)

type t

val create : seed:int -> t

val copy : t -> t
(** Independent copy with identical future output. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t]. Streams from
    the parent and child are statistically independent. *)

val bits64 : t -> int64
val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises on [bound <= 0]. *)

val int_in : t -> lo:int -> hi:int -> int
(** Uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
val choose : t -> 'a list -> 'a
(** Uniform element of a non-empty list. Raises [Invalid_argument] on []. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample, for inter-arrival times. *)
