(** Cost model for the simulated 1985 hardware.

    The paper's measurements (§6) were taken on VAX 11/750 machines
    (≈ 0.5 MIPS) connected by a 10 Mb Ethernet with Interlan interfaces.
    All times are virtual microseconds. The defaults are calibrated so
    that the operation counts our implementation performs reproduce the
    paper's headline figures:

    - 750 instructions per local lock ⇒ 1.5 ms (§6.2);
    - remote lock ≈ 18 ms ≈ round-trip message + remote service (§6.2);
    - non-overlap local commit ≈ 9450 instructions of service time and
      overlap ≈ 10800 (Figure 6);
    - copying a substantial part of a page costs ≈ 1 ms per KiB
      (footnote 11). *)

type t = {
  instr_ns : int;  (** nanoseconds per instruction; 2000 = 0.5 MIPS *)
  syscall_instr : int;  (** kernel entry/exit *)
  lock_request_instr : int;  (** processing one lock request at the storage site (750, §6.2) *)
  lock_cache_instr : int;  (** validating an access against the local lock cache *)
  msg_latency_us : int;  (** one-way network latency, wire + interface *)
  msg_cpu_instr : int;  (** CPU to send or receive one lightweight message *)
  disk_latency_us : int;  (** seek + rotation for one page I/O *)
  disk_per_kib_us : int;  (** transfer time per KiB *)
  copy_byte_instr_x16 : int;
      (** instructions per 16 bytes copied during page differencing *)
  commit_base_instr : int;  (** fixed record-commit bookkeeping per page *)
  commit_merge_instr : int;  (** extra bookkeeping on the differencing path *)
  flush_page_instr : int;  (** building + issuing one shadow-page flush at prepare *)
  rw_base_instr : int;  (** fixed cost of one read/write buffer operation *)
  fork_instr : int;  (** process creation *)
  migrate_instr : int;  (** process migration CPU at each end *)
}

val default : t
(** Calibrated to the paper's environment (see above). *)

val fast_lan : t
(** A "modern-ish" variant: 10x CPU, 10x network — used by ablation benches
    to show which conclusions are hardware-dependent. *)

val instr_us : t -> int -> int
(** [instr_us t n] is the virtual time in µs consumed by [n] instructions. *)

val disk_io_us : t -> bytes:int -> int
(** Latency of one disk I/O transferring [bytes]. *)

val copy_instr : t -> bytes:int -> int
(** Instruction count for copying [bytes] during page differencing. *)
