(** Named counters and latency samples gathered during a simulation run.

    The benchmark harness reads these to reproduce the paper's tables:
    disk-I/O counts drive Figure 5, and latency samples drive Figure 6 and
    the §6.2 locking measurements. *)

type t

val create : unit -> t

(** {1 Counters} *)

val incr : t -> string -> unit
val add : t -> string -> int -> unit
val get : t -> string -> int
(** [get t name] is the counter value, 0 if never touched. *)

val reset : t -> string -> unit
val reset_all : t -> unit

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

(** {1 Latency / value samples} *)

val sample : t -> string -> int -> unit
(** Record one sample (e.g. a latency in µs) under [name]. *)

val samples : t -> string -> int list
(** Samples in recording order; [] if none. *)

module Summary : sig
  type t = { n : int; mean : float; min : int; max : int; p50 : int; p95 : int }

  val pp : t Fmt.t
end

val summary : t -> string -> Summary.t option

val pp : t Fmt.t
(** Render all counters and sample summaries, for debugging. *)
