lib/sim/costs.ml:
