lib/sim/pqueue.mli:
