lib/sim/engine.mli: Costs Prng Stats Trace
