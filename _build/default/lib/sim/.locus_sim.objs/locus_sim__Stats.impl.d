lib/sim/stats.ml: Array Fmt Hashtbl Int List String
