lib/sim/engine.ml: Costs Effect Hashtbl List Option Pqueue Printexc Printf Prng Stats Trace
