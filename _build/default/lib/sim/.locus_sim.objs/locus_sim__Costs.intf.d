lib/sim/costs.mli:
