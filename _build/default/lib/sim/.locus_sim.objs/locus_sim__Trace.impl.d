lib/sim/trace.ml: Array Fmt Format List
