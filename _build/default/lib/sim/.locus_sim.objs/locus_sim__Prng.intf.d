lib/sim/prng.mli:
