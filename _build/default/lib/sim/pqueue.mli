(** Mutable binary min-heap keyed by [(time, seq)].

    The sequence number makes event ordering a total order, which in turn
    makes the whole simulation deterministic: two events scheduled for the
    same instant fire in scheduling order. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> time:int -> seq:int -> 'a -> unit

val pop : 'a t -> (int * int * 'a) option
(** Remove and return the minimum [(time, seq, value)]. *)

val peek_time : 'a t -> int option
(** Time of the minimum element, without removing it. *)
