type lock_info = {
  li_fid : File_id.t;
  li_owner : Owner.t;
  li_mode : Mode.t;
  li_range : Byte_range.t;
  li_retained : bool;
}

type site_snapshot = {
  site : Site.t;
  up : bool;
  processes : (Pid.t * string) list;
  locks : lock_info list;
  waiting : int;
  active_txns : Txid.t list;
  in_doubt : Txid.t list;
  io : int * int * int;
}

let snapshot_site k =
  let cl = Kernel.cluster_of k in
  let up = Transport.site_up (Kernel.transport cl) (Kernel.site k) in
  let locks, waiting =
    if not up then ([], 0)
    else
      List.fold_left
        (fun (acc, w) table ->
          let acc =
            List.fold_left
              (fun acc (l : Lock_table.lock) ->
                {
                  li_fid = Lock_table.fid table;
                  li_owner = l.Lock_table.owner;
                  li_mode = l.Lock_table.mode;
                  li_range = l.Lock_table.range;
                  li_retained = l.Lock_table.retained;
                }
                :: acc)
              acc (Lock_table.locks table)
          in
          (acc, w + Lock_table.waiting table))
        ([], 0)
        (List.filter
           (fun t ->
             match Kernel.lock_table k (Lock_table.fid t) with
             | Some t' -> t' == t
             | None -> false)
           (Kernel.lock_tables cl))
  in
  {
    site = Kernel.site k;
    up;
    processes =
      (if up then
         List.map
           (fun (p : Locus_proc.Process.t) ->
             ( p.Locus_proc.Process.pid,
               match p.Locus_proc.Process.status with
               | Locus_proc.Process.Running -> "running"
               | Locus_proc.Process.In_transit -> "in-transit"
               | Locus_proc.Process.Exited -> "exited" ))
           (Locus_proc.Proc_table.processes (Kernel.procs k))
       else []);
    locks;
    waiting;
    active_txns =
      (if up then
         List.map
           (fun (t : Txn_state.txn) -> t.Txn_state.txid)
           (Txn_state.active (Kernel.txns k))
       else []);
    in_doubt =
      (if up then Participant.prepared_transactions (Kernel.participant k)
       else []);
    io =
      List.fold_left
        (fun (r, w, l) vol ->
          ( r + Locus_disk.Volume.io_reads vol,
            w + Locus_disk.Volume.io_writes vol,
            l + Locus_disk.Volume.io_log_writes vol ))
        (0, 0, 0)
        (Filestore.volumes (Kernel.filestore k));
  }

let snapshot cl = List.map snapshot_site (Kernel.kernels cl)

let waits cl = List.concat_map Lock_table.waits_for (Kernel.lock_tables cl)

let pp_lock ppf l =
  Fmt.pf ppf "%a %a %a %a%s" File_id.pp l.li_fid Owner.pp l.li_owner Mode.pp
    l.li_mode Byte_range.pp l.li_range
    (if l.li_retained then " (retained)" else "")

let pp_site ppf s =
  Fmt.pf ppf "site %d: %s@." s.site (if s.up then "up" else "DOWN");
  if s.up then begin
    Fmt.pf ppf "  processes:";
    List.iter (fun (p, st) -> Fmt.pf ppf " %a[%s]" Pid.pp p st) s.processes;
    Fmt.pf ppf "@.";
    Fmt.pf ppf "  transactions:";
    List.iter (fun t -> Fmt.pf ppf " %a" Txid.pp t) s.active_txns;
    Fmt.pf ppf "@.  locks (%d, %d waiting):@." (List.length s.locks) s.waiting;
    List.iter (fun l -> Fmt.pf ppf "    %a@." pp_lock l) s.locks;
    let r, w, l = s.io in
    Fmt.pf ppf "  disk I/O: %d reads, %d writes, %d log writes@." r w l
  end

let pp ppf sites = List.iter (pp_site ppf) sites
