(** The kernel-data interface (§3.1).

    The paper's kernel "does not detect deadlock. Instead, an interface to
    operating system data is provided, permitting a system process to
    detect deadlock by constructing a wait-for graph" — and, more
    generally, to observe kernel state. This module is that interface's
    read side: structured snapshots of a site's (or the whole cluster's)
    processes, lock tables, active and in-doubt transactions, rendered for
    tools like `locusctl inspect` and the deadlock service. *)

type lock_info = {
  li_fid : File_id.t;
  li_owner : Owner.t;
  li_mode : Mode.t;
  li_range : Byte_range.t;
  li_retained : bool;
}

type site_snapshot = {
  site : Site.t;
  up : bool;
  processes : (Pid.t * string) list;  (** pid, status *)
  locks : lock_info list;
  waiting : int;  (** queued lock requests *)
  active_txns : Txid.t list;  (** transactions whose top-level process is here *)
  in_doubt : Txid.t list;  (** prepared, awaiting outcome *)
  io : int * int * int;  (** reads, writes, log writes across local volumes *)
}

val snapshot_site : Kernel.t -> site_snapshot
val snapshot : Kernel.cluster -> site_snapshot list

val waits : Kernel.cluster -> (Owner.t * Owner.t list) list
(** The raw wait-for edges, cluster-wide — what the deadlock system
    process consumes. *)

val pp_site : site_snapshot Fmt.t
val pp : site_snapshot list Fmt.t
