lib/core/api.mli: Bytes Engine Kernel Mode Owner Pid Site
