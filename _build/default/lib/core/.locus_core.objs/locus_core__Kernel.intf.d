lib/core/kernel.mli: Coord_log Engine File_id Filestore Fmt Lock_table Locus_deadlock Locus_proc Log_record Msg Owner Participant Pid Site Transport Txid Txn_state
