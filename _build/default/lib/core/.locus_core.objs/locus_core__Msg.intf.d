lib/core/msg.mli: Byte_range Bytes File_id Fmt Log_record Mode Owner Pid Txid
