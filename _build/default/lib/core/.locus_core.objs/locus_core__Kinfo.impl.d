lib/core/kinfo.ml: Byte_range File_id Filestore Fmt Kernel List Lock_table Locus_disk Locus_proc Mode Owner Participant Pid Site Transport Txid Txn_state
