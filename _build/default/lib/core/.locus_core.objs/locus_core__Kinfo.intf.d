lib/core/kinfo.mli: Byte_range File_id Fmt Kernel Mode Owner Pid Site Txid
