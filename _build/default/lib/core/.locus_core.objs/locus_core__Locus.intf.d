lib/core/locus.mli: Api Kernel Locus_lock Locus_sim Msg
