lib/core/locus.ml: Api Kernel Locus_lock Locus_sim Msg
