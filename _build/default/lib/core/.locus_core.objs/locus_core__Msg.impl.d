lib/core/msg.ml: Byte_range Bytes File_id Fmt List Log_record Mode Owner Pid Txid
