lib/core/api.ml: Byte_range Bytes Costs Engine File_id Fmt Fun Hashtbl Kernel List Locus_proc Mode Msg Option Owner Pid Printf Stats String Transport Txn_state
