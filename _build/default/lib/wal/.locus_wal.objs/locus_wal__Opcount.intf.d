lib/wal/opcount.mli: Fmt
