lib/wal/redo_log.mli: Bytes File_id Volume
