lib/wal/redo_log.ml: Array Bytes File_id Hashtbl Int List Marshal String Volume
