lib/wal/opcount.ml: Float Fmt
