(** An executable write-ahead (redo) logging commit engine over the same
    simulated volumes — the baseline mechanism §6 compares shadow paging
    against.

    Writes are buffered per owner; commit forces the buffered record
    images into the volume log (one I/O per log page, the commit record
    piggybacked on the last), applies them to the in-memory page images,
    and defers the in-place data page writes to {!checkpoint}. Recovery
    replays the log over the on-disk pages.

    This is deliberately a compact engine: it exists so the E5 experiment
    can run the {e same} workload under both mechanisms and count real
    I/Os, and so tests can crash it mid-stream and check redo recovery. *)

type t

val create : Volume.t -> t
val volume : t -> Volume.t

val create_file : t -> File_id.t
(** Allocate a file (durable inode write). Must run in a fiber. *)

val write : t -> File_id.t -> owner:string -> pos:int -> Bytes.t -> unit
(** Buffer a record image for [owner]. No I/O. *)

val read : t -> File_id.t -> pos:int -> len:int -> Bytes.t
(** Committed contents overlaid with all owners' buffered writes. *)

val read_committed : t -> File_id.t -> pos:int -> len:int -> Bytes.t

val commit : t -> owner:string -> int
(** Force the owner's buffered records to the log and apply them to the
    committed in-memory images; returns the number of log I/Os charged.
    Must run in a fiber. *)

val abort : t -> owner:string -> unit
(** Drop the owner's buffered records. *)

val checkpoint : t -> int
(** Write every dirty data page in place and truncate the log; returns the
    number of page I/Os. Must run in a fiber. *)

val dirty_pages : t -> int

val crash : t -> unit
(** Lose all volatile state (buffers, in-memory images, dirty set). *)

val recover : t -> int
(** Rebuild the in-memory images from the on-disk pages and replay the
    log; returns the number of records replayed. Must run in a fiber. *)
