type placement = Sequential | Random_within of int

type params = {
  page_size : int;
  record_size : int;
  records_per_txn : int;
  placement : placement;
  files : int;
  volumes : int;
  log_header_bytes : int;
}

let default_params =
  {
    page_size = 1024;
    record_size = 128;
    records_per_txn = 1;
    placement = Sequential;
    files = 1;
    volumes = 1;
    log_header_bytes = 24;
  }

type breakdown = {
  data_page_writes : int;
  log_writes : int;
  inode_writes : int;
  foreground : int;
  deferred : int;
  total : int;
}

let ceil_div a b = (a + b - 1) / b

let pages_touched p =
  let n = p.records_per_txn in
  if n = 0 then 0
  else begin
    match p.placement with
    | Sequential ->
      (* Packed records: bytes spanned, ignoring alignment slack. *)
      max 1 (ceil_div (n * p.record_size) p.page_size)
    | Random_within file_pages ->
      (* Occupancy expectation: m * (1 - (1 - 1/m)^n), with each record
         also possibly straddling a page boundary when larger than a
         page. *)
      let per_record_pages = max 1 (ceil_div p.record_size p.page_size) in
      let m = float_of_int (max 1 file_pages) in
      let hits = float_of_int (n * per_record_pages) in
      let expected = m *. (1.0 -. ((1.0 -. (1.0 /. m)) ** hits)) in
      max 1 (int_of_float (Float.round expected))
  end

let shadow p =
  let pages = pages_touched p in
  let log_writes = 1 (* coordinator record *) + p.volumes (* prepare logs *) + 1
  (* commit mark *) in
  let data_page_writes = pages in
  let inode_writes = p.files in
  let foreground = log_writes + data_page_writes in
  let deferred = inode_writes in
  {
    data_page_writes;
    log_writes;
    inode_writes;
    foreground;
    deferred;
    total = foreground + deferred;
  }

let wal p =
  let pages = pages_touched p in
  let record_bytes = p.records_per_txn * (p.record_size + p.log_header_bytes) in
  let commit_record = 32 in
  let log_writes = max 1 (ceil_div (record_bytes + commit_record) p.page_size) in
  let data_page_writes = 0 in
  let foreground = log_writes in
  let deferred = pages (* in-place writes at checkpoint *) in
  {
    data_page_writes;
    log_writes;
    inode_writes = 0;
    foreground;
    deferred;
    total = foreground + deferred;
  }

let crossover_record_size ?(page_size = 1024) ?(records_per_txn = 4) () =
  let rec scan size =
    if size > page_size then None
    else begin
      let p =
        { default_params with page_size; record_size = size; records_per_txn }
      in
      if (shadow p).total <= (wal p).total then Some size
      else scan (size + 16)
    end
  in
  scan 16

let pp_breakdown ppf b =
  Fmt.pf ppf "data=%d log=%d inode=%d | fg=%d bg=%d total=%d" b.data_page_writes
    b.log_writes b.inode_writes b.foreground b.deferred b.total
