(** Global file identity: logical volume number + inode number.

    The transparent namespace maps path names to file ids once, at [open]
    time; all later locking and data operations use the id (§3.2 separates
    name mapping from locking precisely because name resolution is the
    expensive distributed step). *)

type t = { vid : int; ino : int }

val make : vid:int -> ino:int -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t
val to_string : t -> string
val of_string : string -> t option

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
