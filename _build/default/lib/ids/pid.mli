(** Network-wide process identifiers.

    A pid names a process for its whole life, across migrations: it records
    the site where the process was created and a per-site sequence number. *)

type t = { origin : int; num : int }

val make : origin:int -> num:int -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
