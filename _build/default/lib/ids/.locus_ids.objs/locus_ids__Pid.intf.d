lib/ids/pid.mli: Fmt Map Set
