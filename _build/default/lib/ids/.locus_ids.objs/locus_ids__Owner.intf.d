lib/ids/owner.mli: Fmt Map Pid Set Txid
