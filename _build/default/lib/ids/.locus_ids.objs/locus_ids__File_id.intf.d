lib/ids/file_id.mli: Fmt Map Set
