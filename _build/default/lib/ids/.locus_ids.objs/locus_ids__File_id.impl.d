lib/ids/file_id.ml: Fmt Int Map Printf Set String
