lib/ids/pid.ml: Fmt Int Map Set
