lib/ids/owner.ml: Map Pid Set Txid
