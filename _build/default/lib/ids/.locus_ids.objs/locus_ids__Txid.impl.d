lib/ids/txid.ml: Fmt Hashtbl Int Map Printf Set String
