lib/ids/txid.mli: Fmt Map Set
