type t = { origin : int; num : int }

let make ~origin ~num = { origin; num }
let equal a b = a.origin = b.origin && a.num = b.num

let compare a b =
  match Int.compare a.origin b.origin with 0 -> Int.compare a.num b.num | c -> c

let pp ppf t = Fmt.pf ppf "p%d.%d" t.origin t.num

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
