type t = Transaction of Txid.t | Process of Pid.t

let is_transaction = function Transaction _ -> true | Process _ -> false

let equal a b =
  match (a, b) with
  | Transaction x, Transaction y -> Txid.equal x y
  | Process x, Process y -> Pid.equal x y
  | Transaction _, Process _ | Process _, Transaction _ -> false

let compare a b =
  match (a, b) with
  | Transaction x, Transaction y -> Txid.compare x y
  | Process x, Process y -> Pid.compare x y
  | Transaction _, Process _ -> -1
  | Process _, Transaction _ -> 1

let pp ppf = function
  | Transaction tx -> Txid.pp ppf tx
  | Process p -> Pid.pp ppf p

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
