type t = { vid : int; ino : int }

let make ~vid ~ino = { vid; ino }
let equal a b = a.vid = b.vid && a.ino = b.ino

let compare a b =
  match Int.compare a.vid b.vid with 0 -> Int.compare a.ino b.ino | c -> c

let pp ppf t = Fmt.pf ppf "f%d:%d" t.vid t.ino
let to_string t = Printf.sprintf "%d:%d" t.vid t.ino

let of_string s =
  match String.split_on_char ':' s with
  | [ a; b ] -> (
    match (int_of_string_opt a, int_of_string_opt b) with
    | Some vid, Some ino -> Some { vid; ino }
    | _ -> None)
  | _ -> None

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
