(** Temporally unique transaction identifiers (§4.1).

    A transaction id names the transaction network-wide. Uniqueness across
    site reboots is what makes duplicate commit/abort messages harmless
    during recovery (§4.4): ids combine the originating site, that site's
    boot incarnation, and a per-incarnation sequence number. *)

type t = { site : int; incarnation : int; seq : int }

val make : site:int -> incarnation:int -> seq:int -> t
val site : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : t Fmt.t

val to_string : t -> string
val of_string : string -> t option
(** Round-trips {!to_string}; used by the log codecs. *)

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
