type t = { site : int; incarnation : int; seq : int }

let make ~site ~incarnation ~seq = { site; incarnation; seq }
let site t = t.site
let equal a b = a.site = b.site && a.incarnation = b.incarnation && a.seq = b.seq

let compare a b =
  match Int.compare a.site b.site with
  | 0 -> (
    match Int.compare a.incarnation b.incarnation with
    | 0 -> Int.compare a.seq b.seq
    | c -> c)
  | c -> c

let hash t = Hashtbl.hash t
let pp ppf t = Fmt.pf ppf "tx%d.%d.%d" t.site t.incarnation t.seq
let to_string t = Printf.sprintf "%d.%d.%d" t.site t.incarnation t.seq

let of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c ] -> (
    match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c) with
    | Some site, Some incarnation, Some seq -> Some { site; incarnation; seq }
    | _ -> None)
  | _ -> None

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
