(** The party on whose behalf data is modified or locked: a transaction, or
    a process running outside any transaction.

    The distinction drives the whole synchronization design (§3.3, §5):
    transaction owners obey two-phase locking and commit through the
    transaction mechanism; non-transaction owners may unlock without
    committing, leaving visible uncommitted data behind. *)

type t = Transaction of Txid.t | Process of Pid.t

val is_transaction : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
