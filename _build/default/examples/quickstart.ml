(* Quickstart: one user process on a 2-site network.

   Shows the whole surface in ~60 lines: create a file at a remote storage
   site, lock records explicitly, update them inside a BeginTrans/EndTrans
   envelope, abort a second transaction, and observe that only the first
   one's effects survive. Run with:

     dune exec examples/quickstart.exe *)

module L = Locus_core.Locus
module Api = L.Api

let () =
  let sim =
    L.simulate ~n_sites:2 (fun cl ->
        ignore
          (Api.spawn_process cl ~site:0 ~name:"quickstart" (fun env ->
               (* The file lives on volume 1, whose storage site is site 1:
                  every access below is transparently remote. *)
               let c = Api.creat env "/demo/counter" ~vid:1 in
               Fmt.pr "created /demo/counter at site %d (we run at site %d)@."
                 (L.Kernel.storage_site (Api.cluster env)
                    (Option.get (L.Kernel.lookup cl "/demo/counter")))
                 (Api.site env);

               (* Transaction 1: initialize two records under explicit
                  exclusive locks. *)
               Api.begin_trans env;
               Api.seek env c ~pos:0;
               (match Api.lock env c ~len:16 ~mode:L.Mode.Exclusive () with
               | Api.Granted -> ()
               | Api.Conflict _ -> failwith "unexpected conflict");
               Api.pwrite env c ~pos:0 (Bytes.of_string "balance=100     ");
               Api.pwrite env c ~pos:16 (Bytes.of_string "audit=ok        ");
               (match Api.end_trans env with
               | L.Kernel.Committed -> Fmt.pr "transaction 1 committed@."
               | L.Kernel.Aborted -> Fmt.pr "transaction 1 aborted?!@.");

               (* Transaction 2: overwrite, then change our mind. *)
               Api.begin_trans env;
               Api.pwrite env c ~pos:0 (Bytes.of_string "balance=999     ");
               Fmt.pr "inside txn 2, record reads: %S@."
                 (Bytes.to_string (Api.pread env c ~pos:0 ~len:11));
               Api.abort_trans env;
               Fmt.pr "transaction 2 aborted on purpose@.";

               let final = Bytes.to_string (Api.pread env c ~pos:0 ~len:11) in
               Fmt.pr "after abort, record reads:   %S@." final;
               assert (final = "balance=100");
               Api.close env c)))
  in
  Fmt.pr "virtual time elapsed: %.1f ms; disk I/Os: %d writes, %d log writes@."
    (float_of_int (L.Engine.now sim.L.engine) /. 1000.)
    (L.Stats.get (L.Engine.stats sim.L.engine) "disk.io.write")
    (L.Stats.get (L.Engine.stats sim.L.engine) "disk.io.log")
