(* Banking: the paper's motivating workload class — database-style
   fine-grain concurrency on shared files.

   A single accounts file holds 32 fixed-width account records. Eight
   teller processes spread over 4 sites run transfer transactions against
   it concurrently. Record-level two-phase locking serializes only the
   transfers that actually touch the same accounts; the deadlock service
   (wait-for graph, §3.1) resolves the cycles that random transfers
   inevitably create; aborted transfers are retried.

   The invariant printed at the end — total money conserved — is the
   serializability of §2 made visible. Run with:

     dune exec examples/banking.exe *)

module L = Locus_core.Locus
module Api = L.Api

let n_accounts = 32
let record_len = 16
let initial_balance = 1000
let transfers_per_teller = 6

let read_balance env c account =
  let b = Api.pread env c ~pos:(account * record_len) ~len:record_len in
  int_of_string (String.trim (Bytes.to_string b))

let write_balance env c account v =
  let s = Printf.sprintf "%-*d" record_len v in
  Api.pwrite env c ~pos:(account * record_len) (Bytes.of_string s)

let lock_account env c account mode =
  Api.seek env c ~pos:(account * record_len);
  match Api.lock env c ~len:record_len ~mode () with
  | Api.Granted -> ()
  | Api.Conflict _ -> failwith "lock with wait cannot return Conflict"

(* Deliberately lock in request order (not account order): concurrent
   opposite-direction transfers deadlock, exercising the wait-for-graph
   service. *)
let transfer env c ~from_a ~to_a ~amount =
  Api.begin_trans env;
  lock_account env c from_a L.Mode.Exclusive;
  if to_a <> from_a then lock_account env c to_a L.Mode.Exclusive;
  let src = read_balance env c from_a in
  if src >= amount then begin
    write_balance env c from_a (src - amount);
    write_balance env c to_a (read_balance env c to_a + amount)
  end;
  Api.end_trans env

(* A transaction aborted from outside (deadlock victim, failure) takes its
   processes with it (§4.3) — so the standard client pattern is to run each
   transfer in a child process and have the parent retry. *)
let teller seed env =
  let stats = Engine.stats (L.Kernel.engine (Api.cluster env)) in
  let prng = Prng.create ~seed in
  let c = Api.open_file env "/bank/accounts" in
  for _ = 1 to transfers_per_teller do
    let from_a = Prng.int prng n_accounts in
    let to_a = Prng.int prng n_accounts in
    let amount = 1 + Prng.int prng 200 in
    let rec attempt tries =
      let outcome = ref None in
      let worker = Api.fork env ~name:"transfer" (fun cenv ->
          outcome := Some (transfer cenv c ~from_a ~to_a ~amount))
      in
      Api.wait_pid env worker;
      match !outcome with
      | Some L.Kernel.Committed -> ()
      | Some L.Kernel.Aborted | None ->
        if tries < 5 then begin
          Stats.incr stats "bank.retries";
          attempt (tries + 1)
        end
    in
    attempt 0
  done;
  Api.close env c

let () =
  let n_sites = 4 in
  let total = ref 0 in
  let sim =
    L.simulate ~n_sites (fun cl ->
        ignore
          (Api.spawn_process cl ~site:0 ~name:"setup" (fun env ->
               let c = Api.creat env "/bank/accounts" ~vid:1 in
               for a = 0 to n_accounts - 1 do
                 write_balance env c a initial_balance
               done;
               Api.close env c;
               (* Tellers start once the file exists. *)
               let pids =
                 List.init 8 (fun i ->
                     Api.fork env ~site:(i mod n_sites)
                       ~name:(Printf.sprintf "teller%d" i) (teller (1000 + i)))
               in
               List.iter (Api.wait_pid env) pids;
               let c = Api.open_file env "/bank/accounts" in
               total := 0;
               for a = 0 to n_accounts - 1 do
                 total := !total + read_balance env c a
               done;
               Api.close env c)))
  in
  let stats = L.Engine.stats sim.L.engine in
  Fmt.pr "final total balance: %d (expected %d)@." !total
    (n_accounts * initial_balance);
  Fmt.pr
    "committed: %d, aborted: %d, deadlock scans: %d, victims: %d, retries: %d@."
    (L.Stats.get stats "txn.committed")
    (L.Stats.get stats "txn.aborted")
    (L.Stats.get stats "deadlock.scans")
    (L.Stats.get stats "deadlock.victims")
    (L.Stats.get stats "bank.retries");
  Fmt.pr "virtual time: %.1f s@."
    (float_of_int (L.Engine.now sim.L.engine) /. 1_000_000.);
  Fmt.pr "proc.failures=%d forks=%d begun=%d@."
    (L.Stats.get stats "proc.failures") (L.Stats.get stats "proc.forks")
    (L.Stats.get stats "txn.begun");
  assert (!total = n_accounts * initial_balance)
