(* Migration and the transaction / non-transaction interplay.

   Part 1 reproduces Figure 2's scenario: a non-transaction program
   updates record x[1] and unlocks it without committing; a transaction
   then reads x[1] and writes x[2]. Rule 2 of §3.3 makes the transaction
   adopt the dirty record, so x[1] commits (or aborts) with the
   transaction and serializability survives.

   Part 2 demonstrates dynamic process migration inside a transaction
   (§4.1): the top-level process migrates twice while a remote member
   completes, so the member's file-list merge message has to chase it —
   the in-transit flag turns the race into a retry. Run with:

     dune exec examples/migration_failover.exe *)

module L = Locus_core.Locus
module Api = L.Api

let rec_len = 16

let write_rec env c i s =
  Api.pwrite env c ~pos:(i * rec_len) (Bytes.of_string (Printf.sprintf "%-*s" rec_len s))

let read_rec env c i =
  String.trim (Bytes.to_string (Api.pread env c ~pos:(i * rec_len) ~len:rec_len))

let part1 cl =
  ignore
    (Api.spawn_process cl ~site:0 ~name:"figure2" (fun env ->
         let c = Api.creat env "/data/x" ~vid:1 in
         write_rec env c 1 "A";
         write_rec env c 2 "B";
         Api.commit_file env c;

         (* Non-transaction program: writelock x[1]; x[1] := C; unlock. The
            update is uncommitted but visible. *)
         Api.seek env c ~pos:(1 * rec_len);
         (match Api.lock env c ~len:rec_len ~mode:L.Mode.Exclusive () with
         | Api.Granted -> ()
         | Api.Conflict _ -> assert false);
         write_rec env c 1 "C";
         Api.seek env c ~pos:(1 * rec_len);
         Api.unlock env c ~len:rec_len;
         Fmt.pr "x[1] is dirty and unlocked; committed value still %S@."
           (L.Kernel.read_committed_oracle cl
              (Option.get (L.Kernel.lookup cl "/data/x")));

         (* Transaction: t := x[1]; x[2] := t. *)
         let worker =
           Api.fork env ~name:"txn" (fun tenv ->
               let tc = Api.open_file tenv "/data/x" in
               Api.begin_trans tenv;
               Api.seek tenv tc ~pos:(1 * rec_len);
               (match Api.lock tenv tc ~len:rec_len ~mode:L.Mode.Shared () with
               | Api.Granted -> ()
               | Api.Conflict _ -> assert false);
               let t = read_rec tenv tc 1 in
               write_rec tenv tc 2 t;
               (match Api.end_trans tenv with
               | L.Kernel.Committed -> ()
               | L.Kernel.Aborted -> assert false);
               Api.close tenv tc)
         in
         Api.wait_pid env worker;
         Api.close env c))

let part2 cl =
  ignore
    (Api.spawn_process cl ~site:0 ~name:"nomad" (fun env ->
         let c = Api.creat env "/data/journey" ~vid:2 in
         Api.begin_trans env;
         write_rec env c 0 "leg0@site0";
         (* Member at site 2 does work while we wander. *)
         let member =
           Api.fork env ~site:2 ~name:"member" (fun menv ->
               let mc = Api.open_file menv "/data/journey" in
               Engine.sleep 30_000;
               write_rec menv mc 2 "member@site2";
               Api.close menv mc)
         in
         Api.migrate env 1;
         Fmt.pr "top-level process now at site %d (mid-transaction)@."
           (Api.site env);
         write_rec env c 1 "leg1@site1";
         Api.migrate env 2;
         Api.wait_pid env member;
         (match Api.end_trans env with
         | L.Kernel.Committed -> Fmt.pr "migrating transaction committed@."
         | L.Kernel.Aborted -> Fmt.pr "migrating transaction aborted?!@.");
         Api.close env c))

let rec_at s i = String.trim (String.sub s (i * rec_len) rec_len)

let () =
  let sim = L.make ~n_sites:3 () in
  part1 sim.L.cluster;
  L.run sim;
  (* Phase 2 has quiesced: check the durable state. *)
  let x =
    L.Kernel.read_committed_oracle sim.L.cluster
      (Option.get (L.Kernel.lookup sim.L.cluster "/data/x"))
  in
  Fmt.pr "durable: x[1]=%S x[2]=%S (rule 2 committed the adopted record)@."
    (rec_at x 1) (rec_at x 2);
  assert (rec_at x 1 = "C" && rec_at x 2 = "C");
  part2 sim.L.cluster;
  L.run sim;
  let j =
    L.Kernel.read_committed_oracle sim.L.cluster
      (Option.get (L.Kernel.lookup sim.L.cluster "/data/journey"))
  in
  Fmt.pr "journey records: %S %S %S@." (rec_at j 0) (rec_at j 1) (rec_at j 2);
  assert (rec_at j 0 = "leg0@site0" && rec_at j 1 = "leg1@site1");
  assert (rec_at j 2 = "member@site2");
  let stats = L.Engine.stats sim.L.engine in
  Fmt.pr "migrations: %d, merge retries: %d, committed txns: %d@."
    (L.Stats.get stats "proc.migrations")
    (L.Stats.get stats "merge.retries")
    (L.Stats.get stats "txn.committed")
