(* DebitCredit — the canonical transaction-processing workload of the
   paper's era (the benchmark later standardized as TPC-A).

   Four files: accounts (record-locked, hot), tellers, branches (both
   contended), and an append-only history log (the §3.2 lock-and-extend
   case). Each transaction debits an account, updates its teller and
   branch totals, and appends a history record — a realistic mix of
   fine-grain record locking, hot-spot contention on branch records, and
   shared-log appends, spread over three sites.

   The invariants checked at the end: branch totals equal the sum of
   their tellers' totals equal the sum of applied deltas, and the history
   log has exactly one record per committed transaction. Run with:

     dune exec examples/debit_credit.exe *)

module L = Locus_core.Locus
module Api = L.Api
module K = L.Kernel
module M = L.Mode

let n_branches = 2
let tellers_per_branch = 4
let accounts_per_branch = 32
let rec_len = 16
let hist_len = 48
let n_terminals = 6
let txns_per_terminal = 5

let n_tellers = n_branches * tellers_per_branch
let n_accounts = n_branches * accounts_per_branch

let read_int env c i =
  int_of_string (String.trim (Bytes.to_string (Api.pread env c ~pos:(i * rec_len) ~len:rec_len)))

let write_int env c i v =
  Api.pwrite env c ~pos:(i * rec_len) (Bytes.of_string (Printf.sprintf "%-*d" rec_len v))

let lock_rec env c i =
  Api.seek env c ~pos:(i * rec_len);
  match Api.lock env c ~len:rec_len ~mode:M.Exclusive () with
  | Api.Granted -> ()
  | Api.Conflict _ -> failwith "lock"

(* One DebitCredit transaction. *)
let debit_credit env ~acct ~teller ~delta =
  let branch = teller / tellers_per_branch in
  Api.begin_trans env;
  let ac = Api.open_file env "/dc/accounts" in
  let tc = Api.open_file env "/dc/tellers" in
  let bc = Api.open_file env "/dc/branches" in
  let hc = Api.open_file env "/dc/history" in
  (* Fixed lock order across record classes keeps the hot branch records
     deadlock-free; the detector covers the rest. *)
  lock_rec env ac acct;
  lock_rec env tc teller;
  lock_rec env bc branch;
  write_int env ac acct (read_int env ac acct + delta);
  write_int env tc teller (read_int env tc teller + delta);
  write_int env bc branch (read_int env bc branch + delta);
  Api.set_append env hc true;
  (match Api.lock env hc ~len:hist_len ~mode:M.Exclusive () with
  | Api.Granted -> ()
  | Api.Conflict _ -> failwith "history lock");
  Api.write_string env hc
    (Printf.sprintf "%-*s" hist_len
       (Printf.sprintf "acct=%d teller=%d delta=%d" acct teller delta));
  let outcome = Api.end_trans env in
  List.iter (Api.close env) [ ac; tc; bc; hc ];
  outcome

let () =
  let applied = ref [] in
  let sim =
    L.simulate ~n_sites:3 (fun cl ->
        ignore
          (Api.spawn_process cl ~site:0 ~name:"setup" (fun env ->
               let mk path vid n =
                 let c = Api.creat env path ~vid in
                 for i = 0 to n - 1 do
                   write_int env c i 0
                 done;
                 Api.close env c
               in
               mk "/dc/accounts" 1 n_accounts;
               mk "/dc/tellers" 2 n_tellers;
               mk "/dc/branches" 0 n_branches;
               let h = Api.creat env "/dc/history" ~vid:2 in
               Api.close env h;
               let terminal t =
                 Api.fork env ~site:(t mod 3) ~name:(Printf.sprintf "term%d" t)
                   (fun tenv ->
                     let prng = Prng.create ~seed:(100 + t) in
                     for _ = 1 to txns_per_terminal do
                       let acct = Prng.int prng n_accounts in
                       let teller = Prng.int prng n_tellers in
                       let delta = Prng.int_in prng ~lo:(-99) ~hi:99 in
                       let done_ref = ref false in
                       let w =
                         Api.fork tenv ~name:"dc" (fun wenv ->
                             match debit_credit wenv ~acct ~teller ~delta with
                             | L.Kernel.Committed ->
                               applied := delta :: !applied;
                               done_ref := true
                             | L.Kernel.Aborted -> ())
                       in
                       Api.wait_pid tenv w;
                       ignore !done_ref
                     done)
               in
               let ts = List.init n_terminals terminal in
               List.iter (Api.wait_pid env) ts)))
  in
  let cl = sim.L.cluster in
  let file path = K.read_committed_oracle cl (Option.get (K.lookup cl path)) in
  let ints s n =
    List.init n (fun i -> int_of_string (String.trim (String.sub s (i * rec_len) rec_len)))
  in
  let accounts = ints (file "/dc/accounts") n_accounts in
  let tellers = ints (file "/dc/tellers") n_tellers in
  let branches = ints (file "/dc/branches") n_branches in
  let history = file "/dc/history" in
  let total l = List.fold_left ( + ) 0 l in
  let applied_total = total !applied in
  Fmt.pr "committed txns: %d; applied delta total: %d@." (List.length !applied)
    applied_total;
  Fmt.pr "accounts total: %d, tellers total: %d, branches total: %d@."
    (total accounts) (total tellers) (total branches);
  Fmt.pr "history records: %d@." (String.length history / hist_len);
  assert (total accounts = applied_total);
  assert (total tellers = applied_total);
  assert (total branches = applied_total);
  assert (String.length history / hist_len = List.length !applied);
  let stats = L.Engine.stats sim.L.engine in
  Fmt.pr "locks: %d requests, %d waits; deadlock victims: %d; virtual time %.1f s@."
    (L.Stats.get stats "lock.requests")
    (L.Stats.get stats "lock.waits")
    (L.Stats.get stats "deadlock.victims")
    (float_of_int (L.Engine.now sim.L.engine) /. 1_000_000.)
