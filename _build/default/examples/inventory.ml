(* Inventory: multi-site transactions, append-mode locking, and crash
   recovery.

   /shop/stock (volume 1, site 1) holds item quantities; /shop/orders
   (volume 2, site 2) is a shared log extended with the atomic
   lock-and-extend of §3.2. Each order transaction spans both storage
   sites: the top-level process at site 0 forks a member at site 1 to
   decrement stock while it appends the order record itself — so commit is
   a genuine two-participant two-phase commit.

   Halfway through, site 1 (the stock volume) crashes and reboots: orders
   in flight abort atomically — no order record without its stock
   decrement, and vice versa. Run with:

     dune exec examples/inventory.exe *)

module L = Locus_core.Locus
module Api = L.Api

let item_len = 16
let n_items = 8
let order_len = 32

let read_qty env c item =
  int_of_string
    (String.trim (Bytes.to_string (Api.pread env c ~pos:(item * item_len) ~len:item_len)))

let write_qty env c item v =
  Api.pwrite env c ~pos:(item * item_len)
    (Bytes.of_string (Printf.sprintf "%-*d" item_len v))

(* Run inside a dedicated child process: an externally aborted transaction
   (site crash, deadlock) takes its processes with it (§4.3), and the shop
   must survive that. *)
let place_order env ~order_no ~item ~qty =
  Api.begin_trans env;
  let ok = ref false in
  (* Member process at the stock site decrements the quantity. *)
  let worker =
    Api.fork env ~site:1 ~name:"stock-worker" (fun cenv ->
        let sc = Api.open_file cenv "/shop/stock" in
        Api.seek cenv sc ~pos:(item * item_len);
        (match Api.lock cenv sc ~len:item_len ~mode:L.Mode.Exclusive () with
        | Api.Granted -> ()
        | Api.Conflict _ -> Api.fail cenv "stock lock denied");
        let have = read_qty cenv sc item in
        if have >= qty then begin
          write_qty cenv sc item (have - qty);
          ok := true
        end;
        Api.close cenv sc)
  in
  Api.wait_pid env worker;
  if !ok then begin
    (* Append the order record under an EOF-relative lock: no two orders
       can claim the same log slot (§3.2's livelock-free log append). *)
    let oc = Api.open_file env "/shop/orders" in
    Api.set_append env oc true;
    (match Api.lock env oc ~len:order_len ~mode:L.Mode.Exclusive () with
    | Api.Granted -> ()
    | Api.Conflict _ -> Api.fail env "order log lock denied");
    Api.write_string env oc
      (Printf.sprintf "%-*s" order_len
         (Printf.sprintf "order=%d item=%d qty=%d" order_no item qty));
    Api.close env oc;
    match Api.end_trans env with
    | L.Kernel.Committed -> true
    | L.Kernel.Aborted -> false
  end
  else begin
    Api.abort_trans env;
    false
  end

let () =
  let placed = ref 0 and failed = ref 0 in
  let total_stock_after = ref 0 and orders_bytes = ref 0 in
  let sim =
    L.simulate ~n_sites:3 (fun cl ->
        (* Chaos: crash the stock site at t=4s (virtual), reboot at 6s. *)
        ignore
          (Api.spawn_process cl ~site:0 ~name:"chaos" (fun _env ->
               Engine.sleep 4_000_000;
               Fmt.pr "!! site 1 crashes@.";
               L.Kernel.crash_site cl 1;
               Engine.sleep 2_000_000;
               Fmt.pr "!! site 1 reboots (recovery runs)@.";
               L.Kernel.restart_site cl 1));
        ignore
          (Api.spawn_process cl ~site:0 ~name:"shop" (fun env ->
               let sc = Api.creat env "/shop/stock" ~vid:1 in
               for i = 0 to n_items - 1 do
                 write_qty env sc i 100
               done;
               Api.close env sc;
               let oc = Api.creat env "/shop/orders" ~vid:2 in
               Api.close env oc;
               for order_no = 1 to 12 do
                 let outcome = ref None in
                 let runner =
                   Api.fork env ~name:"order-runner" (fun oenv ->
                       outcome :=
                         Some
                           (place_order oenv ~order_no
                              ~item:(order_no mod n_items) ~qty:5))
                 in
                 Api.wait_pid env runner;
                 (match !outcome with
                 | Some true -> incr placed
                 | Some false ->
                   incr failed;
                   Fmt.pr "order %d failed (aborted cleanly)@." order_no
                 | None ->
                   incr failed;
                   Fmt.pr "order %d failed (processes lost)@." order_no);
                 Engine.sleep 400_000
               done;
               let sc = Api.open_file env "/shop/stock" in
               total_stock_after := 0;
               for i = 0 to n_items - 1 do
                 total_stock_after := !total_stock_after + read_qty env sc i
               done;
               Api.close env sc;
               let oc = Api.open_file env "/shop/orders" in
               orders_bytes := Api.size env oc;
               Api.close env oc)))
  in
  ignore sim;
  let orders_logged = !orders_bytes / order_len in
  Fmt.pr "placed=%d failed=%d@." !placed !failed;
  Fmt.pr "stock consumed: %d units; orders logged: %d (x5 units = %d)@."
    ((n_items * 100) - !total_stock_after)
    orders_logged (orders_logged * 5);
  (* Atomicity across the crash: every logged order has its stock
     decrement and vice versa. *)
  assert ((n_items * 100) - !total_stock_after = 5 * orders_logged)
