examples/inventory.mli:
