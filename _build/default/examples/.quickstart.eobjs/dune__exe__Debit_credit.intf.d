examples/debit_credit.mli:
