examples/minidb.mli:
