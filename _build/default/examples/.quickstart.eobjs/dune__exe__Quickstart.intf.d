examples/quickstart.mli:
