examples/migration_failover.mli:
