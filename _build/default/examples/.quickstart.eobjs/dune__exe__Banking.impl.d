examples/banking.ml: Bytes Engine Fmt List Locus_core Printf Prng Stats String
