examples/inventory.ml: Bytes Engine Fmt Locus_core Printf String
