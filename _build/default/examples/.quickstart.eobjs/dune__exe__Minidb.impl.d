examples/minidb.ml: Bytes Fmt Locus_core Option Printf String
