examples/banking.mli:
