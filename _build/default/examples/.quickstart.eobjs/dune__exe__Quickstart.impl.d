examples/quickstart.ml: Bytes Fmt Locus_core Option
