examples/debit_credit.ml: Bytes Fmt List Locus_core Option Printf Prng String
