examples/migration_failover.ml: Bytes Engine Fmt Locus_core Option Printf String
