(* Unit and property tests for Byte_range, Range_set and Lru. *)

let range = Alcotest.testable Byte_range.pp Byte_range.equal

let br lo hi = Byte_range.v ~lo ~hi

(* {1 Byte_range} *)

let test_basics () =
  let r = br 10 20 in
  Alcotest.(check int) "lo" 10 (Byte_range.lo r);
  Alcotest.(check int) "hi" 20 (Byte_range.hi r);
  Alcotest.(check int) "len" 10 (Byte_range.len r);
  Alcotest.(check bool) "mem lo" true (Byte_range.mem 10 r);
  Alcotest.(check bool) "mem hi" false (Byte_range.mem 20 r);
  Alcotest.(check range) "of_pos_len" r (Byte_range.of_pos_len ~pos:10 ~len:10)

let test_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Byte_range.v: empty or inverted range")
    (fun () -> ignore (br 5 5));
  Alcotest.check_raises "negative" (Invalid_argument "Byte_range.v: negative lo")
    (fun () -> ignore (br (-1) 5))

let test_overlap () =
  Alcotest.(check bool) "overlap" true (Byte_range.overlaps (br 0 10) (br 9 12));
  Alcotest.(check bool) "abut" false (Byte_range.overlaps (br 0 10) (br 10 12));
  Alcotest.(check bool) "abut adjacent" true
    (Byte_range.adjacent_or_overlapping (br 0 10) (br 10 12));
  Alcotest.(check bool) "disjoint" false (Byte_range.overlaps (br 0 5) (br 6 8))

let test_inter_hull () =
  Alcotest.(check (option range)) "inter" (Some (br 5 8))
    (Byte_range.inter (br 0 8) (br 5 12));
  Alcotest.(check (option range)) "inter none" None
    (Byte_range.inter (br 0 5) (br 5 12));
  Alcotest.(check range) "hull" (br 0 12) (Byte_range.hull (br 0 5) (br 7 12))

let test_diff () =
  Alcotest.(check (list range)) "middle" [ br 0 3; br 7 10 ]
    (Byte_range.diff (br 0 10) (br 3 7));
  Alcotest.(check (list range)) "left" [ br 5 10 ] (Byte_range.diff (br 0 10) (br 0 5));
  Alcotest.(check (list range)) "all" [] (Byte_range.diff (br 3 7) (br 0 10));
  Alcotest.(check (list range)) "disjoint" [ br 0 3 ]
    (Byte_range.diff (br 0 3) (br 5 9))

let test_subsumes () =
  Alcotest.(check bool) "yes" true (Byte_range.subsumes (br 0 10) (br 3 7));
  Alcotest.(check bool) "self" true (Byte_range.subsumes (br 0 10) (br 0 10));
  Alcotest.(check bool) "no" false (Byte_range.subsumes (br 3 7) (br 0 10))

(* {1 Range_set} *)

let rs_of l = Range_set.of_list (List.map (fun (a, b) -> br a b) l)

let test_rs_coalesce () =
  let s = rs_of [ (0, 5); (5, 10) ] in
  Alcotest.(check (list range)) "coalesced" [ br 0 10 ] (Range_set.ranges s);
  let s = rs_of [ (0, 5); (6, 10) ] in
  Alcotest.(check (list range)) "gap kept" [ br 0 5; br 6 10 ] (Range_set.ranges s)

let test_rs_remove () =
  let s = Range_set.remove (br 3 7) (rs_of [ (0, 10) ]) in
  Alcotest.(check (list range)) "split" [ br 0 3; br 7 10 ] (Range_set.ranges s);
  Alcotest.(check bool) "mem" false (Range_set.mem 5 s);
  Alcotest.(check bool) "mem edge" true (Range_set.mem 2 s)

let test_rs_ops () =
  let a = rs_of [ (0, 10); (20, 30) ] and b = rs_of [ (5, 25) ] in
  Alcotest.(check (list range)) "inter" [ br 5 10; br 20 25 ]
    (Range_set.ranges (Range_set.inter a b));
  Alcotest.(check (list range)) "union" [ br 0 30 ]
    (Range_set.ranges (Range_set.union a b));
  Alcotest.(check (list range)) "diff" [ br 0 5; br 25 30 ]
    (Range_set.ranges (Range_set.diff a b));
  Alcotest.(check int) "cardinal" 20 (Range_set.cardinal a);
  Alcotest.(check bool) "subsumes" true (Range_set.subsumes a (br 22 28));
  Alcotest.(check bool) "subsumes across gap" false (Range_set.subsumes a (br 5 25))

(* {1 Lru} *)

let test_lru_basic () =
  let l = Lru.create ~capacity:2 () in
  Alcotest.(check (option (pair int string))) "no evict" None (Lru.put l 1 "a");
  Alcotest.(check (option (pair int string))) "no evict" None (Lru.put l 2 "b");
  Alcotest.(check (option string)) "find" (Some "a") (Lru.find l 1);
  (* 2 is now LRU. *)
  Alcotest.(check (option (pair int string))) "evicts 2" (Some (2, "b")) (Lru.put l 3 "c");
  Alcotest.(check (option string)) "gone" None (Lru.find l 2);
  Alcotest.(check int) "len" 2 (Lru.length l)

let test_lru_replace () =
  let l = Lru.create ~capacity:2 () in
  ignore (Lru.put l 1 "a");
  ignore (Lru.put l 1 "a2");
  Alcotest.(check (option string)) "replaced" (Some "a2") (Lru.find l 1);
  Alcotest.(check int) "len" 1 (Lru.length l)

let test_lru_filter () =
  let l = Lru.create ~capacity:8 () in
  List.iter (fun i -> ignore (Lru.put l i (string_of_int i))) [ 1; 2; 3; 4 ];
  Lru.filter_inplace l (fun k _ -> k mod 2 = 0);
  Alcotest.(check int) "kept evens" 2 (Lru.length l);
  Alcotest.(check bool) "peek" true (Lru.peek l 2 <> None)

(* {1 Properties} *)

let arb_range =
  QCheck.map
    ~rev:(fun r -> (Byte_range.lo r, Byte_range.len r))
    (fun (lo, len) -> Byte_range.of_pos_len ~pos:lo ~len)
    QCheck.(pair (int_bound 200) (int_range 1 50))

let prop_diff_inter_partition =
  QCheck.Test.make ~name:"diff+inter partition a" ~count:500
    QCheck.(pair arb_range arb_range)
    (fun (a, b) ->
      let diff_bytes =
        List.fold_left (fun n r -> n + Byte_range.len r) 0 (Byte_range.diff a b)
      in
      let inter_bytes =
        match Byte_range.inter a b with Some r -> Byte_range.len r | None -> 0
      in
      diff_bytes + inter_bytes = Byte_range.len a)

let prop_rangeset_model =
  (* Range_set agrees with a naive per-byte bool-array model. *)
  QCheck.Test.make ~name:"range_set matches bitmap model" ~count:300
    QCheck.(list (pair bool arb_range))
    (fun ops ->
      let model = Array.make 300 false in
      let s =
        List.fold_left
          (fun s (add, r) ->
            for i = Byte_range.lo r to Byte_range.hi r - 1 do
              if i < 300 then model.(i) <- add
            done;
            if add then Range_set.add r s else Range_set.remove r s)
          Range_set.empty ops
      in
      let ok = ref true in
      for i = 0 to 299 do
        if Range_set.mem i s <> model.(i) then ok := false
      done;
      (* Invariant: ranges sorted, disjoint, non-adjacent. *)
      let rec check_sorted = function
        | a :: (b :: _ as rest) ->
          Byte_range.hi a < Byte_range.lo b && check_sorted rest
        | [ _ ] | [] -> true
      in
      !ok && check_sorted (Range_set.ranges s))

let prop_lru_capacity =
  QCheck.Test.make ~name:"lru never exceeds capacity" ~count:200
    QCheck.(pair (int_range 1 8) (small_list (int_bound 20)))
    (fun (cap, keys) ->
      let l = Lru.create ~capacity:cap () in
      List.iter (fun k -> ignore (Lru.put l k k)) keys;
      Lru.length l <= cap)

let suite =
  [
    ( "util.byte_range",
      [
        Alcotest.test_case "basics" `Quick test_basics;
        Alcotest.test_case "invalid" `Quick test_invalid;
        Alcotest.test_case "overlap" `Quick test_overlap;
        Alcotest.test_case "inter/hull" `Quick test_inter_hull;
        Alcotest.test_case "diff" `Quick test_diff;
        Alcotest.test_case "subsumes" `Quick test_subsumes;
        QCheck_alcotest.to_alcotest prop_diff_inter_partition;
      ] );
    ( "util.range_set",
      [
        Alcotest.test_case "coalesce" `Quick test_rs_coalesce;
        Alcotest.test_case "remove" `Quick test_rs_remove;
        Alcotest.test_case "set ops" `Quick test_rs_ops;
        QCheck_alcotest.to_alcotest prop_rangeset_model;
      ] );
    ( "util.lru",
      [
        Alcotest.test_case "basic" `Quick test_lru_basic;
        Alcotest.test_case "replace" `Quick test_lru_replace;
        Alcotest.test_case "filter" `Quick test_lru_filter;
        QCheck_alcotest.to_alcotest prop_lru_capacity;
      ] );
  ]
