(* System-level properties, checked over randomized schedules:

   - Serializability (§2): concurrent committed transfers compose to
     exactly the sum of their individual effects — no lost updates, no
     dirty reads, even with every account packed onto one physical page
     (the Figure 4 differencing paths under fire).
   - Atomicity under crashes (§4.3-4.4): inject a crash+reboot of a random
     site at a random time; committed transfers are fully applied,
     uncommitted ones fully invisible. *)

module L = Locus_core.Locus
module Api = L.Api
module K = L.Kernel
module M = L.Mode

let n_accounts = 8
let rec_len = 16
let initial = 1000

let read_bal env c a =
  int_of_string (String.trim (Bytes.to_string (Api.pread env c ~pos:(a * rec_len) ~len:rec_len)))

let write_bal env c a v =
  Api.pwrite env c ~pos:(a * rec_len) (Bytes.of_string (Printf.sprintf "%-*d" rec_len v))

type op = { from_a : int; to_a : int; amount : int; teller_site : int; delay : int }

(* Execute the ops concurrently (one process per op, at its site). Each op
   records the delta it applied iff its transaction committed. Returns the
   final committed balances and the applied deltas. *)
let run_workload ?inject ~seed ops =
  let sim = L.make ~seed ~n_sites:3 () in
  let cl = sim.L.cluster in
  (* Filled once the accounts file is durably initialized: fault injection
     must not corrupt the setup itself. *)
  let ready = Engine.Ivar.create () in
  (match inject with Some f -> f cl ready | None -> ());
  let applied = Array.make (List.length ops) None in
  ignore
    (Api.spawn_process cl ~site:0 ~name:"setup" (fun env ->
         let c = Api.creat env "/accts" ~vid:1 in
         for a = 0 to n_accounts - 1 do
           write_bal env c a initial
         done;
         Api.close env c;
         Engine.fill (K.engine cl) ready ();
         let run_op i op =
           Api.fork env ~site:op.teller_site ~name:(Printf.sprintf "op%d" i)
             (fun tenv ->
               Engine.sleep op.delay;
               let c = Api.open_file tenv "/accts" in
               let moved = ref 0 in
               let worker =
                 Api.fork tenv ~name:"xfer" (fun w ->
                     Api.begin_trans w;
                     Api.seek w c ~pos:(op.from_a * rec_len);
                     (match Api.lock w c ~len:rec_len ~mode:M.Exclusive () with
                     | Api.Granted -> ()
                     | Api.Conflict _ -> assert false);
                     if op.to_a <> op.from_a then begin
                       Api.seek w c ~pos:(op.to_a * rec_len);
                       match Api.lock w c ~len:rec_len ~mode:M.Exclusive () with
                       | Api.Granted -> ()
                       | Api.Conflict _ -> assert false
                     end;
                     let src = read_bal w c op.from_a in
                     let amt = min src op.amount in
                     if amt > 0 && op.to_a <> op.from_a then begin
                       write_bal w c op.from_a (src - amt);
                       write_bal w c op.to_a (read_bal w c op.to_a + amt)
                     end;
                     match Api.end_trans w with
                     | K.Committed ->
                       if op.to_a <> op.from_a then moved := amt
                     | K.Aborted -> moved := 0)
               in
               Api.wait_pid tenv worker;
               applied.(i) <- Some !moved;
               Api.close tenv c)
         in
         let pids = List.mapi run_op ops in
         List.iter (Api.wait_pid env) pids));
  L.run sim;
  let s = K.read_committed_oracle cl (Option.get (K.lookup cl "/accts")) in
  let balances =
    Array.init n_accounts (fun a ->
        int_of_string (String.trim (String.sub s (a * rec_len) rec_len)))
  in
  (balances, applied)

let expected_balances ops applied =
  let expected = Array.make n_accounts initial in
  List.iteri
    (fun i op ->
      match applied.(i) with
      | Some amt when amt > 0 ->
        expected.(op.from_a) <- expected.(op.from_a) - amt;
        expected.(op.to_a) <- expected.(op.to_a) + amt
      | Some _ | None -> ())
    ops;
  expected

let arb_ops =
  let gen_op =
    QCheck.Gen.(
      map
        (fun (f, t, a, s, d) ->
          { from_a = f; to_a = t; amount = 1 + a; teller_site = s; delay = d * 1000 })
        (tup5 (int_bound (n_accounts - 1)) (int_bound (n_accounts - 1))
           (int_bound 300) (int_bound 2) (int_bound 400)))
  in
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (fun o -> Printf.sprintf "%d->%d $%d @%d +%dus" o.from_a o.to_a o.amount o.teller_site o.delay)
           ops))
    QCheck.Gen.(list_size (int_range 2 6) gen_op)

let prop_serializable =
  QCheck.Test.make ~name:"concurrent transfers are serializable" ~count:12 arb_ops
    (fun ops ->
      if ops = [] then true
      else begin
        let balances, applied = run_workload ~seed:7 ops in
        (* Every op must have completed (no crashes in this property). *)
        Array.iteri
          (fun i o -> if o = None then QCheck.Test.fail_reportf "op %d lost" i)
          applied;
        balances = expected_balances ops applied
      end)

let prop_atomic_under_crash =
  let arb =
    QCheck.pair arb_ops QCheck.(pair (int_range 1 2) (int_bound 1500))
  in
  QCheck.Test.make ~name:"transfers atomic under crash+reboot" ~count:10 arb
    (fun (ops, (victim_site, crash_ms)) ->
      if ops = [] then true
      else begin
        (* Client processes run at site 0 (which never crashes here), so a
           None outcome is impossible and the expected vector is exact;
           only storage/participant sites die. *)
        let ops = List.map (fun o -> { o with teller_site = 0 }) ops in
        let victim_site = 1 + (abs victim_site mod 2) in
        let inject cl ready =
          ignore
            (Api.spawn_process cl ~site:0 ~name:"chaos" (fun _ ->
                 Engine.await ready;
                 Engine.sleep (abs crash_ms * 1000);
                 K.crash_site cl victim_site;
                 Engine.sleep 2_000_000;
                 K.restart_site cl victim_site))
        in
        let balances, applied = run_workload ~inject ~seed:11 ops in
        (* Ops whose runner died count as not-applied; committed ops must
           be fully visible. Conservation must hold regardless. *)
        let expected = expected_balances ops applied in
        let total = Array.fold_left ( + ) 0 balances in
        if total <> n_accounts * initial then
          QCheck.Test.fail_reportf "money not conserved: %d" total;
        (* For ops we know committed, the deltas must all be present;
           comparing full vectors checks that aborted ones left nothing. *)
        balances = expected
      end)

let suite =
  [
    ( "props.serializability",
      [
        QCheck_alcotest.to_alcotest prop_serializable;
        QCheck_alcotest.to_alcotest prop_atomic_under_crash;
      ] );
  ]

(* Appended: atomicity across a network partition + heal. *)

let prop_atomic_under_partition =
  QCheck.Test.make ~name:"transfers atomic across partition+heal" ~count:8
    QCheck.(pair arb_ops (int_bound 1500))
    (fun (ops, cut_ms) ->
      if ops = [] then true
      else begin
        let ops = List.map (fun o -> { o with teller_site = 0 }) ops in
        let inject cl ready =
          ignore
            (Api.spawn_process cl ~site:0 ~name:"partitioner" (fun _ ->
                 Engine.await ready;
                 Engine.sleep (abs cut_ms * 1000);
                 Locus_net.Transport.partition (K.transport cl) [ [ 0; 2 ]; [ 1 ] ];
                 Engine.sleep 3_000_000;
                 Locus_net.Transport.heal (K.transport cl)))
        in
        let balances, applied = run_workload ~inject ~seed:13 ops in
        let expected = expected_balances ops applied in
        let total = Array.fold_left ( + ) 0 balances in
        if total <> n_accounts * initial then
          QCheck.Test.fail_reportf "money not conserved: %d" total;
        balances = expected
      end)

let suite =
  suite
  @ [ ("props.partition", [ QCheck_alcotest.to_alcotest prop_atomic_under_partition ]) ]
