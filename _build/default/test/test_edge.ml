(* Edge-case system tests: append rollback, replica failover, in-doubt
   data protection, upgrade deadlocks. *)

module L = Locus_core.Locus
module Api = L.Api
module K = L.Kernel
module M = L.Mode
module LR = Locus_txn.Log_record

let test_append_abort_rolls_back_eof () =
  let offsets = ref [] in
  ignore
    (L.simulate ~n_sites:2 (fun cl ->
         ignore
           (Api.spawn_process cl ~site:0 (fun env ->
                let c = Api.creat env "/log" ~vid:1 in
                Api.close env c;
                let append_then outcome =
                  let runner =
                    Api.fork env (fun w ->
                        let lc = Api.open_file w "/log" in
                        Api.set_append w lc true;
                        Api.begin_trans w;
                        (match Api.lock w lc ~len:32 ~mode:M.Exclusive () with
                        | Api.Granted -> offsets := Api.pos w lc :: !offsets
                        | Api.Conflict _ -> Alcotest.fail "append lock");
                        Api.write_string w lc (String.make 32 'e');
                        (match outcome with
                        | `Commit -> ignore (Api.end_trans w)
                        | `Abort -> Api.abort_trans w);
                        Api.close w lc)
                  in
                  Api.wait_pid env runner
                in
                append_then `Abort;
                (* The aborted append must not leave a hole: the next
                   appender lands at offset 0 again. *)
                append_then `Commit;
                append_then `Commit;
                let c = Api.open_file env "/log" in
                Alcotest.(check int) "two surviving entries" 64 (Api.size env c);
                Api.close env c))));
  Alcotest.(check (list int)) "offsets: 0 (aborted), 0, 32" [ 0; 0; 32 ]
    (List.rev !offsets)

let test_replica_failover_serves_reads () =
  let config =
    { (K.Config.default ~n_sites:3) with
      K.Config.volumes = [ (0, [ 0 ]); (1, [ 1; 2 ]) ] }
  in
  let sim = L.make ~config ~n_sites:3 () in
  let cl = sim.L.cluster in
  ignore
    (Api.spawn_process cl ~site:0 ~name:"writer" (fun env ->
         let c = Api.creat env "/repl" ~vid:1 in
         Api.begin_trans env;
         Api.write_string env c "survives-failover";
         ignore (Api.end_trans env);
         Api.close env c));
  L.run sim;
  (* Primary (site 1) dies; the replica at site 2 takes over. *)
  K.crash_site cl 1;
  let seen = ref "" in
  ignore
    (Api.spawn_process cl ~site:0 ~name:"reader" (fun env ->
         let c = Api.open_file env "/repl" in
         seen := Bytes.to_string (Api.pread env c ~pos:0 ~len:17);
         Api.close env c));
  L.run sim;
  let fid = Option.get (K.lookup cl "/repl") in
  Alcotest.(check int) "primary re-elected to 2" 2 (K.storage_site cl fid);
  Alcotest.(check string) "replica serves committed data" "survives-failover" !seen

let test_in_doubt_data_stays_locked () =
  (* Participant reboots holding a prepared-but-undecided update while the
     coordinator is down: reads of that record must wait for the outcome
     (and then see the committed value), not observe the old value. *)
  let sim = L.make ~n_sites:3 () in
  let cl = sim.L.cluster in
  (K.hooks cl).K.on_decided <-
    (fun _txid status ->
      if status = LR.Committed then begin
        K.crash_site cl 2;
        K.crash_site cl 0;
        Engine.schedule ~delay:1_000_000 (K.engine cl) (fun () ->
            K.restart_site cl 2);
        Engine.schedule ~delay:15_000_000 (K.engine cl) (fun () ->
            K.restart_site cl 0)
      end);
  ignore
    (Api.spawn_process cl ~site:0 ~name:"client" (fun env ->
         let a = Api.creat env "/a" ~vid:1 in
         let b = Api.creat env "/b" ~vid:2 in
         Api.write_string env b "old-value!";
         Api.commit_file env b;
         Api.begin_trans env;
         Api.write_string env a "AAAA";
         Api.pwrite env b ~pos:0 (Bytes.of_string "new-value!");
         ignore (Api.end_trans env)));
  (* A reader at the surviving site 1 tries the record while site 2 is in
     doubt (coordinator still down): it must block and eventually see the
     committed value. *)
  ignore
    (Api.spawn_process cl ~site:1 ~name:"reader" (fun env ->
         Engine.sleep 4_000_000;
         let c = Api.open_file env "/b" in
         let v = Bytes.to_string (Api.pread env c ~pos:0 ~len:10) in
         Alcotest.(check string) "read waited for the outcome" "new-value!" v;
         let e = K.engine cl in
         Alcotest.(check bool) "read completed only after coordinator reboot"
           true
           (Engine.now e > 15_000_000);
         Api.close env c));
  L.run sim;
  Alcotest.(check string) "durable" "new-value!"
    (K.read_committed_oracle cl (Option.get (K.lookup cl "/b")))

let test_upgrade_deadlock_resolved () =
  (* Two transactions share-lock the same record, then both upgrade to
     exclusive: a classic conversion deadlock; one must die. *)
  let outcomes = ref [] in
  let sim = L.make ~n_sites:2 () in
  ignore
    (Api.spawn_process sim.L.cluster ~site:0 (fun env ->
         let c = Api.creat env "/r" ~vid:1 in
         Api.write_string env c "datum";
         Api.commit_file env c;
         let upgrader i =
           Api.fork env ~name:(Printf.sprintf "u%d" i) (fun w ->
               Api.begin_trans w;
               Api.seek w c ~pos:0;
               (match Api.lock w c ~len:5 ~mode:M.Shared () with
               | Api.Granted -> ()
               | Api.Conflict _ -> ());
               Engine.sleep 30_000;
               Api.seek w c ~pos:0;
               (match Api.lock w c ~len:5 ~mode:M.Exclusive () with
               | Api.Granted -> ()
               | Api.Conflict _ -> ());
               outcomes := Api.end_trans w :: !outcomes)
         in
         let p1 = upgrader 1 and p2 = upgrader 2 in
         Api.wait_pid env p1;
         Api.wait_pid env p2));
  L.run sim;
  let st = L.Engine.stats sim.L.engine in
  Alcotest.(check int) "one victim" 1 (L.Stats.get st "deadlock.victims");
  Alcotest.(check bool) "survivor committed" true
    (List.mem K.Committed !outcomes)

let test_read_only_transaction_cheap () =
  (* A transaction that only reads writes no data pages and no prepare
     log: just the two coordinator-log I/Os. *)
  let sim = L.make ~n_sites:2 () in
  let cl = sim.L.cluster in
  ignore
    (Api.spawn_process cl ~site:0 (fun env ->
         let c = Api.creat env "/r" ~vid:1 in
         Api.write_string env c "stuff";
         Api.commit_file env c;
         Engine.sleep 100_000;
         let k1 = K.kernel cl 1 in
         let vol1 = Option.get (Locus_fs.Filestore.volume (K.filestore k1) ~vid:1) in
         Locus_disk.Volume.reset_io_counters vol1;
         Api.begin_trans env;
         ignore (Api.pread env c ~pos:0 ~len:5);
         (match Api.end_trans env with
         | K.Committed -> ()
         | K.Aborted -> Alcotest.fail "read-only txn aborted");
         Alcotest.(check int) "no data-volume writes" 0
           (Locus_disk.Volume.io_writes vol1);
         Alcotest.(check int) "no prepare log" 0
           (Locus_disk.Volume.io_log_writes vol1)));
  L.run sim

let suite =
  [
    ( "edge",
      [
        Alcotest.test_case "append abort rolls back EOF" `Quick
          test_append_abort_rolls_back_eof;
        Alcotest.test_case "replica failover" `Quick
          test_replica_failover_serves_reads;
        Alcotest.test_case "in-doubt data locked" `Quick
          test_in_doubt_data_stays_locked;
        Alcotest.test_case "upgrade deadlock" `Quick test_upgrade_deadlock_resolved;
        Alcotest.test_case "read-only txn cheap" `Quick
          test_read_only_transaction_cheap;
      ] );
  ]
