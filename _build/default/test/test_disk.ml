(* Volume and Cache. *)

module E = Engine
module V = Locus_disk.Volume
module C = Locus_disk.Cache

let in_sim f =
  let e = E.create () in
  let result = ref None in
  ignore (E.spawn e (fun () -> result := Some (f e)));
  E.run e;
  Option.get !result

let test_page_roundtrip () =
  in_sim (fun e ->
      let v = V.create e ~vid:1 () in
      let p = V.alloc_page v in
      V.write_page v p (Bytes.of_string "hello");
      let b = V.read_page v p in
      Alcotest.(check int) "page size" 1024 (Bytes.length b);
      Alcotest.(check string) "prefix" "hello" (Bytes.to_string (Bytes.sub b 0 5));
      Alcotest.(check char) "zero padded" '\000' (Bytes.get b 5);
      Alcotest.(check int) "write count" 1 (V.io_writes v);
      Alcotest.(check int) "read count" 1 (V.io_reads v))

let test_page_copy_isolation () =
  in_sim (fun e ->
      let v = V.create e ~vid:1 () in
      let p = V.alloc_page v in
      let src = Bytes.of_string "abc" in
      V.write_page v p src;
      Bytes.set src 0 'X';
      Alcotest.(check char) "store not aliased" 'a' (Bytes.get (V.read_page_nosim v p) 0);
      let out = V.read_page_nosim v p in
      Bytes.set out 0 'Y';
      Alcotest.(check char) "read not aliased" 'a' (Bytes.get (V.read_page_nosim v p) 0))

let test_alloc_free_reuse () =
  in_sim (fun _e ->
      ())
  |> ignore;
  let e = E.create () in
  let v = V.create e ~vid:1 () in
  let p1 = V.alloc_page v in
  let p2 = V.alloc_page v in
  Alcotest.(check bool) "distinct" true (p1 <> p2);
  V.free_page v p1;
  Alcotest.(check int) "reused" p1 (V.alloc_page v)

let test_inode_roundtrip () =
  in_sim (fun e ->
      let v = V.create e ~vid:1 () in
      let ino = V.alloc_inode v in
      V.write_inode v { V.ino; size = 42; pages = [| 3; -1; 7 |]; version = 0 };
      let i = V.read_inode v ino in
      Alcotest.(check int) "size" 42 i.V.size;
      Alcotest.(check (array int)) "pages" [| 3; -1; 7 |] i.V.pages;
      Alcotest.(check int) "version bumped" 1 i.V.version;
      V.write_inode v { i with V.size = 50 };
      Alcotest.(check int) "version 2" 2 (V.read_inode_nosim v ino).V.version;
      Alcotest.(check (list int)) "inode numbers" [ ino ] (V.inode_numbers v))

let test_inode_atomicity_model () =
  (* write_inode stores a snapshot: later mutation of the caller's array
     must not leak into the "disk". *)
  in_sim (fun e ->
      let v = V.create e ~vid:1 () in
      let ino = V.alloc_inode v in
      let pages = [| 1; 2 |] in
      V.write_inode v { V.ino; size = 1; pages; version = 0 };
      pages.(0) <- 99;
      Alcotest.(check int) "snapshot" 1 (V.read_inode_nosim v ino).V.pages.(0))

let test_log () =
  in_sim (fun e ->
      let v = V.create e ~vid:1 () in
      let i1 = V.log_append v ~tag:"a" "one" in
      let i2 = V.log_append v ~tag:"b" "two" in
      let i3 = V.log_append v ~tag:"a" "three" in
      Alcotest.(check int) "log io" 3 (V.io_log_writes v);
      Alcotest.(check (list (triple int string string)))
        "records"
        [ (i1, "a", "one"); (i2, "b", "two"); (i3, "a", "three") ]
        (V.log_records v);
      V.log_overwrite v i2 ~tag:"b" "TWO";
      V.log_delete v i1;
      Alcotest.(check (list (triple int string string)))
        "after overwrite+delete"
        [ (i2, "b", "TWO"); (i3, "a", "three") ]
        (V.log_records v))

let test_two_write_log () =
  in_sim (fun e ->
      let v = V.create e ~vid:1 () in
      V.set_two_write_log v true;
      ignore (V.log_append v ~tag:"x" "y");
      (* Footnote 9: uncorrected implementation pays two I/Os per append. *)
      Alcotest.(check int) "two ios" 2 (V.io_log_writes v))

let test_disk_contention () =
  (* Two concurrent I/Os on one volume serialize: total elapsed is about
     twice one I/O, not one. *)
  let e = E.create () in
  let v = V.create e ~vid:1 () in
  let p1 = V.alloc_page v and p2 = V.alloc_page v in
  ignore (E.spawn e (fun () -> V.write_page v p1 (Bytes.create 1)));
  ignore (E.spawn e (fun () -> V.write_page v p2 (Bytes.create 1)));
  E.run e;
  let one_io = Costs.disk_io_us Costs.default ~bytes:1024 in
  Alcotest.(check bool) "serialized" true (E.now e >= 2 * one_io)

let test_cache_hit_miss () =
  in_sim (fun e ->
      let v = V.create e ~vid:1 () in
      let c = C.create e in
      let p = V.alloc_page v in
      V.write_page v p (Bytes.of_string "data");
      let b1 = C.read c v p in
      let reads_after_miss = V.io_reads v in
      let b2 = C.read c v p in
      Alcotest.(check int) "second read free" reads_after_miss (V.io_reads v);
      Alcotest.(check bytes) "same content" b1 b2;
      Alcotest.(check int) "hit" 1 (C.hits c);
      Alcotest.(check int) "miss" 1 (C.misses c))

let test_cache_invalidate () =
  in_sim (fun e ->
      let v = V.create e ~vid:1 () in
      let c = C.create e in
      let p = V.alloc_page v in
      V.write_page v p (Bytes.of_string "old");
      ignore (C.read c v p);
      C.invalidate c v p;
      let reads_before = V.io_reads v in
      ignore (C.read c v p);
      Alcotest.(check int) "re-read after invalidate" (reads_before + 1) (V.io_reads v);
      C.put c v p (Bytes.of_string "new");
      Alcotest.(check string) "put visible" "new"
        (Bytes.to_string (Bytes.sub (C.read c v p) 0 3)))

let test_cache_volume_invalidate () =
  in_sim (fun e ->
      let v1 = V.create e ~vid:1 () and v2 = V.create e ~vid:2 () in
      let c = C.create e in
      let p1 = V.alloc_page v1 and p2 = V.alloc_page v2 in
      V.write_page v1 p1 (Bytes.of_string "a");
      V.write_page v2 p2 (Bytes.of_string "b");
      ignore (C.read c v1 p1);
      ignore (C.read c v2 p2);
      C.invalidate_volume c ~vid:1;
      let r1 = V.io_reads v1 and r2 = V.io_reads v2 in
      ignore (C.read c v1 p1);
      ignore (C.read c v2 p2);
      Alcotest.(check int) "v1 re-read" (r1 + 1) (V.io_reads v1);
      Alcotest.(check int) "v2 still cached" r2 (V.io_reads v2))

let suite =
  [
    ( "disk.volume",
      [
        Alcotest.test_case "page roundtrip" `Quick test_page_roundtrip;
        Alcotest.test_case "copy isolation" `Quick test_page_copy_isolation;
        Alcotest.test_case "alloc/free" `Quick test_alloc_free_reuse;
        Alcotest.test_case "inode roundtrip" `Quick test_inode_roundtrip;
        Alcotest.test_case "inode snapshot" `Quick test_inode_atomicity_model;
        Alcotest.test_case "log" `Quick test_log;
        Alcotest.test_case "two-write log (fn 9)" `Quick test_two_write_log;
        Alcotest.test_case "contention" `Quick test_disk_contention;
      ] );
    ( "disk.cache",
      [
        Alcotest.test_case "hit/miss" `Quick test_cache_hit_miss;
        Alcotest.test_case "invalidate" `Quick test_cache_invalidate;
        Alcotest.test_case "invalidate volume" `Quick test_cache_volume_invalidate;
      ] );
  ]
