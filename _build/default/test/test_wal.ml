(* The write-ahead-log baseline and the operation-counting model. *)

module E = Engine
module V = Locus_disk.Volume
module R = Locus_wal.Redo_log
module O = Locus_wal.Opcount

let in_sim f =
  let e = E.create () in
  let result = ref None in
  ignore (E.spawn e (fun () -> result := Some (f e)));
  E.run e;
  Option.get !result

let with_wal f =
  in_sim (fun e ->
      let vol = V.create e ~vid:1 ~page_size:64 () in
      f e (R.create vol) vol)

let test_write_commit_read () =
  with_wal (fun _e w _vol ->
      let f = R.create_file w in
      R.write w f ~owner:"t1" ~pos:0 (Bytes.of_string "hello");
      Alcotest.(check string) "buffered visible" "hello"
        (Bytes.to_string (R.read w f ~pos:0 ~len:5));
      Alcotest.(check string) "not committed" "\000"
        (Bytes.to_string (R.read_committed w f ~pos:0 ~len:1));
      let ios = R.commit w ~owner:"t1" in
      Alcotest.(check int) "one log page" 1 ios;
      Alcotest.(check string) "committed" "hello"
        (Bytes.to_string (R.read_committed w f ~pos:0 ~len:5)))

let test_abort () =
  with_wal (fun _e w _vol ->
      let f = R.create_file w in
      R.write w f ~owner:"t1" ~pos:0 (Bytes.of_string "nope");
      R.abort w ~owner:"t1";
      Alcotest.(check int) "commit after abort writes nothing" 0 (R.commit w ~owner:"t1");
      Alcotest.(check string) "clean" "\000"
        (Bytes.to_string (R.read w f ~pos:0 ~len:1)))

let test_big_commit_spans_log_pages () =
  with_wal (fun _e w _vol ->
      let f = R.create_file w in
      (* 200 bytes of records over 64-byte log pages: > 1 forced page. *)
      for i = 0 to 4 do
        R.write w f ~owner:"t1" ~pos:(i * 40) (Bytes.make 40 'x')
      done;
      let ios = R.commit w ~owner:"t1" in
      Alcotest.(check bool) "multiple log pages" true (ios >= 3))

let test_checkpoint_and_recover () =
  with_wal (fun _e w _vol ->
      let f = R.create_file w in
      R.write w f ~owner:"t1" ~pos:0 (Bytes.of_string "alpha");
      ignore (R.commit w ~owner:"t1");
      Alcotest.(check bool) "dirty pages pending" true (R.dirty_pages w > 0);
      let ios = R.checkpoint w in
      Alcotest.(check bool) "checkpoint wrote" true (ios > 0);
      Alcotest.(check int) "clean" 0 (R.dirty_pages w);
      (* Crash after checkpoint: data must come back from the pages. *)
      R.crash w;
      ignore (R.recover w);
      Alcotest.(check string) "from pages" "alpha"
        (Bytes.to_string (R.read_committed w f ~pos:0 ~len:5)))

let test_crash_before_checkpoint_replays_log () =
  with_wal (fun _e w _vol ->
      let f = R.create_file w in
      R.write w f ~owner:"t1" ~pos:0 (Bytes.of_string "logged");
      ignore (R.commit w ~owner:"t1");
      (* No checkpoint: only the log holds the data. *)
      R.crash w;
      let replayed = R.recover w in
      Alcotest.(check bool) "records replayed" true (replayed > 0);
      Alcotest.(check string) "redone" "logged"
        (Bytes.to_string (R.read_committed w f ~pos:0 ~len:6)))

let test_uncommitted_lost_on_crash () =
  with_wal (fun _e w _vol ->
      let f = R.create_file w in
      R.write w f ~owner:"t1" ~pos:0 (Bytes.of_string "gone");
      R.crash w;
      ignore (R.recover w);
      Alcotest.(check string) "atomic" "\000"
        (Bytes.to_string (R.read_committed w f ~pos:0 ~len:1)))

let test_two_owners_independent () =
  with_wal (fun _e w _vol ->
      let f = R.create_file w in
      R.write w f ~owner:"a" ~pos:0 (Bytes.of_string "AA");
      R.write w f ~owner:"b" ~pos:10 (Bytes.of_string "BB");
      ignore (R.commit w ~owner:"a");
      R.abort w ~owner:"b";
      Alcotest.(check string) "a committed" "AA"
        (Bytes.to_string (R.read_committed w f ~pos:0 ~len:2));
      Alcotest.(check string) "b dropped" "\000\000"
        (Bytes.to_string (R.read_committed w f ~pos:10 ~len:2)))

(* {1 Opcount model} *)

let test_opcount_figure5_shape () =
  (* A one-record, one-file, one-volume transaction: the paper's Figure 5
     counts 3 foreground I/Os + commit mark + 1 deferred = 5 total. *)
  let b = O.shadow O.default_params in
  Alcotest.(check int) "foreground 4" 4 b.O.foreground;
  Alcotest.(check int) "deferred 1" 1 b.O.deferred;
  Alcotest.(check int) "total 5" 5 b.O.total

let test_opcount_multi_volume () =
  let p = { O.default_params with O.files = 3; volumes = 3; records_per_txn = 3 } in
  let b = O.shadow p in
  (* One prepare log per volume (Figure 5 discussion). *)
  Alcotest.(check int) "log writes" (1 + 3 + 1) b.O.log_writes;
  Alcotest.(check int) "inodes deferred" 3 b.O.inode_writes

let test_opcount_small_records_favor_wal () =
  let p = { O.default_params with O.record_size = 32; records_per_txn = 8;
            placement = O.Random_within 64 } in
  Alcotest.(check bool) "logging wins on small scattered records" true
    ((O.wal p).O.foreground < (O.shadow p).O.foreground)

let test_opcount_large_records_competitive () =
  let p = { O.default_params with O.record_size = 1024; records_per_txn = 4 } in
  let s = O.shadow p and w = O.wal p in
  (* Whole-page records: logging writes the data twice (log then in
     place), shadow paging once plus bookkeeping — totals are comparable,
     which is §6's claim. *)
  Alcotest.(check bool) "totals within 2x" true
    (s.O.total <= 2 * w.O.total && w.O.total <= 2 * s.O.total)

let test_opcount_crossover_exists () =
  match O.crossover_record_size () with
  | Some size -> Alcotest.(check bool) "within a page" true (size <= 1024)
  | None -> Alcotest.fail "expected a crossover for packed records"

let test_pages_touched () =
  let p = { O.default_params with O.record_size = 100; records_per_txn = 10 } in
  Alcotest.(check int) "sequential packing" 1
    (O.pages_touched { p with O.record_size = 10; records_per_txn = 10 });
  Alcotest.(check bool) "random spreads" true
    (O.pages_touched { p with O.placement = O.Random_within 100 }
    > O.pages_touched p)

let suite =
  [
    ( "wal.redo_log",
      [
        Alcotest.test_case "write/commit/read" `Quick test_write_commit_read;
        Alcotest.test_case "abort" `Quick test_abort;
        Alcotest.test_case "big commit" `Quick test_big_commit_spans_log_pages;
        Alcotest.test_case "checkpoint+recover" `Quick test_checkpoint_and_recover;
        Alcotest.test_case "log replay" `Quick test_crash_before_checkpoint_replays_log;
        Alcotest.test_case "uncommitted lost" `Quick test_uncommitted_lost_on_crash;
        Alcotest.test_case "two owners" `Quick test_two_owners_independent;
      ] );
    ( "wal.opcount",
      [
        Alcotest.test_case "figure 5 shape" `Quick test_opcount_figure5_shape;
        Alcotest.test_case "multi volume" `Quick test_opcount_multi_volume;
        Alcotest.test_case "small records favor wal" `Quick
          test_opcount_small_records_favor_wal;
        Alcotest.test_case "large records competitive" `Quick
          test_opcount_large_records_competitive;
        Alcotest.test_case "crossover" `Quick test_opcount_crossover_exists;
        Alcotest.test_case "pages touched" `Quick test_pages_touched;
      ] );
  ]
