(* Transaction substrates: ids, log records, coordinator log, participant
   state, the active-transaction registry. *)

module E = Engine
module V = Locus_disk.Volume
module C = Locus_disk.Cache
module FS = Locus_fs.Filestore
module LR = Locus_txn.Log_record
module CL = Locus_txn.Coord_log
module P = Locus_txn.Participant
module TS = Locus_txn.Txn_state

let txid n = Txid.make ~site:0 ~incarnation:1 ~seq:n
let fid n = File_id.make ~vid:1 ~ino:n

let in_sim f =
  let e = E.create () in
  let result = ref None in
  ignore (E.spawn e (fun () -> result := Some (f e)));
  E.run e;
  Option.get !result

(* {1 Txid} *)

let test_txid () =
  let a = txid 1 in
  Alcotest.(check bool) "equal" true (Txid.equal a (txid 1));
  Alcotest.(check bool) "distinct seq" false (Txid.equal a (txid 2));
  Alcotest.(check bool) "distinct incarnation" false
    (Txid.equal a (Txid.make ~site:0 ~incarnation:2 ~seq:1));
  Alcotest.(check (option string)) "round trip" (Some (Txid.to_string a))
    (Option.map Txid.to_string (Txid.of_string (Txid.to_string a)));
  Alcotest.(check (option string)) "reject garbage" None
    (Option.map Txid.to_string (Txid.of_string "nope"))

(* {1 Log records} *)

let test_log_record_roundtrip () =
  let coord =
    LR.Coordinator { LR.txid = txid 3; files = [ (fid 1, 0); (fid 2, 1) ]; status = LR.Unknown }
  in
  (match LR.decode (LR.encode coord) with
  | Some (LR.Coordinator c) ->
    Alcotest.(check bool) "txid" true (Txid.equal c.LR.txid (txid 3));
    Alcotest.(check int) "files" 2 (List.length c.LR.files)
  | _ -> Alcotest.fail "coordinator roundtrip");
  let prep =
    LR.Prepare { LR.txid = txid 4; coordinator_site = 2; intentions = []; locked = [ fid 1 ] }
  in
  (match LR.decode (LR.encode prep) with
  | Some (LR.Prepare p) -> Alcotest.(check int) "coord site" 2 p.LR.coordinator_site
  | _ -> Alcotest.fail "prepare roundtrip");
  Alcotest.(check bool) "garbage rejected" true (LR.decode "junk" = None)

(* {1 Coordinator log} *)

let test_coord_log_lifecycle () =
  in_sim (fun e ->
      let vol = V.create e ~vid:0 () in
      let cl = CL.create vol in
      CL.begin_commit cl ~txid:(txid 1) ~files:[ (fid 1, 1) ];
      Alcotest.(check bool) "unknown" true (CL.outcome cl (txid 1) = Some LR.Unknown);
      CL.decide cl ~txid:(txid 1) LR.Committed;
      Alcotest.(check bool) "committed" true (CL.outcome cl (txid 1) = Some LR.Committed);
      Alcotest.(check int) "pending" 1 (List.length (CL.pending cl));
      CL.finished cl ~txid:(txid 1);
      Alcotest.(check bool) "gone" true (CL.outcome cl (txid 1) = None);
      Alcotest.(check int) "none pending" 0 (List.length (CL.pending cl)))

let test_coord_log_scan_rebuilds () =
  in_sim (fun e ->
      let vol = V.create e ~vid:0 () in
      let cl = CL.create vol in
      CL.begin_commit cl ~txid:(txid 1) ~files:[ (fid 1, 1) ];
      CL.decide cl ~txid:(txid 1) LR.Committed;
      CL.begin_commit cl ~txid:(txid 2) ~files:[ (fid 2, 1) ];
      (* "Crash": a fresh Coord_log over the same volume (volatile index
         lost, durable records kept). *)
      let cl2 = CL.create vol in
      Alcotest.(check bool) "index empty before scan" true (CL.pending cl2 = []);
      let records = CL.scan cl2 in
      Alcotest.(check int) "both records found" 2 (List.length records);
      Alcotest.(check bool) "committed survives" true
        (CL.outcome cl2 (txid 1) = Some LR.Committed);
      Alcotest.(check bool) "unknown survives" true
        (CL.outcome cl2 (txid 2) = Some LR.Unknown))

(* {1 Participant} *)

let with_participant f =
  in_sim (fun e ->
      let cache = C.create e in
      let store = FS.create e ~cache in
      let vol = V.create e ~vid:1 ~page_size:64 () in
      FS.mount store vol;
      let part = P.create store in
      f e store vol part)

let test_participant_prepare_commit () =
  with_participant (fun _e store vol part ->
      let f1 = FS.create_file store ~vid:1 in
      FS.open_file store f1;
      FS.write store f1 ~owner:(Owner.Transaction (txid 1)) ~pos:0
        (Bytes.of_string "money");
      let logs_before = V.io_log_writes vol in
      Alcotest.(check bool) "vote yes" true
        (P.prepare part ~txid:(txid 1) ~coordinator_site:0 ~files:[ f1 ]);
      (* One prepare-log record for the (single) volume. *)
      Alcotest.(check int) "one log write" (logs_before + 1) (V.io_log_writes vol);
      Alcotest.(check bool) "prepared" true (P.is_prepared part (txid 1));
      P.commit part ~txid:(txid 1);
      Alcotest.(check bool) "no longer prepared" false (P.is_prepared part (txid 1));
      Alcotest.(check string) "durable" "money"
        (Bytes.to_string (FS.read_committed store f1 ~pos:0 ~len:5));
      (* The prepare record is discarded after commit. *)
      let live_preps =
        List.filter (fun (_, tag, _) -> tag = LR.prepare_tag) (V.log_records vol)
      in
      Alcotest.(check int) "log cleaned" 0 (List.length live_preps))

let test_participant_read_only_file () =
  with_participant (fun _e store _vol part ->
      let f1 = FS.create_file store ~vid:1 in
      FS.open_file store f1;
      (* The transaction only read the file: prepare must vote yes without
         writing any intentions. *)
      Alcotest.(check bool) "vote" true
        (P.prepare part ~txid:(txid 1) ~coordinator_site:0 ~files:[ f1 ]);
      Alcotest.(check int) "no intentions" 0
        (List.length (P.prepared_intentions part (txid 1)));
      P.commit part ~txid:(txid 1))

let test_participant_abort_prepared () =
  with_participant (fun _e store _vol part ->
      let f1 = FS.create_file store ~vid:1 in
      FS.open_file store f1;
      FS.write store f1 ~owner:(Owner.Transaction (txid 1)) ~pos:0
        (Bytes.of_string "nope!");
      ignore (P.prepare part ~txid:(txid 1) ~coordinator_site:0 ~files:[ f1 ]);
      P.abort part ~txid:(txid 1);
      Alcotest.(check int) "size unchanged" 0 (FS.committed_size store f1);
      Alcotest.(check string) "rolled back volatile too" "\000"
        (Bytes.to_string (FS.read store f1 ~pos:0 ~len:1)))

let test_participant_commit_idempotent () =
  with_participant (fun _e store _vol part ->
      let f1 = FS.create_file store ~vid:1 in
      FS.open_file store f1;
      FS.write store f1 ~owner:(Owner.Transaction (txid 1)) ~pos:0
        (Bytes.of_string "once!");
      ignore (P.prepare part ~txid:(txid 1) ~coordinator_site:0 ~files:[ f1 ]);
      P.commit part ~txid:(txid 1);
      P.commit part ~txid:(txid 1) (* duplicate message *);
      P.abort part ~txid:(txid 1) (* stale abort is also harmless *);
      Alcotest.(check string) "exactly once" "once!"
        (Bytes.to_string (FS.read_committed store f1 ~pos:0 ~len:5)))

let test_participant_recover () =
  with_participant (fun _e store _vol part ->
      let f1 = FS.create_file store ~vid:1 in
      FS.open_file store f1;
      FS.write store f1 ~owner:(Owner.Transaction (txid 1)) ~pos:0
        (Bytes.of_string "redo!");
      ignore (P.prepare part ~txid:(txid 1) ~coordinator_site:7 ~files:[ f1 ]);
      (* Crash: volatile participant + filestore state lost. *)
      P.crash part;
      FS.crash store;
      let in_doubt = P.recover part in
      Alcotest.(check (list (pair string int))) "in doubt with coordinator"
        [ (Txid.to_string (txid 1), 7) ]
        (List.map (fun (tx, s) -> (Txid.to_string tx, s)) in_doubt);
      (* Outcome arrives: commit completes purely from the log. *)
      P.commit part ~txid:(txid 1);
      FS.open_file store f1;
      Alcotest.(check string) "redone" "redo!"
        (Bytes.to_string (FS.read_committed store f1 ~pos:0 ~len:5)))

let test_participant_per_file_log_ablation () =
  with_participant (fun _e store vol part ->
      P.set_prepare_log_per_file part true;
      let f1 = FS.create_file store ~vid:1 in
      let f2 = FS.create_file store ~vid:1 in
      FS.open_file store f1;
      FS.open_file store f2;
      let o = Owner.Transaction (txid 1) in
      FS.write store f1 ~owner:o ~pos:0 (Bytes.of_string "a");
      FS.write store f2 ~owner:o ~pos:0 (Bytes.of_string "b");
      let logs_before = V.io_log_writes vol in
      ignore (P.prepare part ~txid:(txid 1) ~coordinator_site:0 ~files:[ f1; f2 ]);
      (* Footnote 10: one record per file instead of one per volume. *)
      Alcotest.(check int) "two log writes" (logs_before + 2) (V.io_log_writes vol);
      P.commit part ~txid:(txid 1))

(* {1 Txn_state} *)

let test_txn_state () =
  let ts = TS.create () in
  let top = Pid.make ~origin:0 ~num:1 in
  let txn = TS.start ts ~txid:(txid 1) ~top_pid:top in
  Alcotest.(check int) "one member" 1 txn.TS.live_members;
  TS.member_joined ts (txid 1);
  TS.member_joined ts (txid 1);
  TS.member_exited ts (txid 1);
  Alcotest.(check int) "joins/exits" 2 txn.TS.live_members;
  TS.merge_files txn [ (fid 1, 0); (fid 2, 1) ];
  TS.merge_files txn [ (fid 1, 0); (fid 3, 1) ];
  Alcotest.(check int) "deduplicated merge" 3 (List.length txn.TS.file_list);
  (* Migration: release + adopt. *)
  (match TS.release ts (txid 1) with
  | Some t -> TS.adopt ts t
  | None -> Alcotest.fail "release");
  Alcotest.(check bool) "found after adopt" true (TS.find ts (txid 1) <> None);
  TS.remove ts (txid 1);
  Alcotest.(check (list string)) "empty" []
    (List.map (fun (t : TS.txn) -> Txid.to_string t.TS.txid) (TS.active ts))

let suite =
  [
    ( "txn.ids+records",
      [
        Alcotest.test_case "txid" `Quick test_txid;
        Alcotest.test_case "log record roundtrip" `Quick test_log_record_roundtrip;
      ] );
    ( "txn.coord_log",
      [
        Alcotest.test_case "lifecycle" `Quick test_coord_log_lifecycle;
        Alcotest.test_case "scan rebuilds" `Quick test_coord_log_scan_rebuilds;
      ] );
    ( "txn.participant",
      [
        Alcotest.test_case "prepare/commit" `Quick test_participant_prepare_commit;
        Alcotest.test_case "read-only file" `Quick test_participant_read_only_file;
        Alcotest.test_case "abort prepared" `Quick test_participant_abort_prepared;
        Alcotest.test_case "commit idempotent" `Quick test_participant_commit_idempotent;
        Alcotest.test_case "recover" `Quick test_participant_recover;
        Alcotest.test_case "per-file log (fn 10)" `Quick
          test_participant_per_file_log_ablation;
      ] );
    ( "txn.state",
      [ Alcotest.test_case "registry" `Quick test_txn_state ] );
  ]
