(* The reconstructed previous facility ([Mueller83] baseline): version
   stacks and the process-based fully-nested transaction semantics. *)

module VS = Locus_nested.Version_stack
module OF = Locus_nested.Old_facility
module E = Engine

(* {1 Version stacks} *)

let s_of b = Bytes.to_string b

let test_vs_basic () =
  let v = VS.create () in
  Alcotest.(check int) "empty" 0 (VS.depth v);
  VS.push v;
  VS.write v ~pos:0 (Bytes.of_string "hello");
  Alcotest.(check string) "frame read" "hello" (s_of (VS.read v ~pos:0 ~len:5));
  Alcotest.(check string) "base clean" "\000" (s_of (VS.committed v ~pos:0 ~len:1));
  VS.commit_top v;
  Alcotest.(check string) "merged to base" "hello" (s_of (VS.committed v ~pos:0 ~len:5));
  Alcotest.(check int) "size" 5 (VS.size v)

let test_vs_nested_commit_abort () =
  let v = VS.create () in
  VS.push v;
  VS.write v ~pos:0 (Bytes.of_string "outer-");
  VS.push v;
  VS.write v ~pos:6 (Bytes.of_string "inner");
  Alcotest.(check string) "stacked read" "outer-inner" (s_of (VS.read v ~pos:0 ~len:11));
  VS.abort_top v;
  Alcotest.(check string) "inner aborted" "outer-\000\000\000\000\000"
    (s_of (VS.read v ~pos:0 ~len:11));
  VS.push v;
  VS.write v ~pos:6 (Bytes.of_string "redo!");
  VS.commit_top v;
  Alcotest.(check string) "inner redone into parent" "outer-redo!"
    (s_of (VS.read v ~pos:0 ~len:11));
  Alcotest.(check string) "still not durable" "\000" (s_of (VS.committed v ~pos:0 ~len:1));
  VS.commit_top v;
  Alcotest.(check string) "durable" "outer-redo!" (s_of (VS.committed v ~pos:0 ~len:11))

let test_vs_overwrite_shadowing () =
  let v = VS.create () in
  VS.push v;
  VS.write v ~pos:0 (Bytes.of_string "AAAA");
  VS.push v;
  VS.write v ~pos:2 (Bytes.of_string "bb");
  Alcotest.(check string) "inner shadows" "AAbb" (s_of (VS.read v ~pos:0 ~len:4));
  VS.abort_top v;
  Alcotest.(check string) "outer restored" "AAAA" (s_of (VS.read v ~pos:0 ~len:4))

let test_vs_frame_bytes () =
  let v = VS.create () in
  VS.push v;
  VS.write v ~pos:0 (Bytes.of_string "12345678");
  VS.push v;
  VS.write v ~pos:100 (Bytes.of_string "12");
  Alcotest.(check int) "bookkeeping bytes" 10 (VS.frame_bytes v)

let prop_vs_matches_model =
  (* Compare against a naive model: a stack of byte-array overlays. *)
  QCheck.Test.make ~name:"version stack matches overlay model" ~count:200
    QCheck.(
      small_list
        (oneof
           [
             map (fun (p, len) -> `Write (p mod 64, 1 + (len mod 16)))
               (pair small_nat small_nat);
             always `Push;
             always `Commit;
             always `Abort;
           ]))
    (fun ops ->
      let v = VS.create () in
      let model_base = Bytes.make 128 '\000' in
      let model_frames = ref [] in
      let seq = ref 0 in
      List.iter
        (fun op ->
          match op with
          | `Push ->
            VS.push v;
            model_frames := Bytes.make 128 '\255' :: !model_frames
            (* 255 = "unwritten" marker *)
          | `Write (pos, len) ->
            (match !model_frames with
            | [] -> ()
            | top :: _ ->
              incr seq;
              let ch = Char.chr (Char.code 'a' + (!seq mod 26)) in
              let data = Bytes.make len ch in
              VS.write v ~pos data;
              Bytes.blit data 0 top pos len)
          | `Commit -> (
            match !model_frames with
            | [] -> ()
            | top :: rest ->
              VS.commit_top v;
              let target = match rest with [] -> model_base | parent :: _ -> parent in
              for i = 0 to 127 do
                if Bytes.get top i <> '\255' then Bytes.set target i (Bytes.get top i)
              done;
              model_frames := rest)
          | `Abort -> (
            match !model_frames with
            | [] -> ()
            | _ :: rest ->
              VS.abort_top v;
              model_frames := rest))
        ops;
      (* Compare the visible read at every position. *)
      let visible = VS.read v ~pos:0 ~len:128 in
      let expect = Bytes.copy model_base in
      List.iter
        (fun frame ->
          for i = 0 to 127 do
            if Bytes.get frame i <> '\255' then Bytes.set expect i (Bytes.get frame i)
          done)
        (List.rev !model_frames);
      Bytes.equal visible expect)

(* {1 The old facility} *)

let with_fac f =
  let e = E.create () in
  let fac = OF.create e in
  let result = ref None in
  ignore (E.spawn e (fun () -> result := Some (f fac)));
  E.run e;
  Option.get !result

let test_of_commit () =
  with_fac (fun fac ->
      let f = OF.create_file fac "/t" in
      let o =
        OF.run_transaction fac (fun txn ->
            OF.write txn f ~pos:0 (Bytes.of_string "payload"))
      in
      Alcotest.(check bool) "committed" true (o = OF.Committed);
      Alcotest.(check string) "durable" "payload" (OF.committed_contents fac f);
      Alcotest.(check bool) "io charged" true (OF.io_count fac > 0))

let test_of_abort () =
  with_fac (fun fac ->
      let f = OF.create_file fac "/t" in
      let o =
        OF.run_transaction fac (fun txn ->
            OF.write txn f ~pos:0 (Bytes.of_string "doomed!");
            OF.abort txn)
      in
      Alcotest.(check bool) "aborted" true (o = OF.Aborted);
      Alcotest.(check string) "nothing durable" "" (OF.committed_contents fac f))

let test_of_subtransaction_partial_abort () =
  (* The old facility's selling point: an aborted subtransaction loses
     only its own work. *)
  with_fac (fun fac ->
      let f = OF.create_file fac "/t" in
      let o =
        OF.run_transaction fac (fun txn ->
            OF.write txn f ~pos:0 (Bytes.of_string "keep");
            let sub =
              OF.subtransaction txn (fun sub ->
                  OF.write sub f ~pos:4 (Bytes.of_string "DROP");
                  OF.abort sub)
            in
            Alcotest.(check bool) "sub aborted" true (sub = OF.Aborted);
            let sub2 =
              OF.subtransaction txn (fun sub ->
                  OF.write sub f ~pos:4 (Bytes.of_string "good"))
            in
            Alcotest.(check bool) "sub2 committed" true (sub2 = OF.Committed))
      in
      Alcotest.(check bool) "outer committed" true (o = OF.Committed);
      Alcotest.(check string) "only surviving writes" "keepgood"
        (OF.committed_contents fac f))

let test_of_whole_file_serialization () =
  (* Two concurrent transactions on DISJOINT records still serialize:
     whole-file locking (the §7.1 complaint). *)
  let e = E.create () in
  let fac = OF.create e in
  let overlap = ref false in
  let active = ref 0 in
  ignore
    (E.spawn e (fun () ->
         let f = OF.create_file fac "/t" in
         let worker pos =
           ignore
             (E.spawn e (fun () ->
                  ignore
                    (OF.run_transaction fac (fun txn ->
                         (* The whole-file lock is taken at first access:
                            count holders only after it. *)
                         OF.write txn f ~pos (Bytes.of_string "xxxx");
                         incr active;
                         if !active > 1 then overlap := true;
                         E.sleep 10_000;
                         decr active))))
         in
         worker 0;
         worker 100));
  E.run e;
  Alcotest.(check bool) "never concurrent" false !overlap

let test_of_process_cost () =
  (* Every (sub)transaction pays a process creation. *)
  let e = E.create () in
  let fac = OF.create e in
  ignore
    (E.spawn e (fun () ->
         let f = OF.create_file fac "/t" in
         ignore
           (OF.run_transaction fac (fun txn ->
                OF.write txn f ~pos:0 (Bytes.of_string "x");
                ignore (OF.subtransaction txn (fun sub ->
                    OF.write sub f ~pos:1 (Bytes.of_string "y")));
                ignore (OF.subtransaction txn (fun sub ->
                    OF.write sub f ~pos:2 (Bytes.of_string "z")))))));
  E.run e;
  Alcotest.(check int) "three heavyweight processes" 3
    (Stats.get (E.stats e) "nested.processes")

let suite =
  [
    ( "nested.version_stack",
      [
        Alcotest.test_case "basic" `Quick test_vs_basic;
        Alcotest.test_case "nested commit/abort" `Quick test_vs_nested_commit_abort;
        Alcotest.test_case "shadowing" `Quick test_vs_overwrite_shadowing;
        Alcotest.test_case "frame bytes" `Quick test_vs_frame_bytes;
        QCheck_alcotest.to_alcotest prop_vs_matches_model;
      ] );
    ( "nested.old_facility",
      [
        Alcotest.test_case "commit" `Quick test_of_commit;
        Alcotest.test_case "abort" `Quick test_of_abort;
        Alcotest.test_case "subtransaction partial abort" `Quick
          test_of_subtransaction_partial_abort;
        Alcotest.test_case "whole-file serialization" `Quick
          test_of_whole_file_serialization;
        Alcotest.test_case "process cost" `Quick test_of_process_cost;
      ] );
  ]
