test/test_edge.ml: Alcotest Bytes Engine List Locus_core Locus_disk Locus_fs Locus_txn Option Printf String
