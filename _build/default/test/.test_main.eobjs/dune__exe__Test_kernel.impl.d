test/test_kernel.ml: Alcotest Bytes Engine File_id Int List Locus_core Locus_disk Locus_fs Option Owner Printf String
