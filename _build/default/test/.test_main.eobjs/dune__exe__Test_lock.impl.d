test/test_lock.ml: Alcotest Byte_range File_id Hashtbl List Locus_lock Option Owner Pid QCheck QCheck_alcotest Txid
