test/test_txn.ml: Alcotest Bytes Engine File_id List Locus_disk Locus_fs Locus_txn Option Owner Pid Txid
