test/test_wal.ml: Alcotest Bytes Engine Locus_disk Locus_wal Option
