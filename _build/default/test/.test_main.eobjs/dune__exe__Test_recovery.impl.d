test/test_recovery.ml: Alcotest Bytes Engine Locus_core Locus_lock Locus_net Locus_txn Option
