test/test_deadlock.ml: Alcotest Byte_range Engine File_id List Locus_core Locus_deadlock Locus_lock Owner Pid Printf QCheck QCheck_alcotest String Txid
