test/test_proc.ml: Alcotest Bytes File_id List Locus_core Locus_proc Option Owner Pid Printf Prng Txid
