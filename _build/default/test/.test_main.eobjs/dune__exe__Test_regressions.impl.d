test/test_regressions.ml: Alcotest Byte_range Bytes Engine File_id List Locus_core Locus_disk Locus_fs Locus_lock Option Owner Printf Prng String Txid
