test/test_access_matrix.ml: Alcotest Bytes Engine Locus_core
