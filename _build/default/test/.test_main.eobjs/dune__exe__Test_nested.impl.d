test/test_nested.ml: Alcotest Bytes Char Engine List Locus_nested Option QCheck QCheck_alcotest Stats
