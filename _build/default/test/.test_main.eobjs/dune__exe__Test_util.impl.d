test/test_util.ml: Alcotest Array Byte_range List Lru QCheck QCheck_alcotest Range_set
