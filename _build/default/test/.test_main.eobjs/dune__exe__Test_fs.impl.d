test/test_fs.ml: Alcotest Array Byte_range Bytes Engine Gen Hashtbl List Locus_disk Locus_fs Option Owner Pid Printf QCheck QCheck_alcotest Stats String Txid
