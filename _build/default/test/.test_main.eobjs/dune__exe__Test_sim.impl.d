test/test_sim.ml: Alcotest Costs Engine Fun List Locus_core Pqueue Printf Prng QCheck QCheck_alcotest Stats String Trace
