test/test_props.ml: Array Bytes Engine List Locus_core Locus_net Option Printf QCheck QCheck_alcotest String
