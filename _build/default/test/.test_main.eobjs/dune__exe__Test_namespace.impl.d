test/test_namespace.ml: Alcotest Bytes Engine List Locus_core Option Printf String
