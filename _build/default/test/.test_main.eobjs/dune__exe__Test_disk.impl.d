test/test_disk.ml: Alcotest Array Bytes Costs Engine Locus_disk Option
