test/test_net.ml: Alcotest Costs Engine List Locus_net Stats
