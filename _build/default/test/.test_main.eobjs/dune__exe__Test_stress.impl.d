test/test_stress.ml: Alcotest Bytes Engine List Locus_core Option Printf Prng String Txid
