(* Regression tests for bugs found (and fixed) during development. Each
   test reproduces the original failure schedule. *)

module E = Engine
module V = Locus_disk.Volume
module C = Locus_disk.Cache
module FS = Locus_fs.Filestore
module L = Locus_core.Locus
module Api = L.Api
module K = L.Kernel
module M = L.Mode

let tx n = Owner.Transaction (Txid.make ~site:0 ~incarnation:1 ~seq:n)

(* Bug 1: two concurrent first-opens of the same file both missed the
   in-core table (the inode read yields) and the loser's record clobbered
   the winner's, silently dropping volatile modifications. *)
let test_concurrent_open_no_clobber () =
  let e = E.create () in
  let cache = C.create e in
  let store = FS.create e ~cache in
  let vol = V.create e ~vid:1 () in
  FS.mount store vol;
  let fid = ref None in
  ignore
    (E.spawn e (fun () ->
         fid := Some (FS.create_file store ~vid:1)));
  E.run e;
  let fid = Option.get !fid in
  (* Two openers race; the first also writes immediately. *)
  ignore
    (E.spawn e (fun () ->
         FS.open_file store fid;
         FS.write store fid ~owner:(tx 1) ~pos:0 (Bytes.of_string "precious")));
  ignore (E.spawn e (fun () -> FS.open_file store fid));
  E.run e;
  ignore
    (E.spawn e (fun () ->
         Alcotest.(check (list (pair int int)))
           "mods survived the racing open"
           [ (0, 8) ]
           (List.map
              (fun r -> (Byte_range.lo r, Byte_range.len r))
              (FS.modified_by store fid (tx 1)))));
  E.run e

(* Bug 2: two transactions' commit applications interleaved across disk
   I/O yield points; the second inode write clobbered the first. The
   per-file gate serializes them. *)
let test_interleaved_commit_apply () =
  let e = E.create () in
  let cache = C.create e in
  let store = FS.create e ~cache in
  let vol = V.create e ~vid:1 ~page_size:64 () in
  FS.mount store vol;
  ignore
    (E.spawn e (fun () ->
         let fid = FS.create_file store ~vid:1 in
         FS.open_file store fid;
         FS.write store fid ~owner:(tx 1) ~pos:0 (Bytes.of_string "AAAA");
         FS.write store fid ~owner:(tx 2) ~pos:8 (Bytes.of_string "BBBB");
         let i1 = FS.prepare store fid ~owner:(tx 1) in
         let i2 = FS.prepare store fid ~owner:(tx 2) in
         (* Fire both applications concurrently. *)
         ignore (E.spawn e (fun () -> FS.commit_prepared store i1));
         ignore (E.spawn e (fun () -> FS.commit_prepared store i2))));
  E.run e;
  ignore
    (E.spawn e (fun () ->
         let fid = File_id.make ~vid:1 ~ino:1 in
         FS.open_file store fid;
         Alcotest.(check string) "tx1 bytes" "AAAA"
           (Bytes.to_string (FS.read_committed store fid ~pos:0 ~len:4));
         Alcotest.(check string) "tx2 bytes" "BBBB"
           (Bytes.to_string (FS.read_committed store fid ~pos:8 ~len:4))));
  E.run e

(* Bug 3: a forked child inherits the parent's channels but the storage
   site's open refcount was not bumped, so the child's exit could drop
   in-core file state (including other owners' uncommitted data). *)
let test_fork_inherited_channel_refcount () =
  let sim = L.make ~n_sites:2 () in
  let cl = sim.L.cluster in
  let final = ref "" in
  ignore
    (Api.spawn_process cl ~site:0 (fun env ->
         let c = Api.creat env "/f" ~vid:1 in
         Api.write_string env c "base";
         Api.commit_file env c;
         (* Parent leaves uncommitted data, child (inheriting the channel)
            exits: the parent's volatile state must survive. *)
         Api.pwrite env c ~pos:0 (Bytes.of_string "dirt");
         let child = Api.fork env (fun cenv -> ignore (Api.pread cenv c ~pos:0 ~len:4)) in
         Api.wait_pid env child;
         final := Bytes.to_string (Api.pread env c ~pos:0 ~len:4);
         Api.close env c));
  L.run sim;
  Alcotest.(check string) "uncommitted data survived child exit" "dirt" !final

(* Bug 4: Prng.int produced negative values for some 64-bit draws
   (Int64.to_int sign bit). *)
let test_prng_never_negative () =
  let p = Prng.create ~seed:123456 in
  for _ = 1 to 100_000 do
    let v = Prng.int p 1_000_000 in
    if v < 0 then Alcotest.failf "negative draw %d" v
  done

(* Bug 5: a satisfied await_timeout left its timer in the event heap,
   stretching virtual time by the full timeout. *)
let test_cancelled_timer_does_not_stretch_clock () =
  let e =
    E.run_fn (fun t ->
        let iv = E.Ivar.create () in
        ignore (E.spawn t (fun () -> ignore (E.await_timeout iv ~timeout:60_000_000)));
        ignore
          (E.spawn t (fun () ->
               E.sleep 50;
               E.fill t iv ())))
  in
  Alcotest.(check bool) "clock stayed near the fill time" true (E.now e < 1_000)

(* Bug 6: unlocking inside a transaction did not release locks taken
   before BeginTrans (§3.4 requires they are not converted). Covered
   positively in test_kernel; here the negative: the transaction's own
   locks must still be retained by that same unlock. *)
let test_unlock_retains_txn_but_releases_pretxn () =
  let sim = L.make ~n_sites:2 () in
  let cl = sim.L.cluster in
  let probe_granted = ref None in
  ignore
    (Api.spawn_process cl ~site:0 (fun env ->
         let c = Api.creat env "/f" ~vid:1 in
         Api.write_string env c (String.make 32 'x');
         Api.commit_file env c;
         Api.begin_trans env;
         Api.seek env c ~pos:0;
         (match Api.lock env c ~len:16 ~mode:M.Exclusive () with
         | Api.Granted -> ()
         | Api.Conflict _ -> assert false);
         Api.seek env c ~pos:0;
         Api.unlock env c ~len:16;
         (* The transaction lock is retained: an INDEPENDENT process (not a
            forked member, which would share the transaction's locks) must
            still be blocked. *)
         let p =
           Api.spawn_process (Api.cluster env) ~site:1 (fun q ->
               let qc = Api.open_file q "/f" in
               Api.seek q qc ~pos:0;
               (match Api.lock q qc ~len:16 ~mode:M.Exclusive ~wait:false () with
               | Api.Granted -> probe_granted := Some true
               | Api.Conflict _ -> probe_granted := Some false);
               Api.close q qc)
         in
         Api.wait_pid env p;
         ignore (Api.end_trans env)));
  L.run sim;
  Alcotest.(check (option bool)) "txn lock retained after unlock" (Some false)
    !probe_granted

let suite =
  [
    ( "regressions",
      [
        Alcotest.test_case "concurrent open clobber" `Quick
          test_concurrent_open_no_clobber;
        Alcotest.test_case "interleaved commit apply" `Quick
          test_interleaved_commit_apply;
        Alcotest.test_case "fork channel refcount" `Quick
          test_fork_inherited_channel_refcount;
        Alcotest.test_case "prng sign" `Quick test_prng_never_negative;
        Alcotest.test_case "cancelled timer" `Quick
          test_cancelled_timer_does_not_stretch_clock;
        Alcotest.test_case "unlock retention split" `Quick
          test_unlock_retains_txn_but_releases_pretxn;
      ] );
  ]

(* Bug 7: the per-file commit gate handed ownership to a waiter whose
   fiber had been killed (deadlock-victim cascade); the dead fiber never
   released it and every later commit on that file wedged. Reproduce:
   single site, many unordered multi-record transactions, deadlock
   victims killed while queued on the gate. *)
let test_gate_survives_killed_waiters () =
  let sim = L.make ~seed:42 ~n_sites:1 () in
  let cl = sim.L.cluster in
  ignore
    (Api.spawn_process cl ~site:0 ~name:"setup" (fun env ->
         let c = Api.creat env "/hot" ~vid:0 in
         Api.write_string env c (String.make 2048 'i');
         Api.close env c;
         let terminal t =
           Api.fork env ~name:(Printf.sprintf "t%d" t) (fun w ->
               let prng = Prng.create ~seed:(500 + t) in
               let c = Api.open_file w "/hot" in
               Api.begin_trans w;
               (* Unordered: deadlocks guaranteed across 16 workers. *)
               for _ = 1 to 4 do
                 let pos = 64 * Prng.int prng 32 in
                 Api.seek w c ~pos;
                 (match Api.lock w c ~len:64 ~mode:M.Exclusive () with
                 | Api.Granted -> ()
                 | Api.Conflict _ -> ());
                 Api.pwrite w c ~pos (Bytes.make 64 'u')
               done;
               ignore (Api.end_trans w);
               Api.close w c)
         in
         let pids = List.init 16 terminal in
         List.iter (Api.wait_pid env) pids));
  L.run sim;
  let st = L.Engine.stats sim.L.engine in
  let committed = L.Stats.get st "txn.committed" in
  let victims = L.Stats.get st "deadlock.victims" in
  Alcotest.(check bool) "deadlocks actually happened" true (victims > 0);
  Alcotest.(check int) "everyone else committed" 16 (committed + victims);
  (* The wedge symptom was mass lock timeouts. *)
  Alcotest.(check int) "no residual locks" 0
    (match K.lookup cl "/hot" with
    | Some fid -> (
      match K.lock_table (K.kernel cl 0) fid with
      | Some t -> Locus_lock.Lock_table.lock_count t
      | None -> 0)
    | None -> -1)

let suite =
  suite
  @ [
      ( "regressions.gate",
        [
          Alcotest.test_case "gate survives killed waiters" `Quick
            test_gate_survives_killed_waiters;
        ] );
    ]
