(* Process records and per-site tables. *)

module P = Locus_proc.Process
module PT = Locus_proc.Proc_table

let fid n = File_id.make ~vid:1 ~ino:n

let test_create_defaults () =
  let pid = Pid.make ~origin:0 ~num:1 in
  let p = P.create ~pid ~site:0 ~parent:None in
  Alcotest.(check bool) "not in txn" false (P.in_transaction p);
  Alcotest.(check bool) "owner is process" true
    (P.owner p = Owner.Process pid);
  Alcotest.(check int) "no nesting" 0 p.P.nesting;
  Alcotest.(check (list int)) "no channels" []
    (List.map (fun c -> c.P.chan) p.P.channels)

let test_channels () =
  let p = P.create ~pid:(Pid.make ~origin:0 ~num:1) ~site:0 ~parent:None in
  let c1 = P.add_channel p (fid 1) in
  let c2 = P.add_channel p (fid 2) in
  Alcotest.(check bool) "distinct" true (c1 <> c2);
  (match P.channel p c1 with
  | Some ch ->
    Alcotest.(check int) "pos starts 0" 0 ch.P.pos;
    Alcotest.(check bool) "fid" true (File_id.equal ch.P.fid (fid 1))
  | None -> Alcotest.fail "channel missing");
  P.close_channel p c1;
  Alcotest.(check bool) "closed" true (P.channel p c1 = None);
  Alcotest.(check bool) "other open" true (P.channel p c2 <> None)

let test_fork_inherits () =
  let pid = Pid.make ~origin:0 ~num:1 in
  let p = P.create ~pid ~site:0 ~parent:None in
  p.P.txid <- Some (Txid.make ~site:0 ~incarnation:1 ~seq:9);
  p.P.nesting <- 2;
  let c = P.add_channel p (fid 1) in
  (Option.get (P.channel p c)).P.pos <- 123;
  P.note_file_use p (fid 1);
  let child = P.fork_child p ~pid:(Pid.make ~origin:0 ~num:2) ~site:1 in
  Alcotest.(check bool) "txn inherited" true (P.in_transaction child);
  Alcotest.(check int) "nesting inherited" 2 child.P.nesting;
  (match P.channel child c with
  | Some ch -> Alcotest.(check int) "position copied" 123 ch.P.pos
  | None -> Alcotest.fail "channel not inherited");
  (* Channel state is copied, not shared. *)
  (Option.get (P.channel child c)).P.pos <- 999;
  Alcotest.(check int) "parent pos unchanged" 123 (Option.get (P.channel p c)).P.pos;
  Alcotest.(check bool) "file list NOT inherited" true
    (File_id.Set.is_empty child.P.file_list);
  Alcotest.(check bool) "child not top-level" false child.P.top_level

let test_proc_table () =
  let t = PT.create ~site:3 in
  let pid1 = PT.alloc_pid t and pid2 = PT.alloc_pid t in
  Alcotest.(check bool) "pids distinct" false (Pid.equal pid1 pid2);
  Alcotest.(check int) "origin site" 3 pid1.Pid.origin;
  let p1 = P.create ~pid:pid1 ~site:3 ~parent:None in
  PT.insert t p1;
  Alcotest.check_raises "double insert"
    (Invalid_argument "Proc_table.insert: pid already present") (fun () ->
      PT.insert t p1);
  Alcotest.(check bool) "find" true (PT.find t pid1 <> None);
  Alcotest.(check bool) "mem" true (PT.mem t pid1);
  Alcotest.(check int) "count" 1 (List.length (PT.processes t));
  PT.remove t pid1;
  Alcotest.(check bool) "removed" false (PT.mem t pid1)

let test_members_of () =
  let t = PT.create ~site:0 in
  let txid = Txid.make ~site:0 ~incarnation:1 ~seq:1 in
  let mk in_txn =
    let p = P.create ~pid:(PT.alloc_pid t) ~site:0 ~parent:None in
    if in_txn then p.P.txid <- Some txid;
    PT.insert t p;
    p
  in
  let _m1 = mk true and _m2 = mk true and _other = mk false in
  Alcotest.(check int) "two members" 2 (List.length (PT.members_of t txid));
  PT.clear t;
  Alcotest.(check int) "cleared" 0 (List.length (PT.processes t))

(* Whole-system determinism: the same seed yields the same virtual end
   time, the same stats, and the same committed bytes. *)
let test_determinism () =
  let module L = Locus_core.Locus in
  let module Api = L.Api in
  let run () =
    let sim = L.make ~seed:2024 ~n_sites:3 () in
    ignore
      (Api.spawn_process sim.L.cluster ~site:0 (fun env ->
           let c = Api.creat env "/d" ~vid:1 in
           let prng = Prng.create ~seed:5 in
           let workers =
             List.init 6 (fun i ->
                 Api.fork env ~site:(i mod 3) (fun w ->
                     Api.begin_trans w;
                     let pos = Prng.int prng 8 * 16 in
                     Api.seek w c ~pos;
                     (match Api.lock w c ~len:16 ~mode:L.Mode.Exclusive () with
                     | Api.Granted -> ()
                     | Api.Conflict _ -> ());
                     Api.pwrite w c ~pos (Bytes.of_string (Printf.sprintf "%-16d" i));
                     ignore (Api.end_trans w)))
           in
           List.iter (Api.wait_pid env) workers));
    L.run sim;
    let oracle =
      L.Kernel.read_committed_oracle sim.L.cluster
        (Option.get (L.Kernel.lookup sim.L.cluster "/d"))
    in
    (L.Engine.now sim.L.engine, oracle,
     L.Stats.get (L.Engine.stats sim.L.engine) "net.msg")
  in
  let t1, o1, m1 = run () in
  let t2, o2, m2 = run () in
  Alcotest.(check int) "same end time" t1 t2;
  Alcotest.(check string) "same committed bytes" o1 o2;
  Alcotest.(check int) "same message count" m1 m2

let suite =
  [
    ( "proc",
      [
        Alcotest.test_case "defaults" `Quick test_create_defaults;
        Alcotest.test_case "channels" `Quick test_channels;
        Alcotest.test_case "fork inherits" `Quick test_fork_inherits;
        Alcotest.test_case "table" `Quick test_proc_table;
        Alcotest.test_case "members_of" `Quick test_members_of;
        Alcotest.test_case "whole-system determinism" `Quick test_determinism;
      ] );
  ]
