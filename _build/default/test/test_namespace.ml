(* Name mapping through real directory files (§3.2, §3.4). *)

module L = Locus_core.Locus
module Api = L.Api
module K = L.Kernel
module M = L.Mode

let scenario ?(n_sites = 3) ?(site = 0) f =
  L.simulate ~n_sites (fun cl -> ignore (Api.spawn_process cl ~site (f cl)))

let test_create_and_open_nested () =
  let read_back = ref "" in
  ignore
    (scenario (fun _cl env ->
         let c = Api.creat env "/db/tables/accounts" ~vid:1 in
         Api.write_string env c "hello";
         Api.commit_file env c;
         Api.close env c;
         let c2 = Api.open_file env "/db/tables/accounts" in
         read_back := Bytes.to_string (Api.pread env c2 ~pos:0 ~len:5);
         Api.close env c2));
  Alcotest.(check string) "nested path round trip" "hello" !read_back

let test_open_missing_fails () =
  let failed = ref false in
  ignore
    (scenario (fun _cl env ->
         (try ignore (Api.open_file env "/no/such/file")
          with Api.Error _ -> failed := true)));
  Alcotest.(check bool) "missing path raises" true !failed

let test_duplicate_create_fails () =
  let second = ref None in
  ignore
    (scenario (fun _cl env ->
         let c = Api.creat env "/dup" ~vid:1 in
         Api.close env c;
         (try ignore (Api.creat env "/dup" ~vid:1)
          with Api.Error _ -> second := Some `Raised)));
  Alcotest.(check bool) "duplicate create raises" true (!second = Some `Raised)

(* §3.4's example: concurrent transactions creating the same name — one
   must fail immediately, even though neither has reached its commit
   point. *)
let test_concurrent_same_name_create () =
  let results = ref [] in
  ignore
    (scenario (fun _cl env ->
         let maker i site =
           Api.fork env ~site ~name:(Printf.sprintf "mk%d" i) (fun m ->
               Api.begin_trans m;
               (try
                  let c = Api.creat m "/contested" ~vid:1 in
                  Api.write_string m c (Printf.sprintf "winner%d" i);
                  results := `Created :: !results;
                  ignore (Api.end_trans m);
                  Api.close m c
                with Api.Error _ ->
                  results := `Failed :: !results;
                  Api.abort_trans m))
         in
         let a = maker 1 1 and b = maker 2 2 in
         Api.wait_pid env a;
         Api.wait_pid env b));
  let created = List.length (List.filter (( = ) `Created) !results) in
  let failed = List.length (List.filter (( = ) `Failed) !results) in
  Alcotest.(check int) "exactly one creator wins" 1 created;
  Alcotest.(check int) "the other fails pre-commit" 1 failed

(* Directory updates are visible and durable immediately, and directory
   locks are not retained by the enclosing transaction (§3.4): a second
   transaction can create a sibling file while the first transaction is
   still open. *)
let test_directory_not_locked_by_transaction () =
  let sibling_ok = ref false in
  ignore
    (scenario (fun _cl env ->
         Api.begin_trans env;
         let c = Api.creat env "/shared/a" ~vid:1 in
         Api.write_string env c "uncommitted";
         (* Transaction still open; an independent process creates a
            sibling in the same directory without blocking. *)
         let p =
           Api.spawn_process (Api.cluster env) ~site:1 (fun q ->
               try
                 let qc = Api.creat q "/shared/b" ~vid:1 in
                 sibling_ok := true;
                 Api.close q qc
               with Api.Error _ -> ())
         in
         Api.wait_pid env p;
         ignore (Api.end_trans env)));
  Alcotest.(check bool) "sibling created mid-transaction" true !sibling_ok

(* File creation is explicitly visible even if the creating transaction
   aborts (§3.4: some actions should be visible during execution). *)
let test_creation_survives_abort () =
  let visible = ref false in
  ignore
    (scenario (fun _cl env ->
         Api.begin_trans env;
         let c = Api.creat env "/persistent-name" ~vid:1 in
         Api.write_string env c "rolled-back-data";
         Api.abort_trans env;
         Api.close env c;
         (* The name exists; the data does not. *)
         let c2 = Api.open_file env "/persistent-name" in
         visible := true;
         Alcotest.(check int) "aborted data gone" 0 (Api.size env c2);
         Api.close env c2));
  Alcotest.(check bool) "name visible after abort" true !visible

let test_name_cache_cheapens_reopen () =
  let first = ref 0 and second = ref 0 in
  ignore
    (scenario ~n_sites:2 (fun cl env ->
         let c = Api.creat env "/x/y/z" ~vid:1 in
         Api.close env c;
         let e = K.engine cl in
         (* A different process pays the full resolution walk once... *)
         let p =
           Api.spawn_process cl ~site:1 (fun q ->
               let t0 = Engine.now e in
               let c1 = Api.open_file q "/x/y/z" in
               first := Engine.now e - t0;
               Api.close q c1;
               let t1 = Engine.now e in
               let c2 = Api.open_file q "/x/y/z" in
               second := Engine.now e - t1;
               Api.close q c2)
         in
         Api.wait_pid env p));
  Alcotest.(check bool) "first resolution costs more" true (!first > !second);
  Alcotest.(check bool) "both nonzero" true (!first > 0 && !second > 0)

let test_root_listing_via_oracle () =
  let sim =
    scenario (fun _cl env ->
        let a = Api.creat env "/one" ~vid:1 in
        Api.close env a;
        let b = Api.creat env "/two" ~vid:2 in
        Api.close env b)
  in
  let root = Option.get (K.lookup sim.L.cluster "/") in
  let contents = K.read_committed_oracle sim.L.cluster root in
  Alcotest.(check int) "two 64-byte entries" 128 (String.length contents);
  Alcotest.(check bool) "names present" true
    (let s = contents in
     let has n =
       let rec find i =
         i + String.length n <= String.length s
         && (String.sub s i (String.length n) = n || find (i + 1))
       in
       find 0
     in
     has "one" && has "two")

let suite =
  [
    ( "namespace",
      [
        Alcotest.test_case "nested create/open" `Quick test_create_and_open_nested;
        Alcotest.test_case "missing path" `Quick test_open_missing_fails;
        Alcotest.test_case "duplicate create" `Quick test_duplicate_create_fails;
        Alcotest.test_case "concurrent same-name create (§3.4)" `Quick
          test_concurrent_same_name_create;
        Alcotest.test_case "directory not transaction-locked" `Quick
          test_directory_not_locked_by_transaction;
        Alcotest.test_case "creation survives abort" `Quick
          test_creation_survives_abort;
        Alcotest.test_case "name cache" `Quick test_name_cache_cheapens_reopen;
        Alcotest.test_case "root listing" `Quick test_root_listing_via_oracle;
      ] );
  ]

(* Appended: mkdir / readdir. *)

let test_mkdir_readdir () =
  let names = ref [] and root = ref [] in
  ignore
    (scenario (fun _cl env ->
         Api.mkdir env "/dir" ~vid:1;
         let a = Api.creat env "/dir/alpha" ~vid:1 in
         Api.close env a;
         let b = Api.creat env "/dir/beta" ~vid:2 in
         Api.close env b;
         Api.mkdir env "/dir/sub" ~vid:1;
         names := Api.readdir env "/dir";
         root := Api.readdir env "/"));
  Alcotest.(check (list string)) "entries in order" [ "alpha"; "beta"; "sub" ] !names;
  Alcotest.(check (list string)) "root lists dir" [ "dir" ] !root

let test_readdir_missing () =
  let raised = ref false in
  ignore
    (scenario (fun _cl env ->
         try ignore (Api.readdir env "/nope") with Api.Error _ -> raised := true));
  Alcotest.(check bool) "raises" true !raised

let suite =
  suite
  @ [
      ( "namespace.dirs",
        [
          Alcotest.test_case "mkdir/readdir" `Quick test_mkdir_readdir;
          Alcotest.test_case "readdir missing" `Quick test_readdir_missing;
        ] );
    ]
