(* Filestore: the shadow-page record commit mechanism (Figure 4). *)

module E = Engine
module V = Locus_disk.Volume
module C = Locus_disk.Cache
module FS = Locus_fs.Filestore
module I = Locus_fs.Intentions

let tx n = Owner.Transaction (Txid.make ~site:0 ~incarnation:1 ~seq:n)
let proc n = Owner.Process (Pid.make ~origin:0 ~num:n)
let br lo hi = Byte_range.v ~lo ~hi

(* Run [f] inside a fiber with a fresh store holding one volume; returns
   [f]'s result after the engine quiesces. *)
let in_store ?(page_size = 64) f =
  let e = E.create () in
  let cache = C.create e in
  let store = FS.create e ~cache in
  let vol = V.create e ~vid:1 ~page_size () in
  FS.mount store vol;
  let result = ref None in
  ignore (E.spawn e (fun () -> result := Some (f e store vol)));
  E.run e;
  Option.get !result

let s_of b = Bytes.to_string b
let wr store fid owner pos s = FS.write store fid ~owner ~pos (Bytes.of_string s)
let rd store fid pos len = s_of (FS.read store fid ~pos ~len)
let rdc store fid pos len = s_of (FS.read_committed store fid ~pos ~len)

let test_create_open_close () =
  in_store (fun _e store _vol ->
      let fid = FS.create_file store ~vid:1 in
      Alcotest.(check bool) "exists" true (FS.file_exists store fid);
      Alcotest.(check bool) "not open" false (FS.is_open store fid);
      FS.open_file store fid;
      Alcotest.(check bool) "open" true (FS.is_open store fid);
      FS.open_file store fid;
      FS.close_file store fid;
      Alcotest.(check bool) "refcounted" true (FS.is_open store fid);
      FS.close_file store fid;
      Alcotest.(check bool) "closed" false (FS.is_open store fid);
      Alcotest.(check int) "empty" 0 (FS.size store fid))

let test_write_read_visibility () =
  in_store (fun _e store _vol ->
      let fid = FS.create_file store ~vid:1 in
      FS.open_file store fid;
      wr store fid (tx 1) 0 "hello";
      Alcotest.(check string) "uncommitted visible" "hello" (rd store fid 0 5);
      Alcotest.(check string) "committed empty" "\000\000\000\000\000" (rdc store fid 0 5);
      Alcotest.(check int) "volatile size" 5 (FS.size store fid);
      Alcotest.(check int) "committed size" 0 (FS.committed_size store fid))

let test_commit_direct () =
  in_store (fun e store vol ->
      let fid = FS.create_file store ~vid:1 in
      FS.open_file store fid;
      wr store fid (tx 1) 0 "data!";
      let it = FS.commit store fid ~owner:(tx 1) in
      Alcotest.(check int) "one page" 1 (List.length it.I.pages);
      Alcotest.(check string) "committed" "data!" (rdc store fid 0 5);
      Alcotest.(check int) "size" 5 (FS.committed_size store fid);
      Alcotest.(check int) "direct path" 1 (Stats.get (E.stats e) "commit.direct");
      Alcotest.(check int) "no merge" 0 (Stats.get (E.stats e) "commit.merge");
      Alcotest.(check bool) "nothing pending" false (FS.has_uncommitted store fid);
      ignore vol)

let test_commit_spanning_pages () =
  in_store ~page_size:8 (fun _e store _vol ->
      let fid = FS.create_file store ~vid:1 in
      FS.open_file store fid;
      let s = "abcdefghijklmnopqrst" (* 20 bytes over 8-byte pages *) in
      wr store fid (tx 1) 0 s;
      let it = FS.commit store fid ~owner:(tx 1) in
      Alcotest.(check int) "three pages" 3 (List.length it.I.pages);
      Alcotest.(check string) "roundtrip" s (rdc store fid 0 20))

let test_abort_sole () =
  in_store (fun _e store _vol ->
      let fid = FS.create_file store ~vid:1 in
      FS.open_file store fid;
      wr store fid (tx 1) 0 "base " ;
      ignore (FS.commit store fid ~owner:(tx 1));
      wr store fid (tx 2) 0 "WRECK";
      FS.abort store fid ~owner:(tx 2);
      Alcotest.(check string) "rolled back" "base " (rd store fid 0 5);
      Alcotest.(check int) "size rolled back" 5 (FS.size store fid))

let test_two_owners_disjoint_same_page () =
  in_store (fun e store _vol ->
      let fid = FS.create_file store ~vid:1 in
      FS.open_file store fid;
      (* Disjoint records on one 64-byte page. *)
      wr store fid (tx 1) 0 "AAAA";
      wr store fid (tx 2) 10 "BBBB";
      Alcotest.(check (list (pair int int))) "tx1 ranges" [ (0, 4) ]
        (List.map (fun r -> (Byte_range.lo r, Byte_range.len r))
           (FS.modified_by store fid (tx 1)));
      (* Commit tx1: must not commit tx2's bytes (Figure 4b). *)
      ignore (FS.commit store fid ~owner:(tx 1));
      Alcotest.(check string) "tx1 committed" "AAAA" (rdc store fid 0 4);
      Alcotest.(check string) "tx2 not committed" "\000\000\000\000" (rdc store fid 10 4);
      Alcotest.(check string) "tx2 still visible" "BBBB" (rd store fid 10 4);
      Alcotest.(check int) "merge path used" 1 (Stats.get (E.stats e) "commit.merge");
      (* Commit tx2 afterwards: both survive. *)
      ignore (FS.commit store fid ~owner:(tx 2));
      Alcotest.(check string) "both committed" "AAAA" (rdc store fid 0 4);
      Alcotest.(check string) "both committed 2" "BBBB" (rdc store fid 10 4))

let test_abort_with_conflicting_mods () =
  in_store (fun _e store _vol ->
      let fid = FS.create_file store ~vid:1 in
      FS.open_file store fid;
      wr store fid (tx 1) 0 "XXXX";
      wr store fid (tx 2) 10 "YYYY";
      (* Abort tx1: only its records are overwritten from the old version
         (§5.2). *)
      FS.abort store fid ~owner:(tx 1);
      Alcotest.(check string) "tx1 gone" "\000\000\000\000" (rd store fid 0 4);
      Alcotest.(check string) "tx2 intact" "YYYY" (rd store fid 10 4))

let test_conflicting_write_rejected () =
  in_store (fun _e store _vol ->
      let fid = FS.create_file store ~vid:1 in
      FS.open_file store fid;
      wr store fid (tx 1) 0 "AAAA";
      match wr store fid (tx 2) 2 "BB" with
      | () -> Alcotest.fail "overlapping cross-owner write must raise"
      | exception FS.Conflicting_write (_, _, _) -> ())

let test_overwrite_own_bytes () =
  in_store (fun _e store _vol ->
      let fid = FS.create_file store ~vid:1 in
      FS.open_file store fid;
      wr store fid (tx 1) 0 "AAAA";
      wr store fid (tx 1) 2 "bb";
      ignore (FS.commit store fid ~owner:(tx 1));
      Alcotest.(check string) "last write wins" "AAbb" (rdc store fid 0 4))

let test_adopt () =
  in_store (fun _e store _vol ->
      let fid = FS.create_file store ~vid:1 in
      FS.open_file store fid;
      wr store fid (proc 9) 0 "dirty";
      Alcotest.(check int) "one dirty owner" 1
        (List.length (FS.uncommitted_overlapping store fid (br 0 5)));
      FS.adopt store fid ~range:(br 0 5) ~new_owner:(tx 1);
      Alcotest.(check (list (pair int int))) "txn owns them" [ (0, 5) ]
        (List.map (fun r -> (Byte_range.lo r, Byte_range.len r))
           (FS.modified_by store fid (tx 1)));
      Alcotest.(check (list (pair int int))) "process no longer owns" []
        (List.map (fun r -> (Byte_range.lo r, Byte_range.len r))
           (FS.modified_by store fid (proc 9)));
      (* Rule 2 payoff: committing the transaction commits the adopted
         record even though the transaction never wrote it. *)
      ignore (FS.commit store fid ~owner:(tx 1));
      Alcotest.(check string) "adopted bytes committed" "dirty" (rdc store fid 0 5))

let test_adopt_does_not_touch_transactions () =
  in_store (fun _e store _vol ->
      let fid = FS.create_file store ~vid:1 in
      FS.open_file store fid;
      wr store fid (tx 7) 0 "txn";
      FS.adopt store fid ~range:(br 0 3) ~new_owner:(tx 1);
      Alcotest.(check int) "tx7 keeps its bytes" 1
        (List.length (FS.modified_by store fid (tx 7))))

let test_prepare_then_commit_prepared () =
  in_store (fun _e store vol ->
      let fid = FS.create_file store ~vid:1 in
      FS.open_file store fid;
      wr store fid (tx 1) 0 "2pc!!";
      let it = FS.prepare store fid ~owner:(tx 1) in
      Alcotest.(check int) "prepared listed" 1
        (List.length (FS.prepared_intentions store fid));
      Alcotest.(check string) "not yet committed" "\000" (rdc store fid 0 1);
      (* The intentions list round-trips through the log codec. *)
      let it' = Option.get (I.decode (I.encode it)) in
      FS.commit_prepared store it';
      Alcotest.(check string) "committed" "2pc!!" (rdc store fid 0 5);
      Alcotest.(check int) "prepared cleared" 0
        (List.length (FS.prepared_intentions store fid));
      ignore vol)

let test_commit_prepared_idempotent () =
  in_store (fun _e store _vol ->
      let fid = FS.create_file store ~vid:1 in
      FS.open_file store fid;
      wr store fid (tx 1) 0 "once!";
      let it = FS.prepare store fid ~owner:(tx 1) in
      FS.commit_prepared store it;
      (* Duplicate commit message (§4.4). *)
      FS.commit_prepared store it;
      Alcotest.(check string) "still right" "once!" (rdc store fid 0 5))

let test_two_prepared_commit_either_order () =
  (* Two transactions prepared on the same page must commit correctly in
     either order — the Direct/Merge decision happens at apply time. *)
  let run order =
    in_store (fun _e store _vol ->
        let fid = FS.create_file store ~vid:1 in
        FS.open_file store fid;
        wr store fid (tx 1) 0 "1111";
        wr store fid (tx 2) 8 "2222";
        let i1 = FS.prepare store fid ~owner:(tx 1) in
        let i2 = FS.prepare store fid ~owner:(tx 2) in
        (match order with
        | `Forward ->
          FS.commit_prepared store i1;
          FS.commit_prepared store i2
        | `Backward ->
          FS.commit_prepared store i2;
          FS.commit_prepared store i1);
        (rdc store fid 0 4, rdc store fid 8 4))
  in
  List.iter
    (fun order ->
      let a, b = run order in
      Alcotest.(check string) "tx1 bytes" "1111" a;
      Alcotest.(check string) "tx2 bytes" "2222" b)
    [ `Forward; `Backward ]

let test_prepare_crash_recover_commit () =
  (* Volatile state dies; the flushed shadow pages + intentions survive and
     commit_prepared completes from the log. *)
  in_store (fun _e store _vol ->
      let fid = FS.create_file store ~vid:1 in
      FS.open_file store fid;
      wr store fid (tx 1) 0 "save!";
      let it = FS.prepare store fid ~owner:(tx 1) in
      let encoded = I.encode it in
      FS.crash store;
      Alcotest.(check bool) "volatile gone" false (FS.is_open store fid);
      let it' = Option.get (I.decode encoded) in
      FS.commit_prepared store it';
      FS.open_file store fid;
      Alcotest.(check string) "recovered commit" "save!" (rdc store fid 0 5))

let test_prepare_crash_abort () =
  in_store (fun _e store _vol ->
      let fid = FS.create_file store ~vid:1 in
      FS.open_file store fid;
      wr store fid (tx 1) 0 "doom!";
      let it = FS.prepare store fid ~owner:(tx 1) in
      FS.crash store;
      FS.abort_prepared store (Option.get (I.decode (I.encode it)));
      FS.open_file store fid;
      Alcotest.(check int) "never grew" 0 (FS.committed_size store fid))

let test_crash_loses_uncommitted () =
  in_store (fun _e store _vol ->
      let fid = FS.create_file store ~vid:1 in
      FS.open_file store fid;
      wr store fid (tx 1) 0 "base!";
      ignore (FS.commit store fid ~owner:(tx 1));
      wr store fid (tx 2) 0 "lost?";
      FS.crash store;
      FS.open_file store fid;
      Alcotest.(check string) "uncommitted lost, committed kept" "base!"
        (rd store fid 0 5))

let test_read_beyond_eof_zero_filled () =
  in_store (fun _e store _vol ->
      let fid = FS.create_file store ~vid:1 in
      FS.open_file store fid;
      wr store fid (tx 1) 0 "ab";
      Alcotest.(check string) "zero filled" "ab\000\000" (rd store fid 0 4))

let test_sparse_file_hole () =
  in_store ~page_size:8 (fun _e store _vol ->
      let fid = FS.create_file store ~vid:1 in
      FS.open_file store fid;
      (* Write only page 2, leaving pages 0-1 as holes. *)
      wr store fid (tx 1) 16 "hole";
      ignore (FS.commit store fid ~owner:(tx 1));
      Alcotest.(check int) "size includes hole" 20 (FS.committed_size store fid);
      Alcotest.(check string) "hole reads zero" (String.make 8 '\000') (rdc store fid 0 8);
      Alcotest.(check string) "data present" "hole" (rdc store fid 16 4))

(* {1 Property: random disjoint multi-owner writes, random commit/abort} *)

let prop_record_commit_model =
  (* Model: each of 4 owners owns a distinct 8-byte stripe per 32-byte
     block; they write random stripes, then each owner independently
     commits or aborts. Committed bytes must match exactly the committed
     owners' writes, on both the current and the durable view. *)
  let arb =
    QCheck.(
      pair
        (small_list (pair (int_bound 3) (int_bound 7))) (* (owner, block) writes *)
        (quad bool bool bool bool))
  in
  QCheck.Test.make ~name:"record commit matches per-owner model" ~count:120 arb
    (fun (writes, (c0, c1, c2, c3)) ->
      let commits = [| c0; c1; c2; c3 |] in
      in_store ~page_size:64 (fun _e store _vol ->
          let fid = FS.create_file store ~vid:1 in
          FS.open_file store fid;
          let model = Hashtbl.create 16 in
          List.iter
            (fun (o, blk) ->
              let pos = (blk * 32) + (o * 8) in
              let data = Printf.sprintf "o%dblk%03d" o blk in
              assert (String.length data = 8);
              wr store fid (tx o) pos data;
              Hashtbl.replace model (o, blk) (pos, data))
            writes;
          Array.iteri
            (fun o commit ->
              if commit then ignore (FS.commit store fid ~owner:(tx o))
              else FS.abort store fid ~owner:(tx o))
            commits;
          Hashtbl.fold
            (fun (o, _) (pos, data) ok ->
              ok
              &&
              let got = rdc store fid pos 8 in
              if commits.(o) then got = data
              else got = String.make 8 '\000')
            model true))

let suite =
  [
    ( "fs.filestore",
      [
        Alcotest.test_case "create/open/close" `Quick test_create_open_close;
        Alcotest.test_case "write visibility" `Quick test_write_read_visibility;
        Alcotest.test_case "commit direct" `Quick test_commit_direct;
        Alcotest.test_case "commit spanning pages" `Quick test_commit_spanning_pages;
        Alcotest.test_case "abort sole" `Quick test_abort_sole;
        Alcotest.test_case "disjoint owners one page" `Quick
          test_two_owners_disjoint_same_page;
        Alcotest.test_case "abort with conflicts" `Quick
          test_abort_with_conflicting_mods;
        Alcotest.test_case "conflicting write" `Quick test_conflicting_write_rejected;
        Alcotest.test_case "overwrite own" `Quick test_overwrite_own_bytes;
        Alcotest.test_case "adopt (rule 2)" `Quick test_adopt;
        Alcotest.test_case "adopt skips transactions" `Quick
          test_adopt_does_not_touch_transactions;
        Alcotest.test_case "prepare/commit_prepared" `Quick
          test_prepare_then_commit_prepared;
        Alcotest.test_case "commit idempotent" `Quick test_commit_prepared_idempotent;
        Alcotest.test_case "prepared either order" `Quick
          test_two_prepared_commit_either_order;
        Alcotest.test_case "prepare, crash, commit" `Quick
          test_prepare_crash_recover_commit;
        Alcotest.test_case "prepare, crash, abort" `Quick test_prepare_crash_abort;
        Alcotest.test_case "crash loses uncommitted" `Quick test_crash_loses_uncommitted;
        Alcotest.test_case "read beyond eof" `Quick test_read_beyond_eof_zero_filled;
        Alcotest.test_case "sparse hole" `Quick test_sparse_file_hole;
        QCheck_alcotest.to_alcotest prop_record_commit_model;
      ] );
  ]

(* Appended: storage accounting — shadow paging must not leak page slots
   through any commit/abort path. *)

let referenced_slots vol =
  List.fold_left
    (fun acc ino ->
      let inode = V.read_inode_nosim vol ino in
      Array.fold_left (fun acc slot -> if slot <> -1 then acc + 1 else acc) acc
        inode.V.pages)
    0 (V.inode_numbers vol)

let test_no_page_leaks_simple_cycles () =
  in_store ~page_size:64 (fun _e store vol ->
      let fid = FS.create_file store ~vid:1 in
      FS.open_file store fid;
      for i = 0 to 9 do
        let owner = tx i in
        wr store fid owner (8 * (i mod 4)) "12345678";
        if i mod 2 = 0 then ignore (FS.commit store fid ~owner)
        else FS.abort store fid ~owner
      done;
      Alcotest.(check int) "in-use = referenced"
        (referenced_slots vol) (V.pages_in_use vol))

let test_no_page_leaks_prepared_abort () =
  in_store ~page_size:64 (fun _e store vol ->
      let fid = FS.create_file store ~vid:1 in
      FS.open_file store fid;
      wr store fid (tx 1) 0 "aaaa";
      ignore (FS.commit store fid ~owner:(tx 1));
      (* Prepared then aborted, both with and without volatile state. *)
      wr store fid (tx 2) 8 "bbbb";
      ignore (FS.prepare store fid ~owner:(tx 2));
      FS.abort store fid ~owner:(tx 2);
      wr store fid (tx 3) 16 "cccc";
      let it = FS.prepare store fid ~owner:(tx 3) in
      FS.crash store;
      FS.abort_prepared store (Option.get (I.decode (I.encode it)));
      Alcotest.(check int) "no leaked shadow slots"
        (referenced_slots vol) (V.pages_in_use vol))

let test_no_page_leaks_merge_paths () =
  in_store ~page_size:64 (fun _e store vol ->
      let fid = FS.create_file store ~vid:1 in
      FS.open_file store fid;
      (* Force both Figure 4 paths repeatedly. *)
      for round = 0 to 4 do
        wr store fid (tx (2 * round)) 0 "XXXX";
        wr store fid (tx ((2 * round) + 1)) 32 "YYYY";
        ignore (FS.commit store fid ~owner:(tx (2 * round)));
        ignore (FS.commit store fid ~owner:(tx ((2 * round) + 1)))
      done;
      Alcotest.(check int) "merge paths balanced"
        (referenced_slots vol) (V.pages_in_use vol))

let suite =
  suite
  @ [
      ( "fs.accounting",
        [
          Alcotest.test_case "commit/abort cycles" `Quick
            test_no_page_leaks_simple_cycles;
          Alcotest.test_case "prepared aborts" `Quick
            test_no_page_leaks_prepared_abort;
          Alcotest.test_case "merge paths" `Quick test_no_page_leaks_merge_paths;
        ] );
    ]

(* Appended: concurrent interleaving property — many owners prepare /
   commit / abort through racing fibers (every disk I/O is a potential
   interleaving point); the committed image must equal exactly the
   committed owners' writes, and no page slots may leak. *)

let prop_concurrent_commit_interleavings =
  let arb =
    QCheck.(
      pair (int_bound 1000 (* seed *))
        (list_of_size (Gen.int_range 2 6)
           (triple (int_bound 7 (* block *)) bool (* commit? *) (int_bound 30 (* delay ms *)))))
  in
  QCheck.Test.make ~name:"concurrent prepare/commit/abort interleavings" ~count:60
    arb
    (fun (seed, owners) ->
      let e = E.create ~seed () in
      let cache = C.create e in
      let store = FS.create e ~cache in
      let vol = V.create e ~vid:1 ~page_size:64 () in
      FS.mount store vol;
      let fid = ref None in
      ignore (E.spawn e (fun () -> fid := Some (FS.create_file store ~vid:1)));
      E.run e;
      let fid = Option.get !fid in
      ignore
        (E.spawn e (fun () ->
             FS.open_file store fid;
             (* Never dropped: hold a reference for the whole run. *)
             ()));
      E.run e;
      List.iteri
        (fun i (block, commit, delay_ms) ->
          ignore
            (E.spawn e (fun () ->
                 E.sleep (delay_ms * 1000);
                 let owner = tx i in
                 (* Each owner's bytes: its own 8-byte slice of the 64-byte
                    block (= one page): pages are contended, bytes are
                    not. *)
                 let pos = (block * 64) + (i * 8) in
                 wr store fid owner pos (Printf.sprintf "ow%05d!" i);
                 E.sleep (delay_ms * 500);
                 if commit then begin
                   let it = FS.prepare store fid ~owner in
                   E.sleep (delay_ms * 250);
                   FS.commit_prepared store it
                 end
                 else FS.abort store fid ~owner)))
        owners;
      E.run e;
      let ok = ref true in
      List.iteri
        (fun i (block, commit, _) ->
          let pos = (block * 64) + (i * 8) in
          let got = rdc store fid pos 8 in
          let expect =
            if commit then Printf.sprintf "ow%05d!" i else String.make 8 '\000'
          in
          if got <> expect then ok := false)
        owners;
      (* Storage accounting must balance once everything settled. *)
      !ok && referenced_slots vol = V.pages_in_use vol)

let suite =
  suite
  @ [
      ( "fs.interleavings",
        [ QCheck_alcotest.to_alcotest prop_concurrent_commit_interleavings ] );
    ]
