(* Wait-for graphs: cycle detection and victim selection. *)

module W = Locus_deadlock.Wfg
module LT = Locus_lock.Lock_table
module M = Locus_lock.Mode

let tx n = Owner.Transaction (Txid.make ~site:0 ~incarnation:1 ~seq:n)
let proc n = Owner.Process (Pid.make ~origin:0 ~num:n)
let owner = Alcotest.testable Owner.pp Owner.equal

let test_acyclic () =
  let g = W.create () in
  W.add_edge g ~waiter:(tx 1) ~blocker:(tx 2);
  W.add_edge g ~waiter:(tx 2) ~blocker:(tx 3);
  Alcotest.(check (option (list owner))) "no cycle" None (W.find_cycle g);
  Alcotest.(check (list owner)) "no victims" [] (W.victims g)

let test_two_cycle () =
  let g = W.create () in
  W.add_edge g ~waiter:(tx 1) ~blocker:(tx 2);
  W.add_edge g ~waiter:(tx 2) ~blocker:(tx 1);
  (match W.find_cycle g with
  | Some cycle -> Alcotest.(check int) "length 2" 2 (List.length cycle)
  | None -> Alcotest.fail "cycle expected");
  (* Victim: the youngest transaction (largest seq). *)
  Alcotest.(check (list owner)) "youngest dies" [ tx 2 ] (W.victims g)

let test_three_cycle () =
  let g = W.create () in
  W.add_edge g ~waiter:(tx 1) ~blocker:(tx 2);
  W.add_edge g ~waiter:(tx 2) ~blocker:(tx 3);
  W.add_edge g ~waiter:(tx 3) ~blocker:(tx 1);
  match W.find_cycle g with
  | Some cycle -> Alcotest.(check int) "length 3" 3 (List.length cycle)
  | None -> Alcotest.fail "cycle expected"

let test_two_independent_cycles () =
  let g = W.create () in
  W.add_edge g ~waiter:(tx 1) ~blocker:(tx 2);
  W.add_edge g ~waiter:(tx 2) ~blocker:(tx 1);
  W.add_edge g ~waiter:(tx 5) ~blocker:(tx 6);
  W.add_edge g ~waiter:(tx 6) ~blocker:(tx 5);
  Alcotest.(check int) "two victims" 2 (List.length (W.victims g))

let test_prefers_transactions () =
  let g = W.create () in
  W.add_edge g ~waiter:(proc 1) ~blocker:(tx 9);
  W.add_edge g ~waiter:(tx 9) ~blocker:(proc 1);
  Alcotest.(check (list owner)) "transaction chosen over process" [ tx 9 ]
    (W.victims g)

let test_self_wait_excluded () =
  (* Same-owner edges can't arise from the lock table, but guard anyway. *)
  let g = W.create () in
  W.add_edge g ~waiter:(tx 1) ~blocker:(tx 1);
  match W.find_cycle g with
  | Some [ o ] -> Alcotest.check owner "self" (tx 1) o
  | _ -> Alcotest.fail "self loop should be a 1-cycle"

let test_from_lock_tables () =
  (* Build a real deadlock through two lock tables. *)
  let fa = File_id.make ~vid:1 ~ino:1 and fb = File_id.make ~vid:1 ~ino:2 in
  let p = Pid.make ~origin:0 ~num:1 in
  let ta = LT.create fa and tb = LT.create fb in
  let r = Byte_range.v ~lo:0 ~hi:10 in
  ignore (LT.request ta ~owner:(tx 1) ~pid:p ~mode:M.Exclusive ~range:r ~non_transaction:false);
  ignore (LT.request tb ~owner:(tx 2) ~pid:p ~mode:M.Exclusive ~range:r ~non_transaction:false);
  ignore (LT.enqueue ta ~owner:(tx 2) ~pid:p ~mode:M.Exclusive ~range:r ~non_transaction:false ~notify:(fun _ -> ()));
  ignore (LT.enqueue tb ~owner:(tx 1) ~pid:p ~mode:M.Exclusive ~range:r ~non_transaction:false ~notify:(fun _ -> ()));
  let g = W.of_tables [ ta; tb ] in
  (match W.find_cycle g with
  | Some c -> Alcotest.(check int) "deadlock found" 2 (List.length c)
  | None -> Alcotest.fail "deadlock expected");
  Alcotest.(check int) "edges" 2 (List.length (W.edges g))

let test_deterministic () =
  let build () =
    let g = W.create () in
    W.add_edge g ~waiter:(tx 3) ~blocker:(tx 1);
    W.add_edge g ~waiter:(tx 1) ~blocker:(tx 2);
    W.add_edge g ~waiter:(tx 2) ~blocker:(tx 3);
    W.add_edge g ~waiter:(tx 2) ~blocker:(tx 4);
    g
  in
  Alcotest.(check (list owner)) "same victims every time"
    (W.victims (build ())) (W.victims (build ()))

let prop_victims_break_all_cycles =
  QCheck.Test.make ~name:"victim removal leaves graph acyclic" ~count:200
    QCheck.(small_list (pair (int_bound 6) (int_bound 6)))
    (fun edges ->
      let g = W.create () in
      List.iter
        (fun (a, b) -> if a <> b then W.add_edge g ~waiter:(tx a) ~blocker:(tx b))
        edges;
      let victims = W.victims g in
      List.iter (W.remove g) victims;
      W.find_cycle g = None)

let suite =
  [
    ( "deadlock.wfg",
      [
        Alcotest.test_case "acyclic" `Quick test_acyclic;
        Alcotest.test_case "2-cycle" `Quick test_two_cycle;
        Alcotest.test_case "3-cycle" `Quick test_three_cycle;
        Alcotest.test_case "independent cycles" `Quick test_two_independent_cycles;
        Alcotest.test_case "prefers transactions" `Quick test_prefers_transactions;
        Alcotest.test_case "self wait" `Quick test_self_wait_excluded;
        Alcotest.test_case "from lock tables" `Quick test_from_lock_tables;
        Alcotest.test_case "deterministic" `Quick test_deterministic;
        QCheck_alcotest.to_alcotest prop_victims_break_all_cycles;
      ] );
  ]

(* Appended: victim-selection policies (Detector). *)

module D = Locus_deadlock.Detector

let mk_cycle_tables () =
  (* tx1 (old, many locks) and tx5 (young, one lock) deadlock. *)
  let fa = File_id.make ~vid:1 ~ino:10 and fb = File_id.make ~vid:1 ~ino:11 in
  let p = Pid.make ~origin:0 ~num:1 in
  let ta = LT.create fa and tb = LT.create fb in
  let r = Byte_range.v ~lo:0 ~hi:10 in
  let r2 = Byte_range.v ~lo:20 ~hi:30 in
  ignore (LT.request ta ~owner:(tx 1) ~pid:p ~mode:M.Exclusive ~range:r ~non_transaction:false);
  ignore (LT.request ta ~owner:(tx 1) ~pid:p ~mode:M.Exclusive ~range:r2 ~non_transaction:false);
  ignore (LT.request tb ~owner:(tx 5) ~pid:p ~mode:M.Exclusive ~range:r ~non_transaction:false);
  ignore (LT.enqueue ta ~owner:(tx 5) ~pid:p ~mode:M.Exclusive ~range:r ~non_transaction:false ~notify:(fun _ -> ()));
  ignore (LT.enqueue tb ~owner:(tx 1) ~pid:p ~mode:M.Exclusive ~range:r ~non_transaction:false ~notify:(fun _ -> ()));
  [ ta; tb ]

let test_policy_youngest () =
  Alcotest.(check (list owner)) "youngest dies" [ tx 5 ]
    (D.victims D.Youngest_transaction (mk_cycle_tables ()))

let test_policy_oldest () =
  Alcotest.(check (list owner)) "oldest dies" [ tx 1 ]
    (D.victims D.Oldest_transaction (mk_cycle_tables ()))

let test_policy_fewest_locks () =
  (* tx1 holds 2 locks, tx5 holds 1: fewest-locks kills tx5. *)
  Alcotest.(check (list owner)) "fewest locks dies" [ tx 5 ]
    (D.victims D.Fewest_locks (mk_cycle_tables ()))

let test_scan_report () =
  (match D.scan_report (mk_cycle_tables ()) with
  | `Deadlocked [ cycle ] -> Alcotest.(check int) "one 2-cycle" 2 (List.length cycle)
  | `Deadlocked _ -> Alcotest.fail "expected one cycle"
  | `No_deadlock -> Alcotest.fail "expected deadlock");
  match D.scan_report [ LT.create (File_id.make ~vid:1 ~ino:99) ] with
  | `No_deadlock -> ()
  | `Deadlocked _ -> Alcotest.fail "empty table deadlocked?"

let test_policy_in_kernel () =
  (* End-to-end: with Oldest_transaction, the first (older) transaction of
     an induced 2-cycle gets aborted. *)
  let module L = Locus_core.Locus in
  let module Api = L.Api in
  let module K = L.Kernel in
  let config =
    { (K.Config.default ~n_sites:2) with
      K.Config.deadlock_policy = D.Oldest_transaction }
  in
  let first_committed = ref None in
  let sim = L.make ~config ~n_sites:2 () in
  ignore
    (Api.spawn_process sim.Locus_core.Locus.cluster ~site:0 (fun env ->
         let c = Api.creat env "/r" ~vid:1 in
         Api.write_string env c (String.make 128 'i');
         Api.commit_file env c;
         let mk i delay pos1 pos2 outcome =
           Api.fork env ~name:(Printf.sprintf "t%d" i) (fun w ->
               Engine.sleep delay;
               Api.begin_trans w;
               Api.seek w c ~pos:pos1;
               (match Api.lock w c ~len:64 ~mode:L.Mode.Exclusive () with
               | Api.Granted -> ()
               | Api.Conflict _ -> ());
               Engine.sleep 50_000;
               Api.seek w c ~pos:pos2;
               (match Api.lock w c ~len:64 ~mode:L.Mode.Exclusive () with
               | Api.Granted -> ()
               | Api.Conflict _ -> ());
               outcome := Some (Api.end_trans w))
         in
         let o1 = ref None and o2 = ref None in
         let p1 = mk 1 0 0 64 o1 in
         let p2 = mk 2 1_000 64 0 o2 in
         Api.wait_pid env p1;
         Api.wait_pid env p2;
         (* Under Oldest_transaction, t1 (started first -> older txid) is
            the victim: only t2 reports an outcome. *)
         first_committed := (match (!o1, !o2) with
           | None, Some L.Kernel.Committed -> Some true
           | _ -> Some false)));
  L.run sim;
  Alcotest.(check (option bool)) "older aborted, younger committed" (Some true)
    !first_committed

let suite =
  suite
  @ [
      ( "deadlock.detector",
        [
          Alcotest.test_case "youngest policy" `Quick test_policy_youngest;
          Alcotest.test_case "oldest policy" `Quick test_policy_oldest;
          Alcotest.test_case "fewest locks policy" `Quick test_policy_fewest_locks;
          Alcotest.test_case "scan report" `Quick test_scan_report;
          Alcotest.test_case "policy in kernel" `Quick test_policy_in_kernel;
        ] );
    ]
