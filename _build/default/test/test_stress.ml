(* Long mixed-workload stress runs: transfers + migrations + crashes +
   deadlocks, all at once, checking global invariants at the end. Also
   exercises the Kinfo snapshot interface. *)

module L = Locus_core.Locus
module Api = L.Api
module K = L.Kernel
module M = L.Mode

let n_accounts = 16
let rec_len = 16
let initial = 500

let read_bal env c a =
  int_of_string (String.trim (Bytes.to_string (Api.pread env c ~pos:(a * rec_len) ~len:rec_len)))

let write_bal env c a v =
  Api.pwrite env c ~pos:(a * rec_len) (Bytes.of_string (Printf.sprintf "%-*d" rec_len v))

let test_mixed_stress () =
  let sim = L.make ~seed:77 ~n_sites:3 () in
  let cl = sim.L.cluster in
  let committed_deltas = ref [] in
  ignore
    (Api.spawn_process cl ~site:0 ~name:"setup" (fun env ->
         let c = Api.creat env "/s/accts" ~vid:1 in
         for a = 0 to n_accounts - 1 do
           write_bal env c a initial
         done;
         Api.close env c;
         let worker i =
           Api.fork env ~site:(i mod 3) ~name:(Printf.sprintf "w%d" i) (fun tenv ->
               let prng = Prng.create ~seed:(900 + i) in
               for _ = 1 to 4 do
                 let from_a = Prng.int prng n_accounts in
                 let to_a = Prng.int prng n_accounts in
                 let amount = 1 + Prng.int prng 50 in
                 let moved = ref 0 in
                 let t =
                   Api.fork tenv ~name:"t" (fun w ->
                       let c = Api.open_file w "/s/accts" in
                       Api.begin_trans w;
                       (* Occasionally wander mid-transaction. *)
                       if Prng.int prng 4 = 0 then
                         Api.migrate w (Prng.int prng 3);
                       Api.seek w c ~pos:(from_a * rec_len);
                       (match Api.lock w c ~len:rec_len ~mode:M.Exclusive () with
                       | Api.Granted -> ()
                       | Api.Conflict _ -> ());
                       if to_a <> from_a then begin
                         Api.seek w c ~pos:(to_a * rec_len);
                         match Api.lock w c ~len:rec_len ~mode:M.Exclusive () with
                         | Api.Granted -> ()
                         | Api.Conflict _ -> ()
                       end;
                       let src = read_bal w c from_a in
                       let amt = min src amount in
                       if amt > 0 && to_a <> from_a then begin
                         write_bal w c from_a (src - amt);
                         write_bal w c to_a (read_bal w c to_a + amt)
                       end;
                       (match Api.end_trans w with
                       | K.Committed -> if to_a <> from_a then moved := amt
                       | K.Aborted -> ());
                       Api.close w c)
                 in
                 Api.wait_pid tenv t;
                 if !moved <> 0 then committed_deltas := !moved :: !committed_deltas
               done)
         in
         let pids = List.init 9 worker in
         List.iter (Api.wait_pid env) pids));
  (* Chaos: crash and reboot site 2 twice while the workload runs. Site 2
     hosts no data (vid 1 is at site 1), so only processes and commit
     coordination are disturbed. *)
  ignore
    (Api.spawn_process cl ~site:0 ~name:"chaos" (fun _ ->
         Engine.sleep 1_500_000;
         K.crash_site cl 2;
         Engine.sleep 1_000_000;
         K.restart_site cl 2;
         Engine.sleep 3_000_000;
         K.crash_site cl 2;
         Engine.sleep 1_000_000;
         K.restart_site cl 2));
  L.run sim;
  let s = K.read_committed_oracle cl (Option.get (K.lookup cl "/s/accts")) in
  let total = ref 0 in
  for a = 0 to n_accounts - 1 do
    total := !total + int_of_string (String.trim (String.sub s (a * rec_len) rec_len))
  done;
  Alcotest.(check int) "money conserved through chaos" (n_accounts * initial) !total;
  (* No transaction left running, no lock left behind, nothing in doubt. *)
  Alcotest.(check (list string)) "no active transactions" []
    (List.map Txid.to_string (K.active_transactions cl));
  List.iter
    (fun snap ->
      if snap.Locus_core.Kinfo.up then begin
        Alcotest.(check int)
          (Printf.sprintf "no leftover locks at site %d" snap.Locus_core.Kinfo.site)
          0
          (List.length snap.Locus_core.Kinfo.locks);
        Alcotest.(check (list string)) "nothing in doubt" []
          (List.map Txid.to_string snap.Locus_core.Kinfo.in_doubt)
      end)
    (Locus_core.Kinfo.snapshot cl)

let test_kinfo_reflects_state () =
  let sim = L.make ~n_sites:2 () in
  let cl = sim.L.cluster in
  let checked = ref false in
  ignore
    (Api.spawn_process cl ~site:0 ~name:"holder" (fun env ->
         let c = Api.creat env "/k" ~vid:1 in
         Api.write_string env c "xxxx";
         Api.commit_file env c;
         Api.begin_trans env;
         Api.seek env c ~pos:0;
         (match Api.lock env c ~len:4 ~mode:M.Exclusive () with
         | Api.Granted -> ()
         | Api.Conflict _ -> ());
         (* Snapshot while the lock is held and the txn is active. *)
         let snaps = Locus_core.Kinfo.snapshot cl in
         let s0 = List.nth snaps 0 and s1 = List.nth snaps 1 in
         Alcotest.(check int) "txn registered at home site" 1
           (List.length s0.Locus_core.Kinfo.active_txns);
         Alcotest.(check int) "lock visible at storage site" 1
           (List.length s1.Locus_core.Kinfo.locks);
         Alcotest.(check bool) "process listed" true
           (List.length s0.Locus_core.Kinfo.processes >= 1);
         checked := true;
         ignore (Api.end_trans env)));
  L.run sim;
  Alcotest.(check bool) "assertions ran" true !checked

let suite =
  [
    ( "stress",
      [
        Alcotest.test_case "mixed workload with chaos" `Quick test_mixed_stress;
        Alcotest.test_case "kinfo snapshot" `Quick test_kinfo_reflects_state;
      ] );
  ]
