(* Figure 1, exercised end-to-end: what can a second party actually DO
   while a first party holds each kind of access? Six combinations of
   (holder mode) x (other party's read / write), through the full kernel
   stack with real processes. *)

module L = Locus_core.Locus
module Api = L.Api
module K = L.Kernel
module M = L.Mode

(* Holder takes [mode] on a record at site 1 and parks; the prober (an
   independent process) attempts a read and a write with ~no waiting and
   reports what succeeded quickly. *)
let probe ~holder_mode =
  let sim = L.make ~n_sites:2 () in
  let cl = sim.L.cluster in
  let read_ok = ref None and write_ok = ref None in
  let e = K.engine cl in
  let held = Engine.Ivar.create () in
  let release = Engine.Ivar.create () in
  ignore
    (Api.spawn_process cl ~site:0 ~name:"holder" (fun env ->
         let c = Api.creat env "/m" ~vid:1 in
         Api.write_string env c "base";
         Api.commit_file env c;
         (match holder_mode with
         | `Unlocked ->
           (* Conventional access: reads/writes with no lock held. The
              "holder" just parks without any lock. *)
           ()
         | `Shared | `Exclusive ->
           Api.begin_trans env;
           Api.seek env c ~pos:0;
           (match
              Api.lock env c ~len:4
                ~mode:(if holder_mode = `Shared then M.Shared else M.Exclusive)
                ()
            with
           | Api.Granted -> ()
           | Api.Conflict _ -> Alcotest.fail "holder lock"));
         Engine.fill e held ();
         Engine.await release;
         if Api.in_transaction env then ignore (Api.end_trans env);
         Api.close env c));
  ignore
    (Api.spawn_process cl ~site:1 ~name:"prober" (fun env ->
         Engine.await held;
         let c = Api.open_file env "/m" in
         let t0 = Engine.now e in
         (* A conventional read: blocks only against Exclusive. We give it
            a short budget: if it hasn't finished quickly it was queued. *)
         let r =
           Api.fork env (fun q ->
               let qc = Api.open_file q "/m" in
               ignore (Api.pread q qc ~pos:0 ~len:4);
               read_ok := Some (Engine.now e - t0 < 200_000);
               Api.close q qc)
         in
         Engine.sleep 300_000;
         let t1 = Engine.now e in
         let w =
           Api.fork env (fun q ->
               let qc = Api.open_file q "/m" in
               Api.pwrite q qc ~pos:0 (Bytes.of_string "wwww");
               write_ok := Some (Engine.now e - t1 < 200_000);
               Api.close q qc)
         in
         Engine.sleep 300_000;
         Engine.fill e release ();
         Api.wait_pid env r;
         Api.wait_pid env w;
         Api.close env c));
  L.run sim;
  (!read_ok, !write_ok)

let test_unlocked_holder () =
  (* Figure 1 row "Unix": conventional sharing — both allowed. *)
  let r, w = probe ~holder_mode:`Unlocked in
  Alcotest.(check (option bool)) "read allowed" (Some true) r;
  Alcotest.(check (option bool)) "write allowed" (Some true) w

let test_shared_holder () =
  (* Row "Shared": others read, writers wait. *)
  let r, w = probe ~holder_mode:`Shared in
  Alcotest.(check (option bool)) "read allowed" (Some true) r;
  Alcotest.(check (option bool)) "write delayed until release" (Some false) w

let test_exclusive_holder () =
  (* Row "Exclusive": nothing until release. *)
  let r, w = probe ~holder_mode:`Exclusive in
  Alcotest.(check (option bool)) "read delayed" (Some false) r;
  Alcotest.(check (option bool)) "write delayed" (Some false) w

let suite =
  [
    ( "access_matrix",
      [
        Alcotest.test_case "unlocked holder (unix row)" `Quick test_unlocked_holder;
        Alcotest.test_case "shared holder" `Quick test_shared_holder;
        Alcotest.test_case "exclusive holder" `Quick test_exclusive_holder;
      ] );
  ]
