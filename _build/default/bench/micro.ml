(* E11 — bechamel microbenchmarks: real CPU cost of the hot in-kernel
   operations (these complement the virtual-time experiments: they measure
   this implementation on today's hardware, not the simulated VAX). *)

open Bechamel
open Toolkit

let lock_table_cycle =
  Test.make ~name:"lock_table request+release"
    (Staged.stage (fun () ->
         let fid = File_id.make ~vid:1 ~ino:1 in
         let t = Locus_lock.Lock_table.create fid in
         let pid = Pid.make ~origin:0 ~num:1 in
         for i = 0 to 19 do
           let owner =
             Owner.Transaction (Txid.make ~site:0 ~incarnation:1 ~seq:i)
           in
           ignore
             (Locus_lock.Lock_table.request t ~owner ~pid
                ~mode:Locus_lock.Mode.Exclusive
                ~range:(Byte_range.of_pos_len ~pos:(i * 10) ~len:10)
                ~non_transaction:false);
           Locus_lock.Lock_table.release_owner t owner
         done))

let page_differencing =
  Test.make ~name:"page differencing merge (1 KiB)"
    (Staged.stage (fun () ->
         let old_page = Bytes.make 1024 'o' in
         let shadow = Bytes.make 1024 's' in
         let merged = Bytes.copy old_page in
         List.iter
           (fun (off, len) -> Bytes.blit shadow off merged off len)
           [ (0, 100); (256, 64); (900, 100) ]))

let range_set_ops =
  Test.make ~name:"range_set add/remove (20 ranges)"
    (Staged.stage (fun () ->
         let s = ref Range_set.empty in
         for i = 0 to 19 do
           s := Range_set.add (Byte_range.of_pos_len ~pos:(i * 7) ~len:5) !s
         done;
         for i = 0 to 9 do
           s := Range_set.remove (Byte_range.of_pos_len ~pos:(i * 14) ~len:5) !s
         done))

let wfg_detection =
  Test.make ~name:"wait-for graph cycle detection (24 nodes)"
    (Staged.stage (fun () ->
         let g = Locus_deadlock.Wfg.create () in
         let tx n = Owner.Transaction (Txid.make ~site:0 ~incarnation:1 ~seq:n) in
         for i = 0 to 23 do
           Locus_deadlock.Wfg.add_edge g ~waiter:(tx i) ~blocker:(tx ((i + 1) mod 24))
         done;
         ignore (Locus_deadlock.Wfg.victims g)))

let engine_spawn =
  Test.make ~name:"engine spawn+sleep (100 fibers)"
    (Staged.stage (fun () ->
         let e = Locus_sim.Engine.create () in
         for _ = 1 to 100 do
           ignore (Locus_sim.Engine.spawn e (fun () -> Locus_sim.Engine.sleep 5))
         done;
         Locus_sim.Engine.run e))

let run () =
  let tests =
    [ lock_table_cycle; page_differencing; range_set_ops; wfg_detection; engine_spawn ]
  in
  Fmt.pr "@.E11: microbenchmarks (real CPU, this machine)@.";
  Fmt.pr "%s@." (String.make 72 '-');
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.25) ~kde:(Some 300) () in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ])
      in
      let results = Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false
                                   ~predictors:[| Measure.run |]) Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Fmt.pr "%-44s %10.0f ns/run@." name est
          | _ -> Fmt.pr "%-44s (no estimate)@." name)
        results)
    tests
