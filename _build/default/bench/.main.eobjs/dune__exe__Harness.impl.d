bench/harness.ml: List Locus_core Locus_disk Locus_fs Locus_sim Printf
