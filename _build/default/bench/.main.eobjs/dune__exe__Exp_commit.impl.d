bench/exp_commit.ml: Api Bytes Engine Harness K L List Option Printf String Tables
