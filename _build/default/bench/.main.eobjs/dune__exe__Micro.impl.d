bench/micro.ml: Analyze Bechamel Benchmark Byte_range Bytes File_id Fmt Hashtbl Instance List Locus_deadlock Locus_lock Locus_sim Measure Owner Pid Range_set Staged String Test Time Toolkit Txid
