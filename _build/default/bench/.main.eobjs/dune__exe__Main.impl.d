bench/main.ml: Array Exp_baseline Exp_commit Exp_concurrency Exp_failure Exp_io Exp_locks Exp_scaling Exp_walcmp Fmt List Micro String Sys
