bench/exp_scaling.ml: Api Bytes Engine Fun Harness Int K L List M Printf Prng String Tables
