bench/exp_locks.ml: Api Harness K L List Locus_lock M Printf String Tables
