bench/exp_failure.ml: Api Bytes Engine Harness K L List Locus_txn M Printf String Tables
