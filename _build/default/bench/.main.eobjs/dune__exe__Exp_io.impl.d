bench/exp_io.ml: Api Bytes Engine Harness K L List Locus_disk Locus_txn Option Printf Tables
