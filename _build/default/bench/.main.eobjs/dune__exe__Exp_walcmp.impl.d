bench/exp_walcmp.ml: Bytes Fmt Harness L List Locus_disk Locus_fs Locus_sim Locus_wal Owner Pid Printf Tables Txid
