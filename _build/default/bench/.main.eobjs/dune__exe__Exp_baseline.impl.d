bench/exp_baseline.ml: Api Bytes Engine Harness K L List Locus_nested Tables
