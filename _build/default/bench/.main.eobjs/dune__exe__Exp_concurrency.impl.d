bench/exp_concurrency.ml: Api Bytes Engine Harness K L List M Printf String Tables
