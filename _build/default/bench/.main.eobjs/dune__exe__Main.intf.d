bench/main.mli:
