(* E1 — Figure 1: the lock compatibility matrix.
   E2 — §6.2: record locking latency, local vs remote, and the
        requesting-site lock cache ablation. *)

open Harness
module Mode = Locus_lock.Mode

let e1 () =
  let cell = function `Read_write -> "r/w" | `Read -> "read" | `None -> "no" in
  let rows =
    List.map
      (fun (row, cells) ->
        Mode.to_string row :: List.map (fun (_, v) -> cell v) cells)
      Mode.figure_1
  in
  Tables.print_table ~title:"E1 / Figure 1: transaction synchronization rules"
    ~columns:[ ""; "unix"; "shared"; "exclusive" ]
    rows;
  Tables.paper "unix/unix=r/w, unix-or-shared/shared=read, anything/exclusive=no"

(* Repeatedly lock ascending groups of bytes in a file (the paper's §6.2
   methodology) and sample the per-lock syscall latency. *)
let lock_latencies ~requester_site ~n_locks =
  let sim = fresh ~n_sites:2 () in
  let samples = ref [] in
  run_proc sim ~site:requester_site (fun env ->
      let c = Api.creat env "/f" ~vid:1 in
      Api.write_string env c (String.make 1024 'x');
      Api.commit_file env c;
      let e = K.engine (Api.cluster env) in
      for g = 0 to n_locks - 1 do
        Api.seek env c ~pos:(g * 8);
        let t0 = L.Engine.now e in
        (match Api.lock env c ~len:8 ~mode:M.Exclusive () with
        | Api.Granted -> ()
        | Api.Conflict _ -> failwith "unexpected conflict");
        samples := (L.Engine.now e - t0) :: !samples
      done);
  let xs = !samples in
  float_of_int (List.fold_left ( + ) 0 xs) /. float_of_int (List.length xs) /. 1000.

let e2 () =
  let local = lock_latencies ~requester_site:1 ~n_locks:100 in
  let remote = lock_latencies ~requester_site:0 ~n_locks:100 in
  Tables.print_table ~title:"E2 / §6.2: record locking latency"
    ~columns:[ "case"; "measured"; "paper" ]
    [
      [ "local (requester at storage site)"; Tables.msf local; "~2 ms" ];
      [ "remote (cross-site request)"; Tables.msf remote; "~18 ms" ];
      [ "ratio"; Printf.sprintf "%.1fx" (remote /. local); "~9x" ];
    ];
  Tables.paper
    "750 instructions (1.5 ms) per local lock; remote ~18 ms, indistinguishable \
     from round-trip message cost";

  (* Ablation: the requesting-site lock cache (§5.1). Validating covered
     accesses locally vs re-asking the storage site on every read. *)
  let reads_time lock_cache =
    let config = { (K.Config.default ~n_sites:2) with K.Config.lock_cache } in
    let sim = fresh ~config ~n_sites:2 () in
    let elapsed = ref 0 in
    run_proc sim ~site:0 (fun env ->
        let c = Api.creat env "/f" ~vid:1 in
        Api.write_string env c (String.make 256 'x');
        Api.commit_file env c;
        Api.begin_trans env;
        Api.seek env c ~pos:0;
        (match Api.lock env c ~len:256 ~mode:M.Exclusive () with
        | Api.Granted -> ()
        | Api.Conflict _ -> failwith "conflict");
        let e = K.engine (Api.cluster env) in
        let t0 = L.Engine.now e in
        for g = 0 to 19 do
          ignore (Api.pread env c ~pos:(g * 8) ~len:8)
        done;
        elapsed := L.Engine.now e - t0;
        ignore (Api.end_trans env));
    float_of_int !elapsed /. 20_000.
  in
  let with_cache = reads_time true and without = reads_time false in
  Tables.print_table ~title:"E2b ablation: requesting-site lock cache (per covered read)"
    ~columns:[ "configuration"; "per-read cost" ]
    [
      [ "lock cache on (local validation)"; Tables.msf with_cache ];
      [ "lock cache off (revalidate at storage site)"; Tables.msf without ];
    ];
  Tables.paper "the local lock cache lets the kernel quickly validate each access";

  (* §5.2's further opportunity: prefetch the locked range with the grant
     and serve covered reads from the requesting site. *)
  let reads_time_prefetch prefetch =
    let config = { (K.Config.default ~n_sites:2) with K.Config.prefetch } in
    let sim = fresh ~config ~n_sites:2 () in
    let elapsed = ref 0 in
    run_proc sim ~site:0 (fun env ->
        let c = Api.creat env "/f" ~vid:1 in
        Api.write_string env c (String.make 256 'x');
        Api.commit_file env c;
        Api.begin_trans env;
        Api.seek env c ~pos:0;
        (match Api.lock env c ~len:256 ~mode:M.Exclusive () with
        | Api.Granted -> ()
        | Api.Conflict _ -> failwith "conflict");
        let e = K.engine (Api.cluster env) in
        let t0 = L.Engine.now e in
        for g = 0 to 19 do
          ignore (Api.pread env c ~pos:(g * 8) ~len:8)
        done;
        elapsed := L.Engine.now e - t0;
        ignore (Api.end_trans env));
    float_of_int !elapsed /. 20_000.
  in
  let no_prefetch = reads_time_prefetch false and prefetched = reads_time_prefetch true in
  Tables.print_table
    ~title:"E2c ablation: lock-grant data prefetch (§5.2, remote reads under a held lock)"
    ~columns:[ "configuration"; "per-read cost" ]
    [
      [ "no prefetch (every read crosses the net)"; Tables.msf no_prefetch ];
      [ "prefetch on grant (reads served locally)"; Tables.msf prefetched ];
      [ "speedup"; Printf.sprintf "%.0fx" (no_prefetch /. prefetched) ];
    ];
  Tables.paper
    "when a lock is requested, the page(s) containing the byte range can be      prefetched in anticipation of their subsequent use (§5.2)"
;

  (* §5.2's second opportunity: temporarily transfer lock management to a
     site making heavy use of it. *)
  let burst_cost lock_delegation =
    let config = { (K.Config.default ~n_sites:2) with K.Config.lock_delegation } in
    let sim = fresh ~config ~n_sites:2 () in
    let total = ref 0 in
    run_proc sim ~site:0 (fun env ->
        let c = Api.creat env "/f" ~vid:1 in
        Api.write_string env c (String.make 1024 'x');
        Api.commit_file env c;
        let e = K.engine (Api.cluster env) in
        let t0 = L.Engine.now e in
        for g = 0 to 29 do
          Api.seek env c ~pos:(g * 16);
          (match Api.lock env c ~len:16 ~mode:M.Exclusive () with
          | Api.Granted -> ()
          | Api.Conflict _ -> failwith "conflict");
          Api.seek env c ~pos:(g * 16);
          Api.unlock env c ~len:16
        done;
        total := L.Engine.now e - t0);
    float_of_int !total /. 30_000.
  in
  let plain = burst_cost false and delegated = burst_cost true in
  Tables.print_table
    ~title:
      "E2d ablation: lock-control migration (§5.2, 30 lock/unlock pairs from \
       one remote site)"
    ~columns:[ "configuration"; "per lock+unlock" ]
    [
      [ "authority stays at the storage site"; Tables.msf plain ];
      [ "authority migrates to the requester"; Tables.msf delegated ];
      [ "speedup"; Printf.sprintf "%.1fx" (plain /. delegated) ];
    ];
  Tables.paper
    "the storage site could temporarily transfer its ability to manage a group \
     of locks to another site, reducing overhead for co-located heavy users \
     (§5.2)"
