(* E8 — §4.3-4.4: crash at each 2PC stage — outcome and recovery work.
   E9 — §4.1: process migration cost and the file-list merge race.
   E10 — §3.1: deadlock detection via the wait-for graph. *)

open Harness
module LR = Locus_txn.Log_record

(* One distributed transaction (files at sites 1 and 2, coordinated from
   site 0) with a crash injected at [stage]; returns (durable outcome,
   recovery stats). *)
let crash_at stage =
  let sim = fresh ~n_sites:3 () in
  let cl = sim.L.cluster in
  let crash_and_reboot site =
    K.crash_site cl site;
    Engine.schedule ~delay:3_000_000 (K.engine cl) (fun () -> K.restart_site cl site)
  in
  (match stage with
  | `None -> ()
  | `Participant_prepared ->
    (K.hooks cl).K.on_participant_prepared <-
      (fun site _ _ -> if site = 2 then crash_and_reboot 2)
  | `Coordinator_undecided ->
    (K.hooks cl).K.on_participant_prepared <-
      (fun site _ _ -> if site = 2 then crash_and_reboot 0)
  | `Coordinator_decided ->
    (K.hooks cl).K.on_decided <- (fun _ _ -> crash_and_reboot 0)
  | `Participant_decided ->
    (K.hooks cl).K.on_decided <- (fun _ _ -> crash_and_reboot 2));
  ignore
    (Api.spawn_process cl ~site:0 ~name:"client" (fun env ->
         let a = Api.creat env "/a" ~vid:1 in
         let b = Api.creat env "/b" ~vid:2 in
         Api.begin_trans env;
         Api.write_string env a "AAAA";
         Api.write_string env b "BBBB";
         ignore (Api.end_trans env)));
  L.run sim;
  let st = stats sim in
  let value path =
    match K.lookup cl path with
    | Some fid -> K.read_committed_oracle cl fid
    | None -> ""
  in
  let outcome =
    match (value "/a", value "/b") with
    | "AAAA", "BBBB" -> "committed"
    | "", "" -> "aborted"
    | _ -> "NON-ATOMIC!"
  in
  ( outcome,
    L.Stats.get st "recovery.replayed_commit",
    L.Stats.get st "recovery.replayed_abort" )

let e8 () =
  let rows =
    List.map
      (fun (name, stage, expect) ->
        let outcome, rc, ra = crash_at stage in
        [ name; outcome; Tables.i rc; Tables.i ra; expect ])
      [
        ("no crash", `None, "commits");
        ("participant dies after voting", `Participant_prepared, "converges");
        ("coordinator dies before the mark", `Coordinator_undecided, "aborts");
        ("coordinator dies after the mark", `Coordinator_decided, "commits");
        ("participant dies after the mark", `Participant_decided, "commits");
      ]
  in
  Tables.print_table
    ~title:
      "E8 / §4.3-4.4: crash at each two-phase-commit stage (durable outcome \
       after reboot + recovery; always atomic)"
    ~columns:[ "crash point"; "outcome"; "commit replays"; "abort replays"; "expected" ]
    rows;
  Tables.paper
    "failures before prepare are aborts; after the commit mark, recovery \
     completes the transaction from the logs; duplicate commit/abort \
     messages are harmless"

let e9 () =
  (* Migration cost. *)
  let sim = fresh ~n_sites:3 () in
  let per_hop = ref 0. in
  run_proc sim ~site:0 (fun env ->
      let e = K.engine (Api.cluster env) in
      let t0 = L.Engine.now e in
      let hops = 6 in
      for i = 1 to hops do
        Api.migrate env (i mod 3)
      done;
      per_hop := float_of_int (L.Engine.now e - t0) /. float_of_int hops /. 1000.);
  (* Merge race: members completing while the top-level process migrates. *)
  let race_retries migrations =
    let sim = fresh ~n_sites:3 () in
    run_proc sim ~site:0 (fun env ->
        let c = Api.creat env "/f" ~vid:1 in
        Api.begin_trans env;
        Api.write_string env c "top";
        let members =
          List.init 4 (fun i ->
              Api.fork env ~site:((i mod 2) + 1) ~name:"m" (fun m ->
                  Engine.sleep (5_000 * i);
                  Api.pwrite m c ~pos:(16 * (i + 1)) (Bytes.make 8 'm')))
        in
        for i = 1 to migrations do
          Api.migrate env (i mod 3)
        done;
        List.iter (Api.wait_pid env) members;
        ignore (Api.end_trans env));
    L.Stats.get (stats sim) "merge.retries"
  in
  Tables.print_table ~title:"E9 / §4.1: process migration"
    ~columns:[ "metric"; "value" ]
    [
      [ "migration cost (per hop)"; Tables.msf !per_hop ];
      [ "merge retries, 0 migrations"; Tables.i (race_retries 0) ];
      [ "merge retries, 3 migrations"; Tables.i (race_retries 3) ];
      [ "merge retries, 6 migrations"; Tables.i (race_retries 6) ];
    ];
  Tables.paper
    "a file-list arriving at a site the top-level process is migrating away \
     from is bounced and retried; the in-transit flag makes migration atomic"

let e10 () =
  (* An n-cycle of transactions, each holding record i and requesting
     record i+1. *)
  let deadlock_n n =
    let sim = fresh ~n_sites:2 () in
    let resolved = ref 0 in
    run_proc sim ~site:0 (fun env ->
        let c = Api.creat env "/r" ~vid:1 in
        Api.write_string env c (String.make (64 * n) 'i');
        Api.commit_file env c;
        let e = K.engine (Api.cluster env) in
        let t0 = L.Engine.now e in
        let worker i =
          Api.fork env ~name:(Printf.sprintf "d%d" i) (fun w ->
              Api.begin_trans w;
              Api.seek w c ~pos:(i * 64);
              (match Api.lock w c ~len:64 ~mode:M.Exclusive () with
              | Api.Granted -> ()
              | Api.Conflict _ -> ());
              Engine.sleep 30_000;
              Api.seek w c ~pos:(64 * ((i + 1) mod n));
              (match Api.lock w c ~len:64 ~mode:M.Exclusive () with
              | Api.Granted -> ()
              | Api.Conflict _ -> ());
              ignore (Api.end_trans w))
        in
        let pids = List.init n worker in
        List.iter (Api.wait_pid env) pids;
        resolved := L.Engine.now e - t0);
    let st = stats sim in
    ( !resolved,
      L.Stats.get st "deadlock.scans",
      L.Stats.get st "deadlock.victims",
      L.Stats.get st "txn.committed" )
  in
  let rows =
    List.map
      (fun n ->
        let elapsed, scans, victims, committed = deadlock_n n in
        [ Tables.i n; Tables.ms elapsed; Tables.i scans; Tables.i victims;
          Tables.i committed ])
      [ 2; 3; 4; 6 ]
  in
  Tables.print_table
    ~title:
      "E10 / §3.1: induced n-cycle deadlocks resolved by the wait-for-graph \
       service"
    ~columns:[ "cycle size"; "makespan"; "scans"; "victims"; "survivors committed" ]
    rows;
  Tables.paper
    "the kernel does not detect deadlock; a system process builds the \
     wait-for graph from exported lock state and applies a resolution policy"
