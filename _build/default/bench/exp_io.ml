(* E3 — Figure 5: transaction I/O overhead, with the footnote 9 and 10
   ablations and the async-phase-2 latency ablation. *)

open Harness

type counts = {
  coord_logs : int;  (* coordinator record + commit mark, at coordinator *)
  prepare_logs : int;
  flush_writes : int;
  inode_writes : int;
  client_latency_us : int;
}

(* Run one transaction updating [pages_per_file] pages in each of
   [n_files] files (each file on its own volume when [n_volumes] > 1);
   return the I/O breakdown attributable to the transaction. *)
let run_txn ?(two_write_log = false) ?(per_file_log = false) ?(async_phase2 = true)
    ~n_files ~pages_per_file () =
  let n_sites = 2 in
  let volumes =
    (* Volume 0 at site 0 (coordinator log), data volumes at site 1. *)
    (0, [ 0 ]) :: List.init n_files (fun i -> (i + 1, [ 1 ]))
  in
  let config =
    {
      (K.Config.default ~n_sites) with
      K.Config.volumes;
      two_write_log;
      prepare_log_per_file = per_file_log;
      async_phase2;
      replica_sync = false;
    }
  in
  let sim = fresh ~config ~n_sites () in
  let result = ref None in
  run_proc sim ~site:0 (fun env ->
      let chans =
        List.init n_files (fun i ->
            Api.creat env (Printf.sprintf "/f%d" i) ~vid:(i + 1))
      in
      (* Everything before the measured transaction settles first. *)
      List.iter (fun c -> Api.commit_file env c) chans;
      Engine.sleep 200_000;
      reset_io sim;
      let e = K.engine (Api.cluster env) in
      let coord_vol =
        Locus_txn.Coord_log.volume (K.coord_log (K.kernel (Api.cluster env) 0))
      in
      let logs_at_coord () = Locus_disk.Volume.io_log_writes coord_vol in
      let c0 = logs_at_coord () in
      let t0 = L.Engine.now e in
      Api.begin_trans env;
      List.iter
        (fun c ->
          for p = 0 to pages_per_file - 1 do
            Api.pwrite env c ~pos:(p * 1024) (Bytes.make 100 'z')
          done)
        chans;
      (match Api.end_trans env with
      | K.Committed -> ()
      | K.Aborted -> failwith "unexpected abort");
      let latency = L.Engine.now e - t0 in
      result := Some (latency, logs_at_coord () - c0));
  let latency, coord_logs = Option.get !result in
  let _, writes, logs = io_counts sim in
  {
    coord_logs;
    prepare_logs = logs - coord_logs;
    flush_writes = writes - n_files (* inode writes separated below *);
    inode_writes = n_files;
    client_latency_us = latency;
  }

let e3 () =
  let simple = run_txn ~n_files:1 ~pages_per_file:1 () in
  let multi_page = run_txn ~n_files:1 ~pages_per_file:4 () in
  let multi_vol = run_txn ~n_files:3 ~pages_per_file:1 () in
  let row name c expected =
    [
      name;
      Tables.i c.coord_logs;
      Tables.i c.flush_writes;
      Tables.i c.prepare_logs;
      Tables.i c.inode_writes;
      Tables.i (c.coord_logs + c.flush_writes + c.prepare_logs + c.inode_writes);
      expected;
    ]
  in
  Tables.print_table
    ~title:"E3 / Figure 5: I/O operations per transaction (measured)"
    ~columns:
      [ "workload"; "coord log"; "data flush"; "prepare log"; "inode (async)";
        "total"; "paper" ]
    [
      row "1 page, 1 file" simple "2+1+1+1 = 5";
      row "4 pages, 1 file" multi_page "2+4+1+1 = 8 (only step 2 repeats)";
      row "1 page x 3 files/volumes" multi_vol "2+3+3+3 (one prepare log per volume)";
    ];
  Tables.paper
    "Figure 5: coordinator record, dirty-page flush, prepare log, commit mark \
     before completion; the intentions-list (inode) write happens later";

  (* Footnote 9 ablation: the uncorrected implementation spent two writes
     per log append. *)
  let fixed = run_txn ~n_files:1 ~pages_per_file:1 () in
  let double = run_txn ~two_write_log:true ~n_files:1 ~pages_per_file:1 () in
  (* Footnote 10 ablation: one prepare log per file instead of per volume:
     visible only with several files on one volume. *)
  let per_vol = run_txn ~n_files:1 ~pages_per_file:1 () in
  ignore per_vol;
  let log_total c = c.coord_logs + c.prepare_logs in
  Tables.print_table ~title:"E3b ablation: footnote 9 (two writes per log append)"
    ~columns:[ "configuration"; "log I/Os"; "client latency" ]
    [
      [ "corrected (1 write/append)"; Tables.i (log_total fixed);
        Tables.ms fixed.client_latency_us ];
      [ "uncorrected (2 writes/append)"; Tables.i (log_total double);
        Tables.ms double.client_latency_us ];
    ];
  (* Async vs sync phase 2: what the client waits for. *)
  let async_run = run_txn ~n_files:1 ~pages_per_file:1 ~async_phase2:true () in
  let sync_run = run_txn ~n_files:1 ~pages_per_file:1 ~async_phase2:false () in
  Tables.print_table ~title:"E3c ablation: asynchronous phase 2 (§4.2)"
    ~columns:[ "phase 2"; "client latency" ]
    [
      [ "asynchronous (paper)"; Tables.ms async_run.client_latency_us ];
      [ "synchronous"; Tables.ms sync_run.client_latency_us ];
    ];
  Tables.paper
    "the 5th I/O (intentions-list application) happens after the transaction \
     completes; a synchronous phase 2 adds it to client latency"
