(* Lightweight fixed-width table rendering for the experiment output. *)

let rule width = String.make width '-'

let print_table ~title ~columns rows =
  let widths =
    List.mapi
      (fun i c ->
        List.fold_left (fun w r -> max w (String.length (List.nth r i)))
          (String.length c) rows)
      columns
  in
  let total = List.fold_left ( + ) 0 widths + (3 * List.length widths) + 1 in
  Fmt.pr "@.%s@." title;
  Fmt.pr "%s@." (rule total);
  let print_row cells =
    List.iteri
      (fun i cell -> Fmt.pr "| %-*s " (List.nth widths i) cell)
      cells;
    Fmt.pr "|@."
  in
  print_row columns;
  Fmt.pr "%s@." (rule total);
  List.iter print_row rows;
  Fmt.pr "%s@." (rule total)

let paper note = Fmt.pr "paper: %s@." note

let ms us = Printf.sprintf "%.1f ms" (float_of_int us /. 1000.)
let msf f = Printf.sprintf "%.1f ms" f
let i = string_of_int
