(* E13 — §7.1: the paper's facility vs. the previous process-based
   fully-nested facility ([Mueller83]), on identical work: one small
   update performed under d levels of transaction nesting. *)

open Harness
module OF = Locus_nested.Old_facility

(* Old facility: d-1 nested subtransactions around one write. *)
let old_cost ~depth =
  let e = L.Engine.create () in
  let fac = OF.create e in
  let out = ref 0 in
  ignore
    (L.Engine.spawn e (fun () ->
         let f = OF.create_file fac "/t" in
         (* Warm up the file so measurement excludes creation. *)
         ignore
           (OF.run_transaction fac (fun txn ->
                OF.write txn f ~pos:0 (Bytes.of_string "warm")));
         let t0 = L.Engine.now e in
         ignore
           (OF.run_transaction fac (fun txn ->
                let rec nest txn d =
                  if d = 0 then OF.write txn f ~pos:0 (Bytes.of_string "data")
                  else ignore (OF.subtransaction txn (fun sub -> nest sub (d - 1)))
                in
                nest txn (depth - 1)));
         out := L.Engine.now e - t0));
  L.Engine.run e;
  !out

(* New facility: d Begin/End pairs around one write, storage co-located
   (the old prototype was single-site, so compare like with like). *)
let new_cost ~depth =
  let sim = fresh ~n_sites:1 () in
  let out = ref 0 in
  run_proc sim ~site:0 (fun env ->
      let c = Api.creat env "/t" ~vid:0 in
      Api.write_string env c "warm";
      Api.commit_file env c;
      Engine.sleep 100_000;
      let e = K.engine (Api.cluster env) in
      let t0 = L.Engine.now e in
      for _ = 1 to depth do
        Api.begin_trans env
      done;
      Api.pwrite env c ~pos:0 (Bytes.of_string "data");
      for _ = 1 to depth do
        ignore (Api.end_trans env)
      done;
      out := L.Engine.now e - t0);
  !out

let e13 () =
  let measured = List.map (fun d -> (d, old_cost ~depth:d, new_cost ~depth:d)) [ 1; 2; 3; 4; 6 ] in
  let base_old = match measured with (_, o, _) :: _ -> o | [] -> 0 in
  let base_new = match measured with (_, _, n) :: _ -> n | [] -> 0 in
  let rows =
    List.map
      (fun (depth, old_us, new_us) ->
        [
          Tables.i depth;
          Tables.ms old_us;
          Tables.ms new_us;
          (if depth = 1 then "-"
           else Tables.msf (float_of_int (old_us - base_old) /. float_of_int (depth - 1) /. 1000.));
          (if depth = 1 then "-"
           else Tables.msf (float_of_int (new_us - base_new) /. float_of_int (depth - 1) /. 1000.));
        ])
      measured
  in
  Tables.print_table
    ~title:
      "E13 / §7.1: one small update under d nesting levels — previous \
       process-based nested facility vs. BeginTrans/EndTrans"
    ~columns:
      [ "depth"; "old facility"; "new facility"; "old cost/level"; "new cost/level" ]
    rows;
  Tables.paper
    "each nesting level of the old facility costs a heavy-weight process \
     creation plus a version-stack frame merge (~10 ms here); a \
     BeginTrans/EndTrans pair costs two system calls (~1 ms). The new \
     facility's higher base latency is the price of its durable distributed \
     commit (coordinator + prepare logs), which the single-site prototype \
     never wrote (§2, §7.1)"
