(* Shared plumbing for the experiments. *)

module L = Locus_core.Locus
module Api = L.Api
module K = L.Kernel
module M = L.Mode

let fresh ?config ?costs ?(seed = 42) ~n_sites () = L.make ?config ?costs ~seed ~n_sites ()

(* Run [f] as a single user process and drain the engine. *)
let run_proc sim ~site f =
  ignore (Api.spawn_process sim.L.cluster ~site f);
  L.run sim

let stats sim = L.Engine.stats sim.L.engine
let now sim = L.Engine.now sim.L.engine

(* Total disk I/Os across every volume of the cluster. *)
let io_counts sim =
  let reads = ref 0 and writes = ref 0 and logs = ref 0 in
  List.iter
    (fun k ->
      List.iter
        (fun vol ->
          reads := !reads + Locus_disk.Volume.io_reads vol;
          writes := !writes + Locus_disk.Volume.io_writes vol;
          logs := !logs + Locus_disk.Volume.io_log_writes vol)
        (Locus_fs.Filestore.volumes (K.filestore k)))
    (K.kernels sim.L.cluster);
  (!reads, !writes, !logs)

let reset_io sim =
  List.iter
    (fun k ->
      List.iter Locus_disk.Volume.reset_io_counters
        (Locus_fs.Filestore.volumes (K.filestore k)))
    (K.kernels sim.L.cluster)

let cpu_instr sim = L.Stats.get (stats sim) "cpu.instr"

let cpu_instr_site sim s =
  L.Stats.get (stats sim) (Printf.sprintf "cpu.instr.site%d" s)

let instr_to_ms instr =
  float_of_int (instr * Locus_sim.Costs.default.Locus_sim.Costs.instr_ns) /. 1_000_000.
