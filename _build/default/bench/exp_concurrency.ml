(* E7 — §7.1: record-level locking vs the previous Locus facility's
   whole-file locking, measured as concurrent-transaction throughput on
   one shared file. *)

open Harness

(* [n] concurrent transactions each update their own record of one shared
   file. [granularity] selects what each transaction locks. *)
let run_concurrent ~granularity ~n =
  let sim = fresh ~n_sites:2 () in
  let file_len = 64 * n in
  let elapsed = ref 0 in
  run_proc sim ~site:0 (fun env ->
      let c = Api.creat env "/shared" ~vid:1 in
      Api.write_string env c (String.make file_len 'i');
      Api.commit_file env c;
      let e = K.engine (Api.cluster env) in
      Engine.sleep 100_000;
      let t0 = L.Engine.now e in
      let worker i =
        Api.fork env ~name:(Printf.sprintf "w%d" i) (fun w ->
            Api.begin_trans w;
            (match granularity with
            | `Record -> Api.seek w c ~pos:(i * 64)
            | `Whole_file -> Api.seek w c ~pos:0);
            let len = match granularity with `Record -> 64 | `Whole_file -> file_len in
            (match Api.lock w c ~len ~mode:M.Exclusive () with
            | Api.Granted -> ()
            | Api.Conflict _ -> failwith "conflict");
            (* Think time + the update itself. *)
            Engine.sleep 20_000;
            Api.pwrite w c ~pos:(i * 64) (Bytes.make 64 'u');
            match Api.end_trans w with
            | K.Committed -> ()
            | K.Aborted -> failwith "abort")
      in
      let pids = List.init n worker in
      List.iter (Api.wait_pid env) pids;
      elapsed := L.Engine.now e - t0);
  !elapsed

let e7 () =
  let rows =
    List.map
      (fun n ->
        let rec_us = run_concurrent ~granularity:`Record ~n in
        let file_us = run_concurrent ~granularity:`Whole_file ~n in
        [
          Tables.i n;
          Tables.ms rec_us;
          Tables.ms file_us;
          Printf.sprintf "%.1fx" (float_of_int file_us /. float_of_int rec_us);
        ])
      [ 1; 2; 4; 8; 16 ]
  in
  Tables.print_table
    ~title:
      "E7 / §7.1: concurrent disjoint-record transactions on one file — \
       record-level vs whole-file locking (makespan)"
    ~columns:[ "concurrent txns"; "record locks"; "whole-file locks"; "slowdown" ]
    rows;
  Tables.paper
    "whole-file locking restricts the degree of concurrent access and is not a \
     satisfactory base for a database system; the new facility provides \
     record-level locking (§7.1)"
