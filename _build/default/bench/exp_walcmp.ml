(* E5 — §6 / [Weinstein85]: shadow paging vs commit logging. Two views:
   the operation-counting analysis, and a live run of the same workload
   under both mechanisms with real I/O counters. *)

open Harness
module O = Locus_wal.Opcount
module R = Locus_wal.Redo_log
module V = Locus_disk.Volume
module FS = Locus_fs.Filestore

let e5_analytic () =
  let base = O.default_params in
  let rows placement tag =
    List.map
      (fun record_size ->
        let p = { base with O.record_size; records_per_txn = 4; placement } in
        let s = O.shadow p and w = O.wal p in
        [
          Printf.sprintf "%s %4d B" tag record_size;
          Tables.i s.O.foreground;
          Tables.i s.O.total;
          Tables.i w.O.foreground;
          Tables.i w.O.total;
          (if s.O.total <= w.O.total then "shadow" else "wal");
        ])
      [ 16; 64; 128; 256; 512; 1024 ]
  in
  Tables.print_table
    ~title:
      "E5a / [Weinstein85] operation counts: 4-record transactions \
       (foreground fg / total I/Os)"
    ~columns:[ "placement+size"; "shadow fg"; "shadow tot"; "wal fg"; "wal tot"; "winner" ]
    (rows O.Sequential "seq" @ rows (O.Random_within 64) "rand");
  (match O.crossover_record_size () with
  | Some n -> Fmt.pr "total-I/O crossover (sequential, 4 records/txn): %d bytes@." n
  | None -> Fmt.pr "no crossover within one page@.");
  Tables.paper
    "relative performance is highly dependent on the access strings: logging \
     wins on small scattered records; for many record sizes and placements \
     shadow paging is comparable (§6)"

(* The same workload executed by both engines, counting real I/Os:
   [txns] transactions, each writing [records] records of [record_size]
   bytes at seeded-random positions in a [file_pages]-page file. *)
let live_workload ~record_size ~records ~txns =
  let file_pages = 64 in
  let positions =
    let prng = Locus_sim.Prng.create ~seed:9 in
    List.init txns (fun _ ->
        List.init records (fun _ ->
            Locus_sim.Prng.int prng ((file_pages * 1024) - record_size)))
  in
  (* Shadow paging via the filestore. *)
  let shadow_ios =
    let e = L.Engine.create () in
    let cache = Locus_disk.Cache.create e in
    let store = FS.create e ~cache in
    let vol = V.create e ~vid:1 () in
    FS.mount store vol;
    let done_ref = ref 0 in
    ignore
      (L.Engine.spawn e (fun () ->
           let fid = FS.create_file store ~vid:1 in
           FS.open_file store fid;
           (* Pre-populate so commits rewrite existing pages. *)
           FS.write store fid
             ~owner:(Owner.Process (Pid.make ~origin:0 ~num:99))
             ~pos:0
             (Bytes.make (file_pages * 1024) 'i');
           ignore
             (FS.commit store fid ~owner:(Owner.Process (Pid.make ~origin:0 ~num:99)));
           V.reset_io_counters vol;
           List.iteri
             (fun i ps ->
               let owner =
                 Owner.Transaction (Txid.make ~site:0 ~incarnation:1 ~seq:i)
               in
               List.iter
                 (fun pos -> FS.write store fid ~owner ~pos (Bytes.make record_size 'd'))
                 ps;
               ignore (FS.commit store fid ~owner))
             positions;
           done_ref := V.io_writes vol + V.io_log_writes vol));
    L.Engine.run e;
    !done_ref
  in
  (* Redo logging. *)
  let wal_ios =
    let e = L.Engine.create () in
    let vol = V.create e ~vid:1 () in
    let w = R.create vol in
    let done_ref = ref 0 in
    ignore
      (L.Engine.spawn e (fun () ->
           let fid = R.create_file w in
           R.write w fid ~owner:"init" ~pos:0 (Bytes.make (file_pages * 1024) 'i');
           ignore (R.commit w ~owner:"init");
           ignore (R.checkpoint w);
           V.reset_io_counters vol;
           List.iteri
             (fun i ps ->
               let owner = Printf.sprintf "t%d" i in
               List.iter
                 (fun pos -> R.write w fid ~owner ~pos (Bytes.make record_size 'd'))
                 ps;
               ignore (R.commit w ~owner))
             positions;
           (* Charge the deferred in-place writes: one checkpoint at the
              end of the batch. *)
           ignore (R.checkpoint w);
           done_ref := V.io_writes vol + V.io_log_writes vol));
    L.Engine.run e;
    !done_ref
  in
  (shadow_ios, wal_ios)

let e5_live () =
  let rows =
    List.map
      (fun (record_size, records) ->
        let s, w = live_workload ~record_size ~records ~txns:20 in
        [
          Printf.sprintf "%4d B x %d/txn" record_size records;
          Printf.sprintf "%.1f" (float_of_int s /. 20.);
          Printf.sprintf "%.1f" (float_of_int w /. 20.);
          (if s <= w then "shadow" else "wal");
        ])
      [ (32, 2); (32, 8); (128, 4); (512, 4); (1024, 2) ]
  in
  Tables.print_table
    ~title:
      "E5b live comparison: measured I/Os per transaction (both mechanisms, \
       same workload, random placement, incl. one WAL checkpoint per batch)"
    ~columns:[ "record size x count"; "shadow I/O/txn"; "wal I/O/txn"; "winner" ]
    rows;
  Tables.paper
    "for many combinations of record size and placement, shadow paging \
     provides comparable performance (§6)"

let e5 () =
  e5_analytic ();
  e5_live ()
