type error = Timeout | No_handler

let pp_error ppf = function
  | Timeout -> Fmt.string ppf "timeout"
  | No_handler -> Fmt.string ppf "no-handler"

(* Lossy-network fault model (locus_chaos). Every probability draw comes
   from a PRNG split off the engine's seed stream, so a faulty run is
   exactly as deterministic as a clean one. With no faults configured the
   delivery path below is bit-for-bit the historical reliable model. *)
type faults = {
  drop : float;  (* per-message loss probability *)
  dup : float;  (* per-message duplication probability *)
  jitter_us : int;  (* extra uniform delay in [0, jitter_us] *)
  reorder : int;  (* reorder window: up to this many extra latencies *)
}

let no_faults = { drop = 0.; dup = 0.; jitter_us = 0; reorder = 0 }

type fault_kind = [ `Drop | `Dup | `Reorder ]

let pp_fault_kind ppf = function
  | `Drop -> Fmt.string ppf "drop"
  | `Dup -> Fmt.string ppf "dup"
  | `Reorder -> Fmt.string ppf "reorder"

type ('req, 'resp) site_state = {
  id : Site.t;
  mutable up : bool;
  mutable incarnation : int;
  mutable group : int;
  mutable handler : (src:Site.t -> 'req -> 'resp) option;
}

(* How to pack several requests for one destination into a single wire
   message and unpack the single reply. The transport is payload-agnostic:
   the kernel supplies the envelope codec ([Msg.Batch] / [R_batch]). *)
type ('req, 'resp) batch_cfg = {
  wrap : 'req list -> 'req;
  unwrap : 'resp -> 'resp list option;
  trace : site:Site.t -> size:int -> (unit -> unit) -> unit;
}

type ('req, 'resp) t = {
  engine : Engine.t;
  latency_us : int;
  rpc_timeout_us : int;
  states : ('req, 'resp) site_state array;
  mutable next_group : int;
  mutable crash_watchers : (Site.t -> unit) list;
  mutable restart_watchers : (Site.t -> unit) list;
  mutable topology_watchers : (unit -> unit) list;
  mutable batch_window_us : int;
  mutable batch_cfg : ('req, 'resp) batch_cfg option;
  batchers :
    ( Site.t * Site.t,
      ('req * ('resp, error) result Engine.Ivar.t) Locus_batch.Batcher.t )
    Hashtbl.t;
  mutable faults : faults option;  (* cluster-wide default (None = reliable) *)
  link_faults : (Site.t * Site.t, faults option) Hashtbl.t;  (* per-link override *)
  mutable fault_prng : Prng.t option;  (* split lazily: clean runs never draw *)
  mutable fault_watchers : (src:Site.t -> dst:Site.t -> fault_kind -> unit) list;
  (* Highest delivery time already scheduled per link, to count actual
     overtakes (a jittered copy only "reorders" if something sent later
     will arrive before it). *)
  reorder_mark : (Site.t * Site.t, int) Hashtbl.t;
}

let default_rpc_timeout_us = 30_000_000

(* Single source of truth for the client retry policy (Kernel.Config
   reads these, like [default_rpc_timeout_us] above, so the transport
   defaults and the kernel defaults cannot drift apart). The cap is the
   historical 16x the initial backoff. *)
let default_rpc_attempts = 5
let default_rpc_backoff_us = 100_000
let default_rpc_backoff_cap_us = default_rpc_backoff_us * 16

let create ?latency_us ?(rpc_timeout_us = default_rpc_timeout_us) engine ~n_sites =
  if n_sites <= 0 then invalid_arg "Transport.create: need at least one site";
  let latency_us =
    match latency_us with
    | Some l -> l
    | None -> (Engine.costs engine).Costs.msg_latency_us
  in
  {
    engine;
    latency_us;
    rpc_timeout_us;
    states =
      Array.init n_sites (fun id ->
          { id; up = true; incarnation = 0; group = 0; handler = None });
    next_group = 1;
    crash_watchers = [];
    restart_watchers = [];
    topology_watchers = [];
    batch_window_us = 0;
    batch_cfg = None;
    batchers = Hashtbl.create 16;
    faults = None;
    link_faults = Hashtbl.create 4;
    fault_prng = None;
    fault_watchers = [];
    reorder_mark = Hashtbl.create 16;
  }

let engine t = t.engine
let n_sites t = Array.length t.states
let sites t = List.init (n_sites t) Fun.id

let state t s =
  if s < 0 || s >= Array.length t.states then
    invalid_arg (Printf.sprintf "Transport: unknown site %d" s);
  t.states.(s)

let set_handler t s h = (state t s).handler <- Some h
let site_up t s = (state t s).up

let reachable t a b =
  let sa = state t a and sb = state t b in
  sa.up && sb.up && (a = b || sa.group = sb.group)

let notify_topology t = List.iter (fun f -> f ()) (List.rev t.topology_watchers)

let crash t s =
  let st = state t s in
  if st.up then begin
    st.up <- false;
    st.incarnation <- st.incarnation + 1;
    Engine.kill_site t.engine s;
    (* Batches forming at the crashed site die with their flusher fibers;
       drop them eagerly so a restart starts from a clean window. *)
    Hashtbl.iter
      (fun (src, _) b -> if src = s then Locus_batch.Batcher.reset b)
      t.batchers;
    List.iter (fun f -> f s) (List.rev t.crash_watchers);
    notify_topology t
  end

let restart t s =
  let st = state t s in
  if not st.up then begin
    st.up <- true;
    st.incarnation <- st.incarnation + 1;
    List.iter (fun f -> f s) (List.rev t.restart_watchers);
    notify_topology t
  end

(* Each explicit group gets a fresh group number, so sites in different
   groups of this call — and sites of this call vs. any earlier call — are
   separated. Unmentioned sites keep their current group. *)
let partition t groups =
  List.iter
    (fun members ->
      let g = t.next_group in
      t.next_group <- t.next_group + 1;
      List.iter (fun s -> (state t s).group <- g) members)
    groups;
  notify_topology t

let heal t =
  Array.iter (fun st -> st.group <- 0) t.states;
  notify_topology t

let on_crash t f = t.crash_watchers <- f :: t.crash_watchers
let on_restart t f = t.restart_watchers <- f :: t.restart_watchers
let on_topology_change t f = t.topology_watchers <- f :: t.topology_watchers

let stats_incr t name = Stats.incr (Engine.stats t.engine) name

(* {2 Fault injection (locus_chaos)} *)

let set_faults t f = t.faults <- f

let set_link_faults t ~src ~dst f = Hashtbl.replace t.link_faults (src, dst) f

let faults_for t ~src ~dst =
  match Hashtbl.find_opt t.link_faults (src, dst) with
  | Some f -> f
  | None -> t.faults

let chaotic t = t.faults <> None || Hashtbl.length t.link_faults > 0

let on_fault t f = t.fault_watchers <- f :: t.fault_watchers

let notify_fault t ~src ~dst kind =
  List.iter (fun f -> f ~src ~dst kind) (List.rev t.fault_watchers)

(* The fault PRNG is split off the engine stream on first use only:
   configuring no faults must leave the engine's draw sequence — and so
   every schedule — bit-for-bit what it was before this layer existed. *)
let fault_prng t =
  match t.fault_prng with
  | Some p -> p
  | None ->
    let p = Prng.split (Engine.prng t.engine) in
    t.fault_prng <- Some p;
    p

(* Deliver [work] at [dst] after one-way latency, provided [dst] is still
   reachable from [src] and has not rebooted since the message was sent.
   This is the single choke point both the request and the reply leg go
   through, so the fault layer lives here: a configured link may drop the
   message, deliver a second copy, or add jittered delay large enough for
   later messages to overtake it. *)
let deliver t ~src ~dst work =
  let inc = (state t dst).incarnation in
  let fire () =
    if reachable t src dst && (state t dst).incarnation = inc then work ()
  in
  match faults_for t ~src ~dst with
  | None -> Engine.schedule ~delay:t.latency_us t.engine fire
  | Some f ->
    let prng = fault_prng t in
    let send_copy () =
      let jitter =
        (if f.jitter_us > 0 then Prng.int prng (f.jitter_us + 1) else 0)
        + (if f.reorder > 0 then Prng.int prng (f.reorder + 1) * t.latency_us else 0)
      in
      if jitter > 0 then Stats.hist (Engine.stats t.engine) "net.jitter_us" jitter;
      let arrival = Engine.now t.engine + t.latency_us + jitter in
      (* A delayed copy only counts as a reorder once a message scheduled
         to arrive later is already ahead of it on this link. *)
      (match Hashtbl.find_opt t.reorder_mark (src, dst) with
      | Some mark when arrival < mark ->
        stats_incr t "net.reorder";
        notify_fault t ~src ~dst `Reorder
      | Some _ | None -> Hashtbl.replace t.reorder_mark (src, dst) arrival);
      Engine.schedule ~delay:(t.latency_us + jitter) t.engine fire
    in
    if f.drop > 0. && Prng.float prng 1.0 < f.drop then begin
      stats_incr t "net.drop";
      notify_fault t ~src ~dst `Drop
    end
    else begin
      send_copy ();
      if f.dup > 0. && Prng.float prng 1.0 < f.dup then begin
        stats_incr t "net.dup";
        notify_fault t ~src ~dst `Dup;
        send_copy ()
      end
    end

let run_handler t ~src ~dst req ~on_reply =
  match (state t dst).handler with
  | None -> ()
  | Some h ->
    ignore
      (Engine.spawn ~name:(Printf.sprintf "netsrv@%d" dst) ~site:dst t.engine
         (fun () ->
           Engine.consume t.engine ~instr:(Engine.costs t.engine).Costs.msg_cpu_instr;
           let resp = h ~src req in
           on_reply resp))

let rpc t ~src ~dst req =
  let costs = Engine.costs t.engine in
  if src = dst then begin
    (* Local service: no wire, no message counters (§6.2 measures exactly
       this asymmetry). *)
    match (state t dst).handler with
    | None -> Error No_handler
    | Some h -> Ok (h ~src req)
  end
  else begin
    stats_incr t "net.msg";
    Engine.consume t.engine ~instr:costs.Costs.msg_cpu_instr;
    let reply = Engine.Ivar.create () in
    deliver t ~src ~dst (fun () ->
        run_handler t ~src ~dst req ~on_reply:(fun resp ->
            stats_incr t "net.msg";
            Engine.consume t.engine ~instr:costs.Costs.msg_cpu_instr;
            deliver t ~src:dst ~dst:src (fun () ->
                ignore (Engine.try_fill t.engine reply resp))));
    match Engine.await_timeout reply ~timeout:t.rpc_timeout_us with
    | Some resp -> Ok resp
    | None -> Error Timeout
  end

(* Flush one coalesced batch for a (src, dst) pair. A singleton avoids the
   envelope entirely; otherwise the requests travel as one wire message
   whose single reply is fanned back out to the waiters in order. If the
   reply cannot be unpacked (e.g. the destination answered the whole
   envelope with an error), every waiter sees the raw reply — errors
   propagate rather than vanish. *)
let flush_batch t cfg ~src ~dst items =
  let give iv r = ignore (Engine.try_fill t.engine iv r) in
  match items with
  | [] -> ()
  | [ (req, iv) ] -> give iv (rpc t ~src ~dst req)
  | _ ->
    let n = List.length items in
    let st = Engine.stats t.engine in
    Stats.incr st "rpc.batches";
    Stats.add st "rpc.batched" n;
    Stats.hist st "rpc.batch_size" n;
    Stats.add st "net.msg_saved" (2 * (n - 1));
    cfg.trace ~site:src ~size:n (fun () ->
        let result = rpc t ~src ~dst (cfg.wrap (List.map fst items)) in
        match result with
        | Ok resp -> (
          match cfg.unwrap resp with
          | Some resps when List.length resps = n ->
            List.iter2 (fun (_, iv) r -> give iv (Ok r)) items resps
          | _ -> List.iter (fun (_, iv) -> give iv result) items)
        | Error _ -> List.iter (fun (_, iv) -> give iv result) items)

let pair_batcher t ~src ~dst =
  let key = (src, dst) in
  let b =
    match Hashtbl.find_opt t.batchers key with
    | Some b -> b
    | None ->
      let b =
        Locus_batch.Batcher.create t.engine
          ~name:(Printf.sprintf "rpcbatch@%d>%d" src dst)
      in
      Hashtbl.add t.batchers key b;
      b
  in
  Locus_batch.Batcher.configure b ~site:src ~window_us:t.batch_window_us;
  b

let set_batch t ~window_us ~wrap ~unwrap ?(trace = fun ~site:_ ~size:_ k -> k ()) ()
    =
  t.batch_window_us <- window_us;
  t.batch_cfg <- Some { wrap; unwrap; trace }

let rpc_batched t ~src ~dst req =
  match t.batch_cfg with
  | Some cfg when src <> dst -> (
    let b = pair_batcher t ~src ~dst in
    if not (Locus_batch.Batcher.enabled b) then rpc t ~src ~dst req
    else begin
      let iv = Engine.Ivar.create () in
      Locus_batch.Batcher.submit b ~flush:(flush_batch t cfg ~src ~dst) (req, iv);
      Engine.await iv
    end)
  | _ -> rpc t ~src ~dst req

(* Bounded retry with capped exponential backoff. Transport errors always
   retry; [retry_if] lets callers also retry on application-level replies
   (e.g. a site that answered but is still recovering). On a clean network
   the schedule is the deterministic [min (cap, b·2^n)]; with faults
   configured each wait is drawn decorrelated-jitter style from
   [U(b, 3·prev)] so the retry storms a fault burst triggers do not
   re-synchronize into the same congested instant. *)
let retry_loop t ~attempts ~backoff_us ~cap_us ~retry_if call =
  let attempts = max 1 attempts in
  let cap = max backoff_us cap_us in
  let rec go n backoff =
    let r = call () in
    let again = match r with Error _ -> true | Ok resp -> retry_if resp in
    if again && n < attempts then begin
      if chaotic t then stats_incr t "net.retries";
      Engine.sleep backoff;
      let next =
        if chaotic t then
          min cap
            (Prng.int_in (fault_prng t) ~lo:backoff_us
               ~hi:(max (backoff_us + 1) (backoff * 3)))
        else min cap (backoff * 2)
      in
      go (n + 1) next
    end
    else r
  in
  go 1 backoff_us

let rpc_retry ?(attempts = default_rpc_attempts)
    ?(backoff_us = default_rpc_backoff_us) ?cap_us ?(retry_if = fun _ -> false) t
    ~src ~dst req =
  let cap_us = match cap_us with Some c -> c | None -> backoff_us * 16 in
  retry_loop t ~attempts ~backoff_us ~cap_us ~retry_if (fun () ->
      rpc t ~src ~dst req)

let rpc_retry_batched ?(attempts = default_rpc_attempts)
    ?(backoff_us = default_rpc_backoff_us) ?cap_us ?(retry_if = fun _ -> false) t
    ~src ~dst req =
  let cap_us = match cap_us with Some c -> c | None -> backoff_us * 16 in
  retry_loop t ~attempts ~backoff_us ~cap_us ~retry_if (fun () ->
      rpc_batched t ~src ~dst req)

let send t ~src ~dst req =
  if src = dst then begin
    match (state t dst).handler with
    | None -> ()
    | Some h ->
      ignore
        (Engine.spawn ~name:(Printf.sprintf "netsrv@%d" dst) ~site:dst t.engine
           (fun () -> ignore (h ~src req)))
  end
  else begin
    stats_incr t "net.msg";
    deliver t ~src ~dst (fun () ->
        run_handler t ~src ~dst req ~on_reply:(fun _ -> ()))
  end
