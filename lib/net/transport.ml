type error = Timeout | No_handler

let pp_error ppf = function
  | Timeout -> Fmt.string ppf "timeout"
  | No_handler -> Fmt.string ppf "no-handler"

type ('req, 'resp) site_state = {
  id : Site.t;
  mutable up : bool;
  mutable incarnation : int;
  mutable group : int;
  mutable handler : (src:Site.t -> 'req -> 'resp) option;
}

type ('req, 'resp) t = {
  engine : Engine.t;
  latency_us : int;
  rpc_timeout_us : int;
  states : ('req, 'resp) site_state array;
  mutable next_group : int;
  mutable crash_watchers : (Site.t -> unit) list;
  mutable restart_watchers : (Site.t -> unit) list;
  mutable topology_watchers : (unit -> unit) list;
}

let create ?latency_us ?(rpc_timeout_us = 500_000) engine ~n_sites =
  if n_sites <= 0 then invalid_arg "Transport.create: need at least one site";
  let latency_us =
    match latency_us with
    | Some l -> l
    | None -> (Engine.costs engine).Costs.msg_latency_us
  in
  {
    engine;
    latency_us;
    rpc_timeout_us;
    states =
      Array.init n_sites (fun id ->
          { id; up = true; incarnation = 0; group = 0; handler = None });
    next_group = 1;
    crash_watchers = [];
    restart_watchers = [];
    topology_watchers = [];
  }

let engine t = t.engine
let n_sites t = Array.length t.states
let sites t = List.init (n_sites t) Fun.id

let state t s =
  if s < 0 || s >= Array.length t.states then
    invalid_arg (Printf.sprintf "Transport: unknown site %d" s);
  t.states.(s)

let set_handler t s h = (state t s).handler <- Some h
let site_up t s = (state t s).up

let reachable t a b =
  let sa = state t a and sb = state t b in
  sa.up && sb.up && (a = b || sa.group = sb.group)

let notify_topology t = List.iter (fun f -> f ()) (List.rev t.topology_watchers)

let crash t s =
  let st = state t s in
  if st.up then begin
    st.up <- false;
    st.incarnation <- st.incarnation + 1;
    Engine.kill_site t.engine s;
    List.iter (fun f -> f s) (List.rev t.crash_watchers);
    notify_topology t
  end

let restart t s =
  let st = state t s in
  if not st.up then begin
    st.up <- true;
    st.incarnation <- st.incarnation + 1;
    List.iter (fun f -> f s) (List.rev t.restart_watchers);
    notify_topology t
  end

(* Each explicit group gets a fresh group number, so sites in different
   groups of this call — and sites of this call vs. any earlier call — are
   separated. Unmentioned sites keep their current group. *)
let partition t groups =
  List.iter
    (fun members ->
      let g = t.next_group in
      t.next_group <- t.next_group + 1;
      List.iter (fun s -> (state t s).group <- g) members)
    groups;
  notify_topology t

let heal t =
  Array.iter (fun st -> st.group <- 0) t.states;
  notify_topology t

let on_crash t f = t.crash_watchers <- f :: t.crash_watchers
let on_restart t f = t.restart_watchers <- f :: t.restart_watchers
let on_topology_change t f = t.topology_watchers <- f :: t.topology_watchers

let stats_incr t name = Stats.incr (Engine.stats t.engine) name

(* Deliver [work] at [dst] after one-way latency, provided [dst] is still
   reachable from [src] and has not rebooted since the message was sent. *)
let deliver t ~src ~dst work =
  let inc = (state t dst).incarnation in
  Engine.schedule ~delay:t.latency_us t.engine (fun () ->
      if reachable t src dst && (state t dst).incarnation = inc then work ())

let run_handler t ~src ~dst req ~on_reply =
  match (state t dst).handler with
  | None -> ()
  | Some h ->
    ignore
      (Engine.spawn ~name:(Printf.sprintf "netsrv@%d" dst) ~site:dst t.engine
         (fun () ->
           Engine.consume t.engine ~instr:(Engine.costs t.engine).Costs.msg_cpu_instr;
           let resp = h ~src req in
           on_reply resp))

let rpc t ~src ~dst req =
  let costs = Engine.costs t.engine in
  if src = dst then begin
    (* Local service: no wire, no message counters (§6.2 measures exactly
       this asymmetry). *)
    match (state t dst).handler with
    | None -> Error No_handler
    | Some h -> Ok (h ~src req)
  end
  else begin
    stats_incr t "net.msg";
    Engine.consume t.engine ~instr:costs.Costs.msg_cpu_instr;
    let reply = Engine.Ivar.create () in
    deliver t ~src ~dst (fun () ->
        run_handler t ~src ~dst req ~on_reply:(fun resp ->
            stats_incr t "net.msg";
            Engine.consume t.engine ~instr:costs.Costs.msg_cpu_instr;
            deliver t ~src:dst ~dst:src (fun () ->
                ignore (Engine.try_fill t.engine reply resp))));
    match Engine.await_timeout reply ~timeout:t.rpc_timeout_us with
    | Some resp -> Ok resp
    | None -> Error Timeout
  end

(* Bounded retry with exponential backoff (capped at 16x the initial
   backoff). Transport errors always retry; [retry_if] lets callers also
   retry on application-level replies (e.g. a site that answered but is
   still recovering). *)
let rpc_retry ?(attempts = 5) ?(backoff_us = 100_000) ?(retry_if = fun _ -> false)
    t ~src ~dst req =
  let attempts = max 1 attempts in
  let cap = backoff_us * 16 in
  let rec go n backoff =
    let r = rpc t ~src ~dst req in
    let again = match r with Error _ -> true | Ok resp -> retry_if resp in
    if again && n < attempts then begin
      Engine.sleep backoff;
      go (n + 1) (min cap (backoff * 2))
    end
    else r
  in
  go 1 backoff_us

let send t ~src ~dst req =
  if src = dst then begin
    match (state t dst).handler with
    | None -> ()
    | Some h ->
      ignore
        (Engine.spawn ~name:(Printf.sprintf "netsrv@%d" dst) ~site:dst t.engine
           (fun () -> ignore (h ~src req)))
  end
  else begin
    stats_incr t "net.msg";
    deliver t ~src ~dst (fun () ->
        run_handler t ~src ~dst req ~on_reply:(fun _ -> ()))
  end
