(** Lightweight network message transport between simulated sites.

    Models the special-purpose kernel-to-kernel protocol Locus uses instead
    of a general-purpose protocol stack [Popek81]: a request is one message,
    the reply is one message, and the server side runs as a lightweight
    kernel activity at the destination site.

    Failure semantics match what the paper's recovery design needs:
    messages to crashed or partitioned sites vanish; a site crash kills all
    server activities running there; senders discover failures by timeout.
    Topology changes (crash, restart, partition) are announced to watchers,
    which is how the transaction layer learns to abort transactions that
    span a lost site (§4.3).

    On top of that sits the optional lossy-network model (locus_chaos):
    {!set_faults} arms per-message drop / duplication / jitter / reorder
    injection, driven by a PRNG split off the engine seed so every faulty
    run is as deterministic as a clean one. With no faults configured the
    delivery path is bit-for-bit the historical reliable model. *)

type ('req, 'resp) t

type error =
  | Timeout  (** no reply within the timeout: site down, partitioned, or crashed mid-request *)
  | No_handler  (** destination site has no registered kernel handler *)

val pp_error : error Fmt.t

val default_rpc_timeout_us : int
(** 30 s of virtual time — the single source of truth for the RPC timeout.
    [Kernel.Config.default] reads this constant, so the transport default
    and the kernel default can never drift apart again. *)

val default_rpc_attempts : int
val default_rpc_backoff_us : int

val default_rpc_backoff_cap_us : int
(** Defaults of the {!rpc_retry} policy (5 attempts, 100 ms initial
    backoff, capped at 16x). Like {!default_rpc_timeout_us} these are the
    single source of truth: [Kernel.Config.default]'s retry profiles read
    them, so kernel and transport defaults cannot drift apart. *)

val create :
  ?latency_us:int -> ?rpc_timeout_us:int -> Engine.t -> n_sites:int -> ('req, 'resp) t
(** [create engine ~n_sites] makes a transport for sites [0 .. n_sites-1],
    all up and mutually connected. [latency_us] defaults to the engine cost
    model's one-way message latency; [rpc_timeout_us] defaults to
    {!default_rpc_timeout_us}. *)

val engine : ('req, 'resp) t -> Engine.t
val n_sites : ('req, 'resp) t -> int
val sites : ('req, 'resp) t -> Site.t list

val set_handler :
  ('req, 'resp) t -> Site.t -> (src:Site.t -> 'req -> 'resp) -> unit
(** Install the kernel message handler for a site. The handler runs in a
    fresh fiber at the destination (it may block, perform nested RPCs,
    sleep, ...). Its return value is sent back as the reply. *)

(** {1 Messaging (call from inside a fiber)} *)

val rpc :
  ('req, 'resp) t -> src:Site.t -> dst:Site.t -> 'req -> ('resp, error) result
(** Send a request and await the reply. Charges send/receive CPU per the
    cost model and one-way latency each direction. A request to the local
    site still goes through the handler but skips the wire (no latency, no
    message counters) — matching the paper's local/remote asymmetry. *)

val rpc_retry :
  ?attempts:int ->
  ?backoff_us:int ->
  ?cap_us:int ->
  ?retry_if:('resp -> bool) ->
  ('req, 'resp) t ->
  src:Site.t ->
  dst:Site.t ->
  'req ->
  ('resp, error) result
(** [rpc_retry t ~src ~dst req] is {!rpc} wrapped in a bounded
    retry-with-backoff loop: up to [attempts] tries (default
    {!default_rpc_attempts}), sleeping [backoff_us] virtual microseconds
    before the second try (default {!default_rpc_backoff_us}) and doubling
    after each failure, capped at [cap_us] (default 16x the initial
    backoff). With network faults armed ({!set_faults}) each wait is
    instead drawn decorrelated-jitter style from [U(backoff, 3·prev)] so
    post-burst retry storms don't re-synchronize. Transport errors
    (timeout, no handler) always retry; [retry_if resp] (default: never)
    marks application-level replies that should also be retried, e.g. a
    "still recovering" answer. Returns the last result when attempts are
    exhausted. Used for phase-2 commit notifications so a single dropped
    message doesn't strand a participant until the next recovery pass
    (§4.2). *)

val send : ('req, 'resp) t -> src:Site.t -> dst:Site.t -> 'req -> unit
(** One-way, best-effort message (used for asynchronous phase-2 commit
    messages, §4.2). The reply, if any, is discarded. Never blocks. *)

(** {1 RPC coalescing}

    With batching configured, {!rpc_batched} calls bound for the same
    destination within a bounded window travel as one wire message with
    one reply: the transport collects the requests per (src, dst) pair,
    packs them with the caller-supplied codec, and fans the reply back
    out in request order. Concurrent 2PC rounds are the intended
    customers — prepares, phase-2 notifications and replica deltas headed
    to the same site share a message. Per-flush accounting:
    ["rpc.batches"], ["rpc.batched"], ["net.msg_saved"] counters and the
    ["rpc.batch_size"] histogram. *)

val set_batch :
  ('req, 'resp) t ->
  window_us:int ->
  wrap:('req list -> 'req) ->
  unwrap:('resp -> 'resp list option) ->
  ?trace:(site:Site.t -> size:int -> (unit -> unit) -> unit) ->
  unit ->
  unit
(** Configure coalescing: [wrap] packs several requests into one
    (the kernel's [Msg.Batch] envelope), [unwrap] recovers the individual
    replies from the combined one ([None] if the reply is not an unpacked
    batch — every waiter then sees the raw reply, so errors propagate).
    [trace] wraps each multi-request flush for span accounting. A window
    of [0] disables coalescing. *)

val rpc_batched :
  ('req, 'resp) t -> src:Site.t -> dst:Site.t -> 'req -> ('resp, error) result
(** Like {!rpc}, but joins the current batch window for [dst] when
    coalescing is configured. Falls back to {!rpc} exactly — same timing,
    same counters — when batching is unconfigured, the window is [0], or
    [src = dst] (local calls never pay a window). A crash of [src] kills
    the forming batch together with the fibers awaiting it. *)

val rpc_retry_batched :
  ?attempts:int ->
  ?backoff_us:int ->
  ?cap_us:int ->
  ?retry_if:('resp -> bool) ->
  ('req, 'resp) t ->
  src:Site.t ->
  dst:Site.t ->
  'req ->
  ('resp, error) result
(** {!rpc_retry} over {!rpc_batched}: each attempt (re)joins a batch
    window. Used for phase-2 notifications and replica propagation so
    retries coalesce just like first attempts. *)

(** {1 Fault injection (locus_chaos)} *)

type faults = {
  drop : float;  (** per-message loss probability in [0, 1] *)
  dup : float;  (** per-message duplication probability in [0, 1] *)
  jitter_us : int;  (** extra delivery delay drawn uniformly from [0, jitter_us] *)
  reorder : int;
      (** reorder window: each copy may additionally be delayed by up to
          [reorder] one-way latencies, letting later messages overtake it *)
}

val no_faults : faults
(** All-zero fault rates: configured-but-harmless (useful as a base to
    override single fields of). *)

type fault_kind = [ `Drop | `Dup | `Reorder ]

val pp_fault_kind : fault_kind Fmt.t

val set_faults : ('req, 'resp) t -> faults option -> unit
(** Install (or clear) the cluster-wide fault model. Injection applies to
    every wire message — request and reply legs alike; local (src = dst)
    calls never touch the wire and are never faulted. All randomness comes
    from a PRNG split lazily off the engine stream, so runs remain a pure
    function of the seed, and a transport whose faults stay [None] never
    draws at all — existing seeds replay bit-for-bit. Injections are
    counted in the ["net.drop"], ["net.dup"], ["net.reorder"] counters and
    the ["net.jitter_us"] histogram. *)

val set_link_faults :
  ('req, 'resp) t -> src:Site.t -> dst:Site.t -> faults option -> unit
(** Per-link (directed) override of the cluster-wide model: [Some f]
    faults this link with [f] even if the global model is off; [None]
    makes the link reliable even if the global model is on. *)

val on_fault :
  ('req, 'resp) t -> (src:Site.t -> dst:Site.t -> fault_kind -> unit) -> unit
(** Watch injected faults (the kernel forwards them to the observation
    layer as [Obs.Net_fault] events). *)

(** {1 Topology} *)

val site_up : ('req, 'resp) t -> Site.t -> bool

val reachable : ('req, 'resp) t -> Site.t -> Site.t -> bool
(** Both sites up and in the same partition. A site always reaches
    itself while up. *)

val crash : ('req, 'resp) t -> Site.t -> unit
(** Take the site down: kill its fibers, drop in-flight messages to it,
    notify crash and topology watchers. Idempotent. *)

val restart : ('req, 'resp) t -> Site.t -> unit
(** Bring a crashed site back up and notify restart/topology watchers
    (the kernel's watcher runs transaction recovery, §4.4). *)

val partition : ('req, 'resp) t -> Site.t list list -> unit
(** Impose a partition: sites in different groups cannot communicate.
    Sites not mentioned keep their current group. *)

val heal : ('req, 'resp) t -> unit
(** Remove all partitions. *)

val on_crash : ('req, 'resp) t -> (Site.t -> unit) -> unit
val on_restart : ('req, 'resp) t -> (Site.t -> unit) -> unit

val on_topology_change : ('req, 'resp) t -> (unit -> unit) -> unit
(** Fires after any crash, restart, partition or heal. *)
