(* Fault-injection switch for the exactly-once RPC self-test (the same
   pattern as [Locus_repl.Flags.drop_propagation]). With [break_dedup]
   set, servers skip the per-client reply cache and re-run every retried
   or duplicated request as if it were fresh — so a duplicate of a
   non-idempotent message (file-list merge, file create, append-lock)
   double-applies, and the checker's [Dup_apply] oracle must flag it.
   Used by `locusctl explore --break-dedup` and the CI self-test; reset
   it when done. *)
let break_dedup = ref false
