type alarm = {
  al_name : string;
  al_site : int;  (* -1 = cluster-scope *)
  al_at_us : int;
  al_detail : string;
}

let pp_alarm ppf a =
  if a.al_site < 0 then
    Fmt.pf ppf "%8d us cluster ALARM %s: %s" a.al_at_us a.al_name a.al_detail
  else
    Fmt.pf ppf "%8d us site%-2d  ALARM %s: %s" a.al_at_us a.al_site a.al_name
      a.al_detail

type thresholds = {
  in_doubt_age_us : int;
  lock_wait_p99_us : int;
  retry_storm : int;
  migration_flap : int;
  dedup_pct : int;
  degraded_windows : int;
}

(* Defaults chosen to stay structurally silent on clean runs: the lock
   p99 bound sits well above anything deadlock resolution lets a healthy
   schedule build up — a CHAIN of waiters each sitting out the 3 s
   patience of the one ahead can legitimately reach tens of seconds, so
   the bound targets the pathology where resolution can't help (locks
   retained by in-doubt transactions, which produce 100 s+ waits) — and
   the in-doubt age bound is far beyond a healthy 2PC resolution. *)
let default =
  {
    in_doubt_age_us = 2_000_000;
    lock_wait_p99_us = 60_000_000;
    retry_storm = 50;
    migration_flap = 8;
    dedup_pct = 90;
    degraded_windows = 3;
  }

type input = {
  in_site : int;  (* -1 = cluster-scope evaluation *)
  in_now_us : int;
  in_in_doubt : int;
  in_in_doubt_max_age_us : int;
  in_lock_wait_p99_us : int;  (* this window's interval p99 *)
  in_retries : int;  (* this window *)
  in_migrations : int;  (* this window *)
  in_dedup_entries : int;
  in_dedup_capacity : int;
  in_degraded_copies : int;
}

let zero_input ~site ~now_us =
  {
    in_site = site;
    in_now_us = now_us;
    in_in_doubt = 0;
    in_in_doubt_max_age_us = 0;
    in_lock_wait_p99_us = 0;
    in_retries = 0;
    in_migrations = 0;
    in_dedup_entries = 0;
    in_dedup_capacity = 1;
    in_degraded_copies = 0;
  }

(* Per-scope evaluation state: the active set makes alarms edge-triggered
   (raised on the false->true transition, re-armed when the condition
   clears), and the degraded streak counts consecutive bad windows. *)
type t = {
  th : thresholds;
  mutable active : string list;
  mutable degraded_streak : int;
}

let create ?(thresholds = default) () =
  { th = thresholds; active = []; degraded_streak = 0 }

let thresholds t = t.th

let evaluate t i =
  if !Flags.break_health then []
  else begin
    t.degraded_streak <-
      (if i.in_degraded_copies > 0 then t.degraded_streak + 1 else 0);
    let th = t.th in
    let conds =
      [
        ( "in_doubt_age",
          i.in_in_doubt > 0 && i.in_in_doubt_max_age_us >= th.in_doubt_age_us,
          fun () ->
            Fmt.str "%d txn(s) in doubt, oldest %d us (limit %d)"
              i.in_in_doubt i.in_in_doubt_max_age_us th.in_doubt_age_us );
        ( "lock_wait_p99",
          i.in_lock_wait_p99_us >= th.lock_wait_p99_us,
          fun () ->
            Fmt.str "window lock-wait p99 %d us (limit %d)"
              i.in_lock_wait_p99_us th.lock_wait_p99_us );
        ( "retry_storm",
          i.in_retries >= th.retry_storm,
          fun () ->
            Fmt.str "%d RPC retries in one window (limit %d)" i.in_retries
              th.retry_storm );
        ( "migration_flap",
          i.in_migrations >= th.migration_flap,
          fun () ->
            Fmt.str "%d ownership migrations in one window (limit %d)"
              i.in_migrations th.migration_flap );
        ( "reply_cache_pressure",
          i.in_dedup_capacity > 0
          && i.in_dedup_entries * 100 >= th.dedup_pct * i.in_dedup_capacity,
          fun () ->
            Fmt.str "reply cache at %d/%d entries (limit %d%%)"
              i.in_dedup_entries i.in_dedup_capacity th.dedup_pct );
        ( "replica_degraded",
          t.degraded_streak >= th.degraded_windows,
          fun () ->
            Fmt.str "%d degraded copies for %d consecutive windows (limit %d)"
              i.in_degraded_copies t.degraded_streak th.degraded_windows );
      ]
    in
    List.filter_map
      (fun (name, firing, detail) ->
        let was = List.mem name t.active in
        if firing && not was then begin
          t.active <- name :: t.active;
          Some
            {
              al_name = name;
              al_site = i.in_site;
              al_at_us = i.in_now_us;
              al_detail = detail ();
            }
        end
        else begin
          if (not firing) && was then
            t.active <- List.filter (fun n -> n <> name) t.active;
          None
        end)
      conds
  end

let active t = List.sort String.compare t.active
