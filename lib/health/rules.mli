(** Watchdog threshold rules, evaluated at every window close over the
    freshest sampler values and per-site kernel state.

    Alarms are edge-triggered: one alarm when a condition first becomes
    true, re-armed once it clears — so a stuck in-doubt transaction is one
    alarm, not one per window. With {!Flags.break_health} set, evaluation
    is suppressed entirely (the CI inversion that proves the explorer's
    alarm-liveness oracle is live). *)

type alarm = {
  al_name : string;
      (** stable rule id: ["in_doubt_age"], ["lock_wait_p99"],
          ["retry_storm"], ["migration_flap"], ["reply_cache_pressure"],
          ["replica_degraded"] *)
  al_site : int;  (** raising site, or -1 for cluster-scope rules *)
  al_at_us : int;
  al_detail : string;
}

val pp_alarm : alarm Fmt.t

type thresholds = {
  in_doubt_age_us : int;  (** oldest in-doubt txn age before alarming *)
  lock_wait_p99_us : int;  (** per-window lock-wait p99 bound *)
  retry_storm : int;  (** RPC retries per window *)
  migration_flap : int;  (** ownership migrations per window *)
  dedup_pct : int;  (** reply-cache occupancy percent *)
  degraded_windows : int;  (** consecutive windows with degraded copies *)
}

val default : thresholds

type input = {
  in_site : int;
  in_now_us : int;
  in_in_doubt : int;
  in_in_doubt_max_age_us : int;
  in_lock_wait_p99_us : int;
  in_retries : int;
  in_migrations : int;
  in_dedup_entries : int;
  in_dedup_capacity : int;
  in_degraded_copies : int;
}

val zero_input : site:int -> now_us:int -> input
(** All-quiet input — callers overwrite just the fields their scope
    evaluates. *)

type t

val create : ?thresholds:thresholds -> unit -> t
val thresholds : t -> thresholds

val evaluate : t -> input -> alarm list
(** Rising-edge alarms for this window; [] under {!Flags.break_health}. *)

val active : t -> string list
(** Currently-firing rule names, sorted. *)
