type hot_cell = { hc_fid : string; hc_waiters : int; hc_locks : int }

type site = {
  hs_site : int;
  hs_at_us : int;
  hs_in_doubt : int;
  hs_in_doubt_max_age_us : int;
  hs_active_txns : int;
  hs_lock_tables : int;
  hs_locks_held : int;
  hs_lock_waiters : int;
  hs_hot_cells : hot_cell list;  (* deepest queues first, bounded *)
  hs_wal_bytes : int;
  hs_dedup_entries : int;
  hs_dedup_capacity : int;
  hs_degraded_copies : int;
  hs_shards_owned : int;
}

type poll = Healthy of site | Unreachable of { u_site : int }

let poll_site = function Healthy s -> s.hs_site | Unreachable u -> u.u_site

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let pp_site_json ppf s =
  Fmt.pf ppf
    "{\"site\": %d, \"at_us\": %d, \"reachable\": true, \"in_doubt\": %d, \
     \"in_doubt_max_age_us\": %d, \"active_txns\": %d, \"lock_tables\": %d, \
     \"locks_held\": %d, \"lock_waiters\": %d, \"hot_cells\": ["
    s.hs_site s.hs_at_us s.hs_in_doubt s.hs_in_doubt_max_age_us
    s.hs_active_txns s.hs_lock_tables s.hs_locks_held s.hs_lock_waiters;
  List.iteri
    (fun i c ->
      Fmt.pf ppf "%s{\"fid\": \"%s\", \"waiters\": %d, \"locks\": %d}"
        (if i = 0 then "" else ", ")
        (json_escape c.hc_fid) c.hc_waiters c.hc_locks)
    s.hs_hot_cells;
  Fmt.pf ppf
    "], \"wal_bytes\": %d, \"dedup_entries\": %d, \"dedup_capacity\": %d, \
     \"degraded_copies\": %d, \"shards_owned\": %d}"
    s.hs_wal_bytes s.hs_dedup_entries s.hs_dedup_capacity s.hs_degraded_copies
    s.hs_shards_owned

let pp_poll_json ppf = function
  | Healthy s -> pp_site_json ppf s
  | Unreachable u ->
    Fmt.pf ppf "{\"site\": %d, \"reachable\": false}" u.u_site

let pp_site ppf s =
  Fmt.pf ppf
    "site%-2d in-doubt %d (max age %d us)  txns %d  locks %d held / %d \
     waiting in %d tables  wal %d B  dedup %d/%d  degraded %d  shards %d"
    s.hs_site s.hs_in_doubt s.hs_in_doubt_max_age_us s.hs_active_txns
    s.hs_locks_held s.hs_lock_waiters s.hs_lock_tables s.hs_wal_bytes
    s.hs_dedup_entries s.hs_dedup_capacity s.hs_degraded_copies
    s.hs_shards_owned;
  List.iter
    (fun c ->
      Fmt.pf ppf "@\n       hot %s: %d waiting, %d locks" c.hc_fid
        c.hc_waiters c.hc_locks)
    s.hs_hot_cells

let pp_poll ppf = function
  | Healthy s -> pp_site ppf s
  | Unreachable u -> Fmt.pf ppf "site%-2d UNREACHABLE" u.u_site
