(** The structured per-site health report answered over the
    [Msg.Health_query] kernel endpoint, and the monitor-side view of a
    fan-out poll ({!poll}: a partitioned or crashed site reads as
    [Unreachable] instead of hanging the monitor). *)

type hot_cell = {
  hc_fid : string;  (** printable file id of the contended lock table *)
  hc_waiters : int;  (** current wait-queue depth *)
  hc_locks : int;  (** granted locks on the table *)
}

type site = {
  hs_site : int;
  hs_at_us : int;  (** virtual time the report was built *)
  hs_in_doubt : int;  (** prepared txns this site cannot decide locally *)
  hs_in_doubt_max_age_us : int;  (** age of the oldest, 0 if none *)
  hs_active_txns : int;
  hs_lock_tables : int;
  hs_locks_held : int;
  hs_lock_waiters : int;  (** waiters summed over all local tables *)
  hs_hot_cells : hot_cell list;  (** deepest wait queues first, top 3 *)
  hs_wal_bytes : int;  (** log bytes written by this site's volumes *)
  hs_dedup_entries : int;  (** exactly-once reply-cache occupancy *)
  hs_dedup_capacity : int;
  hs_degraded_copies : int;  (** hosted replica copies missing updates *)
  hs_shards_owned : int;  (** lock-manager roles held (locus_shard) *)
}

type poll = Healthy of site | Unreachable of { u_site : int }

val poll_site : poll -> int

val pp_site : site Fmt.t
val pp_poll : poll Fmt.t

val pp_site_json : site Fmt.t
(** One JSON object (no trailing newline); schema checked in CI. *)

val pp_poll_json : poll Fmt.t

val json_escape : string -> string
