(** One named windowed time series: a bounded ring of per-window values
    (counter deltas, gauge levels, or derived histogram quantiles),
    newest pushed at each window close by the {!Sampler}. *)

type point = {
  p_start_us : int;  (** window open, virtual µs *)
  p_end_us : int;  (** window close, virtual µs *)
  p_value : int;
}

type t

val create : ?keep:int -> string -> t
(** [keep] bounds the retained windows (default 64, oldest dropped). *)

val name : t -> string
val keep : t -> int

val pushed : t -> int
(** Total points ever pushed (retained or not). *)

val push : t -> start_us:int -> end_us:int -> int -> unit
val points : t -> point list
(** Retained points, oldest first. *)

val last : t -> point option
val peak : t -> int
(** Maximum retained value (0 when empty). *)

val total : t -> int
(** Sum of retained values. *)

val spark : t -> string
(** UTF-8 sparkline over the retained window values, oldest left. *)

val pp_json : t Fmt.t
(** One JSON object: name, ring bound, lifetime push count, retained
    points. *)

val pp_list_json :
  window_us:int -> windows:int -> Format.formatter -> (string * t) list -> unit
(** The time-series export document ([locusctl health --series-out], the
    e20 bench artifact): sampler geometry plus every series, schema
    checked in CI. *)
