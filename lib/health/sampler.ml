type source =
  | Counter of (unit -> int)
  | Gauge of (unit -> int)
  | Hist_p99 of (unit -> Stats.Hist.snap)

(* Per-source sampling state: counters and histograms keep the previous
   snapshot so each window records only its own delta. *)
type tracked = {
  tk_series : Series.t;
  tk_source : source;
  mutable tk_prev_count : int;
  mutable tk_prev_snap : Stats.Hist.snap;
}

type t = {
  sp_window_us : int;
  sp_keep : int;
  mutable sp_tracked : tracked list;  (* registration order, reversed *)
  mutable sp_windows : int;
  mutable sp_last_tick_us : int;
}

let create ?(keep = 64) ~window_us () =
  if window_us <= 0 then invalid_arg "Sampler.create: window_us must be > 0";
  {
    sp_window_us = window_us;
    sp_keep = keep;
    sp_tracked = [];
    sp_windows = 0;
    sp_last_tick_us = 0;
  }

let window_us t = t.sp_window_us
let windows t = t.sp_windows

let register t name source =
  if
    List.exists
      (fun tk -> Series.name tk.tk_series = name)
      t.sp_tracked
  then invalid_arg ("Sampler.register: duplicate series " ^ name);
  let tk =
    {
      tk_series = Series.create ~keep:t.sp_keep name;
      tk_source = source;
      (* Prime counter baselines at registration so the first window
         reports the delta since sampling began, not since boot. *)
      tk_prev_count = (match source with Counter f -> f () | _ -> 0);
      tk_prev_snap =
        (match source with
        | Hist_p99 f -> f ()
        | _ -> Stats.Hist.empty_snap);
    }
  in
  t.sp_tracked <- tk :: t.sp_tracked

let tick t ~now_us =
  let start_us = t.sp_last_tick_us in
  List.iter
    (fun tk ->
      let v =
        match tk.tk_source with
        | Counter f ->
          let cur = f () in
          let d = cur - tk.tk_prev_count in
          tk.tk_prev_count <- cur;
          d
        | Gauge f -> f ()
        | Hist_p99 f ->
          let cur = f () in
          let window = Stats.Hist.diff cur tk.tk_prev_snap in
          tk.tk_prev_snap <- cur;
          Stats.Hist.snap_quantile window 99
      in
      Series.push tk.tk_series ~start_us ~end_us:now_us v)
    t.sp_tracked;
  t.sp_windows <- t.sp_windows + 1;
  t.sp_last_tick_us <- now_us

let series t =
  List.rev_map (fun tk -> (Series.name tk.tk_series, tk.tk_series)) t.sp_tracked
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find t name =
  List.find_map
    (fun tk ->
      if Series.name tk.tk_series = name then Some tk.tk_series else None)
    t.sp_tracked

let last_value t name =
  match find t name with
  | None -> None
  | Some s -> Option.map (fun p -> p.Series.p_value) (Series.last s)
