type point = { p_start_us : int; p_end_us : int; p_value : int }

(* Newest-first list bounded to [keep] points: push is O(1) amortized via
   a length counter, and the window count stays small (default 64), so a
   long run holds a sliding view instead of growing without bound. *)
type t = {
  s_name : string;
  s_keep : int;
  mutable s_points : point list;  (* newest first *)
  mutable s_len : int;
  mutable s_pushed : int;
}

let create ?(keep = 64) name =
  if keep <= 0 then invalid_arg "Series.create: keep must be > 0";
  { s_name = name; s_keep = keep; s_points = []; s_len = 0; s_pushed = 0 }

let name t = t.s_name
let keep t = t.s_keep
let pushed t = t.s_pushed

let truncate t =
  if t.s_len > t.s_keep then begin
    (* Drop the oldest (tail) points; rare, so the rebuild is fine. *)
    t.s_points <-
      List.filteri (fun i _ -> i < t.s_keep) t.s_points;
    t.s_len <- t.s_keep
  end

let push t ~start_us ~end_us v =
  t.s_points <-
    { p_start_us = start_us; p_end_us = end_us; p_value = v } :: t.s_points;
  t.s_len <- t.s_len + 1;
  t.s_pushed <- t.s_pushed + 1;
  truncate t

let points t = List.rev t.s_points
let last t = match t.s_points with [] -> None | p :: _ -> Some p

let peak t =
  List.fold_left (fun acc p -> max acc p.p_value) 0 t.s_points

let total t = List.fold_left (fun acc p -> acc + p.p_value) 0 t.s_points

(* Compact spark rendering for `locusctl top`: one glyph per retained
   window, oldest left, scaled against the series peak. *)
let spark t =
  let glyphs = [| " "; "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83";
                  "\xe2\x96\x84"; "\xe2\x96\x85"; "\xe2\x96\x86";
                  "\xe2\x96\x87"; "\xe2\x96\x88" |] in
  let hi = peak t in
  let b = Buffer.create (t.s_len * 3) in
  List.iter
    (fun p ->
      let i =
        if hi = 0 then 0
        else if p.p_value <= 0 then 0
        else 1 + (p.p_value * (Array.length glyphs - 2) / hi)
      in
      Buffer.add_string b glyphs.(min i (Array.length glyphs - 1)))
    (points t);
  Buffer.contents b

let pp_point_json ppf p =
  Fmt.pf ppf "{\"start_us\": %d, \"end_us\": %d, \"value\": %d}" p.p_start_us
    p.p_end_us p.p_value

let pp_json ppf t =
  (* Series names are code-chosen identifiers, so OCaml string escaping
     is JSON-compatible here. *)
  Fmt.pf ppf "{\"name\": %S, \"keep\": %d, \"pushed\": %d, \"points\": [%a]}"
    t.s_name t.s_keep t.s_pushed
    (Fmt.list ~sep:(Fmt.any ", ") pp_point_json)
    (points t)

let pp_list_json ~window_us ~windows ppf series =
  Fmt.pf ppf "{@[<v 1>@,\"window_us\": %d,@,\"windows\": %d,@,\"series\": [%a]@]@,}@."
    window_us windows
    (Fmt.list ~sep:(Fmt.any ",@,") (fun ppf (_, s) -> pp_json ppf s))
    series
