(* CI liveness inversion for the watchdog (same pattern as lib/net's
   [break_dedup] and lib/check's break_* family): with [break_health] set
   the rules module silently skips evaluation, so the explorer's
   alarm-liveness oracle must fail — proving the oracle actually depends
   on the alarms being raised. *)
let break_health = ref false
