(** The windowed sampler behind the live health plane: a set of named
    {!Series} fed from pull closures at every window close.

    The kernel drives {!tick} from a self-rescheduling engine-scheduled
    closure (never a fiber — a looping fiber would keep the event queue
    alive forever), so sampling consumes no virtual time, draws no
    randomness, and leaves health-off runs bit-for-bit identical. *)

type source =
  | Counter of (unit -> int)
      (** cumulative reading; the series records per-window deltas,
          primed at registration time *)
  | Gauge of (unit -> int)  (** instantaneous level at window close *)
  | Hist_p99 of (unit -> Stats.Hist.snap)
      (** histogram snapshot; the series records the p99 of just the
          recordings that landed inside each window (interval merge) *)

type t

val create : ?keep:int -> window_us:int -> unit -> t
val window_us : t -> int

val windows : t -> int
(** Closed windows so far. *)

val register : t -> string -> source -> unit
(** Add a named series. Raises [Invalid_argument] on duplicates. *)

val tick : t -> now_us:int -> unit
(** Close the window ending at [now_us]: sample every source and push
    one point per series. *)

val series : t -> (string * Series.t) list
(** All series, sorted by name. *)

val find : t -> string -> Series.t option
val last_value : t -> string -> int option
(** The most recent window's value for the named series. *)
