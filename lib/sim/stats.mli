(** Named counters, latency samples, and bounded histograms gathered
    during a simulation run.

    The benchmark harness reads these to reproduce the paper's tables:
    disk-I/O counts drive Figure 5, and latency samples drive Figure 6 and
    the §6.2 locking measurements. Hot paths that would otherwise grow an
    unbounded [sample] series record into log-bucketed {!Hist} histograms
    instead (fixed memory, O(1) insert). *)

(** Bounded log2-bucketed histogram: bucket 0 holds the value 0, bucket
    [i >= 1] holds values in [[2^(i-1), 2^i)]. *)
module Hist : sig
  type t

  val create : unit -> t
  val add : t -> int -> unit
  (** Record one non-negative value (negatives are clamped to 0). *)

  val count : t -> int
  val total : t -> int
  val min_value : t -> int
  val max_value : t -> int
  val mean : t -> float

  val buckets : t -> (int * int * int) list
  (** Non-empty buckets as [(lo, hi_exclusive, count)], ascending. *)

  val quantile : t -> int -> int
  (** [quantile t p] estimates percentile [p] (nearest-rank over buckets):
      the inclusive upper edge of the bucket where the cumulative count
      reaches the rank, clamped to the observed maximum. 0 when empty. *)

  val quantile_permille : t -> int -> int
  (** [quantile_permille t pm] is {!quantile} at per-mille resolution
      ([pm] in 0..1000), e.g. [quantile_permille t 999] for p999. *)

  val pp : t Fmt.t

  (** {2 Interval snapshots}

      A sampler copies the histogram at each window edge and diffs
      consecutive copies to get the distribution of just that window. *)

  type snap

  val empty_snap : snap
  val snapshot : t -> snap
  val diff : snap -> snap -> snap
  (** [diff cur prev] is the per-bucket difference (recordings made after
      [prev] was taken and before [cur]); negative drift clamps to 0. *)

  val snap_count : snap -> int
  val snap_total : snap -> int
  val snap_mean : snap -> float

  val snap_quantile : snap -> int -> int
  (** Nearest-rank percentile over a snapshot's buckets, clamped to the
      source histogram's lifetime maximum. 0 when the interval is empty. *)
end

type t

val create : unit -> t

(** {1 Counters} *)

val incr : t -> string -> unit
val add : t -> string -> int -> unit
val get : t -> string -> int
(** [get t name] is the counter value, 0 if never touched. *)

val counter : t -> string -> int ref
(** [counter t name] interns [name] and returns the live cell behind it.
    Hot paths (the engine's [consume], the health sampler's per-window
    sources) hold the ref and bump it directly instead of paying a string
    hash + table probe per increment. The ref stays valid for the life of
    [t]; {!reset} and {!reset_all} zero it in place. *)

val reset : t -> string -> unit
val reset_all : t -> unit

val counters : t -> (string * int) list
(** All counters, sorted by name. Sorts on every call — an export-time
    operation (JSON / table rendering), never to be called per event or
    per sampler tick. *)

(** {1 Latency / value samples} *)

val sample : t -> string -> int -> unit
(** Record one sample (e.g. a latency in µs) under [name]. Unbounded —
    prefer {!hist} on hot paths. *)

val samples : t -> string -> int list
(** Samples in recording order; [] if none. *)

(** {1 Histograms} *)

val hist : t -> string -> int -> unit
(** Record one value into the named bounded histogram. *)

val hist_handle : t -> string -> Hist.t
(** Interned histogram handle, the {!counter} analogue: record through
    the returned histogram directly on hot paths. *)

val histogram : t -> string -> Hist.t option
val histograms : t -> (string * Hist.t) list
(** All histograms, sorted by name. Export-time only, like {!counters} —
    keep it off per-tick paths. *)

module Summary : sig
  type t = {
    n : int;
    mean : float;
    min : int;
    max : int;
    p50 : int;
    p95 : int;
    p99 : int;
    p999 : int;  (** per-mille nearest rank — tail-of-tail for alarm rules *)
  }

  val pp : t Fmt.t
end

val summary : t -> string -> Summary.t option
(** Nearest-rank quantiles over a recorded sample series. *)

val pp : t Fmt.t
(** Render all counters, sample summaries and histograms, for debugging. *)
