module Hist = struct
  (* Power-of-two buckets: bucket 0 holds the value 0, bucket [i >= 1]
     holds values in [2^(i-1), 2^i). 63 buckets cover the whole
     non-negative [int] range, so memory is bounded no matter how many
     values are recorded — unlike the unbounded [sample] series. *)
  let nbuckets = 63

  type t = {
    buckets : int array;
    mutable count : int;
    mutable total : int;
    mutable vmin : int;
    mutable vmax : int;
  }

  let create () =
    { buckets = Array.make nbuckets 0; count = 0; total = 0; vmin = max_int; vmax = 0 }

  let index v =
    if v <= 0 then 0
    else begin
      (* number of significant bits of v, i.e. floor(log2 v) + 1 *)
      let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
      min (nbuckets - 1) (bits 0 v)
    end

  let bucket_lo i = if i = 0 then 0 else 1 lsl (i - 1)
  let bucket_hi i = 1 lsl i

  let add t v =
    let v = max 0 v in
    t.buckets.(index v) <- t.buckets.(index v) + 1;
    t.count <- t.count + 1;
    t.total <- t.total + v;
    if v < t.vmin then t.vmin <- v;
    if v > t.vmax then t.vmax <- v

  let count t = t.count
  let total t = t.total
  let min_value t = if t.count = 0 then 0 else t.vmin
  let max_value t = t.vmax
  let mean t = if t.count = 0 then 0. else float_of_int t.total /. float_of_int t.count

  let buckets t =
    let out = ref [] in
    for i = nbuckets - 1 downto 0 do
      if t.buckets.(i) > 0 then
        out := (bucket_lo i, bucket_hi i, t.buckets.(i)) :: !out
    done;
    !out

  (* Nearest-rank quantile over the buckets: the estimate for percentile
     [p] is the upper edge (inclusive) of the bucket where the cumulative
     count reaches ceil(p*n/100), clamped to the observed maximum. *)
  let quantile t p =
    if t.count = 0 then 0
    else begin
      let rank = max 1 ((p * t.count + 99) / 100) in
      let rec walk i cum =
        if i >= nbuckets then t.vmax
        else
          let cum = cum + t.buckets.(i) in
          if cum >= rank then min (bucket_hi i - 1) t.vmax else walk (i + 1) cum
      in
      walk 0 0
    end

  (* Per-mille variant for tail-of-tail thresholds (p999). *)
  let quantile_permille t pm =
    if t.count = 0 then 0
    else begin
      let rank = max 1 ((pm * t.count + 999) / 1000) in
      let rec walk i cum =
        if i >= nbuckets then t.vmax
        else
          let cum = cum + t.buckets.(i) in
          if cum >= rank then min (bucket_hi i - 1) t.vmax else walk (i + 1) cum
      in
      walk 0 0
    end

  let pp ppf t =
    Fmt.pf ppf "n=%d mean=%.1f min=%d p50=%d p95=%d p99=%d max=%d" t.count
      (mean t) (min_value t) (quantile t 50) (quantile t 95) (quantile t 99)
      t.vmax

  (* Immutable snapshots support interval merges: a sampler copies the
     bucket array at each window edge and diffs consecutive copies to get
     the histogram of just that window's recordings. *)
  type snap = { s_buckets : int array; s_count : int; s_total : int; s_vmax : int }

  let empty_snap =
    { s_buckets = Array.make nbuckets 0; s_count = 0; s_total = 0; s_vmax = 0 }

  let snapshot t =
    { s_buckets = Array.copy t.buckets; s_count = t.count; s_total = t.total;
      s_vmax = t.vmax }

  let diff cur prev =
    let b = Array.make nbuckets 0 in
    for i = 0 to nbuckets - 1 do
      b.(i) <- max 0 (cur.s_buckets.(i) - prev.s_buckets.(i))
    done;
    { s_buckets = b;
      s_count = max 0 (cur.s_count - prev.s_count);
      s_total = max 0 (cur.s_total - prev.s_total);
      s_vmax = cur.s_vmax }

  let snap_count s = s.s_count
  let snap_total s = s.s_total
  let snap_mean s =
    if s.s_count = 0 then 0. else float_of_int s.s_total /. float_of_int s.s_count

  (* Nearest-rank over the snapshot's buckets; the upper clamp is the
     source histogram's lifetime max, an upper bound for the interval. *)
  let snap_quantile s p =
    if s.s_count = 0 then 0
    else begin
      let rank = max 1 ((p * s.s_count + 99) / 100) in
      let rec walk i cum =
        if i >= nbuckets then s.s_vmax
        else
          let cum = cum + s.s_buckets.(i) in
          if cum >= rank then min (bucket_hi i - 1) s.s_vmax else walk (i + 1) cum
      in
      walk 0 0
    end
end

type t = {
  counters : (string, int ref) Hashtbl.t;
  series : (string, int list ref) Hashtbl.t;
  hists : (string, Hist.t) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 32;
    series = Hashtbl.create 32;
    hists = Hashtbl.create 32;
  }

let counter_ref t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t.counters name r;
    r

let counter = counter_ref
let incr t name = incr (counter_ref t name)

let add t name n =
  let r = counter_ref t name in
  r := !r + n
let get t name = match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0
let reset t name = match Hashtbl.find_opt t.counters name with Some r -> r := 0 | None -> ()

let reset_all t =
  Hashtbl.iter (fun _ r -> r := 0) t.counters;
  Hashtbl.reset t.series;
  Hashtbl.reset t.hists

let counters t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let sample t name v =
  match Hashtbl.find_opt t.series name with
  | Some r -> r := v :: !r
  | None -> Hashtbl.add t.series name (ref [ v ])

let samples t name =
  match Hashtbl.find_opt t.series name with Some r -> List.rev !r | None -> []

let hist_ref t name =
  match Hashtbl.find_opt t.hists name with
  | Some h -> h
  | None ->
    let h = Hist.create () in
    Hashtbl.add t.hists name h;
    h

let hist_handle = hist_ref
let hist t name v = Hist.add (hist_ref t name) v
let histogram t name = Hashtbl.find_opt t.hists name

let histograms t =
  Hashtbl.fold (fun name h acc -> (name, h) :: acc) t.hists []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

module Summary = struct
  type t = {
    n : int;
    mean : float;
    min : int;
    max : int;
    p50 : int;
    p95 : int;
    p99 : int;
    p999 : int;
  }

  let pp ppf s =
    Fmt.pf ppf "n=%d mean=%.1f min=%d p50=%d p95=%d p99=%d p999=%d max=%d" s.n
      s.mean s.min s.p50 s.p95 s.p99 s.p999 s.max
end

let summary t name =
  match samples t name with
  | [] -> None
  | xs ->
    let a = Array.of_list xs in
    Array.sort Int.compare a;
    let n = Array.length a in
    (* Nearest-rank: the smallest element with at least ceil(p*n/100) of
       the samples at or below it. (The old [p*n/100] index rounded the
       rank up by one: p50 of [1;2] answered 2.) *)
    let pct p = a.(max 0 (((p * n + 99) / 100) - 1)) in
    (* Per-mille nearest rank for p999, same rounding discipline. *)
    let pml pm = a.(max 0 (((pm * n + 999) / 1000) - 1)) in
    let total = Array.fold_left ( + ) 0 a in
    Some
      Summary.
        {
          n;
          mean = float_of_int total /. float_of_int n;
          min = a.(0);
          max = a.(n - 1);
          p50 = pct 50;
          p95 = pct 95;
          p99 = pct 99;
          p999 = pml 999;
        }

let pp ppf t =
  List.iter (fun (k, v) -> Fmt.pf ppf "%-40s %d@." k v) (counters t);
  let names = Hashtbl.fold (fun k _ acc -> k :: acc) t.series [] in
  List.iter
    (fun k ->
      match summary t k with
      | Some s -> Fmt.pf ppf "%-40s %a@." k Summary.pp s
      | None -> ())
    (List.sort String.compare names);
  List.iter (fun (k, h) -> Fmt.pf ppf "%-40s %a@." k Hist.pp h) (histograms t)
