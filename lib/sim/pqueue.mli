(** Mutable binary min-heap keyed by [(time, seq)].

    The sequence number makes event ordering a total order, which in turn
    makes the whole simulation deterministic: two events scheduled for the
    same instant fire in scheduling order.

    The heap is laid out as parallel arrays (times / seqs / values), so a
    [push]/[pop_into] cycle performs no allocation — this is the
    simulator's hot path and the open-loop traffic engine pushes it to
    millions of events per second. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> time:int -> seq:int -> 'a -> unit

type 'a slot = { mutable s_time : int; mutable s_seq : int; mutable s_value : 'a }
(** Caller-owned destination for {!pop_into}: reusing one slot across a
    dispatch loop removes the per-event [Some (t, s, v)] allocation of
    {!pop}. *)

val make_slot : 'a -> 'a slot
(** [make_slot dummy] is a fresh slot; [dummy] fills it until the first
    successful {!pop_into}. *)

val pop_into : 'a t -> 'a slot -> bool
(** Remove the minimum [(time, seq, value)] into [slot]. [false] (slot
    untouched) when the heap is empty. *)

val pop : 'a t -> (int * int * 'a) option
(** Remove and return the minimum [(time, seq, value)]. Allocating
    convenience form of {!pop_into}. *)

val min_time : 'a t -> int
(** Time of the minimum element, [max_int] when empty. Allocation-free
    form of {!peek_time} for the dispatch loop. *)

val peek_time : 'a t -> int option
(** Time of the minimum element, without removing it. *)
