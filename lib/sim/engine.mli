(** Deterministic discrete-event simulation engine with lightweight
    processes.

    The whole "distributed system" runs single-threaded over a virtual
    clock. Simulated processes ({e fibers}) are implemented with OCaml 5
    effect handlers: a fiber runs atomically until it suspends by sleeping
    or awaiting an {!Ivar.t}. Events scheduled for the same instant fire in
    scheduling order, so a run is a pure function of the initial seed and
    the program.

    This substitutes for the real Locus kernel's process and interrupt
    machinery (see DESIGN.md §2): it gives us repeatable failure injection,
    virtual-time latencies, and exact operation counts. *)

type time = int
(** Virtual time in microseconds. *)

type t

exception Killed
(** Raised inside a fiber when its site crashes or it is killed. Fibers
    must not swallow it: catch-alls should re-raise. *)

module Fiber : sig
  type handle

  val id : handle -> int
  val site : handle -> int
  val name : handle -> string
  val alive : handle -> bool
end

val create : ?seed:int -> ?costs:Costs.t -> unit -> t
val now : t -> time

val current_fiber : t -> Fiber.handle option
(** The fiber currently executing, if control is inside one. Observability
    layers use this to key ambient per-fiber state (e.g. span stacks)
    without threading a context argument through every call. *)

val stats : t -> Stats.t

val trace : t -> Trace.t
(** The engine's trace ring (disabled until {!Trace.enable}). *)

val costs : t -> Costs.t
val prng : t -> Prng.t

val schedule : ?delay:time -> t -> (unit -> unit) -> unit
(** [schedule ?delay t f] runs [f] at [now t + delay] (default 0). [f] runs
    outside any fiber and must not perform fiber effects. *)

val spawn : ?name:string -> ?site:int -> t -> (unit -> unit) -> Fiber.handle
(** Create a fiber that starts at the current instant. [site] tags the
    fiber for {!kill_site} (default [-1] = not attached to a site). *)

val kill : t -> Fiber.handle -> unit
(** Mark the fiber dead. Its next resumption unwinds with {!Killed}. *)

val kill_site : t -> int -> unit
(** Kill every live fiber tagged with the given site (site crash). *)

val set_site : t -> Fiber.handle -> int -> unit
(** Retag a fiber (process migration moves a process to another site, so a
    crash of the new site must kill it and a crash of the old must not). *)

val live_fibers : t -> int

val pending_events : t -> int
(** Scheduled events not yet fired, including cancelled ones still queued
    (a cancelled event is skipped without advancing the clock when
    popped). Tests use this to prove abandoned timers — e.g. a batch
    window's {!await_timeout} whose ivar filled first — do not leak. *)

val events_fired : t -> int
(** Events dispatched over the engine's lifetime (cancelled events do not
    count). [bench/exp_load.ml] divides this by elapsed wall-clock time to
    report host-side events/s, which the CI engine-speed gate floors. *)

val break_load : bool ref
(** Self-test hook for the CI wall-clock gate: when set (via
    [LOCUS_BREAK_LOAD=1] in the bench harness), the dispatch loop burns
    O(pending-events) host CPU per event. Virtual-time results are
    unchanged; only events/s collapses, which the gate must detect. *)

(** {1 Suspension points (must be called from inside a fiber)} *)

val sleep : time -> unit
(** Suspend the current fiber for a virtual duration. *)

val yield : unit -> unit
(** [sleep 0]: lets other events scheduled for this instant run. *)

module Ivar : sig
  (** Write-once synchronization cells, the only inter-fiber communication
      primitive. RPC replies, lock grants and process exits are all ivar
      fills. *)

  type 'a t

  val create : unit -> 'a t
  val is_full : 'a t -> bool
  val peek : 'a t -> 'a option
end

val fill : t -> 'a Ivar.t -> 'a -> unit
(** Fill the cell and wake all waiters at the current instant. Raises
    [Invalid_argument] if already full. *)

val try_fill : t -> 'a Ivar.t -> 'a -> bool
(** Like {!fill} but returns [false] instead of raising when full. *)

val await : 'a Ivar.t -> 'a
(** Suspend until the ivar is filled; returns immediately if it already
    is. *)

val await_timeout : 'a Ivar.t -> timeout:time -> 'a option
(** [await_timeout iv ~timeout] is [Some v] if the ivar fills within the
    virtual duration, [None] otherwise. *)

val consume : t -> instr:int -> unit
(** Charge CPU time for [instr] instructions to the current fiber: sleeps
    for the equivalent virtual time per the cost model and bumps the
    ["cpu.instr"] counter (and ["cpu.instr.site<N>"] for site-tagged
    fibers, which is how per-site service times are measured). *)

(** {1 Running} *)

val run : ?max_events:int -> ?until:time -> t -> unit
(** Drain the event queue. Stops when the queue is empty, [until] (if
    given) is passed, or [max_events] (default 50 million) events have
    fired — the latter guards against accidental virtual livelock. An
    exception escaping a fiber aborts the run and is re-raised here. *)

val run_fn : ?seed:int -> ?costs:Costs.t -> (t -> unit) -> t
(** [run_fn f] creates an engine, calls [f] (which typically spawns
    fibers), runs to completion and returns the engine for inspection. *)
