(** Structured execution tracing.

    A bounded ring of [(virtual time, category, site, message)] events,
    off by default and cheap when disabled. The kernel emits events at
    protocol points (message handling, lock grants, commit steps, crashes,
    recovery); tests and `locusctl --trace` read them back. Because the
    simulation is deterministic, a trace is a reproducible artifact: the
    same seed always yields the same trace. *)

type category = Net | Disk | Lock | Txn | Proc | Fs | Recovery | User

val pp_category : category Fmt.t
val category_of_string : string -> category option

type event = { at : int; cat : category; site : int; text : string }

type t

val create : ?capacity:int -> unit -> t
(** Ring capacity defaults to 4096 events. Tracing starts disabled. *)

val enable : ?categories:category list -> t -> unit
(** Enable tracing, optionally restricted to the given categories. *)

val disable : t -> unit
val enabled : t -> category -> bool

val emit : t -> at:int -> cat:category -> site:int -> string -> unit
(** Record an event (dropped when the category is disabled). The string
    should be built lazily by callers: guard with {!enabled} when the
    message is expensive to render. *)

val emitf :
  t -> at:int -> cat:category -> site:int -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatting variant; the format is only rendered when enabled. *)

val events : t -> event list
(** Oldest first; at most [capacity] most recent events. *)

val dropped : t -> int
(** How many events were overwritten after the ring wrapped — a non-zero
    value means {!events} is a truncated view, not the full history. *)

val clear : t -> unit
(** Empty the ring and reset the dropped count. *)

val pp_event : event Fmt.t

val dump : t Fmt.t
(** Print all retained events, preceded by a truncation banner when any
    events were dropped. *)
