(* Binary min-heap keyed by [(time, seq)], laid out as three parallel
   arrays. The structure-of-arrays layout exists for the simulator's
   dispatch loop: a [push]/[pop] cycle allocates nothing (the old
   single-array-of-records layout allocated one 3-field [entry] per push
   and a [Some (t, s, v)] per pop, which at millions of events per
   second was most of the engine's minor-GC traffic). Values popped off
   the heap are read out through a caller-owned reusable {!slot}. *)

type 'a t = {
  mutable times : int array;
  mutable seqs : int array;
  mutable vals : 'a array;
  mutable size : int;
}

type 'a slot = { mutable s_time : int; mutable s_seq : int; mutable s_value : 'a }

let make_slot v = { s_time = 0; s_seq = 0; s_value = v }

let create () = { times = [||]; seqs = [||]; vals = [||]; size = 0 }
let is_empty t = t.size = 0
let length t = t.size

(* Does slot [i] order strictly before slot [j]? *)
let less t i j =
  t.times.(i) < t.times.(j)
  || (t.times.(i) = t.times.(j) && t.seqs.(i) < t.seqs.(j))

let swap t i j =
  let ti = t.times.(i) in
  t.times.(i) <- t.times.(j);
  t.times.(j) <- ti;
  let si = t.seqs.(i) in
  t.seqs.(i) <- t.seqs.(j);
  t.seqs.(j) <- si;
  let vi = t.vals.(i) in
  t.vals.(i) <- t.vals.(j);
  t.vals.(j) <- vi

(* Grow before writing slot [t.size]. The filler for the fresh value
   array is the value about to be pushed, so growth never has to read an
   existing slot — the invariant holds unconditionally, including on the
   very first push and after a drain back to empty (the old code read
   [arr.(0)] as filler and was correct only because a special case kept
   it from running on an empty heap). *)
let ensure_capacity t filler =
  let cap = Array.length t.vals in
  if t.size = cap then begin
    let ncap = max 16 (2 * cap) in
    let ntimes = Array.make ncap 0 and nseqs = Array.make ncap 0 in
    Array.blit t.times 0 ntimes 0 t.size;
    Array.blit t.seqs 0 nseqs 0 t.size;
    let nvals = Array.make ncap filler in
    Array.blit t.vals 0 nvals 0 t.size;
    t.times <- ntimes;
    t.seqs <- nseqs;
    t.vals <- nvals
  end

let push t ~time ~seq value =
  ensure_capacity t value;
  let i = ref t.size in
  t.times.(!i) <- time;
  t.seqs.(!i) <- seq;
  t.vals.(!i) <- value;
  t.size <- t.size + 1;
  (* Sift up. *)
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    less t !i parent
  do
    let parent = (!i - 1) / 2 in
    swap t !i parent;
    i := parent
  done

let sift_down t =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.size && less t l !smallest then smallest := l;
    if r < t.size && less t r !smallest then smallest := r;
    if !smallest = !i then continue := false
    else begin
      swap t !i !smallest;
      i := !smallest
    end
  done

let pop_into t slot =
  if t.size = 0 then false
  else begin
    slot.s_time <- t.times.(0);
    slot.s_seq <- t.seqs.(0);
    slot.s_value <- t.vals.(0);
    let n = t.size - 1 in
    t.size <- n;
    if n > 0 then begin
      t.times.(0) <- t.times.(n);
      t.seqs.(0) <- t.seqs.(n);
      t.vals.(0) <- t.vals.(n);
      sift_down t
    end;
    true
  end

let pop t =
  if t.size = 0 then None
  else begin
    let time = t.times.(0) and seq = t.seqs.(0) and v = t.vals.(0) in
    let n = t.size - 1 in
    t.size <- n;
    if n > 0 then begin
      t.times.(0) <- t.times.(n);
      t.seqs.(0) <- t.seqs.(n);
      t.vals.(0) <- t.vals.(n);
      sift_down t
    end;
    Some (time, seq, v)
  end

let min_time t = if t.size = 0 then max_int else t.times.(0)
let peek_time t = if t.size = 0 then None else Some t.times.(0)
