type time = int

exception Killed

type fiber = { fid : int; mutable fsite : int; fname : string; mutable alive : bool }

module Fiber = struct
  type handle = fiber

  let id f = f.fid
  let site f = f.fsite
  let name f = f.fname
  let alive f = f.alive
end

type event = { mutable cancelled : bool; ef : unit -> unit }

type t = {
  mutable now : time;
  mutable seq : int;
  events : event Pqueue.t;
  live : (int, fiber) Hashtbl.t;
  mutable next_fid : int;
  stats : Stats.t;
  costs : Costs.t;
  prng : Prng.t;
  trace : Trace.t;
  mutable current : fiber option;
  mutable failure : (exn * Printexc.raw_backtrace) option;
}

module Ivar = struct
  type 'a state = Empty of ('a -> unit) list | Full of 'a
  type 'a t = { mutable state : 'a state }

  let create () = { state = Empty [] }
  let is_full iv = match iv.state with Full _ -> true | Empty _ -> false
  let peek iv = match iv.state with Full v -> Some v | Empty _ -> None
end

type _ Effect.t +=
  | Sleep_eff : time -> unit Effect.t
  | Await_eff : 'a Ivar.t -> 'a Effect.t
  | Await_timeout_eff : 'a Ivar.t * time -> 'a option Effect.t

let create ?(seed = 42) ?(costs = Costs.default) () =
  {
    now = 0;
    seq = 0;
    events = Pqueue.create ();
    live = Hashtbl.create 64;
    next_fid = 0;
    stats = Stats.create ();
    costs;
    prng = Prng.create ~seed;
    trace = Trace.create ();
    current = None;
    failure = None;
  }

let now t = t.now
let current_fiber t = t.current
let stats t = t.stats
let trace t = t.trace
let costs t = t.costs
let prng t = t.prng
let live_fibers t = Hashtbl.length t.live
let pending_events t = Pqueue.length t.events

let schedule ?(delay = 0) t f =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  t.seq <- t.seq + 1;
  Pqueue.push t.events ~time:(t.now + delay) ~seq:t.seq { cancelled = false; ef = f }

(* Like [schedule], returning a canceller: a cancelled event is skipped
   without advancing the clock, so abandoned timers (e.g. an await_timeout
   whose ivar filled first) do not stretch virtual time. *)
let schedule_cancellable ?(delay = 0) t f =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  t.seq <- t.seq + 1;
  let e = { cancelled = false; ef = f } in
  Pqueue.push t.events ~time:(t.now + delay) ~seq:t.seq e;
  fun () -> e.cancelled <- true

let record_failure t e =
  if t.failure = None then t.failure <- Some (e, Printexc.get_raw_backtrace ())

let finish t fiber =
  fiber.alive <- false;
  Hashtbl.remove t.live fiber.fid

(* Resume a suspended fiber continuation after [delay], honoring kill: a
   dead fiber's continuation is discontinued with [Killed] so its stack
   unwinds (running any Fun.protect finalizers on the way out). *)
let resume :
    type a. ?delay:time -> t -> fiber -> (a, unit) Effect.Deep.continuation -> a -> unit =
 fun ?delay t fiber k v ->
  schedule ?delay t (fun () ->
      let prev = t.current in
      t.current <- Some fiber;
      (if fiber.alive then Effect.Deep.continue k v
       else Effect.Deep.discontinue k Killed);
      t.current <- prev)

(* A fiber killed while parked is discontinued with [Killed]; if a
   [Fun.protect] finalizer on the unwinding stack then blocks again
   (e.g. a cleanup RPC), the dead fiber is discontinued a second time
   inside the finalizer and [Fun.protect] rewraps the exception as
   [Finally_raised Killed] (possibly nested). That is still a clean
   kill — the abandoned cleanup is exactly what a crash means — so
   unwrap before deciding whether to record a failure. *)
let rec is_kill = function
  | Killed -> true
  | Fun.Finally_raised e -> is_kill e
  | _ -> false

let handler t fiber =
  let open Effect.Deep in
  {
    retc = (fun () -> finish t fiber);
    exnc =
      (fun e ->
        if not (is_kill e) then record_failure t e;
        finish t fiber);
    effc =
      (fun (type b) (eff : b Effect.t) ->
        match eff with
        | Sleep_eff d ->
          Some
            (fun (k : (b, unit) continuation) ->
              resume ~delay:(max 0 d) t fiber k ())
        | Await_eff iv ->
          Some
            (fun (k : (b, unit) continuation) ->
              match iv.Ivar.state with
              | Ivar.Full v -> continue k v
              | Ivar.Empty waiters ->
                let cb v = resume t fiber k v in
                iv.Ivar.state <- Ivar.Empty (cb :: waiters))
        | Await_timeout_eff (iv, timeout) ->
          Some
            (fun (k : (b, unit) continuation) ->
              match iv.Ivar.state with
              | Ivar.Full v -> continue k (Some v)
              | Ivar.Empty waiters ->
                let fired = ref false in
                let cancel_timer = ref (fun () -> ()) in
                let cb v =
                  if not !fired then begin
                    fired := true;
                    !cancel_timer ();
                    resume t fiber k (Some v)
                  end
                in
                iv.Ivar.state <- Ivar.Empty (cb :: waiters);
                cancel_timer :=
                  schedule_cancellable ~delay:(max 0 timeout) t (fun () ->
                      if not !fired then begin
                        fired := true;
                        resume t fiber k None
                      end))
        | _ -> None);
  }

let spawn ?(name = "fiber") ?(site = -1) t fn =
  t.next_fid <- t.next_fid + 1;
  let fiber = { fid = t.next_fid; fsite = site; fname = name; alive = true } in
  Hashtbl.add t.live fiber.fid fiber;
  schedule t (fun () ->
      if fiber.alive then begin
        let prev = t.current in
        t.current <- Some fiber;
        Effect.Deep.match_with fn () (handler t fiber);
        t.current <- prev
      end
      else finish t fiber);
  fiber

let kill t fiber =
  if fiber.alive then begin
    fiber.alive <- false;
    Hashtbl.remove t.live fiber.fid
  end

let set_site _t fiber site = fiber.fsite <- site

let kill_site t site =
  let doomed =
    Hashtbl.fold (fun _ f acc -> if f.fsite = site then f :: acc else acc) t.live []
  in
  List.iter (kill t) doomed

let fill _t iv v =
  match iv.Ivar.state with
  | Ivar.Full _ -> invalid_arg "Engine.fill: ivar already full"
  | Ivar.Empty waiters ->
    iv.Ivar.state <- Ivar.Full v;
    List.iter (fun cb -> cb v) (List.rev waiters)

let try_fill t iv v =
  match iv.Ivar.state with
  | Ivar.Full _ -> false
  | Ivar.Empty _ ->
    fill t iv v;
    true

let sleep d = Effect.perform (Sleep_eff d)
let yield () = sleep 0
let await iv = Effect.perform (Await_eff iv)
let await_timeout iv ~timeout = Effect.perform (Await_timeout_eff (iv, timeout))

let consume t ~instr =
  Stats.add t.stats "cpu.instr" instr;
  (match t.current with
  | Some f when f.fsite >= 0 ->
    Stats.add t.stats (Printf.sprintf "cpu.instr.site%d" f.fsite) instr
  | Some _ | None -> ());
  sleep (Costs.instr_us t.costs instr)

let run ?(max_events = 50_000_000) ?until t =
  let fired = ref 0 in
  let rec loop () =
    match t.failure with
    | Some _ -> ()
    | None -> (
      match Pqueue.peek_time t.events with
      | None -> ()
      | Some time when (match until with Some u -> time > u | None -> false) ->
        t.now <- Option.get until
      | Some _ -> (
        match Pqueue.pop t.events with
        | None -> ()
        | Some (time, _, e) ->
          if e.cancelled then loop ()
          else begin
            t.now <- max t.now time;
            incr fired;
            if !fired > max_events then
              failwith "Engine.run: max_events exceeded (virtual livelock?)";
            e.ef ();
            loop ()
          end))
  in
  loop ();
  match t.failure with
  | Some (e, bt) ->
    t.failure <- None;
    Printexc.raise_with_backtrace e bt
  | None -> ()

let run_fn ?seed ?costs f =
  let t = create ?seed ?costs () in
  f t;
  run t;
  t
