type time = int

exception Killed

type fiber = { fid : int; mutable fsite : int; fname : string; mutable alive : bool }

module Fiber = struct
  type handle = fiber

  let id f = f.fid
  let site f = f.fsite
  let name f = f.fname
  let alive f = f.alive
end

(* One queued event. The dispatch loop used to run closures exclusively
   ([ef : unit -> unit]); resuming a parked fiber then cost three
   allocations per wake-up (the closure capturing fiber/k/v, the event
   record around it, and the heap entry). The variant keeps the common
   cases flat: a plain scheduled call carries just the caller's closure,
   and a fiber resumption is a single block the dispatch loop interprets
   inline. Only cancellable timers still pay for a record (the flag). *)
type ev =
  | Call of (unit -> unit)
  | Cancellable of cancellable
  | Resume : fiber * ('a, unit) Effect.Deep.continuation * 'a -> ev

and cancellable = { mutable cancelled : bool; cf : unit -> unit }

type t = {
  mutable now : time;
  mutable seq : int;
  events : ev Pqueue.t;
  slot : ev Pqueue.slot;  (* reusable pop destination for the dispatch loop *)
  live : (int, fiber) Hashtbl.t;
  mutable next_fid : int;
  mutable fired : int;  (* events dispatched over the engine's lifetime *)
  stats : Stats.t;
  costs : Costs.t;
  prng : Prng.t;
  trace : Trace.t;
  mutable current : fiber option;
  mutable failure : (exn * Printexc.raw_backtrace) option;
  mutable cpu_instr : int ref option;  (* interned "cpu.instr" counter *)
  mutable cpu_site : int ref option array;  (* interned per-site counters *)
}

(* Self-test hook for the CI wall-clock gate (LOCUS_BREAK_LOAD=1 in
   bench/exp_load.ml): burn O(pending-events) work per dispatched event,
   turning the O(log n) loop quadratic. Virtual-time results are
   untouched — only host throughput collapses, which is exactly what the
   events/s floor in scripts/bench_gate.sh must catch. *)
let break_load = ref false

let break_scan t =
  (* The constant keeps the collapse visible even when the pending queue
     is short (open-loop runs hold tens of events, not thousands): the
     wall rate must fall far enough below any sane MIN_WALL_EPS floor
     that the inverted self-test can never squeak through. *)
  let n = 2048 + (256 * Pqueue.length t.events) in
  let s = ref 0 in
  for i = 0 to n - 1 do
    s := !s + Sys.opaque_identity i
  done;
  ignore (Sys.opaque_identity !s)

module Ivar = struct
  type 'a state = Empty of ('a -> unit) list | Full of 'a
  type 'a t = { mutable state : 'a state }

  let create () = { state = Empty [] }
  let is_full iv = match iv.state with Full _ -> true | Empty _ -> false
  let peek iv = match iv.state with Full v -> Some v | Empty _ -> None
end

type _ Effect.t +=
  | Sleep_eff : time -> unit Effect.t
  | Await_eff : 'a Ivar.t -> 'a Effect.t
  | Await_timeout_eff : 'a Ivar.t * time -> 'a option Effect.t

let create ?(seed = 42) ?(costs = Costs.default) () =
  {
    now = 0;
    seq = 0;
    events = Pqueue.create ();
    slot = Pqueue.make_slot (Call ignore);
    live = Hashtbl.create 64;
    next_fid = 0;
    fired = 0;
    stats = Stats.create ();
    costs;
    prng = Prng.create ~seed;
    trace = Trace.create ();
    current = None;
    failure = None;
    cpu_instr = None;
    cpu_site = [||];
  }

let now t = t.now
let current_fiber t = t.current
let stats t = t.stats
let trace t = t.trace
let costs t = t.costs
let prng t = t.prng
let live_fibers t = Hashtbl.length t.live
let pending_events t = Pqueue.length t.events
let events_fired t = t.fired

let push_ev ~delay t ev =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  t.seq <- t.seq + 1;
  Pqueue.push t.events ~time:(t.now + delay) ~seq:t.seq ev

let schedule ?(delay = 0) t f = push_ev ~delay t (Call f)

(* Like [schedule], returning a canceller: a cancelled event is skipped
   without advancing the clock, so abandoned timers (e.g. an await_timeout
   whose ivar filled first) do not stretch virtual time. *)
let schedule_cancellable ?(delay = 0) t f =
  let c = { cancelled = false; cf = f } in
  push_ev ~delay t (Cancellable c);
  fun () -> c.cancelled <- true

let record_failure t e =
  if t.failure = None then t.failure <- Some (e, Printexc.get_raw_backtrace ())

let finish t fiber =
  fiber.alive <- false;
  Hashtbl.remove t.live fiber.fid

(* Resume a suspended fiber continuation after [delay]. The kill check
   and the current-fiber bookkeeping live in the dispatch loop (the
   [Resume] arm of [run]), not in a closure allocated here. *)
let resume :
    type a. ?delay:time -> t -> fiber -> (a, unit) Effect.Deep.continuation -> a -> unit =
 fun ?(delay = 0) t fiber k v -> push_ev ~delay t (Resume (fiber, k, v))

(* A fiber killed while parked is discontinued with [Killed]; if a
   [Fun.protect] finalizer on the unwinding stack then blocks again
   (e.g. a cleanup RPC), the dead fiber is discontinued a second time
   inside the finalizer and [Fun.protect] rewraps the exception as
   [Finally_raised Killed] (possibly nested). That is still a clean
   kill — the abandoned cleanup is exactly what a crash means — so
   unwrap before deciding whether to record a failure. *)
let rec is_kill = function
  | Killed -> true
  | Fun.Finally_raised e -> is_kill e
  | _ -> false

let handler t fiber =
  let open Effect.Deep in
  {
    retc = (fun () -> finish t fiber);
    exnc =
      (fun e ->
        if not (is_kill e) then record_failure t e;
        finish t fiber);
    effc =
      (fun (type b) (eff : b Effect.t) ->
        match eff with
        | Sleep_eff d ->
          Some
            (fun (k : (b, unit) continuation) ->
              resume ~delay:(max 0 d) t fiber k ())
        | Await_eff iv ->
          Some
            (fun (k : (b, unit) continuation) ->
              match iv.Ivar.state with
              | Ivar.Full v -> continue k v
              | Ivar.Empty waiters ->
                let cb v = resume t fiber k v in
                iv.Ivar.state <- Ivar.Empty (cb :: waiters))
        | Await_timeout_eff (iv, timeout) ->
          Some
            (fun (k : (b, unit) continuation) ->
              match iv.Ivar.state with
              | Ivar.Full v -> continue k (Some v)
              | Ivar.Empty waiters ->
                let fired = ref false in
                let cancel_timer = ref (fun () -> ()) in
                let cb v =
                  if not !fired then begin
                    fired := true;
                    !cancel_timer ();
                    resume t fiber k (Some v)
                  end
                in
                iv.Ivar.state <- Ivar.Empty (cb :: waiters);
                cancel_timer :=
                  schedule_cancellable ~delay:(max 0 timeout) t (fun () ->
                      if not !fired then begin
                        fired := true;
                        resume t fiber k None
                      end))
        | _ -> None);
  }

let spawn ?(name = "fiber") ?(site = -1) t fn =
  t.next_fid <- t.next_fid + 1;
  let fiber = { fid = t.next_fid; fsite = site; fname = name; alive = true } in
  Hashtbl.add t.live fiber.fid fiber;
  schedule t (fun () ->
      if fiber.alive then begin
        let prev = t.current in
        t.current <- Some fiber;
        Effect.Deep.match_with fn () (handler t fiber);
        t.current <- prev
      end
      else finish t fiber);
  fiber

let kill t fiber =
  if fiber.alive then begin
    fiber.alive <- false;
    Hashtbl.remove t.live fiber.fid
  end

let set_site _t fiber site = fiber.fsite <- site

let kill_site t site =
  let doomed =
    Hashtbl.fold (fun _ f acc -> if f.fsite = site then f :: acc else acc) t.live []
  in
  List.iter (kill t) doomed

let fill _t iv v =
  match iv.Ivar.state with
  | Ivar.Full _ -> invalid_arg "Engine.fill: ivar already full"
  | Ivar.Empty waiters ->
    iv.Ivar.state <- Ivar.Full v;
    List.iter (fun cb -> cb v) (List.rev waiters)

let try_fill t iv v =
  match iv.Ivar.state with
  | Ivar.Full _ -> false
  | Ivar.Empty _ ->
    fill t iv v;
    true

let sleep d = Effect.perform (Sleep_eff d)
let yield () = sleep 0
let await iv = Effect.perform (Await_eff iv)
let await_timeout iv ~timeout = Effect.perform (Await_timeout_eff (iv, timeout))

(* The "cpu.instr" counters are interned once and bumped through their
   refs: [consume] sits on every syscall, and the old per-call
   [Printf.sprintf "cpu.instr.site%d"] + hash-table probe dominated the
   generator's host-CPU profile. Interning is lazy so a run that never
   charges CPU exports exactly the counters it always did. *)
let cpu_instr_ref t =
  match t.cpu_instr with
  | Some r -> r
  | None ->
    let r = Stats.counter t.stats "cpu.instr" in
    t.cpu_instr <- Some r;
    r

let site_instr_ref t s =
  if s >= Array.length t.cpu_site then begin
    let na = Array.make (max (s + 1) ((2 * Array.length t.cpu_site) + 8)) None in
    Array.blit t.cpu_site 0 na 0 (Array.length t.cpu_site);
    t.cpu_site <- na
  end;
  match t.cpu_site.(s) with
  | Some r -> r
  | None ->
    let r = Stats.counter t.stats (Printf.sprintf "cpu.instr.site%d" s) in
    t.cpu_site.(s) <- Some r;
    r

let consume t ~instr =
  let r = cpu_instr_ref t in
  r := !r + instr;
  (match t.current with
  | Some f when f.fsite >= 0 ->
    let rs = site_instr_ref t f.fsite in
    rs := !rs + instr
  | Some _ | None -> ());
  sleep (Costs.instr_us t.costs instr)

(* The dispatch loop. Invariants the fast path must preserve:
   - events fire in strict (time, seq) order (determinism);
   - a cancelled timer is skipped without advancing the clock or
     counting as fired;
   - [t.now] never moves backwards;
   - the loop allocates nothing per event: [pop_into] reuses [t.slot]
     and the [ev] variants are interpreted in place. *)
let run ?(max_events = 50_000_000) ?until t =
  let fired = ref 0 in
  let slot = t.slot in
  let rec loop () =
    match t.failure with
    | Some _ -> ()
    | None ->
      if not (Pqueue.is_empty t.events) then begin
        let time = Pqueue.min_time t.events in
        match until with
        | Some u when time > u -> t.now <- u
        | _ ->
          ignore (Pqueue.pop_into t.events slot : bool);
          (match slot.s_value with
          | Cancellable c when c.cancelled -> ()
          | ev ->
            t.now <- max t.now slot.s_time;
            incr fired;
            t.fired <- t.fired + 1;
            if !fired > max_events then
              failwith "Engine.run: max_events exceeded (virtual livelock?)";
            if !break_load then break_scan t;
            (match ev with
            | Call f -> f ()
            | Cancellable c -> c.cf ()
            | Resume (fiber, k, v) ->
              let prev = t.current in
              t.current <- Some fiber;
              (if fiber.alive then Effect.Deep.continue k v
               else Effect.Deep.discontinue k Killed);
              t.current <- prev));
          loop ()
      end
  in
  loop ();
  match t.failure with
  | Some (e, bt) ->
    t.failure <- None;
    Printexc.raise_with_backtrace e bt
  | None -> ()

let run_fn ?seed ?costs f =
  let t = create ?seed ?costs () in
  f t;
  run t;
  t
