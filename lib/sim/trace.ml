type category = Net | Disk | Lock | Txn | Proc | Fs | Recovery | User

let pp_category ppf c =
  Fmt.string ppf
    (match c with
    | Net -> "net"
    | Disk -> "disk"
    | Lock -> "lock"
    | Txn -> "txn"
    | Proc -> "proc"
    | Fs -> "fs"
    | Recovery -> "recovery"
    | User -> "user")

let category_of_string = function
  | "net" -> Some Net
  | "disk" -> Some Disk
  | "lock" -> Some Lock
  | "txn" -> Some Txn
  | "proc" -> Some Proc
  | "fs" -> Some Fs
  | "recovery" -> Some Recovery
  | "user" -> Some User
  | _ -> None

type event = { at : int; cat : category; site : int; text : string }

type t = {
  capacity : int;
  ring : event option array;
  mutable next : int;
  mutable count : int;
  mutable dropped : int;  (* events overwritten after the ring wrapped *)
  mutable active : category list option;  (* None = disabled *)
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create: non-positive capacity";
  {
    capacity;
    ring = Array.make capacity None;
    next = 0;
    count = 0;
    dropped = 0;
    active = None;
  }

let enable ?(categories = [ Net; Disk; Lock; Txn; Proc; Fs; Recovery; User ]) t =
  t.active <- Some categories

let disable t = t.active <- None

let enabled t cat =
  match t.active with None -> false | Some cats -> List.mem cat cats

let emit t ~at ~cat ~site text =
  if enabled t cat then begin
    if t.count = t.capacity then t.dropped <- t.dropped + 1;
    t.ring.(t.next) <- Some { at; cat; site; text };
    t.next <- (t.next + 1) mod t.capacity;
    t.count <- min (t.count + 1) t.capacity
  end

let dropped t = t.dropped

(* A sink that consumes the format arguments without rendering anything:
   the disabled-category path must not pay for [kasprintf]. *)
let null_formatter =
  Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let emitf t ~at ~cat ~site fmt =
  if enabled t cat then
    Format.kasprintf (fun s -> emit t ~at ~cat ~site s) fmt
  else Format.ikfprintf (fun _ -> ()) null_formatter fmt

let events t =
  let out = ref [] in
  for i = 0 to t.count - 1 do
    let idx = (t.next - t.count + i + t.capacity * 2) mod t.capacity in
    match t.ring.(idx) with Some e -> out := e :: !out | None -> ()
  done;
  List.rev !out

let clear t =
  Array.fill t.ring 0 t.capacity None;
  t.next <- 0;
  t.count <- 0;
  t.dropped <- 0

let pp_event ppf e =
  let cat = Fmt.str "%a" pp_category e.cat in
  Fmt.pf ppf "%10.3f ms  %-8s site%-2d  %s"
    (float_of_int e.at /. 1000.)
    cat e.site e.text

let dump ppf t =
  if t.dropped > 0 then
    Fmt.pf ppf "(truncated: %d earlier event%s dropped by the %d-entry ring)@."
      t.dropped
      (if t.dropped = 1 then "" else "s")
      t.capacity;
  List.iter (fun e -> Fmt.pf ppf "%a@." pp_event e) (events t)
