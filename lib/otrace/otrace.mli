(** Causal span tracing for the distributed kernel.

    A span is a named, timed interval of work at one site — a syscall, a
    lock wait, a 2PC phase, a message handler, a recovery pass — with a
    parent pointer to the span that caused it. Together the spans of a run
    form forests rooted at the top-level activities (one tree per
    transaction when the Api layer opens a ["txn"] root), and the trees
    stitch across sites: span context rides on [Msg] envelopes, so a
    participant's [prepare] span is a child of the coordinator's
    [2pc.prepare] span even though they ran on different sites.

    Design points, mirroring {!Obs}'s zero-overhead discipline:

    - The collector is installed on a cluster as an option; every kernel
      emission point tests the option and does nothing when absent.
    - Parentage is ambient: each engine fiber carries a stack of open
      spans (keyed by {!Engine.current_fiber}), so nested work needs no
      explicit context threading. Cross-site and cross-fiber edges pass an
      explicit {!ctx}.
    - Everything is deterministic: span ids come from a counter and times
      from the virtual clock, so the same seed yields the same trace.
    - Completed spans land in a bounded ring; overwritten spans are
      counted in {!dropped} and the exporters promote orphaned children
      to roots rather than emitting dangling parent ids.

    On top of the raw spans the collector aggregates (a) per-phase
    duration histograms (bounded, log-bucketed — see {!Stats.Hist}),
    (b) a lock-contention profile keyed by [(fid, byte-range bucket)],
    and (c) nothing else: abort reasons are ordinary {!Stats} counters
    ([txn.abort.*]) so they exist even without a collector. *)

type t

type ctx = { trace : int; span : int }
(** Wire context: the root (trace) id and the immediate parent span id.
    This is what crosses sites on a [Msg] envelope. *)

type span

val create : ?capacity:int -> ?bucket_bytes:int -> Engine.t -> t
(** [capacity] bounds the completed-span ring (default 65536);
    [bucket_bytes] is the byte-range bucket width of the lock-contention
    profile (default 1024, typically the page size). *)

(** {1 Recording} *)

val start :
  ?parent:ctx -> ?args:(string * string) list -> t -> site:int -> cat:string ->
  string -> span
(** Open a span. The parent defaults to the current fiber's innermost
    open span (none → a new root); pass [?parent] to graft onto a remote
    or cross-fiber span. The span is pushed on the current fiber's
    ambient stack. *)

val finish : ?args:(string * string) list -> t -> span -> unit
(** Close a span: stamp the end time, pop it from its ambient stack
    (wherever it sits — out-of-order finishes are tolerated), record it
    in the ring, and feed its duration to the per-phase histogram keyed
    by span name. Idempotent. *)

val with_span :
  ?parent:ctx -> ?args:(string * string) list -> t -> site:int -> cat:string ->
  string -> (unit -> 'a) -> 'a
(** [start] / run / [finish], closing the span even if the thunk raises
    (including fiber kill, which unwinds through [Fun.protect]). *)

val current_ctx : t -> ctx option
(** Context of the current fiber's innermost open span, for attaching to
    outgoing messages or capturing before [Engine.spawn]. *)

val span_id : span -> int
val span_ctx : span -> ctx
(** Context rooted at this span (for cross-fiber grafting). *)

(** {1 Lock-contention profile} *)

val note_wait :
  t -> fid:string -> lo:int -> wait_us:int -> queue:int -> blockers:string list ->
  unit
(** Account one completed lock wait against the [(fid, lo / bucket_bytes)]
    contention cell: total/max wait, max queue depth, and per-blocker
    counts. *)

type wait_profile = {
  wp_fid : string;
  wp_range_lo : int;  (** bucket start offset in bytes *)
  wp_range_len : int;  (** bucket width in bytes *)
  wp_waits : int;
  wp_total_wait_us : int;
  wp_max_wait_us : int;
  wp_max_queue : int;
  wp_blockers : (string * int) list;
  (** top blockers, most waits first (name-tie-broken); bounded to the 8
      hottest distinct owners per cell — approximate beyond that, with
      the lowest-count entry evicted deterministically *)
}

val contention : t -> wait_profile list
(** Hottest cells first (by total wait time). *)

(** {1 Ownership migrations (locus_shard)} *)

type migration = {
  mg_fid : string;
  mg_from : int;
  mg_to : int;
  mg_epoch : int;
  mg_at : int;  (** virtual time of the transfer install *)
}

val note_migration :
  t -> fid:string -> from_site:int -> to_site:int -> epoch:int -> unit
(** Record one lock-manager ownership transfer (stamped with the virtual
    clock); exported under ["migrations"] by {!export_metrics}. *)

val migrations : t -> migration list
(** Oldest first. *)

(** {1 Reading back} *)

val spans : t -> (int * int option * string * string * int * int * int) list
(** Completed spans oldest-first as
    [(id, parent, name, cat, site, start_us, end_us)] — the test-facing
    projection. *)

val span_count : t -> int
val dropped : t -> int

val capacity : t -> int
(** Ring capacity the tracer was created with. *)

val phases : t -> (string * Stats.Hist.t) list
(** Per-span-name duration histograms, sorted by name. *)

val phase : t -> string -> Stats.Hist.t option

(** {1 Exporters} *)

val export_chrome : ?extra:(string * string) list -> t -> Format.formatter -> unit
(** Chrome trace-event JSON (load in [chrome://tracing] or Perfetto):
    one ["X"] complete event per span, [ts]/[dur] in virtual µs, [pid] =
    site, [tid] = trace id, and [args] carrying [id]/[parent]/[trace].
    Spans whose parent fell off the ring are emitted without a parent, so
    every parent id present in the file resolves. [extra] adds
    string pairs to [otherData]. *)

val export_metrics : t -> Stats.t -> Format.formatter -> unit
(** Machine-readable metrics JSON: per-phase histograms ([phases], with
    p50/p95/p99/p999), the lock-contention profile ([lock_contention]),
    the abort-reason taxonomy ([aborts], read from the [txn.abort.*]
    counters), span-ring drop accounting ([trace]: spans held, dropped
    count, ring capacity), and all raw counters ([counters]). *)
