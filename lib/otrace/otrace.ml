type ctx = { trace : int; span : int }

type span = {
  id : int;
  parent : int option;
  trace_id : int;
  name : string;
  cat : string;
  site : int;
  start_us : int;
  mutable end_us : int;  (* -1 while open *)
  mutable args : (string * string) list;
}

type cell = {
  mutable waits : int;
  mutable total_wait_us : int;
  mutable max_wait_us : int;
  mutable max_queue : int;
  mutable blockers : (string * int) list;
}

type t = {
  engine : Engine.t;
  capacity : int;
  ring : span option array;
  mutable next : int;
  mutable count : int;
  mutable dropped : int;
  mutable next_id : int;
  stacks : (int, span list ref) Hashtbl.t;  (* fiber id -> open spans, innermost first *)
  phase_hists : (string, Stats.Hist.t) Hashtbl.t;
  bucket_bytes : int;
  cells : (string * int, cell) Hashtbl.t;
  mutable migrations : migration list;  (* newest first *)
}

and migration = {
  mg_fid : string;
  mg_from : int;
  mg_to : int;
  mg_epoch : int;
  mg_at : int;
}

let create ?(capacity = 65536) ?(bucket_bytes = 1024) engine =
  if capacity <= 0 then invalid_arg "Otrace.create: non-positive capacity";
  {
    engine;
    capacity;
    ring = Array.make capacity None;
    next = 0;
    count = 0;
    dropped = 0;
    next_id = 0;
    stacks = Hashtbl.create 64;
    phase_hists = Hashtbl.create 32;
    bucket_bytes = max 1 bucket_bytes;
    cells = Hashtbl.create 32;
    migrations = [];
  }

(* Ambient state is keyed by engine fiber id; work running outside any
   fiber (scheduled closures) shares the pseudo-key -1. *)
let fiber_key t =
  match Engine.current_fiber t.engine with
  | Some f -> Engine.Fiber.id f
  | None -> -1

let stack t key =
  match Hashtbl.find_opt t.stacks key with
  | Some r -> r
  | None ->
    let r = ref [] in
    Hashtbl.replace t.stacks key r;
    r

let span_id sp = sp.id
let span_ctx sp = { trace = sp.trace_id; span = sp.id }

let current_ctx t =
  match Hashtbl.find_opt t.stacks (fiber_key t) with
  | Some { contents = top :: _ } -> Some (span_ctx top)
  | _ -> None

let start ?parent ?(args = []) t ~site ~cat name =
  let st = stack t (fiber_key t) in
  let parent, trace_of_parent =
    match parent with
    | Some c -> (Some c.span, Some c.trace)
    | None -> (
      match !st with
      | top :: _ -> (Some top.id, Some top.trace_id)
      | [] -> (None, None))
  in
  t.next_id <- t.next_id + 1;
  let id = t.next_id in
  let trace_id = match trace_of_parent with Some tr -> tr | None -> id in
  let sp =
    {
      id;
      parent;
      trace_id;
      name;
      cat;
      site;
      start_us = Engine.now t.engine;
      end_us = -1;
      args;
    }
  in
  st := sp :: !st;
  sp

let record t sp =
  if t.count = t.capacity then t.dropped <- t.dropped + 1;
  t.ring.(t.next) <- Some sp;
  t.next <- (t.next + 1) mod t.capacity;
  t.count <- min (t.count + 1) t.capacity

let phase_hist t name =
  match Hashtbl.find_opt t.phase_hists name with
  | Some h -> h
  | None ->
    let h = Stats.Hist.create () in
    Hashtbl.add t.phase_hists name h;
    h

(* Pop [sp] from whichever ambient stack holds it. The common case is the
   top of the current fiber's stack; out-of-order finishes (a transaction
   root closed while a syscall span is still open above it) and
   cross-fiber finishes just filter it out wherever it is. *)
let unstack t sp =
  let filter r = r := List.filter (fun s -> s.id <> sp.id) !r in
  let key = fiber_key t in
  (match Hashtbl.find_opt t.stacks key with
  | Some r when List.exists (fun s -> s.id = sp.id) !r ->
    filter r;
    if !r = [] then Hashtbl.remove t.stacks key
  | _ ->
    let owner =
      Hashtbl.fold
        (fun k r acc ->
          if acc = None && List.exists (fun s -> s.id = sp.id) !r then Some (k, r)
          else acc)
        t.stacks None
    in
    (match owner with
    | Some (k, r) ->
      filter r;
      if !r = [] then Hashtbl.remove t.stacks k
    | None -> ()))

let finish ?(args = []) t sp =
  if sp.end_us < 0 then begin
    sp.end_us <- Engine.now t.engine;
    if args <> [] then sp.args <- sp.args @ args;
    unstack t sp;
    record t sp;
    Stats.Hist.add (phase_hist t sp.name) (sp.end_us - sp.start_us)
  end

let with_span ?parent ?args t ~site ~cat name f =
  let sp = start ?parent ?args t ~site ~cat name in
  Fun.protect f ~finally:(fun () -> finish t sp)

(* {1 Lock contention} *)

type wait_profile = {
  wp_fid : string;
  wp_range_lo : int;
  wp_range_len : int;
  wp_waits : int;
  wp_total_wait_us : int;
  wp_max_wait_us : int;
  wp_max_queue : int;
  wp_blockers : (string * int) list;
}

(* Per-cell blocker maps are bounded so long sweeps can't grow them
   without limit: at most [max_blockers] distinct owners per cell. When
   full, a new owner evicts the current minimum-count entry (ties broken
   toward the lexicographically last name, deterministically) — an
   approximate top-K, exact whenever a cell sees <= K distinct blockers. *)
let max_blockers = 8

let note_wait t ~fid ~lo ~wait_us ~queue ~blockers =
  let key = (fid, lo / t.bucket_bytes) in
  let c =
    match Hashtbl.find_opt t.cells key with
    | Some c -> c
    | None ->
      let c =
        { waits = 0; total_wait_us = 0; max_wait_us = 0; max_queue = 0; blockers = [] }
      in
      Hashtbl.add t.cells key c;
      c
  in
  c.waits <- c.waits + 1;
  c.total_wait_us <- c.total_wait_us + wait_us;
  if wait_us > c.max_wait_us then c.max_wait_us <- wait_us;
  if queue > c.max_queue then c.max_queue <- queue;
  List.iter
    (fun b ->
      match List.assoc_opt b c.blockers with
      | Some n -> c.blockers <- (b, n + 1) :: List.remove_assoc b c.blockers
      | None ->
        let rest =
          if List.length c.blockers < max_blockers then c.blockers
          else
            let victim =
              List.fold_left
                (fun acc (o, n) ->
                  match acc with
                  | None -> Some (o, n)
                  | Some (vo, vn) ->
                    if n < vn || (n = vn && String.compare o vo > 0) then
                      Some (o, n)
                    else acc)
                None c.blockers
            in
            match victim with
            | Some (vo, _) -> List.remove_assoc vo c.blockers
            | None -> c.blockers
        in
        c.blockers <- (b, 1) :: rest)
    blockers

(* {1 Ownership migrations (locus_shard)} *)

let note_migration t ~fid ~from_site ~to_site ~epoch =
  t.migrations <-
    {
      mg_fid = fid;
      mg_from = from_site;
      mg_to = to_site;
      mg_epoch = epoch;
      mg_at = Engine.now t.engine;
    }
    :: t.migrations

let migrations t = List.rev t.migrations

let contention t =
  Hashtbl.fold
    (fun (fid, bucket) c acc ->
      {
        wp_fid = fid;
        wp_range_lo = bucket * t.bucket_bytes;
        wp_range_len = t.bucket_bytes;
        wp_waits = c.waits;
        wp_total_wait_us = c.total_wait_us;
        wp_max_wait_us = c.max_wait_us;
        wp_max_queue = c.max_queue;
        wp_blockers =
          List.sort
            (fun (oa, a) (ob, b) ->
              match Int.compare b a with
              | 0 -> String.compare oa ob
              | c -> c)
            c.blockers;
      }
      :: acc)
    t.cells []
  |> List.sort (fun a b ->
         match Int.compare b.wp_total_wait_us a.wp_total_wait_us with
         | 0 -> compare (a.wp_fid, a.wp_range_lo) (b.wp_fid, b.wp_range_lo)
         | c -> c)

(* {1 Reading back} *)

let raw_spans t =
  let out = ref [] in
  for i = t.count - 1 downto 0 do
    let idx = (t.next - t.count + i + (t.capacity * 2)) mod t.capacity in
    match t.ring.(idx) with Some s -> out := s :: !out | None -> ()
  done;
  !out

let spans t =
  List.map
    (fun s -> (s.id, s.parent, s.name, s.cat, s.site, s.start_us, s.end_us))
    (raw_spans t)

let span_count t = t.count
let dropped t = t.dropped
let capacity t = t.capacity

let phases t =
  Hashtbl.fold (fun name h acc -> (name, h) :: acc) t.phase_hists []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let phase t name = Hashtbl.find_opt t.phase_hists name

(* {1 Exporters} *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let export_chrome ?(extra = []) t ppf =
  let spans =
    List.sort
      (fun a b ->
        match Int.compare a.start_us b.start_us with
        | 0 -> Int.compare a.id b.id
        | c -> c)
      (raw_spans t)
  in
  let known = Hashtbl.create (List.length spans * 2) in
  List.iter (fun s -> Hashtbl.replace known s.id ()) spans;
  let orphaned = ref 0 in
  Fmt.pf ppf "{@\n  \"traceEvents\": [";
  List.iteri
    (fun i s ->
      (* A parent that fell off the bounded ring must not leave a dangling
         id in the file: promote the child to a root and count it. *)
      let parent =
        match s.parent with
        | Some p when Hashtbl.mem known p -> Some p
        | Some _ ->
          incr orphaned;
          None
        | None -> None
      in
      Fmt.pf ppf "%s@\n    {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
        (if i = 0 then "" else ",")
        (json_escape s.name) (json_escape s.cat);
      Fmt.pf ppf "\"ts\": %d, \"dur\": %d, \"pid\": %d, \"tid\": %d, \"args\": {"
        s.start_us
        (max 0 (s.end_us - s.start_us))
        s.site s.trace_id;
      Fmt.pf ppf "\"id\": %d" s.id;
      (match parent with Some p -> Fmt.pf ppf ", \"parent\": %d" p | None -> ());
      Fmt.pf ppf ", \"trace\": %d" s.trace_id;
      List.iter
        (fun (k, v) ->
          Fmt.pf ppf ", \"%s\": \"%s\"" (json_escape k) (json_escape v))
        s.args;
      Fmt.pf ppf "}}")
    spans;
  Fmt.pf ppf "@\n  ],@\n  \"displayTimeUnit\": \"ms\",@\n  \"otherData\": {";
  Fmt.pf ppf "\"spans\": %d, \"dropped\": %d, \"orphaned\": %d" (List.length spans)
    t.dropped !orphaned;
  List.iter
    (fun (k, v) -> Fmt.pf ppf ", \"%s\": \"%s\"" (json_escape k) (json_escape v))
    extra;
  Fmt.pf ppf "}@\n}@\n"

let abort_reasons =
  [ "deadlock"; "orphan"; "crash"; "degraded_vote"; "coordinator_lost"; "user" ]

let export_metrics t stats ppf =
  Fmt.pf ppf "{@\n  \"phases\": [";
  List.iteri
    (fun i (name, h) ->
      Fmt.pf ppf
        "%s@\n    {\"name\": \"%s\", \"count\": %d, \"total_us\": %d, \
         \"mean_us\": %.1f, \"p50_us\": %d, \"p95_us\": %d, \"p99_us\": %d, \
         \"p999_us\": %d, \"max_us\": %d}"
        (if i = 0 then "" else ",")
        (json_escape name) (Stats.Hist.count h) (Stats.Hist.total h)
        (Stats.Hist.mean h)
        (Stats.Hist.quantile h 50)
        (Stats.Hist.quantile h 95)
        (Stats.Hist.quantile h 99)
        (Stats.Hist.quantile_permille h 999)
        (Stats.Hist.max_value h))
    (phases t);
  Fmt.pf ppf "@\n  ],@\n  \"lock_contention\": [";
  List.iteri
    (fun i w ->
      Fmt.pf ppf
        "%s@\n    {\"fid\": \"%s\", \"range_lo\": %d, \"range_len\": %d, \
         \"waits\": %d, \"total_wait_us\": %d, \"max_wait_us\": %d, \
         \"max_queue\": %d, \"top_blockers\": ["
        (if i = 0 then "" else ",")
        (json_escape w.wp_fid) w.wp_range_lo w.wp_range_len w.wp_waits
        w.wp_total_wait_us w.wp_max_wait_us w.wp_max_queue;
      List.iteri
        (fun j (owner, n) ->
          if j < 3 then
            Fmt.pf ppf "%s{\"owner\": \"%s\", \"waits\": %d}"
              (if j = 0 then "" else ", ")
              (json_escape owner) n)
        w.wp_blockers;
      Fmt.pf ppf "]}")
    (contention t);
  Fmt.pf ppf "@\n  ],@\n  \"aborts\": {";
  List.iteri
    (fun i r ->
      Fmt.pf ppf "%s\"%s\": %d"
        (if i = 0 then "" else ", ")
        r
        (Stats.get stats ("txn.abort." ^ r)))
    abort_reasons;
  Fmt.pf ppf "},@\n  \"migrations\": [";
  List.iteri
    (fun i m ->
      Fmt.pf ppf
        "%s@\n    {\"fid\": \"%s\", \"from\": %d, \"to\": %d, \"epoch\": %d, \
         \"at_us\": %d}"
        (if i = 0 then "" else ",")
        (json_escape m.mg_fid) m.mg_from m.mg_to m.mg_epoch m.mg_at)
    (migrations t);
  Fmt.pf ppf "@\n  ],@\n  \"trace\": {";
  Fmt.pf ppf "\"spans\": %d, \"dropped\": %d, \"capacity\": %d" t.count t.dropped
    t.capacity;
  Fmt.pf ppf "},@\n  \"counters\": {";
  List.iteri
    (fun i (k, v) ->
      Fmt.pf ppf "%s@\n    \"%s\": %d" (if i = 0 then "" else ",") (json_escape k) v)
    (Stats.counters stats);
  Fmt.pf ppf "@\n  }@\n}@\n"
