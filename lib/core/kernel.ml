module Wfg = Locus_deadlock.Wfg
module Process = Locus_proc.Process
module Proc_table = Locus_proc.Proc_table
module Otrace = Locus_otrace.Otrace
module Pcommit = Locus_pcommit.Pcommit
module Pc_acceptor = Locus_pcommit.Acceptor
module Shard_dir = Locus_shard.Directory
module Shard_policy = Locus_shard.Policy
module Hreport = Locus_health.Report
module Hsampler = Locus_health.Sampler
module Hrules = Locus_health.Rules

type outcome = Committed | Aborted

let pp_outcome ppf = function
  | Committed -> Fmt.string ppf "committed"
  | Aborted -> Fmt.string ppf "aborted"

type ready = Members_done | Abort_requested

module Config = struct
  (* Atomic-commitment protocol selector. [Two_phase] is the paper's §4.2
     protocol and the default everywhere. [Paxos { f }] layers Gray &
     Lamport's Paxos Commit on top: participant votes are replicated
     across 2f+1 acceptor sites so the outcome survives f failures and a
     crashed coordinator no longer blocks its participants. *)
  type commit_protocol = Two_phase | Paxos of { f : int }

  (* One bounded-retry-with-backoff policy: [attempts] tries, the first
     wait is [backoff_us], growth is exponential (or jittered when the
     chaos layer is armed) capped at [cap_us]. *)
  type retry = { attempts : int; backoff_us : int; cap_us : int }

  (* The kernel's six retry call sites, each with its own policy — one
     source of truth instead of per-callsite magic numbers. [rpc] is the
     generic client-request profile used when the chaos layer retries
     ordinary kernel RPCs; the rest are the named protocol loops. *)
  type retries = {
    rpc : retry;
    phase2 : retry;  (* commit/abort phase-2 notifications (§4.2) *)
    replay : retry;  (* recovery replaying phase 2 of decided txns (§4.4) *)
    outcome : retry;  (* participants chasing an in-doubt outcome (§4.4) *)
    replica : retry;  (* replica delta propagation to secondaries (§5.2) *)
    shard : retry;  (* shard directory claims during migration races *)
  }

  type t = {
    n_sites : int;
    volumes : (int * Site.t list) list;
    page_size : int;
    cache_pages : int;
    lock_cache : bool;
    prefetch : bool;
    lock_delegation : bool;
    delegation_threshold : int;
    prepare_log_per_file : bool;
    two_write_log : bool;
    replica_sync : bool;
    async_phase2 : bool;
    deadlock_patience_us : int;
    deadlock_policy : Locus_deadlock.Detector.policy;
    rpc_timeout_us : int;
    group_commit_window_us : int;
    rpc_batch_window_us : int;
    commit_protocol : commit_protocol;
    shards : int;  (* 0 = static lock placement; > 0 enables locus_shard *)
    shard_policy : Locus_shard.Policy.t;
    retries : retries;
    net_faults : Transport.faults option;  (* locus_chaos; None = reliable *)
    health_window_us : int;  (* locus_health sampling window; 0 = off *)
    health_keep : int;  (* windows retained per series *)
    health_thresholds : Locus_health.Rules.thresholds;
  }

  (* Exactly the historical per-callsite constants, so default timing is
     bit-for-bit unchanged: every cap is the old hardcoded 16x initial
     backoff. *)
  let default_retries =
    let r attempts backoff_us = { attempts; backoff_us; cap_us = backoff_us * 16 } in
    {
      rpc =
        r Transport.default_rpc_attempts Transport.default_rpc_backoff_us;
      phase2 = r 8 2_000_000;
      replay = r 5 2_000_000;
      outcome = r 6 1_000_000;
      replica = r 3 200_000;
      shard = r 3 2_000;
    }

  let default ~n_sites =
    {
      n_sites;
      volumes = List.init n_sites (fun i -> (i, [ i ]));
      page_size = 1024;
      cache_pages = 128;
      lock_cache = true;
      prefetch = false;
      lock_delegation = false;
      delegation_threshold = 3;
      prepare_log_per_file = false;
      two_write_log = false;
      replica_sync = true;
      async_phase2 = true;
      deadlock_patience_us = 3_000_000;
      deadlock_policy = Locus_deadlock.Detector.Youngest_transaction;
      rpc_timeout_us = Transport.default_rpc_timeout_us;
      group_commit_window_us = 0;
      rpc_batch_window_us = 0;
      commit_protocol = Two_phase;
      shards = 0;
      shard_policy = Locus_shard.Policy.default;
      retries = default_retries;
      net_faults = None;
      health_window_us = 0;
      health_keep = 64;
      health_thresholds = Locus_health.Rules.default;
    }

  let with_replication ~n_sites ~factor =
    { (default ~n_sites) with volumes = Placement.volumes ~n_sites ~factor }

  let with_batching ~window_us cfg =
    { cfg with group_commit_window_us = window_us; rpc_batch_window_us = window_us }

  let with_paxos ~f cfg =
    if f < 0 then invalid_arg "Config.with_paxos: f must be >= 0";
    if cfg.n_sites < (2 * f) + 1 then
      invalid_arg "Config.with_paxos: need n_sites >= 2f+1 acceptor sites";
    { cfg with commit_protocol = Paxos { f } }

  (* Arm the lossy-network chaos layer (locus_chaos): per-message drop /
     duplication / delivery jitter / reordering on every wire leg, driven
     by a PRNG split off the engine seed. Also switches kernel client
     RPCs to rid-tagged retried sends so the servers' exactly-once reply
     caches absorb the retries and duplicates. *)
  let with_net_faults ?(drop = 0.) ?(dup = 0.) ?(reorder = 0) ?(jitter_us = 0)
      cfg =
    if drop < 0. || drop >= 1. then
      invalid_arg "Config.with_net_faults: drop must be in [0, 1)";
    if dup < 0. || dup >= 1. then
      invalid_arg "Config.with_net_faults: dup must be in [0, 1)";
    if reorder < 0 || jitter_us < 0 then
      invalid_arg "Config.with_net_faults: reorder/jitter must be >= 0";
    { cfg with net_faults = Some { Transport.drop; dup; jitter_us; reorder } }

  (* Arm the live health plane (locus_health): a windowed sampler ticks
     every [window_us] of virtual time, feeding bounded per-series rings
     and the watchdog rules. Off by default — like every observability
     layer before it, the default configuration stays bit-for-bit
     identical. Sampling runs in engine-scheduled closures (outside any
     fiber), so it consumes no virtual time and draws no randomness. *)
  let with_health ?(window_us = 100_000) ?(keep = 64) ?thresholds cfg =
    if window_us <= 0 then
      invalid_arg "Config.with_health: window_us must be > 0";
    if keep <= 0 then invalid_arg "Config.with_health: keep must be > 0";
    {
      cfg with
      health_window_us = window_us;
      health_keep = keep;
      health_thresholds =
        (match thresholds with Some t -> t | None -> cfg.health_thresholds);
    }

  (* Dynamic lock placement (locus_shard). Mutually exclusive with §5.2
     delegation: both move lock authority, by different rules, and a
     request could otherwise ping-pong between the two redirect schemes. *)
  let with_shards ~shards ?policy cfg =
    if shards <= 0 then invalid_arg "Config.with_shards: shards must be > 0";
    if cfg.lock_delegation then
      invalid_arg "Config.with_shards: incompatible with lock_delegation";
    {
      cfg with
      shards;
      shard_policy =
        (match policy with Some p -> p | None -> cfg.shard_policy);
    }
end

(* Failure-injection hooks: invoked synchronously at the protocol points
   recovery cares about, so tests can crash sites at exactly the right
   instant. *)
type hooks = {
  mutable on_coord_log_written : Txid.t -> unit;
  mutable on_participant_prepared : Site.t -> Txid.t -> bool -> unit;
  mutable on_decided : Txid.t -> Log_record.status -> unit;
}

let no_hooks () =
  {
    on_coord_log_written = (fun _ -> ());
    on_participant_prepared = (fun _ _ _ -> ());
    on_decided = (fun _ _ -> ());
  }

type t = {
  site : Site.t;
  engine : Engine.t;
  mutable alive : bool;
  mutable incarnation : int;
  mutable txseq : int;
  mutable coord_ready : bool;  (* coordinator-log recovery pass done *)
  mutable par_ready : bool;  (* participant prepared-state rebuild done *)
  mutable recovered : bool;  (* full recovery (incl. in-doubt resolution) done *)
  repl : Status.t;  (* freshness of hosted replicated volumes *)
  known_primary : (int, Site.t) Hashtbl.t;  (* per-vid, to spot takeovers *)
  cache : Cache.t;
  store : Filestore.t;
  locks : (File_id.t, Lock_table.t) Hashtbl.t;
  procs : Proc_table.t;
  txns : Txn_state.t;
  participant : Participant.t;
  mutable coord : Coord_log.t;
  pc_acceptor : Pc_acceptor.t;  (* Paxos Commit acceptor share of this site *)
  mutable acc_ready : bool;  (* acceptor vote replay done *)
  resolving : (Txid.t, unit) Hashtbl.t;  (* single-flight acceptor resolvers *)
  doubted : (Txid.t, int) Hashtbl.t;
  (* counted in the txn.in_doubt gauge; the value is the virtual time
     doubt was entered, so the health plane can age the oldest one *)
  fibers : (Pid.t, Engine.Fiber.handle) Hashtbl.t;
  end_waits : (Txid.t, ready Engine.Ivar.t) Hashtbl.t;
  (* §5.2 lock-control migration state. *)
  delegations : (File_id.t, Site.t) Hashtbl.t;  (* we are home; authority is there *)
  hosted : (File_id.t, Site.t) Hashtbl.t;  (* we hold authority; home is there *)
  lock_origins : (File_id.t, Site.t * int) Hashtbl.t;  (* consecutive remote requesters *)
  (* locus_shard dynamic lock placement state (all volatile). *)
  shard_owned : (File_id.t, unit) Hashtbl.t;  (* lock-manager roles held here *)
  shard_epochs : (File_id.t, int) Hashtbl.t;  (* highest epoch seen per fid (fence) *)
  shard_hints : (File_id.t, Site.t) Hashtbl.t;  (* stale-tolerant owner hints *)
  shard_origins : (File_id.t, Site.t * int) Hashtbl.t;  (* remote-acquisition streaks *)
  shard_migrating : (File_id.t, unit) Hashtbl.t;  (* transfer in progress *)
  (* Exactly-once RPC state (locus_chaos) — all volatile, per incarnation.
     Server side: the bounded per-client reply cache that answers retried
     or duplicated requests whose first copy already executed, plus the
     per-client ack watermark that both evicts finished entries and fences
     late wire copies of finished requests as stale duplicates. Client
     side: the rid sequence allocator and the outstanding-seq set the ack
     watermark is computed from. *)
  reply_cache : (int * int * int, reply_slot) Hashtbl.t;  (* (site, inc, seq) *)
  reply_cache_q : (int * int * int) Queue.t;  (* FIFO capacity bound *)
  rc_acked : (int * int, int) Hashtbl.t;  (* (site, inc) -> acked seq *)
  mutable rid_seq : int;
  rid_outstanding : (int, unit) Hashtbl.t;
  cl : cluster;
}

and reply_slot = Cached of Msg.reply | Running of Msg.reply Engine.Ivar.t

and cluster = {
  cfg : Config.t;
  c_engine : Engine.t;
  net : (Msg.env, Msg.reply) Transport.t;
  mutable ks : t array;
  namespace : (string, File_id.t) Hashtbl.t;
  paths : (File_id.t, string) Hashtbl.t;
  vol_hosts : (int, Site.t list) Hashtbl.t;
  primaries : (int, Site.t) Hashtbl.t;
  locations : (Pid.t, Site.t) Hashtbl.t;
  exit_ivars : (Pid.t, unit Engine.Ivar.t) Hashtbl.t;
  lock_authority : (File_id.t, Site.t) Hashtbl.t;  (* client hints *)
  mutable root_dir : File_id.t option;  (* lazily created "/" directory file *)
  txn_tops : (Txid.t, Pid.t) Hashtbl.t;
  txn_members : (Txid.t, (Pid.t * Site.t) list ref) Hashtbl.t;
  hooks : hooks;
  mutable observer : Obs.sink option;  (* history recorder (Locus_check) *)
  mutable otracer : Otrace.t option;  (* causal span collector (Locus_otrace) *)
  shard_dir : Shard_dir.t option;  (* authoritative role directory (locus_shard) *)
  mutable health : health_plane option;  (* windowed sampler + watchdog (locus_health) *)
}

(* Live health plane state (armed by [Config.with_health]): the cluster
   sampler, one edge-triggered rules evaluator per site plus one for
   cluster-scope rules, and the alarm history (newest first). *)
and health_plane = {
  hp_sampler : Hsampler.t;
  hp_site_rules : Hrules.t array;
  hp_cluster_rules : Hrules.t;
  mutable hp_alarms : Hrules.alarm list;
}

(* Marshalled migration payload (§4.1): the process record plus, for a
   top-level process, its transaction record, which travels with it. *)
type migration = { m_proc : Process.t; m_txn : Txn_state.txn option }

let engine cl = cl.c_engine
let config cl = cl.cfg
let hooks cl = cl.hooks
let transport cl = cl.net
let kernel cl s = cl.ks.(s)
let kernels cl = Array.to_list cl.ks
let site k = k.site
let cluster_of k = k.cl
let procs k = k.procs
let txns k = k.txns
let filestore k = k.store
let participant k = k.participant
let coord_log k = k.coord
let costs k = Engine.costs k.engine
let stats k = Engine.stats k.engine
let sharded cl = cl.shard_dir <> None

let tr k cat fmt =
  Trace.emitf (Engine.trace k.engine) ~at:(Engine.now k.engine) ~cat ~site:k.site fmt

(* {1 History observation (Locus_check)} *)

let set_observer cl sink = cl.observer <- sink

let observe cl ~site ev =
  match cl.observer with
  | None -> ()
  | Some sink -> sink { Obs.at = Engine.now cl.c_engine; site; ev }

let obs k ev = observe k.cl ~site:k.site ev

(* {1 Causal span tracing (Locus_otrace)}

   Same zero-overhead discipline as [observe]: a single option test per
   emission point, and the slow [Some] branch only exists while a
   collector is installed. *)

let set_otracer cl tr = cl.otracer <- tr
let otracer cl = cl.otracer

(* The span context to attach to an outgoing message: the innermost open
   span of the calling fiber, so the server-side span grafts under it. *)
let wire_ctx cl =
  match cl.otracer with None -> None | Some tr -> Otrace.current_ctx tr

let envelope cl ?rid msg = { Msg.ctx = wire_ctx cl; rid; payload = msg }

let with_span k ?parent ?args ~cat name f =
  match k.cl.otracer with
  | None -> f ()
  | Some tr -> Otrace.with_span ?parent ?args tr ~site:k.site ~cat name f

(* Run the thunks concurrently in site-attributed fibers and await them
   all. Used on the commit hot path when RPC batching is on, so that
   independent messages for the same destination (e.g. one transaction's
   replica deltas) are in flight together and can join one batch window —
   issued sequentially they could never coalesce. *)
let par_iter k ~name fs =
  let ivs =
    List.map
      (fun f ->
        let iv = Engine.Ivar.create () in
        ignore
          (Engine.spawn ~name ~site:k.site k.engine (fun () ->
               Fun.protect f ~finally:(fun () ->
                   ignore (Engine.try_fill k.engine iv ()))));
        iv)
      fs
  in
  List.iter Engine.await ivs

let alloc_txid k =
  k.txseq <- k.txseq + 1;
  Txid.make ~site:k.site ~incarnation:k.incarnation ~seq:k.txseq

let lock_table k fid = Hashtbl.find_opt k.locks fid

let ensure_table k fid =
  match Hashtbl.find_opt k.locks fid with
  | Some t -> t
  | None ->
    let t = Lock_table.create fid in
    Hashtbl.replace k.locks fid t;
    t

let lock_tables cl =
  Array.to_list cl.ks
  |> List.concat_map (fun k ->
         if k.alive then Hashtbl.fold (fun _ t acc -> t :: acc) k.locks [] else [])

let register_fiber k pid h = Hashtbl.replace k.fibers pid h
let fiber_of k pid = Hashtbl.find_opt k.fibers pid
let forget_fiber k pid = Hashtbl.remove k.fibers pid

let note_location cl pid s = Hashtbl.replace cl.locations pid s
let location_hint cl pid = Hashtbl.find_opt cl.locations pid

let exit_ivar cl pid =
  match Hashtbl.find_opt cl.exit_ivars pid with
  | Some iv -> iv
  | None ->
    let iv = Engine.Ivar.create () in
    Hashtbl.replace cl.exit_ivars pid iv;
    iv

(* {1 Exactly-once request ids (locus_chaos)}

   Armed together with [Config.net_faults]: with the network lossy, every
   remote client request is tagged with a fresh [(site, incarnation, seq)]
   id and sent through the transport's retry loop, and the destination's
   reply cache guarantees the handler body runs at most once per id no
   matter how many wire copies arrive. The ack watermark piggybacked on
   every rid ([r_ack] = lowest seq this client still has outstanding,
   minus one) is what lets servers evict finished entries. *)

let rid_alloc k =
  k.rid_seq <- k.rid_seq + 1;
  let seq = k.rid_seq in
  let ack = Hashtbl.fold (fun s () acc -> min s acc) k.rid_outstanding seq - 1 in
  Hashtbl.replace k.rid_outstanding seq ();
  { Msg.r_site = k.site; r_inc = k.incarnation; r_seq = seq; r_ack = ack }

let rid_done k (rid : Msg.rid) = Hashtbl.remove k.rid_outstanding rid.r_seq

let rpc_error e = Msg.R_err (Fmt.str "%a" Transport.pp_error e)

let rpc cl ~src ~dst msg =
  match cl.cfg.Config.net_faults with
  | Some _ when src <> dst ->
    let k = cl.ks.(src) in
    let rid = rid_alloc k in
    let env = envelope cl ~rid msg in
    let p = cl.cfg.Config.retries.Config.rpc in
    let r =
      match
        Transport.rpc_retry ~attempts:p.Config.attempts
          ~backoff_us:p.Config.backoff_us ~cap_us:p.Config.cap_us cl.net ~src
          ~dst env
      with
      | Ok r -> r
      | Error e -> rpc_error e
    in
    rid_done k rid;
    r
  | Some _ | None -> (
    match Transport.rpc cl.net ~src ~dst (envelope cl msg) with
    | Ok r -> r
    | Error e -> rpc_error e)

(* Commit hot path variant: joins the RPC batch window when
   [Config.rpc_batch_window_us] is on, identical to {!rpc} otherwise.
   Only messages that are independent of each other may travel through
   here (prepares, phase-2 notifications, replica deltas): a batch is
   processed sequentially at the destination. *)
let rpc_hot cl ~src ~dst msg =
  match cl.cfg.Config.net_faults with
  | Some _ when src <> dst ->
    let k = cl.ks.(src) in
    let rid = rid_alloc k in
    let env = envelope cl ~rid msg in
    let p = cl.cfg.Config.retries.Config.rpc in
    let r =
      match
        Transport.rpc_retry_batched ~attempts:p.Config.attempts
          ~backoff_us:p.Config.backoff_us ~cap_us:p.Config.cap_us cl.net ~src
          ~dst env
      with
      | Ok r -> r
      | Error e -> rpc_error e
    in
    rid_done k rid;
    r
  | Some _ | None -> (
    match Transport.rpc_batched cl.net ~src ~dst (envelope cl msg) with
    | Ok r -> r
    | Error e -> rpc_error e)

(* Send a caller-built envelope as-is. Callers that must reuse ONE rid
   across an application-level retry loop (e.g. [send_merge], whose
   request is not idempotent) build the envelope once and resend it
   through here, so every wire copy carries the same identity. *)
let rpc_env cl ~src ~dst env =
  match Transport.rpc cl.net ~src ~dst env with
  | Ok r -> r
  | Error e -> rpc_error e

(* Transport retry calls under a [Config.retry] profile — the single
   source of truth replacing the per-callsite magic numbers the protocol
   loops used to carry. *)
let rpc_retry_p ?retry_if cl (p : Config.retry) ~src ~dst env =
  Transport.rpc_retry ?retry_if ~attempts:p.Config.attempts
    ~backoff_us:p.Config.backoff_us ~cap_us:p.Config.cap_us cl.net ~src ~dst
    env

let rpc_retry_batched_p ?retry_if cl (p : Config.retry) ~src ~dst env =
  Transport.rpc_retry_batched ?retry_if ~attempts:p.Config.attempts
    ~backoff_us:p.Config.backoff_us ~cap_us:p.Config.cap_us cl.net ~src ~dst
    env

(* {1 Paxos Commit plumbing} *)

let paxos_f cl =
  match cl.cfg.Config.commit_protocol with
  | Config.Two_phase -> None
  | Config.Paxos { f } -> Some f

let acceptor_sites cl ~coordinator f =
  Pcommit.acceptors ~n_sites:cl.cfg.Config.n_sites ~f ~coordinator

(* The [txn.in_doubt] gauge: number of prepared transactions this kernel
   currently cannot decide locally. Tracked per-txid so overlapping
   discovery paths (recovery scan, topology sweep) never double-count. *)
let enter_doubt k txid =
  if not (Hashtbl.mem k.doubted txid) then begin
    Hashtbl.replace k.doubted txid (Engine.now k.engine);
    Stats.add (stats k) "txn.in_doubt" 1
  end

let leave_doubt k txid =
  if Hashtbl.mem k.doubted txid then begin
    Hashtbl.remove k.doubted txid;
    Stats.add (stats k) "txn.in_doubt" (-1)
  end

(* {1 Namespace} *)

let replica_sites cl fid =
  match Hashtbl.find_opt cl.vol_hosts fid.File_id.vid with
  | Some hosts -> hosts
  | None -> []

let storage_site cl fid =
  let vid = fid.File_id.vid in
  let hosts =
    match Hashtbl.find_opt cl.vol_hosts vid with
    | Some hosts -> hosts
    | None -> invalid_arg "Kernel.storage_site: unknown volume"
  in
  match Hashtbl.find_opt cl.primaries vid with
  | Some s when Transport.site_up cl.net s -> s
  | Some _ | None ->
    (* Elect (or re-elect after a crash) the primary update site (§5.2). *)
    let s =
      match List.find_opt (Transport.site_up cl.net) hosts with
      | Some s -> s
      | None -> List.hd hosts
    in
    Hashtbl.replace cl.primaries vid s;
    s

let lookup cl path = Hashtbl.find_opt cl.namespace path

let bind_path cl path fid =
  Hashtbl.replace cl.namespace path fid;
  Hashtbl.replace cl.paths fid path

(* The root directory file, created on first use. Directories are ordinary
   files full of fixed-width entries, resolved through normal kernel reads
   (the name-mapping cost of §3.2 is real I/O here). *)
let root_vid cl =
  match List.find_opt (fun (_, hosts) -> List.mem 0 hosts) cl.cfg.Config.volumes with
  | Some (vid, _) -> vid
  | None -> invalid_arg "Kernel.root_vid: site 0 hosts no volume"

let root_dir cl ~src =
  match cl.root_dir with
  | Some fid -> fid
  | None -> (
    let vid = root_vid cl in
    let host = storage_site cl (File_id.make ~vid ~ino:0) in
    match rpc cl ~src ~dst:host (Msg.Create_file { vid }) with
    | Msg.R_fid fid -> (
      (* Lost race with a concurrent first resolver: keep the winner's. *)
      match cl.root_dir with
      | Some existing -> existing
      | None ->
        cl.root_dir <- Some fid;
        bind_path cl "/" fid;
        fid)
    | r -> failwith (Fmt.str "root_dir: %a" Msg.pp_reply r))
let path_of cl fid = Hashtbl.find_opt cl.paths fid

let create_file cl ~src ~path ~vid =
  if Hashtbl.mem cl.namespace path then
    invalid_arg (Printf.sprintf "Kernel.create_file: %s exists" path);
  let host =
    storage_site cl (File_id.make ~vid ~ino:0)
  in
  match rpc cl ~src ~dst:host (Msg.Create_file { vid }) with
  | Msg.R_fid fid ->
    Hashtbl.replace cl.namespace path fid;
    Hashtbl.replace cl.paths fid path;
    fid
  | r -> failwith (Fmt.str "create_file: %a" Msg.pp_reply r)

(* {1 Rule 2 of §3.3}

   When a transaction locks a range containing modified-but-uncommitted
   records, it becomes responsible for them: non-transaction owners'
   dirty bytes are adopted, and the lock is retained whatever its mode. *)
let apply_rule2 k table fid ~owner ~range =
  match owner with
  | Owner.Process _ -> ()
  | Owner.Transaction _ ->
    let dirty = Filestore.uncommitted_overlapping k.store fid range in
    if dirty <> [] then begin
      if List.exists (fun o -> not (Owner.equal o owner)) dirty then
        Filestore.adopt k.store fid ~range ~new_owner:owner;
      Lock_table.mark_retained table owner ~range
    end

(* Forward declaration: lock waiting triggers deadlock scans. *)
let deadlock_scan_ref :
    (cluster -> src:Site.t -> Owner.t list) ref =
  ref (fun _ ~src:_ -> [])

(* Forward declaration: data paths must recall delegated lock authority
   (§5.2) before consulting local lock tables. *)
let recall_locks_ref : (t -> File_id.t -> unit) ref = ref (fun _ _ -> ())

let ensure_authority_home k fid =
  if Hashtbl.mem k.delegations fid then !recall_locks_ref k fid

(* Forward declarations for locus_shard: when dynamic lock placement is
   on and a fid's lock-manager role currently lives at another site, the
   data paths below must acquire (and release) locks by message instead
   of touching local tables. The implementations live in the shard
   section further down (they need the migration machinery). *)
let shard_remote_ref : (t -> File_id.t -> bool) ref = ref (fun _ _ -> false)

let shard_ensure_remote_ref :
    (t ->
    fid:File_id.t ->
    owner:Owner.t ->
    pid:Pid.t ->
    range:Byte_range.t ->
    write:bool ->
    dirty:bool ->
    unit)
    ref =
  ref (fun _ ~fid:_ ~owner:_ ~pid:_ ~range:_ ~write:_ ~dirty:_ -> ())

let shard_momentary_acquire_ref :
    (t ->
    fid:File_id.t ->
    owner:Owner.t ->
    pid:Pid.t ->
    range:Byte_range.t ->
    write:bool ->
    Byte_range.t list)
    ref =
  ref (fun _ ~fid:_ ~owner:_ ~pid:_ ~range:_ ~write:_ -> [])

let shard_release_pieces_ref :
    (t ->
    fid:File_id.t ->
    owner:Owner.t ->
    pid:Pid.t ->
    pieces:Byte_range.t list ->
    unit)
    ref =
  ref (fun _ ~fid:_ ~owner:_ ~pid:_ ~pieces:_ -> ())

let shard_claim_home_ref : (t -> File_id.t -> unit) ref = ref (fun _ _ -> ())

let grant_lock k ~fid ~owner ~pid ~mode ~range ~non_transaction ~wait =
  Engine.consume k.engine ~instr:(costs k).Costs.lock_request_instr;
  Stats.incr (stats k) "lock.requests";
  let obs_granted () =
    obs k (Obs.Lock { owner; pid; fid; range; mode; non_transaction })
  in
  let table = ensure_table k fid in
  match Lock_table.request table ~owner ~pid ~mode ~range ~non_transaction with
  | `Granted ->
    apply_rule2 k table fid ~owner ~range;
    tr k Trace.Lock "grant %a %a %a %a" File_id.pp fid Owner.pp owner Mode.pp mode
      Byte_range.pp range;
    obs_granted ();
    `Granted
  | `Conflict owners ->
    tr k Trace.Lock "conflict %a %a blocked by %a" File_id.pp fid Owner.pp owner
      Fmt.(list ~sep:comma Owner.pp) owners;
    if not wait then `Conflict owners
    else begin
      Stats.incr (stats k) "lock.waits";
      let queue_depth = Lock_table.waiting table + 1 in
      let wait_from = Engine.now k.engine in
      let wspan =
        match k.cl.otracer with
        | None -> None
        | Some otr ->
          Some
            ( otr,
              Otrace.start otr ~site:k.site ~cat:"lock" "lock.wait"
                ~args:
                  [
                    ("fid", Fmt.str "%a" File_id.pp fid);
                    ("owner", Fmt.str "%a" Owner.pp owner);
                    ("range", Fmt.str "%a" Byte_range.pp range);
                    ("queue", string_of_int queue_depth);
                  ] )
      in
      let iv = Engine.Ivar.create () in
      let w =
        Lock_table.enqueue table ~owner ~pid ~mode ~range ~non_transaction
          ~notify:(fun ok -> ignore (Engine.try_fill k.engine iv ok))
      in
      let rec wait_loop rounds =
        match
          Engine.await_timeout iv ~timeout:k.cl.cfg.Config.deadlock_patience_us
        with
        | Some true ->
          apply_rule2 k table fid ~owner ~range;
          obs_granted ();
          `Granted
        | Some false -> `Cancelled
        | None ->
          (* Blocked suspiciously long: run the wait-for-graph service
             (§3.1). If we were the victim our wait gets cancelled and the
             next round sees it. *)
          let (_ : Owner.t list) = !deadlock_scan_ref k.cl ~src:k.site in
          if rounds >= 40 then begin
            Lock_table.cancel table w;
            `Timeout
          end
          else wait_loop (rounds + 1)
      in
      (* The waiter may also be killed while parked (site crash, cascade
         abort): the finally below still closes the span and accounts the
         wait, so contention during aborts is not invisible. *)
      let outcome = ref "killed" in
      Fun.protect
        (fun () ->
          let r = wait_loop 0 in
          (outcome :=
             match r with
             | `Granted -> "granted"
             | `Cancelled -> "cancelled"
             | `Timeout -> "timeout");
          r)
        ~finally:(fun () ->
          let waited = Engine.now k.engine - wait_from in
          Stats.hist (stats k) "lock.wait_us" waited;
          match wspan with
          | None -> ()
          | Some (otr, sp) ->
            Otrace.finish otr sp ~args:[ ("outcome", !outcome) ];
            Otrace.note_wait otr
              ~fid:(Fmt.str "%a" File_id.pp fid)
              ~lo:range.Byte_range.lo ~wait_us:waited ~queue:queue_depth
              ~blockers:(List.map (Fmt.str "%a" Owner.pp) owners))
    end

(* Ranges of [range] not already covered by [owner]'s locks in a
   sufficient mode: the pieces a conventional (Unix) access must
   momentarily synchronize on. *)
let uncovered_pieces table ~owner ~range ~write =
  let sufficient (m : Mode.t) =
    match m with
    | Mode.Exclusive -> true
    | Mode.Shared -> not write
    | Mode.Unix_access -> false
  in
  let covered =
    List.fold_left
      (fun acc (l : Lock_table.lock) ->
        if Owner.equal l.Lock_table.owner owner && sufficient l.Lock_table.mode
        then Range_set.add l.Lock_table.range acc
        else acc)
      Range_set.empty (Lock_table.locks table)
  in
  Range_set.ranges (Range_set.diff (Range_set.of_range range) covered)

exception Denied of string

(* Conventional Unix access by a non-transaction process: behave as a
   momentary holder of the appropriate Figure-1 mode on each byte range
   not already covered by the process's explicit locks. *)
let with_momentary k ~fid ~owner ~pid ~range ~write f =
  if !shard_remote_ref k fid then begin
    (* The lock-manager role lives elsewhere: hold the uncovered pieces
       there for the duration of the access. *)
    let pieces = !shard_momentary_acquire_ref k ~fid ~owner ~pid ~range ~write in
    Fun.protect f ~finally:(fun () ->
        !shard_release_pieces_ref k ~fid ~owner ~pid ~pieces)
  end
  else begin
    let table = ensure_table k fid in
    let mode = if write then Mode.Exclusive else Mode.Shared in
    let pieces = uncovered_pieces table ~owner ~range ~write in
    List.iter
      (fun piece ->
        match
          grant_lock k ~fid ~owner ~pid ~mode ~range:piece ~non_transaction:false
            ~wait:true
        with
        | `Granted -> ()
        | `Conflict _ | `Cancelled | `Timeout -> raise (Denied "access blocked"))
      pieces;
    Fun.protect f ~finally:(fun () ->
        List.iter
          (fun piece -> Lock_table.unlock table ~owner ~pid ~range:piece)
          pieces)
  end

(* Transaction access: two-phase locks are acquired implicitly at record
   access time when not already held (§3.1). *)
let ensure_txn_lock k ~fid ~owner ~pid ~range ~write =
  if !shard_remote_ref k fid then begin
    (* Rule 2 needs the data (here, at the storage site) and the lock
       state (at the current role owner): detect dirty overlap locally,
       tell the owner so it retains the lock, and adopt the bytes here. *)
    let dirty = Filestore.uncommitted_overlapping k.store fid range <> [] in
    !shard_ensure_remote_ref k ~fid ~owner ~pid ~range ~write ~dirty;
    if dirty then Filestore.adopt k.store fid ~range ~new_owner:owner
  end
  else begin
    let table = ensure_table k fid in
    if not (Lock_table.owner_covers table ~owner ~range ~write) then begin
      let mode = if write then Mode.Exclusive else Mode.Shared in
      match
        grant_lock k ~fid ~owner ~pid ~mode ~range ~non_transaction:false
          ~wait:true
      with
      | `Granted -> Stats.incr (stats k) "lock.implicit"
      | `Cancelled -> raise (Denied "transaction aborted while waiting for lock")
      | `Timeout -> raise (Denied "lock timeout")
      | `Conflict _ -> raise (Denied "lock conflict")
    end
  end

(* {1 Storage-site operations (run at the file's storage site)} *)

(* A degraded copy must not originate new versions: two sites both
   bumping a file to version [n] with different contents could never be
   reconciled. Reads stay available (flagged degraded); updates wait for
   reconciliation. *)
let ensure_writable_vid k vid =
  match Hashtbl.find_opt k.cl.vol_hosts vid with
  | Some hosts when List.length hosts > 1 ->
    if Status.state k.repl vid = Status.Degraded then
      raise
        (Denied
           (Printf.sprintf
              "vol%d replica degraded: updates refused until reconciled" vid))
  | Some _ | None -> ()

let ensure_writable k fid = ensure_writable_vid k fid.File_id.vid

let ss_read k ~fid ~reader ~pid ~pos ~len =
  if len <= 0 then Bytes.create 0
  else begin
    ensure_authority_home k fid;
    let range = Byte_range.of_pos_len ~pos ~len in
    let data =
      match reader with
      | Owner.Transaction _ ->
        ensure_txn_lock k ~fid ~owner:reader ~pid ~range ~write:false;
        Filestore.read k.store fid ~pos ~len
      | Owner.Process _ ->
        with_momentary k ~fid ~owner:reader ~pid ~range ~write:false (fun () ->
            Filestore.read k.store fid ~pos ~len)
    in
    let access =
      { Obs.owner = reader; pid; fid; range; data = Bytes.to_string data }
    in
    (if List.length (replica_sites k.cl fid) > 1 then
       (* Replicated volume: record the serving version so the checker
          can compare copies (one-copy serializability). *)
       obs k
         (Obs.Replica_read
            {
              access;
              version = Filestore.committed_version k.store fid;
              degraded = Status.state k.repl fid.File_id.vid = Status.Degraded;
            })
     else obs k (Obs.Read access));
    data
  end

let ss_write k ~fid ~owner ~pid ~pos ~data =
  let len = Bytes.length data in
  if len > 0 then begin
    ensure_authority_home k fid;
    ensure_writable k fid;
    let range = Byte_range.of_pos_len ~pos ~len in
    (match owner with
    | Owner.Transaction _ ->
      ensure_txn_lock k ~fid ~owner ~pid ~range ~write:true;
      (* Rule 2 may apply even when the lock was acquired earlier. *)
      Filestore.adopt k.store fid ~range ~new_owner:owner;
      Filestore.write k.store fid ~owner ~pos data
    | Owner.Process _ ->
      with_momentary k ~fid ~owner ~pid ~range ~write:true (fun () ->
          (* A later conventional writer takes over earlier conventional
             writers' uncommitted bytes (§5: uncommitted changes are
             visible and may be committed by anyone). *)
          Filestore.adopt k.store fid ~range ~new_owner:owner;
          Filestore.write k.store fid ~owner ~pos data));
    obs k (Obs.Write { owner; pid; fid; range; data = Bytes.to_string data })
  end

(* Atomic lock-and-extend at end of file (§3.2): retry with a fresh EOF
   whenever someone else extended the file while we waited. *)
let ss_lock_append k ~fid ~owner ~pid ~len ~mode ~non_transaction =
  ensure_authority_home k fid;
  (* Atomic EOF-and-lock needs the lock state next to the file size: pull
     the migrated role home first (no-op when placement is static). *)
  !shard_claim_home_ref k fid;
  let rec attempt tries =
    if tries > 100 then raise (Denied "lock_append: livelock")
    else begin
      let eof = Filestore.size k.store fid in
      let range = Byte_range.of_pos_len ~pos:eof ~len in
      match grant_lock k ~fid ~owner ~pid ~mode ~range ~non_transaction ~wait:true with
      | `Granted ->
        let eof' = Filestore.size k.store fid in
        if eof' = eof then eof
        else begin
          (* The file grew while we waited: our lock no longer covers the
             true end of file. Release and retry against the new EOF. *)
          let table = ensure_table k fid in
          Lock_table.unlock table ~owner ~pid ~range;
          attempt (tries + 1)
        end
      | `Conflict _ | `Cancelled | `Timeout -> raise (Denied "lock_append failed")
    end
  in
  attempt 0

(* {1 Replication (§5.2)}

   Every volume has one primary update site (its storage site) plus any
   number of secondaries. All locking and all updates go through the
   primary; each commit bumps the file's version number there, and the
   committed pages propagate to the secondaries as versioned deltas
   during phase 2, before the transaction's locks are released — so a
   lock-covered read served by a secondary is one-copy fresh. The
   version numbers make missed propagation detectable: a delta that is
   not exactly the next version triggers a snapshot pull, and partitions
   or restarts mark whole volume copies degraded until a reconciliation
   pass has caught them up from their co-hosts. *)

let hosted_replicated_vids k =
  List.filter_map
    (fun (vid, hosts) ->
      if List.mem k.site hosts && List.length hosts > 1 then Some vid else None)
    k.cl.cfg.Config.volumes

(* Full versioned snapshot of the committed copy, for pulls and for
   propagating freshly created files. *)
let replica_snapshot k fid =
  let version = Filestore.committed_version k.store fid in
  let size = Filestore.committed_size k.store fid in
  let pages =
    List.filter_map
      (fun i ->
        Option.map (fun b -> (i, b)) (Filestore.committed_page k.store fid i))
      (Filestore.committed_page_indices k.store fid)
  in
  Update.full ~fid ~version ~size pages

(* Propagate a file's newly committed version to the other hosts of its
   volume (§5.2 commit propagation from the primary update site).
   [indices] narrows the payload to the pages one commit touched; without
   it a full snapshot is sent. [initial] marks the create-time seeding of
   the version-1 file, which even the [Flags.drop_propagation] self-test
   fault lets through — the simulated breakage is "commits stop reaching
   existing copies", not "the file never replicates at all" (the latter
   would make every secondary read fail over to the primary and hide the
   staleness the checker is supposed to catch). *)
let propagate_replicas k ?indices ?(initial = false) fid =
  if
    k.cl.cfg.Config.replica_sync
    && ((not !Flags.drop_propagation) || initial)
    && Filestore.file_exists k.store fid
  then begin
    let others = List.filter (fun s -> s <> k.site) (replica_sites k.cl fid) in
    if others <> [] then begin
      let u =
        match indices with
        | None -> replica_snapshot k fid
        | Some idxs ->
          let version = Filestore.committed_version k.store fid in
          let size = Filestore.committed_size k.store fid in
          let pages =
            List.filter_map
              (fun i ->
                Option.map
                  (fun b -> (i, b))
                  (Filestore.committed_page k.store fid i))
              (List.sort_uniq Int.compare idxs)
          in
          Update.delta ~fid ~version ~size pages
      in
      let pctx = wire_ctx k.cl in
      let send dst () =
        if Transport.reachable k.cl.net k.site dst then
          with_span k ?parent:pctx ~cat:"repl" "replica.propagate"
            ~args:
              [
                ("dst", string_of_int dst);
                ("version", string_of_int u.Update.version);
              ]
          @@ fun () ->
          match
            rpc_retry_batched_p k.cl k.cl.cfg.Config.retries.Config.replica
              ~src:k.site ~dst
              (envelope k.cl (Msg.Replica_commit { update = u }))
          with
          | Ok Msg.R_ok ->
            obs k (Obs.Propagate { fid; version = u.Update.version; dst });
            Stats.incr (stats k) "replica.propagate";
            Stats.add (stats k) "replica.propagate_bytes" (Update.bytes u)
          | Ok _ | Error _ ->
            (* The secondary missed this version; it catches up in its
               reconciliation pass after the next topology event. *)
            Stats.incr (stats k) "replica.propagate_miss"
      in
      (* With a batch window on, send to all secondaries concurrently so
         one commit's deltas (and any concurrent commit's) can coalesce
         per destination; without one, keep today's sequential order. *)
      if k.cl.cfg.Config.rpc_batch_window_us > 0 then
        par_iter k ~name:"repl-send" (List.map send others)
      else List.iter (fun dst -> send dst ()) others
    end
  end

(* Reconciliation: pull every committed version this copy is missing
   from the reachable co-hosts. The copy becomes fresh again only once a
   full pass has seen answers from all of them — a partial pass cannot
   rule out a missed update hiding at the unreachable host. Generation
   guards let a newer degrade event supersede a running reconciler. *)
let rec reconcile k ~vid ~gen tries =
  let cl = k.cl in
  let live () =
    k.alive
    && Status.generation k.repl vid = gen
    && Status.state k.repl vid = Status.Degraded
  in
  let retry () =
    (* Bounded: a copy that cannot reconcile (co-host down for good)
       just stays degraded until the next topology event re-triggers
       us — an unbounded loop would keep the simulation from draining. *)
    if tries < 120 then begin
      Engine.sleep 500_000;
      if live () then reconcile k ~vid ~gen (tries + 1)
    end
    else Stats.incr (stats k) "replica.reconcile_gave_up"
  in
  if live () then begin
    if not k.recovered then retry ()
      (* Our own recovery may still be applying in-doubt commits; a pass
         now could go fresh while missing them. *)
    else begin
      let others =
        match Hashtbl.find_opt cl.vol_hosts vid with
        | Some hosts -> List.filter (fun s -> s <> k.site) hosts
        | None -> []
      in
      let complete = ref true in
      List.iter
        (fun h ->
          if not (Transport.reachable cl.net k.site h) then complete := false
          else begin
            match rpc cl ~src:k.site ~dst:h (Msg.Replica_versions { vid }) with
            | Msg.R_versions vs ->
              List.iter
                (fun (ino, v) ->
                  let fid = File_id.make ~vid ~ino in
                  if v > Filestore.committed_version k.store fid then begin
                    match rpc cl ~src:k.site ~dst:h (Msg.Replica_pull { fid }) with
                    | Msg.R_update u ->
                      if
                        Filestore.install_replica k.store fid
                          ~version:u.Update.version ~size:u.Update.size
                          ~full:true ~pages:u.Update.pages
                      then begin
                        obs k
                          (Obs.Reconcile
                             { fid; version = u.Update.version; src = h });
                        Stats.incr (stats k) "replica.reconciled"
                      end
                    | _ -> complete := false
                  end)
                vs
            | _ -> complete := false
          end)
        others;
      if !complete && live () then begin
        Status.refresh k.repl vid;
        tr k Trace.Recovery "replica vol%d reconciled, fresh again" vid;
        Stats.incr (stats k) "replica.reconcile_passes"
      end
      else retry ()
    end
  end

let mark_degraded k vid =
  if k.alive then begin
    let gen = Status.degrade k.repl vid in
    ignore
      (Engine.spawn
         ~name:(Printf.sprintf "reconcile@%d" k.site)
         ~site:k.site k.engine
         (fun () -> reconcile k ~vid ~gen 0))
  end

(* Apply a propagated commit at a secondary. Exactly-next versions (and
   full snapshots) install; duplicates are ignored; a gap means we missed
   a delta and triggers an immediate snapshot pull from the sender. *)
let ss_replica_commit k ~src (u : Update.t) =
  let fid = u.Update.fid in
  let vid = fid.File_id.vid in
  if Filestore.volume k.store ~vid = None then Msg.R_err "volume not hosted"
  else begin
    let local = Filestore.committed_version k.store fid in
    if u.Update.version <= local then Msg.R_ok (* duplicate retransmission *)
    else if u.Update.full || u.Update.version = local + 1 then begin
      ignore
        (Filestore.install_replica k.store fid ~version:u.Update.version
           ~size:u.Update.size ~full:u.Update.full ~pages:u.Update.pages);
      Stats.incr (stats k) "replica.apply";
      Msg.R_ok
    end
    else begin
      Stats.incr (stats k) "replica.gaps";
      match rpc k.cl ~src:k.site ~dst:src (Msg.Replica_pull { fid }) with
      | Msg.R_update u' ->
        if
          Filestore.install_replica k.store fid ~version:u'.Update.version
            ~size:u'.Update.size ~full:true ~pages:u'.Update.pages
        then obs k (Obs.Reconcile { fid; version = u'.Update.version; src });
        Msg.R_ok
      | _ ->
        (* Cannot fill the gap right now: the whole copy is suspect. *)
        mark_degraded k vid;
        Msg.R_ok
    end
  end

let ss_replica_pull k ~fid =
  if not k.recovered then Msg.R_retry
  else if not (Filestore.file_exists k.store fid) then Msg.R_err "not found"
  else Msg.R_update (replica_snapshot k fid)

let ss_replica_versions k ~vid =
  if not k.recovered then Msg.R_retry
  else
    match Filestore.volume k.store ~vid with
    | None -> Msg.R_err "volume not hosted"
    | Some vol ->
      Msg.R_versions
        (List.map
           (fun ino -> (ino, Volume.inode_version_nosim vol ino))
           (Volume.inode_numbers vol))

(* Serve a read from the local (secondary) copy's committed state. A
   fresh copy answers directly — synchronous propagation before lock
   release makes that one-copy fresh under the client's lock. A degraded
   copy bounces the client to the primary while one is reachable, and
   otherwise serves the best it has, flagged as failover. *)
let ss_replica_read k ~fid ~reader ~pid ~pos ~len =
  let vid = fid.File_id.vid in
  if not (List.mem k.site (replica_sites k.cl fid)) then
    Msg.R_err "not a replica host"
  else if len <= 0 then Msg.R_data (Bytes.create 0)
  else begin
    let serve ~degraded =
      let data = Filestore.read_committed_any k.store fid ~pos ~len in
      let range = Byte_range.of_pos_len ~pos ~len in
      obs k
        (Obs.Replica_read
           {
             access =
               { owner = reader; pid; fid; range; data = Bytes.to_string data };
             version = Filestore.committed_version k.store fid;
             degraded;
           });
      Stats.incr (stats k)
        (if degraded then "replica.reads_degraded" else "replica.reads");
      Msg.R_data data
    in
    if Status.state k.repl vid = Status.Fresh then serve ~degraded:false
    else begin
      let primary = storage_site k.cl fid in
      if primary <> k.site && Transport.reachable k.cl.net k.site primary then
        Msg.R_retry
      else begin
        obs k (Obs.Failover { vid; fid });
        Stats.incr (stats k) "replica.failover_reads";
        serve ~degraded:true
      end
    end
  end

(* {1 Lock-control migration (§5.2)}

   A storage site may temporarily transfer its ability to manage a file's
   locks to a site whose processes are making heavy use of them. Clients
   learn the current authority through [R_redirect] replies and a hint
   map. Authority returns home ("recall") before anything that needs the
   lock state next to the data: prepare, data access with implicit
   locking, commit/abort lock release. *)

let lock_authority_hint cl fid = Hashtbl.find_opt cl.lock_authority fid
let note_lock_authority cl fid s = Hashtbl.replace cl.lock_authority fid s

let marshal_locks (locks : Lock_table.lock list) = Marshal.to_string locks []
let unmarshal_locks s : Lock_table.lock list = Marshal.from_string s 0

(* Where should this site handle (or send) a lock operation on [fid]? *)
let lock_route k fid =
  if Hashtbl.mem k.hosted fid then `Here
  else if k.site = storage_site k.cl fid then begin
    match Hashtbl.find_opt k.delegations fid with
    | Some d -> `Redirect d
    | None -> `Here
  end
  else `Redirect (storage_site k.cl fid)

(* Take lock management back from the delegate. On delegate crash the
   lock state dies with its volatile tables — exactly like any other
   volatile lock state lost in a crash; the topology sweep aborts the
   owning transactions. *)
let recall_locks k fid =
  match Hashtbl.find_opt k.delegations fid with
  | None -> ()
  | Some d ->
    let rec go tries =
      match rpc k.cl ~src:k.site ~dst:d (Msg.Recall_locks { fid }) with
      | Msg.R_data payload ->
        Hashtbl.replace k.locks fid (Lock_table.restore fid (unmarshal_locks (Bytes.to_string payload)));
        Hashtbl.remove k.delegations fid;
        note_lock_authority k.cl fid k.site;
        Stats.incr (stats k) "delegation.recalls"
      | Msg.R_retry when tries < 100 ->
        Engine.sleep 2_000;
        go (tries + 1)
      | _ ->
        (* Delegate unreachable: authority (and its volatile lock state)
           is gone. Resume with an empty table. *)
        Hashtbl.replace k.locks fid (Lock_table.create fid);
        Hashtbl.remove k.delegations fid;
        note_lock_authority k.cl fid k.site;
        Stats.incr (stats k) "delegation.lost"
    in
    go 0

let () = recall_locks_ref := recall_locks

(* Called at the home site on each remote lock request: hand authority to
   a site that keeps coming back. *)
let maybe_delegate k fid ~src =
  let cfg = k.cl.cfg in
  if cfg.Config.lock_delegation && src <> k.site then begin
    let streak =
      match Hashtbl.find_opt k.lock_origins fid with
      | Some (s, n) when s = src -> n + 1
      | Some _ | None -> 1
    in
    Hashtbl.replace k.lock_origins fid (src, streak);
    if
      streak >= cfg.Config.delegation_threshold
      && not (Hashtbl.mem k.delegations fid)
    then begin
      let table = ensure_table k fid in
      if Lock_table.waiting table = 0 then begin
        let payload = marshal_locks (Lock_table.locks table) in
        match rpc k.cl ~src:k.site ~dst:src (Msg.Delegate_locks { fid; payload }) with
        | Msg.R_ok ->
          Hashtbl.remove k.locks fid;
          Hashtbl.replace k.delegations fid src;
          Hashtbl.remove k.lock_origins fid;
          note_lock_authority k.cl fid src;
          tr k Trace.Lock "delegated %a to site%d" File_id.pp fid src;
          Stats.incr (stats k) "delegation.out"
        | _ -> ()
      end
    end
  end
  else if src = k.site then Hashtbl.remove k.lock_origins fid

(* {1 Dynamic lock placement (locus_shard)}

   Scale-out generalization of §5.2: instead of a per-file delegation
   that always returns home, each file's lock-manager role has a current
   owner recorded in a sharded directory (authoritative per-shard
   directory sites, {!Locus_repl.Placement.directory}), and the role
   migrates toward the site generating the traffic. Every site keeps a
   stale-tolerant hint cache; a wrong hint costs a redirect (or a retry),
   never a mis-grant, because ownership changes are epoch CAS operations
   at the directory and a transfer carrying a stale epoch is fenced by
   its receiver. The lock table (including retained locks of in-flight
   transactions) rides the transfer envelope, so 2PC / Paxos Commit
   survive a mid-transaction handoff: phase 2 releases chase the role to
   wherever it lives now. *)

let shard_dir_exn cl =
  match cl.shard_dir with
  | Some d -> d
  | None -> invalid_arg "Kernel: dynamic lock placement is not enabled"

(* Epoch-0 owner of a never-claimed fid: the first configured host of its
   volume — static, so every site derives the same default without
   consulting anyone. *)
let shard_default_owner cl fid =
  match Hashtbl.find_opt cl.vol_hosts fid.File_id.vid with
  | Some (h :: _) -> h
  | Some [] | None -> 0

(* Forward declaration: losing transferred lock state aborts the owning
   transactions, but [abort_transaction] is defined further down. *)
let shard_abort_txn_ref : (cluster -> src:Site.t -> Txid.t -> unit) ref =
  ref (fun _ ~src:_ _ -> ())

(* Synchronous on purpose: both callers run inside [shard_migrate]'s
   hand-off window (shard_migrating set, every request bouncing) and the
   window must not close until the stranded owners are dead — the
   Shard_handoff handshake tells the new owner "settled" the moment the
   window lifts, and granting from a fresh table while these
   transactions still rely on their lost locks breaks 2PL. *)
let shard_abort_table_owners k table =
  let owners =
    List.sort_uniq compare
      (List.filter_map
         (fun (l : Lock_table.lock) ->
           match l.Lock_table.owner with
           | Owner.Transaction txid -> Some txid
           | Owner.Process _ -> None)
         (Lock_table.locks table))
  in
  List.iter (fun txid -> !shard_abort_txn_ref k.cl ~src:k.site txid) owners

(* Ask the directory who owns the role. [None] when the directory site is
   unreachable — the caller must bounce, never guess. *)
let shard_lookup k fid =
  let cl = k.cl in
  let dir = shard_dir_exn cl in
  let default = shard_default_owner cl fid in
  let ds = Shard_dir.site_of dir fid in
  if ds = k.site then begin
    Stats.incr (stats k) "shard.dir_lookups";
    Some (Shard_dir.lookup dir fid ~default)
  end
  else if not (Transport.reachable cl.net k.site ds) then None
  else
    match rpc cl ~src:k.site ~dst:ds (Msg.Shard_lookup { fid }) with
    | Msg.R_owner { owner; epoch; prev } -> Some (owner, epoch, prev)
    | _ -> None

(* Hand-off handshake (run before adopting an epoch > 0 record from a
   fresh table): the last claimer may still be mid-transfer, in which
   case the previous epoch's lock table — and every transaction it
   protects — is still live somewhere, and granting from an empty table
   here would let new locks collide with them. Safe to proceed once the
   claimer reports the hand-off settled (it delivered the envelope, or
   aborted the stranded owners before standing down), or once it has
   crashed outright (its volatile table died with it and the crash sweep
   aborts the owners). A merely unreachable claimer keeps us bouncing:
   never guess. *)
let shard_adoptable k fid ~epoch ~prev =
  epoch = 0 || prev = k.site
  || (not (Transport.site_up k.cl.net prev))
  || Transport.reachable k.cl.net k.site prev
     && (match rpc k.cl ~src:k.site ~dst:prev (Msg.Shard_handoff { fid }) with
        | Msg.R_int 0 -> true
        | _ -> false)

(* Install the role here without a transfer: the directory names this
   site owner (epoch-0 default, or a re-homing) but no envelope ever
   arrived. Rejected when we already stood down at a later epoch.
   An epoch > 0 adoption is a real ownership change (a claim happened
   but its table transfer was lost — e.g. to message drops), so it must
   be announced like any migration or the epoch-fence oracle would still
   hold the previous owner responsible for every later grant. [from_site
   = k.site] marks it as an adoption: no envelope ever arrived. *)
let shard_adopt k fid ~epoch =
  let ok =
    match Hashtbl.find_opt k.shard_epochs fid with
    | Some e -> epoch >= e
    | None -> true
  in
  if ok then begin
    let fresh =
      epoch > 0
      && ((not (Hashtbl.mem k.shard_owned fid))
         || (match Hashtbl.find_opt k.shard_epochs fid with
            | Some e -> epoch > e
            | None -> true))
    in
    Hashtbl.replace k.shard_owned fid ();
    Hashtbl.replace k.shard_epochs fid epoch;
    ignore (ensure_table k fid);
    if fresh then begin
      Stats.incr (stats k) "shard.adoptions";
      obs k (Obs.Migrate { fid; from_site = k.site; to_site = k.site; epoch })
    end
  end;
  ok

(* Where should this site handle (or send) a lock operation on [fid]?
   Trust the local hint first; a stale hint redirects (the fence at the
   true owner keeps mis-grants impossible), a missing hint asks the
   directory, an unreachable directory bounces for retry. *)
let shard_route k fid =
  (* A transfer in flight froze the table snapshot: admitting operations
     now would mutate state the destination will never see. Bounce them
     until the hand-off settles one way or the other. *)
  if Hashtbl.mem k.shard_migrating fid then `Retry
  else if Hashtbl.mem k.shard_owned fid then `Here
  else
    match Hashtbl.find_opt k.shard_hints fid with
    | Some s when s <> k.site -> `Redirect s
    | Some _ | None -> (
      match shard_lookup k fid with
      | None -> `Retry
      | Some (owner, epoch, prev) ->
        if owner = k.site then begin
          if shard_adoptable k fid ~epoch ~prev && shard_adopt k fid ~epoch
          then `Here
          else `Retry
        end
        else begin
          Hashtbl.replace k.shard_hints fid owner;
          `Redirect owner
        end)

let note_migrated k fid ~from_site ~epoch =
  Stats.incr (stats k) "shard.migrations";
  obs k (Obs.Migrate { fid; from_site; to_site = k.site; epoch });
  match k.cl.otracer with
  | None -> ()
  | Some otr ->
    Otrace.note_migration otr
      ~fid:(Fmt.str "%a" File_id.pp fid)
      ~from_site ~to_site:k.site ~epoch

(* Move the role (and its lock table) from this site to [dst]: mark the
   transfer, win the epoch CAS at the directory, ship the table, stand
   down. Any failure leaves the directory authoritative — we either keep
   serving (claim never happened) or cede ownership (claim happened but
   the transfer was lost; stranded transactions are aborted). *)
let shard_migrate k fid ~dst =
  let cl = k.cl in
  if
    Hashtbl.mem k.shard_owned fid
    && (not (Hashtbl.mem k.shard_migrating fid))
    && dst <> k.site
    && Transport.reachable cl.net k.site dst
  then begin
    let table = ensure_table k fid in
    if Lock_table.transferable table then begin
      Hashtbl.replace k.shard_migrating fid ();
      Fun.protect ~finally:(fun () -> Hashtbl.remove k.shard_migrating fid)
      @@ fun () ->
      with_span k ~cat:"shard" "shard.migrate"
        ~args:
          [ ("fid", Fmt.str "%a" File_id.pp fid); ("dst", string_of_int dst) ]
      @@ fun () ->
      let cur_epoch =
        match Hashtbl.find_opt k.shard_epochs fid with Some e -> e | None -> 0
      in
      let dir = shard_dir_exn cl in
      let default = shard_default_owner cl fid in
      let ds = Shard_dir.site_of dir fid in
      let claim =
        if ds = k.site then begin
          Stats.incr (stats k) "shard.dir_claims";
          match
            Shard_dir.claim dir fid ~default ~new_owner:dst
              ~from_epoch:cur_epoch ~claimer:k.site
          with
          | Ok e -> `Won e
          | Error (o, e) ->
            Stats.incr (stats k) "shard.dir_claim_stale";
            `Lost (o, e)
        end
        else
          match
            rpc cl ~src:k.site ~dst:ds
              (Msg.Shard_claim { fid; new_owner = dst; from_epoch = cur_epoch })
          with
          | Msg.R_owner { owner; epoch; prev = _ } ->
            if owner = dst && epoch = cur_epoch + 1 then `Won epoch
            else `Lost (owner, epoch)
          | _ -> `Unreachable
      in
      match claim with
      | `Unreachable -> ()  (* directory partitioned away: keep serving *)
      | `Lost (owner, epoch) ->
        (* Fenced: someone re-homed the role out from under us (our copy
           of the lock state is dead). Drop it and abort its owners. *)
        Stats.incr (stats k) "shard.fenced";
        Hashtbl.remove k.shard_owned fid;
        Hashtbl.remove k.locks fid;
        Hashtbl.remove k.shard_origins fid;
        Hashtbl.replace k.shard_epochs fid epoch;
        Hashtbl.replace k.shard_hints fid owner;
        shard_abort_table_owners k table
      | `Won new_epoch -> (
        let payload = marshal_locks (Lock_table.locks table) in
        match
          rpc_retry_p cl cl.cfg.Config.retries.Config.shard
            ~retry_if:(fun r -> r = Msg.R_retry)
            ~src:k.site ~dst
            (envelope cl (Msg.Shard_migrate { fid; epoch = new_epoch; payload }))
        with
        | Ok Msg.R_ok ->
          tr k Trace.Lock "shard migrate %a -> site%d e%d" File_id.pp fid dst
            new_epoch;
          Hashtbl.remove k.shard_origins fid;
          if !Locus_shard.Flags.break_shard then
            (* Self-test fault: fail to stand down — keep the table and
               keep granting at the stale epoch, and wipe the global
               client hint so traffic still reaches us. The epoch-fence
               oracle must flag the resulting split-brain grants. *)
            Hashtbl.remove cl.lock_authority fid
          else begin
            Hashtbl.remove k.shard_owned fid;
            Hashtbl.remove k.locks fid;
            Hashtbl.replace k.shard_epochs fid new_epoch;
            Hashtbl.replace k.shard_hints fid dst;
            note_lock_authority cl fid dst
          end
        | Ok _ | Error _ ->
          (* The directory now names [dst] owner but the table never
             arrived: cede ownership (the fence makes our copy unusable)
             and abort the transactions whose lock state was lost — same
             failure mode as a delegate crash in §5.2. *)
          Stats.incr (stats k) "shard.transfer_lost";
          Hashtbl.remove k.shard_owned fid;
          Hashtbl.remove k.locks fid;
          Hashtbl.remove k.shard_origins fid;
          Hashtbl.replace k.shard_epochs fid new_epoch;
          Hashtbl.replace k.shard_hints fid dst;
          shard_abort_table_owners k table)
    end
  end

(* Called at the owner on each lock request: hand the role to a site that
   keeps coming back (threshold policy on remote-acquisition streaks). *)
let maybe_shard_migrate k fid ~src =
  if src = k.site then Hashtbl.remove k.shard_origins fid
  else begin
    let streak =
      match Hashtbl.find_opt k.shard_origins fid with
      | Some (s, n) when s = src -> n + 1
      | Some _ | None -> 1
    in
    Hashtbl.replace k.shard_origins fid (src, streak);
    if
      Shard_policy.decide k.cl.cfg.Config.shard_policy ~streak
      && not (Hashtbl.mem k.shard_migrating fid)
    then shard_migrate k fid ~dst:src
  end

(* Send a lock-control message to the fid's current owner, chasing hints
   and redirects, falling back to a directory lookup when a hop bounces
   or is unreachable. *)
let shard_owner_rpc k fid msg =
  let cl = k.cl in
  let refresh dst =
    Hashtbl.remove k.shard_hints fid;
    Engine.sleep 2_000;
    match shard_lookup k fid with
    | Some (owner, _, _) ->
      Hashtbl.replace k.shard_hints fid owner;
      owner
    | None -> dst
  in
  let rec go dst tries =
    if tries > 24 then Msg.R_err "shard owner unreachable"
    else begin
      let reply =
        if not (Transport.reachable cl.net k.site dst) then `Down
        else
          match Transport.rpc cl.net ~src:k.site ~dst (envelope cl msg) with
          | Ok r -> `R r
          | Error _ -> `Down
      in
      match reply with
      | `Down | `R Msg.R_retry -> go (refresh dst) (tries + 1)
      | `R (Msg.R_redirect d) ->
        Stats.incr (stats k) "shard.forwards";
        Hashtbl.replace k.shard_hints fid d;
        go d (tries + 1)
      | `R r -> r
    end
  in
  let start =
    match Hashtbl.find_opt k.shard_hints fid with
    | Some s -> s
    | None -> shard_default_owner cl fid
  in
  go start 0

(* Data-path hook bodies (see the forward declarations above). *)

let shard_remote k fid =
  if
    (not (sharded k.cl))
    || Hashtbl.mem k.shard_owned fid
       && not (Hashtbl.mem k.shard_migrating fid)
  then false
  else
    let rec go tries =
      match shard_route k fid with
      | `Here -> false
      | `Redirect _ -> true
      | `Retry when tries < 24 ->
        Engine.sleep 2_000;
        go (tries + 1)
      | `Retry -> raise (Denied "shard directory unreachable")
    in
    go 0

let () = shard_remote_ref := shard_remote

let () =
  shard_ensure_remote_ref :=
    fun k ~fid ~owner ~pid ~range ~write ~dirty ->
      match
        shard_owner_rpc k fid
          (Msg.Ensure_lock { fid; owner; pid; range; write; momentary = false; dirty })
      with
      | Msg.R_ok -> ()
      | Msg.R_err e -> raise (Denied e)
      | _ -> raise (Denied "shard lock acquisition failed")

let () =
  shard_momentary_acquire_ref :=
    fun k ~fid ~owner ~pid ~range ~write ->
      match
        shard_owner_rpc k fid
          (Msg.Ensure_lock
             { fid; owner; pid; range; write; momentary = true; dirty = false })
      with
      | Msg.R_pieces pieces -> pieces
      | Msg.R_err e -> raise (Denied e)
      | _ -> raise (Denied "shard momentary lock failed")

let () =
  shard_release_pieces_ref :=
    fun k ~fid ~owner ~pid ~pieces ->
      if pieces <> [] then
        ignore
          (shard_owner_rpc k fid
             (Msg.Release_locks { fid; owner; pid; ranges = Some pieces; cancel = false }))

(* Phase-2 lock release under dynamic placement: drop the transaction's
   (or exiting process's) locks at whatever site holds the role now. *)
let shard_release k fid ~owner ~cancel =
  if
    Hashtbl.mem k.shard_owned fid
    && not (Hashtbl.mem k.shard_migrating fid)
  then begin
    match lock_table k fid with
    | Some table ->
      if cancel then Lock_table.cancel_owner table owner;
      Lock_table.release_owner table owner
    | None -> ()
  end
  else
    ignore
      (shard_owner_rpc k fid
         (Msg.Release_locks
            {
              fid;
              owner;
              pid = Pid.make ~origin:k.site ~num:0;
              ranges = None;
              cancel;
            }))

(* Re-home the role to this site directly through the directory — only
   legitimate when the recorded owner is {e crashed} (its volatile lock
   state is gone); a merely partitioned owner keeps the role, so both
   sides of the split agree who grants. Transactions whose uncommitted
   bytes were protected by the lost table are aborted. *)
let shard_rehome k fid =
  let cl = k.cl in
  match shard_lookup k fid with
  | None -> false
  | Some (owner, epoch, prev) ->
    if owner = k.site then
      shard_adoptable k fid ~epoch ~prev && shard_adopt k fid ~epoch
    else if Transport.site_up cl.net owner then false
    else begin
      let dir = shard_dir_exn cl in
      let default = shard_default_owner cl fid in
      let ds = Shard_dir.site_of dir fid in
      let claim =
        if ds = k.site then begin
          Stats.incr (stats k) "shard.dir_claims";
          match
            Shard_dir.claim dir fid ~default ~new_owner:k.site
              ~from_epoch:epoch ~claimer:k.site
          with
          | Ok e -> Some e
          | Error _ ->
            Stats.incr (stats k) "shard.dir_claim_stale";
            None
        end
        else
          match
            rpc cl ~src:k.site ~dst:ds
              (Msg.Shard_claim { fid; new_owner = k.site; from_epoch = epoch })
          with
          | Msg.R_owner { owner = o; epoch = e; prev = _ }
            when o = k.site && e = epoch + 1
            ->
            Some e
          | _ -> None
      in
      match claim with
      | None -> false
      | Some new_epoch ->
        Hashtbl.replace k.locks fid (Lock_table.create fid);
        Hashtbl.replace k.shard_owned fid ();
        Hashtbl.replace k.shard_epochs fid new_epoch;
        Hashtbl.replace k.shard_hints fid k.site;
        note_lock_authority cl fid k.site;
        Stats.incr (stats k) "shard.rehomed";
        note_migrated k fid ~from_site:owner ~epoch:new_epoch;
        (* The lost table may have protected in-doubt bytes stored here:
           abort their transactions before anyone locks over them. *)
        if Filestore.is_open k.store fid || Filestore.file_exists k.store fid
        then begin
          let span = Byte_range.of_pos_len ~pos:0 ~len:max_int in
          List.iter
            (fun o ->
              match o with
              | Owner.Transaction txid
                when not (Participant.is_prepared k.participant txid) ->
                ignore
                  (Engine.spawn ~name:"shard-abort" ~site:k.site k.engine
                     (fun () -> !shard_abort_txn_ref k.cl ~src:k.site txid))
              | Owner.Transaction _ | Owner.Process _ -> ())
            (Filestore.uncommitted_overlapping k.store fid span)
        end;
        true
    end

(* Pull the role to this site (cooperative transfer via the current
   owner; direct re-home when that owner crashed). Used by the EOF path
   and by recovery before relocking prepared intentions. *)
let shard_claim_home k fid =
  let home () =
    Hashtbl.mem k.shard_owned fid
    && not (Hashtbl.mem k.shard_migrating fid)
  in
  if sharded k.cl && not (home ()) then begin
    let cl = k.cl in
    let rec go tries =
      if home () then ()
      else if tries > 24 then raise (Denied "shard claim-home failed")
      else
        match shard_route k fid with
        | `Here -> ()
        | `Retry ->
          Engine.sleep 2_000;
          go (tries + 1)
        | `Redirect d ->
          if Transport.reachable cl.net k.site d then begin
            (match
               rpc cl ~src:k.site ~dst:d
                 (Msg.Shard_migrate_req { fid; dst = k.site })
             with
            | Msg.R_ok -> ()
            | _ -> Hashtbl.remove k.shard_hints fid);
            if not (home ()) then begin
              Engine.sleep 2_000;
              go (tries + 1)
            end
          end
          else if not (Transport.site_up cl.net d) then begin
            if not (shard_rehome k fid) then begin
              Engine.sleep 2_000;
              go (tries + 1)
            end
          end
          else begin
            (* Partitioned (not crashed) owner: wait it out. *)
            Engine.sleep 2_000;
            Hashtbl.remove k.shard_hints fid;
            go (tries + 1)
          end
    in
    go 0
  end

let () = shard_claim_home_ref := shard_claim_home

(* Drive a migration from outside the kernel (fault injection, locusctl):
   ask the current owner, wherever it is, to hand the role to [dst]. *)
let force_migrate cl ~src fid ~dst =
  if sharded cl then begin
    let k = kernel cl src in
    ignore (shard_owner_rpc k fid (Msg.Shard_migrate_req { fid; dst }))
  end

(* Introspection (locusctl shard-status, tests). *)
let shard_owner cl fid =
  match cl.shard_dir with
  | None -> None
  | Some dir ->
    let owner, epoch, _ =
      Shard_dir.lookup dir fid ~default:(shard_default_owner cl fid)
    in
    Some (owner, epoch)

let shard_status cl =
  match cl.shard_dir with
  | None -> []
  | Some dir ->
    List.map
      (fun (fid, owner, epoch) -> (fid, path_of cl fid, owner, epoch))
      (Shard_dir.entries dir)

(* {1 Transaction plumbing} *)

let register_end_wait k txid =
  match Hashtbl.find_opt k.end_waits txid with
  | Some iv -> iv
  | None ->
    let iv = Engine.Ivar.create () in
    Hashtbl.replace k.end_waits txid iv;
    iv

(* If the top-level process is parked at the transaction endpoint and the
   last member has completed, release it into two-phase commit. *)
let txn_ready_check k (txn : Txn_state.txn) =
  if txn.Txn_state.live_members <= 1 && txn.Txn_state.phase = Txn_state.Active
  then begin
    match Hashtbl.find_opt k.end_waits txn.Txn_state.txid with
    | Some iv ->
      if Engine.try_fill k.engine iv Members_done then
        txn.Txn_state.phase <- Txn_state.Committing
    | None -> ()
  end

let registry_remove_txn cl txid =
  Hashtbl.remove cl.txn_tops txid;
  Hashtbl.remove cl.txn_members txid

let registry_add_member cl txid pid s =
  match Hashtbl.find_opt cl.txn_members txid with
  | Some r -> r := (pid, s) :: !r
  | None -> Hashtbl.replace cl.txn_members txid (ref [ (pid, s) ])

let register_transaction cl txid ~top ~site:s =
  Hashtbl.replace cl.txn_tops txid top;
  registry_add_member cl txid top s

let register_member = registry_add_member
let transaction_top cl txid = Hashtbl.find_opt cl.txn_tops txid

let encode_migration proc txn = Marshal.to_string { m_proc = proc; m_txn = txn } []

let registry_remove_member cl txid pid =
  match Hashtbl.find_opt cl.txn_members txid with
  | Some r -> r := List.filter (fun (p, _) -> not (Pid.equal p pid)) !r
  | None -> ()

let update_member_site cl txid pid s =
  match Hashtbl.find_opt cl.txn_members txid with
  | Some r ->
    r := (pid, s) :: List.filter (fun (p, _) -> not (Pid.equal p pid)) !r
  | None -> ()

let find_process cl ~src pid =
  let probe s =
    if Transport.reachable cl.net src s then
      match rpc cl ~src ~dst:s (Msg.Find_process { pid }) with
      | Msg.R_found true -> true
      | _ -> false
    else false
  in
  match location_hint cl pid with
  | Some s when probe s -> Some s
  | Some _ | None -> (
    match List.find_opt probe (Transport.sites cl.net) with
    | Some s ->
      note_location cl pid s;
      Some s
    | None -> None)

(* Cascade abort (§4.3): roll back the member's files, kill its fiber
   (unless spared), recurse to its children, and when the top-level
   process is reached finish the whole transaction. *)
let rec abort_member k ~txid ~pid ~spare =
  match Proc_table.find k.procs pid with
  | None -> ()
  | Some p ->
    let cl = k.cl in
    (* Children first — they may be local or remote. *)
    Pid.Set.iter
      (fun child ->
        match find_process cl ~src:k.site child with
        | Some s when s = k.site -> abort_member k ~txid ~pid:child ~spare
        | Some s ->
          ignore (rpc cl ~src:k.site ~dst:s (Msg.Abort_tree { txid; pid = child; spare }))
        | None -> ())
      p.Process.children;
    (* Roll back this member's modified records and release its locks. *)
    File_id.Set.iter
      (fun fid ->
        let dst = storage_site cl fid in
        ignore
          (rpc cl ~src:k.site ~dst
             (Msg.Abort_file { fid; owner = Owner.Transaction txid })))
      p.Process.file_list;
    let is_spared = match spare with Some s -> Pid.equal s pid | None -> false in
    let parked_top =
      p.Process.top_level
      &&
      match Hashtbl.find_opt k.end_waits txid with
      | Some iv -> Engine.try_fill k.engine iv Abort_requested
      | None -> false
    in
    if p.Process.top_level then begin
      (match Txn_state.find k.txns txid with
      | Some txn -> txn.Txn_state.phase <- Txn_state.Aborting
      | None -> ());
      Txn_state.remove k.txns txid;
      registry_remove_txn cl txid;
      obs k (Obs.Abort { txid })
    end
    else registry_remove_member cl txid pid;
    if (not is_spared) && not parked_top then begin
      (match fiber_of k pid with
      | Some h -> Engine.kill k.engine h
      | None -> ());
      p.Process.status <- Process.Exited;
      Proc_table.remove k.procs pid;
      forget_fiber k pid;
      Engine.fill k.engine (exit_ivar cl pid) ()
    end

(* Abort-reason taxonomy: first-class counters ([txn.abort.<reason>]), so
   "why do transactions abort in this workload" is answerable without a
   span collector installed. *)
type abort_reason = Deadlock | Orphan | Crash | Degraded_vote | Coordinator_lost | User

let abort_reason_label = function
  | Deadlock -> "deadlock"
  | Orphan -> "orphan"
  | Crash -> "crash"
  | Degraded_vote -> "degraded_vote"
  | Coordinator_lost -> "coordinator_lost"
  | User -> "user"

let count_abort cl reason =
  Stats.incr (Engine.stats cl.c_engine) ("txn.abort." ^ abort_reason_label reason)

let abort_transaction cl ?spare ?(reason = User) ~src txid =
  Stats.incr (Engine.stats cl.c_engine) "txn.abort_requests";
  count_abort cl reason;
  (* Clear any queued lock waits of the dying transaction first, so
     blocked member fibers unwind promptly. *)
  List.iter
    (fun table -> Lock_table.cancel_owner table (Owner.Transaction txid))
    (lock_tables cl);
  match Hashtbl.find_opt cl.txn_tops txid with
  | None -> ()
  | Some top -> (
    match find_process cl ~src top with
    | Some s ->
      ignore (rpc cl ~src ~dst:s (Msg.Abort_tree { txid; pid = top; spare }))
    | None ->
      (* The top-level process is gone (its site crashed): sweep every
         reachable storage site instead. *)
      List.iter
        (fun dst ->
          if Transport.reachable cl.net src dst then
            ignore (rpc cl ~src ~dst (Msg.Abort_phase2 { txid; files = [] })))
        (Transport.sites cl.net);
      registry_remove_txn cl txid;
      observe cl ~site:src (Obs.Abort { txid }))

let () =
  shard_abort_txn_ref :=
    fun cl ~src txid -> abort_transaction cl ~reason:Crash ~src txid

(* Local sweep used by Abort_phase2: roll back everything this site holds
   for the transaction, prepared or not. *)
let ss_abort2 k ~txid ~files =
  tr k Trace.Txn "phase2 abort %a" Txid.pp txid;
  leave_doubt k txid;
  let owner = Owner.Transaction txid in
  List.iter (ensure_authority_home k) files;
  let prepared_before = Participant.prepared_files k.participant txid in
  let local_fids =
    Hashtbl.fold
      (fun fid table acc ->
        if List.exists (fun (l : Lock_table.lock) -> Owner.equal l.Lock_table.owner owner)
             (Lock_table.locks table)
        then fid :: acc
        else acc)
      k.locks []
  in
  let fids = List.sort_uniq File_id.compare (files @ local_fids) in
  Participant.abort k.participant ~txid;
  with_span k ~cat:"lock" "lock.release" @@ fun () ->
  List.iter
    (fun fid ->
      if Filestore.is_open k.store fid then Filestore.abort k.store fid ~owner;
      match lock_table k fid with
      | Some table ->
        Lock_table.cancel_owner table owner;
        Lock_table.release_owner table owner
      | None -> ())
    fids;
  (* Under dynamic placement the retained locks may live at a migrated-to
     owner: chase the role and release there too. *)
  if sharded k.cl then
    List.iter
      (fun fid ->
        if
          (not (Hashtbl.mem k.shard_owned fid))
          || Hashtbl.mem k.shard_migrating fid
        then shard_release k fid ~owner ~cancel:true)
      (List.sort_uniq File_id.compare (files @ prepared_before))

let ss_commit2 k ~txid ~files =
  tr k Trace.Txn "phase2 commit %a" Txid.pp txid;
  leave_doubt k txid;
  let owner = Owner.Transaction txid in
  List.iter (ensure_authority_home k) files;
  let prepared = Participant.prepared_files k.participant txid in
  let intentions = Participant.prepared_intentions k.participant txid in
  with_span k ~cat:"txn" "phase2.apply" (fun () ->
      Participant.commit k.participant ~txid);
  (* Push each file's new committed version to its secondaries before
     releasing the locks: a lock-covered read at a secondary is then
     guaranteed one-copy fresh. The intentions name exactly the pages
     this commit touched, so the propagated delta stays small. With RPC
     batching on, the per-file propagations run concurrently so one
     transaction's deltas for the same secondary share a batched message;
     either way all must land before the locks release. *)
  let propagate (it : Intentions.t) () =
    propagate_replicas k ~indices:(Intentions.page_indices it) it.Intentions.fid
  in
  if k.cl.cfg.Config.rpc_batch_window_us > 0 then
    par_iter k ~name:"repl-commit2" (List.map propagate intentions)
  else List.iter (fun it -> propagate it ()) intentions;
  with_span k ~cat:"lock" "lock.release" @@ fun () ->
  List.iter
    (fun fid ->
      match lock_table k fid with
      | Some table -> Lock_table.release_owner table owner
      | None -> ())
    (List.sort_uniq File_id.compare (files @ prepared));
  if sharded k.cl then
    List.iter
      (fun fid ->
        if
          (not (Hashtbl.mem k.shard_owned fid))
          || Hashtbl.mem k.shard_migrating fid
        then shard_release k fid ~owner ~cancel:false)
      (List.sort_uniq File_id.compare (files @ prepared))

(* {1 Paxos Commit (Gray & Lamport)}

   One consensus instance per participant; the transaction commits iff
   every instance fixes a Prepared vote at an f+1 quorum of the 2f+1
   acceptor sites (see lib/pcommit for the decision rule and its safety
   argument). The coordinator's log is still written — it remains the
   fast path for outcome queries — but the acceptor set is the durable,
   replicated source of truth: after a coordinator crash any participant
   can learn the decision from a quorum instead of blocking. *)

(* Phase 2a, run by a participant inside its Prepare handler: offer the
   local vote to every acceptor and confirm "prepared" to the coordinator
   only once f+1 acceptors registered the Prepared vote. The broadcast
   goes through the batched hot path so acceptor messages coalesce under
   an RPC batch window exactly like prepares and replica deltas. *)
let cast_paxos_vote k ~txid ~coordinator_site ~f ~participants vote =
  let cl = k.cl in
  let accs = acceptor_sites cl ~coordinator:coordinator_site f in
  Stats.incr (stats k) "pcommit.votes_cast";
  with_span k ~cat:"txn" "pcommit.vote" @@ fun () ->
  let registered = ref 0 in
  let offer a () =
    if Transport.reachable cl.net k.site a then
      match
        rpc_hot cl ~src:k.site ~dst:a
          (Msg.Vote_2a { txid; participant = k.site; vote; ballot = 0; participants })
      with
      | Msg.R_vote_2b v when v = vote -> incr registered
      | _ -> ()
  in
  par_iter k ~name:"pcommit-vote" (List.map offer accs);
  vote && !registered >= Pcommit.quorum ~f

(* Read the transaction outcome from the acceptor set. Needs a quorum of
   replies; an instance with neither value at quorum after the first
   round is closed by offering Aborted at ballot 1 (closure can only
   block an unconfirmed Prepared vote from ever reaching quorum — the
   participant then reported "not prepared" and no commit exists to
   contradict). [hint] seeds the participant set when the caller knows it
   (the coordinator's own log record); otherwise it is learned from any
   registered vote. Returns [`Unknown] only when too few acceptors stay
   reachable to determine the outcome. *)
let pcommit_read_decision k ~txid ~f ~hint =
  let cl = k.cl in
  let coordinator = Txid.site txid in
  let accs = acceptor_sites cl ~coordinator f in
  let q = Pcommit.quorum ~f in
  let reachable_accs () =
    List.filter (fun a -> Transport.reachable cl.net k.site a) accs
  in
  (* The acceptor round trips are independent: issue them concurrently
     through the batched hot path, so same-acceptor queries (ours across
     the round, or several resolvers') coalesce into one [Msg.Batch]
     envelope under an RPC batch window. Results keep acceptor order. *)
  let read () =
    let accs = reachable_accs () in
    let results = Array.make (List.length accs) None in
    par_iter k ~name:"pcommit-query"
      (List.mapi
         (fun i a () ->
           match rpc_hot cl ~src:k.site ~dst:a (Msg.Decision_query { txid }) with
           | Msg.R_decision { participants; votes } ->
             results.(i) <- Some (participants, votes)
           | _ -> ())
         accs);
    List.filter_map Fun.id (Array.to_list results)
  in
  let close participants instances =
    List.iter
      (fun p ->
        List.iter
          (fun a ->
            ignore
              (rpc cl ~src:k.site ~dst:a
                 (Msg.Vote_2a
                    { txid; participant = p; vote = false; ballot = 1; participants })))
          (reachable_accs ()))
      instances
  in
  let rec go tries =
    if tries > 30 then begin
      Stats.incr (stats k) "pcommit.unresolved";
      `Unknown
    end
    else begin
      let replies = read () in
      if List.length replies < q then begin
        Engine.sleep 2_000_000;
        go (tries + 1)
      end
      else begin
        let participants =
          List.sort_uniq compare (hint @ List.concat_map fst replies)
        in
        match Pcommit.decide ~f ~participants ~votes:(List.map snd replies) with
        | Pcommit.Commit -> `Commit
        | Pcommit.Abort -> `Abort
        | Pcommit.Undecided open_instances ->
          (* Nothing registered anywhere and no hint: the only instance we
             know exists is our own. Closing it is still decisive — once
             Aborted holds a quorum there, no commit can ever form. *)
          let targets =
            if open_instances = [] then [ k.site ] else open_instances
          in
          if tries >= 1 then close participants targets;
          Engine.sleep 1_000_000;
          go (tries + 1)
      end
    end
  in
  go 0

(* Acceptor-state garbage collection: once every participant has acked
   phase 2 the registrations for this transaction can never be consulted
   again (a duplicate query is answered from the coordinator log's
   presumed-abort rule), so tell the acceptors to drop them and free
   their log records. Best-effort — an unreachable acceptor just keeps
   the garbage until its own log recycles. *)
let pcommit_forget k ~txid =
  match paxos_f k.cl with
  | None -> ()
  | Some f ->
    let cl = k.cl in
    Stats.incr (stats k) "pcommit.forget_sent";
    let accs = acceptor_sites cl ~coordinator:(Txid.site txid) f in
    par_iter k ~name:"pcommit-forget"
      (List.map
         (fun a () ->
           if Transport.reachable cl.net k.site a then
             ignore (rpc_hot cl ~src:k.site ~dst:a (Msg.Acceptor_forget { txid })))
         accs)

(* Participant-side resolver: a prepared transaction whose coordinator is
   unreachable (or was unreachable at our recovery) learns its outcome
   from the acceptors and applies phase 2 locally — the non-blocking
   property 2PC lacks. Single-flight per txid; emits the outcome event
   itself because the coordinator may have died before announcing it. *)
let pcommit_resolve k ~txid ~f =
  let cl = k.cl in
  if not (Hashtbl.mem k.resolving txid) then begin
    Hashtbl.replace k.resolving txid ();
    Fun.protect ~finally:(fun () -> Hashtbl.remove k.resolving txid) @@ fun () ->
    enter_doubt k txid;
    match pcommit_read_decision k ~txid ~f ~hint:[] with
    | `Commit ->
      if Participant.is_prepared k.participant txid then begin
        Stats.incr (stats k) "pcommit.resolved_commit";
        tr k Trace.Txn "pcommit resolve %a -> commit" Txid.pp txid;
        obs k (Obs.Commit { txid });
        ss_commit2 k ~txid ~files:[]
      end
    | `Abort ->
      if Participant.is_prepared k.participant txid then begin
        Stats.incr (stats k) "pcommit.resolved_abort";
        tr k Trace.Txn "pcommit resolve %a -> abort" Txid.pp txid;
        count_abort cl Coordinator_lost;
        obs k (Obs.Abort { txid });
        ss_abort2 k ~txid ~files:[]
      end
    | `Unknown ->
      (* Leave the prepared state (and the gauge) in place: the liveness
         checker reports us as blocked, which is exactly what an
         unlearnable decision means. *)
      tr k Trace.Txn "pcommit resolve %a -> unknown (giving up)" Txid.pp txid
  end

(* Two-phase commit, driven from the coordinator site (§4.2). *)
let commit_transaction k (txn : Txn_state.txn) =
  let cl = k.cl in
  let txid = txn.Txn_state.txid in
  let t0 = Engine.now k.engine in
  txn.Txn_state.phase <- Txn_state.Committing;
  let files =
    List.sort_uniq
      (fun (a, _) (b, _) -> File_id.compare a b)
      (List.map (fun (fid, _) -> (fid, storage_site cl fid)) txn.Txn_state.file_list)
  in
  let outcome =
    if files = [] then begin
      obs k (Obs.Commit { txid });
      Committed
    end
    else
      with_span k ~cat:"txn" "2pc"
        ~args:[ ("txid", Fmt.str "%a" Txid.pp txid) ]
      @@ fun () ->
      let by_site =
        List.fold_left
          (fun acc (fid, s) ->
            match List.assoc_opt s acc with
            | Some r ->
              r := fid :: !r;
              acc
            | None -> (s, ref [ fid ]) :: acc)
          [] files
        |> List.map (fun (s, r) -> (s, !r))
        |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
      in
      (* Step 1 (Figure 5): the coordinator log, status unknown. *)
      tr k Trace.Txn "2pc begin %a (%d files)" Txid.pp txid (List.length files);
      with_span k ~cat:"txn" "coord_log.write" (fun () ->
          Coord_log.begin_commit k.coord ~txid ~files;
          cl.hooks.on_coord_log_written txid);
      (* Steps 2-3 happen at the participants, in parallel. The prepare
         fibers inherit the 2pc span context captured here, so each
         participant's [prepare] span grafts into this transaction's
         tree. *)
      let pctx = wire_ctx cl in
      (* Under Paxos Commit each participant needs the full participant
         set: it is recorded with every acceptor vote so a recovering
         party that reads any single vote learns which instances exist. *)
      let participants =
        match paxos_f cl with
        | None -> []
        | Some _ -> List.map fst by_site
      in
      let votes =
        List.map
          (fun (s, fs) ->
            let iv = Engine.Ivar.create () in
            ignore
              (Engine.spawn ~name:"2pc-prepare" ~site:k.site k.engine (fun () ->
                   with_span k ?parent:pctx ~cat:"txn" "2pc.prepare"
                     ~args:[ ("participant", string_of_int s) ]
                   @@ fun () ->
                   let vote =
                     match
                       rpc_hot cl ~src:k.site ~dst:s
                         (Msg.Prepare
                            {
                              txid;
                              coordinator_site = k.site;
                              files = fs;
                              participants;
                            })
                     with
                     | Msg.R_vote v -> v
                     | _ -> false
                   in
                   ignore (Engine.try_fill k.engine iv vote)));
            iv)
          by_site
      in
      (* Decision phase, timed separately ([commit.decide]) so latency to
         the decision point is directly comparable across protocols. *)
      let decision =
        with_span k ~cat:"txn" "commit.decide" @@ fun () ->
        let all_prepared =
          with_span k ~cat:"txn" "2pc.votes" (fun () ->
              List.for_all (fun iv -> Engine.await iv) votes)
        in
        (* [Some committed] is the decision; [None] means the outcome is
           not determinable right now (Paxos only: too few acceptors
           reachable). Under Paxos Commit a failed or missing vote does
           not by itself abort — the participant's Prepared vote may have
           reached an acceptor quorum with only the confirmation lost, so
           the decision must come from the acceptor set. *)
        let decision =
          if all_prepared then Some true
          else
            match paxos_f cl with
            | None -> Some false
            | Some f -> (
              match
                pcommit_read_decision k ~txid ~f ~hint:(List.map fst by_site)
              with
              | `Commit -> Some true
              | `Abort -> Some false
              | `Unknown ->
                Stats.incr (stats k) "pcommit.coord_unresolved";
                None)
        in
        (match decision with
        | None -> ()
        | Some committed ->
          if not committed then count_abort cl Degraded_vote;
          (* Step 4: writing the mark is the commit (or abort) point. *)
          with_span k ~cat:"txn" "commit.force"
            ~args:[ ("status", if committed then "committed" else "aborted") ]
            (fun () ->
              Coord_log.decide k.coord ~txid
                (if committed then Log_record.Committed else Log_record.Aborted));
          Stats.hist (stats k) "commit.decide_us" (Engine.now k.engine - t0));
        decision
      in
      match decision with
      | None ->
        (* The coordinator log keeps the Unknown record; participants stay
           prepared and will learn the outcome from the acceptors (or our
           own recovery will finish the job). The client sees an abort —
           it must not assume durability that was never established. *)
        tr k Trace.Txn "2pc undecided %a (acceptor quorum unreachable)" Txid.pp
          txid;
        Aborted
      | Some all_prepared ->
      let status : Log_record.status =
        if all_prepared then Log_record.Committed else Log_record.Aborted
      in
      tr k Trace.Txn "2pc decide %a %a" Txid.pp txid Log_record.pp_status status;
      (* The outcome event must be recorded at the decision point itself,
         before any injected crash, or the checker would misclassify a
         durably committed transaction as unresolved. *)
      obs k (if all_prepared then Obs.Commit { txid } else Obs.Abort { txid });
      cl.hooks.on_decided txid status;
      let p2ctx = wire_ctx cl in
      let phase2 () =
        with_span k ?parent:p2ctx ~cat:"txn" "2pc.phase2" @@ fun () ->
        let all_acked = ref true in
        List.iter
          (fun (s, fs) ->
            let msg =
              if all_prepared then Msg.Commit_phase2 { txid; files = fs }
              else Msg.Abort_phase2 { txid; files = fs }
            in
            match
              rpc_retry_batched_p cl cl.cfg.Config.retries.Config.phase2
                ~retry_if:(fun r -> r <> Msg.R_ok)
                ~src:k.site ~dst:s (envelope cl msg)
            with
            | Ok Msg.R_ok -> ()
            | Ok _ | Error _ -> all_acked := false)
          by_site;
        (* The coordinator log is retained until commit/abort processing
           has completed everywhere (§4.4). *)
        if !all_acked then begin
          Coord_log.finished k.coord ~txid;
          pcommit_forget k ~txid
        end
      in
      if cl.cfg.Config.async_phase2 then
        ignore (Engine.spawn ~name:"2pc-phase2" ~site:k.site k.engine phase2)
      else phase2 ();
      if all_prepared then Committed else Aborted
  in
  txn.Txn_state.phase <- Txn_state.Finished;
  Txn_state.remove k.txns txid;
  Hashtbl.remove k.end_waits txid;
  registry_remove_txn cl txid;
  Stats.hist (stats k) "txn.commit_us" (Engine.now k.engine - t0);
  Stats.incr (stats k)
    (match outcome with Committed -> "txn.committed" | Aborted -> "txn.aborted");
  outcome

(* Member-process exit (§4.1): the child's file-list merges into the
   top-level process's transaction record, with retry when the merge races
   a migration. *)
let member_exit cl ~src (p : Process.t) =
  (match p.Process.txid with
  | Some txid when not p.Process.top_level ->
    let top =
      match Hashtbl.find_opt cl.txn_tops txid with
      | Some top -> Some top
      | None -> None
    in
    (match top with
    | None -> ()
    | Some top ->
      let files =
        File_id.Set.elements p.Process.file_list
        |> List.map (fun fid -> (fid, storage_site cl fid))
      in
      (* The merge is NOT idempotent (a duplicate double-counts the
         member's files), and this loop retries across lost replies — so
         under the chaos layer every attempt must carry the SAME request
         id: allocate it once, out here, and rebuild only the envelope.
         A destination that already executed the merge then answers the
         retry from its reply cache instead of merging again. *)
      let rid =
        match cl.cfg.Config.net_faults with
        | Some _ -> Some (rid_alloc cl.ks.(src))
        | None -> None
      in
      let rec send_merge tries =
        if tries > 50 then ()
        else begin
          let dst =
            match location_hint cl top with
            | Some s when Transport.site_up cl.net s -> Some s
            | _ -> find_process cl ~src top
          in
          match dst with
          | None -> ()
          | Some dst -> (
            let env =
              envelope cl ?rid (Msg.Merge_file_list { top; txid; files })
            in
            let reply =
              match cl.cfg.Config.net_faults with
              | Some _ when src <> dst -> (
                match
                  rpc_retry_p cl cl.cfg.Config.retries.Config.rpc ~src ~dst env
                with
                | Ok r -> r
                | Error e -> rpc_error e)
              | Some _ | None -> rpc_env cl ~src ~dst env
            in
            match reply with
            | Msg.R_ok -> ()
            | Msg.R_retry ->
              Stats.incr (Engine.stats cl.c_engine) "merge.retries";
              Engine.sleep 2_000;
              Hashtbl.remove cl.locations top;
              send_merge (tries + 1)
            | _ ->
              Engine.sleep 2_000;
              send_merge (tries + 1))
        end
      in
      send_merge 0;
      Option.iter (rid_done cl.ks.(src)) rid);
    registry_remove_member cl txid p.Process.pid
  | Some _ | None -> ());
  (* Channel cleanup: release process-owned locks, commit conventional
     (non-transaction) modifications — the base system's default atomic
     file update on close — and drop open references. *)
  let fids =
    List.sort_uniq File_id.compare (List.map (fun c -> c.Process.fid) p.Process.channels)
  in
  let by_site =
    List.fold_left
      (fun acc fid ->
        let s = storage_site cl fid in
        match List.assoc_opt s acc with
        | Some r ->
          r := fid :: !r;
          acc
        | None -> (s, ref [ fid ]) :: acc)
      [] fids
  in
  List.iter
    (fun (s, r) ->
      ignore
        (rpc cl ~src ~dst:s (Msg.Proc_exit_cleanup { pid = p.Process.pid; fids = !r })))
    by_site

let ss_proc_exit_cleanup k ~pid ~fids =
  let owner = Owner.Process pid in
  List.iter
    (fun fid ->
      (match lock_table k fid with
      | Some table -> Lock_table.release_process table pid
      | None -> ());
      if
        sharded k.cl
        && ((not (Hashtbl.mem k.shard_owned fid))
           || Hashtbl.mem k.shard_migrating fid)
      then shard_release k fid ~owner ~cancel:true;
      if Filestore.is_open k.store fid then begin
        if Filestore.modified_by k.store fid owner <> [] then begin
          match ensure_writable k fid with
          | () ->
            let it = Filestore.commit k.store fid ~owner in
            propagate_replicas k ~indices:(Intentions.page_indices it) fid;
            obs k (Obs.File_commit { owner; fid })
          | exception Denied _ ->
            (* Degraded copy: the exiting process's uncommitted bytes
               cannot become a new version — discard them. *)
            Filestore.abort k.store fid ~owner;
            obs k (Obs.File_abort { owner; fid })
        end;
        Filestore.close_file k.store fid
      end)
    fids

(* {1 Deadlock service (§3.1)} *)

let deadlock_scan cl ~src =
  Stats.incr (Engine.stats cl.c_engine) "deadlock.scans";
  let victims =
    Locus_deadlock.Detector.victims cl.cfg.Config.deadlock_policy (lock_tables cl)
  in
  List.iter
    (fun victim ->
      Stats.incr (Engine.stats cl.c_engine) "deadlock.victims";
      Trace.emitf (Engine.trace cl.c_engine) ~at:(Engine.now cl.c_engine)
        ~cat:Trace.Lock ~site:src "deadlock victim %a" Owner.pp victim;
      match victim with
      | Owner.Transaction txid -> abort_transaction cl ~reason:Deadlock ~src txid
      | Owner.Process _ ->
        List.iter (fun t -> Lock_table.cancel_owner t victim) (lock_tables cl))
    victims;
  victims

let () = deadlock_scan_ref := deadlock_scan

(* {1 The live health plane (locus_health)}

   Three pieces, same zero-overhead discipline as [Obs]/[Otrace]:

   - [health_report] builds the structured per-site report the
     [Msg.Health_query] endpoint answers — pure state reads, available
     whether or not the sampler is armed;
   - [health_arm] (called from [make] when [Config.health_window_us] > 0)
     registers the windowed series and schedules the self-rescheduling
     tick closure. Ticks run OUTSIDE any fiber via [Engine.schedule]: a
     looping sampler fiber would keep the event queue alive forever and
     [Engine.run] would never drain. The tick stops rescheduling once it
     is the only pending event source, letting the run quiesce;
   - [health_tick] closes a window: samples every series, then evaluates
     the watchdog rules (per site + cluster scope), emitting rising-edge
     [Obs.Alarm] events and [health.alarm.*] counters. *)

let reply_cache_capacity = 1024

let dedup_cached k =
  Hashtbl.fold
    (fun _ slot n -> match slot with Cached _ -> n + 1 | Running _ -> n)
    k.reply_cache 0

(* (count, max age in µs) of this kernel's in-doubt transactions. *)
let health_in_doubt k =
  let now = Engine.now k.engine in
  Hashtbl.fold
    (fun _ entered (n, oldest) -> (n + 1, max oldest (now - entered)))
    k.doubted (0, 0)

let health_hot_cells k =
  Hashtbl.fold
    (fun fid tbl acc ->
      let w = Lock_table.waiting tbl in
      let l = Lock_table.lock_count tbl in
      if w > 0 || l > 0 then (fid, w, l) :: acc else acc)
    k.locks []
  |> List.sort (fun (fa, wa, _) (fb, wb, _) ->
         match Int.compare wb wa with 0 -> compare fa fb | c -> c)
  |> List.filteri (fun i _ -> i < 3)
  |> List.map (fun (fid, w, l) ->
         {
           Hreport.hc_fid = Fmt.str "%a" File_id.pp fid;
           hc_waiters = w;
           hc_locks = l;
         })

let health_report k =
  let in_doubt, max_age = health_in_doubt k in
  let locks_held, lock_waiters =
    Hashtbl.fold
      (fun _ tbl (h, w) ->
        (h + Lock_table.lock_count tbl, w + Lock_table.waiting tbl))
      k.locks (0, 0)
  in
  let wal_bytes =
    List.fold_left
      (fun acc vol -> acc + (Volume.io_log_writes vol * Volume.page_size vol))
      0
      (Filestore.volumes k.store)
  in
  {
    Hreport.hs_site = k.site;
    hs_at_us = Engine.now k.engine;
    hs_in_doubt = in_doubt;
    hs_in_doubt_max_age_us = max_age;
    hs_active_txns = List.length (Txn_state.active k.txns);
    hs_lock_tables = Hashtbl.length k.locks;
    hs_locks_held = locks_held;
    hs_lock_waiters = lock_waiters;
    hs_hot_cells = health_hot_cells k;
    hs_wal_bytes = wal_bytes;
    hs_dedup_entries = dedup_cached k;
    hs_dedup_capacity = reply_cache_capacity;
    hs_degraded_copies = List.length (Status.degraded k.repl);
    hs_shards_owned = Hashtbl.length k.shard_owned;
  }

(* Monitor-side fan-out. Must run inside a fiber (it blocks on RPC
   replies); the transport's RPC timeout bounds every leg, so a
   partitioned or crashed site reads as [Unreachable], never a hang. *)
let health_poll cl ~src ~dst =
  if src = dst then Hreport.Healthy (health_report cl.ks.(dst))
  else
    match rpc cl ~src ~dst Msg.Health_query with
    | Msg.R_health s -> Hreport.Healthy s
    | _ -> Hreport.Unreachable { u_site = dst }

let health_poll_all cl ~src =
  List.init cl.cfg.Config.n_sites (fun dst -> health_poll cl ~src ~dst)

let health_tick cl hp =
  let e = cl.c_engine in
  let now = Engine.now e in
  Hsampler.tick hp.hp_sampler ~now_us:now;
  let st = Engine.stats e in
  let last name =
    Option.value (Hsampler.last_value hp.hp_sampler name) ~default:0
  in
  let raise_alarm (a : Hrules.alarm) =
    Stats.incr st ("health.alarm." ^ a.Hrules.al_name);
    observe cl
      ~site:(max 0 a.Hrules.al_site)
      (Obs.Alarm { name = a.Hrules.al_name; detail = a.Hrules.al_detail });
    hp.hp_alarms <- a :: hp.hp_alarms
  in
  (* Cluster-scope rules read this window's series values... *)
  let ci =
    {
      (Hrules.zero_input ~site:(-1) ~now_us:now) with
      Hrules.in_lock_wait_p99_us = last "lock_wait_p99_us";
      in_retries = last "retries";
      in_migrations = last "migrations";
    }
  in
  List.iter raise_alarm (Hrules.evaluate hp.hp_cluster_rules ci);
  (* ... and per-site rules read the live kernel state directly. *)
  Array.iter
    (fun k ->
      if k.alive then begin
        let in_doubt, max_age = health_in_doubt k in
        let i =
          {
            (Hrules.zero_input ~site:k.site ~now_us:now) with
            Hrules.in_in_doubt = in_doubt;
            in_in_doubt_max_age_us = max_age;
            in_dedup_entries = dedup_cached k;
            in_dedup_capacity = reply_cache_capacity;
            in_degraded_copies = List.length (Status.degraded k.repl);
          }
        in
        List.iter raise_alarm (Hrules.evaluate hp.hp_site_rules.(k.site) i)
      end)
    cl.ks

let health_arm cl =
  let window_us = cl.cfg.Config.health_window_us in
  if window_us > 0 then begin
    let e = cl.c_engine in
    let st = Engine.stats e in
    let sp =
      Hsampler.create ~keep:cl.cfg.Config.health_keep ~window_us ()
    in
    (* Intern the counter cells once: these sources run every sampler
       window on every site, and [Stats.get]'s string hash + probe per
       read adds up at high window rates. *)
    let counter name =
      let r = Stats.counter st name in
      Hsampler.Counter (fun () -> !r)
    in
    Hsampler.register sp "commits" (counter "txn.committed");
    Hsampler.register sp "aborts" (counter "txn.aborted");
    Hsampler.register sp "msgs" (counter "net.msg");
    Hsampler.register sp "retries" (counter "net.retries");
    Hsampler.register sp "net_faults"
      (let drop = Stats.counter st "net.drop"
       and dup = Stats.counter st "net.dup"
       and reorder = Stats.counter st "net.reorder" in
       Hsampler.Counter (fun () -> !drop + !dup + !reorder));
    Hsampler.register sp "migrations" (counter "shard.migrations");
    Hsampler.register sp "in_doubt"
      (let r = Stats.counter st "txn.in_doubt" in
       Hsampler.Gauge (fun () -> !r));
    Hsampler.register sp "lock_waiters"
      (Hsampler.Gauge
         (fun () ->
           Array.fold_left
             (fun acc k ->
               if k.alive then
                 Hashtbl.fold
                   (fun _ tbl a -> a + Lock_table.waiting tbl)
                   k.locks acc
               else acc)
             0 cl.ks));
    Hsampler.register sp "dedup_entries"
      (Hsampler.Gauge
         (fun () ->
           Array.fold_left
             (fun acc k -> if k.alive then acc + dedup_cached k else acc)
             0 cl.ks));
    Hsampler.register sp "lock_wait_p99_us"
      (Hsampler.Hist_p99
         (fun () ->
           match Stats.histogram st "lock.wait_us" with
           | Some h -> Stats.Hist.snapshot h
           | None -> Stats.Hist.empty_snap));
    for s = 0 to cl.cfg.Config.n_sites - 1 do
      Hsampler.register sp
        (Printf.sprintf "site%d.in_doubt" s)
        (Hsampler.Gauge (fun () -> Hashtbl.length cl.ks.(s).doubted))
    done;
    let thresholds = cl.cfg.Config.health_thresholds in
    let hp =
      {
        hp_sampler = sp;
        hp_site_rules =
          Array.init cl.cfg.Config.n_sites (fun _ ->
              Hrules.create ~thresholds ());
        hp_cluster_rules = Hrules.create ~thresholds ();
        hp_alarms = [];
      }
    in
    cl.health <- Some hp;
    let rec tick () =
      health_tick cl hp;
      (* Our own event has already been popped: anything still pending is
         real work, so keep sampling; an otherwise-empty queue means the
         run is quiescing and this was the final window. *)
      if Engine.pending_events e > 0 then Engine.schedule ~delay:window_us e tick
    in
    Engine.schedule ~delay:window_us e tick
  end

let health_alarms cl =
  match cl.health with None -> [] | Some hp -> List.rev hp.hp_alarms

let health_series cl =
  match cl.health with
  | None -> []
  | Some hp -> Hsampler.series hp.hp_sampler

let health_windows cl =
  match cl.health with None -> 0 | Some hp -> Hsampler.windows hp.hp_sampler

(* Currently-firing rule names per scope (-1 = cluster), for `locusctl
   top`'s active-alarm panel. *)
let health_active cl =
  match cl.health with
  | None -> []
  | Some hp ->
    let cluster = ((-1), Hrules.active hp.hp_cluster_rules) in
    let sites =
      Array.to_list
        (Array.mapi (fun s r -> (s, Hrules.active r)) hp.hp_site_rules)
    in
    List.filter (fun (_, names) -> names <> []) (cluster :: sites)

(* {1 The kernel message handler} *)

let rec handle_msg k ~src msg =
  let open Msg in
  if not k.alive then R_err "site down"
  else begin
    tr k Trace.Net "<- site%d: %a" src Msg.pp msg;
    try
      match msg with
      | Ping -> R_ok
      | Health_query -> R_health (health_report k)
      | Open { fid } ->
        Filestore.open_file k.store fid;
        ignore (ensure_table k fid);
        R_ok
      | Close { fid; owner; commit_on_close } ->
        if
          commit_on_close
          && Filestore.is_open k.store fid
          && Filestore.modified_by k.store fid owner <> []
        then begin
          ensure_writable k fid;
          let it = Filestore.commit k.store fid ~owner in
          propagate_replicas k ~indices:(Intentions.page_indices it) fid;
          obs k (Obs.File_commit { owner; fid })
        end;
        Filestore.close_file k.store fid;
        R_ok
      | Read { fid; reader; pid; pos; len } ->
        R_data (ss_read k ~fid ~reader ~pid ~pos ~len)
      | Read_locked { fid; reader; pid; pos; len } -> (
        (* The §3.3 implicit Shared lock that [ss_read] acquires for a
           transaction reader is retained until commit — confirming it
           in the reply lets the client cache the lock, making the
           lock-then-read pair one round trip. A conventional process
           gets plain data: its momentary lock is already gone and must
           not be cached. *)
        match reader with
        | Owner.Transaction _ ->
          let data = ss_read k ~fid ~reader ~pid ~pos ~len in
          Stats.incr (stats k) "lock.piggyback";
          R_data_locked data
        | Owner.Process _ -> R_data (ss_read k ~fid ~reader ~pid ~pos ~len))
      | Write { fid; owner; pid; pos; data } ->
        ss_write k ~fid ~owner ~pid ~pos ~data;
        R_ok
      | Lock { fid; owner; pid; mode; range; non_transaction; wait }
        when sharded k.cl -> (
        match shard_route k fid with
        | `Retry -> R_retry
        | `Redirect d ->
          Stats.incr (stats k) "shard.redirects";
          R_redirect d
        | `Here -> (
          (* The streak policy may hand the role to [src] right here; the
             requester then retries against its own site. *)
          maybe_shard_migrate k fid ~src;
          if not (Hashtbl.mem k.shard_owned fid) then
            match Hashtbl.find_opt k.shard_hints fid with
            | Some d -> R_redirect d
            | None -> R_retry
          else
            match
              grant_lock k ~fid ~owner ~pid ~mode ~range ~non_transaction ~wait
            with
            | `Granted ->
              Stats.incr (stats k)
                (if src = k.site then "shard.local_grants"
                 else "shard.remote_grants");
              R_granted
            | `Conflict owners -> R_conflict owners
            | `Cancelled -> R_err "lock cancelled"
            | `Timeout -> R_err "lock timeout"))
      | Lock { fid; owner; pid; mode; range; non_transaction; wait } -> (
        match lock_route k fid with
        | `Redirect d -> R_redirect d
        | `Here ->
        maybe_delegate k fid ~src;
        (* Delegation may have just moved the table away. *)
        match
          (match lock_route k fid with
          | `Redirect d -> `Moved d
          | `Here ->
            `R (grant_lock k ~fid ~owner ~pid ~mode ~range ~non_transaction ~wait))
        with
        | `Moved d -> R_redirect d
        | `R r ->
        match r with
        | `Granted ->
          if k.cl.cfg.Config.prefetch && src <> k.site then begin
            (* §5.2: piggyback the locked range's data on the grant, in
               anticipation of its use at the requesting site. *)
            Stats.incr (stats k) "prefetch.grants";
            let data =
              Filestore.read k.store fid ~pos:(Byte_range.lo range)
                ~len:(Byte_range.len range)
            in
            R_granted_data data
          end
          else R_granted
        | `Conflict owners -> R_conflict owners
        | `Cancelled -> R_err "lock cancelled"
        | `Timeout -> R_err "lock timeout")
      | Lock_append { fid; owner; pid; len; mode; non_transaction } ->
        R_granted_at (ss_lock_append k ~fid ~owner ~pid ~len ~mode ~non_transaction)
      | Unlock { fid; owner; pid; range } when sharded k.cl -> (
        match shard_route k fid with
        | `Retry -> R_retry
        | `Redirect d ->
          Stats.incr (stats k) "shard.redirects";
          R_redirect d
        | `Here ->
          (match lock_table k fid with
          | Some table ->
            Lock_table.unlock table ~owner ~pid ~range;
            (match owner with
            | Owner.Transaction _ ->
              Lock_table.unlock table ~owner:(Owner.Process pid) ~pid ~range
            | Owner.Process _ -> ());
            obs k (Obs.Unlock { owner; pid; fid; range })
          | None -> ());
          R_ok)
      | Unlock { fid; owner; pid; range } -> (
        match lock_route k fid with
        | `Redirect d -> R_redirect d
        | `Here ->
        (match lock_table k fid with
        | Some table ->
          Lock_table.unlock table ~owner ~pid ~range;
          (* Locks the process acquired before BeginTrans were never
             converted to transaction locks (§3.4): an unlock inside the
             transaction releases them for real. *)
          (match owner with
          | Owner.Transaction _ ->
            Lock_table.unlock table ~owner:(Owner.Process pid) ~pid ~range
          | Owner.Process _ -> ());
          obs k (Obs.Unlock { owner; pid; fid; range })
        | None -> ());
        R_ok)
      | Commit_file { fid; owner } ->
        if Filestore.is_open k.store fid && Filestore.modified_by k.store fid owner <> []
        then begin
          ensure_writable k fid;
          let it = Filestore.commit k.store fid ~owner in
          propagate_replicas k ~indices:(Intentions.page_indices it) fid;
          obs k (Obs.File_commit { owner; fid })
        end;
        R_ok
      | Abort_file { fid; owner } ->
        ensure_authority_home k fid;
        if Filestore.is_open k.store fid then begin
          Filestore.abort k.store fid ~owner;
          obs k (Obs.File_abort { owner; fid })
        end;
        (match lock_table k fid with
        | Some table ->
          Lock_table.cancel_owner table owner;
          Lock_table.release_owner table owner
        | None -> ());
        if
          sharded k.cl
          && ((not (Hashtbl.mem k.shard_owned fid))
             || Hashtbl.mem k.shard_migrating fid)
        then shard_release k fid ~owner ~cancel:true;
        R_ok
      | File_size { fid } -> R_int (Filestore.size k.store fid)
      | Create_file { vid } ->
        ensure_writable_vid k vid;
        let fid = Filestore.create_file k.store ~vid in
        (* Seed the secondaries with the (empty) version-1 file so later
           per-commit deltas apply without a gap. *)
        propagate_replicas k ~initial:true fid;
        R_fid fid
      | Member_join { top; txid } -> (
        match Proc_table.find k.procs top with
        | Some p when p.Process.status <> Process.In_transit -> (
          match Txn_state.find k.txns txid with
          | Some _ ->
            Txn_state.member_joined k.txns txid;
            R_ok
          | None -> R_retry)
        | Some _ | None -> R_retry)
      | Merge_file_list { top; txid; files } -> (
        match Proc_table.find k.procs top with
        | Some p when p.Process.status <> Process.In_transit -> (
          match Txn_state.find k.txns txid with
          | Some txn ->
            Txn_state.merge_files txn files;
            Txn_state.member_exited k.txns txid;
            txn_ready_check k txn;
            R_ok
          | None -> R_retry)
        | Some _ | None ->
          (* Not here, or mid-migration: bounce for retry (§4.1). *)
          R_retry)
      | Proc_arrive { payload } ->
        let m : migration = Marshal.from_string payload 0 in
        tr k Trace.Proc "process %a arrives" Pid.pp m.m_proc.Process.pid;
        m.m_proc.Process.status <- Process.Running;
        m.m_proc.Process.site <- k.site;
        Proc_table.insert k.procs m.m_proc;
        (match m.m_txn with Some txn -> Txn_state.adopt k.txns txn | None -> ());
        R_ok
      | Proc_exit_cleanup { pid; fids } ->
        ss_proc_exit_cleanup k ~pid ~fids;
        R_ok
      | Prepare { txid; coordinator_site; files; participants } ->
        Stats.incr (stats k) "2pc.prepares";
        (* The lock state must be home before we log it with the data. *)
        List.iter (recall_locks k) files;
        let vote =
          try
            (* A degraded primary cannot version the updates correctly
               yet: vote no rather than risk a divergent history. *)
            List.iter (ensure_writable k) files;
            (* Steps 2-3 (Figure 5): flush the dirty pages and force the
               prepare log — the participant's point of no return. *)
            with_span k ~cat:"txn" "prepare.force" (fun () ->
                Participant.prepare k.participant ~txid ~coordinator_site
                  ~files)
          with _ -> false
        in
        (* Paxos Commit phase 2a: the vote only counts once an acceptor
           quorum has registered it — including a No vote, so that the
           abort is as learnable after a coordinator crash as a commit. *)
        let vote =
          match paxos_f k.cl with
          | None -> vote
          | Some f ->
            let v = cast_paxos_vote k ~txid ~coordinator_site ~f ~participants vote in
            (* The coordinator may have died while we were preparing — after
               the topology sweep already ran, so nothing else will notice
               this transaction. Resolve from the acceptors ourselves. *)
            if
              Participant.is_prepared k.participant txid
              && coordinator_site <> k.site
              && not (Transport.reachable k.cl.net k.site coordinator_site)
            then
              ignore
                (Engine.spawn ~name:"pcommit-resolve" ~site:k.site k.engine
                   (fun () -> pcommit_resolve k ~txid ~f));
            v
        in
        k.cl.hooks.on_participant_prepared k.site txid vote;
        R_vote vote
      | Commit_phase2 { txid; files } ->
        (* Applying phase 2 before the participant pass rebuilt prepared
           state would ack a no-op — and let the coordinator forget a
           decision our in-doubt resolution still needs. *)
        if not k.par_ready then R_retry
        else begin
          ss_commit2 k ~txid ~files;
          R_ok
        end
      | Abort_phase2 { txid; files } ->
        if not k.par_ready then R_retry
        else begin
          ss_abort2 k ~txid ~files;
          R_ok
        end
      | Abort_tree { txid; pid; spare } ->
        abort_member k ~txid ~pid ~spare;
        R_ok
      | Query_outcome { txid } ->
        (* Recovery in progress is transient: bounce for retry like every
           other recovering-site path, instead of a hard error the asker
           would misread as a permanent failure. *)
        if not k.coord_ready then R_retry
        else R_outcome (Coord_log.outcome k.coord txid)
      | Vote_2a { txid; participant; vote; ballot; participants } ->
        if not k.acc_ready then R_retry
        else begin
          Stats.incr (stats k) "pcommit.votes_seen";
          R_vote_2b
            (Pc_acceptor.register k.pc_acceptor ~txid ~participant ~vote
               ~ballot ~participants)
        end
      | Decision_query { txid } ->
        if not k.acc_ready then R_retry
        else begin
          let participants, votes = Pc_acceptor.votes_for k.pc_acceptor txid in
          R_decision { participants; votes }
        end
      | Find_process { pid } -> (
        match Proc_table.find k.procs pid with
        | Some p -> R_found (p.Process.status <> Process.In_transit)
        | None -> R_found false)
      | Replica_commit { update } -> ss_replica_commit k ~src update
      | Replica_pull { fid } -> ss_replica_pull k ~fid
      | Replica_versions { vid } -> ss_replica_versions k ~vid
      | Replica_read { fid; reader; pid; pos; len } ->
        ss_replica_read k ~fid ~reader ~pid ~pos ~len
      | Delegate_locks { fid; payload } ->
        Hashtbl.replace k.locks fid
          (Lock_table.restore fid (unmarshal_locks payload));
        Hashtbl.replace k.hosted fid src;
        Stats.incr (stats k) "delegation.in";
        R_ok
      | Recall_locks { fid } -> (
        match Hashtbl.find_opt k.locks fid with
        | Some table when Hashtbl.mem k.hosted fid ->
          if Lock_table.waiting table > 0 then R_retry
          else begin
            Hashtbl.remove k.locks fid;
            Hashtbl.remove k.hosted fid;
            R_data (Bytes.of_string (marshal_locks (Lock_table.locks table)))
          end
        | Some _ | None -> R_err "not hosted here")
      | Acceptor_forget { txid } ->
        if not k.acc_ready then R_retry
        else begin
          Pc_acceptor.forget k.pc_acceptor txid;
          Stats.incr (stats k) "pcommit.forgotten";
          R_ok
        end
      | Shard_lookup { fid } -> (
        match k.cl.shard_dir with
        | None -> R_err "dynamic lock placement off"
        | Some dir ->
          if Shard_dir.site_of dir fid <> k.site then R_err "not the directory site"
          else begin
            Stats.incr (stats k) "shard.dir_lookups";
            let owner, epoch, prev =
              Shard_dir.lookup dir fid ~default:(shard_default_owner k.cl fid)
            in
            R_owner { owner; epoch; prev }
          end)
      | Shard_claim { fid; new_owner; from_epoch } -> (
        match k.cl.shard_dir with
        | None -> R_err "dynamic lock placement off"
        | Some dir ->
          if Shard_dir.site_of dir fid <> k.site then R_err "not the directory site"
          else begin
            Stats.incr (stats k) "shard.dir_claims";
            match
              Shard_dir.claim dir fid
                ~default:(shard_default_owner k.cl fid)
                ~new_owner ~from_epoch ~claimer:src
            with
            | Ok epoch -> R_owner { owner = new_owner; epoch; prev = src }
            | Error (owner, epoch) ->
              Stats.incr (stats k) "shard.dir_claim_stale";
              let _, _, prev =
                Shard_dir.lookup dir fid
                  ~default:(shard_default_owner k.cl fid)
              in
              R_owner { owner; epoch; prev }
          end)
      | Shard_migrate { fid; epoch; payload } ->
        if not (sharded k.cl) then R_err "dynamic lock placement off"
        else begin
          let known =
            match Hashtbl.find_opt k.shard_epochs fid with
            | Some e -> e
            | None -> -1
          in
          if epoch = known && Hashtbl.mem k.shard_owned fid then
            (* The transfer already landed and this is a retransmitted or
               duplicated copy of the same envelope (the R_ok was lost in
               flight). Confirm without reinstalling: the table may have
               granted new locks since, and the stale payload would wipe
               them. *)
            R_ok
          else if epoch <= known then begin
            (* A straggler transfer from a superseded owner: fencing it
               here is what makes the CAS race safe. *)
            Stats.incr (stats k) "shard.fenced";
            R_err "stale shard transfer fenced"
          end
          else begin
            Hashtbl.replace k.locks fid
              (Lock_table.restore fid (unmarshal_locks payload));
            Hashtbl.replace k.shard_owned fid ();
            Hashtbl.replace k.shard_epochs fid epoch;
            if not !Locus_shard.Flags.break_shard then begin
              Hashtbl.replace k.shard_hints fid k.site;
              note_lock_authority k.cl fid k.site
            end;
            Stats.incr (stats k) "shard.installs";
            note_migrated k fid ~from_site:src ~epoch;
            R_ok
          end
        end
      | Shard_migrate_req { fid; dst } ->
        if not (sharded k.cl) then R_err "dynamic lock placement off"
        else (
          match shard_route k fid with
          | `Retry -> R_retry
          | `Redirect d -> R_redirect d
          | `Here ->
            if dst <> k.site then shard_migrate k fid ~dst;
            R_ok)
      | Shard_handoff { fid } ->
        (* Hand-off handshake (see Msg): 1 while a transfer we initiated
           is still in flight — the old table's owners are then still
           live — 0 once it settled (delivered, or stranded owners
           aborted before the window closed). *)
        R_int (if Hashtbl.mem k.shard_migrating fid then 1 else 0)
      | Ensure_lock { fid; owner; pid; range; write; momentary; dirty } -> (
        if not (sharded k.cl) then R_err "dynamic lock placement off"
        else
          match shard_route k fid with
          | `Retry -> R_retry
          | `Redirect d ->
            Stats.incr (stats k) "shard.redirects";
            R_redirect d
          | `Here ->
            let table = ensure_table k fid in
            let mode = if write then Mode.Exclusive else Mode.Shared in
            let count_grant () =
              Stats.incr (stats k)
                (if src = k.site then "shard.local_grants"
                 else "shard.remote_grants")
            in
            if momentary then begin
              let pieces = uncovered_pieces table ~owner ~range ~write in
              List.iter
                (fun piece ->
                  match
                    grant_lock k ~fid ~owner ~pid ~mode ~range:piece
                      ~non_transaction:false ~wait:true
                  with
                  | `Granted -> count_grant ()
                  | `Conflict _ | `Cancelled | `Timeout ->
                    raise (Denied "access blocked"))
                pieces;
              R_pieces pieces
            end
            else begin
              if not (Lock_table.owner_covers table ~owner ~range ~write) then begin
                match
                  grant_lock k ~fid ~owner ~pid ~mode ~range
                    ~non_transaction:false ~wait:true
                with
                | `Granted ->
                  Stats.incr (stats k) "lock.implicit";
                  count_grant ()
                | `Cancelled ->
                  raise (Denied "transaction aborted while waiting for lock")
                | `Timeout -> raise (Denied "lock timeout")
                | `Conflict _ -> raise (Denied "lock conflict")
              end;
              (* Rule 2, split across sites: the storage site saw dirty
                 bytes under this range; the lock must be retained here
                 whatever its mode. *)
              if dirty then Lock_table.mark_retained table owner ~range;
              R_ok
            end)
      | Release_locks { fid; owner; pid; ranges; cancel } -> (
        if not (sharded k.cl) then R_err "dynamic lock placement off"
        else
          match shard_route k fid with
          | `Retry -> R_retry
          | `Redirect d -> R_redirect d
          | `Here ->
            (match lock_table k fid with
            | Some table -> (
              match ranges with
              | Some rs ->
                List.iter
                  (fun range -> Lock_table.unlock table ~owner ~pid ~range)
                  rs
              | None ->
                if cancel then Lock_table.cancel_owner table owner;
                Lock_table.release_owner table owner)
            | None -> ());
            R_ok)
      | Batch envs ->
        (* A coalesced wire message: dispatch every member concurrently
           through the full [handle] edge, so each keeps its own
           server-side span (parented under its own caller ctx) and its
           own error isolation, and a batch of prepares can share one
           group-commit force instead of serializing their awaits.
           Members are independent by construction — only prepares,
           phase-2 notifications and replica deltas travel batched. The
           reply preserves submission order regardless of completion
           order. *)
        let results =
          Array.make (List.length envs) (Msg.R_err "batch member failed")
        in
        let ivs =
          List.mapi
            (fun i e ->
              let iv = Engine.Ivar.create () in
              ignore
                (Engine.spawn ~name:"batch-member" ~site:k.site k.engine
                   (fun () ->
                     Fun.protect
                       (fun () -> results.(i) <- handle k ~src e)
                       ~finally:(fun () ->
                         ignore (Engine.try_fill k.engine iv ()))));
              iv)
            envs
        in
        List.iter Engine.await ivs;
        R_batch (Array.to_list results)
    with
    | Denied reason -> R_err reason
    | Filestore.Conflicting_write (_, a, b) ->
      R_err (Fmt.str "conflicting write %a vs %a" Owner.pp a Owner.pp b)
    | Not_found -> R_err "not found"
    | Invalid_argument m -> R_err m
  end

(* Unwrap the envelope and, when a collector is installed, run the
   dispatch inside a server-side span parented under the remote caller's
   span (carried in [env.ctx]) — this is the edge that stitches a
   transaction's tree across sites. *)
and handle_env k ~src (env : Msg.env) =
  match k.cl.otracer with
  | None -> handle_msg k ~src env.Msg.payload
  | Some otr ->
    if not k.alive then Msg.R_err "site down"
    else
      Otrace.with_span ?parent:env.Msg.ctx otr ~site:k.site ~cat:"rpc"
        ~args:[ ("src", string_of_int src) ]
        (Msg.label env.Msg.payload)
        (fun () -> handle_msg k ~src env.Msg.payload)

(* Run the handler for a rid-tagged request and, when it produced a
   cacheable reply (i.e. it actually executed and had its effect), mark
   the execution for the checker's exactly-once oracle. [R_err]/[R_retry]
   are the handler's refusals — no effect happened, so a later copy
   re-executing is correct, not a duplicate application. *)
and exec_rid k ~src (env : Msg.env) (rid : Msg.rid) =
  let r = handle_env k ~src env in
  (match r with
  | Msg.R_err _ | Msg.R_retry -> ()
  | _ ->
    obs k
      (Obs.Rpc_exec
         {
           client = rid.Msg.r_site;
           inc = rid.Msg.r_inc;
           seq = rid.Msg.r_seq;
           site_inc = k.incarnation;
           label = Msg.label env.Msg.payload;
         }));
  r

(* Exactly-once dispatch for rid-tagged requests (locus_chaos). Three
   layers, in order:
   - the per-client ack watermark fences late wire copies of requests the
     client has already finished ("stale"): they must neither execute nor
     be answered from a cache entry (it was evicted), and answering
     [R_err] is safe because the client is, by definition, gone;
   - the reply cache answers duplicates of a finished request ([Cached])
     and parks duplicates of one still executing ([Running]) on its ivar,
     so concurrent wire copies share the one execution;
   - otherwise this copy is the one that executes. Only replies that had
     an effect are cached (and capped FIFO-style); [R_err]/[R_retry]
     leave no entry so a retry after a refusal runs the handler again. *)
and handle_rid k ~src (env : Msg.env) (rid : Msg.rid) =
  let client = (rid.Msg.r_site, rid.Msg.r_inc) in
  let acked =
    match Hashtbl.find_opt k.rc_acked client with Some a -> a | None -> -1
  in
  if rid.Msg.r_ack > acked then begin
    Hashtbl.replace k.rc_acked client rid.Msg.r_ack;
    Hashtbl.filter_map_inplace
      (fun (s, i, q) slot ->
        match slot with
        | Cached _ when (s, i) = client && q <= rid.Msg.r_ack -> None
        | _ -> Some slot)
      k.reply_cache
  end;
  let acked = max acked rid.Msg.r_ack in
  if rid.Msg.r_seq <= acked then begin
    Stats.incr (stats k) "net.dedup_stale";
    Msg.R_err "stale request"
  end
  else if !Locus_net.Flags.break_dedup then exec_rid k ~src env rid
  else begin
    let key = (rid.Msg.r_site, rid.Msg.r_inc, rid.Msg.r_seq) in
    match Hashtbl.find_opt k.reply_cache key with
    | Some (Cached r) ->
      Stats.incr (stats k) "net.dedup_hits";
      r
    | Some (Running iv) ->
      Stats.incr (stats k) "net.dedup_waits";
      Engine.await iv
    | None ->
      let iv = Engine.Ivar.create () in
      Hashtbl.replace k.reply_cache key (Running iv);
      let r = exec_rid k ~src env rid in
      ignore (Engine.try_fill k.engine iv r);
      let acked_now =
        match Hashtbl.find_opt k.rc_acked client with Some a -> a | None -> -1
      in
      (match r with
      | Msg.R_err _ | Msg.R_retry -> Hashtbl.remove k.reply_cache key
      | _ when rid.Msg.r_seq <= acked_now ->
        (* The client gave up and acked past us while we ran. *)
        Hashtbl.remove k.reply_cache key
      | _ ->
        Hashtbl.replace k.reply_cache key (Cached r);
        Queue.push key k.reply_cache_q;
        while Queue.length k.reply_cache_q > reply_cache_capacity do
          let old = Queue.pop k.reply_cache_q in
          match Hashtbl.find_opt k.reply_cache old with
          | Some (Cached _) -> Hashtbl.remove k.reply_cache old
          | Some (Running _) | None -> ()
        done);
      r
  end

(* The wire entry point. Requests without a rid (the reliable-network
   default) take the historical path untouched; [Batch] members re-enter
   here individually, each with its own rid. *)
and handle k ~src (env : Msg.env) =
  match env.Msg.rid with
  | None -> handle_env k ~src env
  | Some rid -> handle_rid k ~src env rid

(* {1 Crash, restart, recovery (§4.3-4.4)} *)

let kernel_crash k =
  tr k Trace.Recovery "crash";
  k.alive <- false;
  k.recovered <- false;
  Status.clear k.repl;
  Hashtbl.reset k.known_primary;
  (* Records waiting in a group-commit window were never forced: drop
     them with the crash, atomically with their waiters (the flusher
     fiber dies with the site). *)
  List.iter Volume.reset_group_commit (Filestore.volumes k.store);
  Filestore.crash k.store;
  Cache.clear k.cache;
  Proc_table.clear k.procs;
  Txn_state.crash k.txns;
  Participant.crash k.participant;
  Pc_acceptor.crash k.pc_acceptor;
  Hashtbl.reset k.resolving;
  (* Doubt is volatile state: the recovery scan recounts it. *)
  Stats.add (stats k) "txn.in_doubt" (-(Hashtbl.length k.doubted));
  Hashtbl.reset k.doubted;
  Hashtbl.reset k.locks;
  Hashtbl.reset k.fibers;
  Hashtbl.reset k.end_waits;
  Hashtbl.reset k.delegations;
  Hashtbl.reset k.hosted;
  Hashtbl.reset k.lock_origins;
  Hashtbl.reset k.shard_owned;
  Hashtbl.reset k.shard_epochs;
  Hashtbl.reset k.shard_hints;
  Hashtbl.reset k.shard_origins;
  Hashtbl.reset k.shard_migrating;
  (* Exactly-once state is volatile by design: the server-side cache dies
     with the incarnation (post-restart re-execution is benign, the state
     the first run produced died too), and the client-side allocator
     restarts at 0 under a fresh incarnation. *)
  Hashtbl.reset k.reply_cache;
  Queue.clear k.reply_cache_q;
  Hashtbl.reset k.rc_acked;
  Hashtbl.reset k.rid_outstanding

(* Re-install exclusive locks over the byte ranges named by prepared
   intentions: in-doubt data must stay inaccessible until the outcome is
   known (§4.2 stores the lock lists in the prepare log for exactly this). *)
let relock_prepared k txid =
  let owner = Owner.Transaction txid in
  let psz = k.cl.cfg.Config.page_size in
  List.iter
    (fun (it : Intentions.t) ->
      let table = ensure_table k it.Intentions.fid in
      List.iter
        (fun (p : Intentions.page_commit) ->
          List.iter
            (fun (off, len) ->
              let pos = (p.Intentions.index * psz) + off in
              match
                Lock_table.request table ~owner
                  ~pid:(Pid.make ~origin:k.site ~num:0)
                  ~mode:Mode.Exclusive
                  ~range:(Byte_range.of_pos_len ~pos ~len)
                  ~non_transaction:false
              with
              | `Granted ->
                Lock_table.mark_retained table owner
                  ~range:(Byte_range.of_pos_len ~pos ~len)
              | `Conflict _ -> ())
            p.Intentions.ranges)
        it.Intentions.pages)
    (Participant.prepared_intentions k.participant txid)

let recover k =
  with_span k ~cat:"recovery" "recovery" @@ fun () ->
  let cl = k.cl in
  tr k Trace.Recovery "recovery starts";
  (* Acceptor pass first: replay registered Paxos Commit votes, so this
     site can answer Vote_2a / Decision_query again before anything that
     might depend on the acceptor quorum (including our own passes). *)
  Pc_acceptor.recover k.pc_acceptor;
  k.acc_ready <- true;
  (* Rebuild prepared participant state BEFORE replaying the coordinator
     log: the replay's phase-2 to this very site must land on real
     prepared state — against an empty participant it would ack a no-op,
     the coordinator would mark the transaction finished and garbage-
     collect the acceptors, and the in-doubt state rebuilt below could
     never resolve. (Remote coordinators replaying concurrently bounce on
     the [par_ready] gate for the same reason.) *)
  let in_doubt = Participant.recover k.participant in
  tr k Trace.Recovery "participant: %d in doubt" (List.length in_doubt);
  List.iter
    (fun (txid, _) ->
      (* Under dynamic placement the relocks below land in local tables:
         pull each file's lock-manager role home first so they are
         authoritative. If the role's current owner survives unreachable,
         leave it — its transferred table still retains our locks. *)
      if sharded cl then
        List.iter
          (fun fid -> try shard_claim_home k fid with Denied _ -> ())
          (Participant.prepared_files k.participant txid);
      relock_prepared k txid;
      enter_doubt k txid)
    in_doubt;
  k.par_ready <- true;
  (* Coordinator pass: finish or abort every transaction in the log. *)
  let records = Coord_log.scan k.coord in
  tr k Trace.Recovery "coordinator log: %d records" (List.length records);
  List.iter
    (fun (c : Log_record.coordinator) ->
      let txid = c.Log_record.txid in
      let by_site =
        List.fold_left
          (fun acc (fid, s) ->
            match List.assoc_opt s acc with
            | Some r ->
              r := fid :: !r;
              acc
            | None -> (s, ref [ fid ]) :: acc)
          [] c.Log_record.files
      in
      let decision =
        match c.Log_record.status with
        | Log_record.Committed -> Some true
        | Log_record.Aborted -> Some false
        | Log_record.Unknown -> (
          match paxos_f cl with
          | None -> Some false (* presumed abort (§4.4) *)
          | Some f -> (
            (* Under Paxos Commit an Unknown record does not mean abort:
               the votes may have reached their quorums (and participants
               may already have resolved commit from them while we were
               down). Recompute the decision from the acceptor set — the
               same deterministic function every resolver applies. *)
            match
              pcommit_read_decision k ~txid ~f ~hint:(List.map fst by_site)
            with
            | `Commit -> Some true
            | `Abort -> Some false
            | `Unknown ->
              Stats.incr (stats k) "pcommit.coord_unresolved";
              None))
      in
      match decision with
      | None ->
        (* Keep the Unknown record; a later recovery (or the participants'
           own resolvers) will finish the job. *)
        ()
      | Some committed ->
        (if c.Log_record.status = Log_record.Unknown then
           Coord_log.decide k.coord ~txid
             (if committed then Log_record.Committed else Log_record.Aborted));
        (* Replayed decision: re-announce the outcome (the checker keeps the
           first outcome event per transaction, so duplicates are harmless,
           and a crash before the decision point leaves only this one). *)
        obs k (if committed then Obs.Commit { txid } else Obs.Abort { txid });
        let all_acked = ref true in
        List.iter
          (fun (s, r) ->
            let msg =
              if committed then Msg.Commit_phase2 { txid; files = !r }
              else Msg.Abort_phase2 { txid; files = !r }
            in
            match
              rpc_retry_p cl cl.cfg.Config.retries.Config.replay
                ~retry_if:(fun r -> r <> Msg.R_ok)
                ~src:k.site ~dst:s (envelope cl msg)
            with
            | Ok Msg.R_ok -> ()
            | Ok _ | Error _ -> all_acked := false)
          by_site;
        if !all_acked then begin
          Coord_log.finished k.coord ~txid;
          pcommit_forget k ~txid
        end;
        Stats.incr (stats k)
          (if committed then "recovery.replayed_commit" else "recovery.replayed_abort"))
    records;
  k.coord_ready <- true;
  (* Chase the coordinators for the outcomes of the in-doubt state the
     participant pass above rebuilt. *)
  List.iter
    (fun (txid, coord_site) ->
      match paxos_f cl with
      | Some f ->
        (* Non-blocking path: the outcome is a function of the acceptor
           quorum — no need to wait for the coordinator site at all. *)
        pcommit_resolve k ~txid ~f
      | None ->
        let rec ask tries =
          if tries > 100 then Stats.incr (stats k) "recovery.still_in_doubt"
          else begin
            let reply =
              match
                rpc_retry_p cl cl.cfg.Config.retries.Config.outcome
                  ~retry_if:(fun r ->
                    if r = Msg.R_retry then begin
                      (* The coordinator is up but its own recovery has not
                         replayed the log yet: bounce, don't misread it as a
                         permanent failure. *)
                      Stats.incr (stats k) "recovery.outcome_retries";
                      true
                    end
                    else false)
                  ~src:k.site ~dst:coord_site
                  (envelope cl (Msg.Query_outcome { txid }))
              with
              | Ok r -> r
              | Error e -> Msg.R_err (Fmt.str "%a" Transport.pp_error e)
            in
            match reply with
            | Msg.R_outcome (Some Log_record.Committed) ->
              ss_commit2 k ~txid ~files:[]
            | Msg.R_outcome (Some Log_record.Aborted) | Msg.R_outcome None ->
              (* Presumed abort: a coordinator with no record must have
                 aborted (or finished long ago — in which case it had already
                 heard our ack, impossible while we are in doubt). *)
              ss_abort2 k ~txid ~files:[]
            | Msg.R_outcome (Some Log_record.Unknown) | Msg.R_err _ | _ ->
              Engine.sleep 5_000_000;
              ask (tries + 1)
          end
        in
        ask 0)
    in_doubt;
  (* Only now may co-hosts reconcile against us: every in-doubt commit
     has been applied (and propagated) or aborted. *)
  k.recovered <- true

let kernel_restart k =
  k.alive <- true;
  k.incarnation <- k.incarnation + 1;
  k.coord_ready <- false;
  k.par_ready <- false;
  k.acc_ready <- false;
  k.recovered <- false;
  k.txseq <- 0;
  k.rid_seq <- 0;  (* the bumped incarnation disambiguates reused seqs *)
  k.coord <- Coord_log.create (Coord_log.volume k.coord);
  (* Whatever propagation we missed while down is invisible to us:
     every replicated copy is suspect until reconciled. The topology
     watcher (which runs right after the restart watchers) spawns the
     reconcilers. *)
  List.iter
    (fun vid -> ignore (Status.degrade k.repl vid))
    (hosted_replicated_vids k);
  ignore
    (Engine.spawn ~name:(Printf.sprintf "recovery@%d" k.site) ~site:k.site k.engine
       (fun () -> recover k))

(* Topology change (§4.3): abort active transactions that span lost sites,
   and clean up storage-site state left by unreachable transactions that
   never prepared. *)
let topology_sweep k =
  let cl = k.cl in
  ignore
    (Engine.spawn ~name:(Printf.sprintf "topo-sweep@%d" k.site) ~site:k.site
       k.engine (fun () ->
         (* As a transaction-home site. *)
         List.iter
           (fun (txn : Txn_state.txn) ->
             if txn.Txn_state.phase = Txn_state.Active then begin
               let member_sites =
                 match Hashtbl.find_opt cl.txn_members txn.Txn_state.txid with
                 | Some r -> List.map snd !r
                 | None -> []
               in
               let file_sites = List.map snd txn.Txn_state.file_list in
               let lost =
                 List.exists
                   (fun s -> not (Transport.reachable cl.net k.site s))
                   (member_sites @ file_sites)
               in
               if lost then begin
                 Stats.incr (stats k) "txn.topology_aborts";
                 abort_transaction cl ~reason:Crash ~src:k.site
                   txn.Txn_state.txid
               end
             end)
           (Txn_state.active k.txns);
         (* Delegated-out lock authority at a site that just became
            unreachable is lost with that site's volatile state: resume at
            home with an empty table (owning transactions get aborted by
            the sweeps below). *)
         let stale_delegations =
           Hashtbl.fold
             (fun fid d acc ->
               if not (Transport.reachable cl.net k.site d) then fid :: acc
               else acc)
             k.delegations []
         in
         List.iter
           (fun fid ->
             Hashtbl.replace k.locks fid (Lock_table.create fid);
             Hashtbl.remove k.delegations fid;
             note_lock_authority cl fid k.site;
             Stats.incr (stats k) "delegation.lost")
           stale_delegations;
         (* Hosted lock authority whose home storage site is gone dies
            with it. *)
         let stale_hosted =
           Hashtbl.fold
             (fun fid home acc ->
               if not (Transport.reachable cl.net k.site home) then fid :: acc
               else acc)
             k.hosted []
         in
         List.iter
           (fun fid ->
             Hashtbl.remove k.hosted fid;
             Hashtbl.remove k.locks fid)
           stale_hosted;
         (* As a storage site: foreign unprepared transactions whose home
            is unreachable are aborted locally; prepared ones stay in
            doubt. *)
         let foreign_txids =
           Hashtbl.fold
             (fun _ table acc ->
               List.fold_left
                 (fun acc (l : Lock_table.lock) ->
                   match l.Lock_table.owner with
                   | Owner.Transaction txid
                     when not (List.exists (Txid.equal txid) acc) ->
                     txid :: acc
                   | Owner.Transaction _ | Owner.Process _ -> acc)
                 acc (Lock_table.locks table))
             k.locks []
         in
         List.iter
           (fun txid ->
             if not (Participant.is_prepared k.participant txid) then begin
               let home =
                 match Hashtbl.find_opt cl.txn_tops txid with
                 | Some top -> location_hint cl top
                 | None -> None
               in
               let unreachable =
                 match home with
                 | Some s -> not (Transport.reachable cl.net k.site s)
                 | None -> false
               in
               if unreachable then begin
                 Stats.incr (stats k) "txn.storage_site_aborts";
                 count_abort cl Orphan;
                 ss_abort2 k ~txid ~files:[];
                 (* Unprepared + home lost = the transaction can never
                    commit (a prepare here would now vote no): record the
                    abort so the checker knows its writes were discarded
                    before any later reader was granted the freed locks. *)
                 obs k (Obs.Abort { txid })
               end
             end)
           foreign_txids;
         (* Prepared transactions whose coordinator just became
            unreachable are in doubt. Under 2PC that is terminal until the
            coordinator recovers (the gauge makes the blocking window
            visible); under Paxos Commit the acceptor set holds the
            decision, so spawn a resolver and decide without it. *)
         List.iter
           (fun txid ->
             match Participant.coordinator_of k.participant txid with
             | Some coord
               when coord <> k.site
                    && not (Transport.reachable cl.net k.site coord) -> (
               enter_doubt k txid;
               match paxos_f cl with
               | None -> ()
               | Some f ->
                 Stats.incr (stats k) "pcommit.coordinator_lost";
                 ignore
                   (Engine.spawn ~name:"pcommit-resolve" ~site:k.site
                      k.engine (fun () -> pcommit_resolve k ~txid ~f)))
             | Some _ | None -> ())
           (Participant.prepared_transactions k.participant)))

(* Replica freshness on a topology change. A secondary that lost sight
   of a co-host (or whose primary moved) may have missed propagation and
   degrades until reconciled. A site that just became primary degrades
   too: the old primary may have committed versions it never saw. A
   primary that stayed primary keeps serving — it authored every version,
   so it cannot be stale, and the secondaries cannot advance without it. *)
let replica_topology_mark k =
  let cl = k.cl in
  List.iter
    (fun vid ->
      let p = storage_site cl (File_id.make ~vid ~ino:0) in
      let prev = Hashtbl.find_opt k.known_primary vid in
      Hashtbl.replace k.known_primary vid p;
      let degraded_now = Status.state k.repl vid = Status.Degraded in
      let any_lost =
        match Hashtbl.find_opt cl.vol_hosts vid with
        | Some hosts ->
          List.exists
            (fun h -> h <> k.site && not (Transport.reachable cl.net k.site h))
            hosts
        | None -> false
      in
      if p <> k.site then begin
        if any_lost || prev <> Some p || degraded_now then mark_degraded k vid
      end
      else if prev <> Some k.site || degraded_now then mark_degraded k vid)
    (hosted_replicated_vids k)

(* {1 Construction} *)

let make engine cfg =
  let n_sites = cfg.Config.n_sites in
  if cfg.Config.shards > 0 && cfg.Config.lock_delegation then
    invalid_arg "Kernel.make: lock_delegation and shards are mutually exclusive";
  (match cfg.Config.commit_protocol with
  | Config.Two_phase -> ()
  | Config.Paxos { f } ->
    if f < 0 then invalid_arg "Kernel.make: Paxos f must be >= 0";
    if n_sites < (2 * f) + 1 then
      invalid_arg "Kernel.make: Paxos needs n_sites >= 2f+1 acceptor sites");
  List.iter
    (fun s ->
      if not (List.exists (fun (_, hosts) -> List.mem s hosts) cfg.Config.volumes)
      then
        invalid_arg
          (Printf.sprintf
             "Kernel.make: site %d hosts no volume (needed for its coordinator log)"
             s))
    (List.init n_sites Fun.id);
  let net =
    Transport.create ~rpc_timeout_us:cfg.Config.rpc_timeout_us engine ~n_sites
  in
  let cl =
    {
      cfg;
      c_engine = engine;
      net;
      ks = [||];
      namespace = Hashtbl.create 64;
      paths = Hashtbl.create 64;
      vol_hosts = Hashtbl.create 8;
      primaries = Hashtbl.create 8;
      locations = Hashtbl.create 64;
      exit_ivars = Hashtbl.create 64;
      lock_authority = Hashtbl.create 16;
      root_dir = None;
      txn_tops = Hashtbl.create 32;
      txn_members = Hashtbl.create 32;
      hooks = no_hooks ();
      observer = None;
      otracer = None;
      shard_dir =
        (if cfg.Config.shards > 0 then
           Some (Shard_dir.create ~n_shards:cfg.Config.shards ~n_sites)
         else None);
      health = None;
    }
  in
  List.iter
    (fun (vid, hosts) ->
      if hosts = [] then invalid_arg "Kernel.make: volume with no hosts";
      Hashtbl.replace cl.vol_hosts vid hosts)
    cfg.Config.volumes;
  let make_kernel s =
    let cache = Cache.create ~capacity_pages:cfg.Config.cache_pages engine in
    let store = Filestore.create engine ~cache in
    let hosted =
      List.filter_map
        (fun (vid, hosts) -> if List.mem s hosts then Some vid else None)
        cfg.Config.volumes
    in
    List.iter
      (fun vid ->
        let vol = Volume.create engine ~vid ~page_size:cfg.Config.page_size () in
        Volume.set_two_write_log vol cfg.Config.two_write_log;
        if cfg.Config.group_commit_window_us > 0 then begin
          Volume.set_group_commit vol ~site:s
            ~window_us:cfg.Config.group_commit_window_us;
          (* The trace hook reads [cl.otracer] at flush time, so spans
             appear as soon as a collector is installed. *)
          Volume.set_group_trace vol (fun ~size f ->
              match cl.otracer with
              | None -> f ()
              | Some otr ->
                Otrace.with_span otr ~site:s ~cat:"txn"
                  ~args:[ ("size", string_of_int size) ]
                  "commit.batch" f)
        end;
        Filestore.mount store vol)
      hosted;
    let participant = Participant.create store in
    Participant.set_prepare_log_per_file participant cfg.Config.prepare_log_per_file;
    let log_vol =
      match hosted with
      | vid :: _ -> Option.get (Filestore.volume store ~vid)
      | [] -> assert false
    in
    let known_primary = Hashtbl.create 8 in
    List.iter
      (fun (vid, hosts) ->
        if List.mem s hosts then Hashtbl.replace known_primary vid (List.hd hosts))
      cfg.Config.volumes;
    {
      site = s;
      engine;
      alive = true;
      incarnation = 1;
      txseq = 0;
      coord_ready = true;
      par_ready = true;
      recovered = true;
      repl = Status.create ();
      known_primary;
      cache;
      store;
      locks = Hashtbl.create 32;
      procs = Proc_table.create ~site:s;
      txns = Txn_state.create ();
      participant;
      coord = Coord_log.create log_vol;
      pc_acceptor = Pc_acceptor.create log_vol;
      acc_ready = true;
      resolving = Hashtbl.create 8;
      doubted = Hashtbl.create 8;
      fibers = Hashtbl.create 32;
      end_waits = Hashtbl.create 8;
      delegations = Hashtbl.create 8;
      hosted = Hashtbl.create 8;
      lock_origins = Hashtbl.create 8;
      shard_owned = Hashtbl.create 8;
      shard_epochs = Hashtbl.create 8;
      shard_hints = Hashtbl.create 16;
      shard_origins = Hashtbl.create 8;
      shard_migrating = Hashtbl.create 4;
      reply_cache = Hashtbl.create 32;
      reply_cache_q = Queue.create ();
      rc_acked = Hashtbl.create 8;
      rid_seq = 0;
      rid_outstanding = Hashtbl.create 8;
      cl;
    }
  in
  cl.ks <- Array.init n_sites make_kernel;
  Array.iter
    (fun k -> Transport.set_handler net k.site (fun ~src msg -> handle k ~src msg))
    cl.ks;
  if cfg.Config.rpc_batch_window_us > 0 then
    Transport.set_batch net ~window_us:cfg.Config.rpc_batch_window_us
      ~wrap:(fun envs -> { Msg.ctx = None; rid = None; payload = Msg.Batch envs })
      ~unwrap:(function Msg.R_batch rs -> Some rs | _ -> None)
      ~trace:(fun ~site ~size f ->
        match cl.otracer with
        | None -> f ()
        | Some otr ->
          Otrace.with_span otr ~site ~cat:"net"
            ~args:[ ("size", string_of_int size) ]
            "rpc.batch" f)
      ();
  (match cfg.Config.net_faults with
  | None -> ()
  | Some f ->
    Transport.set_faults net (Some f);
    Transport.on_fault net (fun ~src ~dst kind ->
        observe cl ~site:src (Obs.Net_fault { dst; kind })));
  Transport.on_crash net (fun s ->
      kernel_crash cl.ks.(s);
      (* Client crash announcement: servers drop the crashed site's
         reply-cache entries and ack watermark — its next incarnation is
         a fresh id space, so nothing of the old one can be needed. *)
      Array.iter
        (fun k ->
          if k.site <> s then begin
            Hashtbl.filter_map_inplace
              (fun (cs, _, _) slot -> if cs = s then None else Some slot)
              k.reply_cache;
            Hashtbl.filter_map_inplace
              (fun (cs, _) a -> if cs = s then None else Some a)
              k.rc_acked
          end)
        cl.ks);
  Transport.on_restart net (fun s -> kernel_restart cl.ks.(s));
  Transport.on_topology_change net (fun () ->
      Array.iter
        (fun k ->
          if k.alive then begin
            topology_sweep k;
            replica_topology_mark k
          end)
        cl.ks);
  health_arm cl;
  cl

let crash_site cl s = Transport.crash cl.net s
let restart_site cl s = Transport.restart cl.net s

(* {1 Test and bench oracles} *)

let read_committed_oracle cl fid =
  let k = kernel cl (storage_site cl fid) in
  match Filestore.volume k.store ~vid:fid.File_id.vid with
  | None -> ""
  | Some vol ->
    if not (Volume.inode_exists vol fid.File_id.ino) then ""
    else begin
      let inode = Volume.read_inode_nosim vol fid.File_id.ino in
      let psz = Volume.page_size vol in
      let out = Bytes.make inode.Volume.size '\000' in
      Array.iteri
        (fun index slot ->
          if slot <> -1 then begin
            let content = Volume.read_page_nosim vol slot in
            let base = index * psz in
            let len = min psz (inode.Volume.size - base) in
            if len > 0 then Bytes.blit content 0 out base len
          end)
        inode.Volume.pages;
      Bytes.to_string out
    end

let active_transactions cl =
  Array.to_list cl.ks
  |> List.concat_map (fun k ->
         if k.alive then
           List.map (fun (t : Txn_state.txn) -> t.Txn_state.txid) (Txn_state.active k.txns)
         else [])

(* Liveness oracle: prepared state still present on a live site once the
   system has quiesced means a participant is blocked in-doubt — the
   non-blocking property Paxos Commit must provide (and 2PC lacks when
   the coordinator stays down). *)
let in_doubt_participants cl =
  Array.to_list cl.ks
  |> List.concat_map (fun k ->
         if k.alive then
           List.map
             (fun txid -> (k.site, txid))
             (Participant.prepared_transactions k.participant)
         else [])

let acceptor k = k.pc_acceptor

(* {1 Replication introspection} *)

type replica_host_status = {
  rh_site : int;
  rh_alive : bool;
  rh_fresh : bool;
  rh_primary : bool;
  rh_versions : (int * int) list;  (* (ino, committed version) *)
}

type replica_volume_status = {
  rv_vid : int;
  rv_primary : int;
  rv_hosts : replica_host_status list;
}

let replica_fresh cl ~site:s ~vid = Status.fresh cl.ks.(s).repl vid

let replica_status cl =
  Hashtbl.fold (fun vid hosts acc -> (vid, hosts) :: acc) cl.vol_hosts []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.map (fun (vid, hosts) ->
         let primary = storage_site cl (File_id.make ~vid ~ino:0) in
         let rv_hosts =
           List.map
             (fun s ->
               let k = cl.ks.(s) in
               let rh_versions =
                 match Filestore.volume k.store ~vid with
                 | None -> []
                 | Some vol ->
                   Volume.inode_numbers vol
                   |> List.map (fun ino ->
                          (ino, Volume.inode_version_nosim vol ino))
                   |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
               in
               {
                 rh_site = s;
                 rh_alive = k.alive;
                 rh_fresh = Status.fresh k.repl vid;
                 rh_primary = s = primary;
                 rh_versions;
               })
             hosts
         in
         { rv_vid = vid; rv_primary = primary; rv_hosts })
