(** Observable execution events for the serializability checker.

    The kernel and the syscall layer emit one {!record} per protocol-level
    action — begin / read / write / lock / unlock / commit / abort, plus
    the conventional per-file commit and abort of non-transaction work —
    to an optional per-cluster {!sink} (see [Kernel.set_observer]).

    Unlike {!Locus_sim.Trace} this is not a debugging ring of strings: the
    events carry the typed identities (owner, file, byte range, payload)
    that [Locus_check] needs to rebuild conflict graphs, so they must not
    be truncated or sampled. With no sink installed the cost is one
    [option] test per event site. *)

type access = {
  owner : Owner.t;  (** the transaction or the process itself *)
  pid : Pid.t;  (** issuing process *)
  fid : File_id.t;
  range : Byte_range.t;
  data : string;  (** bytes read or written *)
}

type event =
  | Begin of { txid : Txid.t; pid : Pid.t }
  | Read of access
  | Write of access
  | Lock of {
      owner : Owner.t;
      pid : Pid.t;
      fid : File_id.t;
      range : Byte_range.t;
      mode : Mode.t;
      non_transaction : bool;  (** a §3.4 serializability-exception lock *)
    }
  | Unlock of { owner : Owner.t; pid : Pid.t; fid : File_id.t; range : Byte_range.t }
  | Commit of { txid : Txid.t }  (** the commit mark is durable (§4.2 step 4) *)
  | Abort of { txid : Txid.t }
  | File_commit of { owner : Owner.t; fid : File_id.t }
      (** non-transaction commit: close / commit_file / process exit *)
  | File_abort of { owner : Owner.t; fid : File_id.t }
  | Replica_read of { access : access; version : int; degraded : bool }
      (** a read served from a replicated volume: emitted at the serving
          site with the serving copy's committed version. [degraded] marks
          failover service from a copy that may have missed updates
          (primary unreachable / reconciliation pending); the checker
          treats staleness of degraded reads as permitted. *)
  | Propagate of { fid : File_id.t; version : int; dst : int }
      (** primary pushed the versioned committed update to secondary [dst] *)
  | Reconcile of { fid : File_id.t; version : int; src : int }
      (** reconciliation pulled [fid] up to [version] from co-host [src] *)
  | Failover of { vid : int; fid : File_id.t }
      (** a degraded copy served a read because the primary was
          unreachable *)
  | Migrate of { fid : File_id.t; from_site : int; to_site : int; epoch : int }
      (** the lock-manager role for [fid] changed hands (locus_shard):
          emitted at the installing site when a transfer envelope lands,
          or when a fresh table is installed over a crashed owner. The
          epoch-fence oracle uses these to know which site was allowed to
          grant locks on [fid] in every interval of the run. *)
  | Net_fault of { dst : int; kind : [ `Drop | `Dup | `Reorder ] }
      (** the chaos layer (locus_chaos) injected a fault on the wire
          leaving [record.site] for [dst]. Informational: lets a trace
          reader correlate anomalies with injected loss. *)
  | Rpc_exec of { client : int; inc : int; seq : int; site_inc : int; label : string }
      (** a rid-tagged request executed its handler at [record.site]
          (running incarnation [site_inc]) and produced a cacheable reply.
          The exactly-once oracle flags a second execution of the same
          [(client, inc, seq, site, site_inc)] as a [Dup_apply] violation —
          the reply cache must answer every duplicate after the first.
          A re-execution after the server crashed (different [site_inc])
          is benign: the crash wiped the volatile state the first
          execution produced. *)
  | Alarm of { name : string; detail : string }
      (** the health watchdog (locus_health) raised the named threshold
          rule at [record.site] (site 0 stands in for cluster-scope
          rules). First-class events so the checker can assert both
          directions: clean runs raise none, and injected faults raise
          the matching one. *)

type record = { at : int; site : int; ev : event }
(** [at] is virtual time; global order within a run is the emission
    order (the simulation is single-threaded). *)

type sink = record -> unit

val pp_event : event Fmt.t
val pp : record Fmt.t
