(** Kernel-to-kernel lightweight message types.

    One request/reply pair per kernel service, mirroring the paper's
    protocol inventory: remote file access and locking (§5.1), file-list
    merging and process migration (§4.1), the two-phase commit and abort
    messages (§4.2–4.3), outcome queries for recovery (§4.4), and replica
    propagation (§5.2). *)

type t =
  | Open of { fid : File_id.t }
  | Close of { fid : File_id.t; owner : Owner.t; commit_on_close : bool }
  | Read of { fid : File_id.t; reader : Owner.t; pid : Pid.t; pos : int; len : int }
  | Write of { fid : File_id.t; owner : Owner.t; pid : Pid.t; pos : int; data : Bytes.t }
  | Lock of {
      fid : File_id.t;
      owner : Owner.t;
      pid : Pid.t;
      mode : Mode.t;
      range : Byte_range.t;
      non_transaction : bool;
      wait : bool;
    }
  | Lock_append of {
      fid : File_id.t;
      owner : Owner.t;
      pid : Pid.t;
      len : int;
      mode : Mode.t;
      non_transaction : bool;
    }  (** lock-and-extend at EOF, atomically (§3.2) *)
  | Unlock of { fid : File_id.t; owner : Owner.t; pid : Pid.t; range : Byte_range.t }
  | Commit_file of { fid : File_id.t; owner : Owner.t }
  | Abort_file of { fid : File_id.t; owner : Owner.t }
  | File_size of { fid : File_id.t }
  | Create_file of { vid : int }
  | Member_join of { top : Pid.t; txid : Txid.t }
  | Merge_file_list of {
      top : Pid.t;
      txid : Txid.t;
      files : (File_id.t * int) list;
    }  (** child's file-list travelling to the top-level process (§4.1) *)
  | Proc_arrive of { payload : string }  (** marshalled migration payload *)
  | Proc_exit_cleanup of { pid : Pid.t; fids : File_id.t list }
  | Prepare of {
      txid : Txid.t;
      coordinator_site : int;
      files : File_id.t list;
      participants : int list;
    }
      (** [participants] is the transaction's full participant-site set,
          empty under plain 2PC; under Paxos Commit each participant
          records it with its acceptor votes so any reader of a single
          registered vote learns which consensus instances exist *)
  | Commit_phase2 of { txid : Txid.t; files : File_id.t list }
  | Abort_phase2 of { txid : Txid.t; files : File_id.t list }
  | Abort_tree of { txid : Txid.t; pid : Pid.t; spare : Pid.t option }
      (** cascade abort to the member process [pid] at the target site
          (§4.3); [spare]'s fiber is not killed (it issued the abort) *)
  | Query_outcome of { txid : Txid.t }
  | Vote_2a of {
      txid : Txid.t;
      participant : int;
      vote : bool;
      ballot : int;
      participants : int list;
    }
      (** Paxos Commit phase-2a: offer [participant]'s Prepared/Aborted
          vote to an acceptor. Ballot 0 = the participant's own vote cast
          during prepare; ballot 1 = a closure vote (always [false])
          offered by a recovering party. Registration is first-writer-wins;
          answered with [R_vote_2b] carrying the registered value *)
  | Decision_query of { txid : Txid.t }
      (** Paxos Commit recovery: ask an acceptor for every vote it has
          registered for [txid]; answered with [R_decision], or [R_retry]
          while the acceptor is still replaying its log *)
  | Acceptor_forget of { txid : Txid.t }
      (** Paxos Commit garbage collection: the transaction is fully done
          (every participant acked phase 2), so the acceptor may drop its
          registered votes and release their log records. Best-effort —
          a lost forget only costs memory, never correctness. *)
  | Find_process of { pid : Pid.t }
  | Replica_commit of { update : Update.t }
      (** phase-2 propagation from the primary copy: a versioned delta of
          the pages one commit touched (§4.2 / §5.2). The secondary applies
          it if it is exactly the next version, ignores duplicates, and
          pulls a full snapshot on a gap. *)
  | Replica_pull of { fid : File_id.t }
      (** reconciliation: ask a co-host for a full versioned snapshot of
          its committed copy; answered with [R_update] *)
  | Replica_versions of { vid : int }
      (** reconciliation: ask a co-host for (ino, committed version) of
          every file on its copy of the volume; answered with
          [R_versions], or [R_retry] while the host is still recovering *)
  | Replica_read of {
      fid : File_id.t;
      reader : Owner.t;
      pid : Pid.t;
      pos : int;
      len : int;
    }
      (** serve committed bytes from a local secondary copy; answered with
          [R_data], or [R_retry] when the copy is degraded and the primary
          is still reachable (caller should go there instead) *)
  | Delegate_locks of { fid : File_id.t; payload : string }
      (** home storage site hands lock management for [fid] to the target
          site (§5.2 lock-control migration); payload = marshalled lock list *)
  | Recall_locks of { fid : File_id.t }
      (** home storage site takes lock management back (needed before
          prepare or data access); delegate replies [R_data] with the
          marshalled locks, or [R_retry] while it has waiters *)
  | Shard_lookup of { fid : File_id.t }
      (** ask the shard's directory site who owns the lock-manager role
          for [fid] now; answered with [R_owner] *)
  | Shard_claim of { fid : File_id.t; new_owner : int; from_epoch : int }
      (** epoch CAS at the directory site: move the role to [new_owner]
          iff the entry is still at [from_epoch]. Answered with [R_owner]
          carrying the post-claim state — the claim won iff it names
          [new_owner] at [from_epoch + 1]. *)
  | Shard_migrate of { fid : File_id.t; epoch : int; payload : string }
      (** the ownership transfer envelope: the old owner's marshalled
          lock table (retained-lock state included) riding to the new
          owner, stamped with the epoch the directory just granted. A
          receiver that has already seen a higher (or equal) epoch fences
          the straggler with [R_err]. *)
  | Shard_migrate_req of { fid : File_id.t; dst : int }
      (** ask the current owner to migrate the role to [dst] (recovery
          pulling a role home, or injected migration faults); answered
          [R_ok] on transfer, [R_retry] mid-migration, [R_redirect] when
          this site is not the owner *)
  | Shard_handoff of { fid : File_id.t }
      (** hand-off handshake: asked of the site a directory entry records
          as the last claimer, before the recorded owner adopts the role
          from a fresh table. Answered [R_int 1] while the claimer still
          has the transfer in flight (the old lock table — and the
          transactions it protects — are then still live, so adoption
          must wait), [R_int 0] once it has stood down or aborted the
          stranded owners. *)
  | Ensure_lock of {
      fid : File_id.t;
      owner : Owner.t;
      pid : Pid.t;
      range : Byte_range.t;
      write : bool;
      momentary : bool;
      dirty : bool;
    }
      (** storage site → remote lock-manager: take (or confirm) the
          implicit §3.1 lock for a data access. [momentary] = process
          access (answered with [R_pieces], released again after the
          operation); [dirty] = the range overlaps uncommitted bytes of
          another owner, so the grant must be retained (Rule 2 splits
          across sites: the lock-manager retains, the storage site
          adopts). *)
  | Release_locks of {
      fid : File_id.t;
      owner : Owner.t;
      pid : Pid.t;
      ranges : Byte_range.t list option;
      cancel : bool;
    }
      (** storage site → remote lock-manager: drop [owner]'s locks on
          [fid] — specific [ranges] (momentary release) or all of them
          (phase 2 / abort); [cancel] also evicts the owner's waiters *)
  | Ping
  | Health_query
      (** ask a kernel for its live health report (locus_health);
          answered with [R_health] — the health plane's one RPC, usable
          whether or not the windowed sampler is armed *)
  | Read_locked of {
      fid : File_id.t;
      reader : Owner.t;
      pid : Pid.t;
      pos : int;
      len : int;
    }
      (** read with implicit Shared-lock acquisition piggybacked on the
          read RPC itself — one round trip where lock-then-read costs two
          (the paper's own suggestion, §3.3). Transaction readers are
          answered with [R_data_locked] (the lock is retained and may be
          cached); process readers get a plain [R_data] (their momentary
          lock is already gone and must not be cached). *)
  | Batch of env list
      (** several requests bound for the same destination, coalesced into
          one wire message by the transport's batch window; processed in
          order and answered with [R_batch] *)

and env = { ctx : Locus_otrace.Otrace.ctx option; rid : rid option; payload : t }
(** What actually crosses the wire: the request plus optional causal span
    context, so a server-side span can parent itself under the remote
    caller's span and a transaction's tree stitches across sites — plus
    an optional exactly-once request id for the server-side reply cache. *)

and rid = { r_site : int; r_inc : int; r_seq : int; r_ack : int }
(** Exactly-once request identity (locus_chaos): [(r_site, r_inc,
    r_seq)] names one logical request of the client kernel at [r_site]
    (incarnation [r_inc]), no matter how many wire copies retries and
    network duplication produce; servers answer every copy after the
    first executes from a per-client reply cache instead of re-running
    the handler. [r_ack] is the client's completion watermark: all of its
    seqs at or below it are finished, so servers evict those entries and
    fence late copies of them as stale duplicates. *)

type reply =
  | R_ok
  | R_err of string
  | R_retry  (** target process in transit — resend (§4.1) *)
  | R_data of Bytes.t
  | R_int of int
  | R_fid of File_id.t
  | R_granted
  | R_granted_data of Bytes.t
      (** grant with the locked range's current contents piggybacked —
          the §5.2 prefetch optimization *)
  | R_granted_at of int  (** offset at which an append-mode lock landed *)
  | R_conflict of Owner.t list
  | R_redirect of int
      (** lock management for the file currently lives at this site *)
  | R_owner of { owner : int; epoch : int; prev : int }
      (** a shard-directory answer: the lock-manager role's current
          holder, epoch and hand-off source ([prev] = the site that
          issued the last successful claim; see {!Shard_handoff}) *)
  | R_pieces of Byte_range.t list
      (** the sub-ranges a momentary [Ensure_lock] actually granted (the
          uncovered pieces) — exactly what [Release_locks] must return *)
  | R_vote of bool
  | R_vote_2b of bool
      (** the value registered for the offered instance (the offerer's own
          vote iff it won the first-writer race) *)
  | R_decision of { participants : int list; votes : (int * bool) list }
      (** one acceptor's registrations for a transaction: the union of
          participant sets recorded with its votes, plus one
          [(participant, vote)] pair per registered instance *)
  | R_outcome of Log_record.status option
  | R_found of bool
  | R_update of Update.t
      (** full versioned snapshot of a committed replica (reconciliation) *)
  | R_versions of (int * int) list
      (** [(ino, committed version)] for every file of a volume copy *)
  | R_data_locked of Bytes.t
      (** data plus confirmation that an implicit Shared lock on the read
          range is now held (and retained) at the storage site — the
          client may cache it like an explicitly acquired lock *)
  | R_health of Locus_health.Report.site
      (** the answering site's structured health report *)
  | R_batch of reply list
      (** per-request replies for a [Batch], in request order *)

val envelope : ?ctx:Locus_otrace.Otrace.ctx -> ?rid:rid -> t -> env

val label : t -> string
(** Short static constructor name ("prepare", "commit2", ...), used as
    the server-side span name. *)

val pp : t Fmt.t
val pp_reply : reply Fmt.t
