(** The user-visible Locus system-call interface.

    A simulated user process is an engine fiber holding an {!env}. The
    calls mirror the paper's interface: Unix-style files and channels,
    the [Lock(file, length, mode)] record-locking call (§3.2), the
    [BeginTrans]/[EndTrans]/[AbortTrans] transaction envelope (§2), remote
    fork, and dynamic migration. Everything is location-transparent: the
    caller never says where a file is stored; the kernel routes to the
    storage site.

    All calls must run inside the process's fiber (they may block on
    locks, messages or disk). *)

type env

exception Error of string
(** Syscall failure (bad channel, lock denied after waiting, ...). *)

exception Process_failure of string
(** Raise (e.g. via {!fail}) to simulate a process failing — a failing
    transaction member aborts the whole transaction (§4.3). *)

(** {1 Process lifecycle} *)

val spawn_process :
  Kernel.cluster -> site:Site.t -> ?name:string -> (env -> unit) -> Pid.t
(** Create a top-level user process at a site. Callable from anywhere
    (including outside fibers, during scenario setup). *)

val fork : env -> ?site:Site.t -> ?name:string -> (env -> unit) -> Pid.t
(** Create a child process, locally or at a remote site. The child
    inherits open channels and transaction membership (§3.1). *)

val wait_pid : env -> Pid.t -> unit
(** Block until the process has exited (simulation convenience, standing
    in for Unix [wait]). *)

val exit_of : Kernel.cluster -> Pid.t -> unit Engine.Ivar.t
(** The exit ivar, for awaiting process completion from scenario code. *)

val migrate : env -> Site.t -> unit
(** Move this process to another site (§4.1). Its open channels, locks,
    transaction membership — and, for a top-level process, the transaction
    record itself — move with it. No-op if the destination is unreachable. *)

val fail : env -> string -> 'a
(** Simulate a process failure. *)

val pid : env -> Pid.t
val site : env -> Site.t
val cluster : env -> Kernel.cluster
val in_transaction : env -> bool

(** {1 Files (location-transparent)} *)

val creat : env -> string -> vid:int -> int
(** Create a file on logical volume [vid], bind the path, open it; returns
    a channel number. *)

val open_file : env -> string -> int
(** Name mapping + open: the expensive distributed step done once, so that
    locking can be cheap afterwards (§3.2). Paths resolve through real
    directory files; results are cached per process. *)

val mkdir : env -> string -> vid:int -> unit
(** Create a directory (intermediate components are created too). *)

val readdir : env -> string -> string list
(** Entry names of a directory, in creation order. *)

val close : env -> int -> unit
(** For a non-transaction process this commits its pending modifications
    to the file (the base system's atomic update on normal operation). *)

val seek : env -> int -> pos:int -> unit
val pos : env -> int -> int
val size : env -> int -> int

val set_append : env -> int -> bool -> unit
(** Append mode: subsequent lock requests are EOF-relative (§3.2). *)

val read : env -> int -> len:int -> Bytes.t
(** Read at the current position, advancing it. Inside a transaction, a
    shared lock is acquired implicitly if not already held (§3.1); outside
    one, the access behaves as a momentary Figure-1 "Unix" holder and may
    block on exclusive locks. *)

val write : env -> int -> Bytes.t -> unit
(** Write at the current position (implicit exclusive lock inside a
    transaction). The data is uncommitted until the transaction commits —
    or, for a non-transaction process, until [close]/{!commit_file}. *)

val pread : env -> int -> pos:int -> len:int -> Bytes.t
val pwrite : env -> int -> pos:int -> Bytes.t -> unit
val write_string : env -> int -> string -> unit

val commit_file : env -> int -> unit
(** Commit this process's pending modifications now (non-transaction
    processes; inside a transaction this is a no-op — the transaction
    commit point rules). *)

val abort_updates : env -> int -> unit
(** Discard this owner's uncommitted modifications to the file (the
    [abort x\[1\]] of Figure 2). *)

(** {1 Record locking (§3.2)} *)

type lock_result = Granted | Conflict of Owner.t list

val lock :
  env ->
  int ->
  len:int ->
  mode:Mode.t ->
  ?non_transaction:bool ->
  ?wait:bool ->
  unit ->
  lock_result
(** [lock env chan ~len ~mode ()] locks [len] bytes starting at the
    channel's current position — the paper's [Lock(file, length, mode)].
    [wait] (default true) queues on conflict; [~wait:false] returns
    [Conflict] instead. [non_transaction] requests the §3.4
    serializability-exception mode. In append mode the request is
    EOF-relative and atomically extends the lockable region; the channel
    position moves to the locked offset. *)

val unlock : env -> int -> len:int -> unit
(** Unlock [len] bytes at the current position. A transaction retains the
    lock (two-phase locking); a non-transaction releases it. *)

val read_locked : env -> int -> len:int -> Bytes.t
(** Like {!read}, but inside a transaction the implicit Shared-lock
    acquisition piggybacks on the read message itself (§3.3): one round
    trip where an explicit {!lock} followed by {!read} costs two. The
    storage site retains the lock until commit and confirms it in the
    reply, so it lands in the requesting-site lock cache exactly as if
    {!lock} had granted it. Ranges already covered by a cached lock,
    zero-length reads, and conventional (non-transaction) readers take
    the plain {!read} path. *)

val pread_locked : env -> int -> pos:int -> len:int -> Bytes.t
(** {!seek} + {!read_locked}. *)

(** {1 Transactions (§2)} *)

val begin_trans : env -> unit
val end_trans : env -> Kernel.outcome
(** Decrements the nesting level; at level zero in the top-level process,
    waits for all member processes to complete, then drives two-phase
    commit and reports the outcome. *)

val abort_trans : env -> unit
(** Abort the whole transaction (§4.3). The calling process survives and
    continues outside the transaction. *)
