module Process = Locus_proc.Process
module Proc_table = Locus_proc.Proc_table
module Otrace = Locus_otrace.Otrace

exception Error of string
exception Process_failure of string

type env = {
  cl : Kernel.cluster;
  mutable k : Kernel.t;
  mutable proc : Process.t;
  fiber : Engine.Fiber.handle option ref;
  (* Requesting-site cache of explicitly granted locks (§5.1): lets the
     kernel validate covered accesses locally instead of re-checking at
     the storage site. Purely a cost-model artifact here — enforcement
     always happens at the storage site. *)
  lock_cache : (int, (Byte_range.t * Mode.t) list) Hashtbl.t;
  (* Prefetched data (§5.2): per channel, ranges fetched with a lock grant
     and valid while that lock is held by this process. Reads inside a
     cached range are served locally; our own writes patch the copy. *)
  page_cache : (int, (Byte_range.t * Bytes.t) list) Hashtbl.t;
  (* Per-process name cache: resolved path -> file id. Name mapping is the
     expensive distributed step done once per file (§3.2); bindings never
     change (no rename/unlink in this system), so entries stay valid. *)
  name_cache : (string, File_id.t) Hashtbl.t;
  (* Files this process has written and not yet committed (or aborted).
     Such reads must see our own pending bytes, which only the primary's
     overlay holds — they are never served from a local secondary copy. *)
  written_fids : (File_id.t, unit) Hashtbl.t;
  (* Root span of the process's current top-level transaction, opened by
     [begin_trans] and closed at commit / abort / process exit. While
     open it sits at the bottom of the fiber's ambient span stack, so
     every syscall span of the transaction groups under one tree. *)
  mutable txn_span : Otrace.span option;
}

let pid env = env.proc.Process.pid
let site env = Kernel.site env.k
let cluster env = env.cl
let in_transaction env = env.proc.Process.txid <> None
let engine env = Kernel.engine env.cl
let costs env = Engine.costs (engine env)
let stats env = Engine.stats (engine env)
let syscall env = Engine.consume (engine env) ~instr:(costs env).Costs.syscall_instr

(* Run a syscall body inside a span when a collector is installed — the
   same single option test as [Kernel.observe], so the common no-collector
   case costs nothing. *)
let with_syscall env name f =
  match Kernel.otracer env.cl with
  | None -> f ()
  | Some otr -> Otrace.with_span otr ~site:(site env) ~cat:"syscall" name f

let open_txn_span env txid =
  match Kernel.otracer env.cl with
  | None -> ()
  | Some otr ->
    env.txn_span <-
      Some
        (Otrace.start otr ~site:(site env) ~cat:"txn" "txn"
           ~args:[ ("txid", Fmt.str "%a" Txid.pp txid) ])

let close_txn_span env outcome =
  match (env.txn_span, Kernel.otracer env.cl) with
  | Some sp, Some otr ->
    env.txn_span <- None;
    Otrace.finish otr sp ~args:[ ("outcome", outcome) ]
  | (Some _ | None), _ -> env.txn_span <- None

let chan_exn env c =
  match Process.channel env.proc c with
  | Some ch -> ch
  | None -> raise (Error (Printf.sprintf "bad channel %d" c))

let owner env = Process.owner env.proc

let rpc_storage env fid msg =
  let dst = Kernel.storage_site env.cl fid in
  Kernel.rpc env.cl ~src:(site env) ~dst msg

(* A reachable replica host when a partition hides the current primary;
   [None] when the primary is reachable (or nothing else is). Election
   only moves the primary off a {e crashed} site — a partitioned one
   stays primary for its own side, so read-side failover has to route
   around it explicitly (§5.2). *)
let reachable_secondary env fid =
  let s = site env in
  let net = Kernel.transport env.cl in
  let primary = Kernel.storage_site env.cl fid in
  if Transport.reachable net s primary then None
  else
    List.find_opt
      (fun h -> h <> primary && Transport.reachable net s h)
      (Kernel.replica_sites env.cl fid)

(* Storage-site rpc for operations a secondary can also serve (open /
   close bookkeeping): prefer the primary, fail over across a partition. *)
let rpc_storage_or_replica env fid msg =
  match reachable_secondary env fid with
  | Some dst -> Kernel.rpc env.cl ~src:(site env) ~dst msg
  | None -> rpc_storage env fid msg

(* Lock operations go to the current lock authority (§5.2 delegation, or
   the locus_shard lock-manager role): start from the hint, follow
   redirects, fall back to the storage site. Under dynamic placement a
   stale hint may also bounce ([R_retry], e.g. mid-migration or an
   unreachable directory) — sleep and re-chase, never fail a lock on
   staleness alone. *)
let rpc_lock_authority env fid msg =
  let bound = if Kernel.sharded env.cl then 24 else 8 in
  let rec go tries dst =
    match Kernel.rpc env.cl ~src:(site env) ~dst msg with
    | Msg.R_redirect d when tries < bound ->
      Kernel.note_lock_authority env.cl fid d;
      go (tries + 1) d
    | Msg.R_retry when Kernel.sharded env.cl && tries < bound ->
      Engine.sleep 2_000;
      go (tries + 1) dst
    | r -> r
  in
  let start =
    match Kernel.lock_authority_hint env.cl fid with
    | Some s when Transport.site_up (Kernel.transport env.cl) s -> s
    | Some _ | None ->
      if Kernel.sharded env.cl then Kernel.shard_default_owner env.cl fid
      else Kernel.storage_site env.cl fid
  in
  go 0 start

let note_use env fid =
  if in_transaction env then Process.note_file_use env.proc fid

(* {1 Process lifecycle} *)

let finish_process env =
  let p = env.proc in
  let src = site env in
  (match p.Process.txid with
  | Some txid when p.Process.top_level ->
    (* A top-level process exiting inside its own transaction is a failed
       transaction. *)
    Kernel.abort_transaction env.cl ~spare:p.Process.pid ~src txid
  | Some _ | None -> ());
  close_txn_span env "process-exit";
  Kernel.member_exit env.cl ~src p;
  p.Process.status <- Process.Exited;
  Proc_table.remove (Kernel.procs env.k) p.Process.pid;
  Kernel.forget_fiber env.k p.Process.pid;
  ignore (Engine.try_fill (engine env) (Kernel.exit_ivar env.cl p.Process.pid) ())

let run_process cl k0 proc fiber_ref f =
  let env =
    {
      cl;
      k = k0;
      proc;
      fiber = fiber_ref;
      lock_cache = Hashtbl.create 8;
      page_cache = Hashtbl.create 8;
      name_cache = Hashtbl.create 8;
      written_fids = Hashtbl.create 8;
      txn_span = None;
    }
  in
  (match !fiber_ref with
  | Some h -> Kernel.register_fiber k0 proc.Process.pid h
  | None -> ());
  match f env with
  | () -> finish_process env
  | exception Engine.Killed -> raise Engine.Killed
  | exception (Process_failure _ | Error _) ->
    Stats.incr (Engine.stats (Kernel.engine cl)) "proc.failures";
    (match env.proc.Process.txid with
    | Some txid ->
      Kernel.abort_transaction env.cl ~spare:env.proc.Process.pid
        ~src:(site env) txid
    | None -> ());
    finish_process env

let spawn_process cl ~site:s ?(name = "proc") f =
  let k = Kernel.kernel cl s in
  let p = Proc_table.alloc_pid (Kernel.procs k) in
  let proc = Process.create ~pid:p ~site:s ~parent:None in
  Proc_table.insert (Kernel.procs k) proc;
  Kernel.note_location cl p s;
  let fiber_ref = ref None in
  let h =
    Engine.spawn ~name ~site:s (Kernel.engine cl) (fun () ->
        run_process cl k proc fiber_ref f)
  in
  fiber_ref := Some h;
  Kernel.register_fiber k p h;
  p

let exit_of cl pid = Kernel.exit_ivar cl pid

let wait_pid env target =
  with_syscall env "sys.wait" @@ fun () ->
  syscall env;
  Engine.await (Kernel.exit_ivar env.cl target)

let fail _env msg = raise (Process_failure msg)

let fork env ?site:dst_opt ?(name = "child") f =
  with_syscall env "sys.fork" @@ fun () ->
  syscall env;
  Engine.consume (engine env) ~instr:(costs env).Costs.fork_instr;
  let dst = Option.value dst_opt ~default:(site env) in
  let parent = env.proc in
  let child_pid = Proc_table.alloc_pid (Kernel.procs env.k) in
  let child = Process.fork_child parent ~pid:child_pid ~site:dst in
  (* Joining the transaction must reach the top-level process's record
     before the child can possibly complete (§4.1 accounting). *)
  (match parent.Process.txid with
  | Some txid ->
    let top =
      match Kernel.transaction_top env.cl txid with
      | Some top -> top
      | None -> raise (Error "fork: transaction has no registered top")
    in
    let rec join tries =
      if tries > 50 then raise (Error "fork: cannot join transaction")
      else begin
        let dst_top =
          match Kernel.location_hint env.cl top with
          | Some s when Transport.site_up (Kernel.transport env.cl) s -> Some s
          | _ -> Kernel.find_process env.cl ~src:(site env) top
        in
        match dst_top with
        | None -> raise (Error "fork: top-level process not found")
        | Some s -> (
          match Kernel.rpc env.cl ~src:(site env) ~dst:s (Msg.Member_join { top; txid })
          with
          | Msg.R_ok -> ()
          | Msg.R_retry ->
            Engine.sleep 2_000;
            join (tries + 1)
          | r -> raise (Error (Fmt.str "fork: member join: %a" Msg.pp_reply r)))
      end
    in
    join 0;
    Kernel.register_member env.cl txid child_pid dst
  | None -> ());
  parent.Process.children <- Pid.Set.add child_pid parent.Process.children;
  let target_k = Kernel.kernel env.cl dst in
  let installed =
    if dst = site env then begin
      Proc_table.insert (Kernel.procs env.k) child;
      child
    end
    else begin
      match
        Kernel.rpc env.cl ~src:(site env) ~dst
          (Msg.Proc_arrive { payload = Kernel.encode_migration child None })
      with
      | Msg.R_ok -> (
        match Proc_table.find (Kernel.procs target_k) child_pid with
        | Some p -> p
        | None -> raise (Error "fork: remote child vanished"))
      | r -> raise (Error (Fmt.str "fork: remote spawn: %a" Msg.pp_reply r))
    end
  in
  (* Inherited channels are additional references to the open files: the
     storage sites must know, or the child's exit would drop state the
     parent still uses. *)
  List.iter
    (fun (ch : Process.open_file) ->
      ignore (rpc_storage env ch.Process.fid (Msg.Open { fid = ch.Process.fid })))
    installed.Process.channels;
  Kernel.note_location env.cl child_pid dst;
  let fiber_ref = ref None in
  let h =
    Engine.spawn ~name ~site:dst (engine env) (fun () ->
        run_process env.cl target_k installed fiber_ref f)
  in
  fiber_ref := Some h;
  Kernel.register_fiber target_k child_pid h;
  Stats.incr (stats env) "proc.forks";
  child_pid

let migrate env dst =
  with_syscall env "sys.migrate" @@ fun () ->
  syscall env;
  if dst <> site env then begin
    Engine.consume (engine env) ~instr:(costs env).Costs.migrate_instr;
    let p = env.proc in
    let src_k = env.k in
    p.Process.status <- Process.In_transit;
    let txn_payload =
      match p.Process.txid with
      | Some txid when p.Process.top_level -> Txn_state.release (Kernel.txns src_k) txid
      | Some _ | None -> None
    in
    let payload = Kernel.encode_migration p txn_payload in
    match Kernel.rpc env.cl ~src:(site env) ~dst (Msg.Proc_arrive { payload }) with
    | Msg.R_ok ->
      Proc_table.remove (Kernel.procs src_k) p.Process.pid;
      Kernel.forget_fiber src_k p.Process.pid;
      let new_k = Kernel.kernel env.cl dst in
      (match Proc_table.find (Kernel.procs new_k) p.Process.pid with
      | Some copy -> env.proc <- copy
      | None -> raise (Error "migrate: arrival lost"));
      env.k <- new_k;
      (match !(env.fiber) with
      | Some h ->
        Kernel.register_fiber new_k env.proc.Process.pid h;
        Engine.set_site (engine env) h dst
      | None -> ());
      Kernel.note_location env.cl env.proc.Process.pid dst;
      (match env.proc.Process.txid with
      | Some txid -> Kernel.update_member_site env.cl txid env.proc.Process.pid dst
      | None -> ());
      Stats.incr (stats env) "proc.migrations"
    | _ ->
      (* Destination unreachable: the migration fails and the process
         stays put. *)
      (match txn_payload with
      | Some txn -> Txn_state.adopt (Kernel.txns src_k) txn
      | None -> ());
      p.Process.status <- Process.Running
  end

(* {1 Name mapping through real directory files}

   Directories are ordinary files of fixed-width entries, stored and read
   through the same kernel paths as any data file, so path resolution has
   the true distributed cost §3.2 attributes to it. Directory access
   deliberately happens OUTSIDE any transaction envelope (reads and
   updates are made as the process, under conventional locks released
   immediately, and committed at once): §3.4 — directories "should not
   remain locked for the duration of a transaction", and two transactions
   creating the same name must conflict immediately even though neither
   has committed. *)

let dir_entry_len = 64
let dir_name_len = 47
let dir_lock_span = 1 lsl 30

let encode_dir_entry name fid =
  if String.length name > dir_name_len then raise (Error "name too long");
  if String.contains name '/' || name = "" then raise (Error "bad name");
  Printf.sprintf "%-*s %-16s" dir_name_len name (File_id.to_string fid)

let decode_dir_entry s =
  let name = String.trim (String.sub s 0 dir_name_len) in
  let fid = String.trim (String.sub s (dir_name_len + 1) 16) in
  match File_id.of_string fid with
  | Some fid when name <> "" -> Some (name, fid)
  | _ -> None

let dir_open env fid =
  match rpc_storage env fid (Msg.Open { fid }) with
  | Msg.R_ok -> ()
  | r -> raise (Error (Fmt.str "dir open: %a" Msg.pp_reply r))

let dir_close env fid =
  ignore
    (rpc_storage env fid
       (Msg.Close { fid; owner = Owner.Process (pid env); commit_on_close = false }))

let dir_size env fid =
  match rpc_storage env fid (Msg.File_size { fid }) with
  | Msg.R_int n -> n
  | r -> raise (Error (Fmt.str "dir size: %a" Msg.pp_reply r))

(* Directory reads are issued as the PROCESS (never the transaction): a
   momentary Figure-1 access that leaves no retained locks behind. *)
let dir_read env fid ~pos ~len =
  match
    rpc_storage env fid
      (Msg.Read { fid; reader = Owner.Process (pid env); pid = pid env; pos; len })
  with
  | Msg.R_data b -> b
  | r -> raise (Error (Fmt.str "dir read: %a" Msg.pp_reply r))

let dir_entries env fid =
  let size = dir_size env fid in
  let b = if size = 0 then Bytes.create 0 else dir_read env fid ~pos:0 ~len:size in
  let n = Bytes.length b / dir_entry_len in
  List.filter_map
    (fun i -> decode_dir_entry (Bytes.to_string (Bytes.sub b (i * dir_entry_len) dir_entry_len)))
    (List.init n Fun.id)

let dir_lookup env fid name =
  List.assoc_opt name (dir_entries env fid)

(* Whole-directory critical section: a conventional exclusive lock held
   only for the duration of the update — never retained by a transaction
   (it is owned by the process, §3.4). *)
let with_dir_lock env fid f =
  let range = Byte_range.v ~lo:0 ~hi:dir_lock_span in
  let owner = Owner.Process (pid env) in
  (match
     rpc_lock_authority env fid
       (Msg.Lock
          { fid; owner; pid = pid env; mode = Mode.Exclusive; range;
            non_transaction = true; wait = true })
   with
  | Msg.R_granted | Msg.R_granted_data _ -> ()
  | r -> raise (Error (Fmt.str "dir lock: %a" Msg.pp_reply r)));
  Fun.protect f ~finally:(fun () ->
      ignore
        (rpc_lock_authority env fid (Msg.Unlock { fid; owner; pid = pid env; range })))

exception Name_exists of string

let dir_add_entry env dir name fid =
  with_dir_lock env dir (fun () ->
      if dir_lookup env dir name <> None then raise (Name_exists name);
      let size = dir_size env dir in
      let entry = encode_dir_entry name fid in
      (match
         rpc_storage env dir
           (Msg.Write
              { fid = dir; owner = Owner.Process (pid env); pid = pid env;
                pos = size; data = Bytes.of_string entry })
       with
      | Msg.R_ok -> ()
      | r -> raise (Error (Fmt.str "dir write: %a" Msg.pp_reply r)));
      (* Directory updates are durable and visible immediately (§3.4):
         they do not ride on any enclosing transaction. *)
      match
        rpc_storage env dir
          (Msg.Commit_file { fid = dir; owner = Owner.Process (pid env) })
      with
      | Msg.R_ok -> ()
      | r -> raise (Error (Fmt.str "dir commit: %a" Msg.pp_reply r)))

let split_path path =
  if String.length path = 0 || path.[0] <> '/' then
    raise (Error (Printf.sprintf "path must be absolute: %s" path));
  String.split_on_char '/' path |> List.filter (fun c -> c <> "")

let create_node env ~vid =
  let host = Kernel.storage_site env.cl (File_id.make ~vid ~ino:0) in
  match Kernel.rpc env.cl ~src:(site env) ~dst:host (Msg.Create_file { vid }) with
  | Msg.R_fid fid -> fid
  | r -> raise (Error (Fmt.str "create: %a" Msg.pp_reply r))

(* Walk (and optionally create) the directories leading to [path]'s leaf;
   returns the parent directory and the leaf name. Intermediate
   directories live on the root volume. *)
let resolve_parent env path ~mkdirs =
  match List.rev (split_path path) with
  | [] -> raise (Error "empty path")
  | leaf :: rev_dirs ->
    let dirs = List.rev rev_dirs in
    let root = Kernel.root_dir env.cl ~src:(site env) in
    let rec walk dir prefix = function
      | [] -> dir
      | c :: rest ->
        let here = prefix ^ "/" ^ c in
        let next =
          match Hashtbl.find_opt env.name_cache here with
          | Some fid -> fid
          | None ->
            dir_open env dir;
            let found =
              Fun.protect
                (fun () -> dir_lookup env dir c)
                ~finally:(fun () -> dir_close env dir)
            in
            let fid =
              match found with
              | Some fid -> fid
              | None ->
                if not mkdirs then
                  raise (Error (Printf.sprintf "no such directory: %s" here))
                else begin
                  let sub = create_node env ~vid:dir.File_id.vid in
                  dir_open env dir;
                  Fun.protect
                    (fun () ->
                      try
                        dir_add_entry env dir c sub;
                        Kernel.bind_path env.cl here sub
                      with Name_exists _ -> ())
                    ~finally:(fun () -> dir_close env dir);
                  (* Re-read: we may have lost the creation race. *)
                  dir_open env dir;
                  Fun.protect
                    (fun () ->
                      match dir_lookup env dir c with
                      | Some fid -> fid
                      | None -> raise (Error "directory creation lost"))
                    ~finally:(fun () -> dir_close env dir)
                end
            in
            Hashtbl.replace env.name_cache here fid;
            fid
        in
        walk next here rest
    in
    (walk root "" dirs, leaf)

let resolve_path env path =
  match Hashtbl.find_opt env.name_cache path with
  | Some fid -> Some fid
  | None ->
    let parent, leaf = resolve_parent env path ~mkdirs:false in
    dir_open env parent;
    let found =
      Fun.protect (fun () -> dir_lookup env parent leaf)
        ~finally:(fun () -> dir_close env parent)
    in
    (match found with
    | Some fid -> Hashtbl.replace env.name_cache path fid
    | None -> ());
    found

let mkdir env path ~vid =
  with_syscall env "sys.mkdir" @@ fun () ->
  syscall env;
  let parent, leaf = resolve_parent env path ~mkdirs:true in
  let fid = create_node env ~vid in
  dir_open env parent;
  Fun.protect
    (fun () ->
      try dir_add_entry env parent leaf fid
      with Name_exists _ -> raise (Error (Printf.sprintf "mkdir: %s exists" path)))
    ~finally:(fun () -> dir_close env parent);
  Kernel.bind_path env.cl path fid;
  Hashtbl.replace env.name_cache path fid

let readdir env path =
  with_syscall env "sys.readdir" @@ fun () ->
  syscall env;
  let fid =
    if path = "/" then Kernel.root_dir env.cl ~src:(site env)
    else
      match resolve_path env path with
      | Some fid -> fid
      | None -> raise (Error (Printf.sprintf "readdir: no such directory %s" path))
  in
  dir_open env fid;
  Fun.protect
    (fun () -> List.map fst (dir_entries env fid))
    ~finally:(fun () -> dir_close env fid)

(* {1 Files} *)

let creat env path ~vid =
  with_syscall env "sys.creat" @@ fun () ->
  syscall env;
  let parent, leaf = resolve_parent env path ~mkdirs:true in
  let fid = create_node env ~vid in
  dir_open env parent;
  Fun.protect
    (fun () ->
      try dir_add_entry env parent leaf fid
      with Name_exists _ ->
        raise (Error (Printf.sprintf "creat: %s exists" path)))
    ~finally:(fun () -> dir_close env parent);
  Kernel.bind_path env.cl path fid;
  Hashtbl.replace env.name_cache path fid;
  (match rpc_storage env fid (Msg.Open { fid }) with
  | Msg.R_ok -> ()
  | r -> raise (Error (Fmt.str "creat: %a" Msg.pp_reply r)));
  note_use env fid;
  Process.add_channel env.proc fid

let open_file env path =
  with_syscall env "sys.open" @@ fun () ->
  syscall env;
  (* Name mapping — the once-per-file distributed step (§3.2): walk the
     directory files, then cache the binding. *)
  match resolve_path env path with
  | None -> raise (Error (Printf.sprintf "open: no such file %s" path))
  | Some fid -> (
    match rpc_storage_or_replica env fid (Msg.Open { fid }) with
    | Msg.R_ok ->
      note_use env fid;
      Process.add_channel env.proc fid
    | r -> raise (Error (Fmt.str "open: %a" Msg.pp_reply r)))

let close env c =
  with_syscall env "sys.close" @@ fun () ->
  syscall env;
  let ch = chan_exn env c in
  let commit_on_close = not (in_transaction env) in
  (match
     rpc_storage_or_replica env ch.Process.fid
       (Msg.Close { fid = ch.Process.fid; owner = owner env; commit_on_close })
   with
  | Msg.R_ok -> if commit_on_close then Hashtbl.remove env.written_fids ch.Process.fid
  | r -> raise (Error (Fmt.str "close: %a" Msg.pp_reply r)));
  Hashtbl.remove env.lock_cache c;
  Hashtbl.remove env.page_cache c;
  Process.close_channel env.proc c

let seek env c ~pos =
  let ch = chan_exn env c in
  if pos < 0 then raise (Error "seek: negative position");
  ch.Process.pos <- pos

let pos env c = (chan_exn env c).Process.pos

let size env c =
  with_syscall env "sys.size" @@ fun () ->
  syscall env;
  let ch = chan_exn env c in
  match rpc_storage env ch.Process.fid (Msg.File_size { fid = ch.Process.fid }) with
  | Msg.R_int n -> n
  | r -> raise (Error (Fmt.str "size: %a" Msg.pp_reply r))

let set_append env c v = (chan_exn env c).Process.append <- v

(* Validation against the requesting-site lock cache (§5.1). With the
   cache disabled (E2 ablation) every covered access pays a verification
   message to the storage site instead of a local table probe. *)
let validate_access env c fid range =
  let cached =
    match Hashtbl.find_opt env.lock_cache c with
    | Some locks -> List.exists (fun (r, _) -> Byte_range.subsumes r range) locks
    | None -> false
  in
  if cached then begin
    if (Kernel.config env.cl).Kernel.Config.lock_cache then
      Engine.consume (engine env) ~instr:(costs env).Costs.lock_cache_instr
    else begin
      Stats.incr (stats env) "lock.revalidations";
      ignore (rpc_storage env fid Msg.Ping)
    end
  end

let cache_pages env c range data =
  let cur = Option.value (Hashtbl.find_opt env.page_cache c) ~default:[] in
  Hashtbl.replace env.page_cache c ((range, data) :: cur)

let drop_cached_pages env c range =
  match Hashtbl.find_opt env.page_cache c with
  | None -> ()
  | Some entries ->
    Hashtbl.replace env.page_cache c
      (List.filter (fun (r, _) -> not (Byte_range.overlaps r range)) entries)

(* Serve a read locally if a prefetched range covers it entirely. *)
let cached_read env c ~pos ~len =
  if len <= 0 then None
  else begin
    let want = Byte_range.of_pos_len ~pos ~len in
    match Hashtbl.find_opt env.page_cache c with
    | None -> None
    | Some entries ->
      List.find_opt (fun (r, _) -> Byte_range.subsumes r want) entries
      |> Option.map (fun (r, data) ->
             let out = Bytes.create len in
             Bytes.blit data (pos - Byte_range.lo r) out 0 len;
             out)
  end

(* Write-through: patch any prefetched copies our write overlaps. *)
let patch_cached_pages env c ~pos data =
  let len = Bytes.length data in
  if len > 0 then begin
    let w = Byte_range.of_pos_len ~pos ~len in
    match Hashtbl.find_opt env.page_cache c with
    | None -> ()
    | Some entries ->
      List.iter
        (fun (r, cached) ->
          match Byte_range.inter r w with
          | None -> ()
          | Some overlap ->
            let o = Byte_range.lo overlap and l = Byte_range.len overlap in
            Bytes.blit data (o - pos) cached (o - Byte_range.lo r) l)
        entries
  end

(* §5.2 replication: serve a read from the local copy of a replicated
   volume when this site hosts a secondary. Process readers always
   qualify (conventional access is relaxed); a transaction reader only
   under a covering cached Shared lock with no overlapping Exclusive one
   — the shared lock, held at the primary, fences out concurrent
   committers, and synchronous phase-2 propagation then makes the local
   committed copy one-copy fresh. Our own pending writes live only in
   the primary's overlay, so any file we wrote goes there. *)
let replica_read_rpc env fid ~dst ~pos ~len =
  match
    Kernel.rpc env.cl ~src:(site env) ~dst
      (Msg.Replica_read { fid; reader = owner env; pid = pid env; pos; len })
  with
  | Msg.R_data b -> Some b
  | _ -> None

let local_replica_read env c fid ~pos ~len =
  let s = site env in
  let hosts = Kernel.replica_sites env.cl fid in
  if len <= 0 || List.length hosts < 2 || Hashtbl.mem env.written_fids fid then
    None
  else
    match reachable_secondary env fid with
    | Some h ->
      (* The primary is on the far side of a partition: fail the read
         over to a reachable copy. The serving site flags the data as
         degraded, which is exactly the §3.4-style staleness the checker
         permits. *)
      replica_read_rpc env fid ~dst:h ~pos ~len
    | None when (not (List.mem s hosts)) || Kernel.storage_site env.cl fid = s
      ->
      None
    | None -> begin
    let want = Byte_range.of_pos_len ~pos ~len in
    let eligible =
      match owner env with
      | Owner.Process _ -> true
      | Owner.Transaction _ -> (
        match Hashtbl.find_opt env.lock_cache c with
        | None -> false
        | Some locks ->
          List.exists
            (fun (r, m) ->
              Mode.equal m Mode.Shared && Byte_range.subsumes r want)
            locks
          && not
               (List.exists
                  (fun (r, m) ->
                    Mode.equal m Mode.Exclusive && Byte_range.overlaps r want)
                  locks))
    in
    if not eligible then None
    else begin
      match replica_read_rpc env fid ~dst:s ~pos ~len with
      | Some b ->
        Stats.incr (stats env) "replica.local_reads";
        Some b
      | None ->
        (* Degraded copy bounced us (or refused): use the primary. *)
        None
    end
  end

let read env c ~len =
  with_syscall env "sys.read" @@ fun () ->
  syscall env;
  let ch = chan_exn env c in
  let fid = ch.Process.fid in
  note_use env fid;
  match cached_read env c ~pos:ch.Process.pos ~len with
  | Some b ->
    Stats.incr (stats env) "prefetch.hits";
    Engine.consume (engine env)
      ~instr:((costs env).Costs.lock_cache_instr + Costs.copy_instr (costs env) ~bytes:len);
    (* Prefetch hits bypass the storage site, so the history event must
       come from here or cached reads would vanish from the record. *)
    Kernel.observe env.cl ~site:(site env)
      (Obs.Read
         {
           owner = owner env;
           pid = pid env;
           fid;
           range = Byte_range.of_pos_len ~pos:ch.Process.pos ~len;
           data = Bytes.to_string b;
         });
    ch.Process.pos <- ch.Process.pos + len;
    b
  | None -> (
    match local_replica_read env c fid ~pos:ch.Process.pos ~len with
    | Some b ->
      ch.Process.pos <- ch.Process.pos + len;
      b
    | None -> (
      if len > 0 then
        validate_access env c fid (Byte_range.of_pos_len ~pos:ch.Process.pos ~len);
      match
        rpc_storage env fid
          (Msg.Read { fid; reader = owner env; pid = pid env; pos = ch.Process.pos; len })
      with
      | Msg.R_data b ->
        ch.Process.pos <- ch.Process.pos + len;
        b
      | r -> raise (Error (Fmt.str "read: %a" Msg.pp_reply r))))

let write env c data =
  with_syscall env "sys.write" @@ fun () ->
  syscall env;
  let ch = chan_exn env c in
  let fid = ch.Process.fid in
  note_use env fid;
  let len = Bytes.length data in
  if len > 0 then
    validate_access env c fid (Byte_range.of_pos_len ~pos:ch.Process.pos ~len);
  match
    (* Failover routing reaches the takeover copy when a partition hides
       the primary — which then refuses the update with a clear degraded
       error rather than letting the write time out. *)
    rpc_storage_or_replica env fid
      (Msg.Write { fid; owner = owner env; pid = pid env; pos = ch.Process.pos; data })
  with
  | Msg.R_ok ->
    Hashtbl.replace env.written_fids fid ();
    patch_cached_pages env c ~pos:ch.Process.pos data;
    ch.Process.pos <- ch.Process.pos + len
  | r -> raise (Error (Fmt.str "write: %a" Msg.pp_reply r))

let pread env c ~pos ~len =
  seek env c ~pos;
  read env c ~len

let pwrite env c ~pos data =
  seek env c ~pos;
  write env c data

let write_string env c s = write env c (Bytes.of_string s)

let commit_file env c =
  with_syscall env "sys.commit_file" @@ fun () ->
  syscall env;
  if not (in_transaction env) then begin
    let ch = chan_exn env c in
    match
      rpc_storage env ch.Process.fid
        (Msg.Commit_file { fid = ch.Process.fid; owner = owner env })
    with
    | Msg.R_ok -> Hashtbl.remove env.written_fids ch.Process.fid
    | r -> raise (Error (Fmt.str "commit_file: %a" Msg.pp_reply r))
  end

let abort_updates env c =
  with_syscall env "sys.abort_updates" @@ fun () ->
  syscall env;
  let ch = chan_exn env c in
  match
    rpc_storage env ch.Process.fid
      (Msg.Abort_file { fid = ch.Process.fid; owner = owner env })
  with
  | Msg.R_ok -> Hashtbl.remove env.written_fids ch.Process.fid
  | r -> raise (Error (Fmt.str "abort_updates: %a" Msg.pp_reply r))

(* {1 Record locking} *)

type lock_result = Granted | Conflict of Owner.t list

let cache_lock env c range mode =
  let cur = Option.value (Hashtbl.find_opt env.lock_cache c) ~default:[] in
  Hashtbl.replace env.lock_cache c ((range, mode) :: cur)

let uncache_range env c range =
  match Hashtbl.find_opt env.lock_cache c with
  | None -> ()
  | Some locks ->
    Hashtbl.replace env.lock_cache c
      (List.filter (fun (r, _) -> not (Byte_range.overlaps r range)) locks)

let lock env c ~len ~mode ?(non_transaction = false) ?(wait = true) () =
  with_syscall env "sys.lock" @@ fun () ->
  syscall env;
  let ch = chan_exn env c in
  let fid = ch.Process.fid in
  note_use env fid;
  if len <= 0 then raise (Error "lock: non-positive length");
  if ch.Process.append then begin
    (* EOF-relative: atomically extend-and-lock (§3.2). *)
    match
      rpc_storage env fid
        (Msg.Lock_append
           { fid; owner = owner env; pid = pid env; len; mode; non_transaction })
    with
    | Msg.R_granted_at off ->
      ch.Process.pos <- off;
      cache_lock env c (Byte_range.of_pos_len ~pos:off ~len) mode;
      Granted
    | Msg.R_conflict owners -> Conflict owners
    | r -> raise (Error (Fmt.str "lock append: %a" Msg.pp_reply r))
  end
  else begin
    let range = Byte_range.of_pos_len ~pos:ch.Process.pos ~len in
    match
      rpc_lock_authority env fid
        (Msg.Lock { fid; owner = owner env; pid = pid env; mode; range; non_transaction; wait })
    with
    | Msg.R_granted ->
      cache_lock env c range mode;
      Granted
    | Msg.R_granted_data data ->
      cache_lock env c range mode;
      cache_pages env c range data;
      Granted
    | Msg.R_conflict owners -> Conflict owners
    | r -> raise (Error (Fmt.str "lock: %a" Msg.pp_reply r))
  end

(* §3.3 lock-read piggybacking: a transaction's first read of a record
   normally costs two round trips — an explicit Shared lock, then the
   read. [read_locked] sends one [Read_locked] message instead: the
   storage site takes the implicit Shared lock (retained until commit,
   like any §3.1 implicit grant) and confirms it in the reply, so the
   client caches the lock exactly as if {!lock} had granted it. Ranges
   already covered, zero-length reads and conventional (non-transaction)
   reads take the plain {!read} path; the break-batch self-test fault
   degrades to the explicit lock-then-read pair it is meant to cost. *)
let read_locked env c ~len =
  let ch = chan_exn env c in
  let pos = ch.Process.pos in
  let covered =
    len > 0
    &&
    let want = Byte_range.of_pos_len ~pos ~len in
    match Hashtbl.find_opt env.lock_cache c with
    | Some locks -> List.exists (fun (r, _) -> Byte_range.subsumes r want) locks
    | None -> false
  in
  if len <= 0 || covered || not (in_transaction env) then read env c ~len
  else if !Locus_batch.Flags.break_batch then begin
    ignore (lock env c ~len ~mode:Mode.Shared ());
    read env c ~len
  end
  else
    with_syscall env "sys.read_locked" @@ fun () ->
    syscall env;
    let fid = ch.Process.fid in
    note_use env fid;
    let range = Byte_range.of_pos_len ~pos ~len in
    match
      rpc_storage env fid
        (Msg.Read_locked { fid; reader = owner env; pid = pid env; pos; len })
    with
    | Msg.R_data_locked b ->
      cache_lock env c range Mode.Shared;
      Stats.incr (stats env) "lock.piggyback_reads";
      ch.Process.pos <- pos + len;
      b
    | Msg.R_data b ->
      (* Served without a retained lock (e.g. rare process-reader race):
         data is good, but nothing may be cached. *)
      ch.Process.pos <- pos + len;
      b
    | r -> raise (Error (Fmt.str "read_locked: %a" Msg.pp_reply r))

let pread_locked env c ~pos ~len =
  seek env c ~pos;
  read_locked env c ~len

let unlock env c ~len =
  with_syscall env "sys.unlock" @@ fun () ->
  syscall env;
  let ch = chan_exn env c in
  let fid = ch.Process.fid in
  let range = Byte_range.of_pos_len ~pos:ch.Process.pos ~len in
  uncache_range env c range;
  drop_cached_pages env c range;
  match
    rpc_lock_authority env fid
      (Msg.Unlock { fid; owner = owner env; pid = pid env; range })
  with
  | Msg.R_ok -> ()
  | r -> raise (Error (Fmt.str "unlock: %a" Msg.pp_reply r))

(* {1 Transactions} *)

let begin_trans env =
  syscall env;
  let p = env.proc in
  if p.Process.nesting = 0 && p.Process.txid = None then begin
    let txid = Kernel.alloc_txid env.k in
    open_txn_span env txid;
    p.Process.txid <- Some txid;
    p.Process.top_level <- true;
    p.Process.file_list <- File_id.Set.empty;
    let (_ : Txn_state.txn) =
      Txn_state.start (Kernel.txns env.k) ~txid ~top_pid:p.Process.pid
    in
    Kernel.register_transaction env.cl txid ~top:p.Process.pid ~site:(site env);
    Kernel.observe env.cl ~site:(site env)
      (Obs.Begin { txid; pid = p.Process.pid });
    Stats.incr (stats env) "txn.begun"
  end;
  p.Process.nesting <- p.Process.nesting + 1

let own_files_with_sites env =
  File_id.Set.elements env.proc.Process.file_list
  |> List.map (fun fid -> (fid, Kernel.storage_site env.cl fid))

let end_trans env =
  with_syscall env "sys.end_trans" @@ fun () ->
  syscall env;
  let p = env.proc in
  if p.Process.nesting <= 0 then raise (Error "end_trans: not in a transaction");
  p.Process.nesting <- p.Process.nesting - 1;
  if p.Process.nesting > 0 then Kernel.Committed (* inner pairing only (§2) *)
  else if not p.Process.top_level then Kernel.Committed
  else begin
    let txid =
      match p.Process.txid with
      | Some t -> t
      | None -> raise (Error "end_trans: no transaction id")
    in
    let finish outcome =
      close_txn_span env
        (match outcome with
        | Kernel.Committed -> "committed"
        | Kernel.Aborted -> "aborted");
      p.Process.txid <- None;
      p.Process.top_level <- false;
      Hashtbl.reset env.lock_cache;
      Hashtbl.reset env.page_cache;
      outcome
    in
    match Txn_state.find (Kernel.txns env.k) txid with
    | None ->
      (* The transaction was aborted out from under us. *)
      finish Kernel.Aborted
    | Some txn ->
      Txn_state.merge_files txn (own_files_with_sites env);
      let iv = Kernel.register_end_wait env.k txid in
      if txn.Txn_state.live_members <= 1 then begin
        txn.Txn_state.phase <- Txn_state.Committing;
        finish (Kernel.commit_transaction env.k txn)
      end
      else begin
        match Engine.await iv with
        | Kernel.Members_done -> finish (Kernel.commit_transaction env.k txn)
        | Kernel.Abort_requested -> finish Kernel.Aborted
      end
  end

let abort_trans env =
  with_syscall env "sys.abort_trans" @@ fun () ->
  syscall env;
  let p = env.proc in
  match p.Process.txid with
  | None -> raise (Error "abort_trans: not in a transaction")
  | Some txid ->
    Kernel.abort_transaction env.cl ~spare:p.Process.pid ~src:(site env) txid;
    close_txn_span env "aborted";
    p.Process.txid <- None;
    p.Process.nesting <- 0;
    p.Process.top_level <- false;
    Hashtbl.reset env.lock_cache;
    Hashtbl.reset env.page_cache
