type access = {
  owner : Owner.t;
  pid : Pid.t;
  fid : File_id.t;
  range : Byte_range.t;
  data : string;
}

type event =
  | Begin of { txid : Txid.t; pid : Pid.t }
  | Read of access
  | Write of access
  | Lock of {
      owner : Owner.t;
      pid : Pid.t;
      fid : File_id.t;
      range : Byte_range.t;
      mode : Mode.t;
      non_transaction : bool;
    }
  | Unlock of { owner : Owner.t; pid : Pid.t; fid : File_id.t; range : Byte_range.t }
  | Commit of { txid : Txid.t }
  | Abort of { txid : Txid.t }
  | File_commit of { owner : Owner.t; fid : File_id.t }
  | File_abort of { owner : Owner.t; fid : File_id.t }
  | Replica_read of { access : access; version : int; degraded : bool }
  | Propagate of { fid : File_id.t; version : int; dst : int }
  | Reconcile of { fid : File_id.t; version : int; src : int }
  | Failover of { vid : int; fid : File_id.t }
  | Migrate of { fid : File_id.t; from_site : int; to_site : int; epoch : int }
  | Net_fault of { dst : int; kind : [ `Drop | `Dup | `Reorder ] }
  | Rpc_exec of { client : int; inc : int; seq : int; site_inc : int; label : string }
  | Alarm of { name : string; detail : string }

type record = { at : int; site : int; ev : event }

type sink = record -> unit

let pp_event ppf = function
  | Begin { txid; pid } -> Fmt.pf ppf "begin %a %a" Txid.pp txid Pid.pp pid
  | Read a ->
    Fmt.pf ppf "read %a %a %a" Owner.pp a.owner File_id.pp a.fid Byte_range.pp a.range
  | Write a ->
    Fmt.pf ppf "write %a %a %a" Owner.pp a.owner File_id.pp a.fid Byte_range.pp a.range
  | Lock { owner; fid; range; mode; non_transaction; _ } ->
    Fmt.pf ppf "lock %a %a %a %a%s" Owner.pp owner File_id.pp fid Mode.pp mode
      Byte_range.pp range
      (if non_transaction then " non-txn" else "")
  | Unlock { owner; fid; range; _ } ->
    Fmt.pf ppf "unlock %a %a %a" Owner.pp owner File_id.pp fid Byte_range.pp range
  | Commit { txid } -> Fmt.pf ppf "commit %a" Txid.pp txid
  | Abort { txid } -> Fmt.pf ppf "abort %a" Txid.pp txid
  | File_commit { owner; fid } ->
    Fmt.pf ppf "file-commit %a %a" Owner.pp owner File_id.pp fid
  | File_abort { owner; fid } ->
    Fmt.pf ppf "file-abort %a %a" Owner.pp owner File_id.pp fid
  | Replica_read { access = a; version; degraded } ->
    Fmt.pf ppf "replica-read %a %a %a v%d%s" Owner.pp a.owner File_id.pp a.fid
      Byte_range.pp a.range version
      (if degraded then " degraded" else "")
  | Propagate { fid; version; dst } ->
    Fmt.pf ppf "propagate %a v%d -> site%d" File_id.pp fid version dst
  | Reconcile { fid; version; src } ->
    Fmt.pf ppf "reconcile %a v%d <- site%d" File_id.pp fid version src
  | Failover { vid; fid } -> Fmt.pf ppf "failover vol%d %a" vid File_id.pp fid
  | Migrate { fid; from_site; to_site; epoch } ->
    Fmt.pf ppf "migrate %a site%d -> site%d e%d" File_id.pp fid from_site
      to_site epoch
  | Net_fault { dst; kind } ->
    Fmt.pf ppf "net-fault %s -> site%d"
      (match kind with `Drop -> "drop" | `Dup -> "dup" | `Reorder -> "reorder")
      dst
  | Rpc_exec { client; inc; seq; site_inc; label } ->
    Fmt.pf ppf "rpc-exec %s client%d.%d seq%d @inc%d" label client inc seq
      site_inc
  | Alarm { name; detail } -> Fmt.pf ppf "ALARM %s: %s" name detail

let pp ppf r = Fmt.pf ppf "%8d us site%-2d %a" r.at r.site pp_event r.ev
