type t =
  | Open of { fid : File_id.t }
  | Close of { fid : File_id.t; owner : Owner.t; commit_on_close : bool }
  | Read of { fid : File_id.t; reader : Owner.t; pid : Pid.t; pos : int; len : int }
  | Write of { fid : File_id.t; owner : Owner.t; pid : Pid.t; pos : int; data : Bytes.t }
  | Lock of {
      fid : File_id.t;
      owner : Owner.t;
      pid : Pid.t;
      mode : Mode.t;
      range : Byte_range.t;
      non_transaction : bool;
      wait : bool;
    }
  | Lock_append of {
      fid : File_id.t;
      owner : Owner.t;
      pid : Pid.t;
      len : int;
      mode : Mode.t;
      non_transaction : bool;
    }
  | Unlock of { fid : File_id.t; owner : Owner.t; pid : Pid.t; range : Byte_range.t }
  | Commit_file of { fid : File_id.t; owner : Owner.t }
  | Abort_file of { fid : File_id.t; owner : Owner.t }
  | File_size of { fid : File_id.t }
  | Create_file of { vid : int }
  | Member_join of { top : Pid.t; txid : Txid.t }
  | Merge_file_list of {
      top : Pid.t;
      txid : Txid.t;
      files : (File_id.t * int) list;
    }
  | Proc_arrive of { payload : string }
  | Proc_exit_cleanup of { pid : Pid.t; fids : File_id.t list }
  | Prepare of {
      txid : Txid.t;
      coordinator_site : int;
      files : File_id.t list;
      participants : int list;
    }
  | Commit_phase2 of { txid : Txid.t; files : File_id.t list }
  | Abort_phase2 of { txid : Txid.t; files : File_id.t list }
  | Abort_tree of { txid : Txid.t; pid : Pid.t; spare : Pid.t option }
  | Query_outcome of { txid : Txid.t }
  | Vote_2a of {
      txid : Txid.t;
      participant : int;
      vote : bool;
      ballot : int;
      participants : int list;
    }
  | Decision_query of { txid : Txid.t }
  | Acceptor_forget of { txid : Txid.t }
  | Find_process of { pid : Pid.t }
  | Replica_commit of { update : Update.t }
  | Replica_pull of { fid : File_id.t }
  | Replica_versions of { vid : int }
  | Replica_read of {
      fid : File_id.t;
      reader : Owner.t;
      pid : Pid.t;
      pos : int;
      len : int;
    }
  | Delegate_locks of { fid : File_id.t; payload : string }
  | Recall_locks of { fid : File_id.t }
  | Shard_lookup of { fid : File_id.t }
  | Shard_claim of { fid : File_id.t; new_owner : int; from_epoch : int }
  | Shard_migrate of { fid : File_id.t; epoch : int; payload : string }
  | Shard_migrate_req of { fid : File_id.t; dst : int }
  | Shard_handoff of { fid : File_id.t }
  | Ensure_lock of {
      fid : File_id.t;
      owner : Owner.t;
      pid : Pid.t;
      range : Byte_range.t;
      write : bool;
      momentary : bool;
      dirty : bool;
    }
  | Release_locks of {
      fid : File_id.t;
      owner : Owner.t;
      pid : Pid.t;
      ranges : Byte_range.t list option;
      cancel : bool;
    }
  | Ping
  | Health_query
      (** Ask a kernel for its live health report (locus_health);
          answered with [R_health]. *)
  | Read_locked of {
      fid : File_id.t;
      reader : Owner.t;
      pid : Pid.t;
      pos : int;
      len : int;
    }
      (** Read that piggybacks implicit Shared-lock acquisition on the
          read RPC itself (one round trip instead of lock-then-read). *)
  | Batch of env list
      (** Several requests for the same destination coalesced into one
          wire message; answered by [R_batch] in the same order. *)

and env = { ctx : Locus_otrace.Otrace.ctx option; rid : rid option; payload : t }

(* Exactly-once request identity (locus_chaos): [(r_site, r_inc, r_seq)]
   names one logical request for the lifetime of the client kernel's
   incarnation, however many wire copies retries and duplication produce.
   [r_ack] piggybacks the client's completion watermark: every seq at or
   below it is finished client-side, so servers may evict those cache
   entries — and must treat a late copy of one as a stale duplicate. *)
and rid = { r_site : int; r_inc : int; r_seq : int; r_ack : int }

type reply =
  | R_ok
  | R_err of string
  | R_retry
  | R_data of Bytes.t
  | R_int of int
  | R_fid of File_id.t
  | R_granted
  | R_granted_data of Bytes.t
  | R_granted_at of int
  | R_conflict of Owner.t list
  | R_redirect of int
  | R_owner of { owner : int; epoch : int; prev : int }
  | R_pieces of Byte_range.t list
  | R_vote of bool
  | R_vote_2b of bool
  | R_decision of { participants : int list; votes : (int * bool) list }
  | R_outcome of Log_record.status option
  | R_found of bool
  | R_update of Update.t
  | R_versions of (int * int) list
  | R_data_locked of Bytes.t
      (** Data plus confirmation that an implicit Shared lock is now held
          at the storage site — the client may cache the lock. *)
  | R_health of Locus_health.Report.site
  | R_batch of reply list

let envelope ?ctx ?rid payload = { ctx; rid; payload }

(* Short static name per constructor — used as the server-side span name,
   so it must be allocation-free and stable across runs. *)
let label = function
  | Open _ -> "open"
  | Close _ -> "close"
  | Read _ -> "read"
  | Write _ -> "write"
  | Lock _ -> "lock"
  | Lock_append _ -> "lock-append"
  | Unlock _ -> "unlock"
  | Commit_file _ -> "commit-file"
  | Abort_file _ -> "abort-file"
  | File_size _ -> "size"
  | Create_file _ -> "create-file"
  | Member_join _ -> "member-join"
  | Merge_file_list _ -> "merge-file-list"
  | Proc_arrive _ -> "proc-arrive"
  | Proc_exit_cleanup _ -> "proc-exit"
  | Prepare _ -> "prepare"
  | Commit_phase2 _ -> "commit2"
  | Abort_phase2 _ -> "abort2"
  | Abort_tree _ -> "abort-tree"
  | Query_outcome _ -> "query-outcome"
  | Vote_2a _ -> "vote-2a"
  | Decision_query _ -> "decision-query"
  | Acceptor_forget _ -> "acceptor-forget"
  | Find_process _ -> "find-process"
  | Replica_commit _ -> "replica-commit"
  | Replica_pull _ -> "replica-pull"
  | Replica_versions _ -> "replica-versions"
  | Replica_read _ -> "replica-read"
  | Delegate_locks _ -> "delegate-locks"
  | Recall_locks _ -> "recall-locks"
  | Shard_lookup _ -> "shard-lookup"
  | Shard_claim _ -> "shard-claim"
  | Shard_migrate _ -> "shard-migrate"
  | Shard_migrate_req _ -> "shard-migrate-req"
  | Shard_handoff _ -> "shard-handoff"
  | Ensure_lock _ -> "ensure-lock"
  | Release_locks _ -> "release-locks"
  | Ping -> "ping"
  | Health_query -> "health"
  | Read_locked _ -> "read-locked"
  | Batch _ -> "batch"

let rec pp ppf = function
  | Open { fid } -> Fmt.pf ppf "open %a" File_id.pp fid
  | Close { fid; _ } -> Fmt.pf ppf "close %a" File_id.pp fid
  | Read { fid; pos; len; _ } -> Fmt.pf ppf "read %a@%d+%d" File_id.pp fid pos len
  | Write { fid; pos; data; _ } ->
    Fmt.pf ppf "write %a@%d+%d" File_id.pp fid pos (Bytes.length data)
  | Lock { fid; owner; mode; range; wait; _ } ->
    Fmt.pf ppf "lock %a %a %a %a%s" File_id.pp fid Owner.pp owner Mode.pp mode
      Byte_range.pp range
      (if wait then " wait" else "")
  | Lock_append { fid; len; _ } -> Fmt.pf ppf "lock-append %a +%d" File_id.pp fid len
  | Unlock { fid; range; _ } -> Fmt.pf ppf "unlock %a %a" File_id.pp fid Byte_range.pp range
  | Commit_file { fid; owner } ->
    Fmt.pf ppf "commit-file %a %a" File_id.pp fid Owner.pp owner
  | Abort_file { fid; owner } ->
    Fmt.pf ppf "abort-file %a %a" File_id.pp fid Owner.pp owner
  | File_size { fid } -> Fmt.pf ppf "size %a" File_id.pp fid
  | Create_file { vid } -> Fmt.pf ppf "create-file vol%d" vid
  | Member_join { top; txid } -> Fmt.pf ppf "member-join %a %a" Pid.pp top Txid.pp txid
  | Merge_file_list { top; txid; files } ->
    Fmt.pf ppf "merge-file-list %a %a (%d)" Pid.pp top Txid.pp txid (List.length files)
  | Proc_arrive _ -> Fmt.string ppf "proc-arrive"
  | Proc_exit_cleanup { pid; _ } -> Fmt.pf ppf "proc-exit %a" Pid.pp pid
  | Prepare { txid; _ } -> Fmt.pf ppf "prepare %a" Txid.pp txid
  | Commit_phase2 { txid; _ } -> Fmt.pf ppf "commit2 %a" Txid.pp txid
  | Abort_phase2 { txid; _ } -> Fmt.pf ppf "abort2 %a" Txid.pp txid
  | Abort_tree { txid; pid; _ } -> Fmt.pf ppf "abort-tree %a %a" Txid.pp txid Pid.pp pid
  | Query_outcome { txid } -> Fmt.pf ppf "query-outcome %a" Txid.pp txid
  | Vote_2a { txid; participant; vote; ballot; _ } ->
    Fmt.pf ppf "vote-2a %a p%d %b b%d" Txid.pp txid participant vote ballot
  | Decision_query { txid } -> Fmt.pf ppf "decision-query %a" Txid.pp txid
  | Acceptor_forget { txid } -> Fmt.pf ppf "acceptor-forget %a" Txid.pp txid
  | Find_process { pid } -> Fmt.pf ppf "find-process %a" Pid.pp pid
  | Replica_commit { update } -> Fmt.pf ppf "replica-commit %a" Update.pp update
  | Replica_pull { fid } -> Fmt.pf ppf "replica-pull %a" File_id.pp fid
  | Replica_versions { vid } -> Fmt.pf ppf "replica-versions vol%d" vid
  | Replica_read { fid; pos; len; _ } ->
    Fmt.pf ppf "replica-read %a@%d+%d" File_id.pp fid pos len
  | Delegate_locks { fid; _ } -> Fmt.pf ppf "delegate-locks %a" File_id.pp fid
  | Recall_locks { fid } -> Fmt.pf ppf "recall-locks %a" File_id.pp fid
  | Shard_lookup { fid } -> Fmt.pf ppf "shard-lookup %a" File_id.pp fid
  | Shard_claim { fid; new_owner; from_epoch } ->
    Fmt.pf ppf "shard-claim %a -> site%d from e%d" File_id.pp fid new_owner
      from_epoch
  | Shard_migrate { fid; epoch; _ } ->
    Fmt.pf ppf "shard-migrate %a e%d" File_id.pp fid epoch
  | Shard_migrate_req { fid; dst } ->
    Fmt.pf ppf "shard-migrate-req %a -> site%d" File_id.pp fid dst
  | Shard_handoff { fid } -> Fmt.pf ppf "shard-handoff %a" File_id.pp fid
  | Ensure_lock { fid; owner; range; write; momentary; _ } ->
    Fmt.pf ppf "ensure-lock %a %a %a%s%s" File_id.pp fid Owner.pp owner
      Byte_range.pp range
      (if write then " w" else " r")
      (if momentary then " momentary" else "")
  | Release_locks { fid; owner; ranges; cancel; _ } ->
    Fmt.pf ppf "release-locks %a %a %s%s" File_id.pp fid Owner.pp owner
      (match ranges with
      | None -> "all"
      | Some rs -> Printf.sprintf "%d ranges" (List.length rs))
      (if cancel then " cancel" else "")
  | Ping -> Fmt.string ppf "ping"
  | Health_query -> Fmt.string ppf "health-query"
  | Read_locked { fid; pos; len; _ } ->
    Fmt.pf ppf "read-locked %a@%d+%d" File_id.pp fid pos len
  | Batch envs ->
    Fmt.pf ppf "batch[%a]"
      (Fmt.list ~sep:Fmt.semi (fun ppf e -> pp ppf e.payload))
      envs

let rec pp_reply ppf = function
  | R_ok -> Fmt.string ppf "ok"
  | R_err e -> Fmt.pf ppf "err(%s)" e
  | R_retry -> Fmt.string ppf "retry"
  | R_data b -> Fmt.pf ppf "data(%d)" (Bytes.length b)
  | R_int n -> Fmt.pf ppf "int(%d)" n
  | R_fid fid -> Fmt.pf ppf "fid(%a)" File_id.pp fid
  | R_granted -> Fmt.string ppf "granted"
  | R_granted_data b -> Fmt.pf ppf "granted+data(%d)" (Bytes.length b)
  | R_granted_at n -> Fmt.pf ppf "granted@%d" n
  | R_conflict owners -> Fmt.pf ppf "conflict(%a)" Fmt.(list ~sep:comma Owner.pp) owners
  | R_redirect s -> Fmt.pf ppf "redirect(%d)" s
  | R_owner { owner; epoch; prev } ->
    Fmt.pf ppf "owner(site%d e%d from site%d)" owner epoch prev
  | R_pieces rs -> Fmt.pf ppf "pieces(%d)" (List.length rs)
  | R_vote v -> Fmt.pf ppf "vote(%b)" v
  | R_vote_2b v -> Fmt.pf ppf "vote-2b(%b)" v
  | R_decision { votes; _ } -> Fmt.pf ppf "decision(%d votes)" (List.length votes)
  | R_outcome o ->
    Fmt.pf ppf "outcome(%a)" Fmt.(option ~none:(any "none") Log_record.pp_status) o
  | R_found b -> Fmt.pf ppf "found(%b)" b
  | R_update u -> Fmt.pf ppf "update(%a)" Update.pp u
  | R_versions vs -> Fmt.pf ppf "versions(%d)" (List.length vs)
  | R_data_locked b -> Fmt.pf ppf "data+locked(%d)" (Bytes.length b)
  | R_health s ->
    Fmt.pf ppf "health(site%d)" s.Locus_health.Report.hs_site
  | R_batch rs ->
    Fmt.pf ppf "batch-reply[%a]" (Fmt.list ~sep:Fmt.semi pp_reply) rs
