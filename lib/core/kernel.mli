(** The per-site Locus kernel and the cluster that ties the kernels
    together.

    A {!cluster} is a set of sites, each running one kernel instance over
    the shared simulated network. Each kernel composes the substrates:
    volumes + buffer cache (storage), the file store (shadow-page record
    commit), lock tables, the process table, the transaction registries
    (coordinator log, participant state, active-transaction table).

    The user-visible syscall layer is {!Api}; this module is the kernel
    interface those syscalls (and the kernel-to-kernel message handler)
    are built on. Everything here that performs I/O or messaging must run
    inside an engine fiber. *)

type t
type cluster

module Config : sig
  type commit_protocol =
    | Two_phase  (** the paper's §4.2 protocol (default) *)
    | Paxos of { f : int }
        (** Gray & Lamport's Paxos Commit: every participant vote is
            registered at 2f+1 acceptor sites (consecutive from the
            coordinator, via the replica-placement rule) before it counts,
            and the outcome is a deterministic function of an f+1 quorum
            of registrations — so participants of a crashed coordinator
            decide without waiting for its recovery. Requires
            [n_sites >= 2f+1]. *)

  type retry = { attempts : int; backoff_us : int; cap_us : int }
  (** One bounded retry loop: up to [attempts] tries, first wait
      [backoff_us], exponential growth (jittered under chaos) capped at
      [cap_us]. *)

  type retries = {
    rpc : retry;  (** chaos-mode client requests *)
    phase2 : retry;  (** commit/abort phase-2 notifications (§4.2) *)
    replay : retry;  (** recovery replaying phase 2 of decided txns (§4.4) *)
    outcome : retry;  (** participants chasing an in-doubt outcome (§4.4) *)
    replica : retry;  (** replica delta propagation (§5.2) *)
    shard : retry;  (** shard migration envelopes (locus_shard) *)
  }

  type t = {
    n_sites : int;
    volumes : (int * Site.t list) list;
        (** [(vid, hosting sites)]: a logical volume may be replicated at
            several sites (first host = initial primary). Every site must
            host at least one volume (it needs a medium for its coordinator
            log). *)
    page_size : int;
    cache_pages : int;
    lock_cache : bool;  (** requesting-site lock cache (§5.1) — E2 ablation *)
    prefetch : bool;
        (** §5.2 optimization: remote lock grants carry the locked range's
            data, and covered reads are served from a requesting-site
            cache while the lock is held. Default off (the paper lists it
            as a further opportunity, not a measured feature). *)
    lock_delegation : bool;
        (** §5.2 optimization: a storage site may temporarily transfer
            lock management for a file to a site whose processes dominate
            its lock traffic; authority is recalled before prepare, data
            access, or commit. Default off. *)
    delegation_threshold : int;
        (** consecutive remote lock requests from one site before
            authority moves there *)
    prepare_log_per_file : bool;  (** footnote 10 ablation *)
    two_write_log : bool;  (** footnote 9 ablation *)
    replica_sync : bool;  (** propagate commits to replicas (§5.2) *)
    async_phase2 : bool;
        (** paper behaviour: phase-2 commit messages are sent by a kernel
            process after the client resumes (§4.2); [false] = synchronous
            phase 2, for the E3/E4 ablation *)
    deadlock_patience_us : int;
        (** how long a lock waiter blocks before triggering a wait-for
            graph scan (§3.1) *)
    deadlock_policy : Locus_deadlock.Detector.policy;
        (** victim-selection strategy used by the resolution service *)
    rpc_timeout_us : int;
        (** how long an RPC waits for its reply before the sender treats
            the destination as unreachable. One knob for the whole stack:
            it is threaded to the transport, whose default it shares
            ({!Transport.default_rpc_timeout_us}). *)
    group_commit_window_us : int;
        (** group commit: concurrently committing transactions whose log
            forces land on the same volume within this window share a
            single force (coordinator log and prepare/redo log alike).
            [0] (default) = force immediately, today's behaviour. *)
    rpc_batch_window_us : int;
        (** RPC coalescing: prepare / phase-2 / replica-delta messages
            bound for the same site within this window travel as one
            [Msg.Batch] message with one reply. [0] (default) = one
            message per request. *)
    commit_protocol : commit_protocol;
        (** atomic-commitment protocol; [Two_phase] (default) keeps every
            existing baseline bit-for-bit *)
    shards : int;
        (** locus_shard dynamic lock placement: number of directory shards
            serving "who owns the lock-manager role for fid X" queries.
            [0] (default) = static placement (storage-site lock tables,
            optionally with §5.2 delegation). Mutually exclusive with
            [lock_delegation]. *)
    shard_policy : Locus_shard.Policy.t;
        (** when the lock-manager role chases the traffic: [Never], or
            [Threshold n] consecutive remote acquisitions from one site *)
    retries : retries;
        (** per-protocol-loop retry policies — the single source of truth
            for every kernel retry call site *)
    net_faults : Transport.faults option;
        (** the lossy-network chaos layer (locus_chaos): [Some f] arms
            seed-deterministic per-message drop / duplication / jitter /
            reordering on every wire leg AND switches client kernel RPCs
            to rid-tagged retried sends backed by server-side exactly-once
            reply caches. [None] (default) is the historical reliable
            network, bit-for-bit. *)
    health_window_us : int;
        (** locus_health windowed sampler: virtual-time width of one
            sampling window. [0] (default) = the health plane is unarmed —
            no sampler events, no series, no alarms, bit-for-bit identical
            runs. The {!Health_query} RPC answers either way. *)
    health_keep : int;
        (** ring capacity of every health time series (windows retained) *)
    health_thresholds : Locus_health.Rules.thresholds;
        (** watchdog alarm thresholds evaluated at every window close *)
  }

  val default_retries : retries
  (** Exactly the historical per-callsite constants (caps at 16x the
      initial backoff), so default timing is unchanged. *)

  val default : n_sites:int -> t
  (** One volume per site ([vid = site]), 1 KiB pages, paper-faithful
      knobs. *)

  val with_replication : n_sites:int -> factor:int -> t
  (** Like {!default} but every volume is hosted at [factor] consecutive
      sites ({!Locus_repl.Placement.volumes}): primary-copy replication
      with commit propagation. [factor] is clamped to [1..n_sites]. *)

  val with_batching : window_us:int -> t -> t
  (** Set both batch windows ({!type-t.group_commit_window_us} and
      {!type-t.rpc_batch_window_us}) to the same value — the usual way to
      turn the commit-path batching on. *)

  val with_paxos : f:int -> t -> t
  (** Switch the commit protocol to [Paxos { f }]. Raises
      [Invalid_argument] unless [0 <= f] and [n_sites >= 2f+1]. *)

  val with_shards : shards:int -> ?policy:Locus_shard.Policy.t -> t -> t
  (** Enable locus_shard dynamic lock placement with [shards] directory
      shards. Raises [Invalid_argument] when [shards <= 0] or
      [lock_delegation] is on. *)

  val with_net_faults :
    ?drop:float -> ?dup:float -> ?reorder:int -> ?jitter_us:int -> t -> t
  (** Arm the chaos layer with the given per-message fault rates (all
      default 0). Raises [Invalid_argument] on rates outside [0, 1) or
      negative window sizes. *)

  val with_health :
    ?window_us:int ->
    ?keep:int ->
    ?thresholds:Locus_health.Rules.thresholds ->
    t ->
    t
  (** Arm the locus_health plane: sample counters / gauges / histogram
      interval merges every [window_us] (default 100 ms of virtual time)
      into bounded rings of [keep] windows (default 64), and evaluate the
      watchdog [thresholds] ({!Locus_health.Rules.default}) at every
      window close. Raises [Invalid_argument] when [window_us <= 0] or
      [keep <= 0]. *)
end

val make : Engine.t -> Config.t -> cluster
(** Build sites, volumes, kernels; install message handlers, crash /
    restart / topology watchers. *)

val engine : cluster -> Engine.t
val config : cluster -> Config.t
val transport : cluster -> (Msg.env, Msg.reply) Transport.t
val kernel : cluster -> Site.t -> t
val kernels : cluster -> t list
val site : t -> Site.t
val cluster_of : t -> cluster

(** {1 Failure injection} *)

val crash_site : cluster -> Site.t -> unit
(** Crash: volatile kernel state vanishes, local fibers die, in-flight
    messages drop, topology watchers fire everywhere reachable. *)

val restart_site : cluster -> Site.t -> unit
(** Reboot: fresh volatile state, then the §4.4 recovery pass runs (as a
    fiber) before new transactions are admitted. *)

(** {1 Namespace (transparent, global)} *)

val create_file : cluster -> src:Site.t -> path:string -> vid:int -> File_id.t
(** Create a file on volume [vid] and bind [path] to it. Fiber-only. *)

val lookup : cluster -> string -> File_id.t option

val bind_path : cluster -> string -> File_id.t -> unit
(** Record a path binding in the flat index (kept alongside the real
    directory files for oracles and introspection). *)

val root_dir : cluster -> src:Site.t -> File_id.t
(** The root directory file, created lazily on the root volume (the
    lowest-numbered volume hosted at site 0). Fiber-only. *)

val path_of : cluster -> File_id.t -> string option
val storage_site : cluster -> File_id.t -> Site.t
(** Current primary update site for the file's volume replica set (§5.2);
    re-elected among reachable hosts when the primary is down. *)

val replica_sites : cluster -> File_id.t -> Site.t list

(** {1 Kernel services used by the Api layer (fiber-only)} *)

val rpc : cluster -> src:Site.t -> dst:Site.t -> Msg.t -> Msg.reply
(** Send a kernel message and await the reply; timeouts surface as
    [R_err]. *)

val alloc_txid : t -> Txid.t
val procs : t -> Locus_proc.Proc_table.t
val txns : t -> Txn_state.t
val filestore : t -> Filestore.t
val participant : t -> Participant.t
val coord_log : t -> Coord_log.t
val lock_table : t -> File_id.t -> Lock_table.t option
val lock_tables : cluster -> Lock_table.t list
(** All lock tables of all live sites — the kernel-data interface the
    deadlock detector reads (§3.1). *)

val lock_authority_hint : cluster -> File_id.t -> Site.t option
(** Where clients believe lock management for the file currently lives
    (§5.2 delegation); [None] means the storage site. *)

val note_lock_authority : cluster -> File_id.t -> Site.t -> unit

(** {1 Dynamic lock placement (locus_shard)} *)

val sharded : cluster -> bool
(** Is dynamic lock placement on ([Config.shards > 0])? *)

val shard_default_owner : cluster -> File_id.t -> Site.t
(** Epoch-0 owner of a never-claimed fid: the first configured host of
    its volume (static — derivable at every site without messages). *)

val force_migrate : cluster -> src:Site.t -> File_id.t -> dst:Site.t -> unit
(** Ask the file's current lock-manager, wherever it is, to hand the role
    to [dst] — the [Migrate_owner] fault and [locusctl]'s manual handle.
    Fiber-only; no-op when placement is static or the owner stays
    unreachable. *)

val shard_owner : cluster -> File_id.t -> (Site.t * int) option
(** Directory truth for the fid's lock-manager role: [(owner, epoch)].
    [None] when placement is static. Bypasses messaging (oracle). *)

val shard_status : cluster -> (File_id.t * string option * Site.t * int) list
(** Every claimed directory entry as [(fid, path, owner, epoch)], sorted
    by fid — drives [locusctl shard-status]. Entries still at their
    epoch-0 default owner are omitted. *)

val register_fiber : t -> Pid.t -> Engine.Fiber.handle -> unit
val fiber_of : t -> Pid.t -> Engine.Fiber.handle option
val forget_fiber : t -> Pid.t -> unit

val note_location : cluster -> Pid.t -> Site.t -> unit
val location_hint : cluster -> Pid.t -> Site.t option
val find_process : cluster -> src:Site.t -> Pid.t -> Site.t option
(** Locate a process: check the hint, verify by message, fall back to
    polling every reachable site. *)

val exit_ivar : cluster -> Pid.t -> unit Engine.Ivar.t
(** Created on demand; filled when the process exits (for [Api.wait]). *)

(** {1 Transactions} *)

type outcome = Committed | Aborted

val pp_outcome : outcome Fmt.t

type ready = Members_done | Abort_requested
(** What releases a top-level process parked at the transaction endpoint:
    the last member completed, or an abort arrived first. *)

val register_end_wait : t -> Txid.t -> ready Engine.Ivar.t
(** The top-level process parks here until all members have completed (or
    a racing abort decides first). *)

val register_transaction : cluster -> Txid.t -> top:Pid.t -> site:Site.t -> unit
(** Record a new transaction's top-level process in the volatile global
    registry used by cascade abort and topology sweeps. *)

val register_member : cluster -> Txid.t -> Pid.t -> Site.t -> unit
val transaction_top : cluster -> Txid.t -> Pid.t option
val update_member_site : cluster -> Txid.t -> Pid.t -> Site.t -> unit

val encode_migration : Locus_proc.Process.t -> Txn_state.txn option -> string
(** Serialize a migration payload for a [Proc_arrive] message (§4.1). *)

val commit_transaction : t -> Txn_state.txn -> outcome
(** Drive two-phase commit from this (coordinator) site: coordinator log,
    parallel prepares, decision, asynchronous phase 2 (§4.2). Call from
    the top-level process's fiber once every member has completed. *)

type abort_reason = Deadlock | Orphan | Crash | Degraded_vote | Coordinator_lost | User
(** Why a transaction died — counted as first-class [txn.abort.<reason>]
    stats counters (the taxonomy exists with or without a span collector).
    [Degraded_vote] is counted by the 2PC decision path when any
    participant votes no (degraded replica, denied prepare, or an
    unreachable site); [Coordinator_lost] by a Paxos Commit resolver that
    learned an abort from the acceptor quorum after losing sight of the
    coordinator; the others classify {!abort_transaction} calls. *)

val abort_reason_label : abort_reason -> string

val abort_transaction :
  cluster -> ?spare:Pid.t -> ?reason:abort_reason -> src:Site.t -> Txid.t -> unit
(** Cascade abort (§4.3): locate the top-level process, roll back every
    member process's files, release locks, kill member fibers (sparing the
    caller's), wake a parked [end_trans] with [Aborted]. Safe to call from
    any fiber, including a member of the transaction itself. [reason]
    (default [User]) feeds the abort taxonomy counters. *)

val member_exit : cluster -> src:Site.t -> Locus_proc.Process.t -> unit
(** Run the member-process exit protocol for a transaction member: merge
    its file-list into the top-level process's transaction record with the
    §4.1 retry protocol, then clean up its channels and locks. *)

val deadlock_scan : cluster -> src:Site.t -> Owner.t list
(** Build the global wait-for graph and abort victim transactions; returns
    the victims. Triggered by lock waiters that exceed the configured
    patience, or manually by tests. *)

(** {1 Failure-injection hooks (tests)} *)

type hooks = {
  mutable on_coord_log_written : Txid.t -> unit;
      (** after Figure 5 step 1: the coordinator record is durable *)
  mutable on_participant_prepared : Site.t -> Txid.t -> bool -> unit;
      (** a participant just voted (after its prepare log write) *)
  mutable on_decided : Txid.t -> Log_record.status -> unit;
      (** after Figure 5 step 4: the commit/abort mark is durable *)
}

val hooks : cluster -> hooks
(** Mutable; install crash injections at exact protocol points. *)

(** {1 History observation (Locus_check)} *)

val set_observer : cluster -> Obs.sink option -> unit
(** Install (or remove) the per-cluster event sink. The kernel and the
    Api layer feed it one {!Obs.record} per begin / read / write / lock /
    unlock / outcome / file-commit action; [None] (the default) makes
    every emission point a cheap no-op. *)

val observe : cluster -> site:Site.t -> Obs.event -> unit
(** Emit an event to the installed observer (no-op without one). Exposed
    for the Api layer and for tests that fabricate histories. *)

(** {1 Causal span tracing (Locus_otrace)} *)

val set_otracer : cluster -> Locus_otrace.Otrace.t option -> unit
(** Install (or remove) the cluster's span collector. Like the observer,
    every emission point is a single option test when absent — no spans,
    no argument rendering, no overhead. While installed, the kernel opens
    spans around lock waits, every 2PC phase, replica propagation, lock
    release, message handling and recovery, and attaches span context to
    outgoing [Msg] envelopes so trees stitch across sites. *)

val otracer : cluster -> Locus_otrace.Otrace.t option

(** {1 Introspection for tests and benches} *)

val read_committed_oracle : cluster -> File_id.t -> string
(** Committed contents of a file at its primary site, bypassing all cost
    accounting. Test oracle only. *)

val active_transactions : cluster -> Txid.t list

val in_doubt_participants : cluster -> (Site.t * Txid.t) list
(** Prepared transactions still held by live sites: once the system has
    quiesced, a non-empty result means participants are blocked in-doubt.
    This is the explorer's liveness oracle — under Paxos Commit it must
    drain even when a coordinator dies between its decision and phase 2. *)

val acceptor : t -> Locus_pcommit.Acceptor.t
(** This site's Paxos Commit acceptor state (tests). *)

val dedup_cached : t -> int
(** Number of completed entries currently held by this kernel's
    exactly-once reply cache (tests: cache population / watermark
    eviction / crash clearing are asserted through this). *)

val reply_cache_capacity : int
(** Watermark at which a kernel's exactly-once reply cache starts
    evicting oldest-completed entries — the denominator of the health
    plane's dedup-occupancy gauge. *)

(** {1 Live health plane (Locus_health)} *)

val health_report : t -> Locus_health.Report.site
(** Build this kernel's structured health report right now: in-doubt
    count and max age, lock-table queue depths and hottest cells, WAL
    bytes, reply-cache occupancy, degraded replica copies, shard
    ownership. Works whether or not the windowed sampler is armed, and
    is exactly what a {!Msg.Health_query} RPC answers. *)

val health_poll_all :
  cluster -> src:Site.t -> Locus_health.Report.poll list
(** Monitor-side fan-out: poll every site from [src] (itself answered
    locally) with the per-RPC timeout; a site that cannot answer —
    crashed, partitioned, lost messages past the retry budget — comes
    back as [Unreachable]. Must run inside a fiber. *)

val health_alarms : cluster -> Locus_health.Rules.alarm list
(** Every watchdog alarm raised so far, oldest first. Empty when the
    plane is unarmed ([health_window_us = 0]). *)

val health_series : cluster -> (string * Locus_health.Series.t) list
(** The sampler's windowed time series, sorted by name; [[]] when the
    plane is unarmed. *)

val health_windows : cluster -> int
(** Number of sampling windows closed so far (0 when unarmed). *)

val health_active : cluster -> (int * string list) list
(** Currently-latched alarm conditions: [(site, rule names)] for every
    scope with at least one active rule; site [-1] is the cluster
    scope. *)

(** {1 Replication introspection} *)

type replica_host_status = {
  rh_site : int;
  rh_alive : bool;
  rh_fresh : bool;  (** not degraded (reconciliation pending) *)
  rh_primary : bool;
  rh_versions : (int * int) list;  (** (ino, committed version), sorted *)
}

type replica_volume_status = {
  rv_vid : int;
  rv_primary : int;  (** current primary update site *)
  rv_hosts : replica_host_status list;
}

val replica_status : cluster -> replica_volume_status list
(** Per-volume replica-set state, bypassing all cost accounting: current
    primary, per-host liveness/freshness and committed file versions.
    Drives [locusctl repl-status] and the replication tests. *)

val replica_fresh : cluster -> site:Site.t -> vid:int -> bool
(** Is the copy of [vid] at [site] fresh (not degraded)? *)
