(** Top-level convenience facade: build a cluster and run scenarios.

    Typical use:
    {[
      let sim =
        Locus.simulate ~n_sites:3 (fun cl ->
            let _pid =
              Locus.Api.spawn_process cl ~site:0 (fun env ->
                  let c = Locus.Api.creat env "/db/accounts" ~vid:1 in
                  Locus.Api.begin_trans env;
                  Locus.Api.write_string env c "hello";
                  ignore (Locus.Api.end_trans env);
                  Locus.Api.close env c)
            in
            ())
      in
      Fmt.pr "virtual time: %d us@." (Locus.Engine.now sim.engine)
    ]} *)

module Engine = Locus_sim.Engine
module Costs = Locus_sim.Costs
module Stats = Locus_sim.Stats
module Api = Api
module Kernel = Kernel
module Msg = Msg
module Obs = Obs
module Otrace = Locus_otrace.Otrace
module Mode = Locus_lock.Mode

type sim = { engine : Engine.t; cluster : Kernel.cluster }

val make : ?seed:int -> ?costs:Costs.t -> ?config:Kernel.Config.t -> n_sites:int -> unit -> sim
(** Create an engine and a cluster (without running anything). *)

val simulate :
  ?seed:int ->
  ?costs:Costs.t ->
  ?config:Kernel.Config.t ->
  n_sites:int ->
  (Kernel.cluster -> unit) ->
  sim
(** [simulate ~n_sites f] builds a cluster, calls [f] to set up processes,
    runs the engine until quiescent, and returns the simulation for
    inspection. *)

val run : sim -> unit
(** Drain the engine (resume after injecting more work). *)
