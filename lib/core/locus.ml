module Engine = Locus_sim.Engine
module Costs = Locus_sim.Costs
module Stats = Locus_sim.Stats
module Api = Api
module Kernel = Kernel
module Msg = Msg
module Obs = Obs
module Otrace = Locus_otrace.Otrace
module Mode = Locus_lock.Mode

type sim = { engine : Engine.t; cluster : Kernel.cluster }

let make ?seed ?costs ?config ~n_sites () =
  let engine = Engine.create ?seed ?costs () in
  let config =
    match config with Some c -> c | None -> Kernel.Config.default ~n_sites
  in
  { engine; cluster = Kernel.make engine config }

let run sim = Engine.run sim.engine

let simulate ?seed ?costs ?config ~n_sites f =
  let sim = make ?seed ?costs ?config ~n_sites () in
  f sim.cluster;
  run sim;
  sim
