(** One site's Paxos Commit acceptor state: first-writer-wins vote
    registrations, persisted in the site's log volume and replayed on
    recovery. *)

type t

val vote_tag : string
(** Log-record tag under which registered votes are persisted. *)

val create : Volume.t -> t

val register :
  t ->
  txid:Txid.t ->
  participant:Site.t ->
  vote:bool ->
  ballot:int ->
  participants:Site.t list ->
  bool
(** Offer a vote for instance ([txid], [participant]). If the instance is
    free the vote is force-written to the log volume and registered; if
    already taken the registration is immutable. Either way the holder's
    value is returned, so the offerer learns whether its own vote is the
    one that stuck. Must run inside a fiber (performs log I/O). *)

val registered : t -> txid:Txid.t -> participant:Site.t -> bool option
(** The registered value for an instance, if any. *)

val votes_for : t -> Txid.t -> Site.t list * (Site.t * bool) list
(** All registrations this acceptor holds for [txid]: the union of
    participant sets recorded with the votes, and one [(participant,
    vote)] pair per registered instance. *)

val forget : t -> Txid.t -> unit
(** Drop all registrations for a finished transaction and release their
    log records. *)

val size : t -> int
val crash : t -> unit
(** Lose volatile state (registrations survive in the log volume). *)

val recover : t -> unit
(** Replay registrations from the log volume; must run inside a fiber. *)
