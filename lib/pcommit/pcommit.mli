(** Paxos Commit decision logic: acceptor placement and the quorum
    decision function. See acceptor.mli for the per-site acceptor state
    and the module comment in pcommit.ml for the safety argument. *)

val quorum : f:int -> int
(** Votes needed to fix an instance's value: f+1 of the 2f+1 acceptors. *)

val acceptors : n_sites:int -> f:int -> coordinator:Site.t -> Site.t list
(** The 2f+1-site acceptor set for a transaction coordinated at
    [coordinator]: consecutive sites starting at the coordinator, via the
    replica-placement rule. Raises [Invalid_argument] if n_sites < 2f+1. *)

type decision =
  | Commit  (** every instance Prepared at quorum *)
  | Abort  (** some instance Aborted at quorum *)
  | Undecided of Site.t list
      (** instances with neither value at quorum yet; offering ballot-1
          Aborted votes for these closes them *)

val decide :
  f:int ->
  participants:Site.t list ->
  votes:(Site.t * bool) list list ->
  decision
(** Tally per-acceptor registration reports (one association list per
    responding acceptor) into a transaction outcome. Monotone: a Commit
    or Abort verdict can never be contradicted by further replies. *)

val pp_decision : decision Fmt.t
