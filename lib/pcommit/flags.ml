(* Fault-injection switch for the CI self-test (mirrors
   Locus_repl.Flags.drop_propagation). When set, acceptors acknowledge
   Vote_2a offers without registering or persisting anything, so the
   commit decision is never learnable from the acceptor set and the
   explorer's liveness check must fire. *)
let break_paxos = ref false
