(** Fault-injection switches for CI self-tests. *)

val break_paxos : bool ref
(** When true, acceptors acknowledge vote offers without registering or
    persisting them — transaction outcomes become unlearnable and the
    explorer's Paxos liveness check must fail. Drives the [--break-paxos]
    inverted self-test; reset after use. *)
