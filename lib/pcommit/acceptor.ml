(* Paxos Commit acceptor (Gray & Lamport, cs/0408036, here specialised to
   ballot-0 votes plus ballot-1 closure). Each transaction runs one
   consensus instance per participant; this module is one acceptor's
   share of every instance whose acceptor set includes this site.

   An instance's registered value is first-writer-wins: the participant
   offers its own Prepared/Aborted vote at ballot 0 during prepare, and a
   recovering party may later offer an Aborted vote at ballot 1 to close
   an instance whose participant never got its vote registered here.
   Registered values are never overwritten, so the quorum-counting
   decision rule in {!Pcommit} is monotone: once f+1 of the 2f+1
   acceptors register the same value for an instance, that instance's
   outcome is fixed for every reader.

   Votes are persisted in the acceptor's log volume (same WAL that holds
   coordinator and prepare records, under a distinct tag) and replayed on
   recovery, so a crashed acceptor rejoins with its registrations
   intact. *)

type record = {
  r_txid : Txid.t;
  r_participant : Site.t;
  r_vote : bool;
  r_ballot : int;
  r_participants : Site.t list;
}

let vote_tag = "pcvote"
let magic = "PCV1:"

let encode (r : record) = magic ^ Marshal.to_string r []

let decode s =
  let mlen = String.length magic in
  if String.length s > mlen && String.sub s 0 mlen = magic then
    try Some (Marshal.from_string s mlen : record) with Failure _ -> None
  else None

type entry = {
  vote : bool;
  ballot : int;
  participants : Site.t list;
  log_idx : int;
}

type t = {
  vol : Volume.t;
  votes : (Txid.t * Site.t, entry) Hashtbl.t;
}

let create vol = { vol; votes = Hashtbl.create 32 }

let register t ~txid ~participant ~vote ~ballot ~participants =
  match Hashtbl.find_opt t.votes (txid, participant) with
  | Some e -> e.vote (* first writer wins; the offerer learns the holder *)
  | None ->
    if !Flags.break_paxos then vote (* ack without registering: vote is lost *)
    else begin
      let idx =
        Volume.log_append t.vol ~tag:vote_tag
          (encode
             {
               r_txid = txid;
               r_participant = participant;
               r_vote = vote;
               r_ballot = ballot;
               r_participants = participants;
             })
      in
      Hashtbl.replace t.votes (txid, participant)
        { vote; ballot; participants; log_idx = idx };
      vote
    end

let registered t ~txid ~participant =
  Hashtbl.find_opt t.votes (txid, participant)
  |> Option.map (fun e -> e.vote)

let votes_for t txid =
  Hashtbl.fold
    (fun (tx, p) e ((parts, votes) as acc) ->
      if Txid.equal tx txid then
        (List.sort_uniq compare (e.participants @ parts), (p, e.vote) :: votes)
      else acc)
    t.votes ([], [])

let forget t txid =
  let doomed =
    Hashtbl.fold
      (fun ((tx, _) as key) e acc ->
        if Txid.equal tx txid then (key, e.log_idx) :: acc else acc)
      t.votes []
  in
  List.iter
    (fun (key, idx) ->
      Hashtbl.remove t.votes key;
      Volume.log_delete t.vol idx)
    doomed

let size t = Hashtbl.length t.votes
let crash t = Hashtbl.reset t.votes

let recover t =
  Hashtbl.reset t.votes;
  List.iter
    (fun (idx, tag, payload) ->
      if tag = vote_tag then begin
        (* Charge one device read per replayed record, like prepare-record
           recovery does. *)
        let (_ : Bytes.t) = Volume.read_page t.vol 0 in
        match decode payload with
        | Some r ->
          if not (Hashtbl.mem t.votes (r.r_txid, r.r_participant)) then
            Hashtbl.replace t.votes
              (r.r_txid, r.r_participant)
              {
                vote = r.r_vote;
                ballot = r.r_ballot;
                participants = r.r_participants;
                log_idx = idx;
              }
        | None -> ()
      end)
    (Volume.log_records t.vol)
