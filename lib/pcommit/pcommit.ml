(* Paxos Commit decision logic (Gray & Lamport, cs/0408036).

   A transaction with participant set P runs |P| consensus instances; the
   transaction commits iff every instance decides Prepared. Each instance
   is decided by a 2f+1-site acceptor set: the participant offers its
   vote at ballot 0 to all acceptors, and confirms "prepared" to the
   coordinator only once f+1 acceptors have registered its Prepared vote.
   An instance's value is thus determined by quorum counting:

     - Prepared registered at >= f+1 acceptors  ->  instance Prepared
     - Aborted  registered at >= f+1 acceptors  ->  instance Aborted

   The two cannot both hold (f+1 + f+1 > 2f+1) and registrations are
   immutable, so every reader that tallies a quorum reaches the same
   verdict. An undetermined instance (neither value at quorum) is closed
   by offering an Aborted vote at ballot 1 to every acceptor: closure
   fills the free slots, and with all 2f+1 slots registered one side has
   a quorum by pigeonhole. Closure can only prevent an unconfirmed
   Prepared vote from ever reaching quorum — a participant whose vote is
   blocked from quorum never confirms, so the coordinator sees a failed
   prepare and aborts; a vote that already reached quorum is untouchable.
   Hence resolvers and the coordinator always converge. *)

let quorum ~f = f + 1

(* The acceptor set for a transaction: 2f+1 consecutive sites starting at
   the coordinator, reusing the replica-placement rule so acceptor load
   spreads evenly and the coordinator itself is always acceptor 0 (its
   own registration survives coordinator-site recovery via the WAL). *)
let acceptors ~n_sites ~f ~coordinator =
  let factor = (2 * f) + 1 in
  if factor > n_sites then
    invalid_arg "Pcommit.acceptors: need n_sites >= 2f+1";
  match
    List.assoc_opt (coordinator mod n_sites)
      (Locus_repl.Placement.volumes ~n_sites ~factor)
  with
  | Some hosts -> hosts
  | None -> invalid_arg "Pcommit.acceptors: coordinator out of range"

type decision =
  | Commit
  | Abort
  | Undecided of Site.t list
      (* instances with neither value at quorum; close these *)

(* Decide from per-acceptor reply tallies. [votes] holds one association
   list per responding acceptor. Sound with any number of replies —
   missing acceptors only delay determination, never flip it. *)
let decide ~f ~participants ~votes =
  let q = quorum ~f in
  if participants = [] then Undecided []
  else begin
    let count value p =
      List.length
        (List.filter (fun reg -> List.assoc_opt p reg = Some value) votes)
    in
    let status =
      List.map
        (fun p ->
          if count true p >= q then `Prepared
          else if count false p >= q then `Aborted
          else `Open p)
        participants
    in
    if List.mem `Aborted status then Abort
    else if List.for_all (fun s -> s = `Prepared) status then Commit
    else
      Undecided
        (List.filter_map (function `Open p -> Some p | _ -> None) status)
  end

let pp_decision ppf = function
  | Commit -> Fmt.string ppf "commit"
  | Abort -> Fmt.string ppf "abort"
  | Undecided open_ ->
    Fmt.pf ppf "undecided[%a]" Fmt.(list ~sep:(any ",") int) open_
