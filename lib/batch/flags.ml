(* Fault-injection switch for the batching layer (self-tests only). *)

(* When set, every batching optimisation silently degrades to the
   unbatched behaviour while the configuration still claims a non-zero
   window: group-commit batchers flush one force per record, the
   transport sends one message per request, and lock-read piggybacking
   falls back to the explicit lock-then-read pair. The CI perf gate must
   notice the regression in BENCH_e16.json — this is how we prove the
   gate fires. Used by `bench e16` via LOCUS_BREAK_BATCH=1; reset it
   when done. *)
let break_batch = ref false
