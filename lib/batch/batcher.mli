(** A bounded batch window over the simulation engine — the primitive
    behind group commit and RPC coalescing.

    The first {!submit} after an idle period opens a window and spawns a
    dedicated flusher fiber at the owning site; items submitted while the
    window is open join the batch. When the window expires the batch
    closes (late arrivals open the next window) and [flush] runs over the
    items in submission order. Items carry their own completion ivars:
    [submit] never blocks, callers await whatever their item embeds.

    Crash safety: the flusher fiber is site-attributed, so crashing the
    site kills the flusher together with every fiber awaiting the batch —
    nothing in the batch was made durable, which is exactly the atomicity
    the redo log already guarantees for unforced records. A batch whose
    flusher died is never joinable; {!reset} additionally drops it
    eagerly on the crash path. *)

type 'item t

val create : Engine.t -> name:string -> 'item t
(** A disabled batcher ([window_us = 0]). [name] labels the flusher
    fiber in traces. *)

val configure : 'item t -> site:int -> window_us:int -> unit
(** Set the owning site (where flusher fibers run and die) and the batch
    window. A window of [0] disables batching; callers should then take
    their unbatched path. *)

val window_us : 'item t -> int

val enabled : 'item t -> bool
(** [window_us > 0] and the {!Flags.break_batch} self-test switch is
    off. *)

val submit : 'item t -> flush:('item list -> unit) -> 'item -> unit
(** Join the open batch, or open a new window whose flusher will call
    [flush] (the [flush] of the submit that opened the window wins for
    the whole batch). Returns immediately. Must be called from a fiber
    context only in the sense that the engine must be running; [submit]
    itself never blocks. *)

val reset : 'item t -> unit
(** Forget the current batch (crash path): pending items are dropped
    without being flushed, mirroring the loss of unforced log records. *)
