(** Fault-injection switch for batching self-tests. *)

val break_batch : bool ref
(** When true, every batching optimisation silently degrades to the
    unbatched behaviour while the configuration still claims a non-zero
    window: group commit forces once per record, the transport sends one
    message per request, and lock-read piggybacking falls back to the
    explicit lock-then-read pair. The CI perf gate must notice the
    resulting regression in BENCH_e16.json — this proves the gate fires.
    Used by [bench e16] via [LOCUS_BREAK_BATCH=1]. Default false. *)
