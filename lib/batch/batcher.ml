type 'item batch = {
  mutable items : 'item list;  (* newest first *)
  mutable open_ : bool;
  flusher : Engine.Fiber.handle;
}

type 'item t = {
  engine : Engine.t;
  name : string;
  mutable site : int;
  mutable window_us : int;
  mutable cur : 'item batch option;
}

let create engine ~name = { engine; name; site = 0; window_us = 0; cur = None }

let configure t ~site ~window_us =
  t.site <- site;
  t.window_us <- window_us

let window_us t = t.window_us
let enabled t = t.window_us > 0 && not !Flags.break_batch
let reset t = t.cur <- None

(* A batch is joinable only while its window is still open AND its flusher
   fiber is still alive: the flusher runs site-attributed, so a site crash
   kills it, and any batch it left behind must not trap later items. *)
let joinable b = b.open_ && Engine.Fiber.alive b.flusher

let open_batch t flush =
  (* The flusher owns the whole batch lifecycle: sleep out the window,
     close the batch to late joiners, then run [flush] over the items in
     submission order. It is a dedicated fiber at [t.site] (never a
     client fiber) so that killing one waiting client cannot strand the
     others, while a crash of the site takes flusher and waiters down
     together. The ref is filled before the flusher's sleep expires. *)
  let bref = ref None in
  let flusher =
    Engine.spawn ~name:t.name ~site:t.site t.engine (fun () ->
        Engine.sleep t.window_us;
        match !bref with
        | None -> ()
        | Some b ->
          b.open_ <- false;
          (match t.cur with Some cur when cur == b -> t.cur <- None | _ -> ());
          flush (List.rev b.items))
  in
  let b = { items = []; open_ = true; flusher } in
  bref := Some b;
  t.cur <- Some b;
  b

let submit t ~flush item =
  let b = match t.cur with Some b when joinable b -> b | _ -> open_batch t flush in
  b.items <- item :: b.items
