(** Multi-seed schedule exploration.

    The engine is deterministic, so each seed names one exact
    interleaving; sweeping seeds re-runs the same kind of workload
    across many schedules (optionally with crash injection at 2PC
    decision points) and checks every resulting history for
    serializability. A failing seed is a reproducer by construction. *)

type config = {
  sites : int;
  txns : int;
  ops : int;
  records : int;
  replicas : int;
      (** copies per volume (1 = unreplicated; >1 enables primary-copy
          replication with commit propagation) *)
  batch_window : int;
      (** batching window in virtual µs (0 = off): enables group commit +
          RPC coalescing and piggybacked transactional reads, so the
          sweep proves 1SR with the commit-path batching live *)
  fault_every : int option;
      (** inject a fault on every k-th seed, alternating site
          crash + reboot with network partition + heal (and, under Paxos
          Commit, permanently killing a deciding coordinator) *)
  commit : Workload.commit_protocol;
      (** atomic-commitment protocol for every run of the sweep;
          [`Paxos f] adds the coordinator-kill fault to the rotation and
          the sweep then asserts the non-blocking liveness property *)
  shards : int;
      (** shard count for dynamic lock placement (0 = static placement);
          > 0 routes lock traffic through the shard directory and adds
          the forced mid-transaction ownership migration fault to the
          rotation, with every grant watched by the epoch-fence oracle *)
  policy : Locus_shard.Policy.t;
      (** migration policy for sharded runs (ignored when [shards = 0]) *)
  net_faults : Locus_net.Transport.faults option;
      (** lossy-network chaos layer for every run of the sweep: message
          drop / duplication / jitter / reordering (seed-deterministic)
          with exactly-once client RPCs — layered on top of whatever
          [fault_every] injects, so a sweep can prove 1SR and liveness
          under crashes {e and} a lossy network at once *)
  health_window : int;
      (** locus_health sampling window in virtual µs (0 = plane off).
          When armed, every seed also runs the two health oracles: a
          fault-free seed must raise {e no} alarm, and — since the fault
          rotation then adds [Kill_coordinator] even under 2PC — a seed
          whose participants end blocked in-doubt must have raised the
          [in_doubt_age] alarm (blocking itself is then the scenario,
          not a failure). [--break-health] inverts the second oracle:
          with the watchdog muted those seeds fail. *)
  arrival : float option;
      (** open-loop arrival rate in transactions/sec: [Some r] generates
          every seed's spec with {!Workload.gen_open} (Poisson instants,
          Zipfian record popularity) so the sweep proves 1SR and liveness
          under arrival-clock release instead of the closed-loop
          fork-then-wait schedule; [None] keeps the classic generator *)
}

val default_config : config

type failure = {
  f_seed : int;
  f_spec : Workload.spec;
  f_report : Checker.report;
  f_blocked : (int * Txid.t) list;
      (** participants still in-doubt when the run drained (liveness);
          emptied when the health lane excuses the blocked state *)
  f_health : string list;
      (** health-oracle violations: false alarms on a clean seed, or a
          blocked run the watchdog slept through *)
}

type result = {
  checked : int;
  events : int;  (** total observation events across all runs *)
  permitted : int;  (** §3.4-permitted violations seen (informational) *)
  failures : failure list;
      (** seeds with unpermitted violations or blocked participants *)
}

val seeds : n:int -> from:int -> int list

val run_seed :
  config -> int -> Workload.spec * History.t * Checker.report * (int * Txid.t) list
(** Generate, execute and check the workload for one seed; the last
    component is the liveness oracle ({!Workload.blocked}). *)

val sweep :
  ?config:config ->
  ?progress:(int -> Checker.report -> unit) ->
  seeds:int list ->
  unit ->
  result

val shrink_failure : config -> failure -> Workload.spec
(** Minimize a failing workload (re-running under the same seed and
    crash plan) with {!Shrink.minimize}. *)
