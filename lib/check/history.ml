module Obs = Locus_core.Obs
module Kernel = Locus_core.Kernel

type t = { mutable rev : Obs.record list; mutable n : int }

let create () = { rev = []; n = 0 }

let record t r =
  t.rev <- r :: t.rev;
  t.n <- t.n + 1

let sink t r = record t r

let attach t cl = Kernel.set_observer cl (Some (sink t))
let detach cl = Kernel.set_observer cl None

let length t = t.n
let events t = List.rev t.rev

let clear t =
  t.rev <- [];
  t.n <- 0

let of_events evs =
  let t = create () in
  List.iter (record t) evs;
  t

let pp ppf t = List.iter (fun r -> Fmt.pf ppf "%a@." Obs.pp r) (events t)
