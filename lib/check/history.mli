(** Per-run execution history: an append-only record of the cluster's
    {!Locus_core.Obs} events.

    Unlike the {!Locus_sim.Trace} debugging ring this recorder never
    drops events — the serializability checker needs the complete run.
    Because the simulation is deterministic, a history is a pure function
    of (seed, program): re-running the same workload reproduces it
    bit-for-bit. *)

module Obs = Locus_core.Obs

type t

val create : unit -> t

val attach : t -> Locus_core.Kernel.cluster -> unit
(** Install this recorder as the cluster's observer (replacing any). *)

val detach : Locus_core.Kernel.cluster -> unit

val record : t -> Obs.record -> unit
(** Append one event (also usable to fabricate histories in tests). *)

val of_events : Obs.record list -> t

val events : t -> Obs.record list
(** In emission order — the global serialization order of the run. *)

val length : t -> int
val clear : t -> unit
val pp : t Fmt.t
