(** Greedy workload minimization.

    Given a failing workload and a (re-runnable, deterministic) failure
    predicate, repeatedly remove transactions — then individual ops —
    while the failure persists. Not a full ddmin: chunks are tried left
    to right with halving sizes, which is enough to cut the generated
    bank workloads down to the 2–3 transactions that actually race. *)

val minimize : fails:(Workload.spec -> bool) -> Workload.spec -> Workload.spec
(** [minimize ~fails spec] returns a locally minimal spec on which
    [fails] still holds. If [fails spec] is already [false], [spec] is
    returned unchanged. *)
