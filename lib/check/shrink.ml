let remove_chunk l start size =
  List.filteri (fun i _ -> i < start || i >= start + size) l

(* Greedy delta-debugging on one list: repeatedly drop the largest chunk
   whose removal keeps [fails] true, halving the chunk size on failure. *)
let shrink_list fails l0 =
  let rec go l size =
    if size < 1 then l
    else
      let n = List.length l in
      let rec attempt start =
        if start >= n then go l (size / 2)
        else
          let cand = remove_chunk l start size in
          if cand <> [] && fails cand then
            go cand (max 1 (min size (List.length cand / 2)))
          else attempt (start + size)
      in
      attempt 0
  in
  go l0 (max 1 (List.length l0 / 2))

let minimize ~fails spec =
  if not (fails spec) then spec
  else begin
    (* First drop whole transactions... *)
    let txns =
      shrink_list
        (fun txns -> fails { spec with Workload.txns })
        spec.Workload.txns
    in
    let spec = { spec with Workload.txns } in
    (* ...then thin each surviving transaction's op list. *)
    let rec thin acc = function
      | [] -> List.rev acc
      | t :: rest ->
          let ops =
            shrink_list
              (fun ops ->
                let txns =
                  List.rev_append acc ({ t with Workload.ops } :: rest)
                in
                fails { spec with Workload.txns = txns })
              t.Workload.ops
          in
          thin ({ t with Workload.ops } :: acc) rest
    in
    { spec with Workload.txns = thin [] spec.Workload.txns }
  end
