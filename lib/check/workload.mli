(** Generated transactional workloads for the schedule explorer.

    A workload is a bank-style increment benchmark over a single shared
    file of fixed-width records: each transaction runs at some site and
    performs a sequence of locked record reads ([Op_read]) and
    read-increment-write updates ([Op_update]). Concurrent updates of
    the same record are exactly the lost-update / dirty-read shapes the
    checker must prove impossible under the §3 locking rules. *)

type op = Op_read of int | Op_update of int  (** record index *)

type txn_spec = {
  site : int;
  at_us : int;
      (** open-loop arrival instant in virtual µs from driver start; [0]
          (the closed-loop default) forks immediately in spec order *)
  ops : op list;
}

type spec = { n_sites : int; n_records : int; txns : txn_spec list }

type crash = {
  victim : int;  (** site to crash *)
  after_decides : int;  (** crash at the Nth 2PC decide event *)
  restart_delay : int;  (** virtual microseconds until reboot *)
}

type fault =
  | Crash of crash
  | Partition of {
      victim : int;  (** site to isolate from everyone else *)
      after_decides : int;  (** partition at the Nth 2PC decide event *)
      heal_delay : int;  (** virtual microseconds until the partition heals *)
    }
  | Kill_coordinator of { after_decides : int }
  | Migrate_owner of { after_decides : int }
      (** Failure injected mid-run at a 2PC decision point: either a
          crash + reboot, a network partition + heal, or — the classic
          blocking window — killing the Nth deciding transaction's own
          coordinator site right between its durable decision and phase 2,
          with {e no} restart. Under 2PC [Kill_coordinator] leaves that
          transaction's participants in-doubt forever; under Paxos Commit
          they must still decide from the acceptor quorum ({!blocked}
          asserts this). Partitions exercise the replication
          degrade / reconcile path — the isolated site's replicas go
          stale, serve degraded reads, and must catch up after the
          heal. [Migrate_owner] needs a sharded run ([run ~shards]): from
          the Nth decide on, it forces the shared file's lock-manager
          role to a rotating destination site at every decide point, so
          hand-offs land in the middle of live transactions and phase-2
          windows — 1SR and the epoch-fence oracle must both hold. *)

type commit_protocol = [ `Two_phase | `Paxos of int ]
(** Atomic-commitment protocol for a run: plain 2PC or Paxos Commit
    tolerating [f] faults (2f+1 acceptor sites). *)

val rec_len : int
(** Bytes per record. *)

val gen :
  seed:int ->
  ?sites:int ->
  ?txns:int ->
  ?ops:int ->
  ?records:int ->
  unit ->
  spec
(** Deterministic workload from a seed (defaults: 2 sites, 4 txns of 4
    ops over 4 records — small enough to conflict constantly). *)

val gen_open :
  seed:int ->
  ?sites:int ->
  ?txns:int ->
  ?ops:int ->
  ?records:int ->
  ?flash:int * int * float ->
  rate:float ->
  unit ->
  spec
(** Open-loop variant of {!gen}: transactions carry Poisson arrival
    instants at [rate]/sec ({!Locus_load.Arrival}) and draw their records
    from a Zipfian popularity law ({!Locus_load.Zipf}), so the driver
    releases them on the arrival clock instead of all at once.
    [flash:(at_us, len_us, mult)] adds a flash-crowd burst to the arrival
    shape. The same seed still names the same spec byte-for-byte. *)

val run :
  ?fault:fault ->
  ?replicas:int ->
  ?batch_window:int ->
  ?commit:commit_protocol ->
  ?shards:int ->
  ?policy:Locus_shard.Policy.t ->
  ?net_faults:Locus_net.Transport.faults ->
  ?health:int ->
  ?seed:int ->
  spec ->
  History.t * Locus_core.Locus.sim
(** Execute the workload in a fresh simulated cluster with a recorder
    attached; returns the complete history and the drained simulation.
    [seed] also perturbs engine event ordering, so the same [spec] under
    different seeds explores different schedules. [replicas > 1] hosts
    every volume at that many sites
    ({!Locus_core.Kernel.Config.with_replication}), so commits propagate
    and reads may be served by secondary copies — the checker's
    one-copy-serializability rules then apply. [batch_window > 0]
    enables the commit-path batching
    ({!Locus_core.Kernel.Config.with_batching}: group commit + RPC
    coalescing at that window) and switches transactional reads to the
    piggybacked {!Locus_core.Api.pread_locked} path, so the explorer
    proves 1SR with every batching optimisation live. [shards > 0]
    turns on dynamic lock placement
    ({!Locus_core.Kernel.Config.with_shards}) with the given migration
    [policy], so lock traffic flows through the shard directory and the
    role can move mid-run. [net_faults] arms the lossy-network chaos
    layer ({!Locus_core.Kernel.Config.net_faults}): seed-deterministic
    message drop / duplication / jitter / reordering plus rid-tagged
    exactly-once client RPCs, with the checker's [Dup_apply] oracle
    watching every rid-tagged handler execution. [health > 0] arms the
    locus_health plane ({!Locus_core.Kernel.Config.with_health}) at that
    window; [Kill_coordinator] runs then keep the engine alive past the
    in-doubt age threshold so the watchdog's [in_doubt_age] alarm —
    which the health sweep asserts — has time to fire. *)

val blocked : Locus_core.Locus.sim -> (int * Txid.t) list
(** Liveness oracle over a drained simulation: [(site, txid)] for every
    prepared transaction a live site still holds. Non-empty means
    participants ended the run blocked in-doubt — expected under 2PC with
    [Kill_coordinator], a liveness violation under Paxos Commit. *)

val pp : spec Fmt.t
val pp_txn_spec : txn_spec Fmt.t
val pp_op : op Fmt.t
