module L = Locus_core.Locus
module Api = Locus_core.Api
module K = Locus_core.Kernel
module Transport = Locus_net.Transport

type op = Op_read of int | Op_update of int
type txn_spec = { site : int; at_us : int; ops : op list }
type spec = { n_sites : int; n_records : int; txns : txn_spec list }

type crash = { victim : int; after_decides : int; restart_delay : int }

type fault =
  | Crash of crash
  | Partition of { victim : int; after_decides : int; heal_delay : int }
  | Kill_coordinator of { after_decides : int }
  | Migrate_owner of { after_decides : int }

type commit_protocol = [ `Two_phase | `Paxos of int ]

let rec_len = 16
let path = "/check/records"

let gen ~seed ?(sites = 2) ?(txns = 4) ?(ops = 4) ?(records = 4) () =
  let sites = max 1 sites
  and txns = max 0 txns
  and ops = max 0 ops
  and records = max 1 records in
  let rng = Prng.create ~seed in
  let txns =
    List.init txns (fun _ ->
        let site = Prng.int rng sites in
        let ops =
          List.init ops (fun _ ->
              let r = Prng.int rng records in
              if Prng.bool rng then Op_read r else Op_update r)
        in
        { site; at_us = 0; ops })
  in
  { n_sites = sites; n_records = records; txns }

(* Open-loop variant: the same bank-style transactions, but each stamped
   with a Poisson arrival instant ([at_us]) and drawing its records from
   a Zipfian popularity law — locus_load's generators driving the
   checker's workload shape. The driver releases each transaction at its
   instant whether or not earlier ones have finished, so a sweep over
   these specs proves 1SR under open-loop pressure, not just under the
   closed-loop fork-then-wait schedule. *)
let gen_open ~seed ?(sites = 2) ?(txns = 4) ?(ops = 4) ?(records = 4) ?flash
    ~rate () =
  let sites = max 1 sites
  and txns = max 0 txns
  and n_ops = max 1 ops
  and records = max 1 records in
  let rng = Prng.create ~seed in
  let shape =
    let base = Locus_load.Arrival.constant (Float.max 1e-6 rate) in
    match flash with
    | None -> base
    | Some (at_us, len_us, mult) ->
      {
        base with
        Locus_load.Arrival.flash_at_us = at_us;
        flash_len_us = len_us;
        flash_mult = mult;
      }
  in
  let arr = Locus_load.Arrival.create ~prng:rng shape in
  let zipf = Locus_load.Zipf.create ~s:1.0 ~n:records () in
  let mix =
    Locus_load.Opmix.make ~read_frac:0.5 ~ops_min:n_ops ~ops_max:n_ops ()
  in
  let rec build acc k now =
    if k = 0 then List.rev acc
    else
      let at = Locus_load.Arrival.next_after arr now in
      let site = Prng.int rng sites in
      let ops =
        List.map
          (function
            | Locus_load.Opmix.Read r -> Op_read r
            | Locus_load.Opmix.Update r -> Op_update r)
          (Locus_load.Opmix.gen_txn mix rng zipf)
      in
      build ({ site; at_us = at; ops } :: acc) (k - 1) at
  in
  { n_sites = sites; n_records = records; txns = build [] txns 0 }

let pp_op ppf = function
  | Op_read r -> Fmt.pf ppf "r%d" r
  | Op_update r -> Fmt.pf ppf "u%d" r

let pp_txn_spec ppf t =
  if t.at_us > 0 then
    Fmt.pf ppf "@[site %d @@%dus: %a@]" t.site t.at_us
      (Fmt.list ~sep:Fmt.sp pp_op) t.ops
  else Fmt.pf ppf "@[site %d: %a@]" t.site (Fmt.list ~sep:Fmt.sp pp_op) t.ops

let pp ppf s =
  Fmt.pf ppf "@[<v>%d sites, %d records@,%a@]" s.n_sites s.n_records
    (Fmt.list ~sep:Fmt.cut pp_txn_spec)
    s.txns

let encode v = Printf.sprintf "%016d" v
let decode b = int_of_string (String.trim (Bytes.to_string b))

let run_txn ?(piggyback = false) env t =
  let c = Api.open_file env path in
  Api.begin_trans env;
  List.iter
    (fun op ->
      match op with
      | Op_read r ->
          if piggyback then
            (* Batching runs exercise the one-round-trip §3.3 path: the
               Shared lock rides on the read message itself. *)
            ignore (Api.pread_locked env c ~pos:(r * rec_len) ~len:rec_len)
          else begin
            Api.seek env c ~pos:(r * rec_len);
            ignore (Api.lock env c ~len:rec_len ~mode:Mode.Shared ());
            ignore (Api.pread env c ~pos:(r * rec_len) ~len:rec_len)
          end
      | Op_update r ->
          let pos = r * rec_len in
          Api.seek env c ~pos;
          ignore (Api.lock env c ~len:rec_len ~mode:Mode.Exclusive ());
          let v = decode (Api.pread env c ~pos ~len:rec_len) in
          Api.pwrite env c ~pos (Bytes.of_string (encode (v + 1))))
    t.ops;
  ignore (Api.end_trans env);
  Api.close env c

let install_fault cl ~n_sites ?(grace = 0) fault =
  let decides = ref 0 in
  (K.hooks cl).K.on_decided <-
    (fun txid _status ->
      incr decides;
      match fault with
      | Crash c when !decides = c.after_decides ->
          K.crash_site cl c.victim;
          Engine.schedule ~delay:c.restart_delay (K.engine cl) (fun () ->
              K.restart_site cl c.victim)
      | Partition { victim; after_decides; heal_delay }
        when !decides = after_decides ->
          let net = K.transport cl in
          Transport.partition net [ [ victim ] ];
          Engine.schedule ~delay:heal_delay (K.engine cl) (fun () ->
              Transport.heal net)
      | Kill_coordinator { after_decides } when !decides = after_decides ->
          (* The worst 2PC window: the decision is durable but phase 2 was
             never sent, and the coordinator NEVER comes back. The hook
             runs inside the committing fiber, which dies with its site,
             so no phase-2 message escapes. Under 2PC every participant of
             this transaction stays in-doubt forever; under Paxos Commit
             they must all still decide — that is the liveness property. *)
          if grace > 0 then
            (* Health-armed runs: keep the engine (and with it the windowed
               sampler) alive long enough for the stranded participants'
               in-doubt age to cross the watchdog threshold — the alarm
               the liveness oracle then demands. Scheduled BEFORE the
               crash: the hook's own fiber dies with its site. *)
            Engine.schedule ~delay:grace (K.engine cl) (fun () -> ());
          K.crash_site cl (Txid.site txid)
      | Migrate_owner { after_decides } when !decides >= after_decides -> (
          (* Yank the shared file's lock-manager role to a rotating site
             at every decide point from the Nth on: in-flight phase 2,
             retained locks, and later acquisitions must all survive the
             hand-offs (and the epoch-fence oracle watches every grant).
             The hook runs inside the deciding fiber, so the migration
             RPCs get their own fiber. *)
          match K.lookup cl path with
          | None -> ()
          | Some fid ->
              let dst = !decides mod n_sites in
              ignore
                (Engine.spawn ~name:"wl-migrate" ~site:0 (K.engine cl)
                   (fun () -> K.force_migrate cl ~src:0 fid ~dst)))
      | Crash _ | Partition _ | Kill_coordinator _ | Migrate_owner _ -> ())

let run ?fault ?(replicas = 1) ?(batch_window = 0) ?(commit = `Two_phase)
    ?(shards = 0) ?policy ?net_faults ?(health = 0) ?(seed = 0) spec =
  let sim =
    let base =
      if replicas > 1 then
        K.Config.with_replication ~n_sites:spec.n_sites ~factor:replicas
      else K.Config.default ~n_sites:spec.n_sites
    in
    let config =
      if batch_window > 0 then K.Config.with_batching ~window_us:batch_window base
      else base
    in
    let config =
      match (commit : commit_protocol) with
      | `Two_phase -> config
      | `Paxos f -> K.Config.with_paxos ~f config
    in
    let config =
      if shards > 0 then K.Config.with_shards ~shards ?policy config else config
    in
    let config =
      match net_faults with
      | Some (f : Transport.faults) -> { config with K.Config.net_faults = Some f }
      | None -> config
    in
    let config =
      if health > 0 then K.Config.with_health ~window_us:health config
      else config
    in
    L.make ~seed ~config ~n_sites:spec.n_sites ()
  in
  let hist = History.create () in
  History.attach hist sim.L.cluster;
  let grace =
    (* With the watchdog armed, a coordinator kill must leave the sampler
       running past the in-doubt age threshold plus a couple of windows,
       or the alarm the sweep asserts could never fire. *)
    if health > 0 then
      (K.config sim.L.cluster).K.Config.health_thresholds
        .Locus_health.Rules.in_doubt_age_us + (3 * health) + 500_000
    else 0
  in
  (match fault with
  | Some f -> install_fault sim.L.cluster ~n_sites:spec.n_sites ~grace f
  | None -> ());
  ignore
    (Api.spawn_process sim.L.cluster ~site:0 ~name:"wl-driver" (fun env ->
         let c = Api.creat env path ~vid:1 in
         let init = Buffer.create (spec.n_records * rec_len) in
         for _ = 1 to spec.n_records do
           Buffer.add_string init (encode 0)
         done;
         Api.write_string env c (Buffer.contents init);
         Api.close env c;
         (* Open-loop specs stamp arrival instants: the driver sleeps up
            to each transaction's [at_us] (measured from this point, after
            the records exist) and forks without waiting on predecessors.
            All-zero stamps — every closed-loop spec — never sleep, so the
            classic schedule is byte-identical. *)
         let eng = K.engine sim.L.cluster in
         let epoch = Engine.now eng in
         let pids =
           List.mapi
             (fun i t ->
               (if t.at_us > 0 then
                  let dt = epoch + t.at_us - Engine.now eng in
                  if dt > 0 then Engine.sleep dt);
               Api.fork env ~site:t.site
                 ~name:(Printf.sprintf "wl-txn-%d" i)
                 (fun env -> run_txn ~piggyback:(batch_window > 0) env t))
             spec.txns
         in
         List.iter (fun pid -> Api.wait_pid env pid) pids));
  L.run sim;
  (hist, sim)

(* Liveness oracle, read after {!Locus_core.Locus.run} has drained the
   event queue: prepared transactions still held by live sites are
   participants blocked in-doubt. *)
let blocked sim = K.in_doubt_participants sim.L.cluster
