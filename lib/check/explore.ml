type config = {
  sites : int;
  txns : int;
  ops : int;
  records : int;
  replicas : int;
  batch_window : int;
  fault_every : int option;
  commit : Workload.commit_protocol;
  shards : int;
  policy : Locus_shard.Policy.t;
  net_faults : Locus_net.Transport.faults option;
}

let default_config =
  {
    sites = 2;
    txns = 4;
    ops = 4;
    records = 4;
    replicas = 1;
    batch_window = 0;
    fault_every = None;
    commit = `Two_phase;
    shards = 0;
    policy = Locus_shard.Policy.default;
    net_faults = None;
  }

type failure = {
  f_seed : int;
  f_spec : Workload.spec;
  f_report : Checker.report;
  f_blocked : (int * Txid.t) list;
}

type result = {
  checked : int;
  events : int;
  permitted : int;
  failures : failure list;
}

(* Alternate fault injections across the qualifying seeds, so one sweep
   exercises the §4.4 recovery path, the replication degrade / reconcile
   path, and — under Paxos Commit — the kill-the-coordinator-between-
   decision-and-phase-2 window the liveness check exists for. 2PC sweeps
   never get [Kill_coordinator]: blocking there is documented behaviour,
   not a bug. *)
let fault_for cfg seed =
  match cfg.fault_every with
  | Some k when k > 0 && seed mod k = 0 ->
      let nth = seed / k in
      let victim = nth mod cfg.sites
      and after_decides = 1 + (seed mod 3) in
      let base =
        match cfg.commit with
        | `Two_phase ->
            [ Workload.Crash { victim; after_decides; restart_delay = 2_000_000 };
              Workload.Partition { victim; after_decides; heal_delay = 2_000_000 }
            ]
        | `Paxos _ ->
            [ Workload.Crash { victim; after_decides; restart_delay = 2_000_000 };
              Workload.Partition { victim; after_decides; heal_delay = 2_000_000 };
              Workload.Kill_coordinator { after_decides }
            ]
      in
      let faults =
        if cfg.shards > 0 then
          base @ [ Workload.Migrate_owner { after_decides } ]
        else base
      in
      Some (List.nth faults (nth mod List.length faults))
  | Some _ | None -> None

let run_seed cfg seed =
  let spec =
    Workload.gen ~seed ~sites:cfg.sites ~txns:cfg.txns ~ops:cfg.ops
      ~records:cfg.records ()
  in
  let hist, sim =
    Workload.run ?fault:(fault_for cfg seed) ~replicas:cfg.replicas
      ~batch_window:cfg.batch_window ~commit:cfg.commit ~shards:cfg.shards
      ~policy:cfg.policy ?net_faults:cfg.net_faults ~seed spec
  in
  (* Liveness: participants still prepared after the run drained are
     blocked in-doubt. 2PC is allowed to block only when its coordinator
     is still down at the end of the run (which the fault plans above
     never leave it); Paxos Commit must always drain. *)
  (spec, hist, Checker.check hist, Workload.blocked sim)

let sweep ?(config = default_config) ?progress ~seeds () =
  List.fold_left
    (fun acc seed ->
      let spec, hist, report, blocked = run_seed config seed in
      (match progress with Some f -> f seed report | None -> ());
      let acc =
        {
          acc with
          checked = acc.checked + 1;
          events = acc.events + History.length hist;
          permitted = acc.permitted + List.length (Checker.permitted report);
        }
      in
      if Checker.ok report && blocked = [] then acc
      else
        {
          acc with
          failures =
            { f_seed = seed; f_spec = spec; f_report = report; f_blocked = blocked }
            :: acc.failures;
        })
    { checked = 0; events = 0; permitted = 0; failures = [] }
    seeds
  |> fun r -> { r with failures = List.rev r.failures }

let seeds ~n ~from = List.init n (fun i -> from + i)

let shrink_failure cfg f =
  let fails spec =
    let hist, sim =
      Workload.run
        ?fault:(fault_for cfg f.f_seed)
        ~replicas:cfg.replicas ~batch_window:cfg.batch_window ~commit:cfg.commit
        ~shards:cfg.shards ~policy:cfg.policy ?net_faults:cfg.net_faults
        ~seed:f.f_seed spec
    in
    (not (Checker.ok (Checker.check hist))) || Workload.blocked sim <> []
  in
  Shrink.minimize ~fails f.f_spec
