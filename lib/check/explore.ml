type config = {
  sites : int;
  txns : int;
  ops : int;
  records : int;
  replicas : int;
  batch_window : int;
  fault_every : int option;
  commit : Workload.commit_protocol;
  shards : int;
  policy : Locus_shard.Policy.t;
  net_faults : Locus_net.Transport.faults option;
  health_window : int;
  arrival : float option;
}

let default_config =
  {
    sites = 2;
    txns = 4;
    ops = 4;
    records = 4;
    replicas = 1;
    batch_window = 0;
    fault_every = None;
    commit = `Two_phase;
    shards = 0;
    policy = Locus_shard.Policy.default;
    net_faults = None;
    health_window = 0;
    arrival = None;
  }

type failure = {
  f_seed : int;
  f_spec : Workload.spec;
  f_report : Checker.report;
  f_blocked : (int * Txid.t) list;
  f_health : string list;
}

type result = {
  checked : int;
  events : int;
  permitted : int;
  failures : failure list;
}

(* Alternate fault injections across the qualifying seeds, so one sweep
   exercises the §4.4 recovery path, the replication degrade / reconcile
   path, and — under Paxos Commit — the kill-the-coordinator-between-
   decision-and-phase-2 window the liveness check exists for. 2PC sweeps
   never get [Kill_coordinator]: blocking there is documented behaviour,
   not a bug. *)
let fault_for cfg seed =
  match cfg.fault_every with
  | Some k when k > 0 && seed mod k = 0 ->
      let nth = seed / k in
      let victim = nth mod cfg.sites
      and after_decides = 1 + (seed mod 3) in
      let base =
        match cfg.commit with
        | `Two_phase ->
            let plans =
              [ Workload.Crash { victim; after_decides; restart_delay = 2_000_000 };
                Workload.Partition { victim; after_decides; heal_delay = 2_000_000 }
              ]
            in
            if cfg.health_window > 0 then
              (* The health lane WANTS the documented 2PC blocking window:
                 a killed coordinator strands its participants in-doubt,
                 and the watchdog must say so ([in_doubt_age]). Outside
                 the lane the blocked state itself would read as a
                 liveness failure, so plain 2PC sweeps never get it. *)
              plans @ [ Workload.Kill_coordinator { after_decides } ]
            else plans
        | `Paxos _ ->
            [ Workload.Crash { victim; after_decides; restart_delay = 2_000_000 };
              Workload.Partition { victim; after_decides; heal_delay = 2_000_000 };
              Workload.Kill_coordinator { after_decides }
            ]
      in
      let faults =
        if cfg.shards > 0 then
          base @ [ Workload.Migrate_owner { after_decides } ]
        else base
      in
      Some (List.nth faults (nth mod List.length faults))
  | Some _ | None -> None

let run_seed cfg seed =
  let spec =
    match cfg.arrival with
    | Some rate ->
      (* Poisson base with a flash crowd punched through the middle of
         the expected makespan: every open-loop seed exercises both the
         steady arrival clock and a burst 3x over it. *)
      let makespan =
        int_of_float (float_of_int (max 1 cfg.txns) /. Float.max 1e-6 rate *. 1e6)
      in
      Workload.gen_open ~seed ~sites:cfg.sites ~txns:cfg.txns ~ops:cfg.ops
        ~records:cfg.records
        ~flash:(makespan / 2, makespan / 4, 3.)
        ~rate ()
    | None ->
      Workload.gen ~seed ~sites:cfg.sites ~txns:cfg.txns ~ops:cfg.ops
        ~records:cfg.records ()
  in
  let hist, sim =
    Workload.run ?fault:(fault_for cfg seed) ~replicas:cfg.replicas
      ~batch_window:cfg.batch_window ~commit:cfg.commit ~shards:cfg.shards
      ~policy:cfg.policy ?net_faults:cfg.net_faults ~health:cfg.health_window
      ~seed spec
  in
  (* Liveness: participants still prepared after the run drained are
     blocked in-doubt. 2PC is allowed to block only when its coordinator
     is still down at the end of the run (which the fault plans above
     never leave it); Paxos Commit must always drain. *)
  (spec, hist, Checker.check hist, Workload.blocked sim)

let alarm_names hist =
  List.filter_map
    (fun (r : History.Obs.record) ->
      match r.History.Obs.ev with
      | History.Obs.Alarm { name; _ } -> Some name
      | _ -> None)
    (History.events hist)

(* The health plane's two checker oracles, evaluated per seed when the
   sweep runs with the watchdog armed ([health_window > 0]):

   - {e no false alarms}: a fault-free seed must raise no alarm at all —
     the thresholds are calibrated so healthy schedules stay silent;
   - {e alarm liveness}: a 2PC seed whose coordinator kill stranded
     participants in-doubt MUST raise [in_doubt_age] — a watchdog that
     sleeps through the one incident it exists for is broken (this is
     the oracle [--break-health] inverts).

   Returns [(excuse_blocked, violations)]: in the kill-under-2PC lane the
   blocked participants are the scenario, not a bug, so the sweep's
   liveness check stands down in favour of the alarm check. *)
let health_verdict cfg ~fault ~blocked hist =
  if cfg.health_window = 0 then (false, [])
  else begin
    let alarms = alarm_names hist in
    let false_alarms =
      match fault with
      | None ->
          List.map
            (fun n -> Printf.sprintf "false alarm on a clean run: %s" n)
            (List.sort_uniq String.compare alarms)
      | Some _ -> []
    in
    let kill_2pc =
      match (fault, cfg.commit) with
      | Some (Workload.Kill_coordinator _), `Two_phase -> true
      | _ -> false
    in
    let missed =
      if kill_2pc && blocked <> [] && not (List.mem "in_doubt_age" alarms)
      then
        [ "alarm liveness: participants ended blocked in-doubt but the \
           watchdog never raised in_doubt_age" ]
      else []
    in
    (kill_2pc, false_alarms @ missed)
  end

let sweep ?(config = default_config) ?progress ~seeds () =
  List.fold_left
    (fun acc seed ->
      let spec, hist, report, blocked = run_seed config seed in
      (match progress with Some f -> f seed report | None -> ());
      let excuse_blocked, health =
        health_verdict config ~fault:(fault_for config seed) ~blocked hist
      in
      let acc =
        {
          acc with
          checked = acc.checked + 1;
          events = acc.events + History.length hist;
          permitted = acc.permitted + List.length (Checker.permitted report);
        }
      in
      if
        Checker.ok report
        && (blocked = [] || excuse_blocked)
        && health = []
      then acc
      else
        {
          acc with
          failures =
            {
              f_seed = seed;
              f_spec = spec;
              f_report = report;
              f_blocked = (if excuse_blocked then [] else blocked);
              f_health = health;
            }
            :: acc.failures;
        })
    { checked = 0; events = 0; permitted = 0; failures = [] }
    seeds
  |> fun r -> { r with failures = List.rev r.failures }

let seeds ~n ~from = List.init n (fun i -> from + i)

let shrink_failure cfg f =
  let fault = fault_for cfg f.f_seed in
  let fails spec =
    let hist, sim =
      Workload.run ?fault ~replicas:cfg.replicas
        ~batch_window:cfg.batch_window ~commit:cfg.commit ~shards:cfg.shards
        ~policy:cfg.policy ?net_faults:cfg.net_faults
        ~health:cfg.health_window ~seed:f.f_seed spec
    in
    let blocked = Workload.blocked sim in
    let excuse_blocked, health = health_verdict cfg ~fault ~blocked hist in
    (not (Checker.ok (Checker.check hist)))
    || (blocked <> [] && not excuse_blocked)
    || health <> []
  in
  Shrink.minimize ~fails f.f_spec
